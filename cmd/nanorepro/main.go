// Command nanorepro regenerates every table and figure of "Future
// Performance Challenges in Nanometer Design" (DAC 2001) from the model
// stack, plus the paper's quantified in-text claims (C1–C9 of DESIGN.md).
//
// Usage:
//
//	nanorepro                 # print everything
//	nanorepro -only t2,f3     # select artifacts (t1,t2,f1..f5,c1..c13)
//	nanorepro -csv out/       # also write figure CSVs
//	nanorepro -plot           # crude terminal plots for the figures
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nanometer/internal/experiments"
	"nanometer/internal/report"
	"nanometer/internal/signaling"
)

var (
	list    = flag.Bool("list", false, "list artifact ids and exit")
	only    = flag.String("only", "", "comma-separated artifact ids (t1,t2,f1..f5,c1..c13); empty = all")
	csvDir  = flag.String("csv", "", "directory to write figure CSVs into")
	plot    = flag.Bool("plot", false, "render terminal plots for figures")
	verbose = flag.Bool("v", false, "extra detail in claim outputs")
)

// artifacts indexes every reproducible id.
var artifacts = []struct{ id, title string }{
	{"t1", "Table 1: published NMOS devices vs ITRS projections"},
	{"t2", "Table 2: analytical Ioff scaling"},
	{"f1", "Figure 1: Pstatic/Pdynamic vs switching activity"},
	{"f2", "Figure 2: dual-Vth scaling"},
	{"f3", "Figure 3: delay vs Vdd under Vth policies"},
	{"f4", "Figure 4: Pdynamic/Pstatic vs Vdd"},
	{"f5", "Figure 5: IR-drop scaling"},
	{"c1", "dynamic thermal management (§2.1)"},
	{"c2", "global signaling census and low-swing alternative (§2.2)"},
	{"c3", "library optimization at fixed timing (§2.3)"},
	{"c4", "clustered voltage scaling (§2.4)"},
	{"c5", "dual-Vth assignment (§3.2.2)"},
	{"c6", "re-sizing vs multi-Vdd (§3.3)"},
	{"c7", "Vdd floor under the ITRS static constraint (§3.3)"},
	{"c8", "ITRS bump plan at 35 nm (§4)"},
	{"c9", "wakeup transients and MCML (§4)"},
	{"c10", "intra-cell multi-Vth stacks (§3.3 close)"},
	{"c11", "standby-technique comparison and scalability (§3.2.1)"},
	{"c12", "tolerable-swing study (the §2.2 open question)"},
	{"c13", "signaling-primitive planner (conclusion #2's EDA tool)"},
}

func main() {
	flag.Parse()
	if *list {
		for _, a := range artifacts {
			fmt.Printf("%-4s %s\n", a.id, a.title)
		}
		return
	}
	sel := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		id = strings.TrimSpace(strings.ToLower(id))
		if id != "" {
			sel[id] = true
		}
	}
	want := func(id string) bool { return len(sel) == 0 || sel[id] }

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
	}

	if want("t1") {
		experiments.Table1Report().WriteTo(os.Stdout)
	}
	if want("t2") {
		t, err := experiments.Table2Report()
		if err != nil {
			fatal(err)
		}
		t.WriteTo(os.Stdout)
	}
	if want("f1") {
		fig, err := experiments.Figure1(nil)
		if err != nil {
			fatal(err)
		}
		emitFigure(fig, "figure1")
	}
	if want("f2") {
		rows, err := experiments.Figure2()
		if err != nil {
			fatal(err)
		}
		t := &report.Table{
			Title:   "Figure 2 (as data). Dual-Vth scaling",
			Headers: []string{"node (nm)", "Ion gain @ -100mV Vth", "Ioff × @ -100mV", "Ioff × for +20% Ion", "ΔVth for +20% (mV)"},
		}
		for _, r := range rows {
			t.AddRow(fmt.Sprintf("%d", r.NodeNM),
				fmt.Sprintf("%.1f%%", r.IonGainPct),
				fmt.Sprintf("%.1f", r.IoffX100mV),
				fmt.Sprintf("%.1f", r.IoffXFor20PctIon),
				fmt.Sprintf("%.0f", r.DeltaVthFor20Pct*1e3))
		}
		t.Notes = append(t.Notes, "paper: Ioff penalty for +20% Ion falls from 54× \"today\" to 7× at 35 nm; 100 mV ⇒ ~15× Ioff throughout")
		t.WriteTo(os.Stdout)
		emitFigure(experiments.Figure2Figure(rows), "figure2")
	}
	if want("f3") || want("f4") {
		fig3, fig4, err := experiments.Figure3And4(nil)
		if err != nil {
			fatal(err)
		}
		if want("f3") {
			emitFigure(fig3, "figure3")
		}
		if want("f4") {
			emitFigure(fig4, "figure4")
		}
	}
	if want("f5") {
		rows, err := experiments.Figure5()
		if err != nil {
			fatal(err)
		}
		t := &report.Table{
			Title:   "Figure 5 (as data). IR-drop scaling",
			Headers: []string{"node (nm)", "min pitch (µm)", "W/Wmin", "%routing", "ITRS pitch (µm)", "W/Wmin", "%routing"},
		}
		for _, r := range rows {
			t.AddRow(fmt.Sprintf("%d", r.NodeNM),
				fmt.Sprintf("%.0f", r.MinPitchM*1e6),
				fmt.Sprintf("%.1f", r.MinWidthOverMin),
				fmt.Sprintf("%.1f%%", r.MinRoutingFraction*100),
				fmt.Sprintf("%.0f", r.ITRSPitchM*1e6),
				fmt.Sprintf("%.0f", r.ITRSWidthOverMin),
				fmt.Sprintf("%.1f%%", r.ITRSRoutingFraction*100))
		}
		t.Notes = append(t.Notes, "paper: 16× Wmin (<4% routing + 16% pads) at 35 nm minimum pitch; >2000× under ITRS bump counts")
		t.WriteTo(os.Stdout)
		emitFigure(experiments.Figure5Figure(rows), "figure5")
	}

	if want("c1") {
		r, err := experiments.DTM(50)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("C1. Dynamic thermal management (50 nm node)\n")
		fmt.Printf("  theoretical worst case: %.0f W; effective worst case under DTM: %.0f W (%.0f%% — paper ≈75%%)\n",
			r.TheoreticalWorstW, r.EffectiveWorstW, r.EffectiveFraction*100)
		fmt.Printf("  allowable θja relief: +%.0f%% (paper: +33%%)\n", r.ThetaJAHeadroom*100)
		fmt.Printf("  cooling: %s ($%.0f) vs %s ($%.0f) — %.1f× cheaper\n",
			r.CostTheoretical.Class, r.CostTheoretical.CostUSD,
			r.CostEffective.Class, r.CostEffective.CostUSD, r.CostRatio)
		fmt.Printf("  power virus on the DTM-sized package: peak %.1f °C (limit held), throughput %.0f%%\n",
			r.VirusPeakTempC, r.VirusThroughput*100)
		fmt.Printf("  65→75 W cooling-cost step at the 1999 point: %.1f× (paper: ~3×)\n\n", r.Intel65to75)
	}
	if want("c2") {
		rows, err := experiments.Signaling()
		if err != nil {
			fatal(err)
		}
		t := &report.Table{
			Title: "C2. Global signaling: repeated CMOS census vs differential low-swing",
			Headers: []string{"node", "repeaters", "P (W)", "area", "cyc/edge scaled", "unscaled",
				"diff E ratio", "diff P (W)", "tracks", "diff SNR", "di/dt ratio"},
		}
		for _, r := range rows {
			t.AddRow(fmt.Sprintf("%d", r.NodeNM),
				fmt.Sprintf("%d", r.Repeaters),
				fmt.Sprintf("%.1f", r.SignalingPowerW),
				fmt.Sprintf("%.1f%%", r.RepeaterAreaFraction*100),
				fmt.Sprintf("%.1f", r.ScaledCycles),
				fmt.Sprintf("%.1f", r.UnscaledCycles),
				fmt.Sprintf("%.2f", r.DiffEnergyRatio),
				fmt.Sprintf("%.1f", r.DiffPowerW),
				fmt.Sprintf("%.2f", r.DiffTrackRatio),
				fmt.Sprintf("%.1f", r.DiffSNR),
				fmt.Sprintf("%.3f", r.PeakCurrentRatio))
		}
		t.Notes = append(t.Notes,
			"paper: ~10⁴ repeaters at 180 nm → ~10⁶ at 50 nm; >50 W; Alpha 21264 buses at 10% swing",
			"per [9]: unscaled top-level wiring keeps the die reachable in a few cycles at ITRS clocks")
		t.WriteTo(os.Stdout)
	}
	if want("c3") {
		r, err := experiments.RunLibrary(experiments.DefaultCircuitSetup())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("C3. Library optimization at fixed timing (%d gates, %d nm)\n", r.Setup.Gates, r.Setup.NodeNM)
		for _, res := range r.Results {
			fmt.Printf("  %-32s power %.3f mW  size %.0f  met=%v\n",
				res.Library.Name, res.Power.TotalW()*1e3, res.TotalSize, res.TimingMet)
		}
		fmt.Printf("  on-the-fly vs coarse library: %.0f%% power saving (paper: 15-22%%); vs rich: %.0f%%\n\n",
			r.ContinuousVsCoarse*100, r.ContinuousVsRich*100)
	}
	if want("c4") {
		r, err := experiments.RunCVS(experiments.DefaultCircuitSetup())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("C4. Clustered voltage scaling (Vdd,l = %.2f·Vdd,h)\n", r.Setup.LowVddRatio)
		fmt.Printf("  path utilization: %.0f%% of paths below half the cycle (paper: >50%%)\n", r.PathUtilization*100)
		c := r.Clustered
		fmt.Printf("  clustered:   %.0f%% of gates at Vdd,l (paper ~75%%), dynamic saving %.0f%% (paper 45-50%%),\n"+
			"               LC overhead %.1f%% (paper 8-10%%), area +%.0f%% (paper ~15%%), %d LCs, met=%v\n",
			c.AssignedFraction*100, c.DynamicSaving*100, c.LCOverheadFraction*100,
			c.AreaOverhead*100, c.LevelConverters, c.TimingMet)
		u := r.Unclustered
		fmt.Printf("  unclustered: %.0f%% assigned, saving %.0f%%, LC overhead %.1f%%, %d LCs (clustering ablation)\n\n",
			u.AssignedFraction*100, u.DynamicSaving*100, u.LCOverheadFraction*100, u.LevelConverters)
	}
	if want("c5") {
		r, err := experiments.RunDualVth(experiments.DefaultCircuitSetup())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("C5. Dual-Vth assignment\n")
		fmt.Printf("  sensitivity-ordered: %.0f%% high-Vth, leakage -%.0f%% (paper 40-80%%), delay +%.1f%%, met=%v\n",
			r.Sensitivity.HighVthFraction*100, r.Sensitivity.LeakageSaving*100,
			r.Sensitivity.DelayPenalty*100, r.Sensitivity.TimingMet)
		fmt.Printf("  slack-ordered (ablation): %.0f%% high-Vth, leakage -%.0f%%\n\n",
			r.SlackOrdered.HighVthFraction*100, r.SlackOrdered.LeakageSaving*100)
	}
	if want("c6") {
		r, err := experiments.RunResizeVsVdd(experiments.DefaultCircuitSetup())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("C6. Re-sizing vs multi-Vdd (same start netlist)\n")
		fmt.Printf("  resize: size -%.0f%% → dynamic -%.0f%% (sublinearity %.2f — wire cap persists)\n",
			r.Resize.SizeReduction*100, r.Resize.DynamicSaving*100, r.Resize.Sublinearity)
		fmt.Printf("  CVS:    %.0f%% assigned → dynamic -%.0f%% (quadratic Vdd leverage)\n",
			r.CVSOnSame.AssignedFraction*100, r.CVSOnSame.DynamicSaving*100)
		fmt.Printf("  combined flow: total -%.0f%% (dyn -%.0f%%, leak -%.0f%%), met=%v\n",
			r.Combined.TotalSaving*100, r.Combined.DynamicSaving*100, r.Combined.LeakageSaving*100, r.Combined.TimingMet)
		fmt.Printf("  resize-then-CVS: only %.0f%% of gates still tolerate Vdd,l (paper's ordering warning)\n\n",
			r.AssignedAfterResize*100)
	}
	if want("c7") {
		r, err := experiments.RunVddFloor()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("C7. Vdd floor under Pdyn ≥ 10×Pstatic (35 nm, constant-Pstatic policy)\n")
		fmt.Printf("  floor: Vdd = %.2f V (paper ≈0.44 V), dynamic saving %.0f%% (paper 46%%)\n",
			r.Vdd, r.Savings*100)
		fmt.Printf("  at 0.2 V: delay ×%.2f (paper <1.3×), Pdyn -%.0f%% (paper 89%%), Vth = %.0f mV\n\n",
			r.At02V.DelayNorm, (1-r.At02V.PdynNorm)*100, r.At02V.Vth*1e3)
	}
	if want("c8") {
		r, err := experiments.RunBumps()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("C8. ITRS bump plan at 35 nm\n")
		fmt.Printf("  effective power-bump pitch: %.0f µm (paper: 356 µm); attainable: %.0f µm\n",
			r.EffectivePitchM*1e6, r.MinPitchM*1e6)
		fmt.Printf("  required rail width: %.0f× Wmin under ITRS counts (paper >2000×, rails %s), %.0f× at min pitch (paper 16×)\n",
			r.ITRSWidthOverMin, feasStr(r.ITRSFeasible), r.MinWidthOverMin)
		fmt.Printf("  bump current: %.0f A over %d Vdd bumps = %.2f A/bump vs %.2f A capability → need %d bumps\n",
			r.Current.SupplyCurrentA, r.Current.VddBumps, r.Current.PerBumpA, r.Current.CapabilityA, r.Current.RequiredBumps)
		fmt.Printf("  solver check: 1-D ladder/analytic = %.3f (≈1); 2-D all-top-metal bound = %.1f×\n\n",
			r.LadderRatio, r.PessimisticRatio)
	}
	if want("c9") {
		r, err := experiments.RunTransients()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("C9. Sleep-mode wakeup transients and MCML (35 nm)\n")
		fmt.Printf("  MTCMOS block: standby leakage -%.1f%%, active delay +%.1f%%\n",
			r.BlockStandbySavings*100, r.BlockDelayPenalty*100)
		fmt.Printf("  unstaged wakeup of a %.0f A block: droop %.1f%% Vdd at min bump pitch vs %.1f%% under ITRS counts\n",
			r.BlockStepA, r.NoiseMinPitch.NoiseFraction*100, r.NoiseITRS.NoiseFraction*100)
		fmt.Printf("  staging required for <10%% droop: %.1f ns (min pitch) vs %.1f ns (ITRS); max instant step %.0f A vs %.0f A\n",
			r.SafeRampMinPitchS*1e9, r.SafeRampITRSS*1e9, r.MaxInstantStepMinA, r.MaxInstantStepITRSA)
		fmt.Printf("  MCML vs CMOS datapath gate (α=0.5): %.2f µW vs %.2f µW, crossover α*=%.2f, di/dt ratio %.3f\n\n",
			r.MCML.McmlPowerW*1e6, r.MCML.CmosPowerW*1e6, r.MCML.CrossoverActivity, r.MCML.CurrentRippleRatio)
	}
	if want("c10") {
		r, err := experiments.RunStackVth(70)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("C10. Intra-cell multi-Vth stacks (§3.3, %d nm 2-high NAND pull-down)\n", r.NodeNM)
		labels := []string{"all low Vth", "bottom high", "top high", "all high"}
		for i, a := range r.Assignments {
			fmt.Printf("  %-12s leakage -%5.1f%%  delay +%5.1f%%\n", labels[i], a.LeakageSaving*100, a.DelayPenalty*100)
		}
		fmt.Printf("  best within 10%% delay: %d high-Vth device(s), leakage -%.0f%%\n",
			r.Best.HighCount(), r.Best.LeakageSaving*100)
		fmt.Printf("  stack effect: both-off leaks %.2f× a single off device; parking the idle state saves %.0f%%\n\n",
			r.StackFactor, r.ParkedSaving*100)
	}
	if want("c11") {
		r, err := experiments.RunStandby()
		if err != nil {
			fatal(err)
		}
		t := &report.Table{
			Title:   "C11. Standby-leakage techniques (§3.2.1), 180 nm vs 35 nm",
			Headers: []string{"technique", "standby@180", "standby@35", "active", "delay", "area", "scales?"},
		}
		for i, a := range r.At35 {
			b := r.At180[i]
			scal := "yes"
			if !a.Scalable {
				scal = "NO"
			}
			t.AddRow(a.Technique.String(),
				fmt.Sprintf("-%.1f%%", b.StandbyReduction*100),
				fmt.Sprintf("-%.1f%%", a.StandbyReduction*100),
				fmt.Sprintf("-%.1f%%", a.ActiveReduction*100),
				fmt.Sprintf("+%.1f%%", a.DelayPenalty*100),
				fmt.Sprintf("+%.1f%%", a.AreaOverhead*100),
				scal)
		}
		t.Notes = append(t.Notes,
			"paper: body-bias-controlled Vth \"does not scale well\"; dual-Vth is the only technique in current high-end MPUs",
			fmt.Sprintf("non-scalable at 35 nm: %v", r.NonScalableAt35()))
		t.WriteTo(os.Stdout)
	}
	if want("c12") {
		r, err := experiments.RunSwingStudy(50)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("C12. Tolerable-swing study (the §2.2 \"further study\" — %d nm global route, SNR ≥ 2)\n", r.NodeNM)
		print := func(name string, st signaling.SwingStudy) {
			if !st.Feasible {
				fmt.Printf("  %-28s no swing closes (shielding insufficient — the paper's caveat)\n", name)
				return
			}
			alpha := "fails"
			if st.AlphaSwingOK {
				alpha = "closes"
			}
			fmt.Printf("  %-28s min swing %.1f%% of Vdd (energy ×%.2f); Alpha's 10%% swing %s\n",
				name, st.MinSwingFrac*100, st.EnergyRatioAtMin, alpha)
		}
		print("differential, shielded", r.DiffShielded)
		print("differential, unshielded", r.DiffBare)
		print("single-ended, shielded", r.SEShielded)
		print("single-ended, unshielded", r.SEBare)
		fmt.Println()
	}
	if want("c13") {
		r, err := experiments.RunBusPlan(50)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("C13. Signaling-primitive planner (conclusion #2's EDA tool, %d nm, 48 global routes)\n", r.NodeNM)
		fmt.Printf("  primitive mix: %d repeated CMOS, %d low-swing, %d differential low-swing\n",
			r.Repeated, r.LowSwing, r.Differential)
		fmt.Printf("  power: %.2f mW vs %.2f mW all-repeated baseline (-%.0f%%), %.0f routing tracks\n\n",
			r.Plan.TotalPowerW*1e3, r.Plan.BaselinePowerW*1e3, r.Plan.Saving*100, r.Plan.TotalTracks)
	}
	_ = verbose
}

func emitFigure(fig *report.Figure, name string) {
	if *plot {
		fig.RenderASCII(os.Stdout, 72, 18)
		fmt.Println()
	} else {
		// Compact textual dump: endpoint summary per series.
		fmt.Printf("%s\n", fig.Title)
		for _, s := range fig.Series {
			if len(s.X) == 0 {
				continue
			}
			fmt.Printf("  %-40s (%.3g, %.3g) → (%.3g, %.3g), %d pts\n",
				s.Name, s.X[0], s.Y[0], s.X[len(s.X)-1], s.Y[len(s.Y)-1], len(s.X))
		}
		fmt.Println()
	}
	if *csvDir != "" {
		path := filepath.Join(*csvDir, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := fig.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("  wrote %s\n\n", path)
	}
}

func feasStr(ok bool) string {
	if ok {
		return "feasible"
	}
	return "INFEASIBLE on-die"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nanorepro:", err)
	os.Exit(1)
}
