// Command nanorepro regenerates every table and figure of "Future
// Performance Challenges in Nanometer Design" (DAC 2001) from the model
// stack, plus the paper's quantified in-text claims (C1–C13 of DESIGN.md).
//
// Each artifact computes into a typed result (internal/result) and is then
// encoded (internal/render) in the format -format selects: the classic
// terminal text, a single JSON document, or CSV blocks. Computation is
// memoized process-wide, so every format of one run computes each artifact
// exactly once.
//
// Artifacts are independent, so they run concurrently on a bounded worker
// pool (internal/runner). Output order — and every output byte — is
// identical for any -jobs value: each artifact renders into its own buffer
// and buffers are emitted in canonical order. A failed artifact does not
// abort the run; all per-artifact errors are aggregated and reported at the
// end, and the exit status reflects them.
//
// Usage:
//
//	nanorepro                 # print everything, one worker per CPU
//	nanorepro -format json    # the same artifacts as one JSON document
//	nanorepro -format csv     # tables, figures, and claim findings as CSV
//	nanorepro -jobs 1         # serial (same bytes, slower)
//	nanorepro -only t2,f3     # select artifacts (t1,t2,f1..f5,c1..c13)
//	nanorepro -csv out/       # text report + per-figure CSV files
//	nanorepro -plot           # crude terminal plots for the figures
//	nanorepro -v              # append each claim's paper checks
//	nanorepro -scenario scenarios/ext65.json   # compute under a roadmap scenario
//	nanorepro -trace traces/virus.json         # simulate a workload trace
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"

	"nanometer/internal/render"
	"nanometer/internal/repro"
	"nanometer/internal/result"
	"nanometer/internal/runner"
	"nanometer/internal/scenario"
	"nanometer/internal/trace"
)

var (
	list    = flag.Bool("list", false, "list artifact ids and exit")
	only    = flag.String("only", "", "comma-separated artifact ids (t1,t2,f1..f5,c1..c13); empty = all")
	format  = flag.String("format", "text", "output format: text, json, or csv")
	csvDir  = flag.String("csv", "", "directory to write figure CSVs into (text format)")
	plot    = flag.Bool("plot", false, "render terminal plots for figures (text format)")
	verbose = flag.Bool("v", false, "append each claim's paper checks (text format)")
	jobs    = flag.Int("jobs", runtime.NumCPU(), "max artifacts computed concurrently (output is identical for any value)")
	meshN   = flag.Int("mesh-n", 0, "power-grid validation mesh nodes per side for c8 (0 = default 41; larger grids refine the 2-D bound)")
	scnPath = flag.String("scenario", "", "roadmap scenario JSON file (see scenarios/); a sweep runs once per variant")
	trcPath = flag.String("trace", "", "workload trace JSON file (see traces/); simulates it and exits non-zero on failed assertions")
)

func main() {
	flag.Parse()
	if *list {
		for _, a := range repro.Artifacts() {
			fmt.Printf("%-4s %s\n", a.ID, a.Title)
		}
		return
	}
	arts, err := repro.Select(strings.Split(*only, ","))
	if err != nil {
		fatal(err)
	}
	// Validate user input at the boundary: a nonsense -mesh-n must fail
	// here with a clear message, not deep inside solver setup.
	if err := repro.ValidateMeshN(*meshN); err != nil {
		fatal(err)
	}
	if *format != "text" && (*csvDir != "" || *plot || *verbose) {
		fatal(fmt.Errorf("-csv, -plot, and -v only apply to -format text"))
	}
	switch *format {
	case "text", "csv", "json":
	default:
		fatal(fmt.Errorf("unknown -format %q (want text, json, or csv)", *format))
	}
	if *trcPath != "" {
		if *only != "" || *scnPath != "" {
			fatal(fmt.Errorf("-trace is its own mode; it does not combine with -only or -scenario"))
		}
		runTrace(*trcPath)
		return
	}
	// The nil scenario (no -scenario flag) is the base roadmap and the
	// byte-identity path; a scenario with a sweep runs once per variant, in
	// grid order.
	variants := []*scenario.Scenario{nil}
	if *scnPath != "" {
		s, err := scenario.Load(*scnPath)
		if err != nil {
			fatal(err)
		}
		if variants, err = s.Variants(); err != nil {
			fatal(err)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
	}
	pool := runner.Pool{Workers: *jobs}
	opts := repro.Options{CSVDir: *csvDir, Plot: *plot, Verbose: *verbose, MeshN: *meshN}

	// All variants flatten into ONE pool run (variant-major, so output is
	// byte-identical to the historical per-variant loop at any -jobs):
	// workers stay busy across variant boundaries, and the sweep's mesh
	// solves are batch-primed through one shared pattern traversal before
	// the jobs start.
	failed := false
	rep := &result.Report{}
	switch *format {
	case "text":
		failed = stream(pool, repro.VariantJobs(arts, opts, variants, nil))
	case "csv":
		failed = stream(pool, repro.VariantJobs(arts, opts, variants, render.CSV{}))
	case "json":
		grouped, aggErr := repro.ComputeAllVariants(pool, arts, opts, variants)
		for _, results := range grouped {
			for _, r := range results {
				if r != nil {
					rep.Artifacts = append(rep.Artifacts, r)
				}
			}
		}
		if aggErr != nil {
			printFailures(aggErr)
			failed = true
		}
	}
	if *format == "json" {
		if err := (render.JSON{Indent: "  "}).EncodeReport(os.Stdout, rep); err != nil {
			fatal(err)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runTrace is the -trace mode: simulate one workload-trace file (the same
// document POST /api/v1/jobs accepts) and print its findings in the
// selected format. Ctrl-C cancels the simulation mid-trace; a trace whose
// assertions fail exits non-zero after printing each failed check.
func runTrace(path string) {
	tr, err := trace.Load(path)
	if err != nil {
		fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := tr.Run(ctx, nil)
	if err != nil {
		fatal(err)
	}
	var enc interface {
		Encode(io.Writer, *result.Result) error
	}
	switch *format {
	case "json":
		enc = render.JSON{Indent: "  "}
	case "csv":
		enc = render.CSV{}
	default:
		enc = render.Text{CSVDir: *csvDir, Plot: *plot, Verbose: *verbose}
	}
	if err := enc.Encode(os.Stdout, res); err != nil {
		fatal(err)
	}
	if failed := trace.FailedChecks(res); len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "nanorepro: trace %s: %d assertion(s) failed:\n", tr.Name, len(failed))
		for _, f := range failed {
			fmt.Fprintf(os.Stderr, "  %s = %.6g, want %.6g ±%.3g rel\n",
				f.Key, f.Value, f.Check.Paper, f.Check.RelTol)
		}
		os.Exit(1)
	}
}

// stream runs encode jobs on the pool, emitting each artifact's bytes in
// canonical order. It reports per-artifact failures and returns whether any
// occurred, so a sweep finishes its remaining variants before the non-zero
// exit.
func stream(pool runner.Pool, jobs []runner.Job) bool {
	results, sinkErr := pool.RunTo(os.Stdout, jobs)
	if sinkErr != nil {
		fatal(sinkErr)
	}
	if agg := runner.Errs(results); agg != nil {
		printFailures(agg)
		return true
	}
	return false
}

func printFailures(agg error) {
	fmt.Fprintln(os.Stderr, "nanorepro: some artifacts failed:")
	for _, line := range strings.Split(agg.Error(), "\n") {
		fmt.Fprintln(os.Stderr, "  "+line)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nanorepro:", err)
	os.Exit(1)
}
