// Command nanorepro regenerates every table and figure of "Future
// Performance Challenges in Nanometer Design" (DAC 2001) from the model
// stack, plus the paper's quantified in-text claims (C1–C13 of DESIGN.md).
//
// Artifacts are independent, so they run concurrently on a bounded worker
// pool (internal/runner). Output order — and every output byte — is
// identical for any -jobs value: each artifact renders into its own buffer
// and buffers are emitted in canonical order. A failed artifact no longer
// aborts the run; all per-artifact errors are aggregated and reported at the
// end, and the exit status reflects them.
//
// Usage:
//
//	nanorepro                 # print everything, one worker per CPU
//	nanorepro -jobs 1         # serial (same bytes, slower)
//	nanorepro -only t2,f3     # select artifacts (t1,t2,f1..f5,c1..c13)
//	nanorepro -csv out/       # also write figure CSVs
//	nanorepro -plot           # crude terminal plots for the figures
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"nanometer/internal/repro"
	"nanometer/internal/runner"
)

var (
	list    = flag.Bool("list", false, "list artifact ids and exit")
	only    = flag.String("only", "", "comma-separated artifact ids (t1,t2,f1..f5,c1..c13); empty = all")
	csvDir  = flag.String("csv", "", "directory to write figure CSVs into")
	plot    = flag.Bool("plot", false, "render terminal plots for figures")
	verbose = flag.Bool("v", false, "extra detail in claim outputs")
	jobs    = flag.Int("jobs", runtime.NumCPU(), "max artifacts rendered concurrently (output is identical for any value)")
)

func main() {
	flag.Parse()
	if *list {
		for _, a := range repro.Artifacts() {
			fmt.Printf("%-4s %s\n", a.ID, a.Title)
		}
		return
	}
	arts, err := repro.Select(strings.Split(*only, ","))
	if err != nil {
		fatal(err)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
	}
	opts := repro.Options{CSVDir: *csvDir, Plot: *plot, Verbose: *verbose}

	pool := runner.Pool{Workers: *jobs}
	results, sinkErr := pool.RunTo(os.Stdout, repro.Jobs(arts, opts))
	if sinkErr != nil {
		fatal(sinkErr)
	}
	if agg := runner.Errs(results); agg != nil {
		fmt.Fprintln(os.Stderr, "nanorepro: some artifacts failed:")
		for _, line := range strings.Split(agg.Error(), "\n") {
			fmt.Fprintln(os.Stderr, "  "+line)
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nanorepro:", err)
	os.Exit(1)
}
