// Command mosfet characterizes the calibrated compact devices: per-node
// parameters, operating points, and I-V sweeps (CSV) for plotting — the
// working surface of the paper's Eqs. 2–4.
//
// Usage:
//
//	mosfet                          # parameter table for every node
//	mosfet -node 35                 # one node's details + operating points
//	mosfet -node 35 -sweep vdd      # Ion/Ioff vs supply (CSV to stdout)
//	mosfet -node 35 -sweep vth      # Ion/Ioff vs threshold
//	mosfet -node 35 -sweep temp     # leakage vs temperature
//	mosfet -node 35 -metal-gate     # apply the metal-gate variant
//	mosfet -scenario scenarios/ext65.json -node 65   # devices of a scenario roadmap
package main

import (
	"flag"
	"fmt"
	"os"

	"nanometer/internal/device"
	"nanometer/internal/itrs"
	"nanometer/internal/mathx"
	"nanometer/internal/report"
	"nanometer/internal/scenario"
	"nanometer/internal/units"
)

var (
	nodeNM    = flag.Int("node", 0, "technology node (0 = summary of all)")
	sweep     = flag.String("sweep", "", "CSV sweep: vdd | vth | temp")
	metalGate = flag.Bool("metal-gate", false, "remove gate depletion (metal-gate variant)")
	pmos      = flag.Bool("pmos", false, "use the PMOS companion device")
	tempC     = flag.Float64("temp", 27, "analysis temperature (°C)")
	points    = flag.Int("points", 33, "sweep points")
	scnPath   = flag.String("scenario", "", "roadmap scenario JSON file (see scenarios/); devices calibrate against its roadmap")
)

// lab resolves the laboratory the devices come from: the base roadmap, or
// the -scenario file's.
func lab() *device.Lab {
	if *scnPath == "" {
		return device.BaseLab()
	}
	s, err := scenario.Load(*scnPath)
	if err != nil {
		fatal(err)
	}
	l, err := s.Resolve()
	if err != nil {
		fatal(err)
	}
	return l
}

func main() {
	flag.Parse()
	if *nodeNM == 0 {
		summary()
		return
	}
	l := lab()
	d, err := pick(l, *nodeNM)
	if err != nil {
		fatal(err)
	}
	if *metalGate {
		d = d.MetalGate()
	}
	node := l.MustNode(*nodeNM)
	T := units.CelsiusToKelvin(*tempC)

	if *sweep != "" {
		runSweep(d, node, T)
		return
	}

	fmt.Printf("%s (%d nm node, %d)\n", d.Name, node.DrawnNM, node.Year)
	fmt.Printf("  Leff          %s\n", units.Engineering(d.LeffM, "m", 3))
	fmt.Printf("  Tox physical  %s   electrical %s\n",
		units.Engineering(d.ToxPhysicalM, "m", 3), units.Engineering(d.ToxElectricalM(), "m", 3))
	fmt.Printf("  Coxe          %.3g F/m²\n", d.CoxElectrical())
	fmt.Printf("  µeff          %.0f cm²/Vs (calibrated; DESIGN.md §2)\n", d.MobilityM2PerVs*1e4)
	fmt.Printf("  Esat·Leff     %.3f V\n", d.EsatLeffV())
	fmt.Printf("  Rs            %.0f Ω·µm\n", d.RsOhmM*1e6)
	fmt.Printf("  Vth0          %.3f V at Vds = %.2f V; DIBL %.0f mV/V\n", d.Vth0, d.VddRef, d.DIBL*1e3)
	fmt.Printf("  swing         %.1f mV/dec at 300 K (%.1f at %.0f °C)\n",
		d.SubthresholdSwing300K*1e3, d.SubthresholdSwing(T)*1e3, *tempC)
	fmt.Println()
	fmt.Printf("operating point at Vdd = %.2f V, %.0f °C:\n", node.Vdd, *tempC)
	fmt.Printf("  Ion  = %.1f µA/µm (ITRS target %.0f)\n",
		d.IonPerWidth(node.Vdd, T), node.IonTargetAPerM)
	fmt.Printf("  Ioff = %.3g nA/µm (ITRS projection %.0f)\n",
		units.NAPerUMFromAmpsPerMeter(d.IoffPerWidth(node.Vdd, T)),
		units.NAPerUMFromAmpsPerMeter(node.IoffITRSAPerM))
	fmt.Printf("  Ion/Ioff = %.3g\n", d.IonOverIoff(node.Vdd, T))
	fmt.Printf("  CV/I (FO4 metric) = %s\n", units.Engineering(d.DelayMetric(node.Vdd, T, 4), "s", 3))
}

func pick(l *device.Lab, nm int) (*device.Device, error) {
	if *pmos {
		return l.ForNodePMOS(nm)
	}
	return l.ForNode(nm)
}

func summary() {
	l := lab()
	t := &report.Table{
		Title: "Calibrated compact devices (NMOS, nominal supply, 300 K)",
		Headers: []string{"node", "Vdd", "Leff (nm)", "Tox (nm)", "µeff (cm²/Vs)",
			"Esat·L (V)", "Vth (V)", "Ion (µA/µm)", "Ioff (nA/µm)", "Ion/Ioff"},
	}
	for _, nm := range l.NodesNM() {
		d, err := l.ForNode(nm)
		if err != nil {
			fatal(err)
		}
		node := l.MustNode(nm)
		T := units.RoomTemperature
		t.AddRow(
			fmt.Sprintf("%d", nm),
			fmt.Sprintf("%.1f", node.Vdd),
			fmt.Sprintf("%.0f", d.LeffM*1e9),
			fmt.Sprintf("%.2f", d.ToxPhysicalM*1e9),
			fmt.Sprintf("%.0f", d.MobilityM2PerVs*1e4),
			fmt.Sprintf("%.3f", d.EsatLeffV()),
			fmt.Sprintf("%.3f", d.Vth0),
			fmt.Sprintf("%.0f", d.IonPerWidth(node.Vdd, T)),
			fmt.Sprintf("%.3g", units.NAPerUMFromAmpsPerMeter(d.IoffPerWidth(node.Vdd, T))),
			fmt.Sprintf("%.2e", d.IonOverIoff(node.Vdd, T)),
		)
	}
	t.Notes = append(t.Notes, "µeff is the calibrated stand-in for the paper's SPICE decks (DESIGN.md §2)")
	t.WriteTo(os.Stdout)
}

func runSweep(d *device.Device, node itrs.Node, T float64) {
	w := os.Stdout
	switch *sweep {
	case "vdd":
		fmt.Fprintln(w, "vdd_V,ion_uA_per_um,ioff_nA_per_um,cvi_ps")
		for _, v := range mathx.Linspace(0.2*node.Vdd, 1.2*node.Vdd, *points) {
			fmt.Fprintf(w, "%.4f,%.4g,%.4g,%.4g\n", v,
				d.IonPerWidth(v, T),
				units.NAPerUMFromAmpsPerMeter(d.IoffPerWidth(v, T)),
				d.DelayMetric(v, T, 4)*1e12)
		}
	case "vth":
		fmt.Fprintln(w, "vth_V,ion_uA_per_um,ioff_nA_per_um")
		for _, vth := range mathx.Linspace(0.02, 0.45, *points) {
			dd := d.WithVth(vth)
			fmt.Fprintf(w, "%.4f,%.4g,%.4g\n", vth,
				dd.IonPerWidth(node.Vdd, T),
				units.NAPerUMFromAmpsPerMeter(dd.IoffPerWidth(node.Vdd, T)))
		}
	case "temp":
		fmt.Fprintln(w, "temp_C,ioff_nA_per_um,swing_mV_per_dec")
		for _, tc := range mathx.Linspace(0, 125, *points) {
			tk := units.CelsiusToKelvin(tc)
			fmt.Fprintf(w, "%.1f,%.4g,%.2f\n", tc,
				units.NAPerUMFromAmpsPerMeter(d.IoffPerWidth(node.Vdd, tk)),
				d.SubthresholdSwing(tk)*1e3)
		}
	default:
		fatal(fmt.Errorf("unknown sweep %q (vdd | vth | temp)", *sweep))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mosfet:", err)
	os.Exit(1)
}
