// Command powopt runs the paper's circuit-level power-optimization flow on a
// generated netlist: clustered voltage scaling, dual-Vth assignment, and
// post-synthesis re-sizing, individually or combined.
//
// Usage:
//
//	powopt -node 100 -gates 4000 -flow combined
//	powopt -node 70 -flow cvs -lowvdd 0.7 -guard 1.2
//	powopt -flow resize
//	powopt -flow combined -save out.nl     # save the optimized netlist
//	powopt -load in.nl -flow dualvth       # operate on a saved netlist
package main

import (
	"flag"
	"fmt"
	"os"

	"nanometer/internal/core"
	"nanometer/internal/cvs"
	"nanometer/internal/dualvth"
	"nanometer/internal/netlist"
	"nanometer/internal/power"
	"nanometer/internal/resize"
	"nanometer/internal/sta"
)

var (
	nodeNM = flag.Int("node", 100, "technology node")
	gates  = flag.Int("gates", 4000, "netlist size")
	levels = flag.Int("levels", 30, "logic depth")
	lowVdd = flag.Float64("lowvdd", 0.65, "Vdd,l / Vdd,h ratio")
	guard  = flag.Float64("guard", 1.15, "clock period guard over critical delay")
	seed   = flag.Int64("seed", 7, "netlist seed")
	flow   = flag.String("flow", "combined", "flow: cvs | dualvth | resize | combined")
	save   = flag.String("save", "", "write the optimized netlist to this file")
	load   = flag.String("load", "", "read the netlist from this file instead of generating")
)

func main() {
	flag.Parse()
	var c *netlist.Circuit
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fatal(err)
		}
		c, err = netlist.Read(f)
		closeErr := f.Close()
		if err != nil {
			fatal(err)
		}
		if closeErr != nil {
			fatal(closeErr)
		}
	} else {
		tech, err := netlist.NewTech(*nodeNM, *lowVdd)
		if err != nil {
			fatal(err)
		}
		p := netlist.DefaultGenParams()
		p.Gates = *gates
		p.Levels = *levels
		p.ShortPathFraction = 0.5
		p.Seed = *seed
		c, err = netlist.Generate(tech, p)
		if err != nil {
			fatal(err)
		}
	}
	period := c.ClockPeriodS
	if period == 0 {
		var err error
		period, err = sta.SetPeriodFromCritical(c, *guard)
		if err != nil {
			fatal(err)
		}
	}
	tech := c.Tech
	st := c.Stats()
	r := sta.Analyze(c)
	power.PropagateActivity(c)
	before := power.Analyze(c, 1/period)
	vddL := tech.VddH()
	if tech.HasLowVdd() {
		vddL = tech.Vdd(1)
	}
	fmt.Printf("netlist: %d gates (%d PO, %d PI), period %.0f ps, %d nm, Vdd %.2f/%.2f V\n",
		st.Gates, st.POs, st.PIs, period*1e12, tech.NodeNM, tech.VddH(), vddL)
	fmt.Printf("baseline: dynamic %.3f mW + leakage %.3f mW = %.3f mW; %.0f%% of paths below half cycle\n\n",
		before.DynamicW*1e3, before.LeakageW*1e3, before.TotalW()*1e3, r.PathUtilization(c, 0.5)*100)

	switch *flow {
	case "cvs":
		res, err := cvs.Assign(c, cvs.DefaultOptions())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("CVS: %.1f%% of gates at Vdd,l, %d level converters\n", res.AssignedFraction*100, res.LevelConverters)
		fmt.Printf("dynamic power: %.3f → %.3f mW (-%.1f%%), LC overhead %.1f%%, area +%.1f%%, met=%v\n",
			res.Before.DynamicW*1e3, res.After.DynamicW*1e3, res.DynamicSaving*100,
			res.LCOverheadFraction*100, res.AreaOverhead*100, res.TimingMet)
	case "dualvth":
		res, err := dualvth.Assign(c, dualvth.Options{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("dual-Vth: %.1f%% of gates at high Vth\n", res.HighVthFraction*100)
		fmt.Printf("leakage: %.3f → %.3f mW (-%.1f%%), delay +%.2f%%, met=%v\n",
			res.Before.LeakageW*1e3, res.After.LeakageW*1e3, res.LeakageSaving*100,
			res.DelayPenalty*100, res.TimingMet)
	case "resize":
		res, err := resize.Downsize(c, resize.DefaultOptions())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("resize: total size -%.1f%%\n", res.SizeReduction*100)
		fmt.Printf("dynamic power -%.1f%% (sublinearity %.2f), total -%.1f%%, met=%v\n",
			res.DynamicSaving*100, res.Sublinearity, res.PowerSaving*100, res.TimingMet)
	case "combined":
		res, err := core.RunFlow(c, core.DefaultFlowOptions())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("stage 1 (CVS):      %.0f%% at Vdd,l, dynamic -%.1f%%\n",
			res.CVS.AssignedFraction*100, res.CVS.DynamicSaving*100)
		fmt.Printf("stage 2 (dual-Vth): %.0f%% high-Vth, leakage -%.1f%%\n",
			res.DualVth.HighVthFraction*100, res.DualVth.LeakageSaving*100)
		fmt.Printf("stage 3 (resize):   size -%.1f%%, dynamic -%.1f%% more\n",
			res.Resize.SizeReduction*100, res.Resize.DynamicSaving*100)
		fmt.Printf("combined: %.3f → %.3f mW (total -%.1f%%; dynamic -%.1f%%, leakage -%.1f%%), met=%v\n",
			res.Before.TotalW()*1e3, res.After.TotalW()*1e3,
			res.TotalSaving*100, res.DynamicSaving*100, res.LeakageSaving*100, res.TimingMet)
	default:
		fmt.Fprintf(os.Stderr, "powopt: unknown flow %q\n", *flow)
		os.Exit(2)
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := netlist.Write(f, c); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("saved optimized netlist to %s\n", *save)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "powopt:", err)
	os.Exit(1)
}
