// Command gridsim analyzes power-distribution IR drop for a roadmap node:
// analytic BACPAC-style rail sizing against a hot-spot budget, numerical
// validation (1-D ladder and 2-D mesh), bump-current checks, and wakeup
// transient analysis.
//
// Usage:
//
//	gridsim -node 35                  # min-pitch and ITRS-plan sizing
//	gridsim -node 35 -pitch 120e-6    # explicit bump pitch
//	gridsim -node 35 -step 40         # 40 A wakeup step analysis
package main

import (
	"flag"
	"fmt"
	"os"

	"nanometer/internal/itrs"
	"nanometer/internal/powergrid"
)

var (
	nodeNM  = flag.Int("node", 35, "technology node (180,130,100,70,50,35)")
	pitch   = flag.Float64("pitch", 0, "explicit bump pitch in meters (0 = analyze both standard plans)")
	hotspot = flag.Float64("hotspot", 4, "hot-spot power-density factor")
	budget  = flag.Float64("budget", 0.10, "IR budget as a fraction of Vdd")
	meshN   = flag.Int("mesh", 41, "mesh dimension for the 2-D validation")
	step    = flag.Float64("step", 0, "analyze a wakeup current step of this many amps")
)

func main() {
	flag.Parse()
	if *meshN < powergrid.MinMeshN || *meshN > powergrid.MaxMeshN {
		fmt.Fprintf(os.Stderr, "gridsim: -mesh %d outside [%d, %d]\n", *meshN, powergrid.MinMeshN, powergrid.MaxMeshN)
		os.Exit(1)
	}
	node, err := itrs.ByNode(*nodeNM)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridsim:", err)
		os.Exit(1)
	}
	fmt.Printf("node %d nm: Vdd %.1f V, %.0f W / %.1f cm² (hot-spot ×%.0f), top metal %.2f Ω/sq, Wmin %.2f µm\n\n",
		node.DrawnNM, node.Vdd, node.MaxPowerW, node.DieAreaM2*1e4, *hotspot,
		node.TopMetalSheetOhms(), node.TopMetalMinWidthM*1e6)

	plans := []struct {
		name  string
		pitch float64
	}{}
	if *pitch > 0 {
		plans = append(plans, struct {
			name  string
			pitch float64
		}{"explicit", *pitch})
	} else {
		plans = append(plans,
			struct {
				name  string
				pitch float64
			}{"minimum attainable pitch", node.BumpPitchMinM},
			struct {
				name  string
				pitch float64
			}{"ITRS pad-count plan", node.EffectiveBumpPitchM()})
	}
	for _, p := range plans {
		spec := powergrid.DefaultSpec(node, p.pitch)
		spec.HotspotFactor = *hotspot
		spec.IRBudgetFraction = *budget
		sz, feasible, err := spec.FeasibleRails()
		if err != nil {
			fmt.Fprintln(os.Stderr, "gridsim:", err)
			os.Exit(1)
		}
		fmt.Printf("%s (pitch %.0f µm):\n", p.name, p.pitch*1e6)
		fmt.Printf("  rail width %.2f µm = %.1f × Wmin; cell current %.2f A\n",
			sz.RailWidthM*1e6, sz.WidthOverMin, sz.CellCurrentA)
		fmt.Printf("  routing: rails %.1f%% + landing pads %.0f%% = %.1f%%",
			sz.RailRoutingFraction*100, spec.LandingPadFraction*100, sz.TotalRoutingFraction*100)
		if !feasible {
			fmt.Printf("  — INFEASIBLE (rails exceed the pitch)")
		}
		fmt.Println()
		ladder, err := powergrid.ValidateAnalytic(spec, 256)
		if err == nil {
			fmt.Printf("  1-D ladder check: drop/budget = %.3f\n", ladder)
		}
		mesh, err := powergrid.PessimisticRatio(spec, *meshN)
		if err == nil {
			fmt.Printf("  2-D all-top-metal bound: %.1f× budget (lower grid must carry the spread)\n", mesh)
		}
		fmt.Println()
	}

	chk := powergrid.CheckBumpCurrent(node)
	fmt.Printf("bump-current check: %.0f A over %d Vdd bumps = %.3f A/bump vs %.3f A capability → ",
		chk.SupplyCurrentA, chk.VddBumps, chk.PerBumpA, chk.CapabilityA)
	if chk.Compatible {
		fmt.Println("OK")
	} else {
		fmt.Printf("INSUFFICIENT (need %d Vdd bumps)\n", chk.RequiredBumps)
	}

	if *step > 0 {
		fmt.Println()
		for _, p := range plans {
			spec := powergrid.DefaultTransientSpec(node)
			if p.pitch == node.BumpPitchMinM {
				spec.PowerBumps = int(node.DieAreaM2 / (p.pitch * p.pitch))
			}
			res, err := spec.Step(*step, 1e-9)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gridsim:", err)
				os.Exit(1)
			}
			safe, _ := spec.MinSafeRampS(*step, 0.10)
			fmt.Printf("%s: %.0f A step in 1 ns → droop %.1f%% Vdd (L=%.2f pH, Z0=%.2f mΩ); safe ramp ≥ %.2f ns; max instant step %.0f A\n",
				p.name, *step, res.NoiseFraction*100,
				spec.EffectiveInductance()*1e12, spec.CharacteristicImpedance()*1e3,
				safe*1e9, spec.MaxStepA(0.10))
		}
	}
}
