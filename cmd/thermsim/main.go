// Command thermsim simulates dynamic thermal management for a roadmap node:
// a synthetic workload drives the RC thermal plant through an on-die sensor
// and a DTM controller, and the tool reports temperatures, throughput, and
// the packaging implications.
//
// Usage:
//
//	thermsim -node 50 -policy throttle -duty 0.5 -seconds 60
//	thermsim -node 35 -policy dvs -virus
//	thermsim -node 50 -policy none -trace
//	thermsim -node 35 -zones                # hot-spot zones + sensor placement
package main

import (
	"flag"
	"fmt"
	"os"

	"nanometer/internal/itrs"
	"nanometer/internal/thermal"
)

var (
	nodeNM  = flag.Int("node", 50, "technology node (180,130,100,70,50,35)")
	policy  = flag.String("policy", "throttle", "DTM policy: none | throttle | dvs")
	duty    = flag.Float64("duty", 0.5, "throttle duty cycle")
	dvsF    = flag.Float64("dvs-f", 0.7, "DVS frequency scale")
	dvsV    = flag.Float64("dvs-v", 0.8, "DVS supply scale")
	seconds = flag.Float64("seconds", 60, "simulated time")
	dt      = flag.Float64("dt", 0.01, "control interval (s)")
	cth     = flag.Float64("cth", 40, "thermal capacitance (J/°C)")
	virus   = flag.Bool("virus", false, "run the theoretical worst-case power virus instead of a workload")
	seed    = flag.Int64("seed", 1, "workload seed")
	trace   = flag.Bool("trace", false, "print a temperature trace (1 line per second)")
	margin  = flag.Float64("margin", 1, "sensor trip margin below the junction limit (°C)")
	zones   = flag.Bool("zones", false, "run the multi-zone hot-spot analysis instead of a DTM simulation")
)

func main() {
	flag.Parse()
	node, err := itrs.ByNode(*nodeNM)
	if err != nil {
		fmt.Fprintln(os.Stderr, "thermsim:", err)
		os.Exit(1)
	}
	if *zones {
		runZones(node)
		return
	}
	var ctrl thermal.Controller
	switch *policy {
	case "none":
		ctrl = thermal.NoDTM{}
	case "throttle":
		ctrl = thermal.ClockThrottle{DutyCycle: *duty}
	case "dvs":
		ctrl = thermal.DVS{FreqScale: *dvsF, VddScale: *dvsV}
	default:
		fmt.Fprintf(os.Stderr, "thermsim: unknown policy %q\n", *policy)
		os.Exit(2)
	}

	steps := int(*seconds / *dt)
	var demand []float64
	if *virus {
		demand = thermal.PowerVirus(node.MaxPowerW, steps)
	} else {
		p := thermal.DefaultWorkload(node.MaxPowerW)
		p.Seed = *seed
		demand = p.Generate(steps)
	}

	pkg := thermal.Package{ThetaJA: node.ThetaJA, AmbientC: node.AmbientTempC}
	plant := thermal.NewPlant(pkg, *cth)
	sensor := &thermal.Sensor{TripC: node.JunctionTempC - *margin, HysteresisC: 2}

	fmt.Printf("node %d nm: θja=%.2f °C/W, ambient %.0f °C, junction limit %.0f °C, Pmax %.0f W\n",
		node.DrawnNM, node.ThetaJA, node.AmbientTempC, node.JunctionTempC, node.MaxPowerW)
	fmt.Printf("policy: %s; plant τ = %.1f s; %d steps of %.0f ms\n\n",
		ctrl.Name(), plant.TimeConstant(), steps, *dt*1e3)

	if *trace {
		// Re-run step by step to print the trace.
		perLine := int(1 / *dt)
		if perLine < 1 {
			perLine = 1
		}
		for i, d := range demand {
			over := sensor.Read(plant.TempC)
			fs, vs := ctrl.Act(over)
			plant.Step(d*fs*vs*vs, *dt)
			if i%perLine == 0 {
				bar := int((plant.TempC - node.AmbientTempC) / (node.JunctionTempC - node.AmbientTempC) * 40)
				if bar < 0 {
					bar = 0
				}
				if bar > 48 {
					bar = 48
				}
				state := " "
				if over {
					state = "T"
				}
				fmt.Printf("t=%5.1fs  T=%6.2f°C  P=%6.1fW %s |%s\n", float64(i)**dt, plant.TempC, d*fs*vs*vs, state, barutf(bar))
			}
		}
		sensor.Reset()
		return
	}

	res := thermal.Simulate(plant, sensor, ctrl, demand, *dt)
	fmt.Printf("peak junction temperature: %.2f °C (limit %.0f °C)\n", res.PeakTempC, node.JunctionTempC)
	fmt.Printf("peak / mean power: %.1f / %.1f W\n", res.PeakPowerW, res.MeanPowerW)
	fmt.Printf("throttled %.1f%% of intervals; throughput %.1f%% of unthrottled\n",
		res.ThrottledFraction*100, res.Throughput*100)

	sol, err := thermal.SelectCooling(res.MeanPowerW, node.JunctionTempC, node.AmbientTempC)
	if err != nil {
		fmt.Fprintln(os.Stderr, "thermsim:", err)
		os.Exit(1)
	}
	fmt.Printf("cooling for the sustained level: %s (θja ≤ %.2f °C/W), ≈$%.0f\n", sol.Class, sol.ThetaJA, sol.CostUSD)
}

func runZones(node itrs.Node) {
	area, powerShare := thermal.HotspotSplit()
	pkg := thermal.Package{ThetaJA: node.ThetaJA, AmbientC: node.AmbientTempC}
	plant, err := thermal.NewMultiZonePlant(pkg, *cth, area)
	if err != nil {
		fmt.Fprintln(os.Stderr, "thermsim:", err)
		os.Exit(1)
	}
	powers := make([]float64, len(powerShare))
	for i, s := range powerShare {
		powers[i] = s * node.MaxPowerW
	}
	for i := 0; i < int(*seconds / *dt); i++ {
		if err := plant.Step(powers, *dt); err != nil {
			fmt.Fprintln(os.Stderr, "thermsim:", err)
			os.Exit(1)
		}
	}
	names := []string{"memory (50% area)", "logic (37.5%)", "hot logic (12.5%)"}
	uniform := pkg.JunctionTempC(node.MaxPowerW)
	fmt.Printf("multi-zone steady state at %.0f W (%d nm):\n", node.MaxPowerW, node.DrawnNM)
	for i, n := range names {
		fmt.Printf("  %-20s %6.2f °C  (sensor here misses the hot spot by %.2f °C)\n",
			n, plant.ZoneTempC[i], plant.SensorError(i))
	}
	fmt.Printf("  uniform-density model: %.2f °C — hot spot runs %.2f °C above it\n",
		uniform, plant.MaxTempC()-uniform)
	fmt.Printf("  a thermal monitor in the memory zone needs a %.1f °C trip-point offset\n", plant.SensorError(0))
}

func barutf(n int) string {
	out := make([]rune, n)
	for i := range out {
		out[i] = '■'
	}
	return string(out)
}
