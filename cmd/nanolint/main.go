// nanolint is the repo's custom static-analysis gate: a multichecker over
// the project-specific analyzers in internal/analyzers, which turn the
// invariants the test suite enforces dynamically — golden-byte
// determinism, the solver-error contract, compute-cache key coverage,
// pooled-workspace discipline — into compile-time checks.
//
// Usage:
//
//	go run ./cmd/nanolint ./...        # lint the whole module (make lint)
//	go run ./cmd/nanolint -list        # describe the analyzers
//
// Findings print as file:line:col: <analyzer>: <message> and make the
// process exit 1 (load or internal errors exit 2), so CI failure output
// always names the analyzer that fired. A finding can be suppressed with
// a `//lint:allow <analyzer> <reason>` comment on the flagged line or the
// line directly above it; the reason is mandatory by review policy.
package main

import (
	"flag"
	"fmt"
	"os"

	"nanometer/internal/analyzers"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: nanolint [-list] [packages]\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%s\n    %s\n", a.Name, a.Doc)
			if a.Scope != nil {
				fmt.Printf("    scope: %v\n", a.Scope)
			}
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analyzers.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	findings := 0
	for _, pkg := range pkgs {
		diags, err := analyzers.RunAnalyzers(pkg, analyzers.All())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "nanolint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
