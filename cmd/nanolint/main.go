// nanolint is the repo's custom static-analysis gate: a multichecker over
// the project-specific analyzers in internal/analyzers, which turn the
// invariants the test suite enforces dynamically — golden-byte
// determinism, the solver-error contract, compute-cache key coverage,
// pooled-workspace discipline — into compile-time checks.
//
// Usage:
//
//	go run ./cmd/nanolint ./...        # lint the whole module (make lint)
//	go run ./cmd/nanolint -json ./...  # one JSON finding per line (CI)
//	go run ./cmd/nanolint -list        # describe the analyzers
//
// Findings print as file:line:col: <analyzer>: <message> and make the
// process exit 1 (load or internal errors exit 2), so CI failure output
// always names the analyzer that fired. With -json each finding is one
// JSON object per line ({"file","line","col","analyzer","message"}) for
// machine consumers — CI converts these into GitHub annotations. A
// finding can be suppressed with a `//lint:allow <analyzer> <reason>`
// comment on the flagged line or the line directly above it; the reason
// is mandatory by review policy.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"nanometer/internal/analyzers"
)

// jsonFinding is the -json wire shape: flat, one object per line, stable
// field names (CI's annotation converter and any editor integration key
// on these).
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as one JSON object per line")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: nanolint [-list] [-json] [packages]\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%s\n    %s\n", a.Name, a.Doc)
			if a.Scope != nil {
				fmt.Printf("    scope: %v\n", a.Scope)
			}
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analyzers.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	enc := json.NewEncoder(os.Stdout)
	findings := 0
	for _, pkg := range pkgs {
		diags, err := analyzers.RunAnalyzers(pkg, analyzers.All())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for _, d := range diags {
			if *asJSON {
				if err := enc.Encode(jsonFinding{
					File:     relPath(d.Pos.Filename),
					Line:     d.Pos.Line,
					Col:      d.Pos.Column,
					Analyzer: d.Analyzer,
					Message:  d.Message,
				}); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(2)
				}
			} else {
				fmt.Println(d)
			}
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "nanolint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// relPath shortens an absolute finding path to be relative to the working
// directory when it is inside it — the shape CI's annotation converter
// needs (GitHub maps annotations by repo-relative path) — and leaves any
// other path untouched.
func relPath(p string) string {
	wd, err := os.Getwd()
	if err != nil {
		return p
	}
	rel, err := filepath.Rel(wd, p)
	if err != nil || rel == ".." || len(rel) > 2 && rel[:3] == ".."+string(filepath.Separator) {
		return p
	}
	return rel
}
