// Command benchjson runs the repository's performance benchmarks through
// `go test -bench` and distills the output into one machine-readable JSON
// document (by convention committed as BENCH_<pr>.json), so performance
// claims in review are pinned to numbers a script can diff rather than
// prose. The default selection covers the solver kernels (per-variant
// ns/op, allocs/op, and solver iteration counts), the smoother ablation,
// the batched sweep solve, the RC-transient validator, and the
// full-report wall clock at each worker count. With -cpu the whole
// selection repeats per GOMAXPROCS value, pinning the serial/parallel
// matrix in one document.
//
// A prior run's JSON can be attached under "baseline" with -baseline,
// putting before/after in a single committed file:
//
//	go run ./cmd/benchjson -out BENCH_3.json -baseline bench_seed.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Report is the top-level JSON document.
type Report struct {
	// GeneratedAt is the RFC 3339 run timestamp.
	GeneratedAt string `json:"generated_at"`
	// GoVersion and CPU identify the toolchain and the machine;
	// GOMAXPROCS is the parallelism the numbers were taken at.
	GoVersion  string `json:"go_version"`
	CPU        string `json:"cpu,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Bench is the -bench regexp the run used; Benchtime the -benchtime.
	Bench     string `json:"bench"`
	Benchtime string `json:"benchtime"`
	// CPUList is the -cpu matrix the run used (empty: the ambient
	// GOMAXPROCS only). With a matrix, each benchmark repeats once per
	// value and its row records which one under "gomaxprocs".
	CPUList string `json:"cpu_list,omitempty"`
	// Benchmarks holds one entry per benchmark (or sub-benchmark) line.
	Benchmarks []Benchmark `json:"benchmarks"`
	// Baseline optionally embeds a previous report for before/after
	// comparison in one file.
	Baseline *Report `json:"baseline,omitempty"`
}

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	// Name is the full benchmark path, e.g.
	// "BenchmarkMeshSolve/n=63/MG-workspace".
	Name string `json:"name"`
	// N is the harness iteration count the stats were averaged over.
	N int64 `json:"n"`
	// GOMAXPROCS is the parallelism this row ran at, parsed from the
	// `-N` suffix the bench harness appends (absent suffix means 1).
	// With `-cpu 1,4` runs the same Name appears once per value.
	GOMAXPROCS int `json:"gomaxprocs"`
	// NsPerOp is wall time per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp are present when the run used -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics carries custom b.ReportMetric units (e.g. solver "iters").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var (
		out       = flag.String("out", "", "output file (default stdout)")
		bench     = flag.String("bench", "BenchmarkMeshSolve|BenchmarkSmoothers|BenchmarkSweepBatch|BenchmarkValidationRCSim|BenchmarkFullReport", "go test -bench regexp")
		benchtime = flag.String("benchtime", "1s", "go test -benchtime value")
		pkg       = flag.String("pkg", ".", "package pattern holding the benchmarks")
		cpu       = flag.String("cpu", "", "go test -cpu matrix, e.g. 1,4 (each benchmark repeats per GOMAXPROCS value)")
		baseline  = flag.String("baseline", "", "prior benchjson output to embed under \"baseline\"")
	)
	flag.Parse()

	rep := &Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Bench:       *bench,
		Benchtime:   *benchtime,
		CPUList:     *cpu,
	}
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fatal(err)
		}
		rep.Baseline = &Report{}
		if err := json.Unmarshal(data, rep.Baseline); err != nil {
			fatal(fmt.Errorf("parsing baseline %s: %w", *baseline, err))
		}
		// A baseline-of-a-baseline would nest unboundedly; keep one level.
		rep.Baseline.Baseline = nil
	}

	argv := []string{"test", "-run", "^$", "-bench", *bench,
		"-benchtime", *benchtime, "-benchmem"}
	if *cpu != "" {
		argv = append(argv, "-cpu", *cpu)
	}
	cmd := exec.Command("go", append(argv, *pkg)...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	// Benchmarks print before a potential failure; surface both.
	os.Stderr.Write(raw)
	if err != nil {
		fatal(fmt.Errorf("go test -bench: %w", err))
	}
	rep.CPU, rep.Benchmarks = parseBenchOutput(string(raw))
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines matched %q", *bench))
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
}

// parseBenchOutput extracts the cpu: header and every benchmark line from
// `go test -bench` output. Lines look like:
//
//	BenchmarkX/sub-8  	 123	 456 ns/op	 7.0 iters	 0 B/op	 0 allocs/op
//
// i.e. name, iteration count, then value/unit pairs.
func parseBenchOutput(out string) (cpu string, benches []Benchmark) {
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "cpu:"); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name, procs := splitProcSuffix(fields[0])
		b := Benchmark{Name: name, GOMAXPROCS: procs, N: n}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				v := val
				b.BytesPerOp = &v
			case "allocs/op":
				v := val
				b.AllocsPerOp = &v
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = val
			}
		}
		benches = append(benches, b)
	}
	return cpu, benches
}

// splitProcSuffix separates the trailing -<GOMAXPROCS> the bench harness
// appends when GOMAXPROCS > 1, keeping names stable across machines and
// -cpu matrix values while preserving the parallelism as data. The harness
// omits the suffix at GOMAXPROCS = 1, so a bare name means 1.
func splitProcSuffix(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 1
	}
	procs, err := strconv.Atoi(name[i+1:])
	if err != nil || procs < 1 {
		return name, 1
	}
	return name[:i], procs
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
