// Command nanoreprod serves the reproduction over HTTP: the artifact
// registry cmd/nanorepro prints once per invocation becomes a long-lived
// queryable service (internal/serve) with result caching, ETag
// revalidation, weighted admission control, Prometheus metrics, and
// graceful shutdown.
//
// Endpoints:
//
//	GET  /api/v1/artifacts                    index (ids, titles, URLs)
//	GET  /api/v1/artifacts/{id}               one artifact; query params:
//	       format=text|json|csv (default text), mesh-n=N (c8 mesh),
//	       verbose=1, plot=1 (text only)
//	GET  /api/v1/report                       the full run, same params
//	POST /api/v1/scenarios                    compute under a scenario roadmap
//	       (body: scenario JSON; NDJSON out, one line per sweep variant;
//	       only=id,... and mesh-n=N as above)
//	POST /api/v1/cache/flush                  drop memoized results
//	GET  /healthz                             liveness probe
//	GET  /metrics                             Prometheus text format
//	GET  /debug/pprof/                        runtime profiles
//
// Artifact bytes are identical to cmd/nanorepro's output for the same
// options. Repeated requests compute once per process (the compute cache);
// If-None-Match with the returned ETag answers 304 without computing at
// all.
//
// The -loadgen mode turns the binary into its own load generator for
// `make bench`: it fires a concurrent request mix at a daemon (its own
// in-process instance by default, or -base URL) and reports throughput,
// latency percentiles, and the server's cache counters.
//
// Usage:
//
//	nanoreprod                        # serve on :8077
//	nanoreprod -addr :9000 -gate 16 -timeout 10s
//	nanoreprod -loadgen               # self-contained load run
//	nanoreprod -loadgen -base http://host:8077 -requests 500 -concurrency 32
//	nanoreprod -loadgen -scenario-mix 0.1      # 1 in 10 requests POSTs a scenario sweep
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"nanometer/internal/serve"
	"nanometer/internal/store"
)

var (
	addr    = flag.String("addr", ":8077", "listen address")
	gate    = flag.Int64("gate", 0, "admission-gate capacity in compute units (0 = max(8, 4×GOMAXPROCS); one unit ≈ one default-mesh artifact compute)")
	timeout = flag.Duration("timeout", 30*time.Second, "per-request compute budget, admission wait included")
	jobs    = flag.Int("jobs", runtime.NumCPU(), "workers for full-report requests")
	drain   = flag.Duration("drain", 15*time.Second, "shutdown grace period for in-flight requests")
	traceWk = flag.Int("trace-workers", 0, "concurrently running trace-simulation jobs (0 = 2)")

	storeDir    = flag.String("store", "", "directory for the disk-backed result store (empty = memory-only; share it between replicas to warm each other)")
	peers       = flag.String("peers", "", "comma-separated replica member list (host:port each) for shared-compute mode; keys are rendezvous-hashed to an owner consulted before solving locally")
	self        = flag.String("self", "", "this replica's own entry in -peers (default: the -addr value)")
	peerTimeout = flag.Duration("peer-timeout", 0, "per-peer-fetch budget (0 = 2s); any peer failure falls through to a local solve")

	loadgen      = flag.Bool("loadgen", false, "run as a load generator instead of a server")
	base         = flag.String("base", "", "loadgen: base URL of a running daemon (empty = start one in-process)")
	requests     = flag.Int("requests", 200, "loadgen: total requests")
	concurrency  = flag.Int("concurrency", 8, "loadgen: concurrent clients")
	targets      = flag.String("targets", "", "loadgen: comma-separated artifact ids to cycle (empty = whole registry)")
	lgFormat     = flag.String("format", "text", "loadgen: format query parameter")
	lgMeshN      = flag.Int("mesh-n", 0, "loadgen: mesh-n query parameter (0 = omit)")
	scenarioMix  = flag.Float64("scenario-mix", 0, "loadgen: fraction of requests that POST a scenario to /api/v1/scenarios instead of GETting an artifact (0 = none)")
	scenarioFile = flag.String("scenario-file", "", "loadgen: scenario JSON to post for the -scenario-mix fraction (empty = a built-in 3-step Vdd sweep)")
	replicas     = flag.Int("replicas", 1, "loadgen: in-process replicas to spread requests over (shared store when -store is set)")
	replicaBench = flag.String("replica-bench", "", "loadgen: comma-separated replica counts to sweep (e.g. 1,2,4); writes rows to -bench-out")
	benchOut     = flag.String("bench-out", "BENCH_6.json", "loadgen: output file for -replica-bench")
)

func main() {
	flag.Parse()
	if *loadgen {
		if err := runLoadgen(); err != nil {
			fmt.Fprintln(os.Stderr, "nanoreprod:", err)
			os.Exit(1)
		}
		return
	}
	if err := runServer(); err != nil {
		fmt.Fprintln(os.Stderr, "nanoreprod:", err)
		os.Exit(1)
	}
}

// splitList parses a comma-separated flag into its non-empty elements.
func splitList(v string) []string {
	var out []string
	for _, p := range strings.Split(v, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// openStore opens the -store directory when one is configured.
func openStore() (*store.Store, error) {
	if *storeDir == "" {
		return nil, nil
	}
	return store.Open(store.Config{Dir: *storeDir})
}

func runServer() error {
	logger := log.New(os.Stderr, "nanoreprod: ", log.LstdFlags)
	st, err := openStore()
	if err != nil {
		return err
	}
	selfAddr := *self
	if selfAddr == "" {
		selfAddr = *addr
	}
	s := serve.New(serve.Config{
		GateUnits:   *gate,
		Timeout:     *timeout,
		Jobs:        *jobs,
		Store:       st,
		Peers:       splitList(*peers),
		Self:        selfAddr,
		PeerTimeout: *peerTimeout,
		JobWorkers:  *traceWk,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Printf("serving on http://%s (gate=%d units, timeout=%s, store=%q, peers=%d)",
		ln.Addr(), *gate, *timeout, *storeDir, len(splitList(*peers)))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	// Graceful drain: stop accepting, let in-flight requests finish.
	logger.Printf("shutting down, draining in-flight requests (up to %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	// Trace jobs are fire-and-forget from the HTTP side, so the drain
	// above does not cover them: cancel whatever is still simulating.
	s.Close()
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Printf("drained cleanly")
	return nil
}
