package main

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nanometer/internal/repro"
	"nanometer/internal/serve"
)

// runLoadgen fires a concurrent artifact-request mix at a daemon and
// prints a throughput/latency/cache summary — the serving-layer companion
// to cmd/benchjson's solver numbers in `make bench`. With no -base it
// starts its own in-process daemon first, so a single command measures the
// full stack cold-to-warm.
func runLoadgen() error {
	baseURL := *base
	if baseURL == "" {
		s := serve.New(serve.Config{GateUnits: *gate, Timeout: *timeout, Jobs: *jobs})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: s.Handler()}
		go srv.Serve(ln)
		defer srv.Close()
		baseURL = "http://" + ln.Addr().String()
		fmt.Printf("loadgen: started in-process daemon on %s\n", baseURL)
	}
	baseURL = strings.TrimRight(baseURL, "/")

	ids := strings.Split(*targets, ",")
	var clean []string
	for _, id := range ids {
		if id = strings.TrimSpace(id); id != "" {
			clean = append(clean, id)
		}
	}
	if len(clean) == 0 {
		for _, a := range repro.Artifacts() {
			clean = append(clean, a.ID)
		}
	}

	n := *requests
	if n < 1 {
		n = 1
	}
	workers := *concurrency
	if workers < 1 {
		workers = 1
	}
	client := &http.Client{Timeout: *timeout + 5*time.Second}

	var (
		next      atomic.Int64
		errs      atomic.Int64
		bytesRead atomic.Int64
		mu        sync.Mutex
		durations []time.Duration
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, n/workers+1)
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					break
				}
				id := clean[i%int64(len(clean))]
				url := fmt.Sprintf("%s/api/v1/artifacts/%s?format=%s", baseURL, id, *lgFormat)
				t0 := time.Now()
				resp, err := client.Get(url)
				if err != nil {
					errs.Add(1)
					continue
				}
				nb, _ := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs.Add(1)
					continue
				}
				bytesRead.Add(nb)
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			durations = append(durations, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	fmt.Printf("loadgen: %d requests (%d artifacts × format=%s), %d clients, %d errors\n",
		n, len(clean), *lgFormat, workers, errs.Load())
	fmt.Printf("loadgen: wall %.3fs, %.1f req/s, %.1f KB read\n",
		elapsed.Seconds(), float64(len(durations))/elapsed.Seconds(), float64(bytesRead.Load())/1024)
	if len(durations) > 0 {
		fmt.Printf("loadgen: latency p50 %s  p90 %s  p99 %s  max %s\n",
			pct(durations, 50), pct(durations, 90), pct(durations, 99), durations[len(durations)-1])
	}
	// The server-side view: cache effectiveness and admission pressure.
	if err := printMetrics(client, baseURL, "nanoreprod_cache_", "nanoreprod_gate_rejections_total", "nanoreprod_request_timeouts_total"); err != nil {
		return fmt.Errorf("scraping /metrics: %w", err)
	}
	return nil
}

func pct(sorted []time.Duration, p int) time.Duration {
	idx := p * len(sorted) / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx].Round(10 * time.Microsecond)
}

// printMetrics scrapes the daemon and echoes the sample lines matching any
// of the given prefixes.
func printMetrics(client *http.Client, baseURL string, prefixes ...string) error {
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		for _, p := range prefixes {
			if strings.HasPrefix(line, p) {
				fmt.Println("loadgen: metric", line)
				break
			}
		}
	}
	return sc.Err()
}
