package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nanometer/internal/powergrid"
	"nanometer/internal/repro"
	"nanometer/internal/scenario"
	"nanometer/internal/serve"
	"nanometer/internal/store"
)

// runLoadgen fires a concurrent artifact-request mix at a daemon and
// prints a throughput/latency/cache summary — the serving-layer companion
// to cmd/benchjson's solver numbers in `make bench`. With no -base it
// starts its own in-process replicas first (one by default, -replicas R
// for a multi-replica run over one shared store), so a single command
// measures the full stack cold-to-warm. -replica-bench sweeps replica
// counts and pins the scaling curve to -bench-out.
func runLoadgen() error {
	if *replicaBench != "" {
		return runReplicaBench()
	}
	every, scnBody, err := loadgenScenarioMix()
	if err != nil {
		return err
	}
	bases, shutdown, err := loadgenBases(*replicas)
	if err != nil {
		return err
	}
	defer shutdown()

	sum := fire(bases, fireConfig{
		requests:      *requests,
		workers:       *concurrency,
		targets:       loadgenTargets(),
		format:        *lgFormat,
		meshN:         *lgMeshN,
		scenarioEvery: every,
		scenarioBody:  scnBody,
	})
	fmt.Printf("loadgen: %d requests (%d targets × format=%s), %d replicas, %d clients, %d errors\n",
		sum.requests, len(loadgenTargets()), *lgFormat, len(bases), *concurrency, len(sum.failed))
	if sum.scenarioPosts > 0 {
		fmt.Printf("loadgen: %d of those were scenario posts (every %d-th request → POST /api/v1/scenarios)\n",
			sum.scenarioPosts, every)
	}
	fmt.Printf("loadgen: wall %.3fs, %.1f req/s, %.1f KB read\n",
		sum.elapsed.Seconds(), float64(len(sum.ok))/sum.elapsed.Seconds(), float64(sum.bytes)/1024)
	if len(sum.ok) > 0 {
		fmt.Printf("loadgen: latency p50 %s  p90 %s  p99 %s  max %s\n",
			pct(sum.ok, 50), pct(sum.ok, 90), pct(sum.ok, 99), sum.ok[len(sum.ok)-1])
	}
	// Failed requests are a distribution of their own — folding them into
	// the success percentiles (or dropping them silently) would let a
	// fast-failing server look fast.
	if len(sum.failed) > 0 {
		fmt.Printf("loadgen: failed-request latency p50 %s  p99 %s  max %s\n",
			pct(sum.failed, 50), pct(sum.failed, 99), sum.failed[len(sum.failed)-1])
	}
	// The server-side view: cache/store effectiveness, singleflight
	// collapse, peer traffic, solver work, and admission pressure.
	client := &http.Client{Timeout: *timeout + 5*time.Second}
	for _, b := range bases {
		if err := printMetrics(client, b,
			"nanoreprod_cache_", "nanoreprod_store_", "nanoreprod_singleflight_",
			"nanoreprod_peer_", "nanoreprod_mesh_solves_total", "nanoreprod_scenario_",
			"nanoreprod_gate_rejections_total", "nanoreprod_request_timeouts_total"); err != nil {
			return fmt.Errorf("scraping %s/metrics: %w", b, err)
		}
	}
	return nil
}

// loadgenScenarioMix resolves -scenario-mix into a deterministic stride
// (every n-th request posts a scenario, 0 = never) plus the document body.
// The body is parsed client-side first so a bad -scenario-file fails the
// run up front instead of producing a wall of 400s in the summary.
func loadgenScenarioMix() (every int, body []byte, err error) {
	mix := *scenarioMix
	if mix == 0 {
		return 0, nil, nil
	}
	if mix < 0 || mix > 1 {
		return 0, nil, fmt.Errorf("loadgen: -scenario-mix %g out of range (0, 1]", mix)
	}
	every = int(1/mix + 0.5)
	if every < 1 {
		every = 1
	}
	if *scenarioFile != "" {
		body, err = os.ReadFile(*scenarioFile)
		if err != nil {
			return 0, nil, err
		}
	} else {
		body = []byte(`{"name":"loadgen","sweep":{"param":"vdd","steps":3,"span_pct":10,"nodes":[70]}}`)
	}
	if _, err := scenario.Parse(body); err != nil {
		return 0, nil, fmt.Errorf("loadgen: scenario document: %w", err)
	}
	return every, body, nil
}

// loadgenTargets resolves -targets (empty = the whole registry).
func loadgenTargets() []string {
	var clean []string
	for _, id := range strings.Split(*targets, ",") {
		if id = strings.TrimSpace(id); id != "" {
			clean = append(clean, id)
		}
	}
	if len(clean) == 0 {
		for _, a := range repro.Artifacts() {
			clean = append(clean, a.ID)
		}
	}
	return clean
}

// loadgenBases returns the base URLs to fire at: the -base daemon when
// given, otherwise n freshly started in-process replicas. Replicas share
// one result store when -store is set (and, unavoidably, the process-wide
// compute cache — cross-process cold-start behavior is CI's multi-replica
// smoke job, not this benchmark's subject).
func loadgenBases(n int) (bases []string, shutdown func(), err error) {
	if *base != "" {
		return []string{strings.TrimRight(*base, "/")}, func() {}, nil
	}
	if n < 1 {
		n = 1
	}
	st, err := openStore()
	if err != nil {
		return nil, nil, err
	}
	var srvs []*http.Server
	shutdown = func() {
		for _, s := range srvs {
			s.Close()
		}
	}
	for i := 0; i < n; i++ {
		s := serve.New(serve.Config{GateUnits: *gate, Timeout: *timeout, Jobs: *jobs, Store: st})
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			shutdown()
			return nil, nil, lerr
		}
		srv := &http.Server{Handler: s.Handler()}
		// Serve returns once shutdown() closes the server; the goroutine
		// cannot outlive the loadgen run.
		//lint:allow goexit srv.Serve exits when shutdown() closes srv
		go srv.Serve(ln)
		srvs = append(srvs, srv)
		bases = append(bases, "http://"+ln.Addr().String())
	}
	fmt.Printf("loadgen: started %d in-process replica(s): %s\n", n, strings.Join(bases, " "))
	return bases, shutdown, nil
}

// fireConfig parameterizes one load round.
type fireConfig struct {
	requests int
	workers  int
	targets  []string
	format   string
	meshN    int
	// scenarioEvery > 0 turns every n-th request into a POST of
	// scenarioBody to /api/v1/scenarios?only=<target> — the write-path
	// share of a mixed workload.
	scenarioEvery int
	scenarioBody  []byte
}

// fireSummary is the client-side outcome of one round; ok and failed are
// sorted latency distributions.
type fireSummary struct {
	requests      int
	elapsed       time.Duration
	ok, failed    []time.Duration
	bytes         int64
	scenarioPosts int
}

// fire runs the request mix, spreading request i over bases[i%len] and
// targets[i%len].
func fire(bases []string, cfg fireConfig) fireSummary {
	n := cfg.requests
	if n < 1 {
		n = 1
	}
	workers := cfg.workers
	if workers < 1 {
		workers = 1
	}
	client := &http.Client{Timeout: *timeout + 5*time.Second}
	var (
		next      atomic.Int64
		bytesRead atomic.Int64
		scnPosts  atomic.Int64
		mu        sync.Mutex
		ok        []time.Duration
		failed    []time.Duration
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			localOK := make([]time.Duration, 0, n/workers+1)
			var localFailed []time.Duration
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					break
				}
				id := cfg.targets[i%int64(len(cfg.targets))]
				base := bases[i%int64(len(bases))]
				var url string
				scn := cfg.scenarioEvery > 0 && i%int64(cfg.scenarioEvery) == 0
				if scn {
					url = fmt.Sprintf("%s/api/v1/scenarios?only=%s", base, id)
				} else {
					url = fmt.Sprintf("%s/api/v1/artifacts/%s?format=%s", base, id, cfg.format)
				}
				if cfg.meshN > 0 {
					url += "&mesh-n=" + strconv.Itoa(cfg.meshN)
				}
				t0 := time.Now()
				var resp *http.Response
				var err error
				if scn {
					scnPosts.Add(1)
					resp, err = client.Post(url, "application/json", bytes.NewReader(cfg.scenarioBody))
				} else {
					resp, err = client.Get(url)
				}
				if err != nil {
					localFailed = append(localFailed, time.Since(t0))
					continue
				}
				nb, _ := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					localFailed = append(localFailed, time.Since(t0))
					continue
				}
				bytesRead.Add(nb)
				localOK = append(localOK, time.Since(t0))
			}
			mu.Lock()
			ok = append(ok, localOK...)
			failed = append(failed, localFailed...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	sort.Slice(ok, func(i, j int) bool { return ok[i] < ok[j] })
	sort.Slice(failed, func(i, j int) bool { return failed[i] < failed[j] })
	return fireSummary{requests: n, elapsed: elapsed, ok: ok, failed: failed,
		bytes: bytesRead.Load(), scenarioPosts: int(scnPosts.Load())}
}

// pct returns the nearest-rank percentile of a sorted sample: the smallest
// element with at least p% of the distribution at or below it, i.e. index
// ceil(p·N/100)−1 — for 10 samples p50 is element 4 (the 5th), not
// element 5 (which is the 60th percentile).
func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (p*len(sorted)+99)/100 - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx].Round(10 * time.Microsecond)
}

// benchRow is one replica-scaling measurement in BENCH_6.json.
type benchRow struct {
	Replicas           int     `json:"replicas"`
	Requests           int     `json:"requests"`
	Errors             int     `json:"errors"`
	ThroughputRPS      float64 `json:"throughput_rps"`
	P50Ms              float64 `json:"p50_ms"`
	P99Ms              float64 `json:"p99_ms"`
	SingleflightShared float64 `json:"singleflight_shared"`
	StoreHits          uint64  `json:"store_hits"`
	MeshSolves         uint64  `json:"mesh_solves"`
}

// collapseRow pins the K-identical-requests acceptance demo: K concurrent
// requests for one heavy key must run exactly one solve, with the other
// K−1 collapsed onto it.
type collapseRow struct {
	K                  int     `json:"k"`
	Target             string  `json:"target"`
	MeshN              int     `json:"mesh_n"`
	MeshSolves         uint64  `json:"mesh_solves"`
	SingleflightShared float64 `json:"singleflight_shared"`
	Errors             int     `json:"errors"`
}

// runReplicaBench sweeps -replica-bench replica counts over one scenario
// per round (fresh compute cache, fresh store directory each round, so
// rounds are comparable) and writes the scaling table plus the
// singleflight-collapse demonstration to -bench-out.
func runReplicaBench() error {
	var counts []int
	for _, p := range strings.Split(*replicaBench, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		r, err := strconv.Atoi(p)
		if err != nil || r < 1 {
			return fmt.Errorf("loadgen: bad -replica-bench element %q", p)
		}
		counts = append(counts, r)
	}
	if len(counts) == 0 {
		return fmt.Errorf("loadgen: -replica-bench is empty")
	}
	client := &http.Client{Timeout: *timeout + 5*time.Second}

	var rows []benchRow
	for _, r := range counts {
		repro.ResetCache()
		dir, err := os.MkdirTemp("", "nanostore-bench-")
		if err != nil {
			return err
		}
		st, err := store.Open(store.Config{Dir: dir})
		if err != nil {
			return err
		}
		repro.SetResultStore(st)
		cacheBefore := repro.ReadCacheStats()
		solvesBefore := powergrid.ReadSolveStats().Solves

		bases, shutdown, err := startReplicas(r, st)
		if err != nil {
			return err
		}
		sum := fire(bases, fireConfig{
			requests: *requests,
			workers:  *concurrency,
			targets:  loadgenTargets(),
			format:   *lgFormat,
			meshN:    *lgMeshN,
		})
		shared := 0.0
		for _, b := range bases {
			v, serr := scrapeMetric(client, b, "nanoreprod_singleflight_shared_total")
			if serr != nil {
				shutdown()
				os.RemoveAll(dir)
				return serr
			}
			shared += v
		}
		shutdown()
		cacheAfter := repro.ReadCacheStats()
		row := benchRow{
			Replicas:           r,
			Requests:           sum.requests,
			Errors:             len(sum.failed),
			ThroughputRPS:      round2(float64(len(sum.ok)) / sum.elapsed.Seconds()),
			P50Ms:              round2(pct(sum.ok, 50).Seconds() * 1000),
			P99Ms:              round2(pct(sum.ok, 99).Seconds() * 1000),
			SingleflightShared: shared,
			StoreHits:          cacheAfter.StoreHits - cacheBefore.StoreHits,
			MeshSolves:         powergrid.ReadSolveStats().Solves - solvesBefore,
		}
		rows = append(rows, row)
		fmt.Printf("loadgen: replicas=%d %.1f req/s p50=%.2fms p99=%.2fms errors=%d shared=%.0f store_hits=%d solves=%d\n",
			row.Replicas, row.ThroughputRPS, row.P50Ms, row.P99Ms, row.Errors,
			row.SingleflightShared, row.StoreHits, row.MeshSolves)
		os.RemoveAll(dir)
	}
	repro.SetResultStore(nil)

	collapse, err := runCollapseDemo(client)
	if err != nil {
		return err
	}

	doc := struct {
		GeneratedAt string        `json:"generated_at"`
		GoVersion   string        `json:"go_version"`
		GOMAXPROCS  int           `json:"gomaxprocs"`
		Requests    int           `json:"requests"`
		Concurrency int           `json:"concurrency"`
		Format      string        `json:"format"`
		Targets     string        `json:"targets"`
		Rows        []benchRow    `json:"rows"`
		Collapse    []collapseRow `json:"singleflight_collapse"`
	}{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Requests:    *requests,
		Concurrency: *concurrency,
		Format:      *lgFormat,
		Targets:     strings.Join(loadgenTargets(), ","),
		Rows:        rows,
		Collapse:    collapse,
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(*benchOut, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("loadgen: wrote %s (%d replica rows)\n", *benchOut, len(rows))
	return nil
}

// runCollapseDemo fires K=16 identical mesh-n=255 requests at one fresh
// replica: the acceptance demonstration that duplicates collapse onto one
// leader (one mesh-solve run, K−1 shared).
func runCollapseDemo(client *http.Client) ([]collapseRow, error) {
	const k, meshN, target = 16, 255, "c8"
	repro.ResetCache()
	solvesBefore := powergrid.ReadSolveStats().Solves
	bases, shutdown, err := startReplicas(1, nil)
	if err != nil {
		return nil, err
	}
	sum := fire(bases, fireConfig{requests: k, workers: k, targets: []string{target}, format: "text", meshN: meshN})
	shared, err := scrapeMetric(client, bases[0], "nanoreprod_singleflight_shared_total")
	shutdown()
	if err != nil {
		return nil, err
	}
	row := collapseRow{
		K:                  k,
		Target:             target,
		MeshN:              meshN,
		MeshSolves:         powergrid.ReadSolveStats().Solves - solvesBefore,
		SingleflightShared: shared,
		Errors:             len(sum.failed),
	}
	fmt.Printf("loadgen: collapse demo k=%d mesh-n=%d → solves=%d shared=%.0f errors=%d\n",
		row.K, row.MeshN, row.MeshSolves, row.SingleflightShared, row.Errors)
	repro.ResetCache()
	return []collapseRow{row}, nil
}

// startReplicas boots n in-process replicas over one (optional) store.
func startReplicas(n int, st *store.Store) (bases []string, shutdown func(), err error) {
	var srvs []*http.Server
	shutdown = func() {
		for _, s := range srvs {
			s.Close()
		}
	}
	for i := 0; i < n; i++ {
		s := serve.New(serve.Config{GateUnits: *gate, Timeout: *timeout, Jobs: *jobs, Store: st})
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			shutdown()
			return nil, nil, lerr
		}
		srv := &http.Server{Handler: s.Handler()}
		// Serve returns once shutdown() closes the server; the goroutine
		// cannot outlive the loadgen run.
		//lint:allow goexit srv.Serve exits when shutdown() closes srv
		go srv.Serve(ln)
		srvs = append(srvs, srv)
		bases = append(bases, "http://"+ln.Addr().String())
	}
	return bases, shutdown, nil
}

func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }

// scrapeMetric reads one plain (label-free) sample value off /metrics.
func scrapeMetric(client *http.Client, baseURL, name string) (float64, error) {
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		return strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 64)
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return 0, fmt.Errorf("metric %s not found on %s", name, baseURL)
}

// printMetrics scrapes the daemon and echoes the sample lines matching any
// of the given prefixes.
func printMetrics(client *http.Client, baseURL string, prefixes ...string) error {
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		for _, p := range prefixes {
			if strings.HasPrefix(line, p) {
				fmt.Println("loadgen: metric", line)
				break
			}
		}
	}
	return sc.Err()
}
