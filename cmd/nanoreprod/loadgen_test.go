package main

import (
	"testing"
	"time"
)

// TestPctNearestRank pins the nearest-rank definition: element
// ceil(p·N/100)−1 of the sorted sample. The old `p*N/100` indexing was off
// by one rank — for 10 samples it reported the 6th element as p50 (the
// 60th percentile) and clamped p99 onto p100.
func TestPctNearestRank(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	ten := make([]time.Duration, 10)
	for i := range ten {
		ten[i] = ms(i + 1) // 1ms..10ms
	}
	for _, tc := range []struct {
		name   string
		sorted []time.Duration
		p      int
		want   time.Duration
	}{
		{"p50 of 10 is the 5th", ten, 50, ms(5)},
		{"p90 of 10 is the 9th", ten, 90, ms(9)},
		{"p99 of 10 is the max", ten, 99, ms(10)},
		{"p100 of 10 is the max", ten, 100, ms(10)},
		{"p1 of 10 is the min", ten, 1, ms(1)},
		{"p50 of 1", []time.Duration{ms(7)}, 50, ms(7)},
		{"p99 of 1", []time.Duration{ms(7)}, 99, ms(7)},
		{"p50 of 2 is the 1st", []time.Duration{ms(3), ms(9)}, 50, ms(3)},
		{"p99 of 100", func() []time.Duration {
			s := make([]time.Duration, 100)
			for i := range s {
				s[i] = ms(i + 1)
			}
			return s
		}(), 99, ms(99)},
		{"empty", nil, 99, 0},
	} {
		if got := pct(tc.sorted, tc.p); got != tc.want {
			t.Errorf("%s: pct(%d) = %s, want %s", tc.name, tc.p, got, tc.want)
		}
	}
}

func TestSplitList(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
	}{
		{"", 0}, {"a", 1}, {"a,b", 2}, {" a , ,b,", 2},
	} {
		if got := splitList(tc.in); len(got) != tc.want {
			t.Errorf("splitList(%q) = %v, want %d elements", tc.in, got, tc.want)
		}
	}
}
