// Command roadmap prints the ITRS-2000 trends the paper is built on, with
// the model-derived consequences per node: FO4 speed, packaging/cooling
// requirements, supply currents, standby allowances, repeater census, and
// DVFS operating tables.
//
// Usage:
//
//	roadmap              # the trends table
//	roadmap -derived     # model-derived consequences per node
//	roadmap -dvfs 100    # the DVFS operating table for a node
//	roadmap -scenario scenarios/ext65.json   # any of the above under a scenario
package main

import (
	"flag"
	"fmt"
	"os"

	"nanometer/internal/device"
	"nanometer/internal/dvfs"
	"nanometer/internal/gate"
	"nanometer/internal/repeater"
	"nanometer/internal/report"
	"nanometer/internal/scenario"
	"nanometer/internal/thermal"
	"nanometer/internal/units"
)

var (
	derived  = flag.Bool("derived", false, "print model-derived consequences")
	dvfsNode = flag.Int("dvfs", 0, "print the DVFS operating table for a node")
	scnPath  = flag.String("scenario", "", "roadmap scenario JSON file (see scenarios/); sweeps print at their unswept operating point")
)

// lab resolves the roadmap to print: the base laboratory, or the -scenario
// file's. The scenario name comes back for table titles.
func lab() (*device.Lab, string) {
	if *scnPath == "" {
		return device.BaseLab(), ""
	}
	s, err := scenario.Load(*scnPath)
	if err != nil {
		fatal(err)
	}
	l, err := s.Resolve()
	if err != nil {
		fatal(err)
	}
	return l, s.Name
}

func main() {
	flag.Parse()
	if *dvfsNode != 0 {
		printDVFS(*dvfsNode)
		return
	}
	if *derived {
		printDerived()
		return
	}
	printTrends()
}

// titled appends the scenario label to a table title when one is active.
func titled(title, scenarioName string) string {
	if scenarioName == "" {
		return title
	}
	return title + " [scenario " + scenarioName + "]"
}

func printTrends() {
	l, name := lab()
	t := &report.Table{
		Title: titled("ITRS 2000-update roadmap (as transcribed for the reproduction; DESIGN.md §2)", name),
		Headers: []string{"node (nm)", "year", "Vdd (V)", "Tox (nm)", "Leff (nm)",
			"clock (GHz)", "power (W)", "die (cm²)", "Tj (°C)", "θja (°C/W)", "pads", "bump pitch (µm)"},
	}
	for _, nm := range l.NodesNM() {
		n := l.MustNode(nm)
		t.AddRow(
			fmt.Sprintf("%d", n.DrawnNM),
			fmt.Sprintf("%d", n.Year),
			fmt.Sprintf("%.1f", n.Vdd),
			fmt.Sprintf("%.2f", n.ToxPhysicalM*1e9),
			fmt.Sprintf("%.0f", n.LeffM*1e9),
			fmt.Sprintf("%.1f", n.ClockHz/1e9),
			fmt.Sprintf("%.0f", n.MaxPowerW),
			fmt.Sprintf("%.1f", n.DieAreaM2*1e4),
			fmt.Sprintf("%.0f", n.JunctionTempC),
			fmt.Sprintf("%.2f", n.ThetaJA),
			fmt.Sprintf("%d", n.TotalPads),
			fmt.Sprintf("%.0f", n.BumpPitchMinM*1e6),
		)
	}
	t.WriteTo(os.Stdout)
}

func printDerived() {
	l, name := lab()
	t := &report.Table{
		Title: titled("Model-derived consequences per node", name),
		Headers: []string{"node", "FO4 (ps)", "density (W/cm²)", "cooling class",
			"supply (A)", "standby cap (A)", "repeaters", "signal P (W)"},
	}
	for _, nm := range l.NodesNM() {
		n := l.MustNode(nm)
		inv, err := gate.ReferenceInverterIn(l, nm)
		if err != nil {
			fatal(err)
		}
		fo4 := inv.FO4Delay(n.Vdd, units.CelsiusToKelvin(85))
		sol, err := thermal.SelectCooling(n.MaxPowerW, n.JunctionTempC, n.AmbientTempC)
		if err != nil {
			fatal(err)
		}
		census, err := repeater.TakeCensusIn(l, nm, repeater.CensusParams{})
		if err != nil {
			fatal(err)
		}
		t.AddRow(
			fmt.Sprintf("%d", nm),
			fmt.Sprintf("%.1f", fo4*1e12),
			fmt.Sprintf("%.0f", n.PowerDensityWPerM2()/1e4),
			sol.Class.String(),
			fmt.Sprintf("%.0f", n.SupplyCurrentA()),
			fmt.Sprintf("%.1f", n.StandbyCurrentAllowanceA()),
			fmt.Sprintf("%d", census.Repeaters),
			fmt.Sprintf("%.0f", census.SignalingPowerW),
		)
	}
	t.Notes = append(t.Notes, "standby cap = the ITRS 10%-of-max-power static allowance (30 A at 35 nm per the paper)")
	t.WriteTo(os.Stdout)
}

func printDVFS(nodeNM int) {
	l, name := lab()
	tb, err := dvfs.NewTableIn(l, nodeNM, 6, 0.5, 0)
	if err != nil {
		fatal(err)
	}
	t := &report.Table{
		Title:   titled(fmt.Sprintf("DVFS operating table, %d nm (logic depth %.0f FO4/cycle)", nodeNM, tb.LogicDepth), name),
		Headers: []string{"Vdd (V)", "f (GHz)", "speed", "power", "energy/op"},
	}
	for _, p := range tb.Points {
		t.AddRow(
			fmt.Sprintf("%.2f", p.Vdd),
			fmt.Sprintf("%.2f", p.FreqHz/1e9),
			fmt.Sprintf("%.2f", p.RelSpeed),
			fmt.Sprintf("%.2f", p.RelPower),
			fmt.Sprintf("%.2f", p.EnergyPerWork),
		)
	}
	t.Notes = append(t.Notes, "Transmeta-style voltage scaling: energy per operation falls as Vdd² (§2.1)")
	t.WriteTo(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "roadmap:", err)
	os.Exit(1)
}
