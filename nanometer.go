// Package nanometer is a reproduction, as a Go library, of D. Sylvester and
// H. Kaul, "Future Performance Challenges in Nanometer Design", Proc. 38th
// Design Automation Conference (DAC), 2001.
//
// The paper analyzes power-related limits to high-performance IC design at
// the 180–35 nm nodes of the ITRS 2000 roadmap: dynamic-power packaging
// limits and dynamic thermal management (§2.1), global-signaling power and
// low-swing alternatives (§2.2), library optimization (§2.3), multi-Vdd
// clustered voltage scaling (§2.4), static-power scaling through its compact
// MOSFET model (§3.1, Eqs. 2–4), dual-Vth techniques (§3.2), the combined
// multi-Vdd + multi-Vth + re-sizing approach (§3.3), and power-distribution
// IR-drop/di/dt analysis (§4).
//
// The implementation lives in the internal packages; the runnable surfaces
// are:
//
//   - cmd/nanorepro — regenerates every table, figure, and quantified claim
//   - cmd/thermsim  — dynamic-thermal-management simulator
//   - cmd/gridsim   — power-grid IR-drop analyzer
//   - cmd/powopt    — netlist power-optimization flow
//   - examples/*    — library walkthroughs
//
// DESIGN.md maps each subsystem and experiment to its module; EXPERIMENTS.md
// records paper-vs-measured values.
package nanometer

// Version identifies the reproduction release.
const Version = "1.0.0"

// Paper cites the reproduced publication.
const Paper = "Sylvester & Kaul, \"Future Performance Challenges in Nanometer Design\", DAC 2001"
