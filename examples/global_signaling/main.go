// global_signaling sizes a cross-chip bus at the 50 nm node two ways — the
// conventional repeated full-swing CMOS of §2.2 and an Alpha-21264-style
// differential low-swing link — and compares delay, energy, noise closure,
// routing cost, and the supply transient each injects.
package main

import (
	"fmt"
	"log"

	"nanometer/internal/busplan"
	"nanometer/internal/itrs"
	"nanometer/internal/repeater"
	"nanometer/internal/signaling"
	"nanometer/internal/units"
	"nanometer/internal/wire"
)

func main() {
	const nodeNM = 50
	const busBits = 64
	node := itrs.MustNode(nodeNM)
	length, err := wire.CrossChipLength(nodeNM)
	if err != nil {
		log.Fatal(err)
	}
	line := wire.MustForNode(nodeNM, wire.Global)
	fmt.Printf("%d-bit bus across a %d nm die: %.1f mm of global wire (%.0f Ω/mm, %.0f fF/mm)\n\n",
		busBits, nodeNM, length*1e3, line.RPerM()/1e3, line.CPerM()*1e15/1e3)

	// Conventional: optimally repeated full-swing CMOS.
	drv, err := repeater.UnitDriver(nodeNM, units.CelsiusToKelvin(85))
	if err != nil {
		log.Fatal(err)
	}
	ins := repeater.Optimize(drv, line, length)
	toggle := 0.15 * node.ClockHz // activity × clock
	repPower := float64(busBits) * ins.EnergyPerTransition * toggle
	fmt.Printf("repeated CMOS: %d repeaters of %.0f× unit size per bit\n", ins.Count, ins.Size)
	fmt.Printf("  delay %s (%.1f clock cycles), energy %s/bit-transition, bus power %.2f W\n",
		units.Engineering(ins.Delay, "s", 3), ins.Delay*node.ClockHz,
		units.Engineering(ins.EnergyPerTransition, "J", 3), repPower)

	// The ablation the paper implies: what does bad repeater sizing cost?
	half := repeater.WithRepeaters(drv, line, length, ins.Count/2, ins.Size/2)
	fmt.Printf("  (ablation: half count/size → delay %s, +%.0f%%)\n\n",
		units.Engineering(half.Delay, "s", 3), (half.Delay/ins.Delay-1)*100)

	// Alternative: differential low-swing at 10 % of Vdd.
	cmp, err := signaling.Compare(line, length, node.Vdd, 0.10, signaling.DifferentialLowSwing)
	if err != nil {
		log.Fatal(err)
	}
	alt := cmp.Alternative
	fmt.Printf("differential low-swing (%.0f mV swing):\n", alt.SwingV*1e3)
	fmt.Printf("  delay %s, energy %s/bit-transition (%.0f%% of full swing), bus power %.2f W\n",
		units.Engineering(alt.Delay(), "s", 3),
		units.Engineering(alt.EnergyPerTransition(), "J", 3),
		cmp.EnergyRatio*100, repPower*cmp.EnergyRatio)
	fmt.Printf("  routing tracks ×%.2f (shield-amortized; naive expectation ×2)\n", cmp.TrackRatio)
	fmt.Printf("  noise closure: differential SNR %.1f (shielded) vs single-ended full-swing %.1f (unshielded)\n",
		cmp.AltSNR, cmp.BaseSNR)
	fmt.Printf("  peak grid current per bit: ×%.3f of the full-swing driver — the di/dt relief of §2.2\n\n",
		cmp.PeakCurrentRatio)

	// Chip-level context.
	census, err := repeater.TakeCensus(nodeNM, repeater.CensusParams{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chip-level: ~%.1fk repeaters, %.0f W of repeated-CMOS global signaling at this node;\n",
		float64(census.Repeaters)/1e3, census.SignalingPowerW)
	fmt.Printf("switching the repeated fabric to low-swing differential would leave %.0f W\n\n",
		census.SignalingPowerW*cmp.EnergyRatio)

	// The conclusion-#2 EDA tool: plan a mixed route population instead of
	// choosing one primitive globally.
	planner, err := busplan.NewPlanner(nodeNM)
	if err != nil {
		log.Fatal(err)
	}
	period := 1 / node.ClockHz
	routes := []busplan.Route{
		{Name: "alu-bypass", LengthM: 4e-3, LatencyBudgetS: 1.5 * period, ToggleHz: 0.3 * node.ClockHz},
		{Name: "l2-bus", LengthM: 12e-3, LatencyBudgetS: 25 * period, ToggleHz: 0.1 * node.ClockHz},
		{Name: "io-ring", LengthM: 16e-3, LatencyBudgetS: 40 * period, ToggleHz: 0.05 * node.ClockHz},
		{Name: "fpu-operand", LengthM: 6e-3, LatencyBudgetS: 10 * period, ToggleHz: 0.4 * node.ClockHz},
	}
	plan, err := planner.Assign(routes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-route primitive planning (conclusion #2's tool):")
	for _, c := range plan.Choices {
		fmt.Printf("  %-12s %-26s %s, %.2f mW\n",
			c.Route.Name, c.Scheme.String(),
			units.Engineering(c.DelayS, "s", 3), c.PowerW*1e3)
	}
	fmt.Printf("plan power: %.2f mW vs %.2f mW all-repeated (-%.0f%%)\n",
		plan.TotalPowerW*1e3, plan.BaselinePowerW*1e3, plan.Saving*100)
}
