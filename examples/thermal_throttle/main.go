// thermal_throttle walks through the paper's §2.1 dynamic-thermal-management
// argument end to end: run a bursty workload and a power virus through the
// RC thermal plant under three policies, then price the packaging each
// design style requires.
package main

import (
	"fmt"
	"log"

	"nanometer/internal/itrs"
	"nanometer/internal/thermal"
)

func main() {
	node := itrs.MustNode(50)
	const cth = 40.0 // J/°C
	const dt = 0.01  // s
	const steps = 12000

	fmt.Printf("=== DTM on the %d nm node: %.0f W budget, junction ≤ %.0f °C ===\n\n",
		node.DrawnNM, node.MaxPowerW, node.JunctionTempC)

	workload := thermal.DefaultWorkload(node.MaxPowerW).Generate(steps)
	virus := thermal.PowerVirus(node.MaxPowerW, steps)

	policies := []thermal.Controller{
		thermal.NoDTM{},
		thermal.ClockThrottle{DutyCycle: 0.5},
		thermal.DVS{FreqScale: 0.7, VddScale: 0.8},
	}

	// A package sized for the *effective* worst case (≈75 % of the power
	// virus), which only works because DTM holds the junction.
	thetaDTM, err := thermal.RequiredThetaJA(0.75*node.MaxPowerW, node.JunctionTempC, node.AmbientTempC)
	if err != nil {
		log.Fatal(err)
	}
	pkg := thermal.Package{ThetaJA: thetaDTM, AmbientC: node.AmbientTempC}
	fmt.Printf("package designed for 75%% of worst case: θja = %.3f °C/W (vs %.3f for the full virus)\n\n",
		thetaDTM, (node.JunctionTempC-node.AmbientTempC)/node.MaxPowerW)

	for _, ctrl := range policies {
		for _, tc := range []struct {
			name  string
			trace []float64
		}{{"application workload", workload}, {"power virus", virus}} {
			plant := thermal.NewPlant(pkg, cth)
			sensor := &thermal.Sensor{TripC: node.JunctionTempC - 1, HysteresisC: 2}
			r := thermal.Simulate(plant, sensor, ctrl, tc.trace, dt)
			verdict := "OK"
			if r.PeakTempC > node.JunctionTempC {
				verdict = fmt.Sprintf("VIOLATES by %.1f °C", r.PeakTempC-node.JunctionTempC)
			}
			fmt.Printf("%-28s %-20s peak %6.2f °C (%s), mean %5.1f W, throughput %5.1f%%\n",
				ctrl.Name(), tc.name, r.PeakTempC, verdict, r.MeanPowerW, r.Throughput*100)
		}
	}

	fmt.Println("\n=== cooling-cost ladder (junction 100 °C, ambient 45 °C — the 1999 design point) ===")
	for _, p := range []float64{50, 65, 75, 100, 130, 174} {
		sol, err := thermal.SelectCooling(p, 100, 45)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4.0f W → θja ≤ %.3f °C/W → %-32s ≈$%.0f\n", p, sol.ThetaJA, sol.Class.String(), sol.CostUSD)
	}
	fmt.Println("\nthe 65→75 W step is the paper's cited cost trip-point (heat pipes, ~3×)")
}
