// power_grid walks the §4 power-distribution analysis at 35 nm: hot-spot
// rail sizing under the two bump plans, numerical cross-checks, the bump
// current budget, and the sleep-mode wakeup transient with and without
// staging.
package main

import (
	"fmt"
	"log"

	"nanometer/internal/itrs"
	"nanometer/internal/mtcmos"
	"nanometer/internal/powergrid"
)

func main() {
	node := itrs.MustNode(35)
	fmt.Printf("35 nm MPU: %.0f W over %.1f cm² at %.1f V → %.0f A supply current\n",
		node.MaxPowerW, node.DieAreaM2*1e4, node.Vdd, node.SupplyCurrentA())
	fmt.Printf("hot spots at 4× uniform density (half the die is low-density memory)\n\n")

	for _, plan := range []struct {
		name  string
		pitch float64
	}{
		{"minimum attainable bump pitch", node.BumpPitchMinM},
		{"ITRS pad-count plan", node.EffectiveBumpPitchM()},
	} {
		spec := powergrid.DefaultSpec(node, plan.pitch)
		sz, feasible, err := spec.FeasibleRails()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%.0f µm):\n", plan.name, plan.pitch*1e6)
		fmt.Printf("  Vdd/GND rails %.2f µm wide = %.0f × minimum top-metal width\n",
			sz.RailWidthM*1e6, sz.WidthOverMin)
		fmt.Printf("  top-level routing consumed: %.1f%% rails + %.0f%% landing pads = %.1f%%",
			sz.RailRoutingFraction*100, spec.LandingPadFraction*100, sz.TotalRoutingFraction*100)
		if !feasible {
			fmt.Print("  ← INFEASIBLE")
		}
		fmt.Println()
		ladder, err := powergrid.ValidateAnalytic(spec, 256)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  numerical rail solve agrees with the closed form to %.1f%%\n\n", (ladder-1)*100)
	}

	chk := powergrid.CheckBumpCurrent(node)
	fmt.Printf("bump current: %d Vdd bumps × %.2f A capability < %.0f A worst-case draw → need %d bumps\n\n",
		chk.VddBumps, chk.CapabilityA, chk.SupplyCurrentA, chk.RequiredBumps)

	// Sleep-mode wakeup: an MTCMOS-gated block re-awakens.
	blockCurrent := node.SupplyCurrentA() / 8
	logicWidth := node.LogicTransistorsM * 1e6 / 8 * 4 * node.LeffM
	blk, err := mtcmos.NewBlock(35, logicWidth, 0.08, blockCurrent)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MTCMOS block (1/8 of the die): standby leakage -%.1f%%, active delay +%.1f%%, footer area +%.0f%%\n",
		blk.StandbySavings()*100, blk.DelayPenalty()*100, blk.AreaOverhead()*100)

	for _, plan := range []struct {
		name  string
		bumps int
	}{
		{"min-pitch plan", int(node.DieAreaM2 / (node.BumpPitchMinM * node.BumpPitchMinM))},
		{"ITRS plan", 0}, // 0 = node default counts
	} {
		spec := powergrid.DefaultTransientSpec(node)
		spec.PowerBumps = plan.bumps
		instant, err := spec.Step(blockCurrent, 1e-12)
		if err != nil {
			log.Fatal(err)
		}
		safe, err := spec.MinSafeRampS(blockCurrent, 0.10)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s unstaged %.0f A wakeup droops %.1f%% of Vdd; staging over ≥ %.2f ns keeps it under 10%%\n",
			plan.name, blockCurrent, instant.NoiseFraction*100, safe*1e9)
	}
	fmt.Println("\nthe minimum bump pitch \"provides a low inductance path to each gate\" — the paper's §4 close")
}
