// multivdd_flow demonstrates the paper's §3.3 combined power-reduction
// approach on a generated media-processor-like block, stage by stage, and
// contrasts it with the wrong ordering (re-sizing first), which the paper
// warns starves the multi-Vdd assignment of slack.
package main

import (
	"fmt"
	"log"

	"nanometer/internal/core"
	"nanometer/internal/cvs"
	"nanometer/internal/netlist"
	"nanometer/internal/power"
	"nanometer/internal/resize"
	"nanometer/internal/sta"
)

func build() *netlist.Circuit {
	tech := netlist.MustNewTech(100, 0.65)
	p := netlist.DefaultGenParams()
	p.Gates = 3000
	p.Levels = 30
	p.ShortPathFraction = 0.5
	p.Seed = 11
	c, err := netlist.Generate(tech, p)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sta.SetPeriodFromCritical(c, 1.15); err != nil {
		log.Fatal(err)
	}
	return c
}

func main() {
	base := build()
	period := base.ClockPeriodS
	power.PropagateActivity(base)
	before := power.Analyze(base, 1/period)
	r := sta.Analyze(base)
	fmt.Printf("block: %d gates at 100 nm, clock %.0f ps, %.0f%% of paths below half cycle\n",
		len(base.Gates), period*1e12, r.PathUtilization(base, 0.5)*100)
	fmt.Printf("baseline power: %.3f mW dynamic + %.3f mW leakage\n\n", before.DynamicW*1e3, before.LeakageW*1e3)

	// The recommended ordering: supplies → thresholds → sizes.
	c := build()
	res, err := core.RunFlow(c, core.DefaultFlowOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recommended ordering (CVS → dual-Vth → resize):")
	fmt.Printf("  CVS:      %.0f%% of gates moved to Vdd,l (%d level converters), dynamic -%.0f%%\n",
		res.CVS.AssignedFraction*100, res.CVS.LevelConverters, res.CVS.DynamicSaving*100)
	fmt.Printf("  dual-Vth: %.0f%% of gates to high Vth, leakage -%.0f%%\n",
		res.DualVth.HighVthFraction*100, res.DualVth.LeakageSaving*100)
	fmt.Printf("  resize:   sizes -%.0f%%, dynamic another -%.0f%% (sublinearity %.2f)\n",
		res.Resize.SizeReduction*100, res.Resize.DynamicSaving*100, res.Resize.Sublinearity)
	fmt.Printf("  combined: total -%.0f%%, timing met: %v\n\n", res.TotalSaving*100, res.TimingMet)

	// The paper's warning: re-size first and the slack is gone.
	c2 := build()
	if _, err := resize.Downsize(c2, resize.DefaultOptions()); err != nil {
		log.Fatal(err)
	}
	after, err := cvs.Assign(c2, cvs.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrong ordering (resize first):")
	fmt.Printf("  CVS after re-sizing reaches only %.0f%% of gates (vs %.0f%%) — \"more paths approach\n"+
		"  criticality; this makes the application of multi-Vdd approaches less advantageous\"\n",
		after.AssignedFraction*100, res.CVS.AssignedFraction*100)
}
