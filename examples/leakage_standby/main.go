// leakage_standby walks the paper's static-power toolbox (§3.2–3.3): the
// exponential cost of threshold scaling, the dual-Vth trade, intra-cell
// mixed-Vth stacks with state-dependent leakage, and the standby-technique
// comparison with its scalability verdicts.
package main

import (
	"fmt"
	"log"

	"nanometer/internal/device"
	"nanometer/internal/itrs"
	"nanometer/internal/stackvth"
	"nanometer/internal/standby"
	"nanometer/internal/units"
)

func main() {
	const nodeNM = 70
	d := device.MustForNode(nodeNM)
	node := itrs.MustNode(nodeNM)
	T := units.CelsiusToKelvin(85)

	fmt.Printf("=== static power at the %d nm node (Vdd %.1f V, 85 °C) ===\n\n", nodeNM, node.Vdd)

	// 1. The exponential: every 100 mV of threshold costs ~15× leakage.
	fmt.Println("threshold vs leakage (Eq. 4):")
	for _, vth := range []float64{0.24, 0.14, 0.04} {
		dd := d.WithVth(vth)
		fmt.Printf("  Vth = %.0f mV → Ioff = %8.1f nA/µm, Ion = %.0f µA/µm\n",
			vth*1e3,
			units.NAPerUMFromAmpsPerMeter(dd.IoffPerWidth(node.Vdd, T)),
			dd.IonPerWidth(node.Vdd, T))
	}

	// 2. Intra-cell mixed-Vth stacks: the §3.3 flexible-layout idea.
	fmt.Println("\nintra-cell multi-Vth on a 2-high NAND pull-down (±100 mV split):")
	as, err := stackvth.Explore(nodeNM, 2, 4*d.LeffM, d.Vth0, d.Vth0+0.1, 5e-15)
	if err != nil {
		log.Fatal(err)
	}
	labels := []string{"all low ", "bot high", "top high", "all high"}
	for i, a := range as {
		fmt.Printf("  %s: leakage %6.2f nA (-%4.1f%%), delay +%5.1f%%\n",
			labels[i], a.LeakageA*1e9, a.LeakageSaving*100, a.DelayPenalty*100)
	}
	best, err := stackvth.BestUnderPenalty(as, 0.10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  → within a 10%% delay budget: %d high-Vth device, leakage -%.0f%%\n",
		best.HighCount(), best.LeakageSaving*100)

	// 3. State dependence: where to park idle logic.
	st, err := stackvth.NewStack(nodeNM, 2, 4*d.LeffM, []float64{d.Vth0, d.Vth0})
	if err != nil {
		log.Fatal(err)
	}
	vec, parked, err := st.MinLeakageVector()
	if err != nil {
		log.Fatal(err)
	}
	avg, err := st.AverageLeakage()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninput-vector control: parking at %v leaks %.2f nA vs %.2f nA state-average (-%.0f%%)\n",
		vec, parked*1e9, avg*1e9, (1-parked/avg)*100)

	// 4. The standby-technique comparison, start vs end of the roadmap.
	fmt.Println("\nstandby techniques, 180 nm → 35 nm (1 mm of gated width):")
	at180, err := standby.Compare(180, 1e-3)
	if err != nil {
		log.Fatal(err)
	}
	at35, err := standby.Compare(35, 1e-3)
	if err != nil {
		log.Fatal(err)
	}
	for i := range at35 {
		verdict := "scales"
		if !at35[i].Scalable {
			verdict = "DOES NOT SCALE"
		}
		fmt.Printf("  %-30s -%5.1f%% → -%5.1f%%   %s\n",
			at35[i].Technique, at180[i].StandbyReduction*100, at35[i].StandbyReduction*100, verdict)
	}
	fmt.Println("\nthe paper's verdicts: body-bias Vth control loses its lever in scaled devices;")
	fmt.Println("dual-Vth — the only technique that also helps active mode — is what high-end MPUs adopt")
}
