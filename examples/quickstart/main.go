// Quickstart: a ten-minute tour of the nanometer library — the compact
// device model, gate-level power, the thermal loop, and the combined
// circuit optimization flow.
package main

import (
	"fmt"
	"log"

	"nanometer/internal/core"
	"nanometer/internal/device"
	"nanometer/internal/gate"
	"nanometer/internal/itrs"
	"nanometer/internal/netlist"
	"nanometer/internal/sta"
	"nanometer/internal/thermal"
	"nanometer/internal/units"
)

func main() {
	// 1. Roadmap data: the ITRS-2000 nodes the paper spans.
	node := itrs.MustNode(50)
	fmt.Printf("50 nm node (%d): Vdd %.1f V, %.0f W budget, %.1f GHz global clock\n",
		node.Year, node.Vdd, node.MaxPowerW, node.ClockHz/1e9)

	// 2. Device model: the paper's Eqs. 2-4. Solve the threshold that
	// delivers the 750 µA/µm drive target and look at the leakage cost.
	d := device.MustForNode(50)
	vth, err := d.SolveVthForIon(node.IonTargetAPerM, node.Vdd, units.RoomTemperature)
	if err != nil {
		log.Fatal(err)
	}
	ioff := d.WithVth(vth).IoffPerWidth(node.Vdd, units.RoomTemperature)
	fmt.Printf("meeting Ion at %.1f V needs Vth = %.0f mV → Ioff = %.2f µA/µm\n",
		node.Vdd, vth*1e3, ioff)

	// 3. Gate level: the reference inverter's FO4 delay and the
	// static/dynamic power balance at a typical activity.
	inv, err := gate.ReferenceInverter(50)
	if err != nil {
		log.Fatal(err)
	}
	t85 := units.CelsiusToKelvin(85)
	fmt.Printf("FO4 delay: %s; Pstatic/Pdynamic at α=0.1: %.2f\n",
		units.Engineering(inv.FO4Delay(node.Vdd, t85), "s", 3),
		inv.StaticOverDynamic(0.1, node.ClockHz, node.Vdd, t85))

	// 4. Thermal: what package does the power budget need, and what does
	// dynamic thermal management save?
	sol, err := thermal.SelectCooling(node.MaxPowerW, node.JunctionTempC, node.AmbientTempC)
	if err != nil {
		log.Fatal(err)
	}
	solDTM, err := thermal.SelectCooling(0.75*node.MaxPowerW, node.JunctionTempC, node.AmbientTempC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cooling: %s ($%.0f) without DTM, %s ($%.0f) with DTM at 75%% effective worst case\n",
		sol.Class, sol.CostUSD, solDTM.Class, solDTM.CostUSD)

	// 5. Circuit level: generate a block and run the paper's combined
	// multi-Vdd + multi-Vth + re-sizing flow.
	tech := netlist.MustNewTech(50, 0.65)
	params := netlist.DefaultGenParams()
	params.Gates = 1500
	c, err := netlist.Generate(tech, params)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sta.SetPeriodFromCritical(c, 1.15); err != nil {
		log.Fatal(err)
	}
	res, err := core.RunFlow(c, core.DefaultFlowOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("combined flow on %d gates: power -%.0f%% (dynamic -%.0f%%, leakage -%.0f%%), timing met: %v\n",
		len(c.Gates), res.TotalSaving*100, res.DynamicSaving*100, res.LeakageSaving*100, res.TimingMet)
}
