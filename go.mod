module nanometer

go 1.22
