// Benchmarks: one per reproduced table, figure, and quantified claim (the
// experiment index of DESIGN.md §4), plus the design-choice ablations of
// DESIGN.md §5. Each benchmark regenerates its artifact end to end, so
// `go test -bench=. -benchmem` doubles as the full reproduction run with
// per-artifact cost accounting.
package nanometer_test

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"nanometer/internal/core"
	"nanometer/internal/cvs"
	"nanometer/internal/device"
	"nanometer/internal/dualvth"
	"nanometer/internal/experiments"
	"nanometer/internal/gate"
	"nanometer/internal/itrs"
	"nanometer/internal/logicsim"
	"nanometer/internal/mathx"
	"nanometer/internal/netlist"
	"nanometer/internal/powergrid"
	"nanometer/internal/rcsim"
	"nanometer/internal/repeater"
	"nanometer/internal/repro"
	"nanometer/internal/resize"
	"nanometer/internal/runner"
	"nanometer/internal/sta"
	"nanometer/internal/units"
	"nanometer/internal/wire"
)

// --- Tables -------------------------------------------------------------------

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Table1(); len(rows) != 9 {
			b.Fatalf("bad row count %d", len(rows))
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2()
		if err != nil || len(rows) != 7 {
			b.Fatalf("table2: %v (%d rows)", err, len(rows))
		}
	}
}

// --- Figures ------------------------------------------------------------------

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Figure3And4(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	// Figure 4 shares the sweep with Figure 3; benchmarked separately at a
	// finer supply grid to expose the policy-solver cost.
	grid := make([]float64, 41)
	for i := range grid {
		grid[i] = 0.2 + 0.01*float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Figure3And4(grid); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Claims -------------------------------------------------------------------

func BenchmarkClaimDTM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.DTM(50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClaimSignaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Signaling(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClaimLibopt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunLibrary(experiments.DefaultCircuitSetup()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClaimCVS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunCVS(experiments.DefaultCircuitSetup()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClaimDualVth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunDualVth(experiments.DefaultCircuitSetup()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClaimResize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunResizeVsVdd(experiments.DefaultCircuitSetup()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClaimVddFloor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunVddFloor(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClaimBumps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunBumps(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClaimTransients(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTransients(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §5) ---------------------------------------------------

// Ablation 1: electrical vs physical oxide thickness in the Vth solve.
func BenchmarkAblationMetalGate(b *testing.B) {
	d := device.MustForNode(35)
	node := itrs.MustNode(35)
	for i := 0; i < b.N; i++ {
		if _, err := d.SolveVthForIon(node.IonTargetAPerM, node.Vdd, units.RoomTemperature); err != nil {
			b.Fatal(err)
		}
		if _, err := d.MetalGate().SolveVthForIon(node.IonTargetAPerM, node.Vdd, units.RoomTemperature); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation 2: DIBL on/off in the leakage model.
func BenchmarkAblationDIBL(b *testing.B) {
	d := device.MustForNode(35)
	noDIBL := *d
	noDIBL.DIBL = 0
	for i := 0; i < b.N; i++ {
		withD := d.IoffPerWidth(0.3, units.RoomTemperature)
		without := noDIBL.IoffPerWidth(0.3, units.RoomTemperature)
		if withD >= without {
			b.Fatalf("DIBL must reduce Ioff at reduced drain bias: %g vs %g", withD, without)
		}
	}
}

// Ablation 3: subthreshold-swing temperature scaling in Figure 1.
func BenchmarkAblationSwingTemperature(b *testing.B) {
	g, err := gate.ReferenceInverter(50)
	if err != nil {
		b.Fatal(err)
	}
	node := itrs.MustNode(50)
	for i := 0; i < b.N; i++ {
		hot := g.StaticOverDynamic(0.1, node.ClockHz, 0.6, units.CelsiusToKelvin(85))
		cold := g.StaticOverDynamic(0.1, node.ClockHz, 0.6, units.RoomTemperature)
		if hot <= cold {
			b.Fatalf("85 °C must worsen the static share: %g vs %g", hot, cold)
		}
	}
}

func freshCircuit(b *testing.B, guard float64) *netlist.Circuit {
	b.Helper()
	tech, err := netlist.NewTech(100, 0.65)
	if err != nil {
		b.Fatal(err)
	}
	p := netlist.DefaultGenParams()
	p.Gates = 2000
	p.Levels = 30
	p.ShortPathFraction = 0.5
	p.Seed = 7
	c, err := netlist.Generate(tech, p)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sta.SetPeriodFromCritical(c, guard); err != nil {
		b.Fatal(err)
	}
	return c
}

// Ablation 4/5: level-converter cost and clustering in CVS.
func BenchmarkAblationCVSClustering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		clustered := freshCircuit(b, 1.15)
		if _, err := cvs.Assign(clustered, cvs.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
		unclustered := freshCircuit(b, 1.15)
		opts := cvs.DefaultOptions()
		opts.Clustering = false
		if _, err := cvs.Assign(unclustered, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation 6: hot-spot factor in Figure 5.
func BenchmarkAblationHotspot(b *testing.B) {
	node := itrs.MustNode(35)
	for i := 0; i < b.N; i++ {
		uniform := powergrid.DefaultSpec(node, node.BumpPitchMinM)
		uniform.HotspotFactor = 1
		hot := powergrid.DefaultSpec(node, node.BumpPitchMinM)
		su, err := uniform.SizeRails()
		if err != nil {
			b.Fatal(err)
		}
		sh, err := hot.SizeRails()
		if err != nil {
			b.Fatal(err)
		}
		if sh.RailWidthM <= su.RailWidthM {
			b.Fatalf("hot spots must widen the rails")
		}
	}
}

// Ablation 7: analytic rail model vs numerical solvers.
func BenchmarkAblationGridSolvers(b *testing.B) {
	node := itrs.MustNode(35)
	spec := powergrid.DefaultSpec(node, node.BumpPitchMinM)
	for i := 0; i < b.N; i++ {
		if _, err := powergrid.ValidateAnalytic(spec, 128); err != nil {
			b.Fatal(err)
		}
		if _, err := powergrid.PessimisticRatio(spec, 31); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation 8: optimal vs ad-hoc repeater sizing.
func BenchmarkAblationRepeaterSizing(b *testing.B) {
	drv, err := repeater.UnitDriver(50, units.CelsiusToKelvin(85))
	if err != nil {
		b.Fatal(err)
	}
	line := wire.MustForNode(50, wire.Global)
	length, err := wire.CrossChipLength(50)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		best := repeater.Optimize(drv, line, length)
		adhoc := repeater.WithRepeaters(drv, line, length, best.Count/2, best.Size/2)
		if adhoc.Delay <= best.Delay {
			b.Fatalf("ad-hoc sizing should lose")
		}
	}
}

// --- Core engines under load (library performance benchmarks) -------------------

func BenchmarkSTAFull(b *testing.B) {
	c := freshCircuit(b, 1.15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sta.Analyze(c)
	}
}

func BenchmarkSTAIncrementalEdit(b *testing.B) {
	c := freshCircuit(b, 1.15)
	inc := sta.NewIncremental(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := &c.Gates[i%len(c.Gates)]
		old := g.Size
		g.Size = old * 0.99
		if !inc.TryUpdate(g.ID) {
			g.Size = old
		}
	}
}

func BenchmarkCombinedFlow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := freshCircuit(b, 1.15)
		if _, err := core.RunFlow(c, core.DefaultFlowOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDualVthAssign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := freshCircuit(b, 1.0)
		if _, err := dualvth.Assign(c, dualvth.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResizeDownsize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := freshCircuit(b, 1.15)
		if _, err := resize.Downsize(c, resize.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetlistGenerate(b *testing.B) {
	tech, err := netlist.NewTech(100, 0.65)
	if err != nil {
		b.Fatal(err)
	}
	p := netlist.DefaultGenParams()
	p.Gates = 4000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i)
		if _, err := netlist.Generate(tech, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeviceIonSolve(b *testing.B) {
	d := device.MustForNode(35)
	for i := 0; i < b.N; i++ {
		if _, err := d.SolveVthForIon(750, 0.6, units.RoomTemperature); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClaimStackVth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunStackVth(70); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClaimStandby(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunStandby(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClaimSwingStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSwingStudy(50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClaimBusPlan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunBusPlan(50); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel harness & solver kernels ------------------------------------------

// meshLaplacian builds the n×n 5-point mesh system Mesh.Solve assembles —
// reflective boundaries, the center node pinned (removed) as the bump,
// uniform current injection — the hot inner kernel of Figure 5 / C8,
// isolated for solver comparisons.
func meshLaplacian(n int) (*mathx.SparseMatrix, []float64) {
	center := (n/2)*n + n/2
	idx := make([]int, n*n)
	cnt := 0
	for i := range idx {
		if i == center {
			idx[i] = -1
			continue
		}
		idx[i] = cnt
		cnt++
	}
	m := mathx.NewSparseMatrix(cnt)
	b := make([]float64, cnt)
	at := func(r, c int) int { return r*n + c }
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			u := at(r, c)
			if idx[u] < 0 {
				continue
			}
			row := idx[u]
			b[row] = 1e-4
			deg := 0.0
			for _, nb := range [][2]int{{r - 1, c}, {r + 1, c}, {r, c - 1}, {r, c + 1}} {
				if nb[0] < 0 || nb[0] >= n || nb[1] < 0 || nb[1] >= n {
					continue // reflective boundary
				}
				v := at(nb[0], nb[1])
				deg++
				if idx[v] >= 0 {
					m.Add(row, idx[v], -1)
				}
			}
			m.Add(row, row, deg)
		}
	}
	return m, b
}

// BenchmarkMeshSolve compares the solver variants on the IR-drop kernel at
// two grid sizes: allocating CG (the seed behaviour), CG on a reused
// workspace, Jacobi PCG (on par in iterations here because the mesh
// diagonal is near-constant), and the production path — frozen CSR with a
// multigrid V-cycle preconditioner (near-constant iterations in n, zero
// allocations warm). Iterations are reported per variant; the Krylov
// variants grow O(n) while MG-workspace stays flat, which is what makes
// n = 255 affordable.
func BenchmarkMeshSolve(b *testing.B) {
	for _, n := range []int{63, 255} {
		m, rhs := meshLaplacian(n)
		frozen, _ := meshLaplacian(n)
		frozen.Freeze()
		mg, err := mathx.NewMeshMG(n, (n/2)*n+n/2)
		if err != nil {
			b.Fatal(err)
		}
		run := func(name string, solve func(b *testing.B) (int, error)) {
			b.Run(fmt.Sprintf("n=%d/%s", n, name), func(b *testing.B) {
				b.ReportAllocs()
				iters := 0
				for i := 0; i < b.N; i++ {
					it, err := solve(b)
					if err != nil {
						b.Fatal(err)
					}
					iters = it
				}
				b.ReportMetric(float64(iters), "iters")
			})
		}
		run("CG", func(b *testing.B) (int, error) {
			_, it, err := m.SolveCG(rhs, 1e-10, 20*m.N)
			return it, err
		})
		var wsCG mathx.Workspace
		run("CG-workspace", func(b *testing.B) (int, error) {
			_, it, err := m.SolveCGW(&wsCG, rhs, 1e-10, 20*m.N)
			return it, err
		})
		var wsPCG mathx.Workspace
		run("PCG-workspace", func(b *testing.B) (int, error) {
			_, it, err := m.SolvePCGW(&wsPCG, rhs, 1e-10, 20*m.N)
			return it, err
		})
		var wsMG mathx.Workspace
		run("MG-workspace", func(b *testing.B) (int, error) {
			_, it, err := frozen.SolveMGW(&wsMG, mg, rhs, 1e-10, 20*frozen.N)
			return it, err
		})
	}
}

// BenchmarkSmoothers is the DESIGN.md §5 smoother ablation on the MG-PCG
// production path: damped Jacobi (the round-1 smoother), red-black
// Gauss-Seidel (the `mg_rbgs` build-tag alternative), and the default
// degree-2 Chebyshev — plus Chebyshev with the full-multigrid start
// disabled, isolating what FMG alone contributes. Iterations per solve are
// reported alongside ns/op; the smoothing factor each variant achieves is
// tabulated in DESIGN.md §5 from these numbers.
func BenchmarkSmoothers(b *testing.B) {
	for _, n := range []int{63, 255} {
		frozen, rhs := meshLaplacian(n)
		frozen.Freeze()
		run := func(name string, mg *mathx.MeshMG) {
			b.Run(fmt.Sprintf("n=%d/%s", n, name), func(b *testing.B) {
				b.ReportAllocs()
				var ws mathx.Workspace
				iters := 0
				for i := 0; i < b.N; i++ {
					_, it, err := frozen.SolveMGW(&ws, mg, rhs, 1e-10, 20*frozen.N)
					if err != nil {
						b.Fatal(err)
					}
					iters = it
				}
				b.ReportMetric(float64(iters), "iters")
			})
		}
		pin := (n/2)*n + n/2
		for _, sm := range []mathx.Smoother{mathx.SmootherJacobi, mathx.SmootherRBGS, mathx.SmootherChebyshev} {
			mg, err := mathx.NewMeshMGSmoother(n, pin, sm)
			if err != nil {
				b.Fatal(err)
			}
			run(sm.String(), mg)
		}
		noFMG, err := mathx.NewMeshMGSmoother(n, pin, mathx.SmootherChebyshev)
		if err != nil {
			b.Fatal(err)
		}
		noFMG.SetFMG(false)
		run("chebyshev-nofmg", noFMG)
	}
}

// BenchmarkSweepBatch pins the batched sweep-solve claims at the two
// production grid sizes, for a 9-variant same-grid scenario sweep:
//
//   - varied-solo / varied-batch: 9 distinct same-pattern systems
//     (conductance and draw perturbed per variant) as 9 independent
//     Mesh.Solve calls vs one SolveMeshBatch lockstep call. The batch
//     shares the CSR pattern traversal and fuses its Krylov reductions,
//     with bit-identical drops; the V-cycle (the dominant cost) is
//     per-variant either way, so these two track closely — the batch must
//     simply never lose.
//   - sweep-independent / sweep-primed: the shape a real sweep has when
//     the swept parameter leaves the 35 nm grid untouched (the common
//     case — e.g. the default vdd sweeps at other nodes): every variant
//     assembles the SAME system. Pre-batch, the per-variant computes ran
//     9 full identical solves (sweep-independent); the priming path
//     (repro.PrimeVariants → powergrid.PrimeSolves) now solves once and
//     parks a counted drop for all 9 consumers (sweep-primed). This row
//     is the sweep fast path's headline: ~9× fewer real solves.
func BenchmarkSweepBatch(b *testing.B) {
	const variants = 9
	for _, n := range []int{127, 255} {
		build := func(varied bool) []*powergrid.Mesh {
			meshes := make([]*powergrid.Mesh, variants)
			for i := range meshes {
				f := 1.0
				if varied {
					f = 0.9 + 0.2*float64(i)/float64(variants-1)
				}
				meshes[i] = &powergrid.Mesh{
					N:            n,
					PitchM:       80e-6,
					EdgeOhms:     0.04 * f,
					NodeCurrentA: 1.2e-4 / f,
				}
			}
			return meshes
		}
		b.Run(fmt.Sprintf("n=%d/varied-solo", n), func(b *testing.B) {
			meshes := build(true)
			for i := 0; i < b.N; i++ {
				for _, m := range meshes {
					if _, err := m.Solve(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/varied-batch", n), func(b *testing.B) {
			meshes := build(true)
			for i := 0; i < b.N; i++ {
				if _, err := powergrid.SolveMeshBatch(meshes); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/sweep-independent", n), func(b *testing.B) {
			meshes := build(false)
			for i := 0; i < b.N; i++ {
				for _, m := range meshes {
					if _, err := m.Solve(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/sweep-primed", n), func(b *testing.B) {
			meshes := build(false)
			for i := 0; i < b.N; i++ {
				powergrid.PrimeSolves(meshes)
				for _, m := range meshes {
					if _, err := m.Solve(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkMeshSolveGrid runs the full powergrid path (assembly + pooled
// workspace + PCG) exactly as Figure 5 does.
func BenchmarkMeshSolveGrid(b *testing.B) {
	node := itrs.MustNode(35)
	spec := powergrid.DefaultSpec(node, node.BumpPitchMinM)
	for i := 0; i < b.N; i++ {
		if _, err := powergrid.PessimisticRatio(spec, 63); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullReport regenerates the entire nanorepro report (tables,
// figures, claims) through the runner pool at several worker counts. The
// jobs=1 case is the serial baseline; speedup at jobs>1 scales with
// available cores (GOMAXPROCS) since the artifacts are independent.
func BenchmarkFullReport(b *testing.B) {
	counts := []int{1, 2, runtime.NumCPU()}
	if runtime.NumCPU() <= 2 {
		counts = counts[:2]
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("jobs=%d", workers), func(b *testing.B) {
			// NoCache: this benchmark measures the model stack, not the
			// memoized path (BenchmarkArtifactCache covers that).
			jobs := repro.Jobs(repro.Artifacts(), repro.Options{NoCache: true})
			pool := runner.Pool{Workers: workers}
			for i := 0; i < b.N; i++ {
				results, err := pool.RunTo(io.Discard, jobs)
				if err != nil {
					b.Fatal(err)
				}
				if err := runner.Errs(results); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Validation benches: the numerical ground truths against the analytic layer.

func BenchmarkValidationRCSim(b *testing.B) {
	w := wire.MustForNode(50, wire.Global)
	l := &rcsim.Line{
		RPerM: w.RPerM(), CPerM: w.CPerM(),
		LengthM: 5e-3, Segments: 64,
		DriverOhms: 500, LoadF: 10e-15,
	}
	for i := 0; i < b.N; i++ {
		sim, err := l.Delay50()
		if err != nil {
			b.Fatal(err)
		}
		analytic := w.DrivenDelay(5e-3, 500, 10e-15)
		if r := analytic / sim; r < 0.8 || r > 1.3 {
			b.Fatalf("analytic layer diverged from the simulator: ×%.2f", r)
		}
	}
}

func BenchmarkValidationLogicSim(b *testing.B) {
	c := freshCircuit(b, 1.15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probMAE, _, err := logicsim.CompareWithModel(c, logicsim.Options{Cycles: 2048, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if probMAE > 0.05 {
			b.Fatalf("activity model diverged: MAE %.3f", probMAE)
		}
	}
}
