package sta

import (
	"container/heap"

	"nanometer/internal/netlist"
)

// Incremental is an incremental timing view of a circuit that supports
// trial edits with rollback — the engine under the CVS, dual-Vth, and
// re-sizing greedy loops. The caller mutates gate fields (Vdd/Vth class,
// size), then calls TryUpdate with the set of gates whose *delay* may have
// changed; the engine repropagates arrivals through the affected cone and
// reports whether the period still holds. Rejected edits are rolled back by
// the returned restore function (the caller un-mutates its own fields).
type Incremental struct {
	c *netlist.Circuit
	// ArrivalS and DelayS mirror the Result fields and stay current.
	ArrivalS, DelayS []float64
	// PeriodS is the constraint.
	PeriodS float64

	eps float64
}

// NewIncremental analyzes the circuit and returns an incremental view. The
// circuit must currently meet its period.
func NewIncremental(c *netlist.Circuit) *Incremental {
	r := Analyze(c)
	return &Incremental{
		c:        c,
		ArrivalS: r.ArrivalS,
		DelayS:   r.DelayS,
		PeriodS:  r.PeriodS,
		eps:      r.PeriodS * 1e-12,
	}
}

// Slack returns gate i's slack against the period using a fresh backward
// pass. It is O(n); optimization loops should prefer Result.SlackS
// snapshots and TryUpdate for exactness.
func (inc *Incremental) Slack(i int) float64 {
	r := Analyze(inc.c)
	return r.SlackS[i]
}

// intHeap is a min-heap of gate IDs (topological order).
type intHeap []int

func (h intHeap) Len() int            { return len(h) }
func (h intHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TryUpdate repropagates timing after the caller mutated the given gates.
// It returns ok = true when every primary output still meets the period; in
// that case the edit is committed. When ok = false the engine has already
// restored its arrays and the caller must revert its own field mutations.
func (inc *Incremental) TryUpdate(changed ...int) bool {
	oldArr := map[int]float64{}
	oldDelay := map[int]float64{}

	h := &intHeap{}
	inHeap := map[int]bool{}
	push := func(i int) {
		if !inHeap[i] {
			inHeap[i] = true
			heap.Push(h, i)
		}
	}
	for _, i := range changed {
		// The changed list may contain duplicates (e.g. a driver feeding
		// two pins of the same gate); only the first sighting holds the
		// pre-trial delay.
		if _, seen := oldDelay[i]; !seen {
			oldDelay[i] = inc.DelayS[i]
		}
		inc.DelayS[i] = inc.c.GateDelay(&inc.c.Gates[i])
		push(i)
	}
	ok := true
	for h.Len() > 0 {
		i := heap.Pop(h).(int)
		inHeap[i] = false
		g := &inc.c.Gates[i]
		in := 0.0
		for _, ref := range g.Inputs {
			if _, isPI := netlist.IsPI(ref); isPI {
				continue
			}
			if a := inc.ArrivalS[ref]; a > in {
				in = a
			}
		}
		newArr := in + inc.DelayS[i]
		if newArr == inc.ArrivalS[i] {
			continue
		}
		if _, saved := oldArr[i]; !saved {
			oldArr[i] = inc.ArrivalS[i]
		}
		inc.ArrivalS[i] = newArr
		if g.IsPO && newArr > inc.PeriodS+inc.eps {
			ok = false
			break
		}
		for _, fo := range g.Fanouts {
			push(fo)
		}
	}
	if !ok {
		for i, a := range oldArr {
			inc.ArrivalS[i] = a
		}
		for i, d := range oldDelay {
			inc.DelayS[i] = d
		}
	}
	return ok
}

// WorstArrival returns the worst PO arrival currently recorded.
func (inc *Incremental) WorstArrival() float64 {
	worst := 0.0
	for i := range inc.c.Gates {
		if inc.c.Gates[i].IsPO && inc.ArrivalS[i] > worst {
			worst = inc.ArrivalS[i]
		}
	}
	return worst
}

// Met reports whether the tracked state meets the period.
func (inc *Incremental) Met() bool {
	return inc.WorstArrival() <= inc.PeriodS+inc.eps
}
