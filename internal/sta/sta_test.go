package sta

import (
	"math"
	"math/rand"
	"testing"

	"nanometer/internal/gate"
	"nanometer/internal/netlist"
)

// chain builds a hand-analyzable linear chain of n inverters.
func chain(t *testing.T, n int) *netlist.Circuit {
	t.Helper()
	tech := netlist.MustNewTech(100, 0.65)
	c := &netlist.Circuit{Tech: tech, NumPIs: 1, PIActivity: 0.1}
	for i := 0; i < n; i++ {
		in := netlist.PI(0)
		if i > 0 {
			in = i - 1
		}
		c.Gates = append(c.Gates, netlist.Gate{
			ID: i, Kind: gate.Inv, Inputs: []int{in}, Size: 2, WireCapF: 1e-15,
		})
	}
	c.Rebuild()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func genCircuit(t *testing.T, gates int, seed int64) *netlist.Circuit {
	t.Helper()
	tech := netlist.MustNewTech(100, 0.65)
	p := netlist.DefaultGenParams()
	p.Gates = gates
	p.Seed = seed
	c, err := netlist.Generate(tech, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SetPeriodFromCritical(c, 1.1); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestChainArrivals(t *testing.T) {
	c := chain(t, 5)
	r := Analyze(c)
	// Arrival must accumulate gate delays exactly.
	sum := 0.0
	for i := 0; i < 5; i++ {
		sum += r.DelayS[i]
		if math.Abs(r.ArrivalS[i]-sum) > 1e-18 {
			t.Fatalf("arrival[%d] = %g, want %g", i, r.ArrivalS[i], sum)
		}
	}
	if r.MaxDelayS != r.ArrivalS[4] {
		t.Fatalf("critical delay must equal the sink arrival")
	}
	// With period = critical delay, every gate on the chain has zero slack.
	for i := range r.SlackS {
		if math.Abs(r.SlackS[i]) > 1e-15 {
			t.Fatalf("chain slack[%d] = %g, want 0", i, r.SlackS[i])
		}
	}
	if len(r.CriticalPath) != 5 {
		t.Fatalf("critical path length %d, want 5", len(r.CriticalPath))
	}
}

func TestSlackConsistency(t *testing.T) {
	c := genCircuit(t, 800, 1)
	r := Analyze(c)
	if !r.Met() {
		t.Fatalf("10%% guard must meet timing")
	}
	for i := range c.Gates {
		// Slack = required − arrival by definition.
		if math.Abs(r.SlackS[i]-(r.RequiredS[i]-r.ArrivalS[i])) > 1e-18 {
			t.Fatalf("slack identity broken at gate %d", i)
		}
	}
	// Worst slack must equal the guard margin on the critical path.
	wantWorst := r.PeriodS - r.MaxDelayS
	if math.Abs(r.WorstSlackS-wantWorst) > 1e-15 {
		t.Fatalf("worst slack %g, want %g", r.WorstSlackS, wantWorst)
	}
}

func TestCriticalPathIsConnectedAndCritical(t *testing.T) {
	c := genCircuit(t, 800, 2)
	r := Analyze(c)
	cp := r.CriticalPath
	if len(cp) == 0 {
		t.Fatalf("no critical path")
	}
	last := cp[len(cp)-1]
	if !c.Gates[last].IsPO || math.Abs(r.ArrivalS[last]-r.MaxDelayS) > 1e-18 {
		t.Fatalf("critical path must end at the worst PO")
	}
	for i := 1; i < len(cp); i++ {
		found := false
		for _, ref := range c.Gates[cp[i]].Inputs {
			if ref == cp[i-1] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("critical path edge %d→%d is not a netlist edge", cp[i-1], cp[i])
		}
	}
	// Path delay must sum to the critical delay.
	sum := 0.0
	for _, g := range cp {
		sum += r.DelayS[g]
	}
	if math.Abs(sum-r.MaxDelayS) > 1e-15 {
		t.Fatalf("critical path delays sum to %g, want %g", sum, r.MaxDelayS)
	}
}

func TestSetPeriodFromCritical(t *testing.T) {
	c := chain(t, 4)
	p, err := SetPeriodFromCritical(c, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	r := Analyze(c)
	if math.Abs(p-1.2*r.MaxDelayS) > 1e-18 {
		t.Fatalf("period %g, want 1.2× critical %g", p, r.MaxDelayS)
	}
	if _, err := SetPeriodFromCritical(c, 0.9); err == nil {
		t.Fatalf("guard < 1 must error")
	}
}

func TestPathUtilization(t *testing.T) {
	c := genCircuit(t, 800, 3)
	r := Analyze(c)
	u0 := r.PathUtilization(c, 0.0)
	u1 := r.PathUtilization(c, 1.0)
	uHalf := r.PathUtilization(c, 0.5)
	if u0 != 0 || u1 != 1 {
		t.Fatalf("utilization bounds broken: %g, %g", u0, u1)
	}
	if uHalf <= 0 || uHalf >= 1 {
		t.Fatalf("half-cycle utilization = %g, expected interior value", uHalf)
	}
}

func TestSlackHistogram(t *testing.T) {
	c := genCircuit(t, 500, 4)
	r := Analyze(c)
	h := r.SlackHistogram(10)
	total := 0
	for _, n := range h {
		total += n
	}
	if total != len(c.Gates) {
		t.Fatalf("histogram counts %d, want %d", total, len(c.Gates))
	}
}

// The incremental engine must agree exactly with full re-analysis under a
// random edit sequence, and rollbacks must restore the previous state.
func TestIncrementalMatchesFullSTA(t *testing.T) {
	c := genCircuit(t, 600, 5)
	inc := NewIncremental(c)
	rng := rand.New(rand.NewSource(9))
	accepted, rejected := 0, 0
	for step := 0; step < 300; step++ {
		i := rng.Intn(len(c.Gates))
		g := &c.Gates[i]
		oldSize, oldVth, oldVdd := g.Size, g.VthClass, g.VddClass
		switch rng.Intn(3) {
		case 0:
			g.Size = math.Max(0.5, g.Size*(0.6+rng.Float64()))
		case 1:
			g.VthClass = 1 - g.VthClass
		case 2:
			g.VddClass = 1 - g.VddClass
		}
		seeds := []int{i}
		for _, ref := range g.Inputs {
			if _, isPI := netlist.IsPI(ref); !isPI {
				seeds = append(seeds, ref)
			}
		}
		if inc.TryUpdate(seeds...) {
			accepted++
		} else {
			g.Size, g.VthClass, g.VddClass = oldSize, oldVth, oldVdd
			rejected++
		}
		// Invariant: incremental arrays match a fresh full analysis.
		full := Analyze(c)
		for k := range full.ArrivalS {
			if math.Abs(full.ArrivalS[k]-inc.ArrivalS[k]) > 1e-16+1e-9*full.ArrivalS[k] {
				t.Fatalf("step %d: arrival[%d] diverged: %g vs %g", step, k, inc.ArrivalS[k], full.ArrivalS[k])
			}
		}
		if !full.Met() {
			t.Fatalf("step %d: incremental accepted a violating state", step)
		}
	}
	if accepted == 0 || rejected == 0 {
		t.Fatalf("edit mix should include accepts and rejects (%d/%d)", accepted, rejected)
	}
}

func TestIncrementalDuplicateFanins(t *testing.T) {
	// A driver feeding two pins of the same gate: duplicate seeds must not
	// corrupt the rollback (regression for the flow-violation bug).
	tech := netlist.MustNewTech(100, 0.65)
	c := &netlist.Circuit{Tech: tech, NumPIs: 1}
	c.Gates = []netlist.Gate{
		{ID: 0, Kind: gate.Inv, Inputs: []int{netlist.PI(0)}, Size: 2, WireCapF: 1e-15},
		{ID: 1, Kind: gate.Nand, Inputs: []int{0, 0}, Size: 2, WireCapF: 1e-15},
	}
	c.Rebuild()
	if _, err := SetPeriodFromCritical(c, 1.0); err != nil {
		t.Fatal(err)
	}
	inc := NewIncremental(c)
	g := &c.Gates[1]
	old := g.Size
	g.Size = 0.5 // big slowdown on the (zero-slack) critical path → reject
	if inc.TryUpdate(1, 0, 0) {
		t.Fatalf("edit on a zero-slack path should be rejected")
	}
	g.Size = old
	full := Analyze(c)
	for k := range full.DelayS {
		if math.Abs(full.DelayS[k]-inc.DelayS[k]) > 1e-18 {
			t.Fatalf("rollback left stale delay at gate %d", k)
		}
	}
}

func TestIncrementalMetAndWorstArrival(t *testing.T) {
	c := genCircuit(t, 300, 6)
	inc := NewIncremental(c)
	full := Analyze(c)
	if !inc.Met() {
		t.Fatalf("fresh incremental view must meet timing")
	}
	if math.Abs(inc.WorstArrival()-full.MaxDelayS) > 1e-15 {
		t.Fatalf("worst arrival mismatch")
	}
	if s := inc.Slack(0); math.Abs(s-full.SlackS[0]) > 1e-15 {
		t.Fatalf("incremental slack mismatch")
	}
}
