// Package sta is a static timing analyzer for the netlist substrate:
// topological arrival/required-time propagation, slack computation, critical
// path extraction, and the slack-distribution summaries the paper's
// multi-Vdd discussion relies on ("over half of all timing paths commonly
// use less than half the clock cycle").
package sta

import (
	"fmt"
	"math"

	"nanometer/internal/netlist"
)

// Result holds a full timing analysis of a circuit.
type Result struct {
	// ArrivalS[i] is the latest output arrival time of gate i; RequiredS[i]
	// the latest permissible; SlackS[i] their difference.
	ArrivalS, RequiredS, SlackS []float64
	// DelayS[i] caches each gate's propagation delay at analysis time.
	DelayS []float64
	// MaxDelayS is the critical (longest) path delay to any PO.
	MaxDelayS float64
	// PeriodS is the constraint the required times were computed against.
	PeriodS float64
	// CriticalPath lists gate IDs from a PI-adjacent gate to the worst PO.
	CriticalPath []int
	// WorstSlackS is the minimum slack over all gates.
	WorstSlackS float64
}

// Analyze runs timing on the circuit against its ClockPeriodS. A zero
// period analyzes against the critical delay itself (zero worst slack).
func Analyze(c *netlist.Circuit) *Result {
	n := len(c.Gates)
	r := &Result{
		ArrivalS:  make([]float64, n),
		RequiredS: make([]float64, n),
		SlackS:    make([]float64, n),
		DelayS:    make([]float64, n),
	}
	// Forward: arrival times in topological order.
	for i := range c.Gates {
		g := &c.Gates[i]
		r.DelayS[i] = c.GateDelay(g)
		in := 0.0
		for _, ref := range g.Inputs {
			if _, ok := netlist.IsPI(ref); ok {
				continue
			}
			if a := r.ArrivalS[ref]; a > in {
				in = a
			}
		}
		r.ArrivalS[i] = in + r.DelayS[i]
		if g.IsPO && r.ArrivalS[i] > r.MaxDelayS {
			r.MaxDelayS = r.ArrivalS[i]
		}
	}
	r.PeriodS = c.ClockPeriodS
	if r.PeriodS == 0 {
		r.PeriodS = r.MaxDelayS
	}
	// Backward: required times.
	for i := range r.RequiredS {
		r.RequiredS[i] = math.Inf(1)
	}
	for i := n - 1; i >= 0; i-- {
		g := &c.Gates[i]
		if g.IsPO {
			if r.PeriodS < r.RequiredS[i] {
				r.RequiredS[i] = r.PeriodS
			}
		}
		for _, ref := range g.Inputs {
			if _, ok := netlist.IsPI(ref); ok {
				continue
			}
			need := r.RequiredS[i] - r.DelayS[i]
			if need < r.RequiredS[ref] {
				r.RequiredS[ref] = need
			}
		}
	}
	r.WorstSlackS = math.Inf(1)
	for i := range c.Gates {
		r.SlackS[i] = r.RequiredS[i] - r.ArrivalS[i]
		if r.SlackS[i] < r.WorstSlackS {
			r.WorstSlackS = r.SlackS[i]
		}
	}
	r.CriticalPath = criticalPath(c, r)
	return r
}

// criticalPath walks back from the worst PO along worst-arrival fanins.
func criticalPath(c *netlist.Circuit, r *Result) []int {
	worst, worstArr := -1, -1.0
	for i := range c.Gates {
		if c.Gates[i].IsPO && r.ArrivalS[i] > worstArr {
			worst, worstArr = i, r.ArrivalS[i]
		}
	}
	if worst < 0 {
		return nil
	}
	var rev []int
	for g := worst; g >= 0; {
		rev = append(rev, g)
		next := -1
		nextArr := 0.0
		for _, ref := range c.Gates[g].Inputs {
			if _, ok := netlist.IsPI(ref); ok {
				continue
			}
			if r.ArrivalS[ref] >= nextArr {
				next, nextArr = ref, r.ArrivalS[ref]
			}
		}
		g = next
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Met reports whether the circuit meets its period (non-negative slack
// within a rounding epsilon).
func (r *Result) Met() bool { return r.WorstSlackS > -1e-15 }

// SetPeriodFromCritical sets the circuit's clock period to guard × the
// current critical delay (guard ≥ 1) and returns the period.
func SetPeriodFromCritical(c *netlist.Circuit, guard float64) (float64, error) {
	if guard < 1 {
		return 0, fmt.Errorf("sta: guard %g must be ≥ 1", guard)
	}
	saved := c.ClockPeriodS
	c.ClockPeriodS = 0
	r := Analyze(c)
	if r.MaxDelayS <= 0 {
		c.ClockPeriodS = saved
		return 0, fmt.Errorf("sta: circuit has no timing paths")
	}
	c.ClockPeriodS = r.MaxDelayS * guard
	return c.ClockPeriodS, nil
}

// PathUtilization returns the fraction of POs whose arrival time is at most
// frac of the period — the paper's slack-distribution statistic (over half
// of paths below half the cycle in high-end MPUs).
func (r *Result) PathUtilization(c *netlist.Circuit, frac float64) float64 {
	var pos, total int
	for i := range c.Gates {
		if !c.Gates[i].IsPO {
			continue
		}
		total++
		if r.ArrivalS[i] <= frac*r.PeriodS {
			pos++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(pos) / float64(total)
}

// SlackHistogram buckets gate slacks (normalized to the period) into bins
// and returns the counts.
func (r *Result) SlackHistogram(bins int) []int {
	out := make([]int, bins)
	for _, s := range r.SlackS {
		f := s / r.PeriodS
		idx := int(f * float64(bins))
		if idx < 0 {
			idx = 0
		}
		if idx >= bins {
			idx = bins - 1
		}
		out[idx]++
	}
	return out
}
