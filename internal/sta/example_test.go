package sta_test

import (
	"fmt"

	"nanometer/internal/netlist"
	"nanometer/internal/sta"
)

// Analyze timing on a generated block and read the slack-distribution
// statistic the paper's multi-Vdd discussion rests on.
func ExampleAnalyze() {
	tech := netlist.MustNewTech(100, 0.65)
	p := netlist.DefaultGenParams()
	p.Gates = 1000
	p.Levels = 30
	p.ShortPathFraction = 0.5
	p.Seed = 7
	c, err := netlist.Generate(tech, p)
	if err != nil {
		panic(err)
	}
	if _, err := sta.SetPeriodFromCritical(c, 1.15); err != nil {
		panic(err)
	}
	r := sta.Analyze(c)
	fmt.Printf("timing met: %v; over half the paths below half the cycle: %v\n",
		r.Met(), r.PathUtilization(c, 0.5) > 0.5)
	// Output:
	// timing met: true; over half the paths below half the cycle: true
}

// The incremental engine accepts edits that fit the period and rolls back
// ones that do not — the machinery under every optimization loop here.
func ExampleIncremental() {
	tech := netlist.MustNewTech(100, 0.65)
	p := netlist.DefaultGenParams()
	p.Gates = 500
	p.Seed = 3
	c, err := netlist.Generate(tech, p)
	if err != nil {
		panic(err)
	}
	if _, err := sta.SetPeriodFromCritical(c, 1.0); err != nil {
		panic(err)
	}
	inc := sta.NewIncremental(c)
	// Find a critical gate (zero slack) and try to slow it: rejected.
	full := sta.Analyze(c)
	critical := full.CriticalPath[0]
	old := c.Gates[critical].Size
	c.Gates[critical].Size = old / 4
	ok := inc.TryUpdate(critical)
	if !ok {
		c.Gates[critical].Size = old
	}
	fmt.Printf("slowing a zero-slack gate accepted: %v; still met: %v\n", ok, inc.Met())
	// Output:
	// slowing a zero-slack gate accepted: false; still met: true
}
