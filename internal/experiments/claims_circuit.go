package experiments

import (
	"fmt"

	"nanometer/internal/core"
	"nanometer/internal/cvs"
	"nanometer/internal/device"
	"nanometer/internal/dualvth"
	"nanometer/internal/libopt"
	"nanometer/internal/netlist"
	"nanometer/internal/resize"
	"nanometer/internal/sta"
)

// CircuitSetup describes the benchmark netlist profile the circuit-level
// experiments share.
type CircuitSetup struct {
	NodeNM int
	// Gates is the netlist size.
	Gates int
	// LowVddRatio is Vdd,l/Vdd,h for the multi-supply experiments.
	LowVddRatio float64
	// PeriodGuard relaxes the clock beyond the critical delay. Media-
	// processor-class designs (the CVS references) run ≈1.15; timing-
	// squeezed MPU blocks 1.0.
	PeriodGuard float64
	// Seed fixes the generated circuit.
	Seed int64
}

// DefaultCircuitSetup is the media-processor-like profile of the paper's
// CVS references [18,19].
func DefaultCircuitSetup() CircuitSetup {
	return CircuitSetup{NodeNM: 100, Gates: 3000, LowVddRatio: 0.65, PeriodGuard: 1.15, Seed: 7}
}

// buildCircuit generates the benchmark netlist for a setup.
func buildCircuit(s CircuitSetup) (*netlist.Circuit, error) {
	return buildCircuitIn(device.BaseLab(), s)
}

// buildCircuitIn is buildCircuit against an explicit laboratory.
func buildCircuitIn(lab *device.Lab, s CircuitSetup) (*netlist.Circuit, error) {
	tech, err := netlist.NewTechIn(lab, s.NodeNM, s.LowVddRatio)
	if err != nil {
		return nil, err
	}
	p := netlist.DefaultGenParams()
	p.Gates = s.Gates
	p.Levels = 30
	p.ShortPathFraction = 0.5
	p.Seed = s.Seed
	c, err := netlist.Generate(tech, p)
	if err != nil {
		return nil, err
	}
	if _, err := sta.SetPeriodFromCritical(c, s.PeriodGuard); err != nil {
		return nil, err
	}
	return c, nil
}

// CVSResult is the C4 experiment output.
type CVSResult struct {
	Setup CircuitSetup
	// PathUtilization is the fraction of POs arriving before half the
	// period (the paper: over half in high-end MPUs).
	PathUtilization float64
	// Clustered is the CVS run; Unclustered the no-clustering ablation.
	Clustered, Unclustered *cvs.Result
}

// RunCVS runs clustered voltage scaling and its clustering ablation.
func RunCVS(s CircuitSetup) (*CVSResult, error) {
	return RunCVSIn(device.BaseLab(), s)
}

// RunCVSIn is RunCVS against an explicit laboratory.
func RunCVSIn(lab *device.Lab, s CircuitSetup) (*CVSResult, error) {
	c, err := buildCircuitIn(lab, s)
	if err != nil {
		return nil, err
	}
	r := sta.Analyze(c)
	out := &CVSResult{Setup: s, PathUtilization: r.PathUtilization(c, 0.5)}
	clustered := c.Clone()
	out.Clustered, err = cvs.Assign(clustered, cvs.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("experiments: clustered CVS: %w", err)
	}
	opts := cvs.DefaultOptions()
	opts.Clustering = false
	unclustered := c.Clone()
	out.Unclustered, err = cvs.Assign(unclustered, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: unclustered CVS: %w", err)
	}
	return out, nil
}

// DualVthResult is the C5 experiment output.
type DualVthResult struct {
	Setup CircuitSetup
	// Sensitivity is the default ordering; SlackOrdered the ablation.
	Sensitivity, SlackOrdered *dualvth.Result
}

// RunDualVth runs dual-threshold assignment and its ordering ablation. The
// netlist is clocked at its critical delay (guard 1.0): the dual-Vth
// literature's results are for timing-tight designs where the low threshold
// is what makes the clock.
func RunDualVth(s CircuitSetup) (*DualVthResult, error) {
	return RunDualVthIn(device.BaseLab(), s)
}

// RunDualVthIn is RunDualVth against an explicit laboratory.
func RunDualVthIn(lab *device.Lab, s CircuitSetup) (*DualVthResult, error) {
	s.PeriodGuard = 1.0
	out := &DualVthResult{Setup: s}
	c1, err := buildCircuitIn(lab, s)
	if err != nil {
		return nil, err
	}
	out.Sensitivity, err = dualvth.Assign(c1, dualvth.Options{})
	if err != nil {
		return nil, err
	}
	c2, err := buildCircuitIn(lab, s)
	if err != nil {
		return nil, err
	}
	out.SlackOrdered, err = dualvth.Assign(c2, dualvth.Options{Order: dualvth.BySlack})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ResizeVsVddResult is the C6 experiment: the paper's §3.3 argument that
// downsizing returns sublinear power (wire capacitance persists) while a
// lower supply returns quadratic.
type ResizeVsVddResult struct {
	Setup CircuitSetup
	// Resize is the downsizing run on an oversized netlist.
	Resize *resize.Result
	// CVSOnSame is CVS applied to a clone of the same starting netlist.
	CVSOnSame *cvs.Result
	// Combined is the full pipeline on a third clone.
	Combined *core.FlowResult
	// ResizeAfterCVS captures the paper's interaction warning: after
	// re-sizing, fewer cells tolerate Vdd,l. AssignedAfterResize is the
	// CVS fraction when re-sizing runs first.
	AssignedAfterResize float64
}

// RunResizeVsVdd runs the C6 comparison.
func RunResizeVsVdd(s CircuitSetup) (*ResizeVsVddResult, error) {
	return RunResizeVsVddIn(device.BaseLab(), s)
}

// RunResizeVsVddIn is RunResizeVsVdd against an explicit laboratory.
func RunResizeVsVddIn(lab *device.Lab, s CircuitSetup) (*ResizeVsVddResult, error) {
	base, err := buildCircuitIn(lab, s)
	if err != nil {
		return nil, err
	}
	out := &ResizeVsVddResult{Setup: s}

	rzC := base.Clone()
	out.Resize, err = resize.Downsize(rzC, resize.DefaultOptions())
	if err != nil {
		return nil, err
	}
	cvsC := base.Clone()
	out.CVSOnSame, err = cvs.Assign(cvsC, cvs.DefaultOptions())
	if err != nil {
		return nil, err
	}
	combC := base.Clone()
	out.Combined, err = core.RunFlow(combC, core.DefaultFlowOptions())
	if err != nil {
		return nil, err
	}
	// Resize first, then CVS: the paper's sub-optimality observation.
	firstRz := base.Clone()
	if _, err := resize.Downsize(firstRz, resize.DefaultOptions()); err != nil {
		return nil, err
	}
	afterCVS, err := cvs.Assign(firstRz, cvs.DefaultOptions())
	if err != nil {
		return nil, err
	}
	out.AssignedAfterResize = afterCVS.AssignedFraction
	return out, nil
}

// LibraryResult is the C3 experiment output.
type LibraryResult struct {
	Setup CircuitSetup
	// Results are per-library, in the order coarse, rich, continuous.
	Results []*libopt.Result
	// ContinuousVsCoarse is the power saving of on-the-fly cells over the
	// coarse legacy library (paper: 15–22 %).
	ContinuousVsCoarse float64
	// ContinuousVsRich is the saving over the modern rich library.
	ContinuousVsRich float64
}

// RunLibrary runs the library-granularity comparison.
func RunLibrary(s CircuitSetup) (*LibraryResult, error) {
	return RunLibraryIn(device.BaseLab(), s)
}

// RunLibraryIn is RunLibrary against an explicit laboratory.
func RunLibraryIn(lab *device.Lab, s CircuitSetup) (*LibraryResult, error) {
	c, err := buildCircuitIn(lab, s)
	if err != nil {
		return nil, err
	}
	// Start oversized, as synthesized netlists are.
	for i := range c.Gates {
		c.Gates[i].Size = 8
	}
	if _, err := sta.SetPeriodFromCritical(c, s.PeriodGuard); err != nil {
		return nil, err
	}
	libs := []libopt.Library{
		libopt.Geometric("coarse legacy (min 4, ratio 2)", 4, 64, 2),
		libopt.Geometric("rich modern (min 1, ratio 1.3)", 1, 64, 1.3),
		libopt.Continuous(0.25),
	}
	results, err := libopt.CompareLibraries(c, libs, 0)
	if err != nil {
		return nil, err
	}
	out := &LibraryResult{Setup: s, Results: results}
	coarse := results[0].Power.TotalW()
	rich := results[1].Power.TotalW()
	cont := results[2].Power.TotalW()
	if coarse > 0 {
		out.ContinuousVsCoarse = 1 - cont/coarse
	}
	if rich > 0 {
		out.ContinuousVsRich = 1 - cont/rich
	}
	return out, nil
}
