package experiments

import (
	"nanometer/internal/core"
	"nanometer/internal/device"
	"nanometer/internal/gate"
	"nanometer/internal/mcml"
	"nanometer/internal/mtcmos"
	"nanometer/internal/powergrid"
	"nanometer/internal/units"
)

// VddFloorResult is the C7 experiment: the lowest supply the ITRS
// Pdyn ≥ 10·Pstatic constraint permits under the constant-Pstatic policy at
// 35 nm, and the dynamic-power saving it buys (paper: ≈0.44 V, 46 %).
type VddFloorResult struct {
	Vdd     float64
	Savings float64
	// At02V captures the headline Figure 3 point: delay and power at
	// Vdd = 0.2 V under the constant-Pstatic policy.
	At02V core.OperatingPoint
}

// RunVddFloor runs the C7 computation.
func RunVddFloor() (*VddFloorResult, error) {
	return RunVddFloorIn(device.BaseLab())
}

// RunVddFloorIn is RunVddFloor against an explicit laboratory.
func RunVddFloorIn(lab *device.Lab) (*VddFloorResult, error) {
	node := lab.MustNode(35)
	ex, err := core.NewExplorerIn(lab, 35, units.RoomTemperature, 0.1, node.ClockHz)
	if err != nil {
		return nil, err
	}
	v, s, err := ex.VddFloor(core.ConstantPstatic, 10)
	if err != nil {
		return nil, err
	}
	at02, err := ex.At(core.ConstantPstatic, 0.2)
	if err != nil {
		return nil, err
	}
	return &VddFloorResult{Vdd: v, Savings: s, At02V: at02}, nil
}

// BumpsResult is the C8 experiment: the ITRS bump plan vs the minimum
// attainable pitch at 35 nm.
type BumpsResult struct {
	// EffectivePitchM is the pitch implied by the ITRS pad counts (paper:
	// ≈356 µm); MinPitchM the attainable pitch (80 µm).
	EffectivePitchM, MinPitchM float64
	// ITRSWidthOverMin and MinWidthOverMin are the required rail widths
	// (paper: >2000× vs 16×).
	ITRSWidthOverMin, MinWidthOverMin float64
	// ITRSFeasible reports whether the ITRS-plan rails even fit the die.
	ITRSFeasible bool
	// Current check (paper: 1500 Vdd bumps cannot carry 300 A).
	Current powergrid.BumpCurrentCheck
	// LadderRatio validates the analytic sizing against the 1-D solver;
	// PessimisticRatio is the 2-D smeared-mesh upper bound.
	LadderRatio, PessimisticRatio float64
}

// DefaultMeshN is the 2-D mesh discretization RunBumps uses: fine enough
// that the smeared-mesh bound is converged at report precision, small
// enough to stay cheap. RunBumpsN overrides it.
const DefaultMeshN = 41

// RunBumps runs the C8 analysis at 35 nm with the default mesh size.
func RunBumps() (*BumpsResult, error) {
	return RunBumpsN(DefaultMeshN)
}

// RunBumpsN runs the C8 analysis at 35 nm with an n×n validation mesh
// (n ≤ 0 selects DefaultMeshN). The multigrid-preconditioned mesh solver
// keeps iteration counts near-constant in n, so refinement sweeps (129,
// 255, ...) stay close to linear in node count.
func RunBumpsN(meshN int) (*BumpsResult, error) {
	return RunBumpsNIn(device.BaseLab(), meshN)
}

// BumpMesh builds (without solving) the pessimistic validation mesh the
// C8 analysis solves at meshN (n ≤ 0 selects DefaultMeshN) — the dominant
// compute of a scenario sweep. Sweep priming collects these meshes across
// variants and batch-solves them (powergrid.PrimeSolves) before the
// per-variant runs; results are unchanged because primed drops are
// bit-identical to solo solves. Unlike RunBumpsNIn this returns rather
// than panics on a lab without the 35 nm node, since priming must shrug
// off exotic scenario variants instead of taking down the sweep.
func BumpMesh(lab *device.Lab, meshN int) (*powergrid.Mesh, error) {
	if meshN <= 0 {
		meshN = DefaultMeshN
	}
	node, err := lab.Node(35)
	if err != nil {
		return nil, err
	}
	minSpec := powergrid.DefaultSpec(node, node.BumpPitchMinM)
	return powergrid.PessimisticMesh(minSpec, meshN)
}

// RunBumpsNIn is RunBumpsN against an explicit laboratory.
func RunBumpsNIn(lab *device.Lab, meshN int) (*BumpsResult, error) {
	if meshN <= 0 {
		meshN = DefaultMeshN
	}
	node := lab.MustNode(35)
	minSpec := powergrid.DefaultSpec(node, node.BumpPitchMinM)
	itrsSpec := powergrid.DefaultSpec(node, node.EffectiveBumpPitchM())
	szMin, err := minSpec.SizeRails()
	if err != nil {
		return nil, err
	}
	szITRS, feasible, err := itrsSpec.FeasibleRails()
	if err != nil {
		return nil, err
	}
	ladder, err := powergrid.ValidateAnalytic(minSpec, 256)
	if err != nil {
		return nil, err
	}
	mesh, err := powergrid.PessimisticRatio(minSpec, meshN)
	if err != nil {
		return nil, err
	}
	return &BumpsResult{
		EffectivePitchM:  node.EffectiveBumpPitchM(),
		MinPitchM:        node.BumpPitchMinM,
		ITRSWidthOverMin: szITRS.WidthOverMin,
		MinWidthOverMin:  szMin.WidthOverMin,
		ITRSFeasible:     feasible,
		Current:          powergrid.CheckBumpCurrent(node),
		LadderRatio:      ladder,
		PessimisticRatio: mesh,
	}, nil
}

// TransientsResult is the C9 experiment: sleep-mode wakeup di/dt and the
// MCML alternative.
type TransientsResult struct {
	NodeNM int
	// BlockStepA is the load-current step of re-awakening the gated block.
	BlockStepA float64
	// Wakeup is the MTCMOS block's uncontrolled inrush event.
	Wakeup mtcmos.WakeupEvent
	// NoiseMinPitch and NoiseITRS are the droops of an unstaged (instant)
	// wakeup under the two bump plans.
	NoiseMinPitch, NoiseITRS powergrid.TransientResult
	// SafeRampMinPitchS / SafeRampITRSS are the staging times each plan
	// requires to stay within 10 % of Vdd.
	SafeRampMinPitchS, SafeRampITRSS float64
	// MaxInstantStepMinA / MaxInstantStepITRSA are the largest unstaged
	// steps each plan tolerates.
	MaxInstantStepMinA, MaxInstantStepITRSA float64
	// BlockStandbySavings and BlockDelayPenalty summarize the MTCMOS block.
	BlockStandbySavings, BlockDelayPenalty float64
	// MCML compares current-mode logic against a static CMOS datapath gate.
	MCML mcml.Comparison
}

// RunTransients runs the C9 analysis at 35 nm.
func RunTransients() (*TransientsResult, error) {
	return RunTransientsIn(device.BaseLab())
}

// RunTransientsIn is RunTransients against an explicit laboratory.
func RunTransientsIn(lab *device.Lab) (*TransientsResult, error) {
	const nodeNM = 35
	node := lab.MustNode(nodeNM)
	// A sleep-gated block: 1/8 of the die's switching logic, sized so its
	// active current is 1/8 of the chip draw.
	blockCurrent := node.SupplyCurrentA() / 8
	// Total gated NMOS width ~ logic transistors × average width.
	logicWidth := node.LogicTransistorsM * 1e6 / 8 * 4 * node.LeffM
	blk, err := mtcmos.NewBlockIn(lab, nodeNM, logicWidth, 0.08, blockCurrent)
	if err != nil {
		return nil, err
	}
	wake := blk.Wakeup()

	tMin := powergrid.DefaultTransientSpec(node)
	// Minimum-pitch plan: bump count set by die area over pitch².
	tMin.PowerBumps = int(node.DieAreaM2 / (node.BumpPitchMinM * node.BumpPitchMinM))
	tITRS := powergrid.DefaultTransientSpec(node)
	// An unstaged wakeup applies the block current essentially instantly
	// (the MTCMOS recharge time constant is far below the LC period).
	noiseMin, err := tMin.Step(blockCurrent, wake.RampS)
	if err != nil {
		return nil, err
	}
	noiseITRS, err := tITRS.Step(blockCurrent, wake.RampS)
	if err != nil {
		return nil, err
	}
	safeMin, err := tMin.MinSafeRampS(blockCurrent, 0.10)
	if err != nil {
		return nil, err
	}
	safeITRS, err := tITRS.MinSafeRampS(blockCurrent, 0.10)
	if err != nil {
		return nil, err
	}

	inv, err := gate.ReferenceInverterIn(lab, nodeNM)
	if err != nil {
		return nil, err
	}
	cmp, err := mcml.Compare(inv, node.Vdd, units.CelsiusToKelvin(85), 0.5, node.LocalClockHz)
	if err != nil {
		return nil, err
	}
	return &TransientsResult{
		NodeNM:              nodeNM,
		BlockStepA:          blockCurrent,
		Wakeup:              wake,
		NoiseMinPitch:       noiseMin,
		NoiseITRS:           noiseITRS,
		SafeRampMinPitchS:   safeMin,
		SafeRampITRSS:       safeITRS,
		MaxInstantStepMinA:  tMin.MaxStepA(0.10),
		MaxInstantStepITRSA: tITRS.MaxStepA(0.10),
		BlockStandbySavings: blk.StandbySavings(),
		BlockDelayPenalty:   blk.DelayPenalty(),
		MCML:                cmp,
	}, nil
}
