package experiments

import (
	"fmt"

	"nanometer/internal/core"
	"nanometer/internal/device"
	"nanometer/internal/gate"
	"nanometer/internal/mathx"
	"nanometer/internal/powergrid"
	"nanometer/internal/report"
	"nanometer/internal/units"
)

// Figure1Case identifies one curve of Figure 1.
type Figure1Case struct {
	NodeNM int
	Vdd    float64
}

// Figure1Cases returns the paper's three curves: 70 nm @0.9 V, 50 nm @0.7 V,
// 50 nm @0.6 V.
func Figure1Cases() []Figure1Case {
	return []Figure1Case{{70, 0.9}, {50, 0.7}, {50, 0.6}}
}

// Figure1 reproduces the Pstatic/Pdynamic ratio of a fan-out-of-4 inverter
// with average wiring load at 85 °C, swept over switching activity. The
// threshold at each (node, Vdd) point is the Table 2 solution (Ion target
// met at that supply), as in the paper's §3.1 setup.
func Figure1(activities []float64) (*report.Figure, error) {
	return Figure1In(device.BaseLab(), activities)
}

// Figure1In is Figure1 against an explicit laboratory.
func Figure1In(lab *device.Lab, activities []float64) (*report.Figure, error) {
	if len(activities) == 0 {
		activities = mathx.Logspace(0.005, 0.5, 25)
	}
	T := units.CelsiusToKelvin(85)
	fig := &report.Figure{
		Title:  "Figure 1. Pstatic/Pdynamic for an FO4 inverter with average wiring load (85 °C)",
		XLabel: "switching activity factor",
		YLabel: "Pstatic / Pdynamic",
		LogX:   true, LogY: true,
	}
	for _, cs := range Figure1Cases() {
		inv, err := gate.ReferenceInverterIn(lab, cs.NodeNM)
		if err != nil {
			return nil, err
		}
		node := lab.MustNode(cs.NodeNM)
		// Threshold re-solved for the case's supply (300 K convention).
		vth, err := inv.N.SolveVthForIon(node.IonTargetAPerM, cs.Vdd, units.RoomTemperature)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure1 %dnm@%gV: %w", cs.NodeNM, cs.Vdd, err)
		}
		g := inv.WithVth(vth)
		s := &report.Series{Name: fmt.Sprintf("%dnm, Vdd=%.1fV", cs.NodeNM, cs.Vdd)}
		for _, a := range activities {
			s.Add(a, g.StaticOverDynamic(a, node.ClockHz, cs.Vdd, T))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Figure2Row is one node of the dual-Vth scaling analysis.
type Figure2Row struct {
	NodeNM int
	// IonGainPct is the drive-current increase from a 100 mV threshold
	// reduction.
	IonGainPct float64
	// IoffX100mV is the off-current multiplier of that reduction
	// (≈15× throughout, set by the subthreshold swing).
	IoffX100mV float64
	// IoffXFor20PctIon is the off-current multiplier required for a 20 %
	// drive gain (the paper: 54× "today" falling to 7× at 35 nm).
	IoffXFor20PctIon float64
	// DeltaVthFor20Pct is the corresponding threshold reduction (V).
	DeltaVthFor20Pct float64
}

// Figure2 reproduces the dual-Vth scaling figure.
func Figure2() ([]Figure2Row, error) {
	return Figure2In(device.BaseLab())
}

// Figure2In is Figure2 against an explicit laboratory.
func Figure2In(lab *device.Lab) ([]Figure2Row, error) {
	var rows []Figure2Row
	T := units.RoomTemperature
	for _, nm := range lab.NodesNM() {
		d, err := lab.ForNode(nm)
		if err != nil {
			return nil, err
		}
		node := lab.MustNode(nm)
		ionHigh := d.IonPerWidth(node.Vdd, T)
		low := d.WithVth(d.Vth0 - 0.1)
		gain := low.IonPerWidth(node.Vdd, T)/ionHigh - 1
		ioffX := low.IoffPerWidth(node.Vdd, T) / d.IoffPerWidth(node.Vdd, T)
		vth20, err := d.SolveVthForIon(1.2*ionHigh, node.Vdd, T)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure2 node %d: %w", nm, err)
		}
		ioffX20 := d.WithVth(vth20).IoffPerWidth(node.Vdd, T) / d.IoffPerWidth(node.Vdd, T)
		rows = append(rows, Figure2Row{
			NodeNM:           nm,
			IonGainPct:       gain * 100,
			IoffX100mV:       ioffX,
			IoffXFor20PctIon: ioffX20,
			DeltaVthFor20Pct: d.Vth0 - vth20,
		})
	}
	return rows, nil
}

// Figure2Figure converts the rows to plotting series.
func Figure2Figure(rows []Figure2Row) *report.Figure {
	gainS := &report.Series{Name: "Ion increase with 100 mV Vth reduction (%)"}
	penS := &report.Series{Name: "Ioff increase for +20% Ion (×, log)"}
	for _, r := range rows {
		gainS.Add(float64(r.NodeNM), r.IonGainPct)
		penS.Add(float64(r.NodeNM), r.IoffXFor20PctIon)
	}
	return &report.Figure{
		Title:  "Figure 2. Dual-Vth scaling: drive gain and leakage penalty vs node",
		XLabel: "technology node (nm)",
		YLabel: "see series",
		Series: []*report.Series{gainS, penS},
	}
}

// Figure3And4 evaluates the Vth-scaling policies at 35 nm across supplies:
// normalized delay (Figure 3) and Pdynamic/Pstatic at activity 0.1
// (Figure 4).
func Figure3And4(vdds []float64) (fig3, fig4 *report.Figure, err error) {
	return Figure3And4In(device.BaseLab(), vdds)
}

// Figure3And4In is Figure3And4 against an explicit laboratory.
func Figure3And4In(lab *device.Lab, vdds []float64) (fig3, fig4 *report.Figure, err error) {
	if len(vdds) == 0 {
		vdds = mathx.Linspace(0.2, 0.6, 17)
	}
	node := lab.MustNode(35)
	ex, err := core.NewExplorerIn(lab, 35, units.RoomTemperature, 0.1, node.ClockHz)
	if err != nil {
		return nil, nil, err
	}
	fig3 = &report.Figure{
		Title:  "Figure 3. Delay vs Vdd under Vth-scaling policies (35 nm, nominal Vdd = 0.6 V)",
		XLabel: "Vdd (V)", YLabel: "delay (normalized)",
	}
	fig4 = &report.Figure{
		Title:  "Figure 4. Pdynamic/Pstatic vs Vdd (35 nm, switching activity 0.1)",
		XLabel: "Vdd (V)", YLabel: "Pdynamic / Pstatic", LogY: true,
	}
	for _, p := range core.Policies() {
		ops, err := ex.Sweep(p, vdds)
		if err != nil {
			return nil, nil, err
		}
		s3 := &report.Series{Name: p.String()}
		s4 := &report.Series{Name: p.String()}
		for _, op := range ops {
			s3.Add(op.Vdd, op.DelayNorm)
			s4.Add(op.Vdd, op.DynOverStatic)
		}
		fig3.Series = append(fig3.Series, s3)
		fig4.Series = append(fig4.Series, s4)
	}
	return fig3, fig4, nil
}

// Figure5Row is one node of the IR-drop scaling analysis, under both bump
// plans.
type Figure5Row struct {
	NodeNM int
	// MinPitch and ITRSPitch are the two bump plans (m).
	MinPitchM, ITRSPitchM float64
	// WidthOverMin are the required rail widths normalized to minimum
	// top-metal width under each plan (Figure 5's left axis).
	MinWidthOverMin, ITRSWidthOverMin float64
	// RoutingFraction are the total top-level routing shares (right axis).
	MinRoutingFraction, ITRSRoutingFraction float64
}

// Figure5 reproduces the power-distribution scaling analysis.
func Figure5() ([]Figure5Row, error) {
	return Figure5In(device.BaseLab())
}

// Figure5In is Figure5 against an explicit laboratory.
func Figure5In(lab *device.Lab) ([]Figure5Row, error) {
	var rows []Figure5Row
	for _, nm := range lab.NodesNM() {
		node := lab.MustNode(nm)
		minSpec := powergrid.DefaultSpec(node, node.BumpPitchMinM)
		itrsSpec := powergrid.DefaultSpec(node, node.EffectiveBumpPitchM())
		szMin, err := minSpec.SizeRails()
		if err != nil {
			return nil, err
		}
		szITRS, err := itrsSpec.SizeRails()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Figure5Row{
			NodeNM:              nm,
			MinPitchM:           node.BumpPitchMinM,
			ITRSPitchM:          node.EffectiveBumpPitchM(),
			MinWidthOverMin:     szMin.WidthOverMin,
			ITRSWidthOverMin:    szITRS.WidthOverMin,
			MinRoutingFraction:  szMin.TotalRoutingFraction,
			ITRSRoutingFraction: szITRS.TotalRoutingFraction,
		})
	}
	return rows, nil
}

// Figure5Figure converts the rows to plotting series.
func Figure5Figure(rows []Figure5Row) *report.Figure {
	minW := &report.Series{Name: "min bump pitch: rail width / Wmin"}
	itrsW := &report.Series{Name: "ITRS bump count: rail width / Wmin"}
	minR := &report.Series{Name: "min pitch: % routing used"}
	for _, r := range rows {
		minW.Add(float64(r.NodeNM), r.MinWidthOverMin)
		itrsW.Add(float64(r.NodeNM), r.ITRSWidthOverMin)
		minR.Add(float64(r.NodeNM), r.MinRoutingFraction*100)
	}
	return &report.Figure{
		Title:  "Figure 5. IR-drop scaling: required rail width and routing resources",
		XLabel: "technology node (nm)",
		YLabel: "rail width / Wmin (log) ; % routing",
		LogY:   true,
		Series: []*report.Series{minW, itrsW, minR},
	}
}
