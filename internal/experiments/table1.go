// Package experiments regenerates every table, figure, and quantified
// in-text claim of the paper from the model stack. Each experiment returns
// typed rows/series (asserted on by the test suite and printed by
// cmd/nanorepro), along with the paper's reported values where it states
// them, so paper-vs-measured comparisons are mechanical.
package experiments

import (
	"fmt"

	"nanometer/internal/device"
	"nanometer/internal/itrs"
	"nanometer/internal/report"
)

// Table1Row is one line of the reproduced Table 1.
type Table1Row struct {
	Ref          string
	NodeLabel    string
	ToxAngstrom  float64
	Electrical   bool
	Vdd          float64
	IonUAPerUM   float64
	IoffNAPerUM  float64
	IsITRS       bool
	MeetsSub1V   bool
	PowerPenalty float64 // dynamic-power penalty vs the ITRS supply of the nearest node
}

// Table1 reproduces Table 1: recent published NMOS devices against ITRS
// projections, with the paper's take-away flags (no published sub-1 V device
// meets the Ion target; 70 nm-class devices at 1.2 V pay +78 % dynamic
// power vs the 0.9 V roadmap supply).
func Table1() []Table1Row {
	return Table1In(device.BaseLab())
}

// Table1In is Table1 against an explicit laboratory: published devices are
// compared to the laboratory's supplies rather than the base roadmap's.
func Table1In(lab *device.Lab) []Table1Row {
	var rows []Table1Row
	for _, d := range itrs.Table1Published() {
		label := fmt.Sprintf("%d", d.ITRSNodeNM)
		nearest := d.ITRSNodeNM
		if d.ITRSNodeNM == 0 {
			label = fmt.Sprintf("%d-%d", d.NodeRangeNM[0], d.NodeRangeNM[1])
			nearest = d.NodeRangeNM[1]
		}
		row := Table1Row{
			Ref:         d.Ref,
			NodeLabel:   label,
			ToxAngstrom: d.ToxAngstrom,
			Electrical:  d.Electrical,
			Vdd:         d.Vdd,
			IonUAPerUM:  d.IonUAPerUM,
			IoffNAPerUM: d.IoffNAPerUM,
			MeetsSub1V:  d.MeetsITRSSub1V(),
		}
		if node, err := lab.Node(nearest); err == nil && node.Vdd < d.Vdd {
			row.PowerPenalty = d.DynamicPowerPenalty(node.Vdd)
		}
		rows = append(rows, row)
	}
	for _, r := range itrs.Table1ITRS() {
		rows = append(rows, Table1Row{
			Ref:         "ITRS",
			NodeLabel:   fmt.Sprintf("%d", r.NodeNM),
			ToxAngstrom: (r.ToxAngstromLo + r.ToxAngstromHi) / 2,
			Vdd:         r.Vdd,
			IonUAPerUM:  r.IonUAPerUM,
			IoffNAPerUM: r.IoffNAPerUM,
			IsITRS:      true,
		})
	}
	return rows
}

// Table1Report renders Table 1.
func Table1Report() *report.Table {
	return Table1ReportIn(device.BaseLab())
}

// Table1ReportIn is Table1Report against an explicit laboratory.
func Table1ReportIn(lab *device.Lab) *report.Table {
	t := &report.Table{
		Title:   "Table 1. Recent NMOS device results, compared with ITRS projections",
		Headers: []string{"Ref", "node (nm)", "Tox (Å)", "Vdd (V)", "Ion (µA/µm)", "Ioff (nA/µm)", "sub-1V+Ion?", "Pdyn penalty"},
	}
	for _, r := range Table1In(lab) {
		tox := fmt.Sprintf("%.0f", r.ToxAngstrom)
		if r.Electrical {
			tox += " (elec)"
		}
		pen := "-"
		if r.PowerPenalty > 0 {
			pen = fmt.Sprintf("+%.0f%%", r.PowerPenalty*100)
		}
		meets := "no"
		if r.MeetsSub1V {
			meets = "YES"
		}
		if r.IsITRS {
			meets = "-"
		}
		t.AddRow(r.Ref, r.NodeLabel, tox,
			fmt.Sprintf("%.2f", r.Vdd),
			fmt.Sprintf("%.0f", r.IonUAPerUM),
			fmt.Sprintf("%.0f", r.IoffNAPerUM),
			meets, pen)
	}
	t.Notes = append(t.Notes,
		"paper take-away: no published sub-1 V technology reaches the 750 µA/µm ITRS drive target",
		"running the 70 nm-class devices at their reported 1.2 V instead of 0.9 V costs +78 % dynamic power")
	return t
}
