package experiments

import (
	"fmt"

	"nanometer/internal/busplan"
	"nanometer/internal/device"
	"nanometer/internal/repeater"
	"nanometer/internal/signaling"
)

// BusPlanResult is the C13 experiment: the conclusion-#2 EDA tool — a
// signaling-primitive planner over a realistic global-route mix, showing the
// power a repeater-only flow leaves on the table.
type BusPlanResult struct {
	NodeNM int
	Plan   *busplan.Plan
	// Counts tallies the primitive mix.
	Repeated, LowSwing, Differential int
}

// RunBusPlan plans a representative 50 nm global-route population: latency-
// critical hops, relaxed cross-chip buses, and high-activity datapath links.
func RunBusPlan(nodeNM int) (*BusPlanResult, error) {
	return RunBusPlanIn(device.BaseLab(), nodeNM)
}

// RunBusPlanIn is RunBusPlan against an explicit laboratory.
func RunBusPlanIn(lab *device.Lab, nodeNM int) (*BusPlanResult, error) {
	node, err := lab.Node(nodeNM)
	if err != nil {
		return nil, err
	}
	period := 1 / node.ClockHz
	// Latency-critical hop length: 1.2 clock cycles' worth of repeated-
	// signal travel at this node, under a 1.5-cycle budget — reachable by
	// repeaters, out of reach for unrepeated low-swing links.
	cf, err := repeater.EvaluateClockFeasibilityIn(lab, nodeNM)
	if err != nil {
		return nil, err
	}
	hopLen := 1.2 * cf.ScaledMMPerCycle * 1e-3
	var routes []busplan.Route
	for i := 0; i < 12; i++ {
		routes = append(routes, busplan.Route{
			Name: fmt.Sprintf("hop%02d", i), LengthM: hopLen,
			LatencyBudgetS: 1.5 * period, ToggleHz: 0.15 * node.ClockHz,
		})
	}
	for i := 0; i < 24; i++ {
		routes = append(routes, busplan.Route{
			Name: fmt.Sprintf("bus%02d", i), LengthM: 8e-3,
			LatencyBudgetS: 20 * period, ToggleHz: 0.15 * node.ClockHz,
		})
	}
	for i := 0; i < 12; i++ {
		routes = append(routes, busplan.Route{
			Name: fmt.Sprintf("dp%02d", i), LengthM: 5e-3,
			LatencyBudgetS: 8 * period, ToggleHz: 0.4 * node.ClockHz,
		})
	}
	p, err := busplan.NewPlannerIn(lab, nodeNM)
	if err != nil {
		return nil, err
	}
	plan, err := p.Assign(routes)
	if err != nil {
		return nil, err
	}
	counts := plan.SchemeCounts()
	return &BusPlanResult{
		NodeNM:       nodeNM,
		Plan:         plan,
		Repeated:     counts[signaling.FullSwingRepeated],
		LowSwing:     counts[signaling.LowSwing],
		Differential: counts[signaling.DifferentialLowSwing],
	}, nil
}
