package experiments

import "testing"

// --- C10: intra-cell multi-Vth stacks ------------------------------------------

func TestClaimStackVth(t *testing.T) {
	r, err := RunStackVth(70)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Assignments) != 4 {
		t.Fatalf("2-stack exploration must give 4 assignments")
	}
	// The §3.3 claim: substantial savings at minimal delay — a single
	// high-Vth device within a 10 % delay budget.
	if r.Best.HighCount() != 1 {
		t.Fatalf("the 10%%-budget winner should mix exactly one high device, got %d", r.Best.HighCount())
	}
	if r.Best.LeakageSaving < 0.35 {
		t.Fatalf("mixed-stack saving = %.0f%%, expected substantial", r.Best.LeakageSaving*100)
	}
	if r.Best.DelayPenalty > 0.10 {
		t.Fatalf("delay penalty %.1f%% exceeds the minimal-budget constraint", r.Best.DelayPenalty*100)
	}
	// The stack effect itself.
	if r.StackFactor >= 0.5 || r.StackFactor <= 0 {
		t.Fatalf("stack factor = %.2f, expected the classic few-× reduction", r.StackFactor)
	}
	// State dependence: parking the idle vector wins without any sleep
	// transistor ("without additional sleep transistors that sacrifice
	// area and dynamic power").
	if r.ParkedSaving < 0.3 {
		t.Fatalf("input-vector parking saves %.0f%%, expected substantial", r.ParkedSaving*100)
	}
	// All-high saves the most but at roughly double the delay cost.
	allHigh := r.Assignments[3]
	if allHigh.LeakageSaving <= r.Best.LeakageSaving {
		t.Fatalf("all-high must save the most")
	}
	if allHigh.DelayPenalty <= 1.5*r.Best.DelayPenalty {
		t.Fatalf("all-high must cost substantially more delay")
	}
}

// --- C11: standby-technique comparison ------------------------------------------

func TestClaimStandby(t *testing.T) {
	r, err := RunStandby()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.At35) != 5 || len(r.At180) != 5 {
		t.Fatalf("five techniques expected")
	}
	// The paper's scalability judgment: body bias is the casualty.
	non := r.NonScalableAt35()
	if len(non) != 1 || non[0] != "reverse body bias" {
		t.Fatalf("non-scalable set = %v, the paper singles out body bias", non)
	}
	// Its decay is monotone across the roadmap.
	for i := 1; i < len(r.BodyBiasTrend); i++ {
		if r.BodyBiasTrend[i].StandbyReduction >= r.BodyBiasTrend[i-1].StandbyReduction {
			t.Fatalf("body-bias benefit must decay monotonically")
		}
	}
	// Dual-Vth is the only technique that also reduces active leakage —
	// the paper's reason it is "the only technique used in current
	// high-end MPUs".
	activeHelpers := 0
	for _, res := range r.At35 {
		if res.ActiveReduction > 0 {
			activeHelpers++
		}
	}
	if activeHelpers != 1 {
		t.Fatalf("exactly one technique should help active mode, got %d", activeHelpers)
	}
}

// --- C12: tolerable-swing study --------------------------------------------------

func TestClaimSwingStudy(t *testing.T) {
	r, err := RunSwingStudy(50)
	if err != nil {
		t.Fatal(err)
	}
	// The study's findings: only the shielded differential environment
	// tolerates the Alpha-style 10 % swing; the minimum tolerable swing
	// there sits below 10 % with a large energy win.
	if !r.DiffShielded.Feasible || !r.DiffShielded.AlphaSwingOK {
		t.Fatalf("shielded differential must close at 10%% swing")
	}
	if r.DiffShielded.MinSwingFrac >= 0.10 {
		t.Fatalf("min tolerable swing %.3f should undercut the Alpha point", r.DiffShielded.MinSwingFrac)
	}
	if r.DiffShielded.EnergyRatioAtMin >= 0.25 {
		t.Fatalf("noise-limited swing energy ×%.2f, expected a large win", r.DiffShielded.EnergyRatioAtMin)
	}
	if r.DiffBare.AlphaSwingOK || r.SEShielded.AlphaSwingOK {
		t.Fatalf("10%% swing must fail without both differencing and shielding")
	}
	if r.SEBare.Feasible {
		t.Fatalf("unshielded single-ended must be infeasible — \"shielding may be insufficient\"")
	}
	// Ordering: each protection mechanism lowers the tolerable swing.
	if r.DiffShielded.MinSwingFrac >= r.DiffBare.MinSwingFrac {
		t.Fatalf("shielding must lower the differential tolerable swing")
	}
	if r.DiffBare.MinSwingFrac >= r.SEShielded.MinSwingFrac*2.5 {
		t.Fatalf("differential rejection should be the stronger lever")
	}
}

// --- C13: signaling-primitive planner ---------------------------------------------

func TestClaimBusPlan(t *testing.T) {
	r, err := RunBusPlan(50)
	if err != nil {
		t.Fatal(err)
	}
	// The latency-critical hops stay on repeaters; everything else adopts
	// reduced-swing primitives — the conclusion-#2 tool's whole point.
	if r.Repeated == 0 {
		t.Fatalf("latency-critical routes must keep repeaters")
	}
	if r.LowSwing+r.Differential == 0 {
		t.Fatalf("relaxed routes must adopt low-swing primitives")
	}
	if r.Plan.Saving < 0.4 {
		t.Fatalf("plan saving = %.0f%%, expected a large win over all-repeated", r.Plan.Saving*100)
	}
	for _, c := range r.Plan.Choices {
		if c.DelayS > c.Route.LatencyBudgetS {
			t.Fatalf("route %s misses its latency budget", c.Route.Name)
		}
	}
}
