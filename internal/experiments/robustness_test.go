package experiments

import (
	"testing"

	"nanometer/internal/core"
	"nanometer/internal/cvs"
	"nanometer/internal/dualvth"
	"nanometer/internal/itrs"
	"nanometer/internal/netlist"
	"nanometer/internal/power"
	"nanometer/internal/resize"
	"nanometer/internal/sta"
)

// The optimization invariants must hold for any generated circuit, at any
// supported node, not just the default experiment seed. These sweeps are the
// repository's failure-injection net for the greedy engines: every accepted
// flow must end timing-clean with less power than it started.

func robustnessSetups() []CircuitSetup {
	var out []CircuitSetup
	for _, nm := range []int{180, 100, 50} {
		for seed := int64(1); seed <= 3; seed++ {
			out = append(out, CircuitSetup{
				NodeNM: nm, Gates: 900, LowVddRatio: 0.65, PeriodGuard: 1.12, Seed: seed,
			})
		}
	}
	return out
}

func TestCombinedFlowRobustAcrossSeedsAndNodes(t *testing.T) {
	for _, s := range robustnessSetups() {
		s := s
		c, err := buildCircuit(s)
		if err != nil {
			t.Fatalf("%+v: %v", s, err)
		}
		before := power.Analyze(c.Clone(), 1/c.ClockPeriodS)
		res, err := core.RunFlow(c, core.DefaultFlowOptions())
		if err != nil {
			t.Fatalf("%+v: %v", s, err)
		}
		if !res.TimingMet {
			t.Errorf("%+v: flow violated timing", s)
		}
		if res.After.TotalW() >= before.TotalW() {
			t.Errorf("%+v: flow did not reduce power", s)
		}
		if res.TotalSaving < 0.15 {
			t.Errorf("%+v: combined saving only %.0f%%", s, res.TotalSaving*100)
		}
	}
}

func TestCVSStructureInvariantAcrossSeeds(t *testing.T) {
	for _, s := range robustnessSetups() {
		c, err := buildCircuit(s)
		if err != nil {
			t.Fatalf("%+v: %v", s, err)
		}
		if _, err := cvs.Assign(c, cvs.DefaultOptions()); err != nil {
			t.Fatalf("%+v: %v", s, err)
		}
		for i := range c.Gates {
			g := &c.Gates[i]
			if g.VddClass != 1 {
				continue
			}
			for _, fo := range g.Fanouts {
				if c.Gates[fo].VddClass != 1 {
					t.Fatalf("%+v: CVS structure rule violated at gate %d", s, i)
				}
			}
		}
		if r := sta.Analyze(c); !r.Met() {
			t.Fatalf("%+v: CVS broke timing", s)
		}
	}
}

func TestDualVthNeverSlowsPastPeriodAcrossSeeds(t *testing.T) {
	for _, s := range robustnessSetups() {
		s.PeriodGuard = 1.0 // the hardest case: zero slack on the critical path
		c, err := buildCircuit(s)
		if err != nil {
			t.Fatalf("%+v: %v", s, err)
		}
		res, err := dualvth.Assign(c, dualvth.Options{})
		if err != nil {
			t.Fatalf("%+v: %v", s, err)
		}
		if !res.TimingMet {
			t.Errorf("%+v: dual-Vth violated a zero-slack clock", s)
		}
		if res.LeakageSaving <= 0 {
			t.Errorf("%+v: no leakage saving", s)
		}
	}
}

func TestResizeFloorsAndTimingAcrossSeeds(t *testing.T) {
	for _, s := range robustnessSetups() {
		c, err := buildCircuit(s)
		if err != nil {
			t.Fatalf("%+v: %v", s, err)
		}
		opts := resize.DefaultOptions()
		res, err := resize.Downsize(c, opts)
		if err != nil {
			t.Fatalf("%+v: %v", s, err)
		}
		if !res.TimingMet {
			t.Errorf("%+v: resize violated timing", s)
		}
		for i := range c.Gates {
			if c.Gates[i].Size < opts.MinSize-1e-12 {
				t.Fatalf("%+v: gate %d below floor", s, i)
			}
		}
	}
}

func TestGeneratorInvariantsAcrossSeeds(t *testing.T) {
	tech := netlist.MustNewTech(100, 0.65)
	for seed := int64(0); seed < 12; seed++ {
		p := netlist.DefaultGenParams()
		p.Gates = 400
		p.Seed = seed
		c, err := netlist.Generate(tech, p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r := sta.Analyze(c)
		if r.MaxDelayS <= 0 {
			t.Fatalf("seed %d: no timing paths", seed)
		}
		power.PropagateActivity(c)
		for i := range c.Gates {
			g := &c.Gates[i]
			if g.Prob < 0 || g.Prob > 1 {
				t.Fatalf("seed %d: gate %d probability %g", seed, i, g.Prob)
			}
			if g.Activity < 0 || g.Activity > 0.5 {
				t.Fatalf("seed %d: gate %d activity %g", seed, i, g.Activity)
			}
		}
	}
}

func TestDTMRobustAcrossNodes(t *testing.T) {
	// The DTM pipeline (plant + sensor + throttle + cooling selection)
	// must close at every nanometer node, not just the 50 nm headline.
	for _, nm := range []int{100, 70, 50, 35} {
		r, err := DTM(nm)
		if err != nil {
			t.Fatalf("%d nm: %v", nm, err)
		}
		if r.EffectiveFraction < 0.6 || r.EffectiveFraction > 0.9 {
			t.Errorf("%d nm: effective worst case %.2f out of band", nm, r.EffectiveFraction)
		}
		if r.CostTheoretical.CostUSD < r.CostEffective.CostUSD {
			t.Errorf("%d nm: DTM cannot make cooling more expensive", nm)
		}
		node := itrs.MustNode(nm)
		if r.VirusPeakTempC > node.JunctionTempC+0.5 {
			t.Errorf("%d nm: virus breached the junction limit", nm)
		}
	}
}

func TestBusPlanRobustAcrossNodes(t *testing.T) {
	for _, nm := range []int{100, 70, 50, 35} {
		r, err := RunBusPlan(nm)
		if err != nil {
			t.Fatalf("%d nm: %v", nm, err)
		}
		if !(r.Plan.Saving > 0) {
			t.Errorf("%d nm: no saving from mixed primitives", nm)
		}
		if r.Repeated+r.LowSwing+r.Differential != len(r.Plan.Choices) {
			t.Errorf("%d nm: scheme counts inconsistent", nm)
		}
	}
}
