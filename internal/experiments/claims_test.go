package experiments

import (
	"testing"

	"nanometer/internal/itrs"
)

// --- C1: dynamic thermal management -------------------------------------------

func TestClaimDTM(t *testing.T) {
	r, err := DTM(50)
	if err != nil {
		t.Fatal(err)
	}
	// The effective worst case lands near the paper's 75 %.
	if r.EffectiveFraction < 0.65 || r.EffectiveFraction > 0.85 {
		t.Fatalf("effective worst case = %.0f%% of theoretical, paper says ≈75%%", r.EffectiveFraction*100)
	}
	// θja headroom near the paper's 33 %.
	if r.ThetaJAHeadroom < 0.2 || r.ThetaJAHeadroom > 0.5 {
		t.Fatalf("θja headroom = %.0f%%, paper says 33%%", r.ThetaJAHeadroom*100)
	}
	// Cheaper cooling, materially.
	if r.CostRatio < 1.5 {
		t.Fatalf("cooling cost ratio = %.1f, expected a substantial saving", r.CostRatio)
	}
	// The DTM-sized package survives the power virus within the junction
	// limit at graceful throughput.
	node := itrs.MustNode(50)
	if r.VirusPeakTempC > node.JunctionTempC+0.5 {
		t.Fatalf("virus peak %.1f °C exceeds the %g °C limit", r.VirusPeakTempC, node.JunctionTempC)
	}
	if r.VirusThroughput < 0.5 || r.VirusThroughput >= 1 {
		t.Fatalf("virus throughput = %.2f, expected graceful degradation", r.VirusThroughput)
	}
	// The 65→75 W cost step is ≈3×.
	if r.Intel65to75 < 2 || r.Intel65to75 > 4 {
		t.Fatalf("65→75 W cost step = %.1f×, paper says ~3×", r.Intel65to75)
	}
}

// --- C2: global signaling ------------------------------------------------------

func TestClaimSignaling(t *testing.T) {
	rows, err := Signaling()
	if err != nil {
		t.Fatal(err)
	}
	byNode := map[int]SignalingRow{}
	for _, r := range rows {
		byNode[r.NodeNM] = r
	}
	// Census anchors.
	if r := byNode[180]; r.Repeaters < 5e3 || r.Repeaters > 8e4 {
		t.Fatalf("180 nm repeaters = %d, paper says ~10⁴", r.Repeaters)
	}
	if r := byNode[50]; r.Repeaters < 3e5 || r.Repeaters > 5e6 {
		t.Fatalf("50 nm repeaters = %d, paper says ~10⁶", r.Repeaters)
	}
	if byNode[50].SignalingPowerW < 50 {
		t.Fatalf("50 nm signaling power = %.0f W, paper says >50 W", byNode[50].SignalingPowerW)
	}
	if byNode[50].ClusterDensityWPerCm2 < 100 {
		t.Fatalf("50 nm repeater-cluster density = %.0f W/cm², footnote 2 says it can exceed 100",
			byNode[50].ClusterDensityWPerCm2)
	}
	for _, r := range rows {
		// Differential low swing at 10 % cuts energy to ≈20 % and slashes
		// di/dt; it costs under 2× the routing and closes noise.
		if r.DiffEnergyRatio < 0.15 || r.DiffEnergyRatio > 0.35 {
			t.Errorf("%d nm: diff energy ratio %.2f out of band", r.NodeNM, r.DiffEnergyRatio)
		}
		if r.DiffTrackRatio >= 2 {
			t.Errorf("%d nm: track ratio %.2f must stay below 2", r.NodeNM, r.DiffTrackRatio)
		}
		if r.PeakCurrentRatio > 0.2 {
			t.Errorf("%d nm: di/dt relief too weak (%.3f)", r.NodeNM, r.PeakCurrentRatio)
		}
		if r.DiffSNR <= 1 {
			t.Errorf("%d nm: differential link must close noise (SNR %.2f)", r.NodeNM, r.DiffSNR)
		}
		if r.DiffPowerW >= r.SignalingPowerW {
			t.Errorf("%d nm: low-swing fabric must use less power", r.NodeNM)
		}
	}
	// Global crossings become multi-cycle in the nanometer regime.
	if byNode[50].CyclesPerCrossing < 2 {
		t.Fatalf("50 nm cross-chip = %.1f cycles, the paper's premise is multi-cycle", byNode[50].CyclesPerCrossing)
	}
	if byNode[180].CyclesPerCrossing >= byNode[50].CyclesPerCrossing {
		t.Fatalf("cycle count must grow with scaling")
	}
	// The [9] premise: unscaled top-level wiring keeps the die reachable in
	// a few cycles at ITRS clocks while scaled wiring collapses.
	for _, r := range rows {
		if r.UnscaledCycles > r.ScaledCycles+1e-9 {
			t.Errorf("%d nm: unscaled wiring must not be slower", r.NodeNM)
		}
	}
	if byNode[35].UnscaledCycles > 4 {
		t.Fatalf("35 nm: unscaled wiring should cross the die in a few cycles, got %.1f", byNode[35].UnscaledCycles)
	}
	if byNode[35].ScaledCycles < 3*byNode[35].UnscaledCycles {
		t.Fatalf("35 nm: scaled wiring should be far slower (%.1f vs %.1f cycles)",
			byNode[35].ScaledCycles, byNode[35].UnscaledCycles)
	}
}

// --- C3: library optimization ---------------------------------------------------

func TestClaimLibrary(t *testing.T) {
	r, err := RunLibrary(DefaultCircuitSetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Results) != 3 {
		t.Fatalf("want coarse/rich/continuous")
	}
	for _, res := range r.Results {
		if !res.TimingMet {
			t.Fatalf("%s violates timing", res.Library.Name)
		}
	}
	// On-the-fly cells vs the coarse legacy library: a large saving
	// (the [15] overdrive-waste argument).
	if r.ContinuousVsCoarse < 0.15 {
		t.Fatalf("continuous vs coarse = %.0f%%, want ≥15%%", r.ContinuousVsCoarse*100)
	}
	// And a meaningful saving even over the rich library (the [17] claim
	// band is 15-22 %; our netlists land lower but must be positive).
	if r.ContinuousVsRich <= 0.02 {
		t.Fatalf("continuous vs rich = %.1f%%, expected a positive saving", r.ContinuousVsRich*100)
	}
}

// --- C4: clustered voltage scaling ----------------------------------------------

func TestClaimCVS(t *testing.T) {
	r, err := RunCVS(DefaultCircuitSetup())
	if err != nil {
		t.Fatal(err)
	}
	// The slack-distribution premise: over half the paths below half the
	// cycle.
	if r.PathUtilization < 0.5 {
		t.Fatalf("path utilization = %.0f%%, paper premise is >50%%", r.PathUtilization*100)
	}
	c := r.Clustered
	if !c.TimingMet {
		t.Fatalf("clustered CVS violates timing")
	}
	if c.AssignedFraction < 0.6 || c.AssignedFraction > 0.95 {
		t.Fatalf("assigned fraction = %.0f%%, paper says ~75%%", c.AssignedFraction*100)
	}
	if c.DynamicSaving < 0.25 {
		t.Fatalf("dynamic saving = %.0f%%, paper says 45-50%%", c.DynamicSaving*100)
	}
	if c.LCOverheadFraction < 0.03 || c.LCOverheadFraction > 0.15 {
		t.Fatalf("LC overhead = %.1f%%, paper says 8-10%%", c.LCOverheadFraction*100)
	}
	if c.AreaOverhead < 0.05 || c.AreaOverhead > 0.35 {
		t.Fatalf("area overhead = %.0f%%, paper says ~15%%", c.AreaOverhead*100)
	}
	// Ablation: unclustered assigns at least as many gates but pays more
	// converters.
	if r.Unclustered.AssignedFraction < c.AssignedFraction {
		t.Fatalf("unclustered fraction must not be lower")
	}
	if r.Unclustered.LevelConverters <= c.LevelConverters {
		t.Fatalf("clustering must reduce converter count")
	}
}

// --- C5: dual-Vth ----------------------------------------------------------------

func TestClaimDualVth(t *testing.T) {
	r, err := RunDualVth(DefaultCircuitSetup())
	if err != nil {
		t.Fatal(err)
	}
	s := r.Sensitivity
	if !s.TimingMet {
		t.Fatalf("dual-Vth violates timing")
	}
	if s.LeakageSaving < 0.4 || s.LeakageSaving > 0.95 {
		t.Fatalf("leakage saving = %.0f%%, paper band is 40-80%%", s.LeakageSaving*100)
	}
	if s.DelayPenalty > 0.02 {
		t.Fatalf("delay penalty = %.1f%%, paper says minimal", s.DelayPenalty*100)
	}
	if r.SlackOrdered.LeakageSaving < 0.3 {
		t.Fatalf("the slack-ordered ablation should still work")
	}
}

// --- C6: resize vs multi-Vdd ------------------------------------------------------

func TestClaimResizeVsVdd(t *testing.T) {
	r, err := RunResizeVsVdd(DefaultCircuitSetup())
	if err != nil {
		t.Fatal(err)
	}
	// The §3.3 argument: re-sizing returns sublinear power.
	if r.Resize.Sublinearity >= 0.9 {
		t.Fatalf("resize sublinearity = %.2f, must be well below 1", r.Resize.Sublinearity)
	}
	// The combined flow beats both single techniques.
	if r.Combined.TotalSaving <= r.Resize.PowerSaving {
		t.Fatalf("combined (%.2f) must beat resize alone (%.2f)",
			r.Combined.TotalSaving, r.Resize.PowerSaving)
	}
	if !r.Combined.TimingMet {
		t.Fatalf("combined flow violates timing")
	}
	// The ordering warning: re-sizing first starves CVS.
	if r.AssignedAfterResize >= r.CVSOnSame.AssignedFraction {
		t.Fatalf("resize-then-CVS (%.0f%%) must reach fewer gates than CVS-first (%.0f%%)",
			r.AssignedAfterResize*100, r.CVSOnSame.AssignedFraction*100)
	}
}

// --- C7: the Vdd floor -------------------------------------------------------------

func TestClaimVddFloor(t *testing.T) {
	r, err := RunVddFloor()
	if err != nil {
		t.Fatal(err)
	}
	if r.Vdd < 0.40 || r.Vdd > 0.48 {
		t.Fatalf("Vdd floor = %.2f V, paper says ≈0.44 V", r.Vdd)
	}
	if r.Savings < 0.40 || r.Savings > 0.52 {
		t.Fatalf("dynamic saving = %.0f%%, paper says 46%%", r.Savings*100)
	}
	// The 0.2 V headline point.
	if r.At02V.DelayNorm > 1.6 {
		t.Fatalf("0.2 V delay = %.2f×, paper says <1.3×", r.At02V.DelayNorm)
	}
	if r.At02V.PdynNorm > 0.12 {
		t.Fatalf("0.2 V dynamic power = %.0f%% of nominal, paper says 11%%", r.At02V.PdynNorm*100)
	}
}

// --- C8: bump plans -----------------------------------------------------------------

func TestClaimBumps(t *testing.T) {
	r, err := RunBumps()
	if err != nil {
		t.Fatal(err)
	}
	// The 356 µm effective pitch is reproduced exactly from the pad plan.
	if r.EffectivePitchM < 340e-6 || r.EffectivePitchM > 375e-6 {
		t.Fatalf("effective pitch = %.0f µm, paper says 356 µm", r.EffectivePitchM*1e6)
	}
	if r.MinPitchM != 80e-6 {
		t.Fatalf("min pitch = %g, paper says 80 µm", r.MinPitchM)
	}
	if r.ITRSWidthOverMin < 30*r.MinWidthOverMin {
		t.Fatalf("the ITRS plan (%.0f×) must dwarf the min-pitch plan (%.0f×)",
			r.ITRSWidthOverMin, r.MinWidthOverMin)
	}
	// The bump-current incompatibility.
	if r.Current.Compatible {
		t.Fatalf("the paper's point: the 35 nm bump plan cannot carry the supply current")
	}
	if r.Current.RequiredBumps <= r.Current.VddBumps {
		t.Fatalf("more Vdd bumps must be required")
	}
	// Numerical cross-checks.
	if r.LadderRatio < 0.97 || r.LadderRatio > 1.03 {
		t.Fatalf("ladder validation = %.3f, want ≈1", r.LadderRatio)
	}
	if r.PessimisticRatio < 1.5 {
		t.Fatalf("the all-top-metal mesh bound should exceed the budget")
	}
}

// --- C9: transients and MCML ---------------------------------------------------------

func TestClaimTransients(t *testing.T) {
	r, err := RunTransients()
	if err != nil {
		t.Fatal(err)
	}
	// MTCMOS block behaviour.
	if r.BlockStandbySavings < 0.95 {
		t.Fatalf("MTCMOS standby savings = %.1f%%, expected near-elimination", r.BlockStandbySavings*100)
	}
	if r.BlockDelayPenalty > 0.05 {
		t.Fatalf("MTCMOS delay penalty = %.1f%%, expected small", r.BlockDelayPenalty*100)
	}
	// The §4 close: the minimum bump pitch provides the low-inductance
	// path; the ITRS plan droops far more on the same wakeup.
	if r.NoiseITRS.NoiseFraction <= r.NoiseMinPitch.NoiseFraction {
		t.Fatalf("the ITRS plan must droop more (%.1f%% vs %.1f%%)",
			r.NoiseITRS.NoiseFraction*100, r.NoiseMinPitch.NoiseFraction*100)
	}
	if r.NoiseMinPitch.NoiseFraction > 0.10 {
		t.Fatalf("min-pitch droop = %.1f%%, should stay within the 10%% budget", r.NoiseMinPitch.NoiseFraction*100)
	}
	if r.NoiseITRS.NoiseFraction < 0.10 {
		t.Fatalf("ITRS-plan droop = %.1f%%, should exceed the 10%% budget", r.NoiseITRS.NoiseFraction*100)
	}
	if r.MaxInstantStepMinA <= r.MaxInstantStepITRSA {
		t.Fatalf("the min-pitch plan must tolerate larger steps")
	}
	// MCML: tiny supply ripple; crossover exists.
	if r.MCML.CurrentRippleRatio > 0.1 {
		t.Fatalf("MCML di/dt ratio = %.3f, expected ≪ 1", r.MCML.CurrentRippleRatio)
	}
	if r.MCML.CrossoverActivity <= 0 {
		t.Fatalf("MCML crossover must be positive")
	}
}
