package experiments

import (
	"nanometer/internal/device"
	"nanometer/internal/repeater"
	"nanometer/internal/signaling"
	"nanometer/internal/units"
	"nanometer/internal/wire"
)

// SignalingRow is one node of the C2 experiment: the repeated-CMOS global
// signaling census and the low-swing differential alternative.
type SignalingRow struct {
	NodeNM int
	// Repeaters and SignalingPowerW come from the chip census (the paper:
	// ~10⁴ at 180 nm → ~10⁶ at 50 nm; >50 W in the nanometer regime).
	Repeaters       int
	SignalingPowerW float64
	// RepeaterAreaFraction is the silicon the repeaters occupy.
	RepeaterAreaFraction float64
	// ClusterDensityWPerCm2 is the repeater-cluster power density
	// (footnote 2: "can exceed 100 W/cm²").
	ClusterDensityWPerCm2 float64
	// CrossChipDelayS is the optimally repeated die-edge wire delay;
	// ClockPeriodS the node's global clock period; CyclesPerCrossing their
	// ratio (global wires become multi-cycle).
	CrossChipDelayS, ClockPeriodS float64
	CyclesPerCrossing             float64
	// DiffEnergyRatio is differential-low-swing energy over full-swing on
	// the same route (the Alpha-style 10 % swing); DiffPowerW the census
	// power if all repeated global wiring switched at that ratio.
	DiffEnergyRatio float64
	DiffPowerW      float64
	// DiffTrackRatio is the routing-track cost of the differential pair
	// (shield-amortized, < 2).
	DiffTrackRatio float64
	// DiffSNR / BaseSNR are the noise closures.
	DiffSNR, BaseSNR float64
	// PeakCurrentRatio is the grid di/dt relief of the low-swing driver.
	PeakCurrentRatio float64
	// ScaledCycles and UnscaledCycles are die-edge crossing times (global
	// clock cycles) on scaled vs unscaled top-level wiring — the premise
	// from [9] that unscaled wiring keeps ITRS clocks reachable.
	ScaledCycles, UnscaledCycles float64
}

// Signaling runs the C2 experiment across the roadmap.
func Signaling() ([]SignalingRow, error) {
	return SignalingIn(device.BaseLab())
}

// SignalingIn is Signaling against an explicit laboratory.
func SignalingIn(lab *device.Lab) ([]SignalingRow, error) {
	var rows []SignalingRow
	for _, nm := range lab.NodesNM() {
		node := lab.MustNode(nm)
		census, err := repeater.TakeCensusIn(lab, nm, repeater.CensusParams{})
		if err != nil {
			return nil, err
		}
		T := units.CelsiusToKelvin(85)
		drv, err := repeater.UnitDriverIn(lab, nm, T)
		if err != nil {
			return nil, err
		}
		line, err := wire.ForNodeIn(lab.Table(), nm, wire.Global)
		if err != nil {
			return nil, err
		}
		length, err := wire.CrossChipLengthIn(lab.Table(), nm)
		if err != nil {
			return nil, err
		}
		ins := repeater.Optimize(drv, line, length)
		cmp, err := signaling.Compare(line, length, node.Vdd, 0.10, signaling.DifferentialLowSwing)
		if err != nil {
			return nil, err
		}
		row := SignalingRow{
			NodeNM:                nm,
			Repeaters:             census.Repeaters,
			SignalingPowerW:       census.SignalingPowerW,
			RepeaterAreaFraction:  census.RepeaterAreaFraction,
			ClusterDensityWPerCm2: census.ClusterPowerDensityWPerM2 / 1e4,
			CrossChipDelayS:       ins.Delay,
			ClockPeriodS:          1 / node.ClockHz,
			CyclesPerCrossing:     ins.Delay * node.ClockHz,
			DiffEnergyRatio:       cmp.EnergyRatio,
			DiffTrackRatio:        cmp.TrackRatio,
			DiffSNR:               cmp.AltSNR,
			BaseSNR:               cmp.BaseSNR,
			PeakCurrentRatio:      cmp.PeakCurrentRatio,
		}
		row.DiffPowerW = census.SignalingPowerW * cmp.EnergyRatio
		cf, err := repeater.EvaluateClockFeasibilityIn(lab, nm)
		if err != nil {
			return nil, err
		}
		row.ScaledCycles = cf.ScaledCycles
		row.UnscaledCycles = cf.UnscaledCycles
		rows = append(rows, row)
	}
	return rows, nil
}

// SwingStudyResult is the C12 experiment: the paper's called-for "further
// study... to determine worst-case noise behavior and tolerable voltage
// swings", run at the 50 nm node against an SNR-2 closure target.
type SwingStudyResult struct {
	NodeNM int
	// DiffShielded, DiffBare, SEShielded, SEBare are the four environments.
	DiffShielded, DiffBare, SEShielded, SEBare signaling.SwingStudy
}

// RunSwingStudy evaluates tolerable swings on a cross-unit global route.
func RunSwingStudy(nodeNM int) (*SwingStudyResult, error) {
	return RunSwingStudyIn(device.BaseLab(), nodeNM)
}

// RunSwingStudyIn is RunSwingStudy against an explicit laboratory.
func RunSwingStudyIn(lab *device.Lab, nodeNM int) (*SwingStudyResult, error) {
	node, err := lab.Node(nodeNM)
	if err != nil {
		return nil, err
	}
	line, err := wire.ForNodeIn(lab.Table(), nodeNM, wire.Global)
	if err != nil {
		return nil, err
	}
	const length = 6e-3
	const snr = 2.0
	out := &SwingStudyResult{NodeNM: nodeNM}
	if out.DiffShielded, err = signaling.StudySwing(line, length, node.Vdd, signaling.DifferentialLowSwing, true, snr); err != nil {
		return nil, err
	}
	if out.DiffBare, err = signaling.StudySwing(line, length, node.Vdd, signaling.DifferentialLowSwing, false, snr); err != nil {
		return nil, err
	}
	if out.SEShielded, err = signaling.StudySwing(line, length, node.Vdd, signaling.LowSwing, true, snr); err != nil {
		return nil, err
	}
	if out.SEBare, err = signaling.StudySwing(line, length, node.Vdd, signaling.LowSwing, false, snr); err != nil {
		return nil, err
	}
	return out, nil
}
