// Integration tests: every reproduced table, figure, and claim must hold the
// paper's qualitative shape (orderings, approximate factors, crossover
// locations). EXPERIMENTS.md records the quantitative comparison.
package experiments

import (
	"math"
	"testing"

	"nanometer/internal/itrs"
)

// --- Table 1 -----------------------------------------------------------------

func TestTable1Shape(t *testing.T) {
	rows := Table1()
	if len(rows) != 9 {
		t.Fatalf("Table 1 has %d rows, want 6 published + 3 ITRS", len(rows))
	}
	for _, r := range rows {
		if r.IsITRS {
			continue
		}
		if r.MeetsSub1V {
			t.Errorf("%s: the paper's take-away is that no sub-1 V device meets the Ion target", r.Ref)
		}
	}
	// The two 70 nm-class devices reported at 1.2 V carry the +78 % flag.
	flagged := 0
	for _, r := range rows {
		if r.PowerPenalty > 0.7 && r.PowerPenalty < 0.85 {
			flagged++
		}
	}
	if flagged != 2 {
		t.Fatalf("expected 2 devices with the +78%% dynamic-power penalty, got %d", flagged)
	}
	if Table1Report() == nil {
		t.Fatalf("report rendering failed")
	}
}

// --- Table 2 -----------------------------------------------------------------

func TestTable2AgainstPaper(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("Table 2 has %d rows, want 6 nodes + the 0.7 V variant", len(rows))
	}
	for _, r := range rows {
		if r.PaperVth == 0 {
			t.Fatalf("%d nm @%g V: missing paper anchor", r.NodeNM, r.Vdd)
		}
		tolVth := 0.005
		tolIoff := 1.6 // ×
		if r.Vdd != itrs.MustNode(r.NodeNM).Vdd {
			// The 0.7 V row is a pure prediction (not a calibration
			// anchor); allow a wider band.
			tolVth, tolIoff = 0.04, 2.5
		}
		if math.Abs(r.VthRequired-r.PaperVth) > tolVth {
			t.Errorf("%d nm @%g V: Vth %.3f vs paper %.2f", r.NodeNM, r.Vdd, r.VthRequired, r.PaperVth)
		}
		ratio := r.IoffNAPerUM / r.PaperIoff
		if ratio > tolIoff || ratio < 1/tolIoff {
			t.Errorf("%d nm @%g V: Ioff %.0f vs paper %.0f (×%.2f)", r.NodeNM, r.Vdd, r.IoffNAPerUM, r.PaperIoff, ratio)
		}
		if r.IoffMetalGateNAPerUM >= r.IoffNAPerUM {
			t.Errorf("%d nm: metal gate must reduce Ioff", r.NodeNM)
		}
	}
	// The roadmap-wide Ioff growth: paper reports 152× (vs ITRS 23×).
	growth := rows[len(rows)-1].IoffNAPerUM / rows[0].IoffNAPerUM
	if growth < 100 || growth > 260 {
		t.Errorf("Ioff growth across the roadmap = %.0f×, paper says 152×", growth)
	}
	// Coxe normalization grows but much more slowly than physical Cox.
	last := rows[len(rows)-1]
	if last.CoxeNorm >= last.CoxPhysNorm {
		t.Errorf("electrical capacitance (%g) must lag physical (%g) — the paper's point 1",
			last.CoxeNorm, last.CoxPhysNorm)
	}
	// Model Ioff exceeds the ITRS projection at the nanometer nodes
	// ("additional static power reduction required by circuit design").
	if last.IoffNAPerUM < 2*last.ITRSIoffNAPerUM {
		t.Errorf("35 nm model Ioff %.0f should exceed the ITRS %.0f by ~3×",
			last.IoffNAPerUM, last.ITRSIoffNAPerUM)
	}
	if _, err := Table2Report(); err != nil {
		t.Fatal(err)
	}
}

// --- Figure 1 ----------------------------------------------------------------

func TestFigure1Shape(t *testing.T) {
	fig, err := Figure1(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("Figure 1 needs 3 curves")
	}
	for _, s := range fig.Series {
		// Log-log slope −1: ratio × activity is constant.
		c0 := s.Y[0] * s.X[0]
		for i := range s.X {
			if !approx(s.Y[i]*s.X[i], c0, 1e-6) {
				t.Fatalf("%s: Pstatic/Pdyn must scale as 1/activity", s.Name)
			}
		}
	}
	// Curve ordering at fixed activity: the 0.6 V 50 nm case dominates
	// everything (its Vth is 40 mV), and sits ~an order of magnitude up.
	y70 := fig.Series[0].Y[0]
	y50at07 := fig.Series[1].Y[0]
	y50at06 := fig.Series[2].Y[0]
	if !(y50at06 > y50at07 && y50at06 > y70) {
		t.Fatalf("50 nm @0.6 V must be the worst static/dynamic ratio: %g, %g, %g", y70, y50at07, y50at06)
	}
	if y50at06 < 5*y50at07 {
		t.Fatalf("dropping 0.7→0.6 V must explode the ratio (paper: ~7× Ioff)")
	}
	// The §3.1 headline: for activities of 0.01–0.1, static power can
	// approach and exceed 10 % of dynamic. Evaluate the 0.6 V curve at
	// α = 0.05 via its 1/α law.
	s06 := fig.Series[2]
	mid := s06.Y[0] * s06.X[0] / 0.05
	if mid < 0.1 {
		t.Fatalf("50 nm @0.6 V at α=0.05: Pstatic/Pdyn = %g, paper says it exceeds 10%%", mid)
	}
}

// --- Figure 2 ----------------------------------------------------------------

func TestFigure2Shape(t *testing.T) {
	rows, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("Figure 2 needs all 6 nodes")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].IonGainPct <= rows[i-1].IonGainPct {
			t.Fatalf("Ion gain per 100 mV must grow with scaling")
		}
		if rows[i].IoffXFor20PctIon >= rows[i-1].IoffXFor20PctIon {
			t.Fatalf("the Ioff penalty for +20%% Ion must shrink with scaling")
		}
	}
	// 100 mV always costs ≈15× Ioff (Eq. 4 with 85 mV/decade).
	for _, r := range rows {
		if !approx(r.IoffX100mV, math.Pow(10, 0.1/0.085), 1e-3) {
			t.Fatalf("%d nm: 100 mV Ioff multiplier = %g, want ≈15", r.NodeNM, r.IoffX100mV)
		}
	}
	// At 35 nm the penalty approaches the paper's 7×.
	last := rows[len(rows)-1]
	if last.NodeNM != 35 || last.IoffXFor20PctIon > 20 {
		t.Fatalf("35 nm penalty = %.1f×, paper says 7×", last.IoffXFor20PctIon)
	}
	if Figure2Figure(rows) == nil {
		t.Fatalf("figure conversion failed")
	}
}

// --- Figures 3 and 4 ---------------------------------------------------------

func TestFigure3And4Shape(t *testing.T) {
	fig3, fig4, err := Figure3And4(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig3.Series) != 3 || len(fig4.Series) != 3 {
		t.Fatalf("three policies expected")
	}
	// Figure 3 at the lowest supply: constant Vth ≥ conservative ≥
	// constant-Pstatic, with the paper's approximate magnitudes.
	dConst := fig3.Series[0].Y[0]
	dPs := fig3.Series[1].Y[0]
	dCons := fig3.Series[2].Y[0]
	if !(dConst > dCons && dCons > dPs) {
		t.Fatalf("delay ordering broken: %g, %g, %g", dConst, dPs, dCons)
	}
	if dConst < 2.3 || dConst > 5.5 {
		t.Fatalf("constant-Vth delay at 0.2 V = %g×, paper says 3.7×", dConst)
	}
	if dPs > 1.6 {
		t.Fatalf("constant-Pstatic delay at 0.2 V = %g×, paper says <1.3×", dPs)
	}
	// Figure 4: the constant-Pstatic ratio falls quadratically toward ~1-2
	// at 0.2 V while constant-Vth stays flat.
	rPs02 := fig4.Series[1].Y[0]
	rPs06 := fig4.Series[1].Y[len(fig4.Series[1].Y)-1]
	if rPs02 > 3 {
		t.Fatalf("constant-Pstatic Pdyn/Pstatic at 0.2 V = %g, paper shows ≈1-2", rPs02)
	}
	if !approx(rPs06/rPs02, 9, 0.15) {
		t.Fatalf("constant-Pstatic ratio must fall ~9× from 0.6 to 0.2 V, got %g", rPs06/rPs02)
	}
	rConst02 := fig4.Series[0].Y[0]
	if rConst02 < 0.5*rPs06 {
		t.Fatalf("constant-Vth ratio should stay roughly flat (DIBL cancellation), got %g vs %g", rConst02, rPs06)
	}
}

// --- Figure 5 ----------------------------------------------------------------

func TestFigure5Shape(t *testing.T) {
	rows, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("Figure 5 needs all 6 nodes")
	}
	for _, r := range rows {
		if r.ITRSWidthOverMin <= r.MinWidthOverMin {
			t.Fatalf("%d nm: the ITRS bump plan must always be worse", r.NodeNM)
		}
	}
	// Paper anchors at 35 nm.
	last := rows[len(rows)-1]
	if last.NodeNM != 35 {
		t.Fatalf("rows must end at 35 nm")
	}
	if last.MinWidthOverMin < 8 || last.MinWidthOverMin > 25 {
		t.Fatalf("35 nm min-pitch width = %.1f×, paper says 16×", last.MinWidthOverMin)
	}
	if last.ITRSWidthOverMin < 500 {
		t.Fatalf("35 nm ITRS width = %.0f×, paper says >2000× (same order)", last.ITRSWidthOverMin)
	}
	if last.MinRoutingFraction < 0.16 || last.MinRoutingFraction > 0.22 {
		t.Fatalf("35 nm routing share = %.3f, paper says 17-20%%", last.MinRoutingFraction)
	}
	// 50 nm is more restricted than 35 nm (the power-density dip).
	var r50, r35 Figure5Row
	for _, r := range rows {
		if r.NodeNM == 50 {
			r50 = r
		}
		if r.NodeNM == 35 {
			r35 = r
		}
	}
	if r50.MinWidthOverMin <= r35.MinWidthOverMin {
		t.Fatalf("50 nm (%.1f) should be more restricted than 35 nm (%.1f)",
			r50.MinWidthOverMin, r35.MinWidthOverMin)
	}
	if Figure5Figure(rows) == nil {
		t.Fatalf("figure conversion failed")
	}
}

func approx(got, want, rel float64) bool {
	return math.Abs(got-want) <= rel*math.Abs(want)
}
