package experiments

import (
	"encoding/csv"
	"strings"
	"testing"
)

// The rendering paths cmd/nanorepro relies on: tables carry the paper
// comparison columns, figures write well-formed CSV.

func TestTable1ReportRenders(t *testing.T) {
	out := Table1Report().String()
	for _, want := range []string{"[24]", "[29]", "ITRS", "Ioff (nA/µm)", "+78%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 report missing %q:\n%s", want, out)
		}
	}
}

func TestTable2ReportRenders(t *testing.T) {
	tab, err := Table2Report()
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	for _, want := range []string{"Vth req", "paper", "Ioff MG", "ITRS Ioff", "152×"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 report missing %q:\n%s", want, out)
		}
	}
	// Every node row present, including the 0.7 V variant.
	for _, want := range []string{"180", "130", "100", "70", "50", "35", "0.7"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 report missing node marker %q", want)
		}
	}
}

func TestFigureCSVWellFormed(t *testing.T) {
	fig, err := Figure1(nil)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := fig.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	// The output must parse as CSV (series names contain commas and rely
	// on quoting) in the aligned wide format: header + 25 activity points,
	// 4 columns each.
	records, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("CSV does not parse: %v", err)
	}
	if len(records) != 26 {
		t.Fatalf("Figure 1 CSV has %d records, want 26 (header + 25 points)", len(records))
	}
	for i, rec := range records {
		if len(rec) != 4 {
			t.Fatalf("record %d has %d fields, want 4", i, len(rec))
		}
	}
}

func TestFigure5FigureSeries(t *testing.T) {
	rows, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	fig := Figure5Figure(rows)
	if len(fig.Series) != 3 {
		t.Fatalf("Figure 5 wants 3 series, got %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.X) != 6 {
			t.Fatalf("series %q has %d points, want one per node", s.Name, len(s.X))
		}
	}
	// The ASCII renderer must handle the log-axis figure.
	var b strings.Builder
	fig.RenderASCII(&b, 60, 14)
	if !strings.Contains(b.String(), "Figure 5") {
		t.Fatalf("ASCII render failed:\n%s", b.String())
	}
}
