package experiments

import (
	"fmt"

	"nanometer/internal/device"
	"nanometer/internal/report"
	"nanometer/internal/units"
)

// Table2Row is one analytical-model column of Table 2 (the paper lays nodes
// out as columns; we emit one row per node).
type Table2Row struct {
	NodeNM int
	Vdd    float64
	// CoxeNorm is the electrical oxide capacitance normalized to 180 nm;
	// CoxPhysNorm the physical-oxide value.
	CoxeNorm, CoxPhysNorm float64
	// VthRequired is the threshold meeting Ion = 750 µA/µm at Vdd, 300 K.
	VthRequired float64
	// IoffNAPerUM is the resulting off current; MetalGate the variant with
	// gate depletion removed.
	IoffNAPerUM          float64
	IoffMetalGateNAPerUM float64
	// ITRSIoffNAPerUM is the roadmap projection for comparison.
	ITRSIoffNAPerUM float64
	// PaperVth and PaperIoff are the values the paper reports (for the
	// paper-vs-measured audit); zero when the paper gives none.
	PaperVth, PaperIoff, PaperIoffMG float64
}

// paperTable2 holds the published Table 2 values keyed by node and supply.
var paperTable2 = map[string][3]float64{ // {Vth, Ioff nA/µm, Ioff metal gate}
	"180@1.8": {0.30, 3, 1},
	"130@1.5": {0.29, 4, 1.4},
	"100@1.2": {0.22, 26, 8.7},
	"70@0.9":  {0.14, 210, 55},
	"50@0.6":  {0.04, 3205, 666},
	"50@0.7":  {0.12, 432, 100},
	"35@0.6":  {0.11, 456, 103},
}

// PaperTable2 exposes the published values for tests and the audit report.
func PaperTable2(nodeNM int, vdd float64) (vth, ioff, ioffMG float64, ok bool) {
	v, found := paperTable2[fmt.Sprintf("%d@%.1f", nodeNM, vdd)]
	if !found {
		return 0, 0, 0, false
	}
	return v[0], v[1], v[2], true
}

// Table2 reproduces the Ioff-scaling analysis: for every node (and the
// 50 nm node again at 0.7 V), solve the threshold that meets the 750 µA/µm
// drive target from Eqs. 2–3, then evaluate Eq. 4 leakage for the poly-gate
// (electrical-oxide) and metal-gate device variants.
func Table2() ([]Table2Row, error) {
	return Table2In(device.BaseLab())
}

// Table2In is Table2 against an explicit laboratory.
func Table2In(lab *device.Lab) ([]Table2Row, error) {
	ref, err := lab.ForNode(180)
	if err != nil {
		return nil, err
	}
	coxeRef := ref.CoxElectrical()
	coxPhysRef := ref.CoxPhysical()

	var rows []Table2Row
	addRow := func(nodeNM int, vdd float64) error {
		d, err := lab.ForNode(nodeNM)
		if err != nil {
			return err
		}
		node := lab.MustNode(nodeNM)
		T := units.RoomTemperature
		vth, err := d.SolveVthForIon(node.IonTargetAPerM, vdd, T)
		if err != nil {
			return fmt.Errorf("experiments: table2 node %d: %w", nodeNM, err)
		}
		mg := d.MetalGate()
		vthMG, err := mg.SolveVthForIon(node.IonTargetAPerM, vdd, T)
		if err != nil {
			return fmt.Errorf("experiments: table2 metal-gate node %d: %w", nodeNM, err)
		}
		row := Table2Row{
			NodeNM:               nodeNM,
			Vdd:                  vdd,
			CoxeNorm:             d.CoxElectrical() / coxeRef,
			CoxPhysNorm:          d.CoxPhysical() / coxPhysRef,
			VthRequired:          vth,
			IoffNAPerUM:          units.NAPerUMFromAmpsPerMeter(d.WithVth(vth).IoffPerWidth(vdd, T)),
			IoffMetalGateNAPerUM: units.NAPerUMFromAmpsPerMeter(mg.WithVth(vthMG).IoffPerWidth(vdd, T)),
			ITRSIoffNAPerUM:      units.NAPerUMFromAmpsPerMeter(node.IoffITRSAPerM),
		}
		if pv, pi, pmg, ok := PaperTable2(nodeNM, vdd); ok {
			row.PaperVth, row.PaperIoff, row.PaperIoffMG = pv, pi, pmg
		}
		rows = append(rows, row)
		return nil
	}
	for _, nm := range lab.NodesNM() {
		node := lab.MustNode(nm)
		if err := addRow(nm, node.Vdd); err != nil {
			return nil, err
		}
		if node.VddAlt != 0 {
			if err := addRow(nm, node.VddAlt); err != nil {
				return nil, err
			}
		}
	}
	return rows, nil
}

// Table2Report renders the reproduction with paper-vs-measured columns.
func Table2Report() (*report.Table, error) {
	return Table2ReportIn(device.BaseLab())
}

// Table2ReportIn is Table2Report against an explicit laboratory.
func Table2ReportIn(lab *device.Lab) (*report.Table, error) {
	rows, err := Table2In(lab)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title: "Table 2. Analytical model results for Ioff scaling (Ion target 750 µA/µm, 300 K)",
		Headers: []string{"node", "Vdd", "Coxe(norm)", "Cox(phys)", "Vth req", "paper",
			"Ioff nA/µm", "paper", "Ioff MG", "paper", "ITRS Ioff"},
	}
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%d", r.NodeNM),
			fmt.Sprintf("%.1f", r.Vdd),
			fmt.Sprintf("%.2f", r.CoxeNorm),
			fmt.Sprintf("%.2f", r.CoxPhysNorm),
			fmt.Sprintf("%.3f", r.VthRequired),
			paperCell(r.PaperVth, "%.2f"),
			fmt.Sprintf("%.3g", r.IoffNAPerUM),
			paperCell(r.PaperIoff, "%.3g"),
			fmt.Sprintf("%.3g", r.IoffMetalGateNAPerUM),
			paperCell(r.PaperIoffMG, "%.3g"),
			fmt.Sprintf("%.0f", r.ITRSIoffNAPerUM),
		)
	}
	first, last := rows[0], rows[len(rows)-1]
	t.Notes = append(t.Notes,
		fmt.Sprintf("model Ioff rises %.0f× across the roadmap (paper: 152×; ITRS: 23×)", last.IoffNAPerUM/first.IoffNAPerUM),
		"metal-gate analysis removes gate depletion: thinner electrical oxide → higher Vth at equal Ion → lower Ioff")
	return t, nil
}

func paperCell(v float64, format string) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf(format, v)
}
