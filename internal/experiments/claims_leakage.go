package experiments

import (
	"fmt"

	"nanometer/internal/device"
	"nanometer/internal/stackvth"
	"nanometer/internal/standby"
)

// StackVthResult is the C10 experiment: the §3.3 intra-cell multi-Vth idea
// — different thresholds inside one stacked cell buy substantial leakage
// savings at small delay cost, leveraging the state dependence of leakage
// without sleep transistors.
type StackVthResult struct {
	NodeNM int
	// Assignments holds every 2-stack mix (all-low, bottom-high, top-high,
	// all-high).
	Assignments []stackvth.Assignment
	// Best is the largest-saving assignment within a 10 % delay budget.
	Best stackvth.Assignment
	// StackFactor is the all-off/single-off leakage ratio of the all-low
	// stack (the classic stack effect).
	StackFactor float64
	// ParkedSaving is the input-vector-control win: best state vs the
	// state average.
	ParkedSaving float64
}

// RunStackVth evaluates the intra-cell assignment space for a node.
func RunStackVth(nodeNM int) (*StackVthResult, error) {
	return RunStackVthIn(device.BaseLab(), nodeNM)
}

// RunStackVthIn is RunStackVth against an explicit laboratory.
func RunStackVthIn(lab *device.Lab, nodeNM int) (*StackVthResult, error) {
	d, err := lab.ForNode(nodeNM)
	if err != nil {
		return nil, err
	}
	const load = 5e-15
	as, err := stackvth.ExploreIn(lab, nodeNM, 2, 4*d.LeffM, d.Vth0, d.Vth0+0.1, load)
	if err != nil {
		return nil, err
	}
	best, err := stackvth.BestUnderPenalty(as, 0.10)
	if err != nil {
		return nil, err
	}
	st, err := stackvth.NewStackIn(lab, nodeNM, 2, 4*d.LeffM, []float64{d.Vth0, d.Vth0})
	if err != nil {
		return nil, err
	}
	bothOff, err := st.LeakageForState([]bool{false, false})
	if err != nil {
		return nil, err
	}
	singleOff, err := st.LeakageForState([]bool{true, false})
	if err != nil {
		return nil, err
	}
	avg, err := st.AverageLeakage()
	if err != nil {
		return nil, err
	}
	_, parked, err := st.MinLeakageVector()
	if err != nil {
		return nil, err
	}
	res := &StackVthResult{NodeNM: nodeNM, Assignments: as, Best: best}
	if singleOff > 0 {
		res.StackFactor = bothOff / singleOff
	}
	if avg > 0 {
		res.ParkedSaving = 1 - parked/avg
	}
	return res, nil
}

// StandbyResult is the C11 experiment: the §3.2.1 technique comparison with
// the paper's scalability judgments.
type StandbyResult struct {
	// At35 compares all techniques at the end of the roadmap; At180 at its
	// start.
	At180, At35 []standby.Result
	// BodyBiasTrend carries the reverse-body-bias decay across nodes.
	BodyBiasTrend []standby.Result
}

// RunStandby evaluates the standby-technique comparison.
func RunStandby() (*StandbyResult, error) {
	return RunStandbyIn(device.BaseLab())
}

// RunStandbyIn is RunStandby against an explicit laboratory.
func RunStandbyIn(lab *device.Lab) (*StandbyResult, error) {
	const width = 1e-3
	at180, err := standby.CompareIn(lab, 180, width)
	if err != nil {
		return nil, err
	}
	at35, err := standby.CompareIn(lab, 35, width)
	if err != nil {
		return nil, err
	}
	trend, err := standby.ScalingTrendIn(lab, standby.ReverseBodyBias, width)
	if err != nil {
		return nil, err
	}
	return &StandbyResult{At180: at180, At35: at35, BodyBiasTrend: trend}, nil
}

// NonScalableAt35 lists the techniques the model flags as not scaling —
// the paper's list is substrate-bias-controlled Vth (and domino styles,
// which are outside this model).
func (r *StandbyResult) NonScalableAt35() []string {
	var out []string
	for _, res := range r.At35 {
		if !res.Scalable {
			out = append(out, fmt.Sprint(res.Technique))
		}
	}
	return out
}
