package experiments

import (
	"nanometer/internal/device"
	"nanometer/internal/thermal"
)

// DTMResult is the C1 experiment: dynamic thermal management lets the
// package be designed for the effective worst case instead of the
// theoretical worst case.
type DTMResult struct {
	NodeNM int
	// TheoreticalWorstW is the power-virus dissipation; EffectiveWorstW
	// the highest sustained power real workloads reach under the DTM
	// controller.
	TheoreticalWorstW, EffectiveWorstW float64
	// EffectiveFraction is their ratio (the paper's ≈75 %).
	EffectiveFraction float64
	// ThetaJAHeadroom is the allowable θja relief (the paper's ≈33 %).
	ThetaJAHeadroom float64
	// CostTheoretical and CostEffective are the cooling-solution costs for
	// the two design points; CostRatio their ratio.
	CostTheoretical, CostEffective thermal.CoolingSolution
	CostRatio                      float64
	// VirusThrottled shows the controller containing a power virus: peak
	// temperature with DTM stays at the limit while throughput degrades
	// gracefully.
	VirusPeakTempC, VirusThroughput float64
	// Intel65to75 reproduces the cited cost step: cooling-cost ratio of a
	// 75 W design over a 65 W design at the 1999 junction/ambient point.
	Intel65to75 float64
}

// DTM runs the C1 experiment for a node.
func DTM(nodeNM int) (*DTMResult, error) {
	return DTMIn(device.BaseLab(), nodeNM)
}

// DTMIn is DTM against an explicit laboratory.
func DTMIn(lab *device.Lab, nodeNM int) (*DTMResult, error) {
	node, err := lab.Node(nodeNM)
	if err != nil {
		return nil, err
	}
	res := &DTMResult{NodeNM: nodeNM, TheoreticalWorstW: node.MaxPowerW}

	// Package sized for the theoretical worst case.
	pkgTheo := thermal.Package{ThetaJA: node.ThetaJA, AmbientC: node.AmbientTempC}
	const cth = 40.0 // J/°C die+spreader
	const dt = 0.01  // 10 ms control interval
	ctrl := thermal.ClockThrottle{DutyCycle: 0.5}

	// A spread of power-hungry application traces.
	var traces [][]float64
	for seed := int64(1); seed <= 5; seed++ {
		p := thermal.DefaultWorkload(node.MaxPowerW)
		p.Seed = seed
		traces = append(traces, p.Generate(4000))
	}
	res.EffectiveWorstW = thermal.EffectiveWorstCase(pkgTheo, cth, node.JunctionTempC, ctrl, traces, dt)
	res.EffectiveFraction = res.EffectiveWorstW / res.TheoreticalWorstW
	res.ThetaJAHeadroom = thermal.ThetaJAHeadroom(res.TheoreticalWorstW, res.EffectiveWorstW)

	res.CostTheoretical, err = thermal.SelectCooling(res.TheoreticalWorstW, node.JunctionTempC, node.AmbientTempC)
	if err != nil {
		return nil, err
	}
	res.CostEffective, err = thermal.SelectCooling(res.EffectiveWorstW, node.JunctionTempC, node.AmbientTempC)
	if err != nil {
		return nil, err
	}
	if res.CostEffective.CostUSD > 0 {
		res.CostRatio = res.CostTheoretical.CostUSD / res.CostEffective.CostUSD
	}

	// Power virus through a package sized only for the effective worst
	// case: DTM must hold the junction.
	thetaEff, err := thermal.RequiredThetaJA(res.EffectiveWorstW, node.JunctionTempC, node.AmbientTempC)
	if err != nil {
		return nil, err
	}
	plant := thermal.NewPlant(thermal.Package{ThetaJA: thetaEff, AmbientC: node.AmbientTempC}, cth)
	sensor := &thermal.Sensor{TripC: node.JunctionTempC - 1, HysteresisC: 2}
	virus := thermal.PowerVirus(node.MaxPowerW, 8000)
	vr := thermal.Simulate(plant, sensor, ctrl, virus, dt)
	res.VirusPeakTempC = vr.PeakTempC
	res.VirusThroughput = vr.Throughput

	// The Intel 65→75 W observation at the 1999 design point.
	c65, err := thermal.SelectCooling(65, 100, 45)
	if err != nil {
		return nil, err
	}
	c75, err := thermal.SelectCooling(75, 100, 45)
	if err != nil {
		return nil, err
	}
	if c65.CostUSD > 0 {
		res.Intel65to75 = c75.CostUSD / c65.CostUSD
	}
	return res, nil
}
