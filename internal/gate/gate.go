// Package gate provides static-CMOS gate-level delay and power models built
// on the compact devices of internal/device. It covers the paper's reference
// inverter (Wn/L = 4, Wp/L = 8, fan-out of 4, average wiring load), NAND/NOR
// topologies with series-stack leakage, and the derived linear-delay
// parameters the netlist/STA layers consume.
package gate

import (
	"fmt"
	"math"

	"nanometer/internal/device"
)

// Defaults for the load model.
const (
	// DefaultDelayFit is the effective-switching constant mapping CV/I to
	// propagation delay (≈0.69 for an RC step response with the drive
	// modeled as its saturation current resistance).
	DefaultDelayFit = 0.69
	// DefaultOverlapFraction adds gate-overlap and fringing capacitance as
	// a fraction of the intrinsic channel capacitance.
	DefaultOverlapFraction = 0.25
	// DefaultSelfLoadFraction models drain-junction self-loading as a
	// fraction of the gate's input capacitance.
	DefaultSelfLoadFraction = 0.5
	// DefaultWireLoadFraction is the "average interconnect load" of the
	// paper's Figure 1 footnote, expressed as a fraction of the external
	// fan-out gate load (local wiring carries somewhat more capacitance
	// than the gates it connects in these generations). Fitted jointly
	// with the short-circuit fraction so the total switched energy matches
	// the Figure 4 calibration.
	DefaultWireLoadFraction = 1.08
	// DefaultStackFactor is the leakage reduction of two series off
	// transistors relative to one (the stack effect the paper's §3.3
	// intra-cell multi-Vth discussion leverages).
	DefaultStackFactor = 0.12
	// DefaultShortCircuitFraction adds crowbar current during input
	// transitions as a fraction of the capacitive switching energy
	// (≈10 % for well-sized static CMOS with matched edges).
	DefaultShortCircuitFraction = 0.10
)

// Kind enumerates supported static-CMOS topologies.
type Kind int

const (
	Inv Kind = iota
	Nand
	Nor
)

func (k Kind) String() string {
	switch k {
	case Inv:
		return "INV"
	case Nand:
		return "NAND"
	case Nor:
		return "NOR"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Gate is a static CMOS gate instance: a topology, an input count, and
// pull-down/pull-up device widths, evaluated against a device pair.
type Gate struct {
	Kind   Kind
	Inputs int
	// N and P are the NMOS and PMOS device models.
	N, P *device.Device
	// WnM and WpM are the per-transistor channel widths in meters.
	WnM, WpM float64
	// DelayFit, OverlapFraction, SelfLoadFraction override the package
	// defaults when non-zero.
	DelayFit         float64
	OverlapFraction  float64
	SelfLoadFraction float64
	// StackFactor overrides DefaultStackFactor when non-zero.
	StackFactor float64
	// ShortCircuitFraction overrides DefaultShortCircuitFraction when
	// non-zero; set negative to disable short-circuit energy.
	ShortCircuitFraction float64
}

// NewInverter builds the paper's reference inverter for a pair of devices:
// Wn = wnOverL·L, Wp = wpOverL·L with L the NMOS effective length.
func NewInverter(n, p *device.Device, wnOverL, wpOverL float64) *Gate {
	return &Gate{
		Kind: Inv, Inputs: 1, N: n, P: p,
		WnM: wnOverL * n.LeffM,
		WpM: wpOverL * n.LeffM,
	}
}

// ReferenceInverter returns the Figure 1/3/4 inverter (Wn/L = 4, Wp/L = 8)
// for a node of the base roadmap.
func ReferenceInverter(nodeNM int) (*Gate, error) {
	return ReferenceInverterIn(device.BaseLab(), nodeNM)
}

// ReferenceInverterIn is ReferenceInverter against an explicit laboratory
// (scenario roadmaps thread through here).
func ReferenceInverterIn(lab *device.Lab, nodeNM int) (*Gate, error) {
	n, err := lab.ForNode(nodeNM)
	if err != nil {
		return nil, err
	}
	p, err := lab.ForNodePMOS(nodeNM)
	if err != nil {
		return nil, err
	}
	return NewInverter(n, p, 4, 8), nil
}

// NewNand builds an n-input NAND with the given per-transistor widths.
func NewNand(n, p *device.Device, inputs int, wnM, wpM float64) *Gate {
	return &Gate{Kind: Nand, Inputs: inputs, N: n, P: p, WnM: wnM, WpM: wpM}
}

// NewNor builds an n-input NOR with the given per-transistor widths.
func NewNor(n, p *device.Device, inputs int, wnM, wpM float64) *Gate {
	return &Gate{Kind: Nor, Inputs: inputs, N: n, P: p, WnM: wnM, WpM: wpM}
}

func (g *Gate) delayFit() float64 {
	if g.DelayFit != 0 {
		return g.DelayFit
	}
	return DefaultDelayFit
}

func (g *Gate) overlap() float64 {
	if g.OverlapFraction != 0 {
		return g.OverlapFraction
	}
	return DefaultOverlapFraction
}

func (g *Gate) selfLoad() float64 {
	if g.SelfLoadFraction != 0 {
		return g.SelfLoadFraction
	}
	return DefaultSelfLoadFraction
}

func (g *Gate) stackFactor() float64 {
	if g.StackFactor != 0 {
		return g.StackFactor
	}
	return DefaultStackFactor
}

func (g *Gate) shortCircuit() float64 {
	if g.ShortCircuitFraction < 0 {
		return 0
	}
	if g.ShortCircuitFraction != 0 {
		return g.ShortCircuitFraction
	}
	return DefaultShortCircuitFraction
}

// InputCapacitance returns the capacitance presented by one input pin (F).
func (g *Gate) InputCapacitance() float64 {
	cn := g.N.CoxElectrical() * g.N.LeffM * g.WnM
	cp := g.P.CoxElectrical() * g.P.LeffM * g.WpM
	return (cn + cp) * (1 + g.overlap())
}

// SelfCapacitance returns the drain-junction self-load at the output (F).
func (g *Gate) SelfCapacitance() float64 {
	return g.InputCapacitance() * g.selfLoad()
}

// driveCurrents returns the worst-case pull-down and pull-up drive currents
// (amps) at the given supply and temperature, derated for series stacks.
func (g *Gate) driveCurrents(vdd, tKelvin float64) (in, ip float64) {
	in = g.N.IonPerWidth(vdd, tKelvin) * g.WnM
	ip = g.P.IonPerWidth(vdd, tKelvin) * g.WpM
	switch g.Kind {
	case Nand:
		// Series NMOS stack: n transistors in series divide the drive.
		in /= float64(g.Inputs)
	case Nor:
		ip /= float64(g.Inputs)
	}
	return in, ip
}

// Delay returns the propagation delay (s) driving loadF farads of external
// load at the given supply and temperature, averaged over rising and
// falling transitions.
func (g *Gate) Delay(vdd, tKelvin, loadF float64) float64 {
	in, ip := g.driveCurrents(vdd, tKelvin)
	if in <= 0 || ip <= 0 {
		return math.Inf(1)
	}
	c := g.SelfCapacitance() + loadF
	tFall := g.delayFit() * c * vdd / in
	tRise := g.delayFit() * c * vdd / ip
	return 0.5 * (tFall + tRise)
}

// FO4Load returns the external load of a fan-out-of-4 configuration plus
// the average wiring load (wireFraction of the gate load; pass a negative
// value for the default).
func (g *Gate) FO4Load(wireFraction float64) float64 {
	if wireFraction < 0 {
		wireFraction = DefaultWireLoadFraction
	}
	gateLoad := 4 * g.InputCapacitance()
	return gateLoad * (1 + wireFraction)
}

// FO4Delay returns the fan-out-of-4 delay including average wiring load.
func (g *Gate) FO4Delay(vdd, tKelvin float64) float64 {
	return g.Delay(vdd, tKelvin, g.FO4Load(-1))
}

// SwitchingEnergy returns the energy (J) drawn from the supply per output
// transition pair while driving loadF of external load: Ctot·Vdd² plus the
// short-circuit (crowbar) component of slewed input edges.
func (g *Gate) SwitchingEnergy(vdd, loadF float64) float64 {
	return (g.SelfCapacitance() + loadF) * vdd * vdd * (1 + g.shortCircuit())
}

// DynamicPower returns the average switching power (W) at activity factor
// alpha (output transitions pairs per cycle) and clock frequency fHz.
func (g *Gate) DynamicPower(alpha, fHz, vdd, loadF float64) float64 {
	return alpha * fHz * g.SwitchingEnergy(vdd, loadF)
}

// LeakagePower returns the input-state-averaged subthreshold leakage power
// (W) at the given supply and temperature. Series stacks in the off network
// are derated by the stack factor.
func (g *Gate) LeakagePower(vdd, tKelvin float64) float64 {
	ioffN := g.N.IoffPerWidth(vdd, tKelvin) * g.WnM
	ioffP := g.P.IoffPerWidth(vdd, tKelvin) * g.WpM
	n := float64(g.Inputs)
	states := math.Pow(2, n)
	var leak float64
	switch g.Kind {
	case Inv:
		leak = 0.5 * (ioffN + ioffP)
	case Nand:
		// Output high unless all inputs high. All-zero input stacks every
		// NMOS off (stack factor); single-zero inputs leak through the one
		// off NMOS; all-one input leaks through the parallel off PMOS.
		offStackAll := ioffN * g.stackFactor()
		singleOff := ioffN
		allOn := ioffP * n
		leak = (offStackAll + (states-2)*singleOff + allOn) / states
	case Nor:
		offStackAll := ioffP * g.stackFactor()
		singleOff := ioffP
		allOn := ioffN * n
		leak = (offStackAll + (states-2)*singleOff + allOn) / states
	}
	return leak * vdd
}

// StaticOverDynamic returns Pstatic/Pdynamic for the gate at activity alpha
// and clock fHz with an FO4 + average-wire load — the quantity of Figure 1.
func (g *Gate) StaticOverDynamic(alpha, fHz, vdd, tKelvin float64) float64 {
	pd := g.DynamicPower(alpha, fHz, vdd, g.FO4Load(-1))
	if pd == 0 {
		return math.Inf(1)
	}
	return g.LeakagePower(vdd, tKelvin) / pd
}

// WithVth returns a copy of the gate with both devices' thresholds moved by
// the same absolute shift (V).
func (g *Gate) WithVthShift(shift float64) *Gate {
	c := *g
	c.N = g.N.WithVth(g.N.Vth0 + shift)
	c.P = g.P.WithVth(g.P.Vth0 + shift)
	return &c
}

// WithVth returns a copy of the gate with both devices' thresholds set to
// the given magnitude.
func (g *Gate) WithVth(vth float64) *Gate {
	c := *g
	c.N = g.N.WithVth(vth)
	c.P = g.P.WithVth(vth)
	return &c
}

// Scaled returns a copy of the gate with both widths multiplied by k.
func (g *Gate) Scaled(k float64) *Gate {
	if k <= 0 {
		panic(fmt.Sprintf("gate: non-positive scale %g", k))
	}
	c := *g
	c.WnM *= k
	c.WpM *= k
	return &c
}
