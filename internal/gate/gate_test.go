package gate

import (
	"math"
	"testing"
	"testing/quick"

	"nanometer/internal/device"
	"nanometer/internal/itrs"
	"nanometer/internal/units"
)

func refInv(t *testing.T, nm int) *Gate {
	t.Helper()
	g, err := ReferenceInverter(nm)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestReferenceInverterGeometry(t *testing.T) {
	g := refInv(t, 35)
	n := device.MustForNode(35)
	if !units.ApproxEqual(g.WnM, 4*n.LeffM, 1e-12, 0) || !units.ApproxEqual(g.WpM, 8*n.LeffM, 1e-12, 0) {
		t.Fatalf("reference inverter must be Wn/L=4, Wp/L=8 (paper footnote 6)")
	}
}

func TestFO4DelayScalesAcrossNodes(t *testing.T) {
	// FO4 delay must shrink monotonically with scaling at nominal supply.
	prev := math.Inf(1)
	for _, nm := range itrs.Nodes() {
		g := refInv(t, nm)
		node := itrs.MustNode(nm)
		d := g.FO4Delay(node.Vdd, units.RoomTemperature)
		if d <= 0 || d >= prev {
			t.Fatalf("%d nm FO4 = %g, previous %g — must shrink with scaling", nm, d, prev)
		}
		prev = d
	}
	// And land in a plausible absolute range (tens of ps at 180 nm,
	// few ps at 35 nm).
	d180 := refInv(t, 180).FO4Delay(1.8, units.RoomTemperature)
	if d180 < 10e-12 || d180 > 200e-12 {
		t.Fatalf("180 nm FO4 = %g s, expected tens of ps", d180)
	}
}

func TestDelayMonotoneInSupplyAndLoad(t *testing.T) {
	g := refInv(t, 70)
	T := units.RoomTemperature
	if g.Delay(0.7, T, 1e-15) <= g.Delay(0.9, T, 1e-15) {
		t.Fatalf("delay must fall as supply rises")
	}
	if g.Delay(0.9, T, 2e-15) <= g.Delay(0.9, T, 1e-15) {
		t.Fatalf("delay must rise with load")
	}
}

func TestDelayExplodesWhenCutOff(t *testing.T) {
	g := refInv(t, 70)
	cut := g.WithVth(2)
	if cut.Delay(0.9, units.RoomTemperature, 1e-15) < 1e6*g.Delay(0.9, units.RoomTemperature, 1e-15) {
		t.Fatalf("cut-off gate must be many orders of magnitude slower")
	}
}

func TestSwitchingEnergyQuadratic(t *testing.T) {
	g := refInv(t, 50)
	f := func(seed uint8) bool {
		v := 0.2 + float64(seed)/256
		e1 := g.SwitchingEnergy(v, 1e-15)
		e2 := g.SwitchingEnergy(2*v, 1e-15)
		return units.ApproxEqual(e2, 4*e1, 1e-9, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicPowerLinearInActivityAndFrequency(t *testing.T) {
	g := refInv(t, 50)
	p1 := g.DynamicPower(0.1, 1e9, 0.6, 1e-15)
	if !units.ApproxEqual(g.DynamicPower(0.2, 1e9, 0.6, 1e-15), 2*p1, 1e-12, 0) {
		t.Fatalf("dynamic power must be linear in activity")
	}
	if !units.ApproxEqual(g.DynamicPower(0.1, 2e9, 0.6, 1e-15), 2*p1, 1e-12, 0) {
		t.Fatalf("dynamic power must be linear in frequency")
	}
}

func TestLeakageStackEffect(t *testing.T) {
	n := device.MustForNode(50)
	p := device.MustForNodePMOS(50)
	T := units.CelsiusToKelvin(85)
	inv := NewInverter(n, p, 4, 8)
	nand := NewNand(n, p, 2, inv.WnM, inv.WpM)
	// The all-inputs-low NAND state leaks through a stack; the average
	// leakage per unit width must be below a same-width inverter's.
	invLeak := inv.LeakagePower(0.6, T) / (inv.WnM + inv.WpM)
	nandLeak := nand.LeakagePower(0.6, T) / (nand.WnM + nand.WpM)
	if nandLeak <= 0 || invLeak <= 0 {
		t.Fatalf("leakage must be positive")
	}
	if nandLeak > invLeak*2.5 {
		t.Fatalf("NAND leakage per width %g looks unphysical vs inverter %g", nandLeak, invLeak)
	}
}

func TestLeakageRisesWithTemperature(t *testing.T) {
	g := refInv(t, 50)
	if g.LeakagePower(0.6, units.CelsiusToKelvin(85)) <= g.LeakagePower(0.6, units.RoomTemperature) {
		t.Fatalf("leakage must rise with temperature")
	}
}

func TestStaticOverDynamicInverseInActivity(t *testing.T) {
	g := refInv(t, 50)
	node := itrs.MustNode(50)
	T := units.CelsiusToKelvin(85)
	r1 := g.StaticOverDynamic(0.1, node.ClockHz, 0.6, T)
	r2 := g.StaticOverDynamic(0.2, node.ClockHz, 0.6, T)
	if !units.ApproxEqual(r1, 2*r2, 1e-9, 0) {
		t.Fatalf("Pstatic/Pdyn must scale as 1/activity: %g vs %g", r1, r2)
	}
}

func TestWithVthShiftLowersLeakageRaisesDelay(t *testing.T) {
	g := refInv(t, 70)
	T := units.RoomTemperature
	hi := g.WithVthShift(+0.1)
	if hi.LeakagePower(0.9, T) >= g.LeakagePower(0.9, T) {
		t.Fatalf("raising Vth must cut leakage")
	}
	if hi.FO4Delay(0.9, T) <= g.FO4Delay(0.9, T) {
		t.Fatalf("raising Vth must slow the gate")
	}
	// ≈15× leakage ratio for 100 mV (Eq. 4 with S = 85 mV).
	ratio := g.LeakagePower(0.9, T) / hi.LeakagePower(0.9, T)
	want := math.Pow(10, 0.1/0.085)
	if !units.ApproxEqual(ratio, want, 1e-6, 0) {
		t.Fatalf("100 mV leakage ratio = %g, want %g", ratio, want)
	}
}

func TestScaledGate(t *testing.T) {
	g := refInv(t, 70)
	big := g.Scaled(2)
	if !units.ApproxEqual(big.InputCapacitance(), 2*g.InputCapacitance(), 1e-12, 0) {
		t.Fatalf("input capacitance must scale linearly with size")
	}
	T := units.RoomTemperature
	// Delay at a fixed external load improves with size...
	if big.Delay(0.9, T, 10e-15) >= g.Delay(0.9, T, 10e-15) {
		t.Fatalf("upsizing must speed up a fixed load")
	}
	// ...but self-loaded delay (zero external load) is size-invariant.
	if !units.ApproxEqual(big.Delay(0.9, T, 0), g.Delay(0.9, T, 0), 1e-9, 0) {
		t.Fatalf("self-loaded delay must be size-invariant")
	}
}

func TestScaledPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("non-positive scale must panic")
		}
	}()
	refInv(t, 70).Scaled(0)
}

func TestNandNorDriveDerating(t *testing.T) {
	n := device.MustForNode(70)
	p := device.MustForNodePMOS(70)
	T := units.RoomTemperature
	w := 4 * n.LeffM
	inv := NewInverter(n, p, 4, 8)
	nand := NewNand(n, p, 2, w, 2*w)
	nor := NewNor(n, p, 2, w, 2*w)
	load := 5e-15
	if nand.Delay(0.9, T, load) <= inv.Delay(0.9, T, load) {
		t.Fatalf("NAND with a series stack must be slower than the inverter")
	}
	if nor.Delay(0.9, T, load) <= inv.Delay(0.9, T, load) {
		t.Fatalf("NOR with a series stack must be slower than the inverter")
	}
}

func TestFO4LoadComposition(t *testing.T) {
	g := refInv(t, 50)
	bare := g.FO4Load(0)
	wired := g.FO4Load(-1) // default wire fraction
	if !units.ApproxEqual(bare, 4*g.InputCapacitance(), 1e-12, 0) {
		t.Fatalf("FO4 load without wire must be 4 pins")
	}
	if wired <= bare {
		t.Fatalf("the average wiring load must add capacitance")
	}
}

func TestKindString(t *testing.T) {
	if Inv.String() != "INV" || Nand.String() != "NAND" || Nor.String() != "NOR" {
		t.Fatalf("kind strings broken")
	}
}

func TestShortCircuitFraction(t *testing.T) {
	g := refInv(t, 70)
	withSC := g.SwitchingEnergy(0.9, 1e-15)
	off := *g
	off.ShortCircuitFraction = -1
	without := off.SwitchingEnergy(0.9, 1e-15)
	if !units.ApproxEqual(withSC, without*1.10, 1e-9, 0) {
		t.Fatalf("default short-circuit adder must be 10%%: %g vs %g", withSC, without)
	}
	custom := *g
	custom.ShortCircuitFraction = 0.25
	if !units.ApproxEqual(custom.SwitchingEnergy(0.9, 1e-15), without*1.25, 1e-9, 0) {
		t.Fatalf("custom short-circuit fraction not honored")
	}
}
