package mtcmos

import (
	"math"
	"testing"

	"nanometer/internal/units"
)

func block(t *testing.T, sleepFrac float64) *Block {
	t.Helper()
	b, err := NewBlock(35, 1e-3, sleepFrac, 0.05) // 1 mm of logic width, 50 mA active
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBlockErrors(t *testing.T) {
	if _, err := NewBlock(35, 1e-3, 0, 1); err == nil {
		t.Fatalf("zero sleep fraction must error")
	}
	if _, err := NewBlock(35, 1e-3, 1.5, 1); err == nil {
		t.Fatalf("sleep fraction above 1 must error")
	}
	if _, err := NewBlock(65, 1e-3, 0.1, 1); err == nil {
		t.Fatalf("unknown node must error")
	}
}

func TestStandbySavings(t *testing.T) {
	b := block(t, 0.08)
	if b.StandbyLeakageW() >= b.ActiveLeakageW() {
		t.Fatalf("gating must cut leakage: %g vs %g", b.StandbyLeakageW(), b.ActiveLeakageW())
	}
	// MTCMOS "virtually eliminates" standby leakage: expect >95 %.
	if s := b.StandbySavings(); s < 0.95 {
		t.Fatalf("standby savings = %g, want >95%%", s)
	}
}

func TestDelayPenaltyVsFooterSize(t *testing.T) {
	small := block(t, 0.02)
	big := block(t, 0.20)
	if small.DelayPenalty() <= big.DelayPenalty() {
		t.Fatalf("a larger footer must cost less delay: %g vs %g",
			small.DelayPenalty(), big.DelayPenalty())
	}
	if big.DelayPenalty() <= 0 {
		t.Fatalf("the series footer always costs some delay")
	}
}

func TestDelayPenaltyInfiniteWhenHopeless(t *testing.T) {
	b := block(t, 0.001) // absurdly undersized footer
	if !math.IsInf(b.DelayPenalty(), 1) {
		t.Fatalf("a hopelessly undersized footer must flag infinite penalty, got %g", b.DelayPenalty())
	}
}

func TestSizeFooterForRoundTrip(t *testing.T) {
	b := block(t, 0.08)
	frac, err := b.SizeFooterFor(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if frac <= 0 {
		t.Fatalf("sizing returned %g", frac)
	}
	resized, err := NewBlock(35, b.LogicWidthM, frac, b.ActiveCurrentA)
	if err != nil {
		t.Fatal(err)
	}
	if got := resized.DelayPenalty(); !units.ApproxEqual(got, 0.05, 0.05, 0.002) {
		t.Fatalf("sized footer gives %.4f delay penalty, want ≈0.05", got)
	}
	if _, err := b.SizeFooterFor(0); err == nil {
		t.Fatalf("zero target must error")
	}
}

func TestWakeupEvent(t *testing.T) {
	b := block(t, 0.08)
	w := b.Wakeup()
	if w.PeakCurrentA <= 0 || w.RampS <= 0 {
		t.Fatalf("invalid wakeup event %+v", w)
	}
	if !units.ApproxEqual(w.ChargeC, b.VirtualRailCapF*b.Vdd, 1e-9, 0) {
		t.Fatalf("recharge charge must be C·Vdd")
	}
	// A bigger footer wakes faster but with a higher peak.
	bigger := block(t, 0.20)
	w2 := bigger.Wakeup()
	if w2.PeakCurrentA <= w.PeakCurrentA {
		t.Fatalf("bigger footer must surge harder")
	}
	if w2.RampS >= w.RampS {
		t.Fatalf("bigger footer must recharge faster")
	}
}

func TestAreaOverhead(t *testing.T) {
	b := block(t, 0.08)
	if !units.ApproxEqual(b.AreaOverhead(), 0.08, 1e-9, 0) {
		t.Fatalf("area overhead = %g, want the sleep fraction", b.AreaOverhead())
	}
}

func TestSleepDeviceIsHighVth(t *testing.T) {
	b := block(t, 0.08)
	if b.HighVth.Vth0 <= b.LowVth.Vth0 {
		t.Fatalf("the sleep transistor must sit at a higher threshold")
	}
}
