package mtcmos_test

import (
	"fmt"

	"nanometer/internal/mtcmos"
)

// Size an MTCMOS footer for a 5 % active-mode delay budget and check what
// standby gating buys.
func ExampleBlock_SizeFooterFor() {
	blk, err := mtcmos.NewBlock(35, 1e-3, 0.08, 0.05)
	if err != nil {
		panic(err)
	}
	frac, err := blk.SizeFooterFor(0.05)
	if err != nil {
		panic(err)
	}
	resized, err := mtcmos.NewBlock(35, blk.LogicWidthM, frac, blk.ActiveCurrentA)
	if err != nil {
		panic(err)
	}
	fmt.Printf("footer under 10%% of logic width: %v; standby leakage nearly eliminated: %v\n",
		frac < 0.10, resized.StandbySavings() > 0.95)
	// Output:
	// footer under 10% of logic width: true; standby leakage nearly eliminated: true
}
