// Package mtcmos models Multi-Threshold CMOS sleep-transistor power gating
// (§3.2.1): a high-Vth footer switch in series with fast low-Vth logic that
// virtually eliminates standby leakage, at the cost of area, an active-mode
// delay penalty, and — the §4 concern — a large wakeup current transient
// when the virtual rail recharges.
package mtcmos

import (
	"fmt"
	"math"

	"nanometer/internal/device"
	"nanometer/internal/units"
)

// Block is a power-gated logic block.
type Block struct {
	// LowVth is the logic device; HighVth the sleep transistor device.
	LowVth, HighVth *device.Device
	// LogicWidthM is the total switching NMOS width of the gated logic;
	// SleepWidthM the footer width.
	LogicWidthM, SleepWidthM float64
	// Vdd and TemperatureK set the operating point.
	Vdd, TemperatureK float64
	// ActiveCurrentA is the block's peak switching (virtual-rail) current.
	ActiveCurrentA float64
	// VirtualRailCapF is the capacitance of the virtual-ground network that
	// discharges in sleep and recharges at wakeup.
	VirtualRailCapF float64
}

// NewBlock builds a power-gated block for a node. sleepFraction sizes the
// footer as a fraction of the logic width (typical 5–15 %).
func NewBlock(nodeNM int, logicWidthM, sleepFraction, activeCurrentA float64) (*Block, error) {
	return NewBlockIn(device.BaseLab(), nodeNM, logicWidthM, sleepFraction, activeCurrentA)
}

// NewBlockIn is NewBlock against an explicit laboratory.
func NewBlockIn(lab *device.Lab, nodeNM int, logicWidthM, sleepFraction, activeCurrentA float64) (*Block, error) {
	if sleepFraction <= 0 || sleepFraction > 1 {
		return nil, fmt.Errorf("mtcmos: sleep fraction %g outside (0,1]", sleepFraction)
	}
	low, err := lab.ForNode(nodeNM)
	if err != nil {
		return nil, err
	}
	high := low.WithVth(low.Vth0 + 0.15) // sleep devices sit well above the logic Vth
	return &Block{
		LowVth:         low,
		HighVth:        high,
		LogicWidthM:    logicWidthM,
		SleepWidthM:    logicWidthM * sleepFraction,
		Vdd:            low.VddRef,
		TemperatureK:   units.CelsiusToKelvin(85),
		ActiveCurrentA: activeCurrentA,
		// ~1 fF of virtual-rail capacitance per µm of logic width.
		VirtualRailCapF: logicWidthM * 1e-15 / 1e-6,
	}, nil
}

// ActiveLeakageW is the (ungated) leakage of the logic in active mode — the
// sleep transistor is on and does not help.
func (b *Block) ActiveLeakageW() float64 {
	return b.LowVth.IoffPerWidth(b.Vdd, b.TemperatureK) * b.LogicWidthM * b.Vdd
}

// StandbyLeakageW is the gated leakage: the series high-Vth footer limits
// the path, so standby leakage is the sleep device's off current.
func (b *Block) StandbyLeakageW() float64 {
	return b.HighVth.IoffPerWidth(b.Vdd, b.TemperatureK) * b.SleepWidthM * b.Vdd
}

// StandbySavings is 1 − standby/active leakage.
func (b *Block) StandbySavings() float64 {
	a := b.ActiveLeakageW()
	if a == 0 {
		return 0
	}
	return 1 - b.StandbyLeakageW()/a
}

// DelayPenalty returns the relative active-mode slowdown from the footer's
// series resistance: the virtual-ground bounce ΔV = I·Ron reduces the
// effective supply, and delay ∝ Vdd/(Vdd − ΔV) to first order.
func (b *Block) DelayPenalty() float64 {
	ron := b.SleepOnResistance()
	dv := b.ActiveCurrentA * ron
	if dv >= 0.25*b.Vdd {
		return math.Inf(1) // footer hopelessly undersized
	}
	return b.Vdd/(b.Vdd-dv) - 1
}

// SleepOnResistance is the footer's deep-linear-region on-resistance. At the
// millivolt-scale Vds of an active-mode virtual rail, velocity saturation is
// irrelevant and the triode conductance applies:
//
//	R = Leff / (W · µeff · Coxe · (Vgs − Vth))
func (b *Block) SleepOnResistance() float64 {
	d := b.HighVth
	vov := b.Vdd - d.VthAt(0.05, b.TemperatureK) // Vds ≈ tens of mV in triode
	if vov <= 0 || b.SleepWidthM <= 0 {
		return math.Inf(1)
	}
	return d.LeffM / (b.SleepWidthM * d.MobilityM2PerVs * d.CoxElectrical() * vov)
}

// SizeFooterFor returns the sleep fraction needed to keep the delay penalty
// at or below target (e.g. 0.05 for 5 %).
func (b *Block) SizeFooterFor(target float64) (float64, error) {
	if target <= 0 {
		return 0, fmt.Errorf("mtcmos: non-positive delay target %g", target)
	}
	// ΔV_allowed = Vdd·(1 − 1/(1+target)); invert the triode resistance.
	dv := b.Vdd * (1 - 1/(1+target))
	d := b.HighVth
	vov := b.Vdd - d.VthAt(0.05, b.TemperatureK)
	if vov <= 0 {
		return 0, fmt.Errorf("mtcmos: sleep device does not turn on at Vdd=%g", b.Vdd)
	}
	ronNeeded := dv / b.ActiveCurrentA
	widthNeeded := d.LeffM / (ronNeeded * d.MobilityM2PerVs * d.CoxElectrical() * vov)
	return widthNeeded / b.LogicWidthM, nil
}

// WakeupEvent describes the current transient of re-awakening the block.
type WakeupEvent struct {
	// PeakCurrentA is the inrush peak; RampS the effective ramp time;
	// ChargeC the total recharge charge.
	PeakCurrentA, RampS, ChargeC float64
}

// Wakeup returns the inrush transient: the virtual rail (discharged to
// ~Vdd in sleep) recharges through the footer.
func (b *Block) Wakeup() WakeupEvent {
	ron := b.SleepOnResistance()
	peak := b.Vdd / ron
	tau := ron * b.VirtualRailCapF
	return WakeupEvent{
		PeakCurrentA: peak,
		RampS:        2 * tau,
		ChargeC:      b.VirtualRailCapF * b.Vdd,
	}
}

// AreaOverhead is the relative device-area cost of the footer.
func (b *Block) AreaOverhead() float64 { return b.SleepWidthM / b.LogicWidthM }
