package stackvth_test

import (
	"fmt"

	"nanometer/internal/device"
	"nanometer/internal/stackvth"
)

// The §3.3 intra-cell idea: mixing one high-Vth transistor into a 2-high
// stack buys a large leakage cut for a small delay cost.
func ExampleExplore() {
	d := device.MustForNode(70)
	as, err := stackvth.Explore(70, 2, 4*d.LeffM, d.Vth0, d.Vth0+0.1, 5e-15)
	if err != nil {
		panic(err)
	}
	best, err := stackvth.BestUnderPenalty(as, 0.10)
	if err != nil {
		panic(err)
	}
	fmt.Printf("high-Vth devices: %d; substantial saving: %v; penalty under 10%%: %v\n",
		best.HighCount(), best.LeakageSaving > 0.4, best.DelayPenalty <= 0.10)
	// Output:
	// high-Vth devices: 1; substantial saving: true; penalty under 10%: true
}

// Input-vector control: park an idle stack in its all-off state and the
// stack effect does the work of a sleep transistor.
func ExampleStack_MinLeakageVector() {
	d := device.MustForNode(70)
	st, err := stackvth.NewStack(70, 2, 4*d.LeffM, []float64{d.Vth0, d.Vth0})
	if err != nil {
		panic(err)
	}
	vec, best, err := st.MinLeakageVector()
	if err != nil {
		panic(err)
	}
	avg, err := st.AverageLeakage()
	if err != nil {
		panic(err)
	}
	fmt.Printf("park at %v; beats the average state: %v\n", vec, best < avg/2)
	// Output:
	// park at [false false]; beats the average state: true
}
