// Package stackvth implements the paper's §3.3 closing idea: flexible gate
// layouts that assign *different thresholds to the transistors inside one
// cell*. In a series stack, the device nearest the output dominates the
// delay (it sees the full swing early) while any single high-Vth device in
// the stack throttles the subthreshold path; combined with the stack
// effect's state dependence, mixed-Vth stacks buy "fairly substantial
// leakage savings with minimal delay penalties" without the sleep
// transistors of MTCMOS.
//
// The model is a transistor-level series stack: leakage is evaluated per
// input state by solving the intermediate-node voltages that equalize the
// subthreshold currents through the off devices (self-reverse-bias — the
// physical origin of the stack effect), and delay is the sum of the stack's
// effective resistances.
package stackvth

import (
	"fmt"
	"math"

	"nanometer/internal/device"
	"nanometer/internal/mathx"
	"nanometer/internal/units"
)

// Stack is a series NMOS pull-down stack (the NAND bottom network), bottom
// (source-grounded) transistor first.
type Stack struct {
	// Devices are the stacked transistors, each with its own threshold.
	Devices []*device.Device
	// WidthM is the common transistor width.
	WidthM float64
	// Vdd and TemperatureK set the operating point.
	Vdd, TemperatureK float64
}

// NewStack builds an n-high stack for a node with the given per-position
// thresholds (bottom first).
func NewStack(nodeNM int, n int, widthM float64, vths []float64) (*Stack, error) {
	return NewStackIn(device.BaseLab(), nodeNM, n, widthM, vths)
}

// NewStackIn is NewStack against an explicit laboratory.
func NewStackIn(lab *device.Lab, nodeNM int, n int, widthM float64, vths []float64) (*Stack, error) {
	if n < 1 {
		return nil, fmt.Errorf("stackvth: need at least one device, got %d", n)
	}
	if len(vths) != n {
		return nil, fmt.Errorf("stackvth: %d thresholds for %d devices", len(vths), n)
	}
	base, err := lab.ForNode(nodeNM)
	if err != nil {
		return nil, err
	}
	node := base.VddRef
	s := &Stack{
		WidthM:       widthM,
		Vdd:          node,
		TemperatureK: units.CelsiusToKelvin(85),
	}
	for _, vth := range vths {
		s.Devices = append(s.Devices, base.WithVth(vth))
	}
	return s, nil
}

// subthresholdCurrent returns the channel current (A) of device d at the
// given gate, source, and drain potentials, using the Eq.-4 subthreshold
// model extended with source back-bias and a (1 − exp(−Vds/φt)) drain-
// saturation factor, which is what makes two stacked off devices leak far
// less than one.
func (s *Stack) subthresholdCurrent(d *device.Device, vg, vs, vd float64) float64 {
	phiT := units.ThermalVoltage(s.TemperatureK)
	sw := d.SubthresholdSwing(s.TemperatureK)
	vth := d.VthAt(vd-vs, s.TemperatureK)
	// Source potential raises the effective threshold (body + source
	// degeneration folded into the exponential).
	x := (vg - vs - vth) / sw
	i := d.IoffPrefactorAPerM * s.WidthM * math.Pow(10, x)
	vds := vd - vs
	if vds < 0 {
		vds = 0
	}
	return i * (1 - math.Exp(-vds/phiT))
}

// LeakageForState returns the pull-down leakage (A) for an input vector
// (true = gate high/on), solving the internal node voltages. Bits are
// bottom-first. A fully-on stack returns zero (the pull-up network leaks in
// that state, which the caller accounts separately).
func (s *Stack) LeakageForState(inputs []bool) (float64, error) {
	n := len(s.Devices)
	if len(inputs) != n {
		return 0, fmt.Errorf("stackvth: %d inputs for %d devices", len(inputs), n)
	}
	allOn := true
	for _, on := range inputs {
		if !on {
			allOn = false
			break
		}
	}
	if allOn {
		return 0, nil
	}
	// Current through the stack as a function of the bottom node current:
	// solve for the current I such that propagating node voltages bottom-up
	// lands the top node exactly at Vdd. Monotonic in I → bisection.
	top := s.Vdd
	f := func(logI float64) float64 {
		i := math.Exp(logI)
		v := 0.0 // source of the bottom device
		for k := 0; k < n; k++ {
			d := s.Devices[k]
			vg := 0.0
			if inputs[k] {
				vg = s.Vdd
			}
			// Find the drain voltage putting current i through device k
			// with source v.
			vd, ok := s.solveDrain(d, vg, v, i)
			if !ok {
				return 1 // current too high to sustain: top node would exceed Vdd
			}
			v = vd
		}
		return v - top
	}
	// Bracket on log-current: far below any single device's leakage up to
	// the maximum single-device off current.
	maxI := s.subthresholdCurrent(s.Devices[0], s.Vdd, 0, s.Vdd) * 10
	if maxI <= 0 {
		return 0, nil
	}
	lo, hi := math.Log(maxI)-60, math.Log(maxI)
	if f(lo) > 0 {
		return 0, nil // effectively zero leakage
	}
	if f(hi) < 0 {
		return maxI / 10, nil
	}
	logI, err := mathx.Bisect(f, lo, hi, 1e-9)
	if err != nil {
		return 0, fmt.Errorf("stackvth: leakage solve: %w", err)
	}
	return math.Exp(logI), nil
}

// solveDrain finds vd ≥ vs such that the device carries current i, or
// ok=false when even vd = Vdd cannot carry it.
func (s *Stack) solveDrain(d *device.Device, vg, vs, i float64) (float64, bool) {
	f := func(vd float64) float64 {
		return s.subthresholdCurrent(d, vg, vs, vd) - i
	}
	if f(s.Vdd) < 0 {
		return 0, false
	}
	if f(vs+1e-9) > 0 {
		return vs + 1e-9, true
	}
	vd, err := mathx.Bisect(f, vs+1e-9, s.Vdd, 1e-12)
	if err != nil {
		return 0, false
	}
	return vd, true
}

// AverageLeakage returns the state-averaged leakage (A) over all input
// vectors with equal weights.
func (s *Stack) AverageLeakage() (float64, error) {
	n := len(s.Devices)
	states := 1 << n
	total := 0.0
	for st := 0; st < states; st++ {
		inputs := make([]bool, n)
		for k := 0; k < n; k++ {
			inputs[k] = st&(1<<k) != 0
		}
		l, err := s.LeakageForState(inputs)
		if err != nil {
			return 0, err
		}
		total += l
	}
	return total / float64(states), nil
}

// MinLeakageVector returns the input vector minimizing stack leakage and
// its value — the "state dependence of leakage" that input-vector control
// ([38]) parks idle logic in. The all-on state is excluded: there the
// pull-down conducts and the complementary pull-up network (not modeled
// here) carries the leakage instead.
func (s *Stack) MinLeakageVector() ([]bool, float64, error) {
	n := len(s.Devices)
	states := 1 << n
	best := math.Inf(1)
	var bestVec []bool
	for st := 0; st < states-1; st++ { // states-1 skips all-on
		inputs := make([]bool, n)
		for k := 0; k < n; k++ {
			inputs[k] = st&(1<<k) != 0
		}
		l, err := s.LeakageForState(inputs)
		if err != nil {
			return nil, 0, err
		}
		if l < best {
			best = l
			bestVec = inputs
		}
	}
	return bestVec, best, nil
}

// Delay returns the stack's pull-down delay metric (s) discharging loadF:
// the sum of per-device effective switching resistances times the load.
// Devices switch with full gate drive, so only the threshold (via drive
// current) matters.
func (s *Stack) Delay(loadF float64) float64 {
	rTotal := 0.0
	for _, d := range s.Devices {
		ion := d.IonPerWidth(s.Vdd, s.TemperatureK) * s.WidthM
		if ion <= 0 {
			return math.Inf(1)
		}
		rTotal += 0.69 * s.Vdd / ion
	}
	return rTotal * loadF
}
