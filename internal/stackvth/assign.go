package stackvth

import (
	"fmt"
	"math"

	"nanometer/internal/device"
)

// Assignment is one intra-cell Vth configuration of a stack.
type Assignment struct {
	// Vths are the per-position thresholds, bottom first.
	Vths []float64
	// LeakageA is the state-averaged stack leakage.
	LeakageA float64
	// DelayS is the pull-down delay into the evaluation load.
	DelayS float64
	// LeakageSaving and DelayPenalty are relative to the all-low-Vth
	// reference.
	LeakageSaving, DelayPenalty float64
}

// Explore evaluates every 2^n mixed assignment of {vthLow, vthHigh} for an
// n-high stack at the node, sorted as generated (bit k of the index = high
// Vth at position k, bottom first). The first entry is the all-low
// reference.
func Explore(nodeNM, n int, widthM, vthLow, vthHigh, loadF float64) ([]Assignment, error) {
	return ExploreIn(device.BaseLab(), nodeNM, n, widthM, vthLow, vthHigh, loadF)
}

// ExploreIn is Explore against an explicit laboratory.
func ExploreIn(lab *device.Lab, nodeNM, n int, widthM, vthLow, vthHigh, loadF float64) ([]Assignment, error) {
	if vthHigh <= vthLow {
		return nil, fmt.Errorf("stackvth: vthHigh %g must exceed vthLow %g", vthHigh, vthLow)
	}
	var out []Assignment
	var refLeak, refDelay float64
	for mask := 0; mask < 1<<n; mask++ {
		vths := make([]float64, n)
		for k := 0; k < n; k++ {
			if mask&(1<<k) != 0 {
				vths[k] = vthHigh
			} else {
				vths[k] = vthLow
			}
		}
		st, err := NewStackIn(lab, nodeNM, n, widthM, vths)
		if err != nil {
			return nil, err
		}
		leak, err := st.AverageLeakage()
		if err != nil {
			return nil, err
		}
		delay := st.Delay(loadF)
		a := Assignment{Vths: vths, LeakageA: leak, DelayS: delay}
		if mask == 0 {
			refLeak, refDelay = leak, delay
		}
		if refLeak > 0 {
			a.LeakageSaving = 1 - leak/refLeak
		}
		if refDelay > 0 {
			a.DelayPenalty = delay/refDelay - 1
		}
		out = append(out, a)
	}
	return out, nil
}

// BestUnderPenalty returns the assignment with the largest leakage saving
// whose delay penalty stays at or below maxPenalty.
func BestUnderPenalty(assignments []Assignment, maxPenalty float64) (Assignment, error) {
	best := -1
	for i, a := range assignments {
		if a.DelayPenalty > maxPenalty {
			continue
		}
		if best < 0 || a.LeakageSaving > assignments[best].LeakageSaving {
			best = i
		}
	}
	if best < 0 {
		return Assignment{}, fmt.Errorf("stackvth: no assignment within %.1f%% delay", maxPenalty*100)
	}
	return assignments[best], nil
}

// HighCount returns how many positions of an assignment use the high
// threshold (identified as the maximum of the vector when mixed).
func (a Assignment) HighCount() int {
	lo := math.Inf(1)
	for _, v := range a.Vths {
		lo = math.Min(lo, v)
	}
	n := 0
	for _, v := range a.Vths {
		if v > lo {
			n++
		}
	}
	return n
}
