package stackvth

import (
	"math"
	"testing"

	"nanometer/internal/device"
	"nanometer/internal/units"
)

func twoStack(t *testing.T, vths []float64) *Stack {
	t.Helper()
	d := device.MustForNode(70)
	st, err := NewStack(70, len(vths), 4*d.LeffM, vths)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestNewStackErrors(t *testing.T) {
	if _, err := NewStack(70, 0, 1e-7, nil); err == nil {
		t.Fatalf("empty stack must error")
	}
	if _, err := NewStack(70, 2, 1e-7, []float64{0.1}); err == nil {
		t.Fatalf("threshold-count mismatch must error")
	}
	if _, err := NewStack(65, 1, 1e-7, []float64{0.1}); err == nil {
		t.Fatalf("unknown node must error")
	}
}

func TestStackEffect(t *testing.T) {
	d := device.MustForNode(70)
	st := twoStack(t, []float64{d.Vth0, d.Vth0})
	// A single off device (the other on) leaks like a bare transistor;
	// both off (stack) leaks several times less.
	bothOff, err := st.LeakageForState([]bool{false, false})
	if err != nil {
		t.Fatal(err)
	}
	topOff, err := st.LeakageForState([]bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	if bothOff >= topOff {
		t.Fatalf("the stack effect must hold: both-off %g ≥ single-off %g", bothOff, topOff)
	}
	if factor := bothOff / topOff; factor > 0.5 || factor < 0.02 {
		t.Fatalf("stack factor = %g, expected the classic few-× reduction", factor)
	}
	// The single-off case matches the bare Eq.-4 device within the
	// drain-saturation factor.
	bare := d.IoffPerWidth(st.Vdd, st.TemperatureK) * st.WidthM
	if !units.ApproxEqual(topOff, bare, 0.05, 0) {
		t.Fatalf("single-off leakage %g vs bare device %g", topOff, bare)
	}
}

func TestAllOnLeaksZeroPullDown(t *testing.T) {
	d := device.MustForNode(70)
	st := twoStack(t, []float64{d.Vth0, d.Vth0})
	l, err := st.LeakageForState([]bool{true, true})
	if err != nil {
		t.Fatal(err)
	}
	if l != 0 {
		t.Fatalf("a conducting stack has no pull-down leakage path, got %g", l)
	}
}

func TestLeakageForStateErrors(t *testing.T) {
	d := device.MustForNode(70)
	st := twoStack(t, []float64{d.Vth0, d.Vth0})
	if _, err := st.LeakageForState([]bool{false}); err == nil {
		t.Fatalf("input-count mismatch must error")
	}
}

func TestMinLeakageVectorIsAllOff(t *testing.T) {
	d := device.MustForNode(70)
	st := twoStack(t, []float64{d.Vth0, d.Vth0})
	vec, best, err := st.MinLeakageVector()
	if err != nil {
		t.Fatal(err)
	}
	for _, on := range vec {
		if on {
			t.Fatalf("for a uniform stack the all-off vector maximizes the stack effect, got %v", vec)
		}
	}
	avg, err := st.AverageLeakage()
	if err != nil {
		t.Fatal(err)
	}
	if best >= avg {
		t.Fatalf("the parked state (%g) must beat the average (%g)", best, avg)
	}
}

func TestHighVthPositionMatters(t *testing.T) {
	d := device.MustForNode(70)
	lo, hi := d.Vth0, d.Vth0+0.1
	bottomHigh := twoStack(t, []float64{hi, lo})
	topHigh := twoStack(t, []float64{lo, hi})
	lBottom, err := bottomHigh.AverageLeakage()
	if err != nil {
		t.Fatal(err)
	}
	lTop, err := topHigh.AverageLeakage()
	if err != nil {
		t.Fatal(err)
	}
	// Either position cuts leakage vs all-low; they need not be equal.
	allLow := twoStack(t, []float64{lo, lo})
	ref, err := allLow.AverageLeakage()
	if err != nil {
		t.Fatal(err)
	}
	if lBottom >= ref || lTop >= ref {
		t.Fatalf("a single high-Vth device must cut average leakage: %g, %g vs %g", lBottom, lTop, ref)
	}
}

func TestDelayMonotoneInVthAndStackHeight(t *testing.T) {
	d := device.MustForNode(70)
	lo, hi := d.Vth0, d.Vth0+0.1
	load := 5e-15
	allLow := twoStack(t, []float64{lo, lo})
	mixed := twoStack(t, []float64{hi, lo})
	allHigh := twoStack(t, []float64{hi, hi})
	if !(allLow.Delay(load) < mixed.Delay(load) && mixed.Delay(load) < allHigh.Delay(load)) {
		t.Fatalf("delay must grow with high-Vth count")
	}
	three := twoStack(t, []float64{lo, lo, lo})
	if three.Delay(load) <= allLow.Delay(load) {
		t.Fatalf("a taller stack must be slower")
	}
}

func TestExploreHeadline(t *testing.T) {
	// The §3.3 claim: mixed stacks give "fairly substantial leakage
	// savings with minimal delay penalties".
	d := device.MustForNode(70)
	as, err := Explore(70, 2, 4*d.LeffM, d.Vth0, d.Vth0+0.1, 5e-15)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 4 {
		t.Fatalf("2-stack explore must produce 4 assignments")
	}
	best, err := BestUnderPenalty(as, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if best.HighCount() != 1 {
		t.Fatalf("within 10%% delay the winner should be a single-high mix, got %d high", best.HighCount())
	}
	if best.LeakageSaving < 0.35 {
		t.Fatalf("single-high saving = %g, expected substantial (≳40%%)", best.LeakageSaving)
	}
	if best.DelayPenalty > 0.10 {
		t.Fatalf("penalty %g exceeds the constraint", best.DelayPenalty)
	}
	// The all-high corner saves the most but pays about double the delay
	// penalty.
	allHigh := as[len(as)-1]
	if allHigh.LeakageSaving <= best.LeakageSaving {
		t.Fatalf("all-high must save the most")
	}
	if allHigh.DelayPenalty <= best.DelayPenalty*1.5 {
		t.Fatalf("all-high must cost substantially more delay")
	}
}

func TestBestUnderPenaltyInfeasible(t *testing.T) {
	d := device.MustForNode(70)
	as, err := Explore(70, 2, 4*d.LeffM, d.Vth0, d.Vth0+0.1, 5e-15)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BestUnderPenalty(as, -1); err == nil {
		t.Fatalf("impossible penalty budget must error")
	}
}

func TestExploreErrors(t *testing.T) {
	if _, err := Explore(70, 2, 1e-7, 0.3, 0.2, 1e-15); err == nil {
		t.Fatalf("inverted threshold pair must error")
	}
}

func TestLeakageScalesWithWidth(t *testing.T) {
	d := device.MustForNode(70)
	narrow, err := NewStack(70, 2, 2*d.LeffM, []float64{d.Vth0, d.Vth0})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := NewStack(70, 2, 4*d.LeffM, []float64{d.Vth0, d.Vth0})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := narrow.AverageLeakage()
	if err != nil {
		t.Fatal(err)
	}
	lw, err := wide.AverageLeakage()
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(lw, 2*ln, 0.02, 0) {
		t.Fatalf("leakage must scale with width: %g vs 2×%g", lw, ln)
	}
}

func TestTallerStacksLeakLess(t *testing.T) {
	d := device.MustForNode(70)
	two := twoStack(t, []float64{d.Vth0, d.Vth0})
	three := twoStack(t, []float64{d.Vth0, d.Vth0, d.Vth0})
	l2, err := two.LeakageForState([]bool{false, false})
	if err != nil {
		t.Fatal(err)
	}
	l3, err := three.LeakageForState([]bool{false, false, false})
	if err != nil {
		t.Fatal(err)
	}
	if l3 >= l2 {
		t.Fatalf("a taller all-off stack must leak less: %g vs %g", l3, l2)
	}
	if math.IsNaN(l3) {
		t.Fatalf("solver returned NaN")
	}
}
