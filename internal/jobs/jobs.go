// Package jobs is the long-compute substrate of the serving layer: a
// bounded queue of trace-simulation jobs with per-job cancellation, typed
// states, incremental progress, and completed results flowing into the
// content-addressed result store. It is deliberately HTTP-ignorant — the
// serve layer maps endpoints onto Submit/Get/Cancel and admission onto its
// weighted gate via the Admit hook.
//
// Lifecycle: queued → running → done | failed | canceled. A queued job
// canceled before it reaches a worker slot goes straight to canceled; a
// running job's context is checked by the simulator every control
// interval, so Cancel stops real work within one interval and the Admit
// release (gate capacity) is returned immediately after.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"nanometer/internal/repro"
	"nanometer/internal/result"
	"nanometer/internal/trace"
)

// State is a job's lifecycle state.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// ErrQueueFull rejects a submit when queued+running jobs are at MaxQueued.
var ErrQueueFull = errors.New("jobs: queue is full")

// ErrClosed rejects submits after Close.
var ErrClosed = errors.New("jobs: queue is closed")

// Config parameterizes a Queue. The zero value works: 2 workers, 32
// queued, 64 retained, no store, no admission.
type Config struct {
	// Workers bounds concurrently running simulations.
	Workers int
	// MaxQueued bounds queued+running jobs; submits past it fail with
	// ErrQueueFull (the client's backpressure signal).
	MaxQueued int
	// MaxFinished bounds retained terminal jobs; the oldest are forgotten
	// first (their results live on in the store).
	MaxFinished int
	// Store, when non-nil, is consulted on submit (an identical trace is
	// answered done-from-store without simulating) and receives every
	// successful result.
	Store repro.ResultStore
	// Admit, when non-nil, gates a job between dequeue and run — the hook
	// the serve layer points at its weighted admission gate (the trace is
	// passed so the caller can price by length). The returned release is
	// called when the job finishes or is canceled, which is what "DELETE
	// frees gate capacity" means mechanically.
	Admit func(ctx context.Context, tr *trace.Trace) (release func(), err error)
}

// Job is one submitted simulation. All fields are guarded by mu except the
// immutables (ID, Trace) and the channels.
type Job struct {
	// ID is the queue-assigned identity ("j1", "j2", ...).
	ID string
	// Trace is the validated document the job runs.
	Trace *trace.Trace

	cancel context.CancelFunc
	done   chan struct{}

	mu       sync.Mutex
	state    State            // guarded by mu
	cached   bool             // guarded by mu
	err      error            // guarded by mu
	res      *result.Result   // guarded by mu
	chunks   []trace.Progress // guarded by mu
	notify   chan struct{}    // guarded by mu
	created  time.Time        // guarded by mu
	started  time.Time        // guarded by mu
	finished time.Time        // guarded by mu
}

// Snapshot is a point-in-time view of a job, JSON-shaped for the API.
type Snapshot struct {
	ID    string `json:"id"`
	Trace string `json:"trace"`
	Key   string `json:"key"`
	State State  `json:"state"`
	// Cached marks a job answered from the result store without running.
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
	// Progress is the latest snapshot (nil before the first chunk).
	Progress   *trace.Progress `json:"progress,omitempty"`
	CreatedAt  time.Time       `json:"created_at"`
	StartedAt  *time.Time      `json:"started_at,omitempty"`
	FinishedAt *time.Time      `json:"finished_at,omitempty"`
}

// Snapshot returns the job's current view.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Snapshot{
		ID:        j.ID,
		Trace:     j.Trace.Name,
		Key:       j.Trace.Key(),
		State:     j.state,
		Cached:    j.cached,
		CreatedAt: j.created,
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	if n := len(j.chunks); n > 0 {
		p := j.chunks[n-1]
		s.Progress = &p
	}
	if !j.started.IsZero() {
		t := j.started
		s.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.FinishedAt = &t
	}
	return s
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the completed result. ok is false until the job is done;
// a failed or canceled job reports its error with ok false.
func (j *Job) Result() (res *result.Result, err error, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateDone:
		return j.res, nil, true
	case StateFailed, StateCanceled:
		return nil, j.err, false
	default:
		return nil, nil, false
	}
}

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Chunks returns the progress snapshots from index since on, a channel
// that is closed when more arrive, and whether the job is terminal. A
// streamer loops: consume the slice, then wait on the channel or Done.
func (j *Job) Chunks(since int) (chunks []trace.Progress, more <-chan struct{}, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if since < 0 {
		since = 0
	}
	if since < len(j.chunks) {
		chunks = j.chunks[since:len(j.chunks):len(j.chunks)]
	}
	return chunks, j.notify, j.state.Terminal()
}

func (j *Job) appendChunk(p trace.Progress) {
	j.mu.Lock()
	j.chunks = append(j.chunks, p)
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

// setRunning transitions queued → running; returns false if the job was
// already canceled.
func (j *Job) setRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

// Queue runs submitted jobs on a bounded worker set.
type Queue struct {
	cfg        Config
	baseCtx    context.Context
	baseCancel context.CancelFunc
	sem        chan struct{}
	wg         sync.WaitGroup

	// OnFinish, when set before any Submit, observes every terminal
	// transition (metrics hook). Called outside all locks.
	OnFinish func(s State, cached bool)

	mu     sync.Mutex
	jobs   map[string]*Job // guarded by mu
	order  []string        // guarded by mu
	active int             // guarded by mu
	seq    int             // guarded by mu
	closed bool            // guarded by mu
}

// New builds a Queue from cfg.
func New(cfg Config) *Queue {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.MaxQueued <= 0 {
		cfg.MaxQueued = 32
	}
	if cfg.MaxFinished <= 0 {
		cfg.MaxFinished = 64
	}
	// The queue is a lifecycle root: it owns its jobs' base context and
	// Close cancels it, so there is no caller ctx to thread.
	//lint:allow ctxflow queue is a lifecycle root; Close cancels this ctx
	ctx, cancel := context.WithCancel(context.Background())
	return &Queue{
		cfg:        cfg,
		baseCtx:    ctx,
		baseCancel: cancel,
		sem:        make(chan struct{}, cfg.Workers),
		jobs:       make(map[string]*Job),
	}
}

// Submit enqueues a trace. An identical trace already in the result store
// (same ArtifactID and content key) is answered as an immediately-done job
// with Cached set — no simulation, no admission. Queue-full and closed
// queues error.
func (q *Queue) Submit(tr *trace.Trace) (*Job, error) {
	// Store consult before taking the queue lock: Get may touch disk.
	var cachedRes *result.Result
	if q.cfg.Store != nil {
		// One bounded local file read; the job's own cancelable context
		// does not exist yet (it is created under the queue lock below).
		//lint:allow ctxflow store probe is one bounded local read, pre-ctx
		if res, ok := q.cfg.Store.Get(tr.ArtifactID(), tr.Key()); ok {
			cachedRes = res
		}
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil, ErrClosed
	}
	if cachedRes == nil && q.active >= q.cfg.MaxQueued {
		q.mu.Unlock()
		return nil, ErrQueueFull
	}
	q.seq++
	ctx, cancel := context.WithCancel(q.baseCtx)
	j := &Job{
		ID:      fmt.Sprintf("j%d", q.seq),
		Trace:   tr,
		cancel:  cancel,
		done:    make(chan struct{}),
		state:   StateQueued,
		notify:  make(chan struct{}),
		created: time.Now(),
	}
	q.jobs[j.ID] = j
	q.order = append(q.order, j.ID)
	if cachedRes != nil {
		// The job is already published in q.jobs, so take its own lock for
		// the terminal-state writes: readers reach it via Get (under q.mu,
		// which orders them after this block), but the field contract is
		// j.mu and keeping it locally checkable costs one uncontended lock.
		j.mu.Lock()
		j.state = StateDone
		j.cached = true
		j.res = cachedRes
		j.finished = j.created
		j.mu.Unlock()
		cancel()
		close(j.done)
		q.evictLocked()
		q.mu.Unlock()
		if q.OnFinish != nil {
			q.OnFinish(StateDone, true)
		}
		return j, nil
	}
	q.active++
	q.evictLocked()
	q.mu.Unlock()
	q.wg.Add(1)
	go q.run(ctx, j)
	return j, nil
}

// Get returns a job by ID (false once it has been evicted or never was).
func (q *Queue) Get(id string) (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	return j, ok
}

// Jobs returns every retained job in creation order.
func (q *Queue) Jobs() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]*Job, 0, len(q.order))
	for _, id := range q.order {
		if j, ok := q.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

// Stats reports the queue's live counts (metrics hook).
func (q *Queue) Stats() (active, retained int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.active, len(q.jobs)
}

// Cancel cancels a job. Queued jobs go terminal without running; running
// jobs stop within one simulated control interval. Canceling a terminal
// job is a no-op. Returns false for unknown IDs.
func (q *Queue) Cancel(id string) bool {
	j, ok := q.Get(id)
	if !ok {
		return false
	}
	j.cancel()
	return true
}

// Close cancels every job and waits for the workers to drain. The queue
// rejects further submits.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.baseCancel()
	q.wg.Wait()
}

// run executes one job: worker slot → admission → simulate → persist.
func (q *Queue) run(ctx context.Context, j *Job) {
	defer q.wg.Done()
	select {
	case q.sem <- struct{}{}:
	case <-ctx.Done():
		q.finish(j, nil, ctx.Err())
		return
	}
	defer func() { <-q.sem }()
	if err := ctx.Err(); err != nil {
		q.finish(j, nil, err)
		return
	}
	if q.cfg.Admit != nil {
		release, err := q.cfg.Admit(ctx, j.Trace)
		if err != nil {
			q.finish(j, nil, fmt.Errorf("admission: %w", err))
			return
		}
		// Released on every exit path below — including cancellation —
		// so a DELETE returns the job's gate units as soon as the
		// simulator observes ctx, never when some stream reader is done.
		defer release()
	}
	if !j.setRunning() {
		q.finish(j, nil, ctx.Err())
		return
	}
	res, err := j.Trace.Run(ctx, j.appendChunk)
	if err == nil && q.cfg.Store != nil {
		q.cfg.Store.Put(j.Trace.ArtifactID(), j.Trace.Key(), res)
	}
	q.finish(j, res, err)
}

// finish moves a job to its terminal state and releases its queue slot.
func (q *Queue) finish(j *Job, res *result.Result, err error) {
	state := StateDone
	switch {
	case err == nil:
		state = StateDone
	case errors.Is(err, context.Canceled):
		state = StateCanceled
	default:
		state = StateFailed
	}
	j.mu.Lock()
	j.state = state
	j.res = res
	j.err = err
	if state == StateCanceled {
		j.err = errors.New("jobs: canceled")
	}
	j.finished = time.Now()
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
	close(j.done)
	q.mu.Lock()
	q.active--
	q.evictLocked()
	q.mu.Unlock()
	if q.OnFinish != nil {
		q.OnFinish(state, false)
	}
}

// evictLocked forgets the oldest terminal jobs past MaxFinished. Requires
// q.mu held (job mutexes nest inside the queue mutex; no caller holds a
// job mutex while acquiring q.mu).
func (q *Queue) evictLocked() {
	terminal := 0
	for _, id := range q.order {
		if j, ok := q.jobs[id]; ok && j.State().Terminal() {
			terminal++
		}
	}
	if terminal <= q.cfg.MaxFinished {
		return
	}
	drop := terminal - q.cfg.MaxFinished
	kept := q.order[:0]
	for _, id := range q.order {
		j, ok := q.jobs[id]
		if !ok {
			continue
		}
		if drop > 0 && j.State().Terminal() {
			delete(q.jobs, id)
			drop--
			continue
		}
		kept = append(kept, id)
	}
	q.order = kept
}
