package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nanometer/internal/result"
	"nanometer/internal/trace"
)

// memStore is an in-memory repro.ResultStore.
type memStore struct {
	mu   sync.Mutex
	m    map[string]*result.Result
	gets atomic.Int64
	hits atomic.Int64
	puts atomic.Int64
}

func newMemStore() *memStore { return &memStore{m: make(map[string]*result.Result)} }

func (s *memStore) Get(artifactID, key string) (*result.Result, bool) {
	s.gets.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	res, ok := s.m[artifactID+"\x00"+key]
	if ok {
		s.hits.Add(1)
	}
	return res, ok
}

func (s *memStore) Put(artifactID, key string, res *result.Result) {
	s.puts.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[artifactID+"\x00"+key] = res
}

func shortTrace(name string) *trace.Trace {
	return trace.MustParse(fmt.Sprintf(
		`{"name":%q,"dt_seconds":0.01,"generator":{"kind":"workload","intervals":2000}}`, name))
}

func longTrace(name string) *trace.Trace {
	return trace.MustParse(fmt.Sprintf(
		`{"name":%q,"dt_seconds":0.01,"generator":{"kind":"workload","intervals":80000000}}`, name))
}

func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s stuck in %s waiting for %s", j.ID, j.State(), want)
	}
	if got := j.State(); got != want {
		t.Fatalf("job %s finished %s, want %s", j.ID, got, want)
	}
}

func TestJobLifecycleDone(t *testing.T) {
	st := newMemStore()
	q := New(Config{Workers: 2, Store: st})
	defer q.Close()
	j, err := q.Submit(shortTrace("lc"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)
	res, jerr, ok := j.Result()
	if !ok || jerr != nil || res == nil {
		t.Fatalf("Result() = %v, %v, %v", res, jerr, ok)
	}
	if res.ID != "trace:lc" {
		t.Fatalf("result ID %q", res.ID)
	}
	chunks, _, terminal := j.Chunks(0)
	if !terminal || len(chunks) == 0 {
		t.Fatalf("chunks after done: %d, terminal %v", len(chunks), terminal)
	}
	if last := chunks[len(chunks)-1]; last.Done != last.Total {
		t.Fatalf("last chunk %d/%d", last.Done, last.Total)
	}
	if st.puts.Load() != 1 {
		t.Fatalf("store puts %d, want 1", st.puts.Load())
	}
	snap := j.Snapshot()
	if snap.State != StateDone || snap.Progress == nil || snap.FinishedAt == nil {
		t.Fatalf("snapshot %+v", snap)
	}
}

func TestSubmitStoreHit(t *testing.T) {
	st := newMemStore()
	q := New(Config{Workers: 1, Store: st})
	defer q.Close()
	j1, err := q.Submit(shortTrace("hit"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j1, StateDone)
	j2, err := q.Submit(shortTrace("hit"))
	if err != nil {
		t.Fatal(err)
	}
	snap := j2.Snapshot()
	if snap.State != StateDone || !snap.Cached {
		t.Fatalf("resubmit snapshot %+v, want done-from-store", snap)
	}
	if st.puts.Load() != 1 {
		t.Fatalf("store puts %d after resubmit, want 1 (no second simulation)", st.puts.Load())
	}
	// A different trace under the same name is a different key: no hit.
	j3, err := q.Submit(trace.MustParse(
		`{"name":"hit","dt_seconds":0.01,"generator":{"kind":"workload","intervals":2001}}`))
	if err != nil {
		t.Fatal(err)
	}
	if j3.Snapshot().Cached {
		t.Fatal("distinct content reported cached")
	}
	waitState(t, j3, StateDone)
}

// TestCancelRunning pins the tentpole cancellation contract: a running
// job's DELETE stops the simulator mid-trace (progress strictly short of
// total) and returns the admission release immediately.
func TestCancelRunning(t *testing.T) {
	var held atomic.Int64
	q := New(Config{Workers: 1, Admit: func(ctx context.Context, _ *trace.Trace) (func(), error) {
		held.Add(1)
		return func() { held.Add(-1) }, nil
	}})
	defer q.Close()
	j, err := q.Submit(longTrace("cancelme"))
	if err != nil {
		t.Fatal(err)
	}
	// Wait for real progress so the cancel lands mid-simulation.
	deadline := time.After(30 * time.Second)
	for {
		if snap := j.Snapshot(); snap.Progress != nil && snap.Progress.Done > 0 {
			break
		}
		_, more, terminal := j.Chunks(0)
		if terminal {
			t.Fatalf("job finished before cancel: %s", j.State())
		}
		select {
		case <-more:
		case <-deadline:
			t.Fatal("no progress before deadline")
		case <-j.Done():
			t.Fatalf("job finished before cancel: %s", j.State())
		}
	}
	if !q.Cancel(j.ID) {
		t.Fatal("cancel returned false")
	}
	waitState(t, j, StateCanceled)
	if n := held.Load(); n != 0 {
		t.Fatalf("%d admission units still held after cancel", n)
	}
	snap := j.Snapshot()
	if snap.Progress == nil || snap.Progress.Done >= snap.Progress.Total {
		t.Fatalf("canceled job progress %+v, want partial", snap.Progress)
	}
	if _, _, ok := j.Result(); ok {
		t.Fatal("canceled job has a result")
	}
}

func TestCancelQueued(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close()
	blocker, err := q.Submit(longTrace("blocker"))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := q.Submit(shortTrace("queued"))
	if err != nil {
		t.Fatal(err)
	}
	q.Cancel(queued.ID)
	waitState(t, queued, StateCanceled)
	if snap := queued.Snapshot(); snap.Progress != nil {
		t.Fatalf("queued job ran: %+v", snap.Progress)
	}
	q.Cancel(blocker.ID)
	waitState(t, blocker, StateCanceled)
}

func TestQueueFull(t *testing.T) {
	q := New(Config{Workers: 1, MaxQueued: 2})
	defer q.Close()
	a, _ := q.Submit(longTrace("a"))
	b, _ := q.Submit(longTrace("b"))
	if _, err := q.Submit(shortTrace("c")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: %v, want ErrQueueFull", err)
	}
	q.Cancel(a.ID)
	waitState(t, a, StateCanceled)
	if _, err := q.Submit(shortTrace("c")); err != nil {
		t.Fatalf("submit after cancel freed a slot: %v", err)
	}
	q.Cancel(b.ID)
}

func TestAdmitRejectionFails(t *testing.T) {
	boom := errors.New("gate closed")
	q := New(Config{Workers: 1, Admit: func(context.Context, *trace.Trace) (func(), error) {
		return nil, boom
	}})
	defer q.Close()
	j, err := q.Submit(shortTrace("rejected"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateFailed)
	if snap := j.Snapshot(); snap.Error == "" {
		t.Fatal("failed job carries no error")
	}
}

func TestCloseCancelsEverything(t *testing.T) {
	q := New(Config{Workers: 1})
	running, _ := q.Submit(longTrace("r"))
	queued, _ := q.Submit(longTrace("q"))
	q.Close()
	if s := running.State(); s != StateCanceled {
		t.Fatalf("running job %s after Close", s)
	}
	if s := queued.State(); s != StateCanceled {
		t.Fatalf("queued job %s after Close", s)
	}
	if _, err := q.Submit(shortTrace("late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
}

func TestFinishedEviction(t *testing.T) {
	q := New(Config{Workers: 2, MaxFinished: 3})
	defer q.Close()
	var ids []string
	for i := 0; i < 6; i++ {
		j, err := q.Submit(shortTrace(fmt.Sprintf("e%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, j, StateDone)
		ids = append(ids, j.ID)
	}
	if _, retained := q.Stats(); retained != 3 {
		t.Fatalf("retained %d, want 3", retained)
	}
	if _, ok := q.Get(ids[0]); ok {
		t.Fatal("oldest job survived eviction")
	}
	if _, ok := q.Get(ids[5]); !ok {
		t.Fatal("newest job evicted")
	}
}

// TestConcurrentSubmitPollCancel is the satellite race test: hammer one
// queue with concurrent submits, polls, streams, and cancels under -race.
func TestConcurrentSubmitPollCancel(t *testing.T) {
	st := newMemStore()
	q := New(Config{Workers: 4, MaxQueued: 64, Store: st})
	defer q.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				j, err := q.Submit(shortTrace(fmt.Sprintf("race-%d-%d", g, i%3)))
				if err != nil {
					if errors.Is(err, ErrQueueFull) {
						continue
					}
					t.Errorf("submit: %v", err)
					return
				}
				// Interleave polling, streaming, and cancels.
				j.Snapshot()
				since := 0
				for k := 0; k < 100; k++ {
					chunks, more, terminal := j.Chunks(since)
					since += len(chunks)
					if terminal {
						break
					}
					if i%2 == 0 && k == 1 {
						q.Cancel(j.ID)
					}
					select {
					case <-more:
					case <-j.Done():
					}
				}
				<-j.Done()
				if s := j.State(); !s.Terminal() {
					t.Errorf("non-terminal state %s after Done", s)
				}
				j.Snapshot()
			}
		}(g)
	}
	wg.Wait()
}
