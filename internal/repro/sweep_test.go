package repro

import (
	"bytes"
	"testing"

	"nanometer/internal/powergrid"
	"nanometer/internal/runner"
	"nanometer/internal/scenario"
)

func sweepVariants(t *testing.T, steps int) []*scenario.Scenario {
	t.Helper()
	s, err := scenario.Parse([]byte(`{
	  "name": "sweeptest",
	  "sweep": {"param": "vdd", "steps": ` + itoa(steps) + `, "span_pct": 20, "nodes": [70]}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	vs, err := s.Variants()
	if err != nil {
		t.Fatal(err)
	}
	return vs
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return string(rune('0'+n/10)) + string(rune('0'+n%10))
}

// TestVariantJobsMatchSequentialBytes pins the CLI contract the flattening
// must preserve: one flattened pool run over variants × artifacts emits
// the exact bytes of the historical run-each-variant-sequentially loop,
// at any worker count.
func TestVariantJobsMatchSequentialBytes(t *testing.T) {
	ResetCache()
	variants := sweepVariants(t, 3)
	arts, err := Select([]string{"t1", "c8"})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{}
	var sequential bytes.Buffer
	for _, v := range variants {
		vo := opts
		vo.Scenario = v
		if _, err := (runner.Pool{Workers: 1}).RunTo(&sequential, Jobs(arts, vo)); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 8} {
		ResetCache()
		var flat bytes.Buffer
		jobs := VariantJobs(arts, opts, variants, nil)
		if len(jobs) != len(arts)*len(variants) {
			t.Fatalf("got %d jobs, want %d", len(jobs), len(arts)*len(variants))
		}
		if _, err := (runner.Pool{Workers: workers}).RunTo(&flat, jobs); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(flat.Bytes(), sequential.Bytes()) {
			t.Fatalf("workers=%d: flattened sweep output diverges from the sequential loop", workers)
		}
	}
}

// TestPrimeVariantsTelemetryNeutral is the guard the CI scenario smoke
// depends on: priming must not move the compute-cache hit/miss counters
// (it probes map presence, never ComputeCached), and must batch exactly
// the sweep's mesh solves so the per-variant computes consume them.
func TestPrimeVariantsTelemetryNeutral(t *testing.T) {
	ResetCache()
	variants := sweepVariants(t, 3)
	arts, err := Select([]string{"c8"})
	if err != nil {
		t.Fatal(err)
	}
	cacheBefore := ReadCacheStats()
	solvesBefore := powergrid.ReadSolveStats()
	PrimeVariants(arts, Options{}, variants)
	cacheAfter := ReadCacheStats()
	solvesAfter := powergrid.ReadSolveStats()
	if cacheAfter.Hits != cacheBefore.Hits || cacheAfter.Misses != cacheBefore.Misses {
		t.Errorf("priming moved cache counters: hits %d→%d misses %d→%d",
			cacheBefore.Hits, cacheAfter.Hits, cacheBefore.Misses, cacheAfter.Misses)
	}
	if got := solvesAfter.Batched - solvesBefore.Batched; got != 3 {
		t.Errorf("priming batched %d solves, want 3", got)
	}
	// The primed variants' computes consume the parked drops: no further
	// mesh solves run.
	for _, v := range variants {
		if _, err := arts[0].ComputeCached(Options{Scenario: v}); err != nil {
			t.Fatal(err)
		}
	}
	consumed := powergrid.ReadSolveStats()
	if got := consumed.Solves - solvesAfter.Solves; got != 0 {
		t.Errorf("computes after priming ran %d extra mesh solves, want 0", got)
	}
}

// TestPrimeVariantsNoopWithoutHeavyArtifact: selections without c8 have no
// mesh-bound compute to share, so priming must not solve anything (the CI
// scenario smoke posts only=t1 sweeps and asserts exact solve counts).
func TestPrimeVariantsNoopWithoutHeavyArtifact(t *testing.T) {
	ResetCache()
	variants := sweepVariants(t, 3)
	arts, err := Select([]string{"t1"})
	if err != nil {
		t.Fatal(err)
	}
	before := powergrid.ReadSolveStats()
	PrimeVariants(arts, Options{}, variants)
	after := powergrid.ReadSolveStats()
	if after.Solves != before.Solves {
		t.Errorf("priming without c8 ran %d mesh solves", after.Solves-before.Solves)
	}
}
