// Package repro is the artifact registry of the reproduction harness: one
// renderer per table, figure, and quantified claim of the paper. Each
// renderer writes its complete textual output to an io.Writer and returns an
// error instead of aborting the process, so the artifacts can run as
// independent jobs on the runner pool with deterministic, serially-identical
// output. cmd/nanorepro is a thin flag-parsing shell around this package;
// bench_test.go drives the same registry for the full-report speedup
// measurement.
package repro

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"nanometer/internal/experiments"
	"nanometer/internal/report"
	"nanometer/internal/runner"
	"nanometer/internal/signaling"
)

// Options configures rendering. The zero value reproduces the plain
// `nanorepro` run: compact figure dumps, no CSVs.
type Options struct {
	// CSVDir, when non-empty, is the directory figure CSVs are written to.
	CSVDir string
	// Plot renders terminal plots instead of compact figure summaries.
	Plot bool
	// Verbose adds extra detail to claim outputs (reserved).
	Verbose bool
}

// Artifact is one reproducible unit: a stable ID (t1, f3, c8, ...), a title
// for listings, and a renderer. Renderers are independent of each other and
// safe to run concurrently; every output byte goes through w.
type Artifact struct {
	ID     string
	Title  string
	Render func(w io.Writer, opts Options) error
}

// Artifacts returns the full registry in canonical emission order.
func Artifacts() []Artifact {
	return []Artifact{
		{"t1", "Table 1: published NMOS devices vs ITRS projections", renderTable1},
		{"t2", "Table 2: analytical Ioff scaling", renderTable2},
		{"f1", "Figure 1: Pstatic/Pdynamic vs switching activity", renderFigure1},
		{"f2", "Figure 2: dual-Vth scaling", renderFigure2},
		{"f3", "Figure 3: delay vs Vdd under Vth policies", renderFigure3},
		{"f4", "Figure 4: Pdynamic/Pstatic vs Vdd", renderFigure4},
		{"f5", "Figure 5: IR-drop scaling", renderFigure5},
		{"c1", "dynamic thermal management (§2.1)", renderC1},
		{"c2", "global signaling census and low-swing alternative (§2.2)", renderC2},
		{"c3", "library optimization at fixed timing (§2.3)", renderC3},
		{"c4", "clustered voltage scaling (§2.4)", renderC4},
		{"c5", "dual-Vth assignment (§3.2.2)", renderC5},
		{"c6", "re-sizing vs multi-Vdd (§3.3)", renderC6},
		{"c7", "Vdd floor under the ITRS static constraint (§3.3)", renderC7},
		{"c8", "ITRS bump plan at 35 nm (§4)", renderC8},
		{"c9", "wakeup transients and MCML (§4)", renderC9},
		{"c10", "intra-cell multi-Vth stacks (§3.3 close)", renderC10},
		{"c11", "standby-technique comparison and scalability (§3.2.1)", renderC11},
		{"c12", "tolerable-swing study (the §2.2 open question)", renderC12},
		{"c13", "signaling-primitive planner (conclusion #2's EDA tool)", renderC13},
	}
}

// Select filters the registry by artifact ID (case-insensitive; empty or nil
// selects everything) preserving canonical order, and rejects unknown IDs so
// a typo in -only fails loudly instead of silently skipping.
func Select(ids []string) ([]Artifact, error) {
	all := Artifacts()
	want := map[string]bool{}
	for _, id := range ids {
		id = strings.TrimSpace(strings.ToLower(id))
		if id != "" {
			want[id] = true
		}
	}
	if len(want) == 0 {
		return all, nil
	}
	var sel []Artifact
	for _, a := range all {
		if want[a.ID] {
			sel = append(sel, a)
			delete(want, a.ID)
		}
	}
	if len(want) > 0 {
		var unknown []string
		for id := range want {
			unknown = append(unknown, id)
		}
		return nil, fmt.Errorf("repro: unknown artifact id(s) %v (use -list)", unknown)
	}
	return sel, nil
}

// Jobs adapts artifacts to runner jobs with opts bound in.
func Jobs(arts []Artifact, opts Options) []runner.Job {
	jobs := make([]runner.Job, len(arts))
	for i, a := range arts {
		a := a
		jobs[i] = runner.Job{ID: a.ID, Run: func(w io.Writer) error { return a.Render(w, opts) }}
	}
	return jobs
}

// emitFigure writes the figure (plot or compact endpoint summary) and, when
// requested, its CSV. A CSV failure is returned after the textual output so
// the artifact still shows its data; the caller's error aggregation reports
// the broken file.
func emitFigure(w io.Writer, fig *report.Figure, name string, opts Options) error {
	if opts.Plot {
		fig.RenderASCII(w, 72, 18)
		fmt.Fprintln(w)
	} else {
		// Compact textual dump: endpoint summary per series.
		fmt.Fprintf(w, "%s\n", fig.Title)
		for _, s := range fig.Series {
			if len(s.X) == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-40s (%.3g, %.3g) → (%.3g, %.3g), %d pts\n",
				s.Name, s.X[0], s.Y[0], s.X[len(s.X)-1], s.Y[len(s.Y)-1], len(s.X))
		}
		fmt.Fprintln(w)
	}
	if opts.CSVDir == "" {
		return nil
	}
	path := filepath.Join(opts.CSVDir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if err := fig.WriteCSV(f); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	fmt.Fprintf(w, "  wrote %s\n\n", path)
	return nil
}

// --- Tables -------------------------------------------------------------------

func renderTable1(w io.Writer, _ Options) error {
	_, err := experiments.Table1Report().WriteTo(w)
	return err
}

func renderTable2(w io.Writer, _ Options) error {
	t, err := experiments.Table2Report()
	if err != nil {
		return err
	}
	_, err = t.WriteTo(w)
	return err
}

// --- Figures ------------------------------------------------------------------

func renderFigure1(w io.Writer, opts Options) error {
	fig, err := experiments.Figure1(nil)
	if err != nil {
		return err
	}
	return emitFigure(w, fig, "figure1", opts)
}

func renderFigure2(w io.Writer, opts Options) error {
	rows, err := experiments.Figure2()
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   "Figure 2 (as data). Dual-Vth scaling",
		Headers: []string{"node (nm)", "Ion gain @ -100mV Vth", "Ioff × @ -100mV", "Ioff × for +20% Ion", "ΔVth for +20% (mV)"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.NodeNM),
			fmt.Sprintf("%.1f%%", r.IonGainPct),
			fmt.Sprintf("%.1f", r.IoffX100mV),
			fmt.Sprintf("%.1f", r.IoffXFor20PctIon),
			fmt.Sprintf("%.0f", r.DeltaVthFor20Pct*1e3))
	}
	t.Notes = append(t.Notes, "paper: Ioff penalty for +20% Ion falls from 54× \"today\" to 7× at 35 nm; 100 mV ⇒ ~15× Ioff throughout")
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	return emitFigure(w, experiments.Figure2Figure(rows), "figure2", opts)
}

// Figures 3 and 4 share one supply sweep; as independent jobs each re-runs
// the sweep (cheap) so neither depends on the other's completion.

func renderFigure3(w io.Writer, opts Options) error {
	fig3, _, err := experiments.Figure3And4(nil)
	if err != nil {
		return err
	}
	return emitFigure(w, fig3, "figure3", opts)
}

func renderFigure4(w io.Writer, opts Options) error {
	_, fig4, err := experiments.Figure3And4(nil)
	if err != nil {
		return err
	}
	return emitFigure(w, fig4, "figure4", opts)
}

func renderFigure5(w io.Writer, opts Options) error {
	rows, err := experiments.Figure5()
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   "Figure 5 (as data). IR-drop scaling",
		Headers: []string{"node (nm)", "min pitch (µm)", "W/Wmin", "%routing", "ITRS pitch (µm)", "W/Wmin", "%routing"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.NodeNM),
			fmt.Sprintf("%.0f", r.MinPitchM*1e6),
			fmt.Sprintf("%.1f", r.MinWidthOverMin),
			fmt.Sprintf("%.1f%%", r.MinRoutingFraction*100),
			fmt.Sprintf("%.0f", r.ITRSPitchM*1e6),
			fmt.Sprintf("%.0f", r.ITRSWidthOverMin),
			fmt.Sprintf("%.1f%%", r.ITRSRoutingFraction*100))
	}
	t.Notes = append(t.Notes, "paper: 16× Wmin (<4% routing + 16% pads) at 35 nm minimum pitch; >2000× under ITRS bump counts")
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	return emitFigure(w, experiments.Figure5Figure(rows), "figure5", opts)
}

// --- Claims -------------------------------------------------------------------

func renderC1(w io.Writer, _ Options) error {
	r, err := experiments.DTM(50)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "C1. Dynamic thermal management (50 nm node)\n")
	fmt.Fprintf(w, "  theoretical worst case: %.0f W; effective worst case under DTM: %.0f W (%.0f%% — paper ≈75%%)\n",
		r.TheoreticalWorstW, r.EffectiveWorstW, r.EffectiveFraction*100)
	fmt.Fprintf(w, "  allowable θja relief: +%.0f%% (paper: +33%%)\n", r.ThetaJAHeadroom*100)
	fmt.Fprintf(w, "  cooling: %s ($%.0f) vs %s ($%.0f) — %.1f× cheaper\n",
		r.CostTheoretical.Class, r.CostTheoretical.CostUSD,
		r.CostEffective.Class, r.CostEffective.CostUSD, r.CostRatio)
	fmt.Fprintf(w, "  power virus on the DTM-sized package: peak %.1f °C (limit held), throughput %.0f%%\n",
		r.VirusPeakTempC, r.VirusThroughput*100)
	fmt.Fprintf(w, "  65→75 W cooling-cost step at the 1999 point: %.1f× (paper: ~3×)\n\n", r.Intel65to75)
	return nil
}

func renderC2(w io.Writer, _ Options) error {
	rows, err := experiments.Signaling()
	if err != nil {
		return err
	}
	t := &report.Table{
		Title: "C2. Global signaling: repeated CMOS census vs differential low-swing",
		Headers: []string{"node", "repeaters", "P (W)", "area", "cyc/edge scaled", "unscaled",
			"diff E ratio", "diff P (W)", "tracks", "diff SNR", "di/dt ratio"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.NodeNM),
			fmt.Sprintf("%d", r.Repeaters),
			fmt.Sprintf("%.1f", r.SignalingPowerW),
			fmt.Sprintf("%.1f%%", r.RepeaterAreaFraction*100),
			fmt.Sprintf("%.1f", r.ScaledCycles),
			fmt.Sprintf("%.1f", r.UnscaledCycles),
			fmt.Sprintf("%.2f", r.DiffEnergyRatio),
			fmt.Sprintf("%.1f", r.DiffPowerW),
			fmt.Sprintf("%.2f", r.DiffTrackRatio),
			fmt.Sprintf("%.1f", r.DiffSNR),
			fmt.Sprintf("%.3f", r.PeakCurrentRatio))
	}
	t.Notes = append(t.Notes,
		"paper: ~10⁴ repeaters at 180 nm → ~10⁶ at 50 nm; >50 W; Alpha 21264 buses at 10% swing",
		"per [9]: unscaled top-level wiring keeps the die reachable in a few cycles at ITRS clocks")
	_, err = t.WriteTo(w)
	return err
}

func renderC3(w io.Writer, _ Options) error {
	r, err := experiments.RunLibrary(experiments.DefaultCircuitSetup())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "C3. Library optimization at fixed timing (%d gates, %d nm)\n", r.Setup.Gates, r.Setup.NodeNM)
	for _, res := range r.Results {
		fmt.Fprintf(w, "  %-32s power %.3f mW  size %.0f  met=%v\n",
			res.Library.Name, res.Power.TotalW()*1e3, res.TotalSize, res.TimingMet)
	}
	fmt.Fprintf(w, "  on-the-fly vs coarse library: %.0f%% power saving (paper: 15-22%%); vs rich: %.0f%%\n\n",
		r.ContinuousVsCoarse*100, r.ContinuousVsRich*100)
	return nil
}

func renderC4(w io.Writer, _ Options) error {
	r, err := experiments.RunCVS(experiments.DefaultCircuitSetup())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "C4. Clustered voltage scaling (Vdd,l = %.2f·Vdd,h)\n", r.Setup.LowVddRatio)
	fmt.Fprintf(w, "  path utilization: %.0f%% of paths below half the cycle (paper: >50%%)\n", r.PathUtilization*100)
	c := r.Clustered
	fmt.Fprintf(w, "  clustered:   %.0f%% of gates at Vdd,l (paper ~75%%), dynamic saving %.0f%% (paper 45-50%%),\n"+
		"               LC overhead %.1f%% (paper 8-10%%), area +%.0f%% (paper ~15%%), %d LCs, met=%v\n",
		c.AssignedFraction*100, c.DynamicSaving*100, c.LCOverheadFraction*100,
		c.AreaOverhead*100, c.LevelConverters, c.TimingMet)
	u := r.Unclustered
	fmt.Fprintf(w, "  unclustered: %.0f%% assigned, saving %.0f%%, LC overhead %.1f%%, %d LCs (clustering ablation)\n\n",
		u.AssignedFraction*100, u.DynamicSaving*100, u.LCOverheadFraction*100, u.LevelConverters)
	return nil
}

func renderC5(w io.Writer, _ Options) error {
	r, err := experiments.RunDualVth(experiments.DefaultCircuitSetup())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "C5. Dual-Vth assignment\n")
	fmt.Fprintf(w, "  sensitivity-ordered: %.0f%% high-Vth, leakage -%.0f%% (paper 40-80%%), delay +%.1f%%, met=%v\n",
		r.Sensitivity.HighVthFraction*100, r.Sensitivity.LeakageSaving*100,
		r.Sensitivity.DelayPenalty*100, r.Sensitivity.TimingMet)
	fmt.Fprintf(w, "  slack-ordered (ablation): %.0f%% high-Vth, leakage -%.0f%%\n\n",
		r.SlackOrdered.HighVthFraction*100, r.SlackOrdered.LeakageSaving*100)
	return nil
}

func renderC6(w io.Writer, _ Options) error {
	r, err := experiments.RunResizeVsVdd(experiments.DefaultCircuitSetup())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "C6. Re-sizing vs multi-Vdd (same start netlist)\n")
	fmt.Fprintf(w, "  resize: size -%.0f%% → dynamic -%.0f%% (sublinearity %.2f — wire cap persists)\n",
		r.Resize.SizeReduction*100, r.Resize.DynamicSaving*100, r.Resize.Sublinearity)
	fmt.Fprintf(w, "  CVS:    %.0f%% assigned → dynamic -%.0f%% (quadratic Vdd leverage)\n",
		r.CVSOnSame.AssignedFraction*100, r.CVSOnSame.DynamicSaving*100)
	fmt.Fprintf(w, "  combined flow: total -%.0f%% (dyn -%.0f%%, leak -%.0f%%), met=%v\n",
		r.Combined.TotalSaving*100, r.Combined.DynamicSaving*100, r.Combined.LeakageSaving*100, r.Combined.TimingMet)
	fmt.Fprintf(w, "  resize-then-CVS: only %.0f%% of gates still tolerate Vdd,l (paper's ordering warning)\n\n",
		r.AssignedAfterResize*100)
	return nil
}

func renderC7(w io.Writer, _ Options) error {
	r, err := experiments.RunVddFloor()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "C7. Vdd floor under Pdyn ≥ 10×Pstatic (35 nm, constant-Pstatic policy)\n")
	fmt.Fprintf(w, "  floor: Vdd = %.2f V (paper ≈0.44 V), dynamic saving %.0f%% (paper 46%%)\n",
		r.Vdd, r.Savings*100)
	fmt.Fprintf(w, "  at 0.2 V: delay ×%.2f (paper <1.3×), Pdyn -%.0f%% (paper 89%%), Vth = %.0f mV\n\n",
		r.At02V.DelayNorm, (1-r.At02V.PdynNorm)*100, r.At02V.Vth*1e3)
	return nil
}

func renderC8(w io.Writer, _ Options) error {
	r, err := experiments.RunBumps()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "C8. ITRS bump plan at 35 nm\n")
	fmt.Fprintf(w, "  effective power-bump pitch: %.0f µm (paper: 356 µm); attainable: %.0f µm\n",
		r.EffectivePitchM*1e6, r.MinPitchM*1e6)
	fmt.Fprintf(w, "  required rail width: %.0f× Wmin under ITRS counts (paper >2000×, rails %s), %.0f× at min pitch (paper 16×)\n",
		r.ITRSWidthOverMin, feasStr(r.ITRSFeasible), r.MinWidthOverMin)
	fmt.Fprintf(w, "  bump current: %.0f A over %d Vdd bumps = %.2f A/bump vs %.2f A capability → need %d bumps\n",
		r.Current.SupplyCurrentA, r.Current.VddBumps, r.Current.PerBumpA, r.Current.CapabilityA, r.Current.RequiredBumps)
	fmt.Fprintf(w, "  solver check: 1-D ladder/analytic = %.3f (≈1); 2-D all-top-metal bound = %.1f×\n\n",
		r.LadderRatio, r.PessimisticRatio)
	return nil
}

func renderC9(w io.Writer, _ Options) error {
	r, err := experiments.RunTransients()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "C9. Sleep-mode wakeup transients and MCML (35 nm)\n")
	fmt.Fprintf(w, "  MTCMOS block: standby leakage -%.1f%%, active delay +%.1f%%\n",
		r.BlockStandbySavings*100, r.BlockDelayPenalty*100)
	fmt.Fprintf(w, "  unstaged wakeup of a %.0f A block: droop %.1f%% Vdd at min bump pitch vs %.1f%% under ITRS counts\n",
		r.BlockStepA, r.NoiseMinPitch.NoiseFraction*100, r.NoiseITRS.NoiseFraction*100)
	fmt.Fprintf(w, "  staging required for <10%% droop: %.1f ns (min pitch) vs %.1f ns (ITRS); max instant step %.0f A vs %.0f A\n",
		r.SafeRampMinPitchS*1e9, r.SafeRampITRSS*1e9, r.MaxInstantStepMinA, r.MaxInstantStepITRSA)
	fmt.Fprintf(w, "  MCML vs CMOS datapath gate (α=0.5): %.2f µW vs %.2f µW, crossover α*=%.2f, di/dt ratio %.3f\n\n",
		r.MCML.McmlPowerW*1e6, r.MCML.CmosPowerW*1e6, r.MCML.CrossoverActivity, r.MCML.CurrentRippleRatio)
	return nil
}

func renderC10(w io.Writer, _ Options) error {
	r, err := experiments.RunStackVth(70)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "C10. Intra-cell multi-Vth stacks (§3.3, %d nm 2-high NAND pull-down)\n", r.NodeNM)
	labels := []string{"all low Vth", "bottom high", "top high", "all high"}
	for i, a := range r.Assignments {
		fmt.Fprintf(w, "  %-12s leakage -%5.1f%%  delay +%5.1f%%\n", labels[i], a.LeakageSaving*100, a.DelayPenalty*100)
	}
	fmt.Fprintf(w, "  best within 10%% delay: %d high-Vth device(s), leakage -%.0f%%\n",
		r.Best.HighCount(), r.Best.LeakageSaving*100)
	fmt.Fprintf(w, "  stack effect: both-off leaks %.2f× a single off device; parking the idle state saves %.0f%%\n\n",
		r.StackFactor, r.ParkedSaving*100)
	return nil
}

func renderC11(w io.Writer, _ Options) error {
	r, err := experiments.RunStandby()
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   "C11. Standby-leakage techniques (§3.2.1), 180 nm vs 35 nm",
		Headers: []string{"technique", "standby@180", "standby@35", "active", "delay", "area", "scales?"},
	}
	for i, a := range r.At35 {
		b := r.At180[i]
		scal := "yes"
		if !a.Scalable {
			scal = "NO"
		}
		t.AddRow(a.Technique.String(),
			fmt.Sprintf("-%.1f%%", b.StandbyReduction*100),
			fmt.Sprintf("-%.1f%%", a.StandbyReduction*100),
			fmt.Sprintf("-%.1f%%", a.ActiveReduction*100),
			fmt.Sprintf("+%.1f%%", a.DelayPenalty*100),
			fmt.Sprintf("+%.1f%%", a.AreaOverhead*100),
			scal)
	}
	t.Notes = append(t.Notes,
		"paper: body-bias-controlled Vth \"does not scale well\"; dual-Vth is the only technique in current high-end MPUs",
		fmt.Sprintf("non-scalable at 35 nm: %v", r.NonScalableAt35()))
	_, err = t.WriteTo(w)
	return err
}

func renderC12(w io.Writer, _ Options) error {
	r, err := experiments.RunSwingStudy(50)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "C12. Tolerable-swing study (the §2.2 \"further study\" — %d nm global route, SNR ≥ 2)\n", r.NodeNM)
	print := func(name string, st signaling.SwingStudy) {
		if !st.Feasible {
			fmt.Fprintf(w, "  %-28s no swing closes (shielding insufficient — the paper's caveat)\n", name)
			return
		}
		alpha := "fails"
		if st.AlphaSwingOK {
			alpha = "closes"
		}
		fmt.Fprintf(w, "  %-28s min swing %.1f%% of Vdd (energy ×%.2f); Alpha's 10%% swing %s\n",
			name, st.MinSwingFrac*100, st.EnergyRatioAtMin, alpha)
	}
	print("differential, shielded", r.DiffShielded)
	print("differential, unshielded", r.DiffBare)
	print("single-ended, shielded", r.SEShielded)
	print("single-ended, unshielded", r.SEBare)
	fmt.Fprintln(w)
	return nil
}

func renderC13(w io.Writer, _ Options) error {
	r, err := experiments.RunBusPlan(50)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "C13. Signaling-primitive planner (conclusion #2's EDA tool, %d nm, 48 global routes)\n", r.NodeNM)
	fmt.Fprintf(w, "  primitive mix: %d repeated CMOS, %d low-swing, %d differential low-swing\n",
		r.Repeated, r.LowSwing, r.Differential)
	fmt.Fprintf(w, "  power: %.2f mW vs %.2f mW all-repeated baseline (-%.0f%%), %.0f routing tracks\n\n",
		r.Plan.TotalPowerW*1e3, r.Plan.BaselinePowerW*1e3, r.Plan.Saving*100, r.Plan.TotalTracks)
	return nil
}

func feasStr(ok bool) string {
	if ok {
		return "feasible"
	}
	return "INFEASIBLE on-die"
}
