// Package repro is the artifact registry of the reproduction harness: one
// entry per table, figure, and quantified claim of the paper. Each artifact
// is split into two layers: Compute produces a typed, JSON-serializable
// result (internal/result) from the model stack, and the encoders of
// internal/render turn that result into terminal text, JSON, or CSV.
// Compute is pure and deterministic, so results are memoized in a
// process-wide cache (artifact ID + compute-options hash) — repeated
// renders in one process, the shape a serving layer produces, compute each
// artifact once. Artifacts are independent of each other and safe to run
// concurrently on the runner pool with deterministic, serially-identical
// output. cmd/nanorepro is a thin flag-parsing shell around this package;
// bench_test.go drives the same registry for the full-report speedup
// measurement.
package repro

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"nanometer/internal/device"
	"nanometer/internal/powergrid"
	"nanometer/internal/render"
	"nanometer/internal/result"
	"nanometer/internal/runner"
	"nanometer/internal/scenario"
)

// Options configures a run. The zero value reproduces the plain
// `nanorepro` output: compact figure dumps, no CSVs, cached compute.
type Options struct {
	// CSVDir, when non-empty, is the directory figure CSVs are written to
	// by the text encoder.
	CSVDir string
	// Plot renders terminal plots instead of compact figure summaries.
	Plot bool
	// Verbose appends each claim's paper checks to the text output.
	Verbose bool
	// NoCache bypasses the process-wide result cache, forcing every
	// render to recompute (benchmarks, freshness-critical callers).
	NoCache bool
	// CacheOnly makes ComputeCached answer from the in-memory cache or
	// the result store only, returning ErrUncomputed instead of running
	// the models. The serving layer's peer mode probes with this before
	// deciding whether to forward a request to the key's owner replica.
	// A cache-policy toggle like NoCache: it never reaches the models and
	// must stay out of the compute key.
	CacheOnly bool
	// MeshN overrides the n×n power-grid validation mesh of the C8
	// artifact (0 = the experiments default, 41). A compute-side option:
	// it reaches the models, so it participates in the cache key. Callers
	// accepting MeshN from users (flags, query strings) must run it
	// through ValidateMeshN first.
	MeshN int
	// Scenario selects the roadmap the models compute against. nil means
	// the base ITRS-2000 table and reproduces the seed output byte for
	// byte. A compute-side option: every artifact's numbers depend on the
	// roadmap, so the scenario's content digest participates in the cache
	// key (and through it the ETags, result store, and peer ownership).
	// Scenarios from untrusted input must come through scenario.Parse,
	// which validates; a sweep-bearing scenario should be expanded with
	// Variants() before it reaches Options.
	Scenario *scenario.Scenario
}

// ValidateMeshN checks a user-supplied mesh dimension at the trust
// boundary: both the CLI flag and the daemon's query parameter funnel
// through here, so -mesh-n -5 (or 1, 2, or a memory-exhausting 10⁶) is
// rejected with one clear message instead of flowing into solver setup.
// 0 is valid and selects the experiments default. powergrid enforces the
// same limits itself for programmatic callers.
func ValidateMeshN(n int) error {
	if n == 0 {
		return nil
	}
	if n < powergrid.MinMeshN {
		return fmt.Errorf("repro: mesh-n %d too small: an IR-drop mesh needs at least %d nodes per side (0 selects the default)", n, powergrid.MinMeshN)
	}
	if n > powergrid.MaxMeshN {
		return fmt.Errorf("repro: mesh-n %d too large: capped at %d nodes per side (%d² unknowns) to bound solver memory", n, powergrid.MaxMeshN, powergrid.MaxMeshN)
	}
	return nil
}

// Validate checks an Options value assembled from untrusted input.
func (o Options) Validate() error { return ValidateMeshN(o.MeshN) }

// lab resolves the roadmap the options select: the base laboratory for the
// nil scenario, the scenario's resolved laboratory otherwise. Resolution is
// memoized on the scenario, so the 20+ artifacts of one run share a single
// table build and calibration cache.
func (o Options) lab() (*device.Lab, error) { return o.Scenario.Resolve() }

// Artifact is one reproducible unit: a stable ID (t1, f3, c8, ...), a title
// for listings, and a compute function producing its typed result.
type Artifact struct {
	ID      string
	Title   string
	Compute func(opts Options) (*result.Result, error)
}

// compute runs the artifact's compute function and stamps the registry
// identity onto the result, so compute functions stay ignorant of their
// registration. Under a scenario it also stamps the scenario name and
// swaps the paper's quoted-value checks for the scenario's expectations.
func (a Artifact) compute(opts Options) (*result.Result, error) {
	res, err := a.Compute(opts)
	if err != nil {
		return nil, err
	}
	res.ID, res.Title = a.ID, a.Title
	if opts.Scenario != nil {
		res.Scenario = opts.Scenario.Name
		if err := applyScenarioChecks(res, opts.Scenario); err != nil {
			return nil, err
		}
	}
	if err := res.Validate(); err != nil {
		return nil, err
	}
	return res, nil
}

// applyScenarioChecks relaxes a result computed under a non-base roadmap:
// the paper's quoted numbers describe the ITRS-2000 table, so their checks
// are dropped, and the scenario's own expectations (scenario-appropriate
// values with their own tolerances) are installed in their place. An
// expectation naming a finding the artifact doesn't produce is an error —
// a typo in an expectation must fail loudly, not silently always-pass.
func applyScenarioChecks(res *result.Result, s *scenario.Scenario) error {
	expect := s.ExpectFor(res.ID)
	matched := make([]bool, len(expect))
	for _, it := range res.Items {
		if it.Claim == nil {
			continue
		}
		for i := range it.Claim.Findings {
			f := &it.Claim.Findings[i]
			f.Check = nil
			for j, e := range expect {
				if f.Key == e.Check {
					f.Check = result.NewCheck(f.Value, e.Value, e.RelTol)
					matched[j] = true
				}
			}
		}
	}
	for j, e := range expect {
		if !matched[j] {
			return fmt.Errorf("repro: scenario %s expects %s/%s, but artifact %s has no such finding",
				s.Name, e.Artifact, e.Check, res.ID)
		}
	}
	return nil
}

// Render computes the artifact (through the cache unless opts.NoCache) and
// encodes it as terminal text — the legacy single-call path.
func (a Artifact) Render(w io.Writer, opts Options) error {
	res, err := a.ComputeCached(opts)
	if err != nil {
		return err
	}
	return textEncoder(opts).Encode(w, res)
}

func textEncoder(opts Options) render.Text {
	return render.Text{CSVDir: opts.CSVDir, Plot: opts.Plot, Verbose: opts.Verbose}
}

// Encoder turns one typed artifact result into bytes. internal/render
// provides the implementations (Text, JSON, CSV).
type Encoder interface {
	Encode(w io.Writer, res *result.Result) error
}

// Artifacts returns the full registry in canonical emission order.
func Artifacts() []Artifact {
	return []Artifact{
		{"t1", "Table 1: published NMOS devices vs ITRS projections", computeTable1},
		{"t2", "Table 2: analytical Ioff scaling", computeTable2},
		{"f1", "Figure 1: Pstatic/Pdynamic vs switching activity", computeFigure1},
		{"f2", "Figure 2: dual-Vth scaling", computeFigure2},
		{"f3", "Figure 3: delay vs Vdd under Vth policies", computeFigure3},
		{"f4", "Figure 4: Pdynamic/Pstatic vs Vdd", computeFigure4},
		{"f5", "Figure 5: IR-drop scaling", computeFigure5},
		{"c1", "dynamic thermal management (§2.1)", computeC1},
		{"c2", "global signaling census and low-swing alternative (§2.2)", computeC2},
		{"c3", "library optimization at fixed timing (§2.3)", computeC3},
		{"c4", "clustered voltage scaling (§2.4)", computeC4},
		{"c5", "dual-Vth assignment (§3.2.2)", computeC5},
		{"c6", "re-sizing vs multi-Vdd (§3.3)", computeC6},
		{"c7", "Vdd floor under the ITRS static constraint (§3.3)", computeC7},
		{"c8", "ITRS bump plan at 35 nm (§4)", computeC8},
		{"c9", "wakeup transients and MCML (§4)", computeC9},
		{"c10", "intra-cell multi-Vth stacks (§3.3 close)", computeC10},
		{"c11", "standby-technique comparison and scalability (§3.2.1)", computeC11},
		{"c12", "tolerable-swing study (the §2.2 open question)", computeC12},
		{"c13", "signaling-primitive planner (conclusion #2's EDA tool)", computeC13},
	}
}

// Select filters the registry by artifact ID (case-insensitive; empty or nil
// selects everything) preserving canonical order, and rejects unknown IDs so
// a typo in -only fails loudly instead of silently skipping.
func Select(ids []string) ([]Artifact, error) {
	all := Artifacts()
	want := map[string]bool{}
	for _, id := range ids {
		id = strings.TrimSpace(strings.ToLower(id))
		if id != "" {
			want[id] = true
		}
	}
	if len(want) == 0 {
		return all, nil
	}
	var sel []Artifact
	for _, a := range all {
		if want[a.ID] {
			sel = append(sel, a)
			delete(want, a.ID)
		}
	}
	if len(want) > 0 {
		var unknown []string
		for id := range want {
			unknown = append(unknown, id)
		}
		// Sorted so the error message is deterministic — callers (CLI, HTTP
		// error bodies, tests) see one stable spelling of the same mistake.
		sort.Strings(unknown)
		return nil, fmt.Errorf("repro: unknown artifact id(s) %v (use -list)", unknown)
	}
	return sel, nil
}

// Jobs adapts artifacts to runner jobs rendering the legacy text report
// with opts bound in.
func Jobs(arts []Artifact, opts Options) []runner.Job {
	return EncodeJobs(arts, opts, textEncoder(opts))
}

// EncodeJobs adapts artifacts to runner jobs that compute (through the
// cache unless opts.NoCache) and encode with enc.
func EncodeJobs(arts []Artifact, opts Options, enc Encoder) []runner.Job {
	jobs := make([]runner.Job, len(arts))
	for i, a := range arts {
		a := a
		jobs[i] = runner.Job{ID: a.ID, Run: func(w io.Writer) error {
			res, err := a.ComputeCached(opts)
			if err != nil {
				return err
			}
			return enc.Encode(w, res)
		}}
	}
	return jobs
}

// ComputeAll computes the artifacts on the pool without encoding anything,
// returning the results in registry order. A failed artifact leaves a nil
// slot; the per-artifact failures are aggregated in the returned error and
// the healthy results are still usable.
func ComputeAll(pool runner.Pool, arts []Artifact, opts Options) ([]*result.Result, error) {
	// Compat wrapper for the CLI path, which runs to completion by design;
	// cancelable callers use ComputeAllCtx.
	//lint:allow ctxflow uncancelable CLI compat shim over ComputeAllCtx
	return ComputeAllCtx(context.Background(), pool, arts, opts)
}

// ComputeAllCtx is ComputeAll with cancellation: artifacts that have not
// started when ctx is canceled are skipped (their slots stay nil and the
// aggregate error carries ctx's error per skipped artifact). In-flight
// computes finish normally so the cache is never poisoned by a partial
// result.
func ComputeAllCtx(ctx context.Context, pool runner.Pool, arts []Artifact, opts Options) ([]*result.Result, error) {
	out := make([]*result.Result, len(arts))
	jobs := make([]runner.Job, len(arts))
	for i, a := range arts {
		i, a := i, a
		jobs[i] = runner.Job{ID: a.ID, Run: func(io.Writer) error {
			res, err := a.ComputeCached(opts)
			out[i] = res
			return err
		}}
	}
	results, _ := pool.RunToContext(ctx, nil, jobs)
	return out, runner.Errs(results)
}
