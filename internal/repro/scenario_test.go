package repro

import (
	"path/filepath"
	"testing"

	"nanometer/internal/result"
	"nanometer/internal/scenario"
)

// TestScenarioComputeKeys pins the cache-key contract of the scenario
// engine: the nil scenario hashes exactly as the pre-scenario engine did
// (so every ETag, store file, and peer-ownership hash survives the
// refactor), and any content difference — not just a name difference —
// separates keys.
func TestScenarioComputeKeys(t *testing.T) {
	base := Options{}.computeKey()
	a := Options{Scenario: scenario.MustParse(`{"name":"a","nodes":[{"node_nm":70,"vdd_v":1.0}]}`)}
	b := Options{Scenario: scenario.MustParse(`{"name":"a","nodes":[{"node_nm":70,"vdd_v":1.1}]}`)}
	keys := map[string]string{"nil": base, "a@1.0": a.computeKey(), "a@1.1": b.computeKey()}
	seen := map[string]string{}
	for label, k := range keys {
		if prev, dup := seen[k]; dup {
			t.Errorf("options %s and %s share compute key %s", label, prev, k)
		}
		seen[k] = label
	}
	// Same scenario content, distinct *Scenario values: the key must depend
	// on content, not identity, or replicas could never share results.
	a2 := Options{Scenario: scenario.MustParse(`{"name":"a","nodes":[{"node_nm":70,"vdd_v":1.0}]}`)}
	if a.computeKey() != a2.computeKey() {
		t.Error("equal scenario documents produced different compute keys")
	}
}

// findClaim returns the named finding from the result's claim items.
func findClaim(t *testing.T, res *result.Result, key string) result.Finding {
	t.Helper()
	for _, it := range res.Items {
		if it.Claim == nil {
			continue
		}
		if f, ok := it.Claim.Find(key); ok {
			return f
		}
	}
	t.Fatalf("%s: no claim finding %q", res.ID, key)
	return result.Finding{}
}

// TestCommittedScenarios is the ground-truth gate for the files under
// scenarios/: each must load, resolve into a laboratory, compute real
// artifacts with its name stamped on every result, pass every one of its
// own expectations, and hit the compute cache on repeat. The two committed
// scenarios must also disagree observably — the leakage corner heats the
// 50 nm die, the extension set does not.
func TestCommittedScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("computes real artifacts; run without -short")
	}
	paths, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 2 {
		t.Fatalf("expected at least 2 committed scenarios, found %d", len(paths))
	}
	virusTemp := map[string]float64{}
	for _, path := range paths {
		s, err := scenario.Load(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if _, err := s.Resolve(); err != nil {
			t.Fatalf("%s: resolve: %v", path, err)
		}
		if len(s.Expect) == 0 {
			t.Fatalf("%s: committed scenarios must carry expectations", path)
		}
		opts := Options{Scenario: s}
		ids := map[string]bool{}
		for _, e := range s.Expect {
			ids[e.Artifact] = true
		}
		for id := range ids {
			arts, err := Select([]string{id})
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			res, err := arts[0].ComputeCached(opts)
			if err != nil {
				t.Fatalf("%s: compute %s: %v", s.Name, id, err)
			}
			if res.Scenario != s.Name {
				t.Fatalf("%s: result %s stamped scenario %q", s.Name, id, res.Scenario)
			}
			// Scenario expectations replaced the paper checks; all must hold.
			for _, it := range res.Items {
				if it.Claim == nil {
					continue
				}
				for _, f := range it.Claim.FailedChecks() {
					t.Errorf("%s: %s/%s = %g fails its scenario check", s.Name, id, f.Key, f.Value)
				}
			}
			again, err := arts[0].ComputeCached(opts)
			if err != nil {
				t.Fatalf("%s: recompute %s: %v", s.Name, id, err)
			}
			if again != res {
				t.Errorf("%s: repeat compute of %s missed the cache", s.Name, id)
			}
			if id == "c1" {
				virusTemp[s.Name] = findClaim(t, res, "virus_peak_temp_c").Value
			}
		}
	}
	if len(virusTemp) >= 2 {
		seen := map[float64]string{}
		for name, v := range virusTemp {
			if prev, dup := seen[v]; dup {
				t.Errorf("scenarios %s and %s produce identical c1 virus peak temp %g — they must be observably distinct", name, prev, v)
			}
			seen[v] = name
		}
	}
}
