package repro

import (
	"io"
	"testing"
)

func mustOne(tb testing.TB, id string) Artifact {
	tb.Helper()
	arts, err := Select([]string{id})
	if err != nil {
		tb.Fatal(err)
	}
	return arts[0]
}

// TestComputeCachedReturnsSameResult: repeated computes of one artifact in
// one process share a single result (pointer identity proves the model
// stack ran once), while NoCache forces a fresh computation.
func TestComputeCachedReturnsSameResult(t *testing.T) {
	resetCache()
	a := mustOne(t, "t2")
	r1, err := a.ComputeCached(Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.ComputeCached(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("second ComputeCached recomputed instead of serving the cache")
	}
	// Encode-only options must share the compute entry.
	r3, err := a.ComputeCached(Options{Plot: true, Verbose: true, CSVDir: "zzz"})
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r3 {
		t.Fatal("encode-only options must not fork the compute cache")
	}
	r4, err := a.ComputeCached(Options{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r4 {
		t.Fatal("NoCache must bypass the cache")
	}
}

// TestConcurrentRendersShareOneCompute: many concurrent renders of the same
// artifact race into the once-cell and all observe the same result.
func TestConcurrentRendersShareOneCompute(t *testing.T) {
	resetCache()
	a := mustOne(t, "f2")
	const n = 16
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() { done <- a.Render(io.Discard, Options{}) }()
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	r1, err := a.ComputeCached(Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := a.ComputeCached(Options{})
	if r1 != r2 {
		t.Fatal("cache lost the entry after concurrent renders")
	}
}

// BenchmarkArtifactCache demonstrates the warm-cache render path: the first
// render pays the full model cost, every later render of the same artifact
// serves the memoized result and only pays for encoding (~0 model work,
// visible as the allocation gap between cold and warm).
func BenchmarkArtifactCache(b *testing.B) {
	a := mustOne(b, "t2")
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			resetCache()
			if err := a.Render(io.Discard, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		resetCache()
		if err := a.Render(io.Discard, Options{}); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := a.Render(io.Discard, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-compute-only", func(b *testing.B) {
		resetCache()
		if _, err := a.ComputeCached(Options{}); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := a.ComputeCached(Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
