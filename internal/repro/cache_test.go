package repro

import (
	"io"
	"sync"
	"testing"

	"nanometer/internal/result"
)

func mustOne(tb testing.TB, id string) Artifact {
	tb.Helper()
	arts, err := Select([]string{id})
	if err != nil {
		tb.Fatal(err)
	}
	return arts[0]
}

// TestComputeCachedReturnsSameResult: repeated computes of one artifact in
// one process share a single result (pointer identity proves the model
// stack ran once), while NoCache forces a fresh computation.
func TestComputeCachedReturnsSameResult(t *testing.T) {
	ResetCache()
	a := mustOne(t, "t2")
	r1, err := a.ComputeCached(Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.ComputeCached(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("second ComputeCached recomputed instead of serving the cache")
	}
	// Encode-only options must share the compute entry.
	r3, err := a.ComputeCached(Options{Plot: true, Verbose: true, CSVDir: "zzz"})
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r3 {
		t.Fatal("encode-only options must not fork the compute cache")
	}
	r4, err := a.ComputeCached(Options{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r4 {
		t.Fatal("NoCache must bypass the cache")
	}
}

// TestConcurrentRendersShareOneCompute: many concurrent renders of the same
// artifact race into the once-cell and all observe the same result.
func TestConcurrentRendersShareOneCompute(t *testing.T) {
	ResetCache()
	a := mustOne(t, "f2")
	const n = 16
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() { done <- a.Render(io.Discard, Options{}) }()
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	r1, err := a.ComputeCached(Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := a.ComputeCached(Options{})
	if r1 != r2 {
		t.Fatal("cache lost the entry after concurrent renders")
	}
}

// TestResetCacheUnderLoad: flushing the cache while readers are mid-flight
// must be race-free (the daemon's flush endpoint calls this on a live
// server). Run under -race this test fails loudly against the old
// `cache = new(sync.Map)` reassignment.
func TestResetCacheUnderLoad(t *testing.T) {
	ResetCache()
	a := mustOne(t, "t2")
	const readers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := a.ComputeCached(Options{}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		ResetCache()
	}
	close(stop)
	wg.Wait()
	// The cache must still work after the churn.
	r1, err := a.ComputeCached(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2, _ := a.ComputeCached(Options{}); r1 != r2 {
		t.Fatal("cache broken after reset-under-load")
	}
}

// TestCacheEntryBound: distinct compute keys past MaxCacheEntries compute
// uncached instead of growing the cache — the defense against hostile
// mesh-n scans through the serving layer.
func TestCacheEntryBound(t *testing.T) {
	ResetCache()
	defer ResetCache()
	calls := 0
	a := Artifact{ID: "boundprobe", Title: "bound probe", Compute: func(Options) (*result.Result, error) {
		calls++
		r := &result.Result{}
		r.AddTable(&result.Table{Title: "x", Headers: []string{"h"}, Rows: [][]string{{"v"}}})
		return r, nil
	}}
	// Fill the cache with distinct valid mesh sizes (odd, ≥ 5).
	for i := 0; i < MaxCacheEntries; i++ {
		if _, err := a.ComputeCached(Options{MeshN: 5 + 2*i}); err != nil {
			t.Fatal(err)
		}
	}
	st := ReadCacheStats()
	if st.Entries != MaxCacheEntries {
		t.Fatalf("expected %d entries, got %d", MaxCacheEntries, st.Entries)
	}
	// The next distinct key must bypass, not grow the cache...
	before := calls
	n := 5 + 2*MaxCacheEntries
	for i := 0; i < 3; i++ {
		if _, err := a.ComputeCached(Options{MeshN: n}); err != nil {
			t.Fatal(err)
		}
	}
	if calls != before+3 {
		t.Errorf("bypassed keys should recompute every call: %d computes for 3 calls", calls-before)
	}
	if got := ReadCacheStats().Entries; got != MaxCacheEntries {
		t.Errorf("cache grew past the bound: %d entries", got)
	}
	// ...while existing entries still hit.
	before = calls
	if _, err := a.ComputeCached(Options{MeshN: 5}); err != nil {
		t.Fatal(err)
	}
	if calls != before {
		t.Error("existing entry recomputed while cache full")
	}
	// Flushing restores admission.
	ResetCache()
	if _, err := a.ComputeCached(Options{MeshN: n}); err != nil {
		t.Fatal(err)
	}
	if got := ReadCacheStats().Entries; got != 1 {
		t.Errorf("after flush expected 1 entry, got %d", got)
	}
}

// TestCacheStatsCounts: hits, misses, and bypasses move as documented and
// survive a flush (they are scrape-side monotonic counters).
func TestCacheStatsCounts(t *testing.T) {
	ResetCache()
	a := mustOne(t, "t2")
	s0 := ReadCacheStats()
	if _, err := a.ComputeCached(Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ComputeCached(Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ComputeCached(Options{NoCache: true}); err != nil {
		t.Fatal(err)
	}
	s1 := ReadCacheStats()
	if s1.Misses-s0.Misses != 1 || s1.Hits-s0.Hits != 1 || s1.Bypassed-s0.Bypassed != 1 {
		t.Errorf("stats delta hits=%d misses=%d bypassed=%d, want 1/1/1",
			s1.Hits-s0.Hits, s1.Misses-s0.Misses, s1.Bypassed-s0.Bypassed)
	}
	if s1.Entries != 1 {
		t.Errorf("entries = %d, want 1", s1.Entries)
	}
	ResetCache()
	s2 := ReadCacheStats()
	if s2.Hits != s1.Hits || s2.Misses != s1.Misses {
		t.Error("flush must not reset cumulative counters")
	}
	if s2.Entries != 0 {
		t.Errorf("entries after flush = %d, want 0", s2.Entries)
	}
}

// BenchmarkArtifactCache demonstrates the warm-cache render path: the first
// render pays the full model cost, every later render of the same artifact
// serves the memoized result and only pays for encoding (~0 model work,
// visible as the allocation gap between cold and warm).
func BenchmarkArtifactCache(b *testing.B) {
	a := mustOne(b, "t2")
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ResetCache()
			if err := a.Render(io.Discard, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		ResetCache()
		if err := a.Render(io.Discard, Options{}); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := a.Render(io.Discard, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-compute-only", func(b *testing.B) {
		ResetCache()
		if _, err := a.ComputeCached(Options{}); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := a.ComputeCached(Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
