package repro

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"nanometer/internal/render"
	"nanometer/internal/result"
	"nanometer/internal/runner"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/report.golden from the current engine")

// TestGoldenFullReport pins the complete default text report byte for byte
// against testdata/report.golden. The golden file was committed from the
// pre-refactor engine, so this test is the contract that the compute/encode
// split changes no output byte. It renders at two worker counts so the pin
// holds for any -jobs value.
func TestGoldenFullReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full report render is slow; run without -short")
	}
	render := func(workers int) []byte {
		var buf bytes.Buffer
		results, err := (runner.Pool{Workers: workers}).RunTo(&buf, Jobs(Artifacts(), Options{}))
		if err != nil {
			t.Fatal(err)
		}
		if err := runner.Errs(results); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	got := render(1)
	path := filepath.Join("testdata", "report.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -args -update): %v", err)
	}
	compareGolden(t, "jobs=1", got, want)
	compareGolden(t, "jobs=8", render(8), want)
}

// TestGoldenJSONReport pins the default `-format json` document byte for
// byte: the full report marshaled with two-space indent, exactly as
// cmd/nanorepro emits it. With the scenario engine in place, the nil
// scenario must add no field ("scenario" is omitempty) and change no value.
func TestGoldenJSONReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full report compute is slow; run without -short")
	}
	renderJSON := func(workers int) []byte {
		results, err := ComputeAll(runner.Pool{Workers: workers}, Artifacts(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		rep := &result.Report{}
		for _, r := range results {
			rep.Artifacts = append(rep.Artifacts, r)
		}
		var buf bytes.Buffer
		if err := (render.JSON{Indent: "  "}).EncodeReport(&buf, rep); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	got := renderJSON(1)
	path := filepath.Join("testdata", "report.golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -args -update): %v", err)
	}
	compareGolden(t, "json jobs=1", got, want)
	compareGolden(t, "json jobs=8", renderJSON(8), want)
}

// TestGoldenCSVReport pins the default `-format csv` stream byte for byte
// at two worker counts.
func TestGoldenCSVReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full report compute is slow; run without -short")
	}
	renderCSV := func(workers int) []byte {
		var buf bytes.Buffer
		results, err := (runner.Pool{Workers: workers}).RunTo(&buf, EncodeJobs(Artifacts(), Options{}, render.CSV{}))
		if err != nil {
			t.Fatal(err)
		}
		if err := runner.Errs(results); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	got := renderCSV(1)
	path := filepath.Join("testdata", "report.golden.csv")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -args -update): %v", err)
	}
	compareGolden(t, "csv jobs=1", got, want)
	compareGolden(t, "csv jobs=8", renderCSV(8), want)
}

// compareGolden reports the first differing line, not just "differs" — the
// report is ~100s of lines and the offending artifact should be nameable
// from the failure alone.
func compareGolden(t *testing.T, label string, got, want []byte) {
	t.Helper()
	if bytes.Equal(got, want) {
		return
	}
	gl := bytes.Split(got, []byte("\n"))
	wl := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			t.Fatalf("%s: report diverges from golden at line %d:\n  got:  %q\n  want: %q", label, i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("%s: report length differs from golden: %d vs %d lines (%d vs %d bytes)", label, len(gl), len(wl), len(got), len(want))
}
