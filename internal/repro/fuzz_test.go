package repro

import (
	"testing"

	"nanometer/internal/itrs"
	"nanometer/internal/powergrid"
)

// FuzzValidateMeshN fuzzes the one integer every trust boundary (CLI
// flag, daemon query string) funnels through. Properties: the accept set
// is exactly {0} ∪ [MinMeshN, MaxMeshN], rejections carry a message, and
// the validator never disagrees with the model layer — any n it accepts
// must be accepted by powergrid.NewMesh too, so a validated request can
// never fail later with a bounds error from the solver.
func FuzzValidateMeshN(f *testing.F) {
	for _, n := range []int{0, 1, -1, 4, 5, 6, 41, 255, 1022, 1023, 1024, -1 << 62, 1 << 62} {
		f.Add(n)
	}
	node := itrs.MustNode(50)
	spec := powergrid.DefaultSpec(node, node.EffectiveBumpPitchM())
	f.Fuzz(func(t *testing.T, n int) {
		err := ValidateMeshN(n)
		inBounds := n == 0 || (n >= powergrid.MinMeshN && n <= powergrid.MaxMeshN)
		if inBounds && err != nil {
			t.Fatalf("ValidateMeshN(%d) = %v, want accept", n, err)
		}
		if !inBounds {
			if err == nil {
				t.Fatalf("ValidateMeshN(%d) accepted out-of-bounds dimension", n)
			}
			if err.Error() == "" {
				t.Fatalf("ValidateMeshN(%d) rejected with an empty message", n)
			}
			return
		}
		if n == 0 {
			return // 0 selects the default; NewMesh never sees it
		}
		// NewMesh only derives scalars here (the solve is separate), so
		// exercising the real model layer stays cheap even at n = 1023.
		if _, err := powergrid.NewMesh(spec, 1e-6, 1e-4, n); err != nil {
			t.Fatalf("ValidateMeshN accepted %d but powergrid.NewMesh rejected it: %v", n, err)
		}
	})
}
