package repro

import (
	"hash/fnv"
	"io"
	"strconv"
	"sync"
	"sync/atomic"

	"nanometer/internal/result"
)

// cacheState is one generation of the process-wide result cache: the map of
// once-cells plus the entry count that enforces the size bound. Reset swaps
// the whole generation atomically, so readers racing a flush either finish
// against the old generation or start fresh on the new one — never observe
// a torn map.
type cacheState struct {
	m sync.Map // string key → *computeCell
	n atomic.Int64
}

// cache memoizes computed artifact results for the life of the process,
// keyed by artifact ID + compute-options hash. Entries are once-cells (the
// device.ForNode pattern): concurrent renders of the same artifact share
// one computation, and every consumer — text, JSON, CSV encoders, the HTTP
// serving layer — reads the same immutable result.
var cache atomic.Pointer[cacheState]

func init() { cache.Store(new(cacheState)) }

// MaxCacheEntries bounds the number of distinct (artifact, compute-options)
// entries the cache will hold. The registry has ~20 artifacts and a handful
// of legitimate mesh sizes, so the bound is generous — it exists because
// the serving layer feeds untrusted query strings into Options, and a scan
// over hostile mesh-n values must not grow the cache without limit. Past
// the bound, new keys compute uncached (correct, just unmemoized) and are
// counted in CacheStats.Bypassed.
const MaxCacheEntries = 256

// Cumulative cache telemetry (monotonic across flushes, as scrape-friendly
// counters must be). hits = served from an existing entry, misses = created
// a new entry and computed, bypassed = computed uncached because the bound
// was reached or NoCache was set.
var cacheHits, cacheMisses, cacheBypassed atomic.Uint64

// CacheStats is a point-in-time snapshot of the compute cache counters.
type CacheStats struct {
	// Hits and Misses count ComputeCached calls served from / inserted
	// into the cache; Bypassed counts calls that computed uncached
	// (NoCache or entry bound reached). All three are cumulative for the
	// process, surviving ResetCache.
	Hits, Misses, Bypassed uint64
	// Entries is the current number of memoized results.
	Entries int
}

// ReadCacheStats snapshots the cache counters for /metrics.
func ReadCacheStats() CacheStats {
	return CacheStats{
		Hits:     cacheHits.Load(),
		Misses:   cacheMisses.Load(),
		Bypassed: cacheBypassed.Load(),
		Entries:  int(cache.Load().n.Load()),
	}
}

type computeCell struct {
	once sync.Once
	res  *result.Result
	err  error
}

// ComputeCached returns the artifact's typed result, computing it at most
// once per process for a given compute-options hash. Results are shared and
// must be treated as immutable by callers. opts.NoCache bypasses the cache
// entirely.
func (a Artifact) ComputeCached(opts Options) (*result.Result, error) {
	if opts.NoCache {
		cacheBypassed.Add(1)
		return a.compute(opts)
	}
	st := cache.Load()
	key := a.ID + "\x00" + opts.computeKey()
	e, ok := st.m.Load(key)
	if !ok {
		// Admit a new entry only under the bound. The check-then-store is
		// approximate under contention (a burst of distinct keys can
		// overshoot by the number of racing goroutines), which is fine:
		// the bound defends against unbounded growth, not an exact count.
		if st.n.Load() >= MaxCacheEntries {
			cacheBypassed.Add(1)
			return a.compute(opts)
		}
		var loaded bool
		e, loaded = st.m.LoadOrStore(key, &computeCell{})
		if !loaded {
			st.n.Add(1)
		}
	}
	cell := e.(*computeCell)
	hit := true
	cell.once.Do(func() {
		hit = false
		cell.res, cell.err = a.compute(opts)
	})
	if hit {
		cacheHits.Add(1)
	} else {
		cacheMisses.Add(1)
	}
	return cell.res, cell.err
}

// computeKey hashes the options that reach the models. CSVDir, Plot,
// Verbose, and NoCache only affect encoding (or cache policy) and are
// deliberately excluded, so every encoding of one artifact shares a single
// cache entry. Any compute-side option (today: MeshN) must be written into
// this hash or the cache will serve stale results —
// TestComputeKeyCoversOptions enforces the classification by reflection,
// so adding a field to Options without teaching it to that test fails the
// suite.
func (o Options) computeKey() string {
	h := fnv.New64a()
	io.WriteString(h, "compute-v1")
	io.WriteString(h, "\x00mesh-n=")
	io.WriteString(h, strconv.Itoa(o.MeshN))
	return strconv.FormatUint(h.Sum64(), 16)
}

// CacheKey exposes the compute-options hash. The serving layer folds it
// into strong ETags: two requests whose options hash equal are guaranteed
// the same cache entry, hence byte-identical artifact data.
func (o Options) CacheKey() string { return o.computeKey() }

// ResetCache atomically drops every memoized result. Safe to call while
// computes are in flight: a reader that already holds the old generation
// finishes against it (and its result simply becomes unreachable); new
// calls start on the empty generation. The daemon's cache-flush endpoint
// and benchmarks use this; cumulative hit/miss counters are preserved.
func ResetCache() { cache.Store(new(cacheState)) }
