package repro

import (
	"errors"
	"hash/fnv"
	"io"
	"strconv"
	"sync"
	"sync/atomic"

	"nanometer/internal/result"
)

// cacheState is one generation of the process-wide result cache: the map of
// once-cells plus the entry count that enforces the size bound. Reset swaps
// the whole generation atomically, so readers racing a flush either finish
// against the old generation or start fresh on the new one — never observe
// a torn map.
type cacheState struct {
	m sync.Map // string key → *computeCell
	n atomic.Int64
}

// cache memoizes computed artifact results for the life of the process,
// keyed by artifact ID + compute-options hash. Entries are once-cells (the
// device.ForNode pattern): concurrent renders of the same artifact share
// one computation, and every consumer — text, JSON, CSV encoders, the HTTP
// serving layer — reads the same immutable result.
var cache atomic.Pointer[cacheState]

func init() { cache.Store(new(cacheState)) }

// MaxCacheEntries bounds the number of distinct (artifact, compute-options)
// entries the cache will hold. The registry has ~20 artifacts and a handful
// of legitimate mesh sizes, so the bound is generous — it exists because
// the serving layer feeds untrusted query strings into Options, and a scan
// over hostile mesh-n values must not grow the cache without limit. Past
// the bound, new keys compute uncached (correct, just unmemoized) and are
// counted in CacheStats.Bypassed.
const MaxCacheEntries = 256

// Cumulative cache telemetry (monotonic across flushes, as scrape-friendly
// counters must be). hits = served from an existing entry, misses = filled
// a new entry (from the result store or a fresh compute), bypassed =
// computed uncached because the bound was reached or NoCache was set.
// storeHits/storePuts track the second-level result store.
var cacheHits, cacheMisses, cacheBypassed, storeHits, storePuts atomic.Uint64

// CacheStats is a point-in-time snapshot of the compute cache counters.
type CacheStats struct {
	// Hits and Misses count ComputeCached calls served from / inserted
	// into the cache; Bypassed counts calls that computed uncached
	// (NoCache or entry bound reached). All three are cumulative for the
	// process, surviving ResetCache.
	Hits, Misses, Bypassed uint64
	// StoreHits counts results served from the second-level result store
	// instead of the solvers; StorePuts counts successful results
	// persisted into it. Both are zero when no store is configured.
	StoreHits, StorePuts uint64
	// Entries is the current number of memoized results.
	Entries int
}

// ReadCacheStats snapshots the cache counters for /metrics.
func ReadCacheStats() CacheStats {
	return CacheStats{
		Hits:      cacheHits.Load(),
		Misses:    cacheMisses.Load(),
		Bypassed:  cacheBypassed.Load(),
		StoreHits: storeHits.Load(),
		StorePuts: storePuts.Load(),
		Entries:   int(cache.Load().n.Load()),
	}
}

// ErrUncomputed is returned by ComputeCached for CacheOnly options when the
// result is in neither the in-memory cache nor the result store. It means
// "answering would require running the models", never that the artifact is
// broken — callers (the peer-forwarding layer) react by computing somewhere
// else or dropping CacheOnly.
var ErrUncomputed = errors.New("repro: result not cached")

// ResultStore is the optional second-level result cache behind the
// in-memory once-cells: a disk-backed (and typically replica-shared)
// mapping of compute key → result. Get returns a previously stored result
// or reports a miss; Put persists a freshly computed result. Both must be
// safe for concurrent use, and both are best-effort — a store failure must
// degrade to a miss / no-op, never an error, because the compute path can
// always fall back to solving. Error results are never stored: ComputeCached
// only calls Put with a successful compute, so a transient failure can
// never be replayed out of the store.
type ResultStore interface {
	Get(artifactID, computeKey string) (*result.Result, bool)
	Put(artifactID, computeKey string, res *result.Result)
}

// storeBox wraps the configured ResultStore so the atomic pointer swap
// stays type-stable regardless of the concrete store implementation.
type storeBox struct{ s ResultStore }

var resultStore atomic.Pointer[storeBox]

// SetResultStore installs (or, with nil, removes) the process-wide
// second-level result store consulted by ComputeCached on a memory miss.
func SetResultStore(s ResultStore) {
	if s == nil {
		resultStore.Store(nil)
		return
	}
	resultStore.Store(&storeBox{s: s})
}

func loadResultStore() ResultStore {
	b := resultStore.Load()
	if b == nil {
		return nil
	}
	return b.s
}

type computeCell struct {
	once sync.Once
	res  *result.Result
	err  error
}

// ComputeCached returns the artifact's typed result, computing it at most
// once per process for a given compute-options hash. Results are shared and
// must be treated as immutable by callers. opts.NoCache bypasses the cache
// entirely; opts.CacheOnly never computes (memory or store hit, else
// ErrUncomputed).
//
// A failed compute is NOT memoized: the dead cell is evicted (and the
// entry count released) as soon as the failure is observed, so concurrent
// callers share the one failure but the next caller recomputes. This is
// what keeps a transient error — a full disk, a cancelled dependency —
// from poisoning the key forever, and it is why the result store can trust
// that only successful results ever reach Put.
func (a Artifact) ComputeCached(opts Options) (*result.Result, error) {
	if opts.NoCache && !opts.CacheOnly {
		cacheBypassed.Add(1)
		return a.compute(opts)
	}
	st := cache.Load()
	key := a.ID + "\x00" + opts.computeKey()
	e, ok := st.m.Load(key)
	if !ok {
		if opts.CacheOnly {
			return a.cacheOnlyFill(st, key, opts)
		}
		// Admit a new entry only under the bound. The check-then-store is
		// approximate under contention (a burst of distinct keys can
		// overshoot by the number of racing goroutines), which is fine:
		// the bound defends against unbounded growth, not an exact count.
		if st.n.Load() >= MaxCacheEntries {
			// The store still answers past the bound (a restart-warmed
			// result is cheaper than a solve), but bypassed computes are
			// not persisted — a hostile key scan must not churn the disk
			// store the way it cannot grow the memory cache.
			if res, found := a.storeGet(opts); found {
				return res, nil
			}
			cacheBypassed.Add(1)
			return a.compute(opts)
		}
		var loaded bool
		e, loaded = st.m.LoadOrStore(key, &computeCell{})
		if !loaded {
			st.n.Add(1)
		}
	}
	cell := e.(*computeCell)
	hit := true
	cell.once.Do(func() {
		hit = false
		cell.res, cell.err = a.fill(opts)
	})
	if hit {
		cacheHits.Add(1)
	} else {
		cacheMisses.Add(1)
		if cell.err != nil {
			// Evict the dead cell so retries recompute. Only the goroutine
			// that ran the fill evicts, and CompareAndDelete refuses if the
			// generation was flushed meanwhile, so the count moves exactly
			// once per admitted-then-failed entry.
			if st.m.CompareAndDelete(key, e) {
				st.n.Add(-1)
			}
		}
	}
	return cell.res, cell.err
}

// fill produces the value of a fresh cache cell: the result store first
// (a restarted or sibling replica answers without solving), the models
// otherwise, persisting only successful computes.
func (a Artifact) fill(opts Options) (*result.Result, error) {
	if res, found := a.storeGet(opts); found {
		return res, nil
	}
	res, err := a.compute(opts)
	if err != nil {
		return nil, err
	}
	a.storePut(opts, res)
	return res, nil
}

// cacheOnlyFill answers a CacheOnly miss of the in-memory map: a store hit
// is installed as a regular cell (so later calls are memory hits) and
// returned; a store miss is ErrUncomputed. It never runs the models.
func (a Artifact) cacheOnlyFill(st *cacheState, key string, opts Options) (*result.Result, error) {
	res, found := a.storeGet(opts)
	if !found {
		return nil, ErrUncomputed
	}
	if st.n.Load() < MaxCacheEntries {
		e, loaded := st.m.LoadOrStore(key, &computeCell{})
		if !loaded {
			st.n.Add(1)
		}
		cell := e.(*computeCell)
		cell.once.Do(func() { cell.res, cell.err = res, nil })
		// A racing compute may own the cell; share its result if it
		// succeeded, otherwise fall back to the copy the store just gave
		// us (the racer's eviction logic owns the dead cell).
		if cell.err == nil {
			return cell.res, nil
		}
	}
	return res, nil
}

func (a Artifact) storeGet(opts Options) (*result.Result, bool) {
	s := loadResultStore()
	if s == nil {
		return nil, false
	}
	res, ok := s.Get(a.ID, opts.computeKey())
	if !ok {
		return nil, false
	}
	storeHits.Add(1)
	return res, true
}

func (a Artifact) storePut(opts Options, res *result.Result) {
	s := loadResultStore()
	if s == nil {
		return
	}
	s.Put(a.ID, opts.computeKey(), res)
	storePuts.Add(1)
}

// computeKey hashes the options that reach the models. CSVDir, Plot,
// Verbose, NoCache, and CacheOnly only affect encoding (or cache policy)
// and are deliberately excluded, so every encoding of one artifact shares
// a single cache entry. Any compute-side option (today: MeshN and
// Scenario) must be written into this hash or the cache will serve stale
// results — TestComputeKeyCoversOptions enforces the classification by
// reflection, so adding a field to Options without teaching it to that
// test fails the suite.
//
// The nil scenario contributes nothing, so every pre-scenario cache key —
// and with it every ETag, result-store file, and peer-ownership hash — is
// unchanged. A non-nil scenario folds in the digest of its full canonical
// content: two scenarios differing in any override get distinct keys, and
// the same scenario document hashes identically across replicas.
func (o Options) computeKey() string {
	h := fnv.New64a()
	io.WriteString(h, "compute-v1")
	io.WriteString(h, "\x00mesh-n=")
	io.WriteString(h, strconv.Itoa(o.MeshN))
	if o.Scenario != nil {
		io.WriteString(h, "\x00scenario=")
		io.WriteString(h, o.Scenario.Key())
	}
	return strconv.FormatUint(h.Sum64(), 16)
}

// CacheKey exposes the compute-options hash. The serving layer folds it
// into strong ETags: two requests whose options hash equal are guaranteed
// the same cache entry, hence byte-identical artifact data. The result
// store files and the peer-ownership hash use the same key, which is what
// makes "equal ETag ⇒ equal bytes" hold across replicas too.
func (o Options) CacheKey() string { return o.computeKey() }

// ResetCache atomically drops every memoized result. Safe to call while
// computes are in flight: a reader that already holds the old generation
// finishes against it (and its result simply becomes unreachable); new
// calls start on the empty generation. The daemon's cache-flush endpoint
// and benchmarks use this; cumulative hit/miss counters are preserved, and
// the result store is untouched (it exists to survive exactly this).
func ResetCache() { cache.Store(new(cacheState)) }
