package repro

import (
	"hash/fnv"
	"io"
	"strconv"
	"sync"

	"nanometer/internal/result"
)

// cache memoizes computed artifact results for the life of the process,
// keyed by artifact ID + compute-options hash. Entries are once-cells (the
// device.ForNode pattern): concurrent renders of the same artifact share
// one computation, and every encoder — text, JSON, CSV, a future serving
// layer — reads the same immutable result.
var cache = new(sync.Map)

type computeCell struct {
	once sync.Once
	res  *result.Result
	err  error
}

// ComputeCached returns the artifact's typed result, computing it at most
// once per process for a given compute-options hash. Results are shared and
// must be treated as immutable by callers. opts.NoCache bypasses the cache
// entirely.
func (a Artifact) ComputeCached(opts Options) (*result.Result, error) {
	if opts.NoCache {
		return a.compute(opts)
	}
	key := a.ID + "\x00" + opts.computeKey()
	e, _ := cache.LoadOrStore(key, &computeCell{})
	cell := e.(*computeCell)
	cell.once.Do(func() {
		cell.res, cell.err = a.compute(opts)
	})
	return cell.res, cell.err
}

// computeKey hashes the options that reach the models. CSVDir, Plot,
// Verbose, and NoCache only affect encoding and are deliberately excluded,
// so every encoding of one artifact shares a single cache entry. Any
// compute-side option (today: MeshN) must be written into this hash or
// the cache will serve stale results.
func (o Options) computeKey() string {
	h := fnv.New64a()
	io.WriteString(h, "compute-v1")
	io.WriteString(h, "\x00mesh-n=")
	io.WriteString(h, strconv.Itoa(o.MeshN))
	return strconv.FormatUint(h.Sum64(), 16)
}

// resetCache drops every memoized result (tests and benchmarks only).
func resetCache() { cache = new(sync.Map) }
