package repro

// Every Options field must be explicitly classified. computeSide fields
// reach the models and MUST be hashed by computeKey; encodeOnly fields
// affect encoding or cache policy only and MUST NOT be. The classification
// lives here in the package proper — not in a test file — because two
// guards read it: TestComputeKeyCoversOptions (options_guard_test.go)
// perturbs each field at run time and checks computeKey actually reacts
// per its class, and the cachekey analyzer (internal/analyzers) reads
// these literals statically and reports an unclassified or misclassified
// field at its declaration before any test runs. Whoever adds an Options
// field decides its class in the same change, or both gates fail.
var (
	computeSideFields = map[string]bool{
		"MeshN":    true,
		"Scenario": true,
	}
	encodeOnlyFields = map[string]bool{
		"CSVDir":    true,
		"Plot":      true,
		"Verbose":   true,
		"NoCache":   true,
		"CacheOnly": true,
	}
)
