package repro

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nanometer/internal/result"
)

// memStore is an in-memory ResultStore for tests.
type memStore struct {
	mu   sync.Mutex
	m    map[string]*result.Result
	puts int
}

func newMemStore() *memStore { return &memStore{m: make(map[string]*result.Result)} }

func (s *memStore) Get(artifactID, computeKey string) (*result.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	res, ok := s.m[artifactID+"/"+computeKey]
	return res, ok
}

func (s *memStore) Put(artifactID, computeKey string, res *result.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[artifactID+"/"+computeKey] = res
	s.puts++
}

// flaky builds an artifact that fails its first failN computes and then
// succeeds, counting every compute.
func flaky(id string, failN int, computes *atomic.Int64) Artifact {
	return Artifact{ID: id, Title: "flaky " + id, Compute: func(Options) (*result.Result, error) {
		n := computes.Add(1)
		if n <= int64(failN) {
			return nil, errors.New("transient failure")
		}
		r := &result.Result{}
		r.AddTable(&result.Table{Title: id, Headers: []string{"h"}, Rows: [][]string{{"v"}}})
		return r, nil
	}}
}

// TestErrorNotMemoized is the error-poisoning regression: a failed compute
// must not be served from the cache forever. The first call fails, its
// dead cell is evicted (entry count released), and the second call
// recomputes and succeeds — after which the success IS memoized.
func TestErrorNotMemoized(t *testing.T) {
	ResetCache()
	defer ResetCache()
	var computes atomic.Int64
	a := flaky("poison", 1, &computes)
	if _, err := a.ComputeCached(Options{}); err == nil {
		t.Fatal("first compute should fail")
	}
	if got := ReadCacheStats().Entries; got != 0 {
		t.Fatalf("failed compute left %d cache entries, want 0", got)
	}
	r2, err := a.ComputeCached(Options{})
	if err != nil {
		t.Fatalf("second call must recompute past the transient failure: %v", err)
	}
	r3, err := a.ComputeCached(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2 != r3 {
		t.Fatal("successful result was not memoized after the error eviction")
	}
	if n := computes.Load(); n != 2 {
		t.Fatalf("model ran %d times, want 2 (one failure, one success)", n)
	}
	if got := ReadCacheStats().Entries; got != 1 {
		t.Fatalf("entries = %d, want 1", got)
	}
}

// TestConcurrentFailuresKeepExactEntryCount: concurrent callers against a
// failing compute all observe an error, and however the race between
// joining the leader's cell and creating a fresh one falls out, every
// admitted-then-failed cell is evicted exactly once — the entry count ends
// at zero (a double eviction would drive it negative and poison the bound).
func TestConcurrentFailuresKeepExactEntryCount(t *testing.T) {
	ResetCache()
	defer ResetCache()
	var computes atomic.Int64
	blocker := make(chan struct{})
	a := Artifact{ID: "sharedfail", Title: "shared fail", Compute: func(Options) (*result.Result, error) {
		computes.Add(1)
		<-blocker
		return nil, errors.New("boom")
	}}
	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := a.ComputeCached(Options{})
			errs <- err
		}()
	}
	// Hold the leader in flight long enough for followers to pile onto its
	// cell (best-effort; the invariants below hold either way).
	for computes.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(blocker)
	for i := 0; i < n; i++ {
		if err := <-errs; err == nil {
			t.Fatal("caller observed success from a failing compute")
		}
	}
	if got := ReadCacheStats().Entries; got != 0 {
		t.Fatalf("entries = %d after concurrent failures, want 0", got)
	}
	if c := computes.Load(); c < 1 || c > n {
		t.Fatalf("failing compute ran %d times for %d callers", c, n)
	}
}

// TestStoreLayering: a fresh process (simulated by ResetCache) fills from
// the result store without computing; successful computes are persisted;
// failed computes never reach the store.
func TestStoreLayering(t *testing.T) {
	ResetCache()
	ms := newMemStore()
	SetResultStore(ms)
	defer SetResultStore(nil)
	defer ResetCache()

	var computes atomic.Int64
	a := flaky("storelayer", 1, &computes)
	s0 := ReadCacheStats()

	// Failed compute: nothing persisted.
	if _, err := a.ComputeCached(Options{}); err == nil {
		t.Fatal("first compute should fail")
	}
	if ms.puts != 0 {
		t.Fatalf("error result reached the store (%d puts)", ms.puts)
	}
	// Successful compute: persisted.
	r1, err := a.ComputeCached(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ms.puts != 1 {
		t.Fatalf("store puts = %d, want 1", ms.puts)
	}
	// Restart: memory gone, store answers, models stay cold.
	ResetCache()
	r2, err := a.ComputeCached(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if computes.Load() != 2 {
		t.Fatalf("model ran %d times, want 2 (restart must hit the store)", computes.Load())
	}
	if r1.Items[0].Table.Title != r2.Items[0].Table.Title {
		t.Fatal("store round-trip changed the result")
	}
	s1 := ReadCacheStats()
	if s1.StoreHits-s0.StoreHits != 1 || s1.StorePuts-s0.StorePuts != 1 {
		t.Fatalf("store stats delta hits=%d puts=%d, want 1/1",
			s1.StoreHits-s0.StoreHits, s1.StorePuts-s0.StorePuts)
	}
	// NoCache computes are not persisted (policy: only cache fills are).
	putsBefore := ms.puts
	if _, err := a.ComputeCached(Options{NoCache: true}); err != nil {
		t.Fatal(err)
	}
	if ms.puts != putsBefore {
		t.Fatal("NoCache compute must not write the store")
	}
}

// TestCacheOnly: CacheOnly never runs the models — a cold key answers
// ErrUncomputed, a store-warm key answers from the store and installs the
// memory cell so the next plain call is a memory hit.
func TestCacheOnly(t *testing.T) {
	ResetCache()
	ms := newMemStore()
	SetResultStore(ms)
	defer SetResultStore(nil)
	defer ResetCache()

	var computes atomic.Int64
	a := flaky("cacheonly", 0, &computes)
	if _, err := a.ComputeCached(Options{CacheOnly: true}); !errors.Is(err, ErrUncomputed) {
		t.Fatalf("cold CacheOnly err = %v, want ErrUncomputed", err)
	}
	if computes.Load() != 0 {
		t.Fatal("CacheOnly ran the models")
	}
	if got := ReadCacheStats().Entries; got != 0 {
		t.Fatalf("CacheOnly miss created %d cache entries", got)
	}
	// Warm the store (via a real compute), simulate a restart, and probe.
	if _, err := a.ComputeCached(Options{}); err != nil {
		t.Fatal(err)
	}
	ResetCache()
	r1, err := a.ComputeCached(Options{CacheOnly: true})
	if err != nil {
		t.Fatalf("store-warm CacheOnly: %v", err)
	}
	if computes.Load() != 1 {
		t.Fatal("store-warm CacheOnly ran the models")
	}
	// The probe installed the cell: the next plain call is a memory hit.
	r2, err := a.ComputeCached(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("CacheOnly store hit was not installed as a memory cell")
	}
}
