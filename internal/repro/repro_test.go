package repro

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nanometer/internal/result"
	"nanometer/internal/runner"
)

// TestParallelOutputByteIdentical is the harness's core guarantee: the full
// report renders to exactly the same bytes for one worker and many.
func TestParallelOutputByteIdentical(t *testing.T) {
	arts := Artifacts()
	if testing.Short() {
		sel, err := Select([]string{"t1", "t2", "f2", "f5", "c7", "c8"})
		if err != nil {
			t.Fatal(err)
		}
		arts = sel
	}
	var opts Options
	var serial, parallel bytes.Buffer
	if _, err := (runner.Pool{Workers: 1}).RunTo(&serial, Jobs(arts, opts)); err != nil {
		t.Fatal(err)
	}
	if _, err := (runner.Pool{Workers: 8}).RunTo(&parallel, Jobs(arts, opts)); err != nil {
		t.Fatal(err)
	}
	if serial.Len() == 0 {
		t.Fatal("report rendered no output")
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatalf("parallel report differs from serial (%d vs %d bytes)", parallel.Len(), serial.Len())
	}
}

func TestSelect(t *testing.T) {
	all, err := Select(nil)
	if err != nil || len(all) != len(Artifacts()) {
		t.Fatalf("empty selection must return everything: %v, %d", err, len(all))
	}
	// Order is canonical regardless of request order; IDs are
	// case-insensitive and tolerate blanks (flag splitting artifacts).
	sel, err := Select([]string{"C8", " f3", "", "t1"})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, a := range sel {
		ids = append(ids, a.ID)
	}
	if strings.Join(ids, ",") != "t1,f3,c8" {
		t.Fatalf("selection order %v, want canonical t1,f3,c8", ids)
	}
	if _, err := Select([]string{"t1", "nope"}); err == nil {
		t.Fatal("unknown id must error")
	}
}

// TestCSVFailureIsAggregatedNotFatal: a broken CSV directory fails only the
// figure artifacts, the rest of the report still renders, and the error
// aggregate names each broken artifact.
func TestCSVFailureIsAggregatedNotFatal(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	arts, err := Select([]string{"t1", "f2", "c7"})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{CSVDir: filepath.Join(blocker, "sub")} // Create() must fail
	var out bytes.Buffer
	results, sinkErr := (runner.Pool{Workers: 4}).RunTo(&out, Jobs(arts, opts))
	if sinkErr != nil {
		t.Fatal(sinkErr)
	}
	agg := runner.Errs(results)
	if agg == nil {
		t.Fatal("CSV failure must surface in the aggregate")
	}
	if !strings.Contains(agg.Error(), "f2:") {
		t.Fatalf("aggregate %q does not name the broken artifact", agg.Error())
	}
	// t1 and c7 write no CSVs and must succeed; f2's table text precedes the
	// CSV step and is still emitted.
	for _, r := range results {
		if r.ID != "f2" && r.Err != nil {
			t.Fatalf("artifact %s failed: %v", r.ID, r.Err)
		}
	}
	if !strings.Contains(out.String(), "Figure 2 (as data)") {
		t.Fatal("partial output of the failed artifact was dropped")
	}
	if !strings.Contains(out.String(), "C7. Vdd floor") {
		t.Fatal("healthy artifacts after the failure were dropped")
	}
}

// TestCSVRoundTrip: with a real directory every selected figure writes its
// CSV and announces it in the report body.
func TestCSVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	arts, err := Select([]string{"f2"})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	results, sinkErr := (runner.Pool{}).RunTo(&out, Jobs(arts, Options{CSVDir: dir}))
	if sinkErr != nil {
		t.Fatal(sinkErr)
	}
	if err := runner.Errs(results); err != nil {
		t.Fatal(err)
	}
	csv, err := os.ReadFile(filepath.Join(dir, "figure2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(csv) == 0 {
		t.Fatal("empty CSV")
	}
	if !strings.Contains(out.String(), "wrote "+filepath.Join(dir, "figure2.csv")) {
		t.Fatal("CSV write not announced in the report")
	}
}

// sanity: artifacts must not write to anything but w (no stray os.Stdout
// prints), which the byte-identity test can't see. Render one artifact and
// confirm output lands only in the buffer.
func TestRenderersWriteOnlyToWriter(t *testing.T) {
	for _, a := range Artifacts() {
		if a.Compute == nil {
			t.Fatalf("%s has no compute function", a.ID)
		}
	}
	arts, err := Select([]string{"c7"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := arts[0].Render(&buf, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "C7.") {
		t.Fatalf("unexpected C7 output %q", buf.String())
	}
}

var errSentinel = errors.New("sentinel")

// fakeArtifact computes a one-table result whose title is the artifact's
// payload marker, failing with err when set.
func fakeArtifact(id, marker string, err error) Artifact {
	return Artifact{ID: id, Title: id, Compute: func(Options) (*result.Result, error) {
		if err != nil {
			return nil, err
		}
		res := &result.Result{}
		res.AddTable(&result.Table{Title: marker, Headers: []string{"x"}})
		return res, nil
	}}
}

// TestJobsBindOptions: Jobs must close over each artifact independently (the
// classic range-variable trap would render the last artifact N times), and
// per-artifact compute errors must reach the job results.
func TestJobsBindOptions(t *testing.T) {
	arts := []Artifact{
		fakeArtifact("fake-a", "marker-A", nil),
		fakeArtifact("fake-b", "marker-B", errSentinel),
	}
	results := (runner.Pool{Workers: 2}).Run(Jobs(arts, Options{}))
	if !strings.Contains(string(results[0].Output), "marker-A") || len(results[1].Output) != 0 {
		t.Fatalf("outputs %q, %q", results[0].Output, results[1].Output)
	}
	if results[0].Err != nil || !errors.Is(results[1].Err, errSentinel) {
		t.Fatalf("errors %v, %v", results[0].Err, results[1].Err)
	}
}
