package repro

import (
	"reflect"
	"testing"
)

// TestComputeKeyCoversOptions is the reflection guard: it fails when
// Options gains an unclassified field, when the classification lists drift
// from the struct, and — the part that keeps the classification honest —
// when computeKey's actual behavior disagrees with a field's class. The
// classification itself (computeSideFields / encodeOnlyFields) lives in
// options_class.go so the static cachekey analyzer reads the same source
// of truth; this test remains the behavioral half of the gate.
func TestComputeKeyCoversOptions(t *testing.T) {
	rt := reflect.TypeOf(Options{})
	seen := map[string]bool{}
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		seen[f.Name] = true
		compute, encode := computeSideFields[f.Name], encodeOnlyFields[f.Name]
		switch {
		case compute && encode:
			t.Errorf("Options.%s is classified both compute-side and encode-only", f.Name)
		case !compute && !encode:
			t.Errorf("Options gained field %s without classifying it in options_guard_test.go: "+
				"decide whether it reaches the models (add to computeSideFields AND computeKey) "+
				"or only affects encoding (add to encodeOnlyFields)", f.Name)
			continue
		}

		// Behavioral check: perturb exactly this field and compare keys.
		base := Options{}.computeKey()
		opts := Options{}
		if err := perturb(reflect.ValueOf(&opts).Elem().Field(i)); err != nil {
			t.Fatalf("Options.%s: %v", f.Name, err)
		}
		changed := opts.computeKey() != base
		if compute && !changed {
			t.Errorf("Options.%s is classified compute-side but computeKey ignores it — the cache would serve stale results", f.Name)
		}
		if encode && changed {
			t.Errorf("Options.%s is classified encode-only but changes computeKey — encodings would stop sharing one compute", f.Name)
		}
	}
	for name := range computeSideFields {
		if !seen[name] {
			t.Errorf("computeSideFields lists %s, which is no longer an Options field", name)
		}
	}
	for name := range encodeOnlyFields {
		if !seen[name] {
			t.Errorf("encodeOnlyFields lists %s, which is no longer an Options field", name)
		}
	}
}

// perturb sets a field to an arbitrary non-zero value of its kind.
func perturb(v reflect.Value) error {
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(true)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(7)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(7)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(1.5)
	case reflect.String:
		v.SetString("guard-probe")
	case reflect.Pointer:
		// A freshly allocated pointee is the minimal non-nil perturbation;
		// for *scenario.Scenario the zero scenario hashes differently from
		// nil, which is exactly the behavior the guard must observe.
		v.Set(reflect.New(v.Type().Elem()))
	default:
		return &unsupportedKindError{v.Kind().String()}
	}
	return nil
}

type unsupportedKindError struct{ kind string }

func (e *unsupportedKindError) Error() string {
	return "field kind " + e.kind + " not supported by the guard — teach perturb() about it"
}

// TestValidateMeshN pins the boundary validation the CLI flag and the
// daemon's query parameter share.
func TestValidateMeshN(t *testing.T) {
	for _, tc := range []struct {
		n  int
		ok bool
	}{
		{0, true}, {5, true}, {41, true}, {255, true}, {1023, true},
		{-5, false}, {-1, false}, {1, false}, {2, false}, {4, false},
		{1024, false}, {1 << 20, false},
	} {
		err := ValidateMeshN(tc.n)
		if tc.ok && err != nil {
			t.Errorf("ValidateMeshN(%d) = %v, want nil", tc.n, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("ValidateMeshN(%d) = nil, want error", tc.n)
		}
	}
}
