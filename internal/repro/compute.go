package repro

import (
	"fmt"

	"nanometer/internal/experiments"
	"nanometer/internal/report"
	"nanometer/internal/result"
	"nanometer/internal/signaling"
)

// Every compute function resolves the options' roadmap through opts.lab()
// and hands it to the experiments' In-variants: the roadmap is a threaded
// value, not an ambient global, and the nil scenario resolves to the base
// laboratory these functions always used.

// This file is the compute layer: one function per artifact, mapping the
// experiment outputs into typed results (internal/result). No formatting
// decisions beyond table-cell significant digits live here — prose, plots,
// CSV dialects, and paper-check presentation belong to internal/render.

// fromReportTable adapts the experiment packages' table type (they predate
// the compute/encode split) into the typed schema.
func fromReportTable(t *report.Table) *result.Table {
	return &result.Table{Title: t.Title, Headers: t.Headers, Rows: t.Rows, Notes: t.Notes}
}

// fromReportFigure adapts a report figure, attaching the stable CSV name.
func fromReportFigure(name string, f *report.Figure) *result.Figure {
	rf := &result.Figure{Name: name, Title: f.Title, XLabel: f.XLabel, YLabel: f.YLabel, LogX: f.LogX, LogY: f.LogY}
	for _, s := range f.Series {
		rf.Series = append(rf.Series, result.Series{Name: s.Name, X: s.X, Y: s.Y})
	}
	return rf
}

func tableResult(t *result.Table) *result.Result {
	res := &result.Result{}
	res.AddTable(t)
	return res
}

func claimResult(c *result.Claim) *result.Result {
	res := &result.Result{}
	res.AddClaim(c)
	return res
}

// --- Tables -------------------------------------------------------------------

func computeTable1(opts Options) (*result.Result, error) {
	lab, err := opts.lab()
	if err != nil {
		return nil, err
	}
	return tableResult(fromReportTable(experiments.Table1ReportIn(lab))), nil
}

func computeTable2(opts Options) (*result.Result, error) {
	lab, err := opts.lab()
	if err != nil {
		return nil, err
	}
	t, err := experiments.Table2ReportIn(lab)
	if err != nil {
		return nil, err
	}
	return tableResult(fromReportTable(t)), nil
}

// --- Figures ------------------------------------------------------------------

func computeFigure1(opts Options) (*result.Result, error) {
	lab, err := opts.lab()
	if err != nil {
		return nil, err
	}
	fig, err := experiments.Figure1In(lab, nil)
	if err != nil {
		return nil, err
	}
	res := &result.Result{}
	res.AddFigure(fromReportFigure("figure1", fig))
	return res, nil
}

func computeFigure2(opts Options) (*result.Result, error) {
	lab, err := opts.lab()
	if err != nil {
		return nil, err
	}
	rows, err := experiments.Figure2In(lab)
	if err != nil {
		return nil, err
	}
	t := &result.Table{
		Title:   "Figure 2 (as data). Dual-Vth scaling",
		Headers: []string{"node (nm)", "Ion gain @ -100mV Vth", "Ioff × @ -100mV", "Ioff × for +20% Ion", "ΔVth for +20% (mV)"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.NodeNM),
			fmt.Sprintf("%.1f%%", r.IonGainPct),
			fmt.Sprintf("%.1f", r.IoffX100mV),
			fmt.Sprintf("%.1f", r.IoffXFor20PctIon),
			fmt.Sprintf("%.0f", r.DeltaVthFor20Pct*1e3))
	}
	t.Notes = append(t.Notes, "paper: Ioff penalty for +20% Ion falls from 54× \"today\" to 7× at 35 nm; 100 mV ⇒ ~15× Ioff throughout")
	res := &result.Result{}
	res.AddTable(t)
	res.AddFigure(fromReportFigure("figure2", experiments.Figure2Figure(rows)))
	return res, nil
}

// Figures 3 and 4 share one supply sweep; as independent artifacts each
// re-runs the sweep (cheap) so neither depends on the other's completion.

func computeFigure3(opts Options) (*result.Result, error) {
	lab, err := opts.lab()
	if err != nil {
		return nil, err
	}
	fig3, _, err := experiments.Figure3And4In(lab, nil)
	if err != nil {
		return nil, err
	}
	res := &result.Result{}
	res.AddFigure(fromReportFigure("figure3", fig3))
	return res, nil
}

func computeFigure4(opts Options) (*result.Result, error) {
	lab, err := opts.lab()
	if err != nil {
		return nil, err
	}
	_, fig4, err := experiments.Figure3And4In(lab, nil)
	if err != nil {
		return nil, err
	}
	res := &result.Result{}
	res.AddFigure(fromReportFigure("figure4", fig4))
	return res, nil
}

func computeFigure5(opts Options) (*result.Result, error) {
	lab, err := opts.lab()
	if err != nil {
		return nil, err
	}
	rows, err := experiments.Figure5In(lab)
	if err != nil {
		return nil, err
	}
	t := &result.Table{
		Title:   "Figure 5 (as data). IR-drop scaling",
		Headers: []string{"node (nm)", "min pitch (µm)", "W/Wmin", "%routing", "ITRS pitch (µm)", "W/Wmin", "%routing"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.NodeNM),
			fmt.Sprintf("%.0f", r.MinPitchM*1e6),
			fmt.Sprintf("%.1f", r.MinWidthOverMin),
			fmt.Sprintf("%.1f%%", r.MinRoutingFraction*100),
			fmt.Sprintf("%.0f", r.ITRSPitchM*1e6),
			fmt.Sprintf("%.0f", r.ITRSWidthOverMin),
			fmt.Sprintf("%.1f%%", r.ITRSRoutingFraction*100))
	}
	t.Notes = append(t.Notes, "paper: 16× Wmin (<4% routing + 16% pads) at 35 nm minimum pitch; >2000× under ITRS bump counts")
	res := &result.Result{}
	res.AddTable(t)
	res.AddFigure(fromReportFigure("figure5", experiments.Figure5Figure(rows)))
	return res, nil
}

// --- Claims -------------------------------------------------------------------

func computeC1(opts Options) (*result.Result, error) {
	lab, err := opts.lab()
	if err != nil {
		return nil, err
	}
	r, err := experiments.DTMIn(lab, 50)
	if err != nil {
		return nil, err
	}
	c := &result.Claim{}
	c.Num("node_nm", float64(r.NodeNM), "nm").
		Num("theoretical_worst_w", r.TheoreticalWorstW, "W").
		Num("effective_worst_w", r.EffectiveWorstW, "W").
		Checked("effective_fraction", r.EffectiveFraction, "", 0.75, 0.15).
		Checked("theta_ja_headroom", r.ThetaJAHeadroom, "", 0.33, 0.25).
		Str("cooling_theoretical_class", fmt.Sprint(r.CostTheoretical.Class)).
		Num("cooling_theoretical_cost_usd", r.CostTheoretical.CostUSD, "USD").
		Str("cooling_effective_class", fmt.Sprint(r.CostEffective.Class)).
		Num("cooling_effective_cost_usd", r.CostEffective.CostUSD, "USD").
		Num("cooling_cost_ratio", r.CostRatio, "").
		Num("virus_peak_temp_c", r.VirusPeakTempC, "°C").
		Num("virus_throughput", r.VirusThroughput, "").
		Checked("intel_65_to_75", r.Intel65to75, "", 3, 0.5)
	return claimResult(c), nil
}

func computeC2(opts Options) (*result.Result, error) {
	lab, err := opts.lab()
	if err != nil {
		return nil, err
	}
	rows, err := experiments.SignalingIn(lab)
	if err != nil {
		return nil, err
	}
	t := &result.Table{
		Title: "C2. Global signaling: repeated CMOS census vs differential low-swing",
		Headers: []string{"node", "repeaters", "P (W)", "area", "cyc/edge scaled", "unscaled",
			"diff E ratio", "diff P (W)", "tracks", "diff SNR", "di/dt ratio"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.NodeNM),
			fmt.Sprintf("%d", r.Repeaters),
			fmt.Sprintf("%.1f", r.SignalingPowerW),
			fmt.Sprintf("%.1f%%", r.RepeaterAreaFraction*100),
			fmt.Sprintf("%.1f", r.ScaledCycles),
			fmt.Sprintf("%.1f", r.UnscaledCycles),
			fmt.Sprintf("%.2f", r.DiffEnergyRatio),
			fmt.Sprintf("%.1f", r.DiffPowerW),
			fmt.Sprintf("%.2f", r.DiffTrackRatio),
			fmt.Sprintf("%.1f", r.DiffSNR),
			fmt.Sprintf("%.3f", r.PeakCurrentRatio))
	}
	t.Notes = append(t.Notes,
		"paper: ~10⁴ repeaters at 180 nm → ~10⁶ at 50 nm; >50 W; Alpha 21264 buses at 10% swing",
		"per [9]: unscaled top-level wiring keeps the die reachable in a few cycles at ITRS clocks")
	return tableResult(t), nil
}

func computeC3(opts Options) (*result.Result, error) {
	lab, err := opts.lab()
	if err != nil {
		return nil, err
	}
	r, err := experiments.RunLibraryIn(lab, experiments.DefaultCircuitSetup())
	if err != nil {
		return nil, err
	}
	c := &result.Claim{}
	c.Num("gates", float64(r.Setup.Gates), "").
		Num("node_nm", float64(r.Setup.NodeNM), "nm").
		Num("n_libraries", float64(len(r.Results)), "")
	for i, res := range r.Results {
		k := fmt.Sprintf("lib%d_", i)
		c.Str(k+"name", res.Library.Name).
			Num(k+"power_w", res.Power.TotalW(), "W").
			Num(k+"size", res.TotalSize, "").
			Bool(k+"timing_met", res.TimingMet)
	}
	c.Checked("continuous_vs_coarse", r.ContinuousVsCoarse, "", 0.185, 0.25).
		Num("continuous_vs_rich", r.ContinuousVsRich, "")
	return claimResult(c), nil
}

func computeC4(opts Options) (*result.Result, error) {
	lab, err := opts.lab()
	if err != nil {
		return nil, err
	}
	r, err := experiments.RunCVSIn(lab, experiments.DefaultCircuitSetup())
	if err != nil {
		return nil, err
	}
	c := &result.Claim{}
	c.Num("low_vdd_ratio", r.Setup.LowVddRatio, "").
		Num("path_utilization", r.PathUtilization, "").
		Checked("clustered_assigned_fraction", r.Clustered.AssignedFraction, "", 0.75, 0.2).
		Checked("clustered_dynamic_saving", r.Clustered.DynamicSaving, "", 0.475, 0.2).
		Checked("clustered_lc_overhead", r.Clustered.LCOverheadFraction, "", 0.09, 0.5).
		Checked("clustered_area_overhead", r.Clustered.AreaOverhead, "", 0.15, 0.5).
		Num("clustered_level_converters", float64(r.Clustered.LevelConverters), "").
		Bool("clustered_timing_met", r.Clustered.TimingMet).
		Num("unclustered_assigned_fraction", r.Unclustered.AssignedFraction, "").
		Num("unclustered_dynamic_saving", r.Unclustered.DynamicSaving, "").
		Num("unclustered_lc_overhead", r.Unclustered.LCOverheadFraction, "").
		Num("unclustered_level_converters", float64(r.Unclustered.LevelConverters), "")
	return claimResult(c), nil
}

func computeC5(opts Options) (*result.Result, error) {
	lab, err := opts.lab()
	if err != nil {
		return nil, err
	}
	r, err := experiments.RunDualVthIn(lab, experiments.DefaultCircuitSetup())
	if err != nil {
		return nil, err
	}
	c := &result.Claim{}
	c.Num("sensitivity_high_vth_fraction", r.Sensitivity.HighVthFraction, "").
		Checked("sensitivity_leakage_saving", r.Sensitivity.LeakageSaving, "", 0.6, 0.34).
		Num("sensitivity_delay_penalty", r.Sensitivity.DelayPenalty, "").
		Bool("sensitivity_timing_met", r.Sensitivity.TimingMet).
		Num("slack_high_vth_fraction", r.SlackOrdered.HighVthFraction, "").
		Num("slack_leakage_saving", r.SlackOrdered.LeakageSaving, "")
	return claimResult(c), nil
}

func computeC6(opts Options) (*result.Result, error) {
	lab, err := opts.lab()
	if err != nil {
		return nil, err
	}
	r, err := experiments.RunResizeVsVddIn(lab, experiments.DefaultCircuitSetup())
	if err != nil {
		return nil, err
	}
	c := &result.Claim{}
	c.Num("resize_size_reduction", r.Resize.SizeReduction, "").
		Num("resize_dynamic_saving", r.Resize.DynamicSaving, "").
		Num("resize_sublinearity", r.Resize.Sublinearity, "").
		Num("cvs_assigned_fraction", r.CVSOnSame.AssignedFraction, "").
		Num("cvs_dynamic_saving", r.CVSOnSame.DynamicSaving, "").
		Num("combined_total_saving", r.Combined.TotalSaving, "").
		Num("combined_dynamic_saving", r.Combined.DynamicSaving, "").
		Num("combined_leakage_saving", r.Combined.LeakageSaving, "").
		Bool("combined_timing_met", r.Combined.TimingMet).
		Num("assigned_after_resize", r.AssignedAfterResize, "")
	return claimResult(c), nil
}

func computeC7(opts Options) (*result.Result, error) {
	lab, err := opts.lab()
	if err != nil {
		return nil, err
	}
	r, err := experiments.RunVddFloorIn(lab)
	if err != nil {
		return nil, err
	}
	c := &result.Claim{}
	c.Checked("vdd_floor", r.Vdd, "V", 0.44, 0.1).
		Checked("dynamic_saving", r.Savings, "", 0.46, 0.15).
		Num("at02_delay_norm", r.At02V.DelayNorm, "").
		Checked("at02_pdyn_norm", r.At02V.PdynNorm, "", 0.11, 0.3).
		Num("at02_vth", r.At02V.Vth, "V")
	return claimResult(c), nil
}

func computeC8(opts Options) (*result.Result, error) {
	lab, err := opts.lab()
	if err != nil {
		return nil, err
	}
	r, err := experiments.RunBumpsNIn(lab, opts.MeshN)
	if err != nil {
		return nil, err
	}
	c := &result.Claim{}
	c.Checked("effective_pitch_m", r.EffectivePitchM, "m", 356e-6, 0.1).
		Num("min_pitch_m", r.MinPitchM, "m").
		Num("itrs_width_over_min", r.ITRSWidthOverMin, "").
		Bool("itrs_feasible", r.ITRSFeasible).
		Checked("min_width_over_min", r.MinWidthOverMin, "", 16, 0.5).
		Num("supply_current_a", r.Current.SupplyCurrentA, "A").
		Num("vdd_bumps", float64(r.Current.VddBumps), "").
		Num("per_bump_a", r.Current.PerBumpA, "A").
		Num("capability_a", r.Current.CapabilityA, "A").
		Num("required_bumps", float64(r.Current.RequiredBumps), "").
		Num("ladder_ratio", r.LadderRatio, "").
		Num("pessimistic_ratio", r.PessimisticRatio, "")
	return claimResult(c), nil
}

func computeC9(opts Options) (*result.Result, error) {
	lab, err := opts.lab()
	if err != nil {
		return nil, err
	}
	r, err := experiments.RunTransientsIn(lab)
	if err != nil {
		return nil, err
	}
	c := &result.Claim{}
	c.Num("node_nm", float64(r.NodeNM), "nm").
		Num("block_standby_savings", r.BlockStandbySavings, "").
		Num("block_delay_penalty", r.BlockDelayPenalty, "").
		Num("block_step_a", r.BlockStepA, "A").
		Num("noise_min_pitch_fraction", r.NoiseMinPitch.NoiseFraction, "").
		Num("noise_itrs_fraction", r.NoiseITRS.NoiseFraction, "").
		Num("safe_ramp_min_pitch_s", r.SafeRampMinPitchS, "s").
		Num("safe_ramp_itrs_s", r.SafeRampITRSS, "s").
		Num("max_instant_step_min_a", r.MaxInstantStepMinA, "A").
		Num("max_instant_step_itrs_a", r.MaxInstantStepITRSA, "A").
		Num("mcml_power_w", r.MCML.McmlPowerW, "W").
		Num("cmos_power_w", r.MCML.CmosPowerW, "W").
		Num("crossover_activity", r.MCML.CrossoverActivity, "").
		Num("current_ripple_ratio", r.MCML.CurrentRippleRatio, "")
	return claimResult(c), nil
}

func computeC10(opts Options) (*result.Result, error) {
	lab, err := opts.lab()
	if err != nil {
		return nil, err
	}
	r, err := experiments.RunStackVthIn(lab, 70)
	if err != nil {
		return nil, err
	}
	c := &result.Claim{}
	c.Num("node_nm", float64(r.NodeNM), "nm").
		Num("n_assignments", float64(len(r.Assignments)), "")
	for i, a := range r.Assignments {
		k := fmt.Sprintf("a%d_", i)
		c.Num(k+"leakage_saving", a.LeakageSaving, "").
			Num(k+"delay_penalty", a.DelayPenalty, "")
	}
	c.Num("best_high_count", float64(r.Best.HighCount()), "").
		Num("best_leakage_saving", r.Best.LeakageSaving, "").
		Num("stack_factor", r.StackFactor, "").
		Num("parked_saving", r.ParkedSaving, "")
	return claimResult(c), nil
}

func computeC11(opts Options) (*result.Result, error) {
	lab, err := opts.lab()
	if err != nil {
		return nil, err
	}
	r, err := experiments.RunStandbyIn(lab)
	if err != nil {
		return nil, err
	}
	t := &result.Table{
		Title:   "C11. Standby-leakage techniques (§3.2.1), 180 nm vs 35 nm",
		Headers: []string{"technique", "standby@180", "standby@35", "active", "delay", "area", "scales?"},
	}
	for i, a := range r.At35 {
		b := r.At180[i]
		scal := "yes"
		if !a.Scalable {
			scal = "NO"
		}
		t.AddRow(a.Technique.String(),
			fmt.Sprintf("-%.1f%%", b.StandbyReduction*100),
			fmt.Sprintf("-%.1f%%", a.StandbyReduction*100),
			fmt.Sprintf("-%.1f%%", a.ActiveReduction*100),
			fmt.Sprintf("+%.1f%%", a.DelayPenalty*100),
			fmt.Sprintf("+%.1f%%", a.AreaOverhead*100),
			scal)
	}
	t.Notes = append(t.Notes,
		"paper: body-bias-controlled Vth \"does not scale well\"; dual-Vth is the only technique in current high-end MPUs",
		fmt.Sprintf("non-scalable at 35 nm: %v", r.NonScalableAt35()))
	return tableResult(t), nil
}

func computeC12(opts Options) (*result.Result, error) {
	lab, err := opts.lab()
	if err != nil {
		return nil, err
	}
	r, err := experiments.RunSwingStudyIn(lab, 50)
	if err != nil {
		return nil, err
	}
	c := &result.Claim{}
	c.Num("node_nm", float64(r.NodeNM), "nm")
	for _, s := range []struct {
		key string
		st  signaling.SwingStudy
	}{
		{"diff_shielded_", r.DiffShielded},
		{"diff_bare_", r.DiffBare},
		{"se_shielded_", r.SEShielded},
		{"se_bare_", r.SEBare},
	} {
		c.Bool(s.key+"feasible", s.st.Feasible).
			Num(s.key+"min_swing_frac", s.st.MinSwingFrac, "").
			Num(s.key+"energy_ratio_at_min", s.st.EnergyRatioAtMin, "").
			Bool(s.key+"alpha_swing_ok", s.st.AlphaSwingOK)
	}
	return claimResult(c), nil
}

func computeC13(opts Options) (*result.Result, error) {
	lab, err := opts.lab()
	if err != nil {
		return nil, err
	}
	r, err := experiments.RunBusPlanIn(lab, 50)
	if err != nil {
		return nil, err
	}
	c := &result.Claim{}
	c.Num("node_nm", float64(r.NodeNM), "nm").
		Num("routes", float64(len(r.Plan.Choices)), "").
		Num("repeated", float64(r.Repeated), "").
		Num("low_swing", float64(r.LowSwing), "").
		Num("differential", float64(r.Differential), "").
		Num("total_power_w", r.Plan.TotalPowerW, "W").
		Num("baseline_power_w", r.Plan.BaselinePowerW, "W").
		Num("saving", r.Plan.Saving, "").
		Num("total_tracks", r.Plan.TotalTracks, "")
	return claimResult(c), nil
}
