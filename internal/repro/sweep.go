package repro

import (
	"fmt"
	"io"

	"nanometer/internal/experiments"
	"nanometer/internal/powergrid"
	"nanometer/internal/result"
	"nanometer/internal/runner"
	"nanometer/internal/scenario"
)

// PrimeVariants batch-solves the dominant compute of a multi-variant sweep
// before the per-variant runs start: the c8 power-grid mesh (~39 of 40
// gate-weight units at n = 255) is structurally identical across variants —
// sweeps perturb conductance and current, never the grid — so all variants'
// meshes solve in one lockstep pattern traversal (powergrid.SolveMeshBatch)
// and each variant's later solo solve consumes its parked, bit-identical
// drop. Strictly best-effort and semantically invisible: cache and
// singleflight behavior per variant is unchanged (priming probes only
// in-memory presence, never through ComputeCached, so hit/miss counters
// stay exactly what a sweep without priming would record), and any error
// just leaves a variant to the solo path where it can surface attributably.
//
// No-ops unless there are ≥ 2 variants and the selection includes c8 (the
// only artifact whose compute is mesh-bound). CacheOnly options never reach
// the models, so they never prime.
func PrimeVariants(arts []Artifact, opts Options, variants []*scenario.Scenario) {
	if len(variants) < 2 || opts.CacheOnly {
		return
	}
	var heavy *Artifact
	for i := range arts {
		if arts[i].ID == "c8" {
			heavy = &arts[i]
			break
		}
	}
	if heavy == nil {
		return
	}
	meshes := make([]*powergrid.Mesh, 0, len(variants))
	for _, v := range variants {
		vo := opts
		vo.Scenario = v
		// Memory-presence probe only: a cached (or in-flight) cell means
		// this variant's solve will not run, so priming it would waste a
		// batch slot. NoCache recomputes regardless, so it always primes.
		if !vo.NoCache && heavy.cachedInMemory(vo) {
			continue
		}
		lab, err := vo.lab()
		if err != nil {
			continue
		}
		m, err := experiments.BumpMesh(lab, vo.MeshN)
		if err != nil {
			continue
		}
		meshes = append(meshes, m)
	}
	powergrid.PrimeSolves(meshes)
}

// cachedInMemory reports whether a cell for this artifact + options already
// exists in the in-memory cache (computed OR in flight — either way the
// variant's compute will not solve). Deliberately NOT ComputeCached with
// CacheOnly: that counts a cache hit, and priming must not distort the
// hit/miss telemetry the smokes assert exactly. The second-level result
// store is deliberately not probed — a store-warmed variant wastes its
// batch slot, which costs a little shared work, not correctness.
func (a Artifact) cachedInMemory(opts Options) bool {
	_, ok := cache.Load().m.Load(a.ID + "\x00" + opts.computeKey())
	return ok
}

// VariantJobs flattens a sweep into ONE job list — every variant × artifact
// in variant-major order — so a single pool run keeps all workers busy
// across variant boundaries instead of draining between sequential
// per-variant runs. Emission order (and every output byte) is identical to
// the historical sequential loop for any worker count; job IDs are
// qualified with the variant name when a sweep has several, so aggregated
// errors say which variant's artifact failed. A nil enc selects the text
// encoder for opts. Primes the sweep's mesh solves first (PrimeVariants).
func VariantJobs(arts []Artifact, opts Options, variants []*scenario.Scenario, enc Encoder) []runner.Job {
	PrimeVariants(arts, opts, variants)
	jobs := make([]runner.Job, 0, len(arts)*len(variants))
	for _, v := range variants {
		vo := opts
		vo.Scenario = v
		e := enc
		if e == nil {
			e = textEncoder(vo)
		}
		vjobs := EncodeJobs(arts, vo, e)
		if v != nil && len(variants) > 1 {
			for i := range vjobs {
				vjobs[i].ID = arts[i].ID + "@" + v.Name
			}
		}
		jobs = append(jobs, vjobs...)
	}
	return jobs
}

// ComputeAllVariants is ComputeAll across a sweep: one flattened pool run
// (primed like VariantJobs), results grouped per variant in variant-major
// order with nil slots for failed artifacts, failures aggregated with
// variant-qualified IDs.
func ComputeAllVariants(pool runner.Pool, arts []Artifact, opts Options, variants []*scenario.Scenario) ([][]*result.Result, error) {
	PrimeVariants(arts, opts, variants)
	out := make([][]*result.Result, len(variants))
	jobs := make([]runner.Job, 0, len(arts)*len(variants))
	for vi, v := range variants {
		out[vi] = make([]*result.Result, len(arts))
		vo := opts
		vo.Scenario = v
		for ai, a := range arts {
			vi, ai, a := vi, ai, a
			id := a.ID
			if v != nil && len(variants) > 1 {
				id = fmt.Sprintf("%s@%s", a.ID, v.Name)
			}
			jobs = append(jobs, runner.Job{ID: id, Run: func(io.Writer) error {
				res, err := a.ComputeCached(vo)
				out[vi][ai] = res
				return err
			}})
		}
	}
	return out, runner.Errs(pool.Run(jobs))
}
