package core

import (
	"math"
	"testing"

	"nanometer/internal/itrs"
	"nanometer/internal/netlist"
	"nanometer/internal/sta"
	"nanometer/internal/units"
)

func newExplorer(t *testing.T) *Explorer {
	t.Helper()
	node := itrs.MustNode(35)
	ex, err := NewExplorer(35, units.RoomTemperature, 0.1, node.ClockHz)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

func TestPolicyVthBehaviour(t *testing.T) {
	ex := newExplorer(t)
	vNom := ex.NominalVdd()
	// At nominal supply all policies sit at the nominal threshold.
	for _, p := range Policies() {
		vth, err := ex.VthFor(p, vNom)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(vth-0.11) > 2e-3 {
			t.Errorf("%v at nominal: Vth = %g, want ≈0.11", p, vth)
		}
	}
	// At 0.2 V the policies separate: constant > conservative > constPs.
	vc, _ := ex.VthFor(ConstantVth, 0.2)
	vcons, _ := ex.VthFor(Conservative, 0.2)
	vps, _ := ex.VthFor(ConstantPstatic, 0.2)
	if !(vc > vcons && vcons > vps) {
		t.Fatalf("threshold ordering broken: %g, %g, %g", vc, vcons, vps)
	}
}

func TestConstantPstaticHoldsStaticPower(t *testing.T) {
	ex := newExplorer(t)
	for _, vdd := range []float64{0.25, 0.35, 0.5} {
		op, err := ex.At(ConstantPstatic, vdd)
		if err != nil {
			t.Fatal(err)
		}
		if !units.ApproxEqual(op.PstaticNorm, 1, 0.02, 0) {
			t.Errorf("constant-Pstatic at %g V: Pstatic = %g, want 1", vdd, op.PstaticNorm)
		}
	}
}

func TestConservativeScalesStaticLinearly(t *testing.T) {
	ex := newExplorer(t)
	for _, vdd := range []float64{0.2, 0.3, 0.4} {
		op, err := ex.At(Conservative, vdd)
		if err != nil {
			t.Fatal(err)
		}
		want := vdd / ex.NominalVdd()
		if !units.ApproxEqual(op.PstaticNorm, want, 0.05, 0) {
			t.Errorf("conservative at %g V: Pstatic = %g, want %g (∝Vdd)", vdd, op.PstaticNorm, want)
		}
	}
}

func TestConstantVthStaticRoughlyQuadratic(t *testing.T) {
	// The paper: at fixed Vth, DIBL makes static power decay "roughly
	// quadratically" with Vdd.
	ex := newExplorer(t)
	op, err := ex.At(ConstantVth, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	ratio := 0.3 / ex.NominalVdd()
	if op.PstaticNorm > ratio*ratio*1.6 || op.PstaticNorm < ratio*ratio*0.5 {
		t.Fatalf("constant-Vth Pstatic at 0.3 V = %g, want ≈quadratic %g", op.PstaticNorm, ratio*ratio)
	}
}

func TestPdynQuadratic(t *testing.T) {
	ex := newExplorer(t)
	op, err := ex.At(ConstantPstatic, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(0.3/ex.NominalVdd(), 2)
	if !units.ApproxEqual(op.PdynNorm, want, 1e-6, 0) {
		t.Fatalf("Pdyn at 0.3 V = %g, want %g (quadratic)", op.PdynNorm, want)
	}
}

func TestFigure3DelayOrdering(t *testing.T) {
	// The headline figure: at Vdd = 0.2 V the constant-Vth delay explodes,
	// constant-Pstatic stays modest, conservative lands in between.
	ex := newExplorer(t)
	dc, err := ex.At(ConstantVth, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	dcons, err := ex.At(Conservative, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	dps, err := ex.At(ConstantPstatic, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !(dc.DelayNorm > dcons.DelayNorm && dcons.DelayNorm > dps.DelayNorm) {
		t.Fatalf("delay ordering broken: %g, %g, %g", dc.DelayNorm, dcons.DelayNorm, dps.DelayNorm)
	}
	if dc.DelayNorm < 2.3 {
		t.Fatalf("constant-Vth at 0.2 V = %g×, paper says ≈3.7×", dc.DelayNorm)
	}
	if dps.DelayNorm > 1.6 {
		t.Fatalf("constant-Pstatic at 0.2 V = %g×, paper says <1.3×", dps.DelayNorm)
	}
	// Dynamic power at 0.2 V is 89 % lower — exact quadratic.
	if !units.ApproxEqual(1-dps.PdynNorm, 8.0/9.0, 1e-6, 0) {
		t.Fatalf("Pdyn reduction at 0.2 V = %g, want 89%%", 1-dps.PdynNorm)
	}
}

func TestSweepMonotoneDelay(t *testing.T) {
	ex := newExplorer(t)
	for _, p := range Policies() {
		ops, err := ex.Sweep(p, []float64{0.2, 0.3, 0.4, 0.5, 0.6})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(ops); i++ {
			if ops[i].DelayNorm >= ops[i-1].DelayNorm {
				t.Fatalf("%v: delay must fall as Vdd rises", p)
			}
		}
		last := ops[len(ops)-1]
		if !units.ApproxEqual(last.DelayNorm, 1, 1e-6, 0) {
			t.Fatalf("%v: nominal point must normalize to 1, got %g", p, last.DelayNorm)
		}
	}
}

func TestVddFloor(t *testing.T) {
	ex := newExplorer(t)
	vdd, savings, err := ex.VddFloor(ConstantPstatic, 10)
	if err != nil {
		t.Fatal(err)
	}
	// The paper: ≈0.44 V and 46 % dynamic-power saving.
	if vdd < 0.40 || vdd > 0.48 {
		t.Fatalf("Vdd floor = %g, paper says ≈0.44", vdd)
	}
	if savings < 0.40 || savings > 0.52 {
		t.Fatalf("savings = %g, paper says 46%%", savings)
	}
	// The constraint must hold exactly at the floor.
	op, err := ex.At(ConstantPstatic, vdd)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(op.DynOverStatic, 10, 1e-3, 0) {
		t.Fatalf("at the floor Pdyn/Pstatic = %g, want 10", op.DynOverStatic)
	}
	// An unreachable ratio must error.
	if _, _, err := ex.VddFloor(ConstantPstatic, 1e6); err == nil {
		t.Fatalf("impossible ratio must error")
	}
}

func TestPolicyString(t *testing.T) {
	for _, p := range Policies() {
		if p.String() == "" {
			t.Fatalf("policy %d has no name", int(p))
		}
	}
}

// Flow tests ------------------------------------------------------------------

func flowCircuit(t *testing.T, seed int64) *netlist.Circuit {
	t.Helper()
	tech := netlist.MustNewTech(100, 0.65)
	p := netlist.DefaultGenParams()
	p.Gates = 1500
	p.Levels = 30
	p.ShortPathFraction = 0.5
	p.Seed = seed
	c, err := netlist.Generate(tech, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sta.SetPeriodFromCritical(c, 1.15); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRunFlowAllStages(t *testing.T) {
	c := flowCircuit(t, 1)
	res, err := RunFlow(c, DefaultFlowOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimingMet {
		t.Fatalf("flow must preserve timing")
	}
	if res.CVS == nil || res.DualVth == nil || res.Resize == nil {
		t.Fatalf("all stages must have run")
	}
	if res.TotalSaving < 0.3 {
		t.Fatalf("combined saving = %g, expected a large reduction", res.TotalSaving)
	}
	if res.LeakageSaving < 0.5 {
		t.Fatalf("leakage saving = %g", res.LeakageSaving)
	}
	if res.After.TotalW() >= res.Before.TotalW() {
		t.Fatalf("power must fall")
	}
}

func TestRunFlowCombinedBeatsEachAlone(t *testing.T) {
	full, err := RunFlow(flowCircuit(t, 2), DefaultFlowOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, single := range []FlowOptions{
		{CVS: true}, {DualVth: true}, {Resize: true},
	} {
		res, err := RunFlow(flowCircuit(t, 2), single)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalSaving >= full.TotalSaving {
			t.Fatalf("single stage %+v (%g) should not beat the combined flow (%g)",
				single, res.TotalSaving, full.TotalSaving)
		}
	}
}

func TestRunFlowErrors(t *testing.T) {
	c := flowCircuit(t, 3)
	c.ClockPeriodS = 0
	if _, err := RunFlow(c, DefaultFlowOptions()); err == nil {
		t.Fatalf("missing period must error")
	}
	// CVS requested on a single-supply tech.
	single := netlist.MustNewTech(100, 0)
	p := netlist.DefaultGenParams()
	p.Gates = 100
	c2, err := netlist.Generate(single, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sta.SetPeriodFromCritical(c2, 1.1); err != nil {
		t.Fatal(err)
	}
	if _, err := RunFlow(c2, DefaultFlowOptions()); err == nil {
		t.Fatalf("CVS without a low supply must error")
	}
	// But the single-supply flow with CVS disabled works.
	opts := DefaultFlowOptions()
	opts.CVS = false
	if _, err := RunFlow(c2, opts); err != nil {
		t.Fatalf("CVS-less flow on single supply: %v", err)
	}
}
