package core

import (
	"fmt"

	"nanometer/internal/cvs"
	"nanometer/internal/dualvth"
	"nanometer/internal/netlist"
	"nanometer/internal/power"
	"nanometer/internal/resize"
	"nanometer/internal/sta"
)

// FlowOptions configures the combined optimization pipeline.
type FlowOptions struct {
	// CVS, DualVth, Resize enable the respective stages. The paper's
	// recommended ordering is fixed: non-critical gates first move to the
	// reduced supply, then threshold selection, then sizing mops up the
	// remaining slack.
	CVS, DualVth, Resize bool
	// CVSOptions, DualVthOptions, ResizeOptions tune the stages.
	CVSOptions     cvs.Options
	DualVthOptions dualvth.Options
	ResizeOptions  resize.Options
	// ClockHz evaluates power; zero uses 1/period.
	ClockHz float64
}

// DefaultFlowOptions enables all three stages with default tuning.
func DefaultFlowOptions() FlowOptions {
	return FlowOptions{
		CVS: true, DualVth: true, Resize: true,
		CVSOptions:     cvs.DefaultOptions(),
		DualVthOptions: dualvth.Options{},
		ResizeOptions:  resize.DefaultOptions(),
	}
}

// FlowResult aggregates the pipeline outcome.
type FlowResult struct {
	// Before and After are the end-to-end power reports.
	Before, After *power.Report
	// TotalSaving, DynamicSaving, LeakageSaving are 1 − after/before.
	TotalSaving, DynamicSaving, LeakageSaving float64
	// Stage results (nil when a stage was disabled).
	CVS     *cvs.Result
	DualVth *dualvth.Result
	Resize  *resize.Result
	// TimingMet confirms the final circuit meets its period.
	TimingMet bool
}

// RunFlow executes the combined multi-Vdd + multi-Vth + re-sizing pipeline
// on the circuit (modified in place). The circuit must meet its period.
func RunFlow(c *netlist.Circuit, opts FlowOptions) (*FlowResult, error) {
	if c.ClockPeriodS <= 0 {
		return nil, fmt.Errorf("core: circuit has no clock period")
	}
	fHz := opts.ClockHz
	if fHz == 0 {
		fHz = 1 / c.ClockPeriodS
	}
	if r := sta.Analyze(c); !r.Met() {
		return nil, fmt.Errorf("core: circuit misses period before flow (worst slack %v)", r.WorstSlackS)
	}
	power.PropagateActivity(c)
	before := power.Analyze(c, fHz)
	res := &FlowResult{Before: before}

	if opts.CVS {
		if !c.Tech.HasLowVdd() {
			return nil, fmt.Errorf("core: CVS stage enabled but tech has a single supply")
		}
		o := opts.CVSOptions
		if o.LCAreaUnits == 0 {
			o = cvs.DefaultOptions()
		}
		o.ClockHz = fHz
		r, err := cvs.Assign(c, o)
		if err != nil {
			return nil, fmt.Errorf("core: CVS stage: %w", err)
		}
		res.CVS = r
	}
	if opts.DualVth {
		o := opts.DualVthOptions
		o.ClockHz = fHz
		r, err := dualvth.Assign(c, o)
		if err != nil {
			return nil, fmt.Errorf("core: dual-Vth stage: %w", err)
		}
		res.DualVth = r
	}
	if opts.Resize {
		o := opts.ResizeOptions
		if o.Step == 0 {
			o = resize.DefaultOptions()
		}
		o.ClockHz = fHz
		r, err := resize.Downsize(c, o)
		if err != nil {
			return nil, fmt.Errorf("core: resize stage: %w", err)
		}
		res.Resize = r
	}

	res.After = power.Analyze(c, fHz)
	final := sta.Analyze(c)
	res.TimingMet = final.Met()
	if t := before.TotalW(); t > 0 {
		res.TotalSaving = 1 - res.After.TotalW()/t
	}
	if before.DynamicW > 0 {
		res.DynamicSaving = 1 - res.After.DynamicW/before.DynamicW
	}
	if before.LeakageW > 0 {
		res.LeakageSaving = 1 - res.After.LeakageW/before.LeakageW
	}
	return res, nil
}
