package core_test

import (
	"fmt"

	"nanometer/internal/core"
	"nanometer/internal/itrs"
	"nanometer/internal/netlist"
	"nanometer/internal/sta"
	"nanometer/internal/units"
)

// The §3.3 headline: at 35 nm, dropping the supply to 0.2 V while scaling
// the threshold to hold static power costs little delay and buys 89 % of
// the dynamic power back (Figure 3's "compelling results").
func ExampleExplorer() {
	node := itrs.MustNode(35)
	ex, err := core.NewExplorer(35, units.RoomTemperature, 0.1, node.ClockHz)
	if err != nil {
		panic(err)
	}
	op, err := ex.At(core.ConstantPstatic, 0.2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("delay ×%.1f, Pdyn -%.0f%%, Pstatic ×%.2f\n",
		op.DelayNorm, (1-op.PdynNorm)*100, op.PstaticNorm)
	// Output:
	// delay ×1.4, Pdyn -89%, Pstatic ×1.00
}

// The ITRS constraint Pdyn ≥ 10·Pstatic admits a 0.44 V supply at 35 nm —
// a 46 % dynamic-power saving (§3.3).
func ExampleExplorer_VddFloor() {
	node := itrs.MustNode(35)
	ex, err := core.NewExplorer(35, units.RoomTemperature, 0.1, node.ClockHz)
	if err != nil {
		panic(err)
	}
	vdd, savings, err := ex.VddFloor(core.ConstantPstatic, 10)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Vdd floor %.2f V, dynamic saving %.0f%%\n", vdd, savings*100)
	// Output:
	// Vdd floor 0.44 V, dynamic saving 46%
}

// The combined multi-Vdd + multi-Vth + re-sizing pipeline on a generated
// block.
func ExampleRunFlow() {
	tech := netlist.MustNewTech(100, 0.65)
	p := netlist.DefaultGenParams()
	p.Gates = 1000
	p.Seed = 42
	c, err := netlist.Generate(tech, p)
	if err != nil {
		panic(err)
	}
	if _, err := sta.SetPeriodFromCritical(c, 1.15); err != nil {
		panic(err)
	}
	res, err := core.RunFlow(c, core.DefaultFlowOptions())
	if err != nil {
		panic(err)
	}
	fmt.Printf("timing met: %v, power reduced: %v\n", res.TimingMet, res.TotalSaving > 0.3)
	// Output:
	// timing met: true, power reduced: true
}
