// Package core implements the paper's primary advocated contribution
// (§3.3): the scalable dynamic/static power approach combining multiple
// supply voltages, multiple thresholds, and transistor re-sizing.
//
// It has two faces. The policy face models the continuous design space of
// Figures 3 and 4: how the threshold should track a falling supply
// (constant Vth, constant static power, or conservative scaling) and what
// that does to delay and to the dynamic/static power balance. The flow face
// runs the discrete netlist optimization pipeline — CVS supply assignment,
// dual-Vth assignment, then downsizing — and reports the combined result.
package core

import (
	"fmt"
	"math"

	"nanometer/internal/device"
	"nanometer/internal/gate"
	"nanometer/internal/mathx"
)

// Policy selects how the threshold voltage tracks a reduced supply.
type Policy int

const (
	// ConstantVth holds the threshold at its nominal value; static power
	// then falls roughly quadratically with Vdd (DIBL shrinks Ioff), but
	// delay degrades steeply as the supply approaches the threshold.
	ConstantVth Policy = iota
	// ConstantPstatic lowers Vth as Vdd falls so that Ioff·Vdd stays
	// constant — the paper's headline policy: at 35 nm it holds the delay
	// increase under ~30 % at Vdd = 0.2 V while dynamic power drops 89 %.
	ConstantPstatic
	// Conservative lowers Vth only enough to hold Ioff constant, so static
	// power falls linearly with Vdd; delay lands between the other two.
	Conservative
)

func (p Policy) String() string {
	switch p {
	case ConstantVth:
		return "constant Vth"
	case ConstantPstatic:
		return "scaled Vth, constant Pstatic"
	case Conservative:
		return "conservatively scaled Vth"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Policies lists all supply-scaling policies.
func Policies() []Policy { return []Policy{ConstantVth, ConstantPstatic, Conservative} }

// OperatingPoint is one evaluated (Vdd, policy) point of the design space.
type OperatingPoint struct {
	Policy Policy
	Vdd    float64
	// Vth is the applied threshold under the policy.
	Vth float64
	// DelayNorm is delay normalized to the nominal-supply point.
	DelayNorm float64
	// PdynNorm is dynamic power normalized to nominal (∝ Vdd² at fixed
	// frequency and capacitance).
	PdynNorm float64
	// PstaticNorm is static power normalized to nominal.
	PstaticNorm float64
	// DynOverStatic is Pdynamic/Pstatic at the evaluation activity.
	DynOverStatic float64
}

// Explorer evaluates the policy design space for one node's reference
// inverter.
type Explorer struct {
	// NodeNM is the roadmap node (Figure 3/4 use 35 nm).
	NodeNM int
	// TemperatureK is the analysis temperature (default 300 K).
	TemperatureK float64
	// Activity and ClockHz set the dynamic-power operating point for the
	// Pdyn/Pstatic ratio (Figure 4 uses activity 0.1 at the node clock).
	Activity float64
	ClockHz  float64

	inv     *gate.Gate
	nominal struct {
		vdd, vth, delay, pdyn, pstat float64
	}
}

// NewExplorer builds the explorer for a node at its nominal supply and
// threshold.
func NewExplorer(nodeNM int, tKelvin, activity, clockHz float64) (*Explorer, error) {
	return NewExplorerIn(device.BaseLab(), nodeNM, tKelvin, activity, clockHz)
}

// NewExplorerIn is NewExplorer against an explicit laboratory.
func NewExplorerIn(lab *device.Lab, nodeNM int, tKelvin, activity, clockHz float64) (*Explorer, error) {
	inv, err := gate.ReferenceInverterIn(lab, nodeNM)
	if err != nil {
		return nil, err
	}
	e := &Explorer{
		NodeNM:       nodeNM,
		TemperatureK: tKelvin,
		Activity:     activity,
		ClockHz:      clockHz,
		inv:          inv,
	}
	n := inv.N
	e.nominal.vdd = n.VddRef
	e.nominal.vth = n.Vth0
	e.nominal.delay = inv.FO4Delay(n.VddRef, tKelvin)
	e.nominal.pdyn = inv.DynamicPower(activity, clockHz, n.VddRef, inv.FO4Load(-1))
	e.nominal.pstat = inv.LeakagePower(n.VddRef, tKelvin)
	return e, nil
}

// NominalVdd returns the node's nominal supply.
func (e *Explorer) NominalVdd() float64 { return e.nominal.vdd }

// VthFor returns the threshold a policy applies at supply vdd.
func (e *Explorer) VthFor(p Policy, vdd float64) (float64, error) {
	n := e.inv.N
	switch p {
	case ConstantVth:
		return n.Vth0, nil
	case ConstantPstatic:
		target := n.IoffPerWidth(e.nominal.vdd, e.TemperatureK) * e.nominal.vdd
		return solveVth(n, e.TemperatureK, vdd, func(d *device.Device) float64 {
			return d.IoffPerWidth(vdd, e.TemperatureK)*vdd - target
		})
	case Conservative:
		target := n.IoffPerWidth(e.nominal.vdd, e.TemperatureK)
		return solveVth(n, e.TemperatureK, vdd, func(d *device.Device) float64 {
			return d.IoffPerWidth(vdd, e.TemperatureK) - target
		})
	}
	return 0, fmt.Errorf("core: unknown policy %v", p)
}

// solveVth finds the threshold making f zero; f must be decreasing in Vth.
func solveVth(n *device.Device, tKelvin, vdd float64, f func(*device.Device) float64) (float64, error) {
	g := func(vth float64) float64 { return f(n.WithVth(vth)) }
	lo, hi, err := mathx.FindBracket(g, -0.2, 0.5, 20)
	if err != nil {
		return 0, fmt.Errorf("core: no Vth solution: %w", err)
	}
	return mathx.Brent(g, lo, hi, 1e-9)
}

// At evaluates the design point for a policy at supply vdd.
func (e *Explorer) At(p Policy, vdd float64) (OperatingPoint, error) {
	vth, err := e.VthFor(p, vdd)
	if err != nil {
		return OperatingPoint{}, err
	}
	inv := e.inv.WithVth(vth)
	delay := inv.FO4Delay(vdd, e.TemperatureK)
	pdyn := inv.DynamicPower(e.Activity, e.ClockHz, vdd, inv.FO4Load(-1))
	pstat := inv.LeakagePower(vdd, e.TemperatureK)
	op := OperatingPoint{
		Policy:      p,
		Vdd:         vdd,
		Vth:         vth,
		DelayNorm:   delay / e.nominal.delay,
		PdynNorm:    pdyn / e.nominal.pdyn,
		PstaticNorm: pstat / e.nominal.pstat,
	}
	if pstat > 0 {
		op.DynOverStatic = pdyn / pstat
	} else {
		op.DynOverStatic = math.Inf(1)
	}
	return op, nil
}

// Sweep evaluates a policy across supplies (ascending slice).
func (e *Explorer) Sweep(p Policy, vdds []float64) ([]OperatingPoint, error) {
	out := make([]OperatingPoint, 0, len(vdds))
	for _, v := range vdds {
		op, err := e.At(p, v)
		if err != nil {
			return nil, fmt.Errorf("core: policy %v at %g V: %w", p, v, err)
		}
		out = append(out, op)
	}
	return out, nil
}

// VddFloor returns the lowest supply at which Pdynamic ≥ ratio·Pstatic
// under the policy — the paper's §3.3 computation: with the ITRS 10×
// constraint and the constant-Pstatic policy at 35 nm, Vdd ≈ 0.44 V,
// saving 46 % of dynamic power.
func (e *Explorer) VddFloor(p Policy, ratio float64) (vdd float64, savings float64, err error) {
	f := func(v float64) float64 {
		op, opErr := e.At(p, v)
		if opErr != nil {
			return math.NaN()
		}
		return op.DynOverStatic - ratio
	}
	lo, hi := 0.1, e.nominal.vdd
	if f(hi) < 0 {
		return 0, 0, fmt.Errorf("core: ratio %g not met even at nominal Vdd", ratio)
	}
	if f(lo) > 0 {
		// The whole range satisfies the constraint.
		op, _ := e.At(p, lo)
		return lo, 1 - op.PdynNorm, nil
	}
	v, err := mathx.Brent(f, lo, hi, 1e-5)
	if err != nil {
		return 0, 0, err
	}
	op, err := e.At(p, v)
	if err != nil {
		return 0, 0, err
	}
	return v, 1 - op.PdynNorm, nil
}
