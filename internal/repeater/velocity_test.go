package repeater

import (
	"testing"

	"nanometer/internal/itrs"
	"nanometer/internal/wire"
)

func TestSignalVelocity(t *testing.T) {
	d, err := UnitDriver(50, t85)
	if err != nil {
		t.Fatal(err)
	}
	scaled := wire.MustForNode(50, wire.Global)
	unscaled := wire.UnscaledGlobal()
	vS := SignalVelocity(d, scaled)
	vU := SignalVelocity(d, unscaled)
	if vS <= 0 || vU <= 0 {
		t.Fatalf("velocities must be positive: %g, %g", vS, vU)
	}
	if vU <= vS {
		t.Fatalf("fat unscaled wiring must be faster: %g vs %g", vU, vS)
	}
	// Velocity is length-independent: a repeated 10 mm line's delay matches
	// length/velocity within a few percent.
	ins := Optimize(d, scaled, 10e-3)
	fromV := 10e-3 / vS
	if ins.Delay < 0.9*fromV || ins.Delay > 1.15*fromV {
		t.Fatalf("velocity model inconsistent with direct optimization: %g vs %g", ins.Delay, fromV)
	}
}

func TestClockFeasibilityReproducesRef9(t *testing.T) {
	// The §2.2 premise from [9]: ITRS global clocks remain usable if the
	// top-level wiring does not scale; scaled wiring collapses.
	var prevScaled float64
	for _, nm := range itrs.Nodes() {
		cf, err := EvaluateClockFeasibility(nm)
		if err != nil {
			t.Fatalf("%d nm: %v", nm, err)
		}
		if cf.UnscaledCycles > cf.ScaledCycles+1e-9 {
			t.Fatalf("%d nm: unscaled wiring must not be slower (%g vs %g cycles)",
				nm, cf.UnscaledCycles, cf.ScaledCycles)
		}
		if nm < 180 && cf.ScaledCycles < prevScaled {
			t.Fatalf("%d nm: scaled-wiring crossing time must grow with scaling", nm)
		}
		prevScaled = cf.ScaledCycles
	}
	cf35, err := EvaluateClockFeasibility(35)
	if err != nil {
		t.Fatal(err)
	}
	// Scaled wiring needs ~an order of magnitude more cycles per die edge;
	// unscaled wiring holds it to a small pipeline depth.
	if cf35.ScaledCycles < 3*cf35.UnscaledCycles {
		t.Fatalf("35 nm: scaled (%g) vs unscaled (%g) cycles — the unscaled advantage is the premise",
			cf35.ScaledCycles, cf35.UnscaledCycles)
	}
	if cf35.UnscaledCycles > 4 {
		t.Fatalf("35 nm: unscaled wiring should cross the die in a few cycles, got %g", cf35.UnscaledCycles)
	}
	if _, err := EvaluateClockFeasibility(65); err == nil {
		t.Fatalf("unknown node must error")
	}
}
