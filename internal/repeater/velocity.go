package repeater

import (
	"fmt"

	"nanometer/internal/device"
	"nanometer/internal/wire"
)

// SignalVelocity returns the asymptotic propagation velocity (m/s) of an
// optimally repeated line: segment length over segment delay. Repeated
// lines are linear in length, so velocity is the natural figure of merit
// for "can a signal cross the die in the clock budget".
func SignalVelocity(d Driver, l wire.Line) float64 {
	spacing := OptimalSpacing(d, l)
	_, h := OptimalClosedForm(d, l, 1)
	t := segmentDelay(d, l, spacing, 1, h)
	if t <= 0 {
		return 0
	}
	return spacing / t
}

// ClockFeasibility evaluates the §2.2 premise from [9]: whether the ITRS
// global clock target can be met by repeated signaling, on scaled vs
// unscaled top-level wiring.
type ClockFeasibility struct {
	NodeNM int
	// ScaledMMPerCycle and UnscaledMMPerCycle are the distances a signal
	// covers in one global clock period on each wiring style.
	ScaledMMPerCycle, UnscaledMMPerCycle float64
	// DieEdgeMM is the span to beat (one die edge per handful of cycles).
	DieEdgeMM float64
	// ScaledCycles and UnscaledCycles are die-edge crossing times in clock
	// cycles.
	ScaledCycles, UnscaledCycles float64
}

// EvaluateClockFeasibility computes the comparison for a node at 85 °C.
func EvaluateClockFeasibility(nodeNM int) (ClockFeasibility, error) {
	return EvaluateClockFeasibilityIn(device.BaseLab(), nodeNM)
}

// EvaluateClockFeasibilityIn is EvaluateClockFeasibility against an explicit
// laboratory.
func EvaluateClockFeasibilityIn(lab *device.Lab, nodeNM int) (ClockFeasibility, error) {
	node, err := lab.Node(nodeNM)
	if err != nil {
		return ClockFeasibility{}, err
	}
	d, err := UnitDriverIn(lab, nodeNM, 358.15)
	if err != nil {
		return ClockFeasibility{}, err
	}
	scaled, err := wire.ForNodeIn(lab.Table(), nodeNM, wire.Global)
	if err != nil {
		return ClockFeasibility{}, err
	}
	unscaled := wire.UnscaledGlobal()
	edge, err := wire.CrossChipLengthIn(lab.Table(), nodeNM)
	if err != nil {
		return ClockFeasibility{}, err
	}
	vS := SignalVelocity(d, scaled)
	vU := SignalVelocity(d, unscaled)
	period := 1 / node.ClockHz
	out := ClockFeasibility{
		NodeNM:             nodeNM,
		ScaledMMPerCycle:   vS * period * 1e3,
		UnscaledMMPerCycle: vU * period * 1e3,
		DieEdgeMM:          edge * 1e3,
	}
	if vS > 0 {
		out.ScaledCycles = edge / vS * node.ClockHz
	}
	if vU > 0 {
		out.UnscaledCycles = edge / vU * node.ClockHz
	}
	if out.UnscaledCycles == 0 {
		return out, fmt.Errorf("repeater: degenerate velocity at %d nm", nodeNM)
	}
	return out, nil
}
