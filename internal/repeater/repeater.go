// Package repeater implements classical CMOS repeater insertion on
// distributed RC lines — the "current signaling paradigm" of the paper's
// §2.2 — including closed-form and numerically optimized repeater count and
// sizing, per-line delay and energy, and a chip-level repeater census and
// power roll-up calibrated to the counts the paper cites (≈10⁴ repeaters in
// a 180 nm MPU growing to ≈10⁶ at 50 nm, >50 W of global-signaling power).
package repeater

import (
	"fmt"
	"math"

	"nanometer/internal/device"
	"nanometer/internal/gate"
	"nanometer/internal/mathx"
	"nanometer/internal/wire"
)

// Driver captures the unit-inverter drive characteristics repeaters are
// sized from.
type Driver struct {
	// R0 is the unit-size drive resistance (Ω), C0 the unit input
	// capacitance (F), Cp the unit parasitic output capacitance (F).
	R0, C0, Cp float64
	// Vdd is the supply the characteristics were extracted at.
	Vdd float64
}

// UnitDriver extracts the unit repeater driver for a node at its nominal
// supply and temperature tKelvin. The unit cell is a Wn/L = 1, Wp/L = 2
// inverter.
func UnitDriver(nodeNM int, tKelvin float64) (Driver, error) {
	return UnitDriverIn(device.BaseLab(), nodeNM, tKelvin)
}

// UnitDriverIn is UnitDriver against an explicit laboratory.
func UnitDriverIn(lab *device.Lab, nodeNM int, tKelvin float64) (Driver, error) {
	n, err := lab.ForNode(nodeNM)
	if err != nil {
		return Driver{}, err
	}
	p, err := lab.ForNodePMOS(nodeNM)
	if err != nil {
		return Driver{}, err
	}
	node, err := lab.Node(nodeNM)
	if err != nil {
		return Driver{}, err
	}
	inv := gate.NewInverter(n, p, 1, 2)
	in := n.IonPerWidth(node.Vdd, tKelvin) * inv.WnM
	ip := p.IonPerWidth(node.Vdd, tKelvin) * inv.WpM
	if in <= 0 || ip <= 0 {
		return Driver{}, fmt.Errorf("repeater: node %d drives no current", nodeNM)
	}
	// Effective switching resistance of the average transition.
	r0 := 0.5 * (node.Vdd/in + node.Vdd/ip)
	return Driver{
		R0:  r0,
		C0:  inv.InputCapacitance(),
		Cp:  inv.SelfCapacitance(),
		Vdd: node.Vdd,
	}, nil
}

// Insertion describes a repeated line solution.
type Insertion struct {
	// Count is the number of repeaters; Size their drive strength in unit
	// inverters.
	Count int
	Size  float64
	// Delay is the end-to-end propagation delay (s).
	Delay float64
	// EnergyPerTransition is the switched energy per full transition (J),
	// wire plus repeater capacitance.
	EnergyPerTransition float64
	// RepeaterCapF and WireCapF break the switched capacitance down.
	RepeaterCapF, WireCapF float64
}

// segmentDelay returns the delay of k repeaters of size h driving line l.
func segmentDelay(d Driver, l wire.Line, lengthM float64, k int, h float64) float64 {
	if k < 1 || h <= 0 {
		return math.Inf(1)
	}
	seg := lengthM / float64(k)
	rw := l.RPerM() * seg
	cw := l.CPerM() * seg
	rd := d.R0 / h
	cl := d.C0 * h // next repeater's input
	stage := 0.69*(rd*(d.Cp*h+cw+cl)+rw*cl) + 0.38*rw*cw
	return float64(k) * stage
}

// OptimalClosedForm returns the textbook closed-form repeater count and size
// for the line: k = L·sqrt(0.38·r·c / (0.69·R0·C0·(1+Cp/C0))),
// h = sqrt(R0·c/(r·C0)).
func OptimalClosedForm(d Driver, l wire.Line, lengthM float64) (k float64, h float64) {
	r, c := l.RPerM(), l.CPerM()
	k = lengthM * math.Sqrt(0.38*r*c/(0.69*d.R0*d.C0*(1+d.Cp/d.C0)))
	h = math.Sqrt(d.R0 * c / (r * d.C0))
	return k, h
}

// Optimize finds the delay-minimal insertion for the line numerically,
// seeding from the closed form and searching the integer neighborhood of k
// with a golden-section search over h.
func Optimize(d Driver, l wire.Line, lengthM float64) Insertion {
	kf, hf := OptimalClosedForm(d, l, lengthM)
	kLo := int(math.Max(1, math.Floor(kf/2)))
	kHi := int(math.Ceil(kf*2)) + 1
	bestK, bestH, bestT := 1, hf, math.Inf(1)
	for k := kLo; k <= kHi; k++ {
		h, t := mathx.GoldenSection(func(h float64) float64 {
			return segmentDelay(d, l, lengthM, k, h)
		}, math.Max(1, hf/8), hf*8+1, hf*1e-4+1e-9)
		if t < bestT {
			bestK, bestH, bestT = k, h, t
		}
	}
	return describe(d, l, lengthM, bestK, bestH, bestT)
}

// WithRepeaters evaluates a non-optimal explicit choice (used by the
// sizing-ablation bench).
func WithRepeaters(d Driver, l wire.Line, lengthM float64, k int, h float64) Insertion {
	return describe(d, l, lengthM, k, h, segmentDelay(d, l, lengthM, k, h))
}

func describe(d Driver, l wire.Line, lengthM float64, k int, h, t float64) Insertion {
	repCap := float64(k) * (d.C0 + d.Cp) * h
	wireCap := l.CPerM() * lengthM
	return Insertion{
		Count:               k,
		Size:                h,
		Delay:               t,
		EnergyPerTransition: (repCap + wireCap) * d.Vdd * d.Vdd,
		RepeaterCapF:        repCap,
		WireCapF:            wireCap,
	}
}

// OptimalSpacing returns the delay-optimal repeater spacing (m) for the
// line, independent of total length.
func OptimalSpacing(d Driver, l wire.Line) float64 {
	k, _ := OptimalClosedForm(d, l, 1.0) // repeaters per meter
	if k <= 0 {
		return math.Inf(1)
	}
	return 1.0 / k
}

// Census models the chip-level repeater population.
type Census struct {
	NodeNM int
	// RepeatedWireM is the total repeated wirelength (m).
	RepeatedWireM float64
	// Spacing is the optimal repeater spacing used (m).
	Spacing float64
	// Repeaters is the estimated chip repeater count.
	Repeaters int
	// SignalingPowerW is the total global-signaling switching power at the
	// node's global clock with the assumed activity.
	SignalingPowerW float64
	// RepeaterAreaFraction is the silicon area consumed by repeaters,
	// relative to die area (rough, for floorplanning commentary).
	RepeaterAreaFraction float64
	// ClusterPowerDensityWPerM2 is the power density inside a repeater
	// cluster (repeater switching power over repeater silicon area) — the
	// paper's footnote 2: clustering repeaters for floorplanning produces
	// local densities that "can exceed 100 W/cm²", stressing the grid.
	ClusterPowerDensityWPerM2 float64
}

// CensusParams tunes the census model; zero values select defaults.
type CensusParams struct {
	// GlobalUtilization is the fraction of global-tier routing capacity
	// occupied by repeated signal wiring. It grows across nodes as designs
	// use more metal levels; the defaults are calibrated to the paper's
	// 10⁴ (180 nm) → 10⁶ (50 nm) repeater counts.
	GlobalUtilization float64
	// Activity is the data activity factor of global wiring.
	Activity float64
	// Temperature is the junction temperature (K) for drive extraction.
	Temperature float64
}

func (p *CensusParams) fill(nodeNM int) {
	if p.GlobalUtilization == 0 {
		// Linear-in-node-index ramp 180→35 nm.
		u := map[int]float64{180: 0.10, 130: 0.14, 100: 0.19, 70: 0.25, 50: 0.31, 35: 0.38}
		p.GlobalUtilization = u[nodeNM]
		if p.GlobalUtilization == 0 {
			p.GlobalUtilization = 0.2
		}
	}
	if p.Activity == 0 {
		p.Activity = 0.15
	}
	if p.Temperature == 0 {
		p.Temperature = 358.15 // 85 °C junction
	}
}

// TakeCensus estimates the repeater count and signaling power for a node
// under the repeated full-swing CMOS paradigm.
func TakeCensus(nodeNM int, params CensusParams) (Census, error) {
	return TakeCensusIn(device.BaseLab(), nodeNM, params)
}

// TakeCensusIn is TakeCensus against an explicit laboratory.
func TakeCensusIn(lab *device.Lab, nodeNM int, params CensusParams) (Census, error) {
	params.fill(nodeNM)
	node, err := lab.Node(nodeNM)
	if err != nil {
		return Census{}, err
	}
	d, err := UnitDriverIn(lab, nodeNM, params.Temperature)
	if err != nil {
		return Census{}, err
	}
	line, err := wire.ForNodeIn(lab.Table(), nodeNM, wire.Global)
	if err != nil {
		return Census{}, err
	}
	// Repeated wirelength: utilization of one global routing tier.
	ltot := params.GlobalUtilization * node.DieAreaM2 / node.WirePitchGlobalM
	spacing := OptimalSpacing(d, line)
	count := int(ltot / spacing)
	_, h := OptimalClosedForm(d, line, 1)
	repCap := float64(count) * (d.C0 + d.Cp) * h
	wireCap := line.CPerM() * ltot
	energy := (repCap + wireCap) * node.Vdd * node.Vdd
	power := params.Activity * node.ClockHz * energy
	// Repeater silicon footprint: ≈ 40 (W·L) device areas per unit size.
	repArea := float64(count) * h * 40 * node.LeffM * node.LeffM
	repPower := params.Activity * node.ClockHz * repCap * node.Vdd * node.Vdd
	clusterDensity := 0.0
	if repArea > 0 {
		clusterDensity = repPower / repArea
	}
	return Census{
		NodeNM:                    nodeNM,
		RepeatedWireM:             ltot,
		Spacing:                   spacing,
		Repeaters:                 count,
		SignalingPowerW:           power,
		RepeaterAreaFraction:      repArea / node.DieAreaM2,
		ClusterPowerDensityWPerM2: clusterDensity,
	}, nil
}
