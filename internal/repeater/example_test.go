package repeater_test

import (
	"fmt"

	"nanometer/internal/repeater"
	"nanometer/internal/units"
	"nanometer/internal/wire"
)

// Optimally repeat a 10 mm global wire at the 50 nm node — the §2.2
// baseline signaling style.
func ExampleOptimize() {
	drv, err := repeater.UnitDriver(50, units.CelsiusToKelvin(85))
	if err != nil {
		panic(err)
	}
	line := wire.MustForNode(50, wire.Global)
	ins := repeater.Optimize(drv, line, 10e-3)
	fmt.Printf("repeaters: %d, beats unrepeated RC: %v\n",
		ins.Count, ins.Delay < line.ElmoreDelay(10e-3))
	// Output:
	// repeaters: 54, beats unrepeated RC: true
}

// The chip-level repeater census: the paper's ~10⁴ repeaters at 180 nm
// growing to ~10⁶ at 50 nm, with >50 W of signaling power.
func ExampleTakeCensus() {
	c180, _ := repeater.TakeCensus(180, repeater.CensusParams{})
	c50, _ := repeater.TakeCensus(50, repeater.CensusParams{})
	fmt.Printf("180 nm ~10⁴: %v; 50 nm ~10⁶: %v; >50 W: %v\n",
		c180.Repeaters > 5e3 && c180.Repeaters < 1e5,
		c50.Repeaters > 5e5 && c50.Repeaters < 5e6,
		c50.SignalingPowerW > 50)
	// Output:
	// 180 nm ~10⁴: true; 50 nm ~10⁶: true; >50 W: true
}
