package repeater

import (
	"math"
	"testing"
	"testing/quick"

	"nanometer/internal/itrs"
	"nanometer/internal/units"
	"nanometer/internal/wire"
)

const t85 = 358.15

func TestUnitDriver(t *testing.T) {
	for _, nm := range itrs.Nodes() {
		d, err := UnitDriver(nm, t85)
		if err != nil {
			t.Fatalf("%d nm: %v", nm, err)
		}
		if d.R0 <= 0 || d.C0 <= 0 || d.Cp <= 0 || d.Vdd <= 0 {
			t.Fatalf("%d nm: invalid driver %+v", nm, d)
		}
		// Unit inverter intrinsic delay R0·C0 lands in the sub-ps to
		// tens-of-ps range across the roadmap.
		tau := d.R0 * d.C0
		if tau < 1e-14 || tau > 1e-10 {
			t.Fatalf("%d nm: τ = %g s out of range", nm, tau)
		}
	}
	if _, err := UnitDriver(65, t85); err == nil {
		t.Fatalf("unknown node must error")
	}
}

func TestOptimizeMatchesClosedForm(t *testing.T) {
	d, err := UnitDriver(50, t85)
	if err != nil {
		t.Fatal(err)
	}
	l := wire.MustForNode(50, wire.Global)
	length, _ := wire.CrossChipLength(50)
	ins := Optimize(d, l, length)
	kf, hf := OptimalClosedForm(d, l, length)
	if math.Abs(float64(ins.Count)-kf) > math.Max(2, 0.1*kf) {
		t.Fatalf("numeric count %d vs closed form %.1f", ins.Count, kf)
	}
	if math.Abs(ins.Size-hf)/hf > 0.15 {
		t.Fatalf("numeric size %.1f vs closed form %.1f", ins.Size, hf)
	}
}

func TestOptimizedBeatsUnrepeated(t *testing.T) {
	d, _ := UnitDriver(50, t85)
	l := wire.MustForNode(50, wire.Global)
	length := 10e-3
	ins := Optimize(d, l, length)
	if ins.Delay >= l.ElmoreDelay(length) {
		t.Fatalf("repeated line (%g) must beat the unrepeated RC diffusion (%g)",
			ins.Delay, l.ElmoreDelay(length))
	}
}

func TestOptimizedIsMinimum(t *testing.T) {
	// Perturbing the optimum in any direction must not improve delay.
	d, _ := UnitDriver(70, t85)
	l := wire.MustForNode(70, wire.Global)
	const length = 5e-3
	best := Optimize(d, l, length)
	for _, k := range []int{best.Count - 1, best.Count + 1} {
		if k < 1 {
			continue
		}
		if got := WithRepeaters(d, l, length, k, best.Size); got.Delay < best.Delay*(1-1e-9) {
			t.Fatalf("k=%d beats the optimum: %g < %g", k, got.Delay, best.Delay)
		}
	}
	for _, h := range []float64{best.Size * 0.9, best.Size * 1.1} {
		if got := WithRepeaters(d, l, length, best.Count, h); got.Delay < best.Delay*(1-1e-9) {
			t.Fatalf("h=%g beats the optimum: %g < %g", h, got.Delay, best.Delay)
		}
	}
}

func TestRepeatedDelayIsLinearInLength(t *testing.T) {
	// The whole point of repeaters: delay grows ~linearly, not
	// quadratically, with length.
	d, _ := UnitDriver(50, t85)
	l := wire.MustForNode(50, wire.Global)
	d1 := Optimize(d, l, 5e-3).Delay
	d2 := Optimize(d, l, 10e-3).Delay
	if d2 > 2.3*d1 || d2 < 1.7*d1 {
		t.Fatalf("doubling length scaled delay by %.2f, want ≈2", d2/d1)
	}
}

func TestEnergyComposition(t *testing.T) {
	d, _ := UnitDriver(50, t85)
	l := wire.MustForNode(50, wire.Global)
	ins := Optimize(d, l, 10e-3)
	wantWire := l.CPerM() * 10e-3
	if !units.ApproxEqual(ins.WireCapF, wantWire, 1e-9, 0) {
		t.Fatalf("wire cap %g, want %g", ins.WireCapF, wantWire)
	}
	wantE := (ins.WireCapF + ins.RepeaterCapF) * d.Vdd * d.Vdd
	if !units.ApproxEqual(ins.EnergyPerTransition, wantE, 1e-9, 0) {
		t.Fatalf("energy %g, want %g", ins.EnergyPerTransition, wantE)
	}
	if ins.RepeaterCapF <= 0 {
		t.Fatalf("repeater capacitance must be positive")
	}
}

func TestOptimalSpacingShrinksWithScaling(t *testing.T) {
	prev := math.Inf(1)
	for _, nm := range itrs.Nodes() {
		d, err := UnitDriver(nm, t85)
		if err != nil {
			t.Fatal(err)
		}
		l := wire.MustForNode(nm, wire.Global)
		s := OptimalSpacing(d, l)
		if s <= 0 || s >= prev {
			t.Fatalf("%d nm: spacing %g must shrink with scaling (prev %g)", nm, s, prev)
		}
		prev = s
	}
}

func TestCensusPaperAnchors(t *testing.T) {
	// The paper: ~10⁴ repeaters in a large 180 nm MPU, ~10⁶ at 50 nm,
	// >50 W of repeated-CMOS signaling power in the nanometer regime.
	c180, err := TakeCensus(180, CensusParams{})
	if err != nil {
		t.Fatal(err)
	}
	if c180.Repeaters < 5e3 || c180.Repeaters > 8e4 {
		t.Fatalf("180 nm census = %d repeaters, paper says ~10⁴", c180.Repeaters)
	}
	c50, err := TakeCensus(50, CensusParams{})
	if err != nil {
		t.Fatal(err)
	}
	if c50.Repeaters < 3e5 || c50.Repeaters > 5e6 {
		t.Fatalf("50 nm census = %d repeaters, paper says ~10⁶", c50.Repeaters)
	}
	if c50.SignalingPowerW < 50 {
		t.Fatalf("50 nm signaling power = %.1f W, paper says >50 W", c50.SignalingPowerW)
	}
	if ratio := float64(c50.Repeaters) / float64(c180.Repeaters); ratio < 30 {
		t.Fatalf("repeater growth 180→50 nm = %.0f×, paper implies ~100×", ratio)
	}
	if c50.RepeaterAreaFraction <= c180.RepeaterAreaFraction {
		t.Fatalf("repeater area share must grow with scaling")
	}
}

func TestCensusParamOverrides(t *testing.T) {
	base, _ := TakeCensus(50, CensusParams{})
	hot, err := TakeCensus(50, CensusParams{Activity: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(hot.SignalingPowerW, 2*base.SignalingPowerW, 1e-9, 0) {
		t.Fatalf("doubling activity must double power")
	}
	if _, err := TakeCensus(65, CensusParams{}); err == nil {
		t.Fatalf("unknown node must error")
	}
}

// Property: the numeric optimum never loses to an arbitrary configuration.
func TestOptimizeDominates(t *testing.T) {
	d, _ := UnitDriver(100, t85)
	l := wire.MustForNode(100, wire.Global)
	const length = 8e-3
	best := Optimize(d, l, length)
	f := func(kSeed, hSeed uint8) bool {
		k := 1 + int(kSeed)%60
		h := 1 + float64(hSeed)*8
		return WithRepeaters(d, l, length, k, h).Delay >= best.Delay*(1-1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClusterPowerDensityExceeds100WPerCm2(t *testing.T) {
	// Footnote 2: repeater clusters produce local power densities that
	// "can exceed 100 W/cm²" in the nanometer regime.
	c, err := TakeCensus(50, CensusParams{})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.ClusterPowerDensityWPerM2 / 1e4; got < 100 {
		t.Fatalf("50 nm cluster density = %.0f W/cm², paper says it can exceed 100", got)
	}
	// And it is far above the chip-average density.
	avg := 50.0 * 1e4 // ~50 W/cm² chip average at the nanometer nodes
	if c.ClusterPowerDensityWPerM2 < 2*avg {
		t.Fatalf("cluster density must dwarf the chip average")
	}
	// The 180 nm clusters run much cooler.
	c180, err := TakeCensus(180, CensusParams{})
	if err != nil {
		t.Fatal(err)
	}
	if c180.ClusterPowerDensityWPerM2 >= c.ClusterPowerDensityWPerM2 {
		t.Fatalf("cluster density must rise with scaling")
	}
}
