package netlist

import (
	"fmt"
	"math/rand"

	"nanometer/internal/gate"
)

// GenParams controls the random-logic generator. The generator produces
// layered DAGs whose path-depth spread yields MPU-like slack distributions
// (the paper cites [21,22]: over half of all timing paths use less than half
// the clock cycle).
type GenParams struct {
	// Gates is the target gate count; Levels the logic depth.
	Gates, Levels int
	// PIs is the primary-input count; zero derives one from Gates.
	PIs int
	// DepthSpread in (0,1] widens the distribution of path depths: a gate
	// at level L draws fanins from up to DepthSpread·L levels back.
	DepthSpread float64
	// ShortPathFraction seeds this fraction of gates as near-PI shallow
	// logic, fattening the high-slack population.
	ShortPathFraction float64
	// WireCapPerFanoutF is the net wire capacitance added per fanout.
	// Zero selects a node-appropriate default (≈12 µm of local wire).
	WireCapPerFanoutF float64
	// InitialSize is the starting drive strength (unit cells).
	InitialSize float64
	// Seed fixes the generator.
	Seed int64
}

// DefaultGenParams returns a medium MPU-block-like configuration.
func DefaultGenParams() GenParams {
	return GenParams{
		Gates:             4000,
		Levels:            24,
		DepthSpread:       0.5,
		ShortPathFraction: 0.35,
		InitialSize:       2,
		Seed:              42,
	}
}

// Generate builds a random combinational circuit over the tech.
func Generate(t *Tech, p GenParams) (*Circuit, error) {
	if p.Gates < 4 {
		return nil, fmt.Errorf("netlist: need at least 4 gates, got %d", p.Gates)
	}
	if p.Levels < 2 {
		return nil, fmt.Errorf("netlist: need at least 2 levels, got %d", p.Levels)
	}
	if p.DepthSpread <= 0 || p.DepthSpread > 1 {
		p.DepthSpread = 0.5
	}
	if p.InitialSize <= 0 {
		p.InitialSize = 2
	}
	if p.PIs == 0 {
		p.PIs = p.Gates/8 + 4
	}
	if p.WireCapPerFanoutF == 0 {
		// ≈12 µm of 0.2 fF/µm local wire per fanout.
		p.WireCapPerFanoutF = 12e-6 * 2.0e-10
	}
	rng := rand.New(rand.NewSource(p.Seed))

	c := &Circuit{Tech: t, NumPIs: p.PIs, PIActivity: 0.15}
	// Assign a level to each gate: a shallow population plus a roughly
	// uniform spread over the remaining levels.
	levels := make([]int, p.Gates)
	for i := range levels {
		if rng.Float64() < p.ShortPathFraction {
			levels[i] = 1 + rng.Intn(maxInt(1, p.Levels/4))
		} else {
			// Skew the remaining population toward shallow levels (real
			// blocks concentrate logic near the registers; the deep
			// critical spine is thin).
			f := rng.Float64()
			levels[i] = 1 + int(f*f*float64(p.Levels))
			if levels[i] > p.Levels {
				levels[i] = p.Levels
			}
		}
	}
	// Topological order = nondecreasing level.
	sortByLevel(levels)

	// Index gates by level for fanin selection; uses tracks fanout counts
	// for the low-fanout bias.
	byLevel := make([][]int, p.Levels+1)
	uses := make([]int, p.Gates)
	kinds := []gate.Kind{gate.Inv, gate.Nand, gate.Nand, gate.Nor, gate.Nand}
	for i := 0; i < p.Gates; i++ {
		lvl := levels[i]
		kind := kinds[rng.Intn(len(kinds))]
		inputs := 1
		if kind != gate.Inv {
			inputs = 2
			if rng.Float64() < 0.25 {
				inputs = 3
			}
		}
		g := Gate{
			ID:       i,
			Kind:     kind,
			Size:     p.InitialSize,
			VddClass: 0,
			VthClass: 0,
		}
		// Draw fanins from earlier levels within the spread window, or PIs.
		back := maxInt(1, int(float64(lvl)*p.DepthSpread*float64(p.Levels))/p.Levels)
		loLvl := maxInt(0, lvl-1-back)
		for k := 0; k < inputs; k++ {
			src := -1
			// Prefer the immediately preceding levels for long paths, and
			// bias toward not-yet-driven candidates so the netlist has few
			// dangling outputs (real blocks have gates ≫ register sinks).
			for attempt := 0; attempt < 4 && src < 0; attempt++ {
				pick := loLvl + rng.Intn(lvl-loLvl)
				cands := byLevel[pick]
				if len(cands) == 0 {
					continue
				}
				if rng.Float64() < 0.5 {
					best, bestUses := -1, 1<<30
					for trial := 0; trial < 4; trial++ {
						c := cands[rng.Intn(len(cands))]
						if uses[c] < bestUses {
							best, bestUses = c, uses[c]
						}
					}
					src = best
				} else {
					src = cands[rng.Intn(len(cands))]
				}
			}
			if src < 0 {
				g.Inputs = append(g.Inputs, PI(rng.Intn(p.PIs)))
			} else {
				g.Inputs = append(g.Inputs, src)
				uses[src]++
			}
		}
		c.Gates = append(c.Gates, g)
		byLevel[lvl] = append(byLevel[lvl], i)
	}
	c.Rebuild()
	// Wire load per net grows with fanout count.
	for i := range c.Gates {
		g := &c.Gates[i]
		n := len(g.Fanouts)
		if n == 0 {
			n = 1 // PO net still has wire
		}
		g.WireCapF = float64(n) * p.WireCapPerFanoutF * (0.5 + rng.Float64())
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("netlist: generated circuit invalid: %w", err)
	}
	return c, nil
}

func sortByLevel(levels []int) {
	// Counting sort (levels are small).
	maxL := 0
	for _, l := range levels {
		if l > maxL {
			maxL = l
		}
	}
	counts := make([]int, maxL+1)
	for _, l := range levels {
		counts[l]++
	}
	i := 0
	for l, n := range counts {
		for k := 0; k < n; k++ {
			levels[i] = l
			i++
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
