package netlist

import (
	"testing"

	"nanometer/internal/gate"
	"nanometer/internal/units"
)

func genTest(t *testing.T, gates int, seed int64) *Circuit {
	t.Helper()
	tech := MustNewTech(100, 0.65)
	p := DefaultGenParams()
	p.Gates = gates
	p.Seed = seed
	c, err := Generate(tech, p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGenerateValid(t *testing.T) {
	c := genTest(t, 800, 1)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Gates != 800 {
		t.Fatalf("got %d gates, want 800", st.Gates)
	}
	if st.POs == 0 || st.POs >= st.Gates/2 {
		t.Fatalf("PO count %d implausible", st.POs)
	}
	if len(st.ByKind) < 3 {
		t.Fatalf("generator should mix INV/NAND/NOR, got %v", st.ByKind)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genTest(t, 500, 7)
	b := genTest(t, 500, 7)
	for i := range a.Gates {
		ga, gb := a.Gates[i], b.Gates[i]
		if ga.Kind != gb.Kind || len(ga.Inputs) != len(gb.Inputs) || ga.WireCapF != gb.WireCapF {
			t.Fatalf("gate %d differs between identical seeds", i)
		}
	}
	cOther := genTest(t, 500, 8)
	diff := false
	for i := range a.Gates {
		if a.Gates[i].Kind != cOther.Gates[i].Kind || len(a.Gates[i].Inputs) != len(cOther.Gates[i].Inputs) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatalf("different seeds should give different circuits")
	}
}

func TestGenerateErrors(t *testing.T) {
	tech := MustNewTech(100, 0.65)
	p := DefaultGenParams()
	p.Gates = 2
	if _, err := Generate(tech, p); err == nil {
		t.Fatalf("tiny gate count must error")
	}
	p = DefaultGenParams()
	p.Levels = 1
	if _, err := Generate(tech, p); err == nil {
		t.Fatalf("single level must error")
	}
}

func TestFanoutConsistency(t *testing.T) {
	c := genTest(t, 600, 3)
	// Every fanout edge must correspond to an input edge and vice versa.
	inEdges := 0
	for i := range c.Gates {
		for _, ref := range c.Gates[i].Inputs {
			if _, isPI := IsPI(ref); !isPI {
				inEdges++
				found := false
				for _, fo := range c.Gates[ref].Fanouts {
					if fo == i {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("edge %d→%d missing from fanout list", ref, i)
				}
			}
		}
	}
	outEdges := 0
	for i := range c.Gates {
		outEdges += len(c.Gates[i].Fanouts)
	}
	if inEdges != outEdges {
		t.Fatalf("edge count mismatch: %d in vs %d out", inEdges, outEdges)
	}
}

func TestPIEncoding(t *testing.T) {
	for i := 0; i < 10; i++ {
		ref := PI(i)
		got, ok := IsPI(ref)
		if !ok || got != i {
			t.Fatalf("PI round trip failed for %d", i)
		}
	}
	if _, ok := IsPI(5); ok {
		t.Fatalf("non-negative refs are gates")
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	base := genTest(t, 100, 1)
	mutate := []func(*Circuit){
		func(c *Circuit) { c.Gates[5].Size = 0 },
		func(c *Circuit) { c.Gates[5].VddClass = 9 },
		func(c *Circuit) { c.Gates[5].VthClass = -1 },
		func(c *Circuit) { c.Gates[5].Inputs = nil },
		func(c *Circuit) { c.Gates[5].Inputs = []int{99} },         // forward reference
		func(c *Circuit) { c.Gates[5].Inputs = []int{PI(100000)} }, // bad PI
		func(c *Circuit) { c.Gates[5].ID = 7 },
		func(c *Circuit) { c.Tech = nil },
	}
	for i, m := range mutate {
		c := base.Clone()
		m(c)
		if err := c.Validate(); err == nil {
			t.Errorf("violation %d not caught", i)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := genTest(t, 100, 1)
	b := a.Clone()
	b.Gates[3].Size = 99
	b.Gates[3].Inputs[0] = PI(0)
	if a.Gates[3].Size == 99 {
		t.Fatalf("clone shares gate storage")
	}
	if a.Gates[3].Inputs[0] == PI(0) && a.Gates[3].Inputs[0] != b.Gates[3].Inputs[0] {
		t.Fatalf("clone shares input slices")
	}
}

func TestLoadOnComposition(t *testing.T) {
	c := genTest(t, 300, 2)
	// Find a gate with fanouts.
	for i := range c.Gates {
		g := &c.Gates[i]
		if len(g.Fanouts) == 0 {
			continue
		}
		load := c.LoadOn(g)
		if load <= g.WireCapF {
			t.Fatalf("load must include fanout pins beyond the wire")
		}
		// Attaching a level converter adds load.
		g.NeedsLC = true
		if c.LoadOn(g) <= load {
			t.Fatalf("level converter must add load")
		}
		g.NeedsLC = false
		return
	}
	t.Fatalf("no gate with fanouts found")
}

func TestTechLevels(t *testing.T) {
	tech := MustNewTech(100, 0.65)
	if !tech.HasLowVdd() {
		t.Fatalf("two-supply tech expected")
	}
	if !units.ApproxEqual(tech.Vdd(1), 0.65*tech.VddH(), 1e-9, 0) {
		t.Fatalf("Vdd,l = %g, want 0.65·Vdd,h", tech.Vdd(1))
	}
	if len(tech.VthLevels) != 2 || tech.VthLevels[1]-tech.VthLevels[0] != VthOffsetHigh {
		t.Fatalf("Vth levels = %v, want nominal and +100 mV", tech.VthLevels)
	}
	single := MustNewTech(100, 0)
	if single.HasLowVdd() {
		t.Fatalf("lowRatio 0 must give a single supply")
	}
	if _, err := NewTech(100, 1.5); err == nil {
		t.Fatalf("low ratio ≥ 1 must error")
	}
	if _, err := NewTech(65, 0.65); err == nil {
		t.Fatalf("unknown node must error")
	}
}

func TestTechCellCharacteristics(t *testing.T) {
	tech := MustNewTech(100, 0.65)
	// Pin capacitance and leakage scale linearly with size.
	c1 := tech.PinCapacitance(gate.Inv, 1, 0, 0, 1)
	c2 := tech.PinCapacitance(gate.Inv, 1, 0, 0, 2)
	if !units.ApproxEqual(c2, 2*c1, 1e-9, 0) {
		t.Fatalf("pin capacitance must scale with size")
	}
	l1 := tech.CellLeakage(gate.Inv, 1, 0, 0, 1)
	l2 := tech.CellLeakage(gate.Inv, 1, 0, 0, 2)
	if !units.ApproxEqual(l2, 2*l1, 1e-9, 0) {
		t.Fatalf("leakage must scale with size")
	}
	// Bigger cells drive a fixed load faster.
	load := 20e-15
	if tech.CellDelay(gate.Inv, 1, 0, 0, 2, load) >= tech.CellDelay(gate.Inv, 1, 0, 0, 1, load) {
		t.Fatalf("upsizing must reduce delay into a fixed load")
	}
	// The low supply is slower.
	if tech.CellDelay(gate.Inv, 1, 1, 0, 1, load) <= tech.CellDelay(gate.Inv, 1, 0, 0, 1, load) {
		t.Fatalf("Vdd,l must be slower than Vdd,h")
	}
	// The high threshold leaks less and is slower.
	if tech.CellLeakage(gate.Inv, 1, 0, 1, 1) >= tech.CellLeakage(gate.Inv, 1, 0, 0, 1) {
		t.Fatalf("high Vth must leak less")
	}
	if tech.CellDelay(gate.Inv, 1, 0, 1, 1, load) <= tech.CellDelay(gate.Inv, 1, 0, 0, 1, load) {
		t.Fatalf("high Vth must be slower")
	}
	// Energy at the low supply is quadratically cheaper.
	eh := tech.CellEnergy(gate.Inv, 1, 0, 0, 1, load)
	el := tech.CellEnergy(gate.Inv, 1, 1, 0, 1, load)
	if !units.ApproxEqual(el/eh, 0.65*0.65, 1e-6, 0) {
		t.Fatalf("energy ratio = %g, want 0.65²", el/eh)
	}
	// Level converter pricing is positive.
	if tech.LevelConverterDelayS <= 0 || tech.LevelConverterEnergyJ <= 0 {
		t.Fatalf("level converter must have a cost")
	}
}

func TestGateDelayIncludesLCPenalty(t *testing.T) {
	c := genTest(t, 100, 4)
	g := &c.Gates[50]
	before := c.GateDelay(g)
	g.NeedsLC = true
	after := c.GateDelay(g)
	if after <= before+c.Tech.LevelConverterDelayS*0.99 {
		t.Fatalf("LC delay penalty missing: %g vs %g", after, before)
	}
}
