// Package netlist provides the gate-level substrate the paper's circuit
// techniques run on: a technology binding (node devices at multiple supply
// and threshold levels), a standard-cell library with drive-strength
// families, a netlist IR, and a deterministic random-logic generator with a
// controllable slack-distribution shape.
package netlist

import (
	"fmt"
	"math"

	"nanometer/internal/device"
	"nanometer/internal/gate"
	"nanometer/internal/units"
)

// Tech binds a roadmap node to the supply and threshold levels a design may
// use, and caches per-(kind, Vdd, Vth) unit-cell characteristics so netlist
// analysis stays cheap.
type Tech struct {
	NodeNM int
	// VddLevels are the available supplies, highest first (index 0 is
	// Vdd,h — the timing reference).
	VddLevels []float64
	// VthLevels are the available thresholds, lowest (fastest) first.
	VthLevels []float64
	// TemperatureK is the analysis temperature.
	TemperatureK float64
	// UnitWnM / UnitWpM are the unit-drive transistor widths.
	UnitWnM, UnitWpM float64
	// LevelConverterDelayS and LevelConverterEnergyJ price a low-to-high
	// supply crossing.
	LevelConverterDelayS  float64
	LevelConverterEnergyJ float64

	nmos, pmos *device.Device
	cache      map[cacheKey]unitCell
}

type cacheKey struct {
	kind   gate.Kind
	inputs int
	vdd    int
	vth    int
}

// unitCell holds the unit-size characteristics of a cell flavor.
type unitCell struct {
	cinF     float64 // input capacitance per pin, unit size
	cselfF   float64 // output self-load, unit size
	driveA   float64 // effective average drive current, unit size
	leakW    float64 // state-averaged leakage power, unit size
	vdd      float64
	delayFit float64
}

// VthOffsetHigh is the default high-Vth offset above nominal (the dual-Vth
// literature's ≈100 mV split).
const VthOffsetHigh = 0.10

// NewTech builds a two-supply, two-threshold technology for a node:
// Vdd levels {Vdd, lowRatio·Vdd} and Vth levels {nominal, nominal+100 mV}.
// Pass lowRatio = 0 for a single-supply technology.
func NewTech(nodeNM int, lowRatio float64) (*Tech, error) {
	return NewTechIn(device.BaseLab(), nodeNM, lowRatio)
}

// NewTechIn is NewTech against an explicit laboratory.
func NewTechIn(lab *device.Lab, nodeNM int, lowRatio float64) (*Tech, error) {
	n, err := lab.ForNode(nodeNM)
	if err != nil {
		return nil, err
	}
	p, err := lab.ForNodePMOS(nodeNM)
	if err != nil {
		return nil, err
	}
	node, err := lab.Node(nodeNM)
	if err != nil {
		return nil, err
	}
	vdds := []float64{node.Vdd}
	if lowRatio > 0 {
		if lowRatio >= 1 {
			return nil, fmt.Errorf("netlist: low-Vdd ratio %g must be < 1", lowRatio)
		}
		vdds = append(vdds, lowRatio*node.Vdd)
	}
	t := &Tech{
		NodeNM:       nodeNM,
		VddLevels:    vdds,
		VthLevels:    []float64{n.Vth0, n.Vth0 + VthOffsetHigh},
		TemperatureK: units.CelsiusToKelvin(85),
		UnitWnM:      4 * n.LeffM,
		UnitWpM:      8 * n.LeffM,
		nmos:         n,
		pmos:         p,
		cache:        map[cacheKey]unitCell{},
	}
	// Level converter priced as ~1.5 reference-inverter delays and ~2×
	// a unit cell's switching energy — the granularity behind the paper's
	// 8–10 % conversion overhead at media-processor conversion densities.
	ref := gate.NewInverter(n, p, 4, 8)
	t.LevelConverterDelayS = 1.5 * ref.FO4Delay(node.Vdd, t.TemperatureK)
	t.LevelConverterEnergyJ = 2 * ref.SwitchingEnergy(node.Vdd, ref.InputCapacitance())
	return t, nil
}

// MustNewTech panics on error; for tests and examples with literal nodes.
func MustNewTech(nodeNM int, lowRatio float64) *Tech {
	t, err := NewTech(nodeNM, lowRatio)
	if err != nil {
		panic(err)
	}
	return t
}

// VddH returns the high (timing-reference) supply.
func (t *Tech) VddH() float64 { return t.VddLevels[0] }

// HasLowVdd reports whether a second, lower supply exists.
func (t *Tech) HasLowVdd() bool { return len(t.VddLevels) > 1 }

// buildGate constructs the gate-model for a flavor at unit size.
func (t *Tech) buildGate(kind gate.Kind, inputs, vth int) *gate.Gate {
	n := t.nmos.WithVth(t.VthLevels[vth])
	p := t.pmos.WithVth(t.VthLevels[vth])
	switch kind {
	case gate.Inv:
		return gate.NewInverter(n, p, t.UnitWnM/t.nmos.LeffM, t.UnitWpM/t.nmos.LeffM)
	case gate.Nand:
		// Series NMOS stacks are upsized by the stack depth to keep the
		// worst-case pull-down comparable to the inverter.
		return gate.NewNand(n, p, inputs, t.UnitWnM*float64(inputs), t.UnitWpM)
	case gate.Nor:
		return gate.NewNor(n, p, inputs, t.UnitWnM, t.UnitWpM*float64(inputs))
	}
	panic(fmt.Sprintf("netlist: unknown kind %v", kind))
}

// unit returns (building and caching as needed) the unit-cell data for a
// flavor.
func (t *Tech) unit(kind gate.Kind, inputs, vddClass, vthClass int) unitCell {
	key := cacheKey{kind, inputs, vddClass, vthClass}
	if u, ok := t.cache[key]; ok {
		return u
	}
	g := t.buildGate(kind, inputs, vthClass)
	vdd := t.VddLevels[vddClass]
	// Effective average drive current for the delay model.
	inA := g.N.IonPerWidth(vdd, t.TemperatureK)
	ipA := g.P.IonPerWidth(vdd, t.TemperatureK)
	var pd, pu float64
	switch kind {
	case gate.Nand:
		pd = inA * g.WnM / float64(inputs)
		pu = ipA * g.WpM
	case gate.Nor:
		pd = inA * g.WnM
		pu = ipA * g.WpM / float64(inputs)
	default:
		pd = inA * g.WnM
		pu = ipA * g.WpM
	}
	drive := 2 * pd * pu / (pd + pu) // harmonic mean ≈ average transition
	u := unitCell{
		cinF:     g.InputCapacitance(),
		cselfF:   g.SelfCapacitance(),
		driveA:   drive,
		leakW:    g.LeakagePower(vdd, t.TemperatureK),
		vdd:      vdd,
		delayFit: gate.DefaultDelayFit,
	}
	t.cache[key] = u
	return u
}

// PinCapacitance returns the input capacitance of one pin of a cell flavor
// at the given size.
func (t *Tech) PinCapacitance(kind gate.Kind, inputs, vddClass, vthClass int, size float64) float64 {
	return t.unit(kind, inputs, vddClass, vthClass).cinF * size
}

// CellDelay returns the propagation delay of a cell of the given flavor and
// size driving loadF farads.
func (t *Tech) CellDelay(kind gate.Kind, inputs, vddClass, vthClass int, size, loadF float64) float64 {
	u := t.unit(kind, inputs, vddClass, vthClass)
	drive := u.driveA * size
	if drive <= 0 {
		return math.Inf(1)
	}
	c := u.cselfF*size + loadF
	return u.delayFit * c * u.vdd / drive
}

// CellLeakage returns the state-averaged leakage power of a cell.
func (t *Tech) CellLeakage(kind gate.Kind, inputs, vddClass, vthClass int, size float64) float64 {
	return t.unit(kind, inputs, vddClass, vthClass).leakW * size
}

// CellEnergy returns the switching energy per transition of a cell driving
// loadF: (Cself + Cload)·Vdd².
func (t *Tech) CellEnergy(kind gate.Kind, inputs, vddClass, vthClass int, size, loadF float64) float64 {
	u := t.unit(kind, inputs, vddClass, vthClass)
	return (u.cselfF*size + loadF) * u.vdd * u.vdd
}

// Vdd returns the supply of a class index.
func (t *Tech) Vdd(vddClass int) float64 { return t.VddLevels[vddClass] }
