package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"nanometer/internal/gate"
)

// Text netlist format — a small structural format so circuits can be saved,
// diffed, and exchanged between the CLI tools:
//
//	# comments and blank lines are ignored
//	circuit <nodeNM> <lowVddRatio> <numPIs> <periodS> <piActivity>
//	gate <id> <kind> <size> <vddClass> <vthClass> <wireCapF> <po:0|1> <lc:0|1> <in> [<in>...]
//
// Inputs reference gate IDs, or pN for primary input N. Gates must appear
// in topological order (the in-memory invariant).

// Write serializes the circuit.
func Write(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	ratio := 0.0
	if c.Tech.HasLowVdd() {
		ratio = c.Tech.Vdd(1) / c.Tech.VddH()
	}
	fmt.Fprintf(bw, "# nanometer netlist\n")
	fmt.Fprintf(bw, "circuit %d %.6g %d %.9g %.6g\n",
		c.Tech.NodeNM, ratio, c.NumPIs, c.ClockPeriodS, c.PIActivity)
	for i := range c.Gates {
		g := &c.Gates[i]
		fmt.Fprintf(bw, "gate %d %s %.9g %d %d %.9g %s %s",
			g.ID, kindToken(g.Kind), g.Size, g.VddClass, g.VthClass, g.WireCapF,
			boolToken(g.IsPO), boolToken(g.NeedsLC))
		for _, in := range g.Inputs {
			if pi, ok := IsPI(in); ok {
				fmt.Fprintf(bw, " p%d", pi)
			} else {
				fmt.Fprintf(bw, " %d", in)
			}
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// Read parses a circuit. The tech is rebuilt from the header.
func Read(r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var c *Circuit
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "circuit":
			if c != nil {
				return nil, fmt.Errorf("netlist: line %d: duplicate circuit header", lineNo)
			}
			if len(fields) != 6 {
				return nil, fmt.Errorf("netlist: line %d: circuit header needs 5 fields", lineNo)
			}
			nodeNM, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: node: %w", lineNo, err)
			}
			ratio, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: ratio: %w", lineNo, err)
			}
			pis, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: PIs: %w", lineNo, err)
			}
			period, err := strconv.ParseFloat(fields[4], 64)
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: period: %w", lineNo, err)
			}
			act, err := strconv.ParseFloat(fields[5], 64)
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: activity: %w", lineNo, err)
			}
			tech, err := NewTech(nodeNM, ratio)
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: %w", lineNo, err)
			}
			c = &Circuit{Tech: tech, NumPIs: pis, ClockPeriodS: period, PIActivity: act}
		case "gate":
			if c == nil {
				return nil, fmt.Errorf("netlist: line %d: gate before circuit header", lineNo)
			}
			if len(fields) < 10 {
				return nil, fmt.Errorf("netlist: line %d: gate needs ≥9 fields", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id != len(c.Gates) {
				return nil, fmt.Errorf("netlist: line %d: gate IDs must be sequential", lineNo)
			}
			kind, err := kindFromToken(fields[2])
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: %w", lineNo, err)
			}
			size, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: size: %w", lineNo, err)
			}
			vdd, err := strconv.Atoi(fields[4])
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: vddClass: %w", lineNo, err)
			}
			vth, err := strconv.Atoi(fields[5])
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: vthClass: %w", lineNo, err)
			}
			wcap, err := strconv.ParseFloat(fields[6], 64)
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: wireCap: %w", lineNo, err)
			}
			po, err := boolFromToken(fields[7])
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: po: %w", lineNo, err)
			}
			lc, err := boolFromToken(fields[8])
			if err != nil {
				return nil, fmt.Errorf("netlist: line %d: lc: %w", lineNo, err)
			}
			g := Gate{
				ID: id, Kind: kind, Size: size, VddClass: vdd, VthClass: vth,
				WireCapF: wcap, IsPO: po, NeedsLC: lc,
			}
			for _, tok := range fields[9:] {
				if strings.HasPrefix(tok, "p") {
					pi, err := strconv.Atoi(tok[1:])
					if err != nil {
						return nil, fmt.Errorf("netlist: line %d: PI ref %q", lineNo, tok)
					}
					g.Inputs = append(g.Inputs, PI(pi))
					continue
				}
				ref, err := strconv.Atoi(tok)
				if err != nil {
					return nil, fmt.Errorf("netlist: line %d: gate ref %q", lineNo, tok)
				}
				if ref < 0 || ref >= id {
					return nil, fmt.Errorf("netlist: line %d: gate ref %d breaks topological order", lineNo, ref)
				}
				g.Inputs = append(g.Inputs, ref)
			}
			c.Gates = append(c.Gates, g)
		default:
			return nil, fmt.Errorf("netlist: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if c == nil {
		return nil, fmt.Errorf("netlist: no circuit header found")
	}
	c.Rebuild()
	// Rebuild marks sink gates as POs; restore the serialized flags (a PO
	// flag may also mark an internal register tap).
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("netlist: parsed circuit invalid: %w", err)
	}
	return c, nil
}

func kindToken(k gate.Kind) string {
	switch k {
	case gate.Inv:
		return "inv"
	case gate.Nand:
		return "nand"
	case gate.Nor:
		return "nor"
	}
	return "?"
}

func kindFromToken(s string) (gate.Kind, error) {
	switch s {
	case "inv":
		return gate.Inv, nil
	case "nand":
		return gate.Nand, nil
	case "nor":
		return gate.Nor, nil
	}
	return 0, fmt.Errorf("unknown gate kind %q", s)
}

func boolToken(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

func boolFromToken(s string) (bool, error) {
	switch s {
	case "0":
		return false, nil
	case "1":
		return true, nil
	}
	return false, fmt.Errorf("bad flag %q", s)
}
