package netlist

import (
	"fmt"

	"nanometer/internal/gate"
)

// PI marks a primary-input fanin in a gate's input list: inputs < 0 encode
// primary input index -(i+1).
func PI(i int) int { return -(i + 1) }

// IsPI reports whether a fanin reference is a primary input, and its index.
func IsPI(ref int) (int, bool) {
	if ref < 0 {
		return -ref - 1, true
	}
	return 0, false
}

// Gate is one netlist cell instance.
type Gate struct {
	ID     int
	Kind   gate.Kind
	Inputs []int // gate IDs, or PI(i) references
	// Fanouts lists the gate IDs this gate drives (derived; maintained by
	// Circuit.Rebuild).
	Fanouts []int
	// IsPO marks the gate's output as a primary output (register/port).
	IsPO bool

	// Size is the drive strength in unit cells; VddClass and VthClass
	// index into the Tech levels.
	Size     float64
	VddClass int
	VthClass int

	// WireCapF is the fixed interconnect capacitance on the output net —
	// the component that does *not* shrink when the fanout cells are
	// downsized, which is what makes re-sizing sublinear (§3.3).
	WireCapF float64

	// Prob is the static 1-probability of the output; Activity the toggle
	// rate per cycle. Both are filled by power analysis.
	Prob, Activity float64

	// NeedsLC is set by the multi-Vdd assignment when this gate's output
	// crosses from the low to the high supply through a level converter.
	NeedsLC bool
}

// Circuit is a combinational netlist over a Tech.
type Circuit struct {
	Tech *Tech
	// Gates are stored in topological order (fanins precede fanouts).
	Gates []Gate
	// NumPIs is the primary-input count.
	NumPIs int
	// PIActivity is the toggle rate assumed at every primary input.
	PIActivity float64
	// ClockPeriodS is the timing constraint.
	ClockPeriodS float64
}

// Validate checks structural invariants: topological order, valid fanin
// references, valid class indices, positive sizes.
func (c *Circuit) Validate() error {
	if c.Tech == nil {
		return fmt.Errorf("netlist: circuit has no tech")
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.ID != i {
			return fmt.Errorf("netlist: gate %d has ID %d", i, g.ID)
		}
		if g.Size <= 0 {
			return fmt.Errorf("netlist: gate %d has non-positive size %g", i, g.Size)
		}
		if g.VddClass < 0 || g.VddClass >= len(c.Tech.VddLevels) {
			return fmt.Errorf("netlist: gate %d has Vdd class %d of %d", i, g.VddClass, len(c.Tech.VddLevels))
		}
		if g.VthClass < 0 || g.VthClass >= len(c.Tech.VthLevels) {
			return fmt.Errorf("netlist: gate %d has Vth class %d of %d", i, g.VthClass, len(c.Tech.VthLevels))
		}
		if len(g.Inputs) == 0 {
			return fmt.Errorf("netlist: gate %d has no inputs", i)
		}
		for _, in := range g.Inputs {
			if pi, ok := IsPI(in); ok {
				if pi >= c.NumPIs {
					return fmt.Errorf("netlist: gate %d references PI %d of %d", i, pi, c.NumPIs)
				}
				continue
			}
			if in >= i {
				return fmt.Errorf("netlist: gate %d references gate %d (not topological)", i, in)
			}
		}
	}
	return nil
}

// Rebuild recomputes the fanout lists and marks sink gates as POs.
func (c *Circuit) Rebuild() {
	for i := range c.Gates {
		c.Gates[i].Fanouts = c.Gates[i].Fanouts[:0]
	}
	for i := range c.Gates {
		for _, in := range c.Gates[i].Inputs {
			if _, ok := IsPI(in); !ok {
				c.Gates[in].Fanouts = append(c.Gates[in].Fanouts, i)
			}
		}
	}
	for i := range c.Gates {
		if len(c.Gates[i].Fanouts) == 0 {
			c.Gates[i].IsPO = true
		}
	}
}

// LoadOn returns the total capacitive load on gate g's output: fanout pin
// capacitances plus the net's wire capacitance, plus a level-converter input
// when one is attached.
func (c *Circuit) LoadOn(g *Gate) float64 {
	load := g.WireCapF
	for _, fo := range g.Fanouts {
		fg := &c.Gates[fo]
		load += c.Tech.PinCapacitance(fg.Kind, len(fg.Inputs), fg.VddClass, fg.VthClass, fg.Size)
	}
	if g.NeedsLC {
		// The converter presents roughly two unit-inverter pins.
		load += 2 * c.Tech.PinCapacitance(gate.Inv, 1, 0, 0, 1)
	}
	return load
}

// GateDelay returns gate g's propagation delay into its current load,
// including the level-converter penalty when its output crosses supplies.
func (c *Circuit) GateDelay(g *Gate) float64 {
	d := c.Tech.CellDelay(g.Kind, len(g.Inputs), g.VddClass, g.VthClass, g.Size, c.LoadOn(g))
	if g.NeedsLC {
		d += c.Tech.LevelConverterDelayS
	}
	return d
}

// Clone returns a deep copy of the circuit sharing the Tech.
func (c *Circuit) Clone() *Circuit {
	cp := *c
	cp.Gates = make([]Gate, len(c.Gates))
	copy(cp.Gates, c.Gates)
	for i := range cp.Gates {
		cp.Gates[i].Inputs = append([]int(nil), c.Gates[i].Inputs...)
		cp.Gates[i].Fanouts = append([]int(nil), c.Gates[i].Fanouts...)
	}
	return &cp
}

// Stats summarizes the netlist composition.
type Stats struct {
	Gates, PIs, POs int
	ByKind          map[gate.Kind]int
	TotalSize       float64
}

// Stats returns composition statistics.
func (c *Circuit) Stats() Stats {
	s := Stats{PIs: c.NumPIs, ByKind: map[gate.Kind]int{}}
	for i := range c.Gates {
		g := &c.Gates[i]
		s.Gates++
		if g.IsPO {
			s.POs++
		}
		s.ByKind[g.Kind]++
		s.TotalSize += g.Size
	}
	return s
}
