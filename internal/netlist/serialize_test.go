package netlist

import (
	"bytes"
	"strings"
	"testing"

	"nanometer/internal/units"
)

func TestSerializeRoundTrip(t *testing.T) {
	tech := MustNewTech(100, 0.65)
	p := DefaultGenParams()
	p.Gates = 300
	p.Seed = 5
	c, err := Generate(tech, p)
	if err != nil {
		t.Fatal(err)
	}
	c.ClockPeriodS = 4.2e-10
	// Decorate with non-default state to prove it survives.
	c.Gates[10].VddClass = 1
	c.Gates[10].NeedsLC = true
	c.Gates[20].VthClass = 1
	c.Gates[30].Size = 3.75

	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if back.NumPIs != c.NumPIs || back.ClockPeriodS != c.ClockPeriodS || back.PIActivity != c.PIActivity {
		t.Fatalf("header fields lost")
	}
	if back.Tech.NodeNM != 100 || !back.Tech.HasLowVdd() {
		t.Fatalf("tech reconstruction lost the node or supplies")
	}
	if !units.ApproxEqual(back.Tech.Vdd(1)/back.Tech.VddH(), 0.65, 1e-6, 0) {
		t.Fatalf("low-Vdd ratio lost")
	}
	if len(back.Gates) != len(c.Gates) {
		t.Fatalf("gate count %d vs %d", len(back.Gates), len(c.Gates))
	}
	for i := range c.Gates {
		a, b := &c.Gates[i], &back.Gates[i]
		if a.Kind != b.Kind || a.Size != b.Size || a.VddClass != b.VddClass ||
			a.VthClass != b.VthClass || a.NeedsLC != b.NeedsLC || a.IsPO != b.IsPO {
			t.Fatalf("gate %d fields differ: %+v vs %+v", i, a, b)
		}
		if !units.ApproxEqual(a.WireCapF, b.WireCapF, 1e-8, 0) {
			t.Fatalf("gate %d wire cap differs", i)
		}
		if len(a.Inputs) != len(b.Inputs) {
			t.Fatalf("gate %d input count differs", i)
		}
		for k := range a.Inputs {
			if a.Inputs[k] != b.Inputs[k] {
				t.Fatalf("gate %d input %d differs", i, k)
			}
		}
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no header":       "gate 0 inv 1 0 0 1e-15 0 0 p0\n",
		"dup header":      "circuit 100 0.65 4 1e-9 0.1\ncircuit 100 0.65 4 1e-9 0.1\n",
		"short header":    "circuit 100 0.65 4\n",
		"bad node":        "circuit 90 0.65 4 1e-9 0.1\n",
		"bad kind":        "circuit 100 0.65 4 1e-9 0.1\ngate 0 xor 1 0 0 1e-15 0 0 p0\n",
		"non-sequential":  "circuit 100 0.65 4 1e-9 0.1\ngate 5 inv 1 0 0 1e-15 0 0 p0\n",
		"forward ref":     "circuit 100 0.65 4 1e-9 0.1\ngate 0 inv 1 0 0 1e-15 0 0 7\n",
		"bad flag":        "circuit 100 0.65 4 1e-9 0.1\ngate 0 inv 1 0 0 1e-15 2 0 p0\n",
		"bad PI ref":      "circuit 100 0.65 4 1e-9 0.1\ngate 0 inv 1 0 0 1e-15 0 0 px\n",
		"unknown record":  "circuit 100 0.65 4 1e-9 0.1\nwire 0\n",
		"empty file":      "",
		"out-of-range PI": "circuit 100 0.65 4 1e-9 0.1\ngate 0 inv 1 0 0 1e-15 0 0 p99\n",
		"bad vdd class":   "circuit 100 0.65 4 1e-9 0.1\ngate 0 inv 1 9 0 1e-15 0 0 p0\n",
		"zero size":       "circuit 100 0.65 4 1e-9 0.1\ngate 0 inv 0 0 0 1e-15 0 0 p0\n",
	}
	for name, text := range cases {
		if _, err := Read(strings.NewReader(text)); err == nil {
			t.Errorf("%s: malformed input accepted", name)
		}
	}
}

func TestReadIgnoresCommentsAndBlanks(t *testing.T) {
	text := `
# a comment

circuit 100 0.65 2 1e-9 0.1
# another
gate 0 inv 2 0 0 1e-15 0 0 p0

gate 1 nand 2 0 0 1e-15 0 0 0 p1
`
	c, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 2 {
		t.Fatalf("got %d gates", len(c.Gates))
	}
	if !c.Gates[1].IsPO {
		t.Fatalf("sink gate must be marked PO on rebuild")
	}
}

func TestWriteSingleSupply(t *testing.T) {
	tech := MustNewTech(100, 0)
	p := DefaultGenParams()
	p.Gates = 50
	c, err := Generate(tech, p)
	if err != nil {
		t.Fatal(err)
	}
	c.ClockPeriodS = 1e-9
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tech.HasLowVdd() {
		t.Fatalf("single-supply circuit must round-trip without a second rail")
	}
}

// Property: serialization round-trips any generated circuit exactly (per
// the fields the format carries).
func TestSerializeRoundTripQuick(t *testing.T) {
	tech := MustNewTech(70, 0.7)
	check := func(seed int64, gates int) bool {
		p := DefaultGenParams()
		p.Gates = 50 + gates%200
		p.Seed = seed
		c, err := Generate(tech, p)
		if err != nil {
			return false
		}
		c.ClockPeriodS = 1e-9
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(back.Gates) != len(c.Gates) {
			return false
		}
		for i := range c.Gates {
			a, b := &c.Gates[i], &back.Gates[i]
			if a.Kind != b.Kind || a.Size != b.Size || len(a.Inputs) != len(b.Inputs) {
				return false
			}
		}
		return back.Validate() == nil
	}
	for seed := int64(0); seed < 8; seed++ {
		if !check(seed, int(seed)*37) {
			t.Fatalf("round trip failed for seed %d", seed)
		}
	}
}
