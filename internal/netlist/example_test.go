package netlist_test

import (
	"bytes"
	"fmt"

	"nanometer/internal/netlist"
)

// Generate a block, serialize it, and read it back — the text format the
// CLI tools exchange circuits in.
func Example() {
	tech := netlist.MustNewTech(100, 0.65)
	p := netlist.DefaultGenParams()
	p.Gates = 200
	p.Seed = 1
	c, err := netlist.Generate(tech, p)
	if err != nil {
		panic(err)
	}
	c.ClockPeriodS = 1e-9

	var buf bytes.Buffer
	if err := netlist.Write(&buf, c); err != nil {
		panic(err)
	}
	back, err := netlist.Read(&buf)
	if err != nil {
		panic(err)
	}
	fmt.Printf("gates: %d → %d; valid: %v\n",
		len(c.Gates), len(back.Gates), back.Validate() == nil)
	// Output:
	// gates: 200 → 200; valid: true
}

// The two-supply, two-threshold technology binding of §2.4/§3.2.
func ExampleNewTech() {
	tech, err := netlist.NewTech(100, 0.65)
	if err != nil {
		panic(err)
	}
	fmt.Printf("supplies: %.2f / %.2f V; thresholds: %.2f / %.2f V\n",
		tech.VddH(), tech.Vdd(1), tech.VthLevels[0], tech.VthLevels[1])
	// Output:
	// supplies: 1.20 / 0.78 V; thresholds: 0.22 / 0.32 V
}
