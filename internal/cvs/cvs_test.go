package cvs

import (
	"testing"

	"nanometer/internal/netlist"
	"nanometer/internal/sta"
)

func mediaCircuit(t *testing.T, seed int64) *netlist.Circuit {
	t.Helper()
	tech := netlist.MustNewTech(100, 0.65)
	p := netlist.DefaultGenParams()
	p.Gates = 1500
	p.Levels = 30
	p.ShortPathFraction = 0.5
	p.Seed = seed
	c, err := netlist.Generate(tech, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sta.SetPeriodFromCritical(c, 1.15); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAssignBasics(t *testing.T) {
	c := mediaCircuit(t, 1)
	res, err := Assign(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimingMet {
		t.Fatalf("assignment must preserve timing")
	}
	if res.AssignedFraction < 0.4 || res.AssignedFraction > 0.98 {
		t.Fatalf("assigned fraction = %g, expected a substantial share", res.AssignedFraction)
	}
	if res.DynamicSaving <= 0.1 {
		t.Fatalf("dynamic saving = %g, expected > 10%%", res.DynamicSaving)
	}
	if res.LevelConverters == 0 {
		t.Fatalf("a clustered design still needs converters at the POs")
	}
	if res.AreaOverhead <= 0 {
		t.Fatalf("multi-Vdd must cost area")
	}
	if res.LCOverheadFraction <= 0 || res.LCOverheadFraction > 0.3 {
		t.Fatalf("LC overhead = %g, expected the ~10%% band", res.LCOverheadFraction)
	}
}

func TestClusteringStructureInvariant(t *testing.T) {
	c := mediaCircuit(t, 2)
	if _, err := Assign(c, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.VddClass != 1 {
			if g.NeedsLC {
				t.Fatalf("gate %d at Vdd,h must not carry a converter", i)
			}
			continue
		}
		// CVS rule: a low-supply gate drives only low-supply gates; its
		// only conversion point is a PO register.
		for _, fo := range g.Fanouts {
			if c.Gates[fo].VddClass != 1 {
				t.Fatalf("clustered CVS violated: low gate %d drives high gate %d", i, fo)
			}
		}
		if g.IsPO && !g.NeedsLC {
			t.Fatalf("low-supply PO %d must convert at the register", i)
		}
		if !g.IsPO && g.NeedsLC {
			t.Fatalf("interior gate %d should not need a converter under clustering", i)
		}
	}
}

func TestUnclusteredAssignsMore(t *testing.T) {
	cc := mediaCircuit(t, 3)
	clustered, err := Assign(cc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cu := mediaCircuit(t, 3)
	opts := DefaultOptions()
	opts.Clustering = false
	unclustered, err := Assign(cu, opts)
	if err != nil {
		t.Fatal(err)
	}
	if unclustered.AssignedFraction < clustered.AssignedFraction {
		t.Fatalf("dropping the structure rule cannot reduce eligibility: %g vs %g",
			unclustered.AssignedFraction, clustered.AssignedFraction)
	}
	if unclustered.LevelConverters <= clustered.LevelConverters {
		t.Fatalf("unclustered assignment must pay more converters (%d vs %d)",
			unclustered.LevelConverters, clustered.LevelConverters)
	}
	if !unclustered.TimingMet {
		t.Fatalf("unclustered result must still meet timing")
	}
}

func TestLevelConverterCountMatchesFlags(t *testing.T) {
	c := mediaCircuit(t, 4)
	res, err := Assign(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for i := range c.Gates {
		if c.Gates[i].NeedsLC {
			n++
		}
	}
	if n != res.LevelConverters {
		t.Fatalf("LC count %d vs flags %d", res.LevelConverters, n)
	}
}

func TestTightClockLimitsAssignment(t *testing.T) {
	loose := mediaCircuit(t, 5)
	resLoose, err := Assign(loose, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tight := mediaCircuit(t, 5)
	if _, err := sta.SetPeriodFromCritical(tight, 1.0); err != nil {
		t.Fatal(err)
	}
	resTight, err := Assign(tight, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if resTight.AssignedFraction >= resLoose.AssignedFraction {
		t.Fatalf("a tighter clock must reduce the Vdd,l population (%g vs %g)",
			resTight.AssignedFraction, resLoose.AssignedFraction)
	}
	if !resTight.TimingMet {
		t.Fatalf("tight assignment must still meet timing")
	}
}

func TestAssignErrors(t *testing.T) {
	single := netlist.MustNewTech(100, 0)
	p := netlist.DefaultGenParams()
	p.Gates = 100
	c, err := netlist.Generate(single, p)
	if err != nil {
		t.Fatal(err)
	}
	c.ClockPeriodS = 1e-9
	if _, err := Assign(c, DefaultOptions()); err == nil {
		t.Fatalf("single-supply tech must error")
	}

	c2 := mediaCircuit(t, 6)
	c2.ClockPeriodS = 0
	if _, err := Assign(c2, DefaultOptions()); err == nil {
		t.Fatalf("missing period must error")
	}
	c3 := mediaCircuit(t, 6)
	c3.ClockPeriodS /= 10 // infeasible
	if _, err := Assign(c3, DefaultOptions()); err == nil {
		t.Fatalf("violated baseline must error")
	}
}
