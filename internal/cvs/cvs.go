// Package cvs implements clustered voltage scaling (Usami-Horowitz CVS),
// the multi-Vdd technique of the paper's §2.4: non-critical gates move to a
// reduced supply Vdd,l ≈ 0.6–0.7·Vdd,h, with level conversion confined to
// register boundaries by the structure rule that a low-supply gate may only
// drive other low-supply gates (or a converter at a primary output). The
// package reports the assigned fraction, the dynamic-power saving net of
// converter overhead, and the area overhead — the quantities the paper
// cites (≈75 % of gates at Vdd,l, 45–50 % power saving including 8–10 %
// conversion overhead, ≈15 % area).
package cvs

import (
	"fmt"

	"nanometer/internal/netlist"
	"nanometer/internal/power"
	"nanometer/internal/sta"
)

// Options tunes the assignment.
type Options struct {
	// Clustering enables the CVS structure rule (LCs only at POs). When
	// false, any gate may move to Vdd,l with a converter wherever its
	// output feeds a high-supply gate — the unclustered ablation with many
	// more converters.
	Clustering bool
	// ClockHz evaluates power; zero uses 1/period.
	ClockHz float64
	// LCAreaUnits and RailAreaFraction parameterize the area model.
	LCAreaUnits      float64
	RailAreaFraction float64
}

// DefaultOptions returns the paper-typical configuration.
func DefaultOptions() Options {
	return Options{Clustering: true, LCAreaUnits: 2, RailAreaFraction: 0.06}
}

// Result summarizes an assignment run.
type Result struct {
	// AssignedFraction is the share of gates moved to Vdd,l.
	AssignedFraction float64
	// LevelConverters is the number of converters inserted.
	LevelConverters int
	// Before and After are the power reports at the evaluation clock.
	Before, After *power.Report
	// DynamicSaving is 1 − after/before dynamic power.
	DynamicSaving float64
	// LCOverheadFraction is converter power over the dynamic power saved
	// gross (the paper's 8–10 %).
	LCOverheadFraction float64
	// AreaOverhead is the relative area increase of the multi-Vdd design.
	AreaOverhead float64
	// TimingMet confirms the final design meets the period.
	TimingMet bool
}

// Assign moves every gate that can tolerate Vdd,l under the structure and
// timing rules. The circuit must have a two-supply tech and meet its period
// at all-high; it is modified in place.
func Assign(c *netlist.Circuit, opts Options) (*Result, error) {
	if !c.Tech.HasLowVdd() {
		return nil, fmt.Errorf("cvs: tech has a single supply")
	}
	if c.ClockPeriodS <= 0 {
		return nil, fmt.Errorf("cvs: circuit has no clock period")
	}
	base := sta.Analyze(c)
	if !base.Met() {
		return nil, fmt.Errorf("cvs: circuit misses period %v by %v before assignment",
			c.ClockPeriodS, -base.WorstSlackS)
	}
	fHz := opts.ClockHz
	if fHz == 0 {
		fHz = 1 / c.ClockPeriodS
	}
	power.PropagateActivity(c)
	before := power.Analyze(c, fHz)

	inc := sta.NewIncremental(c)
	assigned := 0
	// Reverse topological order: fanouts are decided before their drivers,
	// as the clustering rule requires.
	for i := len(c.Gates) - 1; i >= 0; i-- {
		g := &c.Gates[i]
		needsLC := false
		if opts.Clustering {
			okStructure := true
			for _, fo := range g.Fanouts {
				if c.Gates[fo].VddClass == 0 {
					okStructure = false
					break
				}
			}
			if !okStructure {
				continue
			}
			needsLC = g.IsPO
		} else {
			for _, fo := range g.Fanouts {
				if c.Gates[fo].VddClass == 0 {
					needsLC = true
					break
				}
			}
			needsLC = needsLC || g.IsPO
		}
		g.VddClass = 1
		g.NeedsLC = needsLC
		if inc.TryUpdate(i) {
			assigned++
			continue
		}
		g.VddClass = 0
		g.NeedsLC = false
	}

	after := power.Analyze(c, fHz)
	final := sta.Analyze(c)
	res := &Result{
		AssignedFraction: float64(assigned) / float64(len(c.Gates)),
		Before:           before,
		After:            after,
		TimingMet:        final.Met(),
	}
	for i := range c.Gates {
		if c.Gates[i].NeedsLC {
			res.LevelConverters++
		}
	}
	if before.DynamicW > 0 {
		res.DynamicSaving = 1 - after.DynamicW/before.DynamicW
	}
	grossSaved := before.DynamicW - (after.DynamicW - after.LevelConverterW)
	if grossSaved > 0 {
		res.LCOverheadFraction = after.LevelConverterW / grossSaved
	}
	areaBefore := power.EstimateArea(cleanCopy(c), opts.LCAreaUnits, opts.RailAreaFraction).Total()
	areaAfter := power.EstimateArea(c, opts.LCAreaUnits, opts.RailAreaFraction).Total()
	if areaBefore > 0 {
		res.AreaOverhead = areaAfter/areaBefore - 1
	}
	return res, nil
}

// cleanCopy returns a copy with all gates back at the high supply, for the
// area baseline.
func cleanCopy(c *netlist.Circuit) *netlist.Circuit {
	cp := c.Clone()
	for i := range cp.Gates {
		cp.Gates[i].VddClass = 0
		cp.Gates[i].NeedsLC = false
	}
	return cp
}
