package cvs_test

import (
	"fmt"

	"nanometer/internal/cvs"
	"nanometer/internal/netlist"
	"nanometer/internal/sta"
)

// Clustered voltage scaling on a media-processor-like block (§2.4): a large
// share of gates moves to Vdd,l = 0.65·Vdd,h with conversion confined to
// the register boundaries.
func ExampleAssign() {
	tech := netlist.MustNewTech(100, 0.65)
	p := netlist.DefaultGenParams()
	p.Gates = 1500
	p.Levels = 30
	p.ShortPathFraction = 0.5
	p.Seed = 7
	c, err := netlist.Generate(tech, p)
	if err != nil {
		panic(err)
	}
	if _, err := sta.SetPeriodFromCritical(c, 1.15); err != nil {
		panic(err)
	}
	res, err := cvs.Assign(c, cvs.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Printf("majority at Vdd,l: %v; saves dynamic power: %v; timing met: %v\n",
		res.AssignedFraction > 0.5, res.DynamicSaving > 0.1, res.TimingMet)
	// Output:
	// majority at Vdd,l: true; saves dynamic power: true; timing met: true
}
