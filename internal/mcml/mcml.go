// Package mcml models MOS current-mode logic (§4, after Musicer & Rabaey):
// differential gates steered by a constant tail current into resistive
// loads. MCML burns static power but produces tiny supply transients and a
// delay set by C·ΔV/Itail, so at high activity it can beat static CMOS on
// both total power and di/dt — the paper's candidate escape hatch if CMOS
// leakage becomes intractable.
package mcml

import (
	"fmt"
	"math"

	"nanometer/internal/gate"
)

// Gate is one MCML differential pair.
type Gate struct {
	// TailCurrentA is the steered bias current.
	TailCurrentA float64
	// SwingV is the output swing Itail·RL (typically 0.2–0.4·Vdd).
	SwingV float64
	// Vdd is the supply.
	Vdd float64
	// LoadF is the single-ended load capacitance each output drives.
	LoadF float64
}

// Validate reports invalid configurations.
func (g *Gate) Validate() error {
	switch {
	case g.TailCurrentA <= 0:
		return fmt.Errorf("mcml: non-positive tail current %g", g.TailCurrentA)
	case g.SwingV <= 0 || g.SwingV >= g.Vdd:
		return fmt.Errorf("mcml: swing %g outside (0, Vdd=%g)", g.SwingV, g.Vdd)
	case g.LoadF <= 0:
		return fmt.Errorf("mcml: non-positive load %g", g.LoadF)
	}
	return nil
}

// LoadResistance returns RL = swing / Itail.
func (g *Gate) LoadResistance() float64 { return g.SwingV / g.TailCurrentA }

// Delay returns the 50 % propagation delay: 0.69·RL·C.
func (g *Gate) Delay() float64 { return 0.69 * g.LoadResistance() * g.LoadF }

// Power returns the gate's power — static, independent of activity.
func (g *Gate) Power() float64 { return g.TailCurrentA * g.Vdd }

// SupplyCurrentRipple returns the gate's supply-current variation over a
// switching event. The tail current is steered, not switched, so the ripple
// is a small fraction of the bias (transistor mismatch and charging of the
// common node), modeled at 10 %.
func (g *Gate) SupplyCurrentRipple() float64 { return 0.10 * g.TailCurrentA }

// ForDelay sizes the tail current to hit a target delay with the given
// swing and load.
func ForDelay(targetS, swingV, vdd, loadF float64) (*Gate, error) {
	if targetS <= 0 {
		return nil, fmt.Errorf("mcml: non-positive delay target %g", targetS)
	}
	g := &Gate{
		TailCurrentA: 0.69 * swingV * loadF / targetS,
		SwingV:       swingV,
		Vdd:          vdd,
		LoadF:        loadF,
	}
	return g, g.Validate()
}

// Comparison contrasts MCML with a static-CMOS gate of equal delay and load.
type Comparison struct {
	// McmlPowerW is activity-independent; CmosPowerW evaluated at the
	// comparison activity and clock.
	McmlPowerW, CmosPowerW float64
	// CrossoverActivity is the activity at which the two powers match;
	// above it MCML wins.
	CrossoverActivity float64
	// CurrentRippleRatio is MCML ripple / CMOS peak switching current.
	CurrentRippleRatio float64
}

// Compare builds an MCML gate matching the CMOS gate's FO4 delay and
// compares power at the given activity and clock.
func Compare(cmos *gate.Gate, vdd, tKelvin, activity, clockHz float64) (Comparison, error) {
	load := cmos.FO4Load(-1)
	target := cmos.Delay(vdd, tKelvin, load)
	m, err := ForDelay(target, 0.3*vdd, vdd, load)
	if err != nil {
		return Comparison{}, err
	}
	cmosDyn := cmos.DynamicPower(activity, clockHz, vdd, load) + cmos.LeakagePower(vdd, tKelvin)
	cmp := Comparison{
		McmlPowerW: m.Power(),
		CmosPowerW: cmosDyn,
	}
	// Crossover: α* where α·f·C_eff·Vdd² + P_leak = Itail·Vdd.
	e := cmos.SwitchingEnergy(vdd, load)
	leak := cmos.LeakagePower(vdd, tKelvin)
	if e > 0 && clockHz > 0 {
		a := (m.Power() - leak) / (clockHz * e)
		cmp.CrossoverActivity = math.Max(0, a)
	}
	// CMOS peak switching current: full load slewed over ~1/3 of the gate
	// delay.
	cmosPeak := load * vdd / (target / 3)
	if cmosPeak > 0 {
		cmp.CurrentRippleRatio = m.SupplyCurrentRipple() / cmosPeak
	}
	return cmp, nil
}
