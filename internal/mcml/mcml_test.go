package mcml

import (
	"testing"

	"nanometer/internal/gate"
	"nanometer/internal/itrs"
	"nanometer/internal/units"
)

func TestValidate(t *testing.T) {
	good := &Gate{TailCurrentA: 1e-5, SwingV: 0.2, Vdd: 0.6, LoadF: 1e-15}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Gate{
		{TailCurrentA: 0, SwingV: 0.2, Vdd: 0.6, LoadF: 1e-15},
		{TailCurrentA: 1e-5, SwingV: 0, Vdd: 0.6, LoadF: 1e-15},
		{TailCurrentA: 1e-5, SwingV: 0.7, Vdd: 0.6, LoadF: 1e-15},
		{TailCurrentA: 1e-5, SwingV: 0.2, Vdd: 0.6, LoadF: 0},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("bad gate %d passed validation", i)
		}
	}
}

func TestForDelayRoundTrip(t *testing.T) {
	const target = 10e-12
	g, err := ForDelay(target, 0.2, 0.6, 2e-15)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(g.Delay(), target, 1e-9, 0) {
		t.Fatalf("sized gate delay = %g, want %g", g.Delay(), target)
	}
	if _, err := ForDelay(0, 0.2, 0.6, 1e-15); err == nil {
		t.Fatalf("zero target must error")
	}
}

func TestPowerIsStatic(t *testing.T) {
	g, _ := ForDelay(10e-12, 0.2, 0.6, 2e-15)
	// MCML power does not depend on activity at all — it is I·V.
	if !units.ApproxEqual(g.Power(), g.TailCurrentA*0.6, 1e-12, 0) {
		t.Fatalf("power must be Itail·Vdd")
	}
}

func TestFasterCostsMore(t *testing.T) {
	slow, _ := ForDelay(20e-12, 0.2, 0.6, 2e-15)
	fast, _ := ForDelay(5e-12, 0.2, 0.6, 2e-15)
	if fast.Power() <= slow.Power() {
		t.Fatalf("a faster MCML gate must burn more bias power")
	}
	if fast.LoadResistance() >= slow.LoadResistance() {
		t.Fatalf("a faster gate uses a smaller load resistor")
	}
}

func TestCompareAgainstCMOS(t *testing.T) {
	inv, err := gate.ReferenceInverter(35)
	if err != nil {
		t.Fatal(err)
	}
	node := itrs.MustNode(35)
	T := units.CelsiusToKelvin(85)
	cmp, err := Compare(inv, node.Vdd, T, 0.5, node.LocalClockHz)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.McmlPowerW <= 0 || cmp.CmosPowerW <= 0 {
		t.Fatalf("invalid comparison %+v", cmp)
	}
	// The robust claim: MCML's supply ripple is tiny next to the CMOS
	// switching spike.
	if cmp.CurrentRippleRatio >= 0.1 {
		t.Fatalf("di/dt ratio = %g, expected ≪ 1", cmp.CurrentRippleRatio)
	}
	if cmp.CrossoverActivity <= 0 {
		t.Fatalf("crossover must be positive")
	}
	// Consistency: at exactly the crossover activity the two powers match.
	alpha := cmp.CrossoverActivity
	cmosAt := inv.DynamicPower(alpha, node.LocalClockHz, node.Vdd, inv.FO4Load(-1)) +
		inv.LeakagePower(node.Vdd, T)
	if !units.ApproxEqual(cmosAt, cmp.McmlPowerW, 1e-6, 0) {
		t.Fatalf("crossover inconsistent: CMOS %g vs MCML %g", cmosAt, cmp.McmlPowerW)
	}
}

func TestCompareFasterClockFavorsMCML(t *testing.T) {
	// MCML's bias power is set by the gate delay target, not the clock;
	// CMOS switching power is linear in the clock. Deep pipelining (a
	// higher clock on the same gate) therefore moves the crossover
	// activity down — the paper's "high activity circuitry such as
	// datapaths".
	inv, err := gate.ReferenceInverter(35)
	if err != nil {
		t.Fatal(err)
	}
	node := itrs.MustNode(35)
	T := units.CelsiusToKelvin(85)
	base, err := Compare(inv, node.Vdd, T, 0.5, node.LocalClockHz)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Compare(inv, node.Vdd, T, 0.5, 2*node.LocalClockHz)
	if err != nil {
		t.Fatal(err)
	}
	if fast.CrossoverActivity >= base.CrossoverActivity {
		t.Fatalf("a faster clock must move the crossover down: %g vs %g",
			fast.CrossoverActivity, base.CrossoverActivity)
	}
}

func TestSupplyCurrentRipple(t *testing.T) {
	g, _ := ForDelay(10e-12, 0.2, 0.6, 2e-15)
	if g.SupplyCurrentRipple() >= g.TailCurrentA {
		t.Fatalf("ripple must be a small fraction of the steered bias")
	}
}
