package mcml_test

import (
	"fmt"

	"nanometer/internal/gate"
	"nanometer/internal/itrs"
	"nanometer/internal/mcml"
	"nanometer/internal/units"
)

// The §4 endgame option: MCML matches the CMOS gate's speed from a steered
// bias current, and its supply ripple is orders of magnitude below the CMOS
// switching spike.
func ExampleCompare() {
	inv, err := gate.ReferenceInverter(35)
	if err != nil {
		panic(err)
	}
	node := itrs.MustNode(35)
	cmp, err := mcml.Compare(inv, node.Vdd, units.CelsiusToKelvin(85), 0.5, node.LocalClockHz)
	if err != nil {
		panic(err)
	}
	fmt.Printf("di/dt relief ≫10×: %v; crossover activity exists: %v\n",
		cmp.CurrentRippleRatio < 0.1, cmp.CrossoverActivity > 0)
	// Output:
	// di/dt relief ≫10×: true; crossover activity exists: true
}
