// Package dualvth implements slack-driven dual-threshold assignment
// (§3.2.2): starting from an all-low-Vth (fast, leaky) implementation, gates
// off the critical paths move to the high threshold, cutting subthreshold
// leakage with minimal delay impact. The greedy is sensitivity-ordered
// (leakage saved per delay consumed), in the spirit of Sirichotiyakul [22]
// and Wei [39]; typical published results are 40–80 % leakage reduction.
package dualvth

import (
	"fmt"
	"sort"

	"nanometer/internal/netlist"
	"nanometer/internal/power"
	"nanometer/internal/sta"
)

// Options tunes the assignment.
type Options struct {
	// ClockHz evaluates power; zero uses 1/period.
	ClockHz float64
	// Order selects the candidate ordering.
	Order Order
}

// Order is the candidate-ordering policy.
type Order int

const (
	// BySensitivity orders by leakage-saved per delay-added (default).
	BySensitivity Order = iota
	// BySlack orders by descending slack (the naive heuristic; kept as an
	// ablation).
	BySlack
)

// Result summarizes an assignment.
type Result struct {
	// HighVthFraction is the share of gates assigned the high threshold.
	HighVthFraction float64
	// Before and After are the power reports.
	Before, After *power.Report
	// LeakageSaving is 1 − after/before leakage.
	LeakageSaving float64
	// DelayPenalty is the relative critical-path increase vs the all-low
	// design (0 when the period still binds elsewhere).
	DelayPenalty float64
	// TimingMet confirms the final circuit meets its period.
	TimingMet bool
}

// Assign moves every gate whose slack tolerates the high threshold. The
// circuit is modified in place and must meet its period at all-low-Vth.
func Assign(c *netlist.Circuit, opts Options) (*Result, error) {
	if len(c.Tech.VthLevels) < 2 {
		return nil, fmt.Errorf("dualvth: tech has a single threshold")
	}
	if c.ClockPeriodS <= 0 {
		return nil, fmt.Errorf("dualvth: circuit has no clock period")
	}
	base := sta.Analyze(c)
	if !base.Met() {
		return nil, fmt.Errorf("dualvth: circuit misses period before assignment (worst slack %v)", base.WorstSlackS)
	}
	fHz := opts.ClockHz
	if fHz == 0 {
		fHz = 1 / c.ClockPeriodS
	}
	power.PropagateActivity(c)
	before := power.Analyze(c, fHz)

	type cand struct {
		id    int
		score float64
	}
	cands := make([]cand, 0, len(c.Gates))
	for i := range c.Gates {
		g := &c.Gates[i]
		if g.VthClass != 0 {
			continue
		}
		load := c.LoadOn(g)
		dLow := c.Tech.CellDelay(g.Kind, len(g.Inputs), g.VddClass, 0, g.Size, load)
		dHigh := c.Tech.CellDelay(g.Kind, len(g.Inputs), g.VddClass, 1, g.Size, load)
		leakSave := c.Tech.CellLeakage(g.Kind, len(g.Inputs), g.VddClass, 0, g.Size) -
			c.Tech.CellLeakage(g.Kind, len(g.Inputs), g.VddClass, 1, g.Size)
		var score float64
		switch opts.Order {
		case BySlack:
			score = base.SlackS[i]
		default:
			dd := dHigh - dLow
			if dd <= 0 {
				dd = 1e-18
			}
			score = leakSave / dd
		}
		cands = append(cands, cand{i, score})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].score > cands[b].score })

	inc := sta.NewIncremental(c)
	assigned := 0
	for _, cd := range cands {
		g := &c.Gates[cd.id]
		g.VthClass = 1
		if inc.TryUpdate(cd.id) {
			assigned++
		} else {
			g.VthClass = 0
		}
	}

	after := power.Analyze(c, fHz)
	final := sta.Analyze(c)
	res := &Result{
		HighVthFraction: float64(assigned) / float64(len(c.Gates)),
		Before:          before,
		After:           after,
		TimingMet:       final.Met(),
	}
	if before.LeakageW > 0 {
		res.LeakageSaving = 1 - after.LeakageW/before.LeakageW
	}
	if base.MaxDelayS > 0 {
		res.DelayPenalty = final.MaxDelayS/base.MaxDelayS - 1
	}
	return res, nil
}
