package dualvth_test

import (
	"fmt"

	"nanometer/internal/dualvth"
	"nanometer/internal/netlist"
	"nanometer/internal/sta"
)

// Dual-Vth assignment on a timing-tight block (§3.2.2): leakage falls by
// the published 40–80 % band while the critical path keeps the low
// threshold and the clock holds.
func ExampleAssign() {
	tech := netlist.MustNewTech(100, 0.65)
	p := netlist.DefaultGenParams()
	p.Gates = 1200
	p.Seed = 2
	c, err := netlist.Generate(tech, p)
	if err != nil {
		panic(err)
	}
	if _, err := sta.SetPeriodFromCritical(c, 1.0); err != nil {
		panic(err)
	}
	res, err := dualvth.Assign(c, dualvth.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("leakage cut in the 40-80%%+ band: %v; delay penalty under 2%%: %v; met: %v\n",
		res.LeakageSaving > 0.4, res.DelayPenalty < 0.02, res.TimingMet)
	// Output:
	// leakage cut in the 40-80%+ band: true; delay penalty under 2%: true; met: true
}
