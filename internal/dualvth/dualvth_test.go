package dualvth

import (
	"testing"

	"nanometer/internal/netlist"
	"nanometer/internal/sta"
)

func circuit(t *testing.T, seed int64, guard float64) *netlist.Circuit {
	t.Helper()
	tech := netlist.MustNewTech(100, 0.65)
	p := netlist.DefaultGenParams()
	p.Gates = 1500
	p.Levels = 30
	p.Seed = seed
	c, err := netlist.Generate(tech, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sta.SetPeriodFromCritical(c, guard); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAssignAtTightClock(t *testing.T) {
	c := circuit(t, 1, 1.0)
	res, err := Assign(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimingMet {
		t.Fatalf("assignment must preserve timing")
	}
	// Published dual-Vth results: 40–80 % leakage reduction with minimal
	// delay penalty.
	if res.LeakageSaving < 0.4 {
		t.Fatalf("leakage saving = %g, want ≥ 40%%", res.LeakageSaving)
	}
	if res.DelayPenalty > 0.02 {
		t.Fatalf("delay penalty = %g, want ≈0 at a tight clock", res.DelayPenalty)
	}
	if res.HighVthFraction <= 0 || res.HighVthFraction > 1 {
		t.Fatalf("fraction out of range: %g", res.HighVthFraction)
	}
}

func TestCriticalPathStaysFast(t *testing.T) {
	c := circuit(t, 2, 1.0)
	base := sta.Analyze(c)
	if _, err := Assign(c, Options{}); err != nil {
		t.Fatal(err)
	}
	// At guard 1.0 the original critical path had zero slack: every gate on
	// it must keep the low threshold (any slowdown would violate).
	final := sta.Analyze(c)
	if final.MaxDelayS > base.MaxDelayS*(1+1e-9) {
		t.Fatalf("critical delay grew: %g → %g", base.MaxDelayS, final.MaxDelayS)
	}
	lowOnCritical := 0
	for _, g := range base.CriticalPath {
		if c.Gates[g].VthClass == 0 {
			lowOnCritical++
		}
	}
	if lowOnCritical == 0 {
		t.Fatalf("the critical path cannot be entirely high-Vth at zero slack")
	}
}

func TestOrderingAblation(t *testing.T) {
	sens, err := Assign(circuit(t, 3, 1.0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	slack, err := Assign(circuit(t, 3, 1.0), Options{Order: BySlack})
	if err != nil {
		t.Fatal(err)
	}
	// Both orderings must produce valid, substantial reductions; the
	// sensitivity ordering should not lose badly.
	if sens.LeakageSaving < slack.LeakageSaving*0.9 {
		t.Fatalf("sensitivity ordering (%g) much worse than slack ordering (%g)",
			sens.LeakageSaving, slack.LeakageSaving)
	}
}

func TestLooseClockConvertsMore(t *testing.T) {
	tight, err := Assign(circuit(t, 4, 1.0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Assign(circuit(t, 4, 1.3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if loose.HighVthFraction < tight.HighVthFraction {
		t.Fatalf("slack must enable conversion: %g (loose) < %g (tight)",
			loose.HighVthFraction, tight.HighVthFraction)
	}
}

func TestAssignErrors(t *testing.T) {
	single := netlist.MustNewTech(100, 0.65)
	single.VthLevels = single.VthLevels[:1]
	p := netlist.DefaultGenParams()
	p.Gates = 100
	c, err := netlist.Generate(single, p)
	if err != nil {
		t.Fatal(err)
	}
	c.ClockPeriodS = 1e-9
	if _, err := Assign(c, Options{}); err == nil {
		t.Fatalf("single-threshold tech must error")
	}
	c2 := circuit(t, 5, 1.1)
	c2.ClockPeriodS = 0
	if _, err := Assign(c2, Options{}); err == nil {
		t.Fatalf("missing period must error")
	}
	c3 := circuit(t, 5, 1.1)
	c3.ClockPeriodS /= 10
	if _, err := Assign(c3, Options{}); err == nil {
		t.Fatalf("violated baseline must error")
	}
}
