// Package result defines the typed output of the reproduction's compute
// layer. Every artifact (table, figure, quantified claim) computes into a
// Result — an ordered list of Table, Figure, and Claim items — instead of
// pre-formatted text, so the same computation can be encoded as a terminal
// report, JSON, or CSV (internal/render), cached, diffed, or served. All
// types round-trip through encoding/json losslessly.
package result

import (
	"fmt"
	"math"
)

// Result is the complete typed output of one artifact.
type Result struct {
	// ID is the stable artifact ID (t1, f3, c8, ...).
	ID string `json:"id"`
	// Title is the registry title used in listings.
	Title string `json:"title"`
	// Scenario names the roadmap scenario the result was computed under.
	// Empty means the base ITRS-2000 roadmap — the byte-identity case, so
	// every encoder must emit nothing for it.
	Scenario string `json:"scenario,omitempty"`
	// Items are the artifact's outputs in emission order.
	Items []Item `json:"items"`
}

// Report is a set of artifact results — the JSON shape of a full
// reproduction run.
type Report struct {
	Artifacts []*Result `json:"artifacts"`
}

// Kind discriminates the item payloads.
type Kind string

const (
	KindTable  Kind = "table"
	KindFigure Kind = "figure"
	KindClaim  Kind = "claim"
)

// Item is one element of a Result: exactly one of Table, Figure, or Claim
// is set, matching Kind.
type Item struct {
	Kind   Kind    `json:"kind"`
	Table  *Table  `json:"table,omitempty"`
	Figure *Figure `json:"figure,omitempty"`
	Claim  *Claim  `json:"claim,omitempty"`
}

// AddTable appends a table item.
func (r *Result) AddTable(t *Table) { r.Items = append(r.Items, Item{Kind: KindTable, Table: t}) }

// AddFigure appends a figure item.
func (r *Result) AddFigure(f *Figure) { r.Items = append(r.Items, Item{Kind: KindFigure, Figure: f}) }

// AddClaim appends a claim item.
func (r *Result) AddClaim(c *Claim) { r.Items = append(r.Items, Item{Kind: KindClaim, Claim: c}) }

// Validate checks structural invariants: every item carries exactly the
// payload its Kind names. Encoders rely on this holding.
func (r *Result) Validate() error {
	if r.ID == "" {
		return fmt.Errorf("result: missing artifact ID")
	}
	for i, it := range r.Items {
		n := 0
		if it.Table != nil {
			n++
		}
		if it.Figure != nil {
			n++
		}
		if it.Claim != nil {
			n++
		}
		if n != 1 {
			return fmt.Errorf("result %s: item %d has %d payloads, want exactly 1", r.ID, i, n)
		}
		switch it.Kind {
		case KindTable:
			if it.Table == nil {
				return fmt.Errorf("result %s: item %d kind table without table payload", r.ID, i)
			}
		case KindFigure:
			if it.Figure == nil {
				return fmt.Errorf("result %s: item %d kind figure without figure payload", r.ID, i)
			}
		case KindClaim:
			if it.Claim == nil {
				return fmt.Errorf("result %s: item %d kind claim without claim payload", r.ID, i)
			}
		default:
			return fmt.Errorf("result %s: item %d has unknown kind %q", r.ID, i, it.Kind)
		}
	}
	return nil
}

// Table is a titled grid of pre-formatted cells with footnotes. Cells stay
// strings — the compute layer owns significant digits and unit scaling —
// but headers, rows, and notes are separated so machine consumers never
// parse aligned text.
type Table struct {
	Title   string     `json:"title,omitempty"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Figure is a named set of series sharing axes. Name is the stable file
// base the CSV encoders use (e.g. "figure2" → figure2.csv).
type Figure struct {
	Name   string   `json:"name"`
	Title  string   `json:"title"`
	XLabel string   `json:"x_label,omitempty"`
	YLabel string   `json:"y_label,omitempty"`
	LogX   bool     `json:"log_x,omitempty"`
	LogY   bool     `json:"log_y,omitempty"`
	Series []Series `json:"series"`
}

// Series is one named (x, y) point sequence; X and Y are parallel.
type Series struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

// Claim is an ordered list of key/value findings — the machine-readable
// form of one of the paper's quantified in-text claims.
type Claim struct {
	Findings []Finding `json:"findings"`
}

// Finding is one measured quantity of a claim. Numeric findings carry
// Value (+Unit); non-numeric ones (technique names, cooling classes,
// booleans) carry Text. Findings the paper quotes a number for carry a
// Check recording the quoted value and whether the reproduction hits it.
type Finding struct {
	Key   string  `json:"key"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
	Text  string  `json:"text,omitempty"`
	Check *Check  `json:"check,omitempty"`
}

// Check is a pass/fail comparison of a computed value against the paper's
// quoted number.
type Check struct {
	// Paper is the value the paper quotes, in the finding's unit.
	Paper float64 `json:"paper"`
	// RelTol is the allowed relative deviation (the paper's numbers are
	// "≈" and ranges, not five-digit constants).
	RelTol float64 `json:"rel_tol"`
	// Pass reports |value − Paper| ≤ RelTol·|Paper|.
	Pass bool `json:"pass"`
}

// NewCheck evaluates value against the paper's quoted number.
func NewCheck(value, paper, relTol float64) *Check {
	return &Check{Paper: paper, RelTol: relTol, Pass: math.Abs(value-paper) <= relTol*math.Abs(paper)}
}

// Num appends a numeric finding and returns the claim for chaining.
func (c *Claim) Num(key string, v float64, unit string) *Claim {
	c.Findings = append(c.Findings, Finding{Key: key, Value: v, Unit: unit})
	return c
}

// Str appends a textual finding.
func (c *Claim) Str(key, s string) *Claim {
	c.Findings = append(c.Findings, Finding{Key: key, Text: s})
	return c
}

// Bool appends a boolean finding (Text "true"/"false", Value 1/0).
func (c *Claim) Bool(key string, b bool) *Claim {
	f := Finding{Key: key, Text: "false"}
	if b {
		f.Value, f.Text = 1, "true"
	}
	c.Findings = append(c.Findings, f)
	return c
}

// Checked appends a numeric finding with a pass/fail check against the
// paper's quoted number.
func (c *Claim) Checked(key string, v float64, unit string, paper, relTol float64) *Claim {
	c.Findings = append(c.Findings, Finding{Key: key, Value: v, Unit: unit, Check: NewCheck(v, paper, relTol)})
	return c
}

// Find returns the finding for key.
func (c *Claim) Find(key string) (Finding, bool) {
	for _, f := range c.Findings {
		if f.Key == key {
			return f, true
		}
	}
	return Finding{}, false
}

// FailedChecks lists the findings whose paper check does not pass — the
// regression surface a CI gate watches.
func (c *Claim) FailedChecks() []Finding {
	var out []Finding
	for _, f := range c.Findings {
		if f.Check != nil && !f.Check.Pass {
			out = append(out, f)
		}
	}
	return out
}
