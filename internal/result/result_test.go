package result

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestCheckFiresOnWrongPaperValue: the pass/fail machinery must actually
// discriminate — the same computed value passes against the paper's real
// number and fails against a deliberately wrong one.
func TestCheckFiresOnWrongPaperValue(t *testing.T) {
	if ck := NewCheck(0.44, 0.44, 0.1); !ck.Pass {
		t.Fatal("exact match must pass")
	}
	if ck := NewCheck(0.46, 0.44, 0.1); !ck.Pass {
		t.Fatal("value within tolerance must pass")
	}
	if ck := NewCheck(0.44, 4.4, 0.1); ck.Pass {
		t.Fatal("check against a wrong paper value must fail")
	}
	if ck := NewCheck(0.60, 0.44, 0.1); ck.Pass {
		t.Fatal("value outside tolerance must fail")
	}
	// Negative quoted values compare on magnitude of the deviation.
	if ck := NewCheck(-0.9, -1.0, 0.2); !ck.Pass {
		t.Fatal("negative-value check must pass within tolerance")
	}
}

func TestClaimBuilderAndLookup(t *testing.T) {
	c := &Claim{}
	c.Num("vdd", 0.44, "V").
		Str("class", "fan").
		Bool("met", true).
		Checked("saving", 0.46, "", 0.46, 0.1).
		Checked("broken", 0.46, "", 99, 0.1)
	if f, ok := c.Find("vdd"); !ok || f.Value != 0.44 || f.Unit != "V" {
		t.Fatalf("Find(vdd) = %+v, %v", f, ok)
	}
	if f, _ := c.Find("met"); f.Text != "true" || f.Value != 1 {
		t.Fatalf("bool finding = %+v", f)
	}
	if _, ok := c.Find("absent"); ok {
		t.Fatal("Find must report missing keys")
	}
	failed := c.FailedChecks()
	if len(failed) != 1 || failed[0].Key != "broken" {
		t.Fatalf("FailedChecks = %+v, want just the deliberately wrong one", failed)
	}
}

// TestJSONRoundTrip: a result carrying all three item kinds survives
// encoding/json without loss — the contract the JSON encoder and any
// future serving layer lean on.
func TestJSONRoundTrip(t *testing.T) {
	res := &Result{ID: "x1", Title: "round-trip fixture"}
	res.AddTable(&Table{
		Title:   "a table",
		Headers: []string{"node", "value"},
		Rows:    [][]string{{"180", "1.5"}, {"35", "0.6"}},
		Notes:   []string{"a note, with comma"},
	})
	res.AddFigure(&Figure{
		Name: "figx", Title: "a figure", XLabel: "x", YLabel: "y", LogY: true,
		Series: []Series{{Name: "s1", X: []float64{1, 2}, Y: []float64{3, 4}}},
	})
	c := &Claim{}
	c.Num("power", 1.5, "W").Str("class", "fan").Bool("ok", false).Checked("pitch", 356, "µm", 356, 0.1)
	res.AddClaim(c)
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, &back) {
		t.Fatalf("round trip lost data:\n got %+v\nwant %+v", &back, res)
	}
}

func TestValidate(t *testing.T) {
	bad := &Result{ID: "x", Items: []Item{{Kind: KindTable}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("kind without payload must fail validation")
	}
	bad = &Result{ID: "x", Items: []Item{{Kind: KindTable, Table: &Table{}, Claim: &Claim{}}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("two payloads must fail validation")
	}
	bad = &Result{Items: nil}
	if err := bad.Validate(); err == nil {
		t.Fatal("missing ID must fail validation")
	}
}
