// Package rcsim is a small transient circuit simulator for driven
// distributed-RC lines: the wire is discretized into an RC ladder, the
// driver into a Thevenin source, and the step response integrated by
// backward Euler with a Thomas-algorithm tridiagonal solve per step. It
// exists to validate the analytical delay layer (Elmore, the driven-delay
// formula, and the dominant-pole detection-threshold model in
// internal/signaling) against a numerical ground truth.
package rcsim

import (
	"fmt"
	"math"
)

// Line describes the simulation setup.
type Line struct {
	// RPerM and CPerM are the distributed parasitics.
	RPerM, CPerM float64
	// LengthM is the wire length; Segments the discretization (≥ 8).
	LengthM  float64
	Segments int
	// DriverOhms is the source resistance driving the near end.
	DriverOhms float64
	// LoadF is the far-end lumped load.
	LoadF float64
}

// Validate reports setup errors.
func (l *Line) Validate() error {
	switch {
	case l.RPerM <= 0 || l.CPerM <= 0:
		return fmt.Errorf("rcsim: non-positive parasitics (r=%g, c=%g)", l.RPerM, l.CPerM)
	case l.LengthM <= 0:
		return fmt.Errorf("rcsim: non-positive length %g", l.LengthM)
	case l.DriverOhms < 0 || l.LoadF < 0:
		return fmt.Errorf("rcsim: negative driver or load")
	}
	return nil
}

// StepResponse simulates a 0→1 V step at the driver and returns the time
// for the far-end node to cross each of the requested thresholds (fractions
// of the final value, ascending). The integration runs until the last
// threshold is crossed.
func (l *Line) StepResponse(thresholds []float64) ([]float64, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	n := l.Segments
	if n < 8 {
		n = 8
	}
	for i, th := range thresholds {
		if th <= 0 || th >= 1 {
			return nil, fmt.Errorf("rcsim: threshold %g outside (0,1)", th)
		}
		if i > 0 && th <= thresholds[i-1] {
			return nil, fmt.Errorf("rcsim: thresholds must ascend")
		}
	}
	seg := l.LengthM / float64(n)
	rSeg := l.RPerM * seg
	cSeg := l.CPerM * seg
	// Node capacitances: interior nodes carry cSeg, the far end cSeg/2 +
	// load, node 0 cSeg/2 (behind the driver resistance).
	caps := make([]float64, n+1)
	for i := range caps {
		caps[i] = cSeg
	}
	caps[0] = cSeg / 2
	caps[n] = cSeg/2 + l.LoadF

	// Time constant scale for step sizing.
	tau := (l.DriverOhms + l.RPerM*l.LengthM) * (l.CPerM*l.LengthM + l.LoadF)
	dt := tau / 2000
	if dt <= 0 {
		return nil, fmt.Errorf("rcsim: degenerate time constant")
	}
	v := make([]float64, n+1)
	out := make([]float64, len(thresholds))
	for i := range out {
		out[i] = -1
	}
	// Backward Euler: (C/dt + G)·v_new = C/dt·v_old + b, tridiagonal.
	// Conductances: g0 = 1/driver between source (1 V) and node 0; gSeg
	// between adjacent nodes. The system matrix is the same every step —
	// only the RHS moves — so it is assembled and LU-factored (Thomas)
	// exactly once here, and each step below re-solves against the stored
	// factor with no per-step allocation and no per-step division
	// (triFactor). TestFactoredSolveMatchesReference pins the threshold
	// times against the rebuild-every-step implementation to 1e-12.
	gSeg := 1 / rSeg
	g0 := math.Inf(1)
	if l.DriverOhms > 0 {
		g0 = 1 / l.DriverOhms
	}
	a := make([]float64, n+1) // sub-diagonal
	b := make([]float64, n+1) // diagonal
	cDiag := make([]float64, n+1)
	capDt := make([]float64, n+1) // caps[i]/dt, the RHS refill coefficients
	for i := 0; i <= n; i++ {
		b[i] = caps[i] / dt
		capDt[i] = caps[i] / dt
		if i > 0 {
			b[i] += gSeg
			a[i] = -gSeg
		}
		if i < n {
			b[i] += gSeg
			cDiag[i] = -gSeg
		}
	}
	// add[] is the constant part of the RHS (the source injection); the
	// state-dependent part is capDt[i]·v[i], formed inside stepBE.
	add := make([]float64, n+1)
	if math.IsInf(g0, 1) {
		// Ideal driver: node 0 pinned at 1 V (unit diagonal row, RHS 1),
		// with node 1's coupling to it moved to the RHS.
		b[0] = 1
		cDiag[0] = 0
		capDt[0] = 0
		add[0] = 1
		add[1] = -a[1] // −(−gSeg)·1 V
		a[1] = 0
	} else {
		b[0] += g0
		add[0] = g0 // g0·1 V source
	}
	f := newTriFactor(a, b, cDiag)
	next := 0
	maxSteps := 400000
	for step := 1; step <= maxSteps && next < len(thresholds); step++ {
		f.stepBE(capDt, add, v)
		t := float64(step) * dt
		for next < len(thresholds) && v[n] >= thresholds[next] {
			// Linear back-interpolation within the step.
			out[next] = t
			next++
		}
	}
	if next < len(thresholds) {
		return nil, fmt.Errorf("rcsim: response did not reach threshold %g", thresholds[next])
	}
	return out, nil
}

// Delay50 returns the 50 % step-response delay.
func (l *Line) Delay50() (float64, error) {
	ts, err := l.StepResponse([]float64{0.5})
	if err != nil {
		return 0, err
	}
	return ts[0], nil
}

// triFactor is the Thomas-algorithm LU factorization of a constant
// tridiagonal matrix, computed once and re-solved against many right-hand
// sides. The forward elimination's pivots m[i] = b[i] − a[i]·cp[i−1] and
// normalized super-diagonal cp depend only on the matrix; a re-solve
// reuses them and allocates nothing. Pivots are stored as reciprocals so
// the per-step sweep runs on multiplies alone — a serial FP division per
// node dominated the step cost. The reciprocal rounds once per pivot
// (relative 1e-16 per node versus dividing), far inside the 1e-12 delay
// agreement the tests pin against the rebuild-every-step reference.
type triFactor struct {
	cp    []float64 // c[i] / m[i]
	invM  []float64 // reciprocal pivots; invM[0] = 1/b[0]
	aInvM []float64 // a[i] / m[i], the forward sweep's recurrence weight
	dp    []float64 // per-solve scratch
}

// newTriFactor factors the tridiagonal matrix with sub-diagonal a,
// diagonal b, and super-diagonal c (all length n, a[0] and c[n−1]
// unused). The matrix must have nonzero pivots (true for the diagonally
// dominant backward-Euler systems here).
func newTriFactor(a, b, c []float64) *triFactor {
	n := len(b)
	f := &triFactor{
		cp:    make([]float64, n),
		invM:  make([]float64, n),
		aInvM: make([]float64, n),
		dp:    make([]float64, n),
	}
	m := b[0]
	f.invM[0] = 1 / m
	f.cp[0] = c[0] / m
	for i := 1; i < n; i++ {
		m = b[i] - a[i]*f.cp[i-1]
		f.invM[i] = 1 / m
		f.aInvM[i] = a[i] * f.invM[i]
		f.cp[i] = c[i] / m
	}
	return f
}

// stepBE advances one backward-Euler step in place: it solves the factored
// system for RHS d[i] = capDt[i]·v[i] + add[i] and writes the new state
// over v. The RHS is formed inside the forward sweep (no materialized RHS
// vector), and the elimination is re-associated as
// dp[i] = d[i]/m[i] − (a[i]/m[i])·dp[i−1], leaving a single fused
// multiply-add on the loop-carried chain — the d[i]/m[i] products are
// independent across nodes, so both sweeps run at the hardware FMA's
// recurrence latency rather than the full divide-normalize chain (the
// whole simulation is this dependency chain; see the package benchmark).
// Allocation-free.
func (f *triFactor) stepBE(capDt, add, v []float64) {
	cp, invM, aInvM, dp := f.cp, f.invM, f.aInvM, f.dp
	n := len(invM)
	dp[0] = (capDt[0]*v[0] + add[0]) * invM[0]
	for i := 1; i < n; i++ {
		dp[i] = math.FMA(-aInvM[i], dp[i-1], math.FMA(capDt[i], v[i], add[i])*invM[i])
	}
	v[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		v[i] = math.FMA(-cp[i], v[i+1], dp[i])
	}
}
