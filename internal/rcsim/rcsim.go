// Package rcsim is a small transient circuit simulator for driven
// distributed-RC lines: the wire is discretized into an RC ladder, the
// driver into a Thevenin source, and the step response integrated by
// backward Euler with a Thomas-algorithm tridiagonal solve per step. It
// exists to validate the analytical delay layer (Elmore, the driven-delay
// formula, and the dominant-pole detection-threshold model in
// internal/signaling) against a numerical ground truth.
package rcsim

import (
	"fmt"
	"math"
)

// Line describes the simulation setup.
type Line struct {
	// RPerM and CPerM are the distributed parasitics.
	RPerM, CPerM float64
	// LengthM is the wire length; Segments the discretization (≥ 8).
	LengthM  float64
	Segments int
	// DriverOhms is the source resistance driving the near end.
	DriverOhms float64
	// LoadF is the far-end lumped load.
	LoadF float64
}

// Validate reports setup errors.
func (l *Line) Validate() error {
	switch {
	case l.RPerM <= 0 || l.CPerM <= 0:
		return fmt.Errorf("rcsim: non-positive parasitics (r=%g, c=%g)", l.RPerM, l.CPerM)
	case l.LengthM <= 0:
		return fmt.Errorf("rcsim: non-positive length %g", l.LengthM)
	case l.DriverOhms < 0 || l.LoadF < 0:
		return fmt.Errorf("rcsim: negative driver or load")
	}
	return nil
}

// StepResponse simulates a 0→1 V step at the driver and returns the time
// for the far-end node to cross each of the requested thresholds (fractions
// of the final value, ascending). The integration runs until the last
// threshold is crossed.
func (l *Line) StepResponse(thresholds []float64) ([]float64, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	n := l.Segments
	if n < 8 {
		n = 8
	}
	for i, th := range thresholds {
		if th <= 0 || th >= 1 {
			return nil, fmt.Errorf("rcsim: threshold %g outside (0,1)", th)
		}
		if i > 0 && th <= thresholds[i-1] {
			return nil, fmt.Errorf("rcsim: thresholds must ascend")
		}
	}
	seg := l.LengthM / float64(n)
	rSeg := l.RPerM * seg
	cSeg := l.CPerM * seg
	// Node capacitances: interior nodes carry cSeg, the far end cSeg/2 +
	// load, node 0 cSeg/2 (behind the driver resistance).
	caps := make([]float64, n+1)
	for i := range caps {
		caps[i] = cSeg
	}
	caps[0] = cSeg / 2
	caps[n] = cSeg/2 + l.LoadF

	// Time constant scale for step sizing.
	tau := (l.DriverOhms + l.RPerM*l.LengthM) * (l.CPerM*l.LengthM + l.LoadF)
	dt := tau / 2000
	if dt <= 0 {
		return nil, fmt.Errorf("rcsim: degenerate time constant")
	}
	v := make([]float64, n+1)
	out := make([]float64, len(thresholds))
	for i := range out {
		out[i] = -1
	}
	// Backward Euler: (C/dt + G)·v_new = C/dt·v_old + b, tridiagonal.
	// Conductances: g0 = 1/driver between source (1 V) and node 0; gSeg
	// between adjacent nodes.
	gSeg := 1 / rSeg
	g0 := math.Inf(1)
	if l.DriverOhms > 0 {
		g0 = 1 / l.DriverOhms
	}
	a := make([]float64, n+1) // sub-diagonal
	b := make([]float64, n+1) // diagonal
	cDiag := make([]float64, n+1)
	rhs := make([]float64, n+1)
	next := 0
	maxSteps := 400000
	for step := 1; step <= maxSteps && next < len(thresholds); step++ {
		for i := 0; i <= n; i++ {
			b[i] = caps[i] / dt
			a[i], cDiag[i] = 0, 0
			rhs[i] = caps[i] / dt * v[i]
			if i > 0 {
				b[i] += gSeg
				a[i] = -gSeg
			}
			if i < n {
				b[i] += gSeg
				cDiag[i] = -gSeg
			}
		}
		if math.IsInf(g0, 1) {
			// Ideal driver: node 0 pinned at 1 V.
			b[0] = 1
			cDiag[0] = 0
			rhs[0] = 1
			// Remove the coupling of node 1 to node 0's equation by moving
			// it to the RHS.
			rhs[1] -= a[1] * 1
			a[1] = 0
		} else {
			b[0] += g0
			rhs[0] += g0 * 1.0 // source at 1 V
		}
		solveTridiag(a, b, cDiag, rhs, v)
		t := float64(step) * dt
		for next < len(thresholds) && v[n] >= thresholds[next] {
			// Linear back-interpolation within the step.
			out[next] = t
			next++
		}
	}
	if next < len(thresholds) {
		return nil, fmt.Errorf("rcsim: response did not reach threshold %g", thresholds[next])
	}
	return out, nil
}

// Delay50 returns the 50 % step-response delay.
func (l *Line) Delay50() (float64, error) {
	ts, err := l.StepResponse([]float64{0.5})
	if err != nil {
		return 0, err
	}
	return ts[0], nil
}

// solveTridiag solves the tridiagonal system in place (Thomas algorithm).
// a is the sub-diagonal, b the diagonal, c the super-diagonal, d the RHS;
// the solution lands in x. All slices share length n.
func solveTridiag(a, b, c, d, x []float64) {
	n := len(b)
	cp := make([]float64, n)
	dp := make([]float64, n)
	cp[0] = c[0] / b[0]
	dp[0] = d[0] / b[0]
	for i := 1; i < n; i++ {
		m := b[i] - a[i]*cp[i-1]
		cp[i] = c[i] / m
		dp[i] = (d[i] - a[i]*dp[i-1]) / m
	}
	x[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = dp[i] - cp[i]*x[i+1]
	}
}
