package rcsim

import (
	"fmt"
	"math"
	"testing"

	"nanometer/internal/wire"
)

func line50nm(length, rdrv, cload float64) *Line {
	w := wire.MustForNode(50, wire.Global)
	return &Line{
		RPerM: w.RPerM(), CPerM: w.CPerM(),
		LengthM: length, Segments: 64,
		DriverOhms: rdrv, LoadF: cload,
	}
}

func TestValidate(t *testing.T) {
	bad := []*Line{
		{RPerM: 0, CPerM: 1, LengthM: 1},
		{RPerM: 1, CPerM: 1, LengthM: 0},
		{RPerM: 1, CPerM: 1, LengthM: 1, DriverOhms: -1},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("bad line %d accepted", i)
		}
	}
}

func TestLumpedRCAgainstClosedForm(t *testing.T) {
	// A driver-dominated line (negligible wire resistance) is a single RC:
	// the 50 % delay is ln(2)·R·C.
	l := &Line{
		RPerM: 1, CPerM: 1e-12, // 1 Ω/m: wire R irrelevant
		LengthM: 1e-3, Segments: 16,
		DriverOhms: 10e3, LoadF: 50e-15,
	}
	got, err := l.Delay50()
	if err != nil {
		t.Fatal(err)
	}
	ctot := l.CPerM*l.LengthM + l.LoadF
	want := math.Ln2 * l.DriverOhms * ctot
	if math.Abs(got-want)/want > 0.03 {
		t.Fatalf("lumped RC delay = %g, closed form %g", got, want)
	}
}

func TestIdealDriverMatchesElmoreFactor(t *testing.T) {
	// An ideally driven distributed line's 50 % delay is ≈0.38·R·C
	// (the factor the analytical layer uses everywhere).
	l := line50nm(5e-3, 0, 0)
	got, err := l.Delay50()
	if err != nil {
		t.Fatal(err)
	}
	rc := l.RPerM * l.CPerM * l.LengthM * l.LengthM
	factor := got / rc
	if factor < 0.34 || factor > 0.42 {
		t.Fatalf("distributed 50%% factor = %.3f, want ≈0.38", factor)
	}
}

func TestDrivenDelayFormulaAccuracy(t *testing.T) {
	// The analytical DrivenDelay expression tracks the simulator within
	// ~15 % across driver/load regimes.
	w := wire.MustForNode(50, wire.Global)
	cases := []struct{ len, rdrv, cload float64 }{
		{2e-3, 500, 5e-15},
		{5e-3, 1000, 20e-15},
		{10e-3, 200, 50e-15},
	}
	for _, cs := range cases {
		l := line50nm(cs.len, cs.rdrv, cs.cload)
		sim, err := l.Delay50()
		if err != nil {
			t.Fatal(err)
		}
		analytic := w.DrivenDelay(cs.len, cs.rdrv, cs.cload)
		ratio := analytic / sim
		if ratio < 0.85 || ratio > 1.25 {
			t.Fatalf("case %+v: analytic/simulated = %.3f", cs, ratio)
		}
	}
}

func TestLowThresholdCrossesEarly(t *testing.T) {
	// The signaling model's claim: a 10 %-of-final detection threshold is
	// reached in a small fraction of the 50 % time — quantitatively, the
	// dominant-pole model predicts t(10 %)/t(50 %) ≈ 0.09/0.38 ≈ 0.25.
	l := line50nm(8e-3, 0, 0)
	ts, err := l.StepResponse([]float64{0.1, 0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if !(ts[0] < ts[1] && ts[1] < ts[2]) {
		t.Fatalf("thresholds must cross in order: %v", ts)
	}
	ratio := ts[0] / ts[1]
	if ratio < 0.15 || ratio > 0.40 {
		t.Fatalf("t(10%%)/t(50%%) = %.3f, dominant pole predicts ≈0.25", ratio)
	}
}

func TestStepResponseErrors(t *testing.T) {
	l := line50nm(1e-3, 100, 1e-15)
	if _, err := l.StepResponse([]float64{0.5, 0.2}); err == nil {
		t.Fatalf("non-ascending thresholds must error")
	}
	if _, err := l.StepResponse([]float64{1.5}); err == nil {
		t.Fatalf("threshold ≥ 1 must error")
	}
	if _, err := l.StepResponse([]float64{0}); err == nil {
		t.Fatalf("threshold ≤ 0 must error")
	}
}

func TestConvergenceWithRefinement(t *testing.T) {
	// Doubling the segment count moves the answer by little (the
	// discretization is converged at 64 segments).
	coarse := line50nm(5e-3, 500, 10e-15)
	coarse.Segments = 32
	fine := line50nm(5e-3, 500, 10e-15)
	fine.Segments = 128
	dc, err := coarse.Delay50()
	if err != nil {
		t.Fatal(err)
	}
	df, err := fine.Delay50()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dc-df)/df > 0.05 {
		t.Fatalf("discretization not converged: %g vs %g", dc, df)
	}
}

// referenceStepResponse is the historical implementation kept as the test
// oracle: it rebuilds and fully re-eliminates the tridiagonal system every
// step. The production path factors once and re-solves; the two must agree
// far below solver tolerance (the re-solve repeats the same arithmetic, so
// in practice they agree exactly).
func referenceStepResponse(l *Line, thresholds []float64) ([]float64, error) {
	n := l.Segments
	if n < 8 {
		n = 8
	}
	seg := l.LengthM / float64(n)
	rSeg := l.RPerM * seg
	cSeg := l.CPerM * seg
	caps := make([]float64, n+1)
	for i := range caps {
		caps[i] = cSeg
	}
	caps[0] = cSeg / 2
	caps[n] = cSeg/2 + l.LoadF
	tau := (l.DriverOhms + l.RPerM*l.LengthM) * (l.CPerM*l.LengthM + l.LoadF)
	dt := tau / 2000
	v := make([]float64, n+1)
	out := make([]float64, len(thresholds))
	gSeg := 1 / rSeg
	g0 := math.Inf(1)
	if l.DriverOhms > 0 {
		g0 = 1 / l.DriverOhms
	}
	a := make([]float64, n+1)
	b := make([]float64, n+1)
	cDiag := make([]float64, n+1)
	rhs := make([]float64, n+1)
	next := 0
	for step := 1; step <= 400000 && next < len(thresholds); step++ {
		for i := 0; i <= n; i++ {
			b[i] = caps[i] / dt
			a[i], cDiag[i] = 0, 0
			rhs[i] = caps[i] / dt * v[i]
			if i > 0 {
				b[i] += gSeg
				a[i] = -gSeg
			}
			if i < n {
				b[i] += gSeg
				cDiag[i] = -gSeg
			}
		}
		if math.IsInf(g0, 1) {
			b[0] = 1
			cDiag[0] = 0
			rhs[0] = 1
			rhs[1] -= a[1] * 1
			a[1] = 0
		} else {
			b[0] += g0
			rhs[0] += g0 * 1.0
		}
		// Full Thomas elimination, allocated and recomputed per step.
		cp := make([]float64, n+1)
		dp := make([]float64, n+1)
		cp[0] = cDiag[0] / b[0]
		dp[0] = rhs[0] / b[0]
		for i := 1; i <= n; i++ {
			m := b[i] - a[i]*cp[i-1]
			cp[i] = cDiag[i] / m
			dp[i] = (rhs[i] - a[i]*dp[i-1]) / m
		}
		v[n] = dp[n]
		for i := n - 1; i >= 0; i-- {
			v[i] = dp[i] - cp[i]*v[i+1]
		}
		t := float64(step) * dt
		for next < len(thresholds) && v[n] >= thresholds[next] {
			out[next] = t
			next++
		}
	}
	if next < len(thresholds) {
		return nil, fmt.Errorf("reference did not reach threshold %g", thresholds[next])
	}
	return out, nil
}

// TestFactoredSolveMatchesReference pins the factor-once optimization
// against the rebuild-every-step oracle across driver regimes (including
// the ideal-driver pinned-node path) to 1e-12 relative.
func TestFactoredSolveMatchesReference(t *testing.T) {
	thresholds := []float64{0.1, 0.5, 0.9}
	for _, drv := range []float64{0, 500, 2000} {
		for _, segs := range []int{16, 64} {
			l := &Line{
				RPerM: 1.5e5, CPerM: 2.1e-10,
				LengthM: 5e-3, Segments: segs,
				DriverOhms: drv, LoadF: 10e-15,
			}
			got, err := l.StepResponse(thresholds)
			if err != nil {
				t.Fatalf("drv=%g segs=%d: %v", drv, segs, err)
			}
			want, err := referenceStepResponse(l, thresholds)
			if err != nil {
				t.Fatalf("drv=%g segs=%d: %v", drv, segs, err)
			}
			for i := range got {
				if d := math.Abs(got[i]-want[i]) / want[i]; d > 1e-12 {
					t.Errorf("drv=%g segs=%d threshold %g: factored %g vs reference %g (rel %.3g)",
						drv, segs, thresholds[i], got[i], want[i], d)
				}
			}
		}
	}
}

// TestStepResponseAllocation pins the zero-allocations-per-step contract:
// total allocations for a whole simulation must stay at the small constant
// the setup needs, regardless of how many steps the integration runs. The
// historical implementation allocated two scratch slices per step (~2000
// for a 50 % crossing), which this bound catches immediately.
func TestStepResponseAllocation(t *testing.T) {
	l := line50nm(5e-3, 500, 10e-15)
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := l.StepResponse([]float64{0.9}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 25 {
		t.Fatalf("StepResponse allocated %.0f objects; want setup-only (≤ 25) — the per-step path must not allocate", allocs)
	}
}
