package rcsim

import (
	"math"
	"testing"

	"nanometer/internal/wire"
)

func line50nm(length, rdrv, cload float64) *Line {
	w := wire.MustForNode(50, wire.Global)
	return &Line{
		RPerM: w.RPerM(), CPerM: w.CPerM(),
		LengthM: length, Segments: 64,
		DriverOhms: rdrv, LoadF: cload,
	}
}

func TestValidate(t *testing.T) {
	bad := []*Line{
		{RPerM: 0, CPerM: 1, LengthM: 1},
		{RPerM: 1, CPerM: 1, LengthM: 0},
		{RPerM: 1, CPerM: 1, LengthM: 1, DriverOhms: -1},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("bad line %d accepted", i)
		}
	}
}

func TestLumpedRCAgainstClosedForm(t *testing.T) {
	// A driver-dominated line (negligible wire resistance) is a single RC:
	// the 50 % delay is ln(2)·R·C.
	l := &Line{
		RPerM: 1, CPerM: 1e-12, // 1 Ω/m: wire R irrelevant
		LengthM: 1e-3, Segments: 16,
		DriverOhms: 10e3, LoadF: 50e-15,
	}
	got, err := l.Delay50()
	if err != nil {
		t.Fatal(err)
	}
	ctot := l.CPerM*l.LengthM + l.LoadF
	want := math.Ln2 * l.DriverOhms * ctot
	if math.Abs(got-want)/want > 0.03 {
		t.Fatalf("lumped RC delay = %g, closed form %g", got, want)
	}
}

func TestIdealDriverMatchesElmoreFactor(t *testing.T) {
	// An ideally driven distributed line's 50 % delay is ≈0.38·R·C
	// (the factor the analytical layer uses everywhere).
	l := line50nm(5e-3, 0, 0)
	got, err := l.Delay50()
	if err != nil {
		t.Fatal(err)
	}
	rc := l.RPerM * l.CPerM * l.LengthM * l.LengthM
	factor := got / rc
	if factor < 0.34 || factor > 0.42 {
		t.Fatalf("distributed 50%% factor = %.3f, want ≈0.38", factor)
	}
}

func TestDrivenDelayFormulaAccuracy(t *testing.T) {
	// The analytical DrivenDelay expression tracks the simulator within
	// ~15 % across driver/load regimes.
	w := wire.MustForNode(50, wire.Global)
	cases := []struct{ len, rdrv, cload float64 }{
		{2e-3, 500, 5e-15},
		{5e-3, 1000, 20e-15},
		{10e-3, 200, 50e-15},
	}
	for _, cs := range cases {
		l := line50nm(cs.len, cs.rdrv, cs.cload)
		sim, err := l.Delay50()
		if err != nil {
			t.Fatal(err)
		}
		analytic := w.DrivenDelay(cs.len, cs.rdrv, cs.cload)
		ratio := analytic / sim
		if ratio < 0.85 || ratio > 1.25 {
			t.Fatalf("case %+v: analytic/simulated = %.3f", cs, ratio)
		}
	}
}

func TestLowThresholdCrossesEarly(t *testing.T) {
	// The signaling model's claim: a 10 %-of-final detection threshold is
	// reached in a small fraction of the 50 % time — quantitatively, the
	// dominant-pole model predicts t(10 %)/t(50 %) ≈ 0.09/0.38 ≈ 0.25.
	l := line50nm(8e-3, 0, 0)
	ts, err := l.StepResponse([]float64{0.1, 0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if !(ts[0] < ts[1] && ts[1] < ts[2]) {
		t.Fatalf("thresholds must cross in order: %v", ts)
	}
	ratio := ts[0] / ts[1]
	if ratio < 0.15 || ratio > 0.40 {
		t.Fatalf("t(10%%)/t(50%%) = %.3f, dominant pole predicts ≈0.25", ratio)
	}
}

func TestStepResponseErrors(t *testing.T) {
	l := line50nm(1e-3, 100, 1e-15)
	if _, err := l.StepResponse([]float64{0.5, 0.2}); err == nil {
		t.Fatalf("non-ascending thresholds must error")
	}
	if _, err := l.StepResponse([]float64{1.5}); err == nil {
		t.Fatalf("threshold ≥ 1 must error")
	}
	if _, err := l.StepResponse([]float64{0}); err == nil {
		t.Fatalf("threshold ≤ 0 must error")
	}
}

func TestConvergenceWithRefinement(t *testing.T) {
	// Doubling the segment count moves the answer by little (the
	// discretization is converged at 64 segments).
	coarse := line50nm(5e-3, 500, 10e-15)
	coarse.Segments = 32
	fine := line50nm(5e-3, 500, 10e-15)
	fine.Segments = 128
	dc, err := coarse.Delay50()
	if err != nil {
		t.Fatal(err)
	}
	df, err := fine.Delay50()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dc-df)/df > 0.05 {
		t.Fatalf("discretization not converged: %g vs %g", dc, df)
	}
}
