// Package resize implements post-synthesis transistor re-sizing: downsizing
// gates off the critical paths to save power (§3.3). Downsizing shrinks
// gate capacitance — but not the wire capacitance on the nets — which is
// exactly why the paper calls the power return *sublinear* in the size
// reduction and argues a lower supply (quadratic return) should be
// preferred once slack exists.
package resize

import (
	"fmt"
	"sort"

	"nanometer/internal/netlist"
	"nanometer/internal/power"
	"nanometer/internal/sta"
)

// Options tunes the downsizing pass.
type Options struct {
	// MinSize is the smallest allowed drive strength (unit cells).
	MinSize float64
	// Step is the multiplicative downsize step per accepted move (< 1).
	Step float64
	// Rounds bounds the number of passes over the netlist.
	Rounds int
	// ClockHz evaluates power; zero uses 1/period.
	ClockHz float64
}

// DefaultOptions returns a conventional configuration.
func DefaultOptions() Options {
	return Options{MinSize: 0.5, Step: 0.8, Rounds: 8}
}

// Result summarizes a downsizing run.
type Result struct {
	// SizeReduction is 1 − totalSizeAfter/totalSizeBefore.
	SizeReduction float64
	// Before and After are the power reports.
	Before, After *power.Report
	// PowerSaving is 1 − after/before total power.
	PowerSaving float64
	// DynamicSaving is 1 − after/before dynamic power.
	DynamicSaving float64
	// Sublinearity is DynamicSaving / SizeReduction — below 1 when wire
	// capacitance dilutes the return (the paper's point).
	Sublinearity float64
	// TimingMet confirms the final circuit meets its period.
	TimingMet bool
}

// Downsize shrinks off-critical gates until no further move fits the period.
// The circuit is modified in place and must meet its period on entry.
func Downsize(c *netlist.Circuit, opts Options) (*Result, error) {
	if opts.MinSize <= 0 {
		opts.MinSize = 0.5
	}
	if opts.Step <= 0 || opts.Step >= 1 {
		opts.Step = 0.8
	}
	if opts.Rounds <= 0 {
		opts.Rounds = 8
	}
	if c.ClockPeriodS <= 0 {
		return nil, fmt.Errorf("resize: circuit has no clock period")
	}
	base := sta.Analyze(c)
	if !base.Met() {
		return nil, fmt.Errorf("resize: circuit misses period before downsizing (worst slack %v)", base.WorstSlackS)
	}
	fHz := opts.ClockHz
	if fHz == 0 {
		fHz = 1 / c.ClockPeriodS
	}
	power.PropagateActivity(c)
	before := power.Analyze(c, fHz)
	sizeBefore := totalSize(c)

	inc := sta.NewIncremental(c)
	for round := 0; round < opts.Rounds; round++ {
		// Most-slack-first ordering from a fresh snapshot each round.
		snap := sta.Analyze(c)
		order := make([]int, len(c.Gates))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return snap.SlackS[order[a]] > snap.SlackS[order[b]]
		})
		moved := 0
		for _, i := range order {
			g := &c.Gates[i]
			newSize := g.Size * opts.Step
			if newSize < opts.MinSize {
				continue
			}
			oldSize := g.Size
			g.Size = newSize
			// The gate's own delay changes, and its fanins see a smaller
			// load, so their delays change too.
			seeds := []int{i}
			for _, ref := range g.Inputs {
				if _, isPI := netlist.IsPI(ref); !isPI {
					seeds = append(seeds, ref)
				}
			}
			if inc.TryUpdate(seeds...) {
				moved++
			} else {
				g.Size = oldSize
			}
		}
		if moved == 0 {
			break
		}
	}

	after := power.Analyze(c, fHz)
	final := sta.Analyze(c)
	res := &Result{
		SizeReduction: 1 - totalSize(c)/sizeBefore,
		Before:        before,
		After:         after,
		TimingMet:     final.Met(),
	}
	if t := before.TotalW(); t > 0 {
		res.PowerSaving = 1 - after.TotalW()/t
	}
	if before.DynamicW > 0 {
		res.DynamicSaving = 1 - after.DynamicW/before.DynamicW
	}
	if res.SizeReduction > 0 {
		res.Sublinearity = res.DynamicSaving / res.SizeReduction
	}
	return res, nil
}

func totalSize(c *netlist.Circuit) float64 {
	s := 0.0
	for i := range c.Gates {
		s += c.Gates[i].Size
	}
	return s
}
