package resize

import (
	"testing"

	"nanometer/internal/netlist"
	"nanometer/internal/sta"
)

func circuit(t *testing.T, seed int64, size float64) *netlist.Circuit {
	t.Helper()
	tech := netlist.MustNewTech(100, 0.65)
	p := netlist.DefaultGenParams()
	p.Gates = 1200
	p.Seed = seed
	p.InitialSize = size
	c, err := netlist.Generate(tech, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sta.SetPeriodFromCritical(c, 1.1); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDownsizeBasics(t *testing.T) {
	c := circuit(t, 1, 4)
	res, err := Downsize(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimingMet {
		t.Fatalf("downsizing must preserve timing")
	}
	if res.SizeReduction <= 0.2 {
		t.Fatalf("an oversized netlist should shed much size, got %g", res.SizeReduction)
	}
	if res.PowerSaving <= 0 || res.DynamicSaving <= 0 {
		t.Fatalf("downsizing must save power")
	}
	for i := range c.Gates {
		if c.Gates[i].Size < DefaultOptions().MinSize {
			t.Fatalf("gate %d below minimum size", i)
		}
	}
}

func TestSublinearityFromWireCap(t *testing.T) {
	// The §3.3 argument: with real wire load, the dynamic-power return is
	// sublinear in the size reduction.
	c := circuit(t, 2, 4)
	res, err := Downsize(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Sublinearity >= 0.9 {
		t.Fatalf("sublinearity = %g, expected well below 1 with wire capacitance", res.Sublinearity)
	}
	if res.Sublinearity <= 0 {
		t.Fatalf("sublinearity must be positive")
	}

	// Strip the wire load and the return improves markedly.
	noWire := circuit(t, 2, 4)
	for i := range noWire.Gates {
		noWire.Gates[i].WireCapF *= 0.01
	}
	if _, err := sta.SetPeriodFromCritical(noWire, 1.1); err != nil {
		t.Fatal(err)
	}
	resNoWire, err := Downsize(noWire, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if resNoWire.Sublinearity <= res.Sublinearity {
		t.Fatalf("removing wire load must improve the return: %g vs %g",
			resNoWire.Sublinearity, res.Sublinearity)
	}
}

func TestDownsizeRespectsOptions(t *testing.T) {
	c := circuit(t, 3, 4)
	opts := Options{MinSize: 2, Step: 0.7, Rounds: 3}
	if _, err := Downsize(c, opts); err != nil {
		t.Fatal(err)
	}
	for i := range c.Gates {
		if c.Gates[i].Size < 2 {
			t.Fatalf("gate %d violates MinSize 2: %g", i, c.Gates[i].Size)
		}
	}
}

func TestDownsizeDefaultsFill(t *testing.T) {
	c := circuit(t, 4, 3)
	// Zero-value options must be filled with defaults, not break.
	res, err := Downsize(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimingMet {
		t.Fatalf("defaults must keep timing")
	}
}

func TestDownsizeErrors(t *testing.T) {
	c := circuit(t, 5, 3)
	c.ClockPeriodS = 0
	if _, err := Downsize(c, DefaultOptions()); err == nil {
		t.Fatalf("missing period must error")
	}
	c2 := circuit(t, 5, 3)
	c2.ClockPeriodS /= 10
	if _, err := Downsize(c2, DefaultOptions()); err == nil {
		t.Fatalf("violated baseline must error")
	}
}

func TestTighterClockLimitsDownsizing(t *testing.T) {
	loose := circuit(t, 6, 4)
	resLoose, err := Downsize(loose, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tight := circuit(t, 6, 4)
	if _, err := sta.SetPeriodFromCritical(tight, 1.0); err != nil {
		t.Fatal(err)
	}
	resTight, err := Downsize(tight, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if resTight.SizeReduction >= resLoose.SizeReduction {
		t.Fatalf("tight timing must limit downsizing: %g vs %g",
			resTight.SizeReduction, resLoose.SizeReduction)
	}
}
