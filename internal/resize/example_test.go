package resize_test

import (
	"fmt"

	"nanometer/internal/netlist"
	"nanometer/internal/resize"
	"nanometer/internal/sta"
)

// The §3.3 sublinearity argument: downsizing an oversized netlist saves
// much less power than silicon area, because the wire capacitance on every
// net stays put.
func ExampleDownsize() {
	tech := netlist.MustNewTech(100, 0.65)
	p := netlist.DefaultGenParams()
	p.Gates = 1000
	p.Seed = 2
	p.InitialSize = 4
	c, err := netlist.Generate(tech, p)
	if err != nil {
		panic(err)
	}
	if _, err := sta.SetPeriodFromCritical(c, 1.1); err != nil {
		panic(err)
	}
	res, err := resize.Downsize(c, resize.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Printf("sheds size: %v; power return sublinear: %v; met: %v\n",
		res.SizeReduction > 0.3, res.Sublinearity < 0.9, res.TimingMet)
	// Output:
	// sheds size: true; power return sublinear: true; met: true
}
