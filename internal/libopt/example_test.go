package libopt_test

import (
	"fmt"

	"nanometer/internal/libopt"
	"nanometer/internal/netlist"
	"nanometer/internal/sta"
)

// The §2.3 granularity ladder: a coarse legacy library wastes power on
// overdriven small loads; on-the-fly continuous cells recover it at fixed
// timing.
func ExampleCompareLibraries() {
	tech := netlist.MustNewTech(100, 0.65)
	p := netlist.DefaultGenParams()
	p.Gates = 600
	p.Seed = 2
	p.InitialSize = 8
	c, err := netlist.Generate(tech, p)
	if err != nil {
		panic(err)
	}
	if _, err := sta.SetPeriodFromCritical(c, 1.15); err != nil {
		panic(err)
	}
	results, err := libopt.CompareLibraries(c, []libopt.Library{
		libopt.Geometric("coarse", 4, 64, 2),
		libopt.Geometric("rich", 1, 64, 1.3),
		libopt.Continuous(0.25),
	}, 0)
	if err != nil {
		panic(err)
	}
	coarse := results[0].Power.TotalW()
	rich := results[1].Power.TotalW()
	cont := results[2].Power.TotalW()
	fmt.Printf("finer granularity saves power: %v\n", cont < rich && rich < coarse)
	// Output:
	// finer granularity saves power: true
}
