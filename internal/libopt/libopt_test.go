package libopt

import (
	"testing"

	"nanometer/internal/netlist"
	"nanometer/internal/sta"
)

func oversized(t *testing.T, seed int64) *netlist.Circuit {
	t.Helper()
	tech := netlist.MustNewTech(100, 0.65)
	p := netlist.DefaultGenParams()
	p.Gates = 1000
	p.Seed = seed
	p.InitialSize = 8
	c, err := netlist.Generate(tech, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sta.SetPeriodFromCritical(c, 1.15); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGeometricLibrary(t *testing.T) {
	lib := Geometric("x", 1, 16, 2)
	want := []float64{1, 2, 4, 8, 16}
	if len(lib.Sizes) != len(want) {
		t.Fatalf("sizes = %v, want %v", lib.Sizes, want)
	}
	for i := range want {
		if lib.Sizes[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", lib.Sizes, want)
		}
	}
	if lib.IsContinuous() {
		t.Fatalf("geometric library is discrete")
	}
	if lib.Floor() != 1 {
		t.Fatalf("floor = %g", lib.Floor())
	}
}

func TestNextBelowDiscrete(t *testing.T) {
	lib := Geometric("x", 1, 16, 2)
	cases := []struct {
		in   float64
		want float64
		ok   bool
	}{
		{16, 8, true},
		{8, 4, true},
		{5, 4, true}, // off-grid snaps to largest below
		{1, 0, false},
		{0.5, 0, false},
	}
	for _, c := range cases {
		got, ok := lib.NextBelow(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("NextBelow(%g) = %g, %v; want %g, %v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestNextBelowContinuous(t *testing.T) {
	lib := Continuous(0.5)
	got, ok := lib.NextBelow(1.0)
	if !ok || got >= 1.0 || got < 0.5 {
		t.Fatalf("NextBelow(1) = %g, %v", got, ok)
	}
	// Just above the floor: steps to the floor itself.
	got, ok = lib.NextBelow(0.55)
	if !ok || got != 0.5 {
		t.Fatalf("NextBelow(0.55) = %g, %v, want the 0.5 floor", got, ok)
	}
	// At the floor: no further move.
	if _, ok := lib.NextBelow(0.5); ok {
		t.Fatalf("the floor must be terminal")
	}
}

func TestSizeWithLibraryMeetsTiming(t *testing.T) {
	for _, lib := range []Library{
		Geometric("coarse", 4, 64, 2),
		Geometric("rich", 1, 64, 1.3),
		Continuous(0.5),
	} {
		c := oversized(t, 1)
		res, err := SizeWithLibrary(c, lib, 0)
		if err != nil {
			t.Fatalf("%s: %v", lib.Name, err)
		}
		if !res.TimingMet {
			t.Fatalf("%s: timing violated", lib.Name)
		}
		// All sizes must be on the library grid / above the floor.
		for i := range c.Gates {
			if c.Gates[i].Size < lib.Floor()-1e-12 {
				t.Fatalf("%s: gate %d below floor (%g)", lib.Name, i, c.Gates[i].Size)
			}
		}
	}
}

func TestFinerLibrariesSaveMorePower(t *testing.T) {
	base := oversized(t, 2)
	libs := []Library{
		Geometric("coarse", 4, 64, 2),
		Geometric("rich", 1, 64, 1.3),
		Continuous(0.25),
	}
	results, err := CompareLibraries(base, libs, 0)
	if err != nil {
		t.Fatal(err)
	}
	coarse := results[0].Power.TotalW()
	rich := results[1].Power.TotalW()
	cont := results[2].Power.TotalW()
	if !(cont < rich && rich < coarse) {
		t.Fatalf("power must improve with granularity: %g (coarse) %g (rich) %g (continuous)",
			coarse, rich, cont)
	}
	// The on-the-fly gain over the coarse library is substantial (the
	// paper's §2.3 waste argument).
	if 1-cont/coarse < 0.15 {
		t.Fatalf("continuous vs coarse saving = %g, expected ≥ 15%%", 1-cont/coarse)
	}
	// And sizes shrink with granularity too.
	if !(results[2].TotalSize < results[1].TotalSize && results[1].TotalSize < results[0].TotalSize) {
		t.Fatalf("sizes should improve with granularity")
	}
}

func TestCompareLibrariesDoesNotMutateBase(t *testing.T) {
	base := oversized(t, 3)
	before := make([]float64, len(base.Gates))
	for i := range base.Gates {
		before[i] = base.Gates[i].Size
	}
	if _, err := CompareLibraries(base, []Library{Continuous(0.5)}, 0); err != nil {
		t.Fatal(err)
	}
	for i := range base.Gates {
		if base.Gates[i].Size != before[i] {
			t.Fatalf("CompareLibraries mutated the base circuit")
		}
	}
}

func TestSizeWithLibraryErrors(t *testing.T) {
	c := oversized(t, 4)
	c.ClockPeriodS = 0
	if _, err := SizeWithLibrary(c, Continuous(0.5), 0); err == nil {
		t.Fatalf("missing period must error")
	}
	// A circuit that already violates its clock must be rejected rather
	// than silently "optimized".
	c2 := oversized(t, 4)
	c2.ClockPeriodS /= 10
	if _, err := SizeWithLibrary(c2, Continuous(0.5), 0); err == nil {
		t.Fatalf("a violating circuit must error")
	}
}
