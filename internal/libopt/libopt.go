// Package libopt reproduces the library-optimization analysis of §2.3: how
// much power a fixed-timing design wastes when gate sizes must snap to a
// discrete drive-strength library, and how much an on-the-fly ("Cadabra-
// style") continuous cell generator recovers. The cited results are 15–22 %
// power reduction at fixed timing when hundreds of exact-fit cells augment a
// rich library; the ablation here sweeps library granularity from the
// coarse legacy case ([15]'s "smallest gates ≈10× minimum") to continuous.
package libopt

import (
	"fmt"
	"sort"

	"nanometer/internal/netlist"
	"nanometer/internal/power"
	"nanometer/internal/sta"
)

// Library is a discrete set of available drive strengths.
type Library struct {
	Name string
	// Sizes are the available strengths, ascending. Empty means
	// continuous sizing (any strength ≥ MinSize).
	Sizes []float64
	// MinSize bounds continuous sizing.
	MinSize float64
}

// Continuous returns an on-the-fly library: any size above min.
func Continuous(min float64) Library {
	return Library{Name: "on-the-fly (continuous)", MinSize: min}
}

// Geometric builds a drive-strength family from min to max with the given
// ratio between adjacent sizes (e.g. ratio 2 = coarse legacy library,
// ratio ~1.25 = modern rich library with 16 inverter sizes).
func Geometric(name string, min, max, ratio float64) Library {
	var sizes []float64
	for s := min; s <= max*1.0001; s *= ratio {
		sizes = append(sizes, s)
	}
	return Library{Name: name, Sizes: sizes}
}

// IsContinuous reports whether the library allows arbitrary sizes.
func (l Library) IsContinuous() bool { return len(l.Sizes) == 0 }

// NextBelow returns the largest library size strictly below s, or ok=false.
func (l Library) NextBelow(s float64) (float64, bool) {
	if l.IsContinuous() {
		n := s * 0.85
		if n < l.MinSize {
			if s > l.MinSize*1.0001 {
				return l.MinSize, true
			}
			return 0, false
		}
		return n, true
	}
	idx := sort.SearchFloat64s(l.Sizes, s)
	// idx is the first size ≥ s; the candidate is idx−1.
	if idx == 0 {
		return 0, false
	}
	cand := l.Sizes[idx-1]
	if cand >= s {
		if idx-2 < 0 {
			return 0, false
		}
		cand = l.Sizes[idx-2]
	}
	return cand, true
}

// Floor returns the smallest usable size in the library.
func (l Library) Floor() float64 {
	if l.IsContinuous() {
		return l.MinSize
	}
	return l.Sizes[0]
}

// Result summarizes a library-constrained sizing run.
type Result struct {
	Library Library
	// Power is the post-sizing report; TotalW its total.
	Power *power.Report
	// TotalSize is the summed drive strength.
	TotalSize float64
	// TimingMet confirms the period holds.
	TimingMet bool
}

// SizeWithLibrary downsizes the circuit greedily under the library's
// granularity until no move fits the period. The circuit is modified in
// place; gates are first snapped *up* to the library floor/grid (the
// overdrive a coarse library forces on small loads).
func SizeWithLibrary(c *netlist.Circuit, lib Library, fHz float64) (*Result, error) {
	if c.ClockPeriodS <= 0 {
		return nil, fmt.Errorf("libopt: circuit has no clock period")
	}
	// Snap up to the library grid.
	for i := range c.Gates {
		c.Gates[i].Size = snapUp(lib, c.Gates[i].Size)
	}
	if r := sta.Analyze(c); !r.Met() {
		return nil, fmt.Errorf("libopt: circuit misses period after snapping to %s", lib.Name)
	}
	if fHz == 0 {
		fHz = 1 / c.ClockPeriodS
	}
	inc := sta.NewIncremental(c)
	for rounds := 0; rounds < 64; rounds++ {
		snap := sta.Analyze(c)
		order := make([]int, len(c.Gates))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return snap.SlackS[order[a]] > snap.SlackS[order[b]]
		})
		moved := 0
		for _, i := range order {
			g := &c.Gates[i]
			next, ok := lib.NextBelow(g.Size)
			if !ok {
				continue
			}
			old := g.Size
			g.Size = next
			seeds := []int{i}
			for _, ref := range g.Inputs {
				if _, isPI := netlist.IsPI(ref); !isPI {
					seeds = append(seeds, ref)
				}
			}
			if inc.TryUpdate(seeds...) {
				moved++
			} else {
				g.Size = old
			}
		}
		if moved == 0 {
			break
		}
	}
	power.PropagateActivity(c)
	rep := power.Analyze(c, fHz)
	final := sta.Analyze(c)
	res := &Result{Library: lib, Power: rep, TimingMet: final.Met()}
	for i := range c.Gates {
		res.TotalSize += c.Gates[i].Size
	}
	return res, nil
}

func snapUp(lib Library, s float64) float64 {
	if lib.IsContinuous() {
		if s < lib.MinSize {
			return lib.MinSize
		}
		return s
	}
	idx := sort.SearchFloat64s(lib.Sizes, s)
	if idx >= len(lib.Sizes) {
		return lib.Sizes[len(lib.Sizes)-1]
	}
	return lib.Sizes[idx]
}

// CompareLibraries runs the same base circuit through each library and
// reports powers normalized to the first library. The base circuit is not
// modified; each run works on a clone.
func CompareLibraries(base *netlist.Circuit, libs []Library, fHz float64) ([]*Result, error) {
	out := make([]*Result, 0, len(libs))
	for _, lib := range libs {
		c := base.Clone()
		r, err := SizeWithLibrary(c, lib, fHz)
		if err != nil {
			return nil, fmt.Errorf("libopt: %s: %w", lib.Name, err)
		}
		out = append(out, r)
	}
	return out, nil
}
