// Package standby compares the §3.2.1 standby-leakage-reduction techniques
// on one footing: MTCMOS sleep transistors, reverse body biasing (variable-
// VT schemes [36]), negative NMOS gate drive [37], and stack/input-vector
// control in single-threshold logic [38]. Each technique is scored on
// standby leakage reduction, active-mode cost, area, and — the paper's
// discriminator — how the benefit scales into the nanometer nodes (body
// bias "is less effective at controlling Vth in scaled devices", while
// dual-Vth and gating remain usable).
package standby

import (
	"fmt"
	"math"

	"nanometer/internal/device"
	"nanometer/internal/mtcmos"
	"nanometer/internal/stackvth"
	"nanometer/internal/units"
)

// Technique identifies a standby-leakage approach.
type Technique int

const (
	// MTCMOSGating is the high-Vth sleep transistor of [34].
	MTCMOSGating Technique = iota
	// ReverseBodyBias raises Vth in standby through substrate bias [36].
	ReverseBodyBias
	// NegativeGateDrive under-drives NMOS gates below ground in standby
	// [37].
	NegativeGateDrive
	// InputVectorControl parks the logic in its minimum-leakage state,
	// exploiting the stack effect in single-Vth logic [38].
	InputVectorControl
	// DualVthStatic is the §3.2.2 baseline: high Vth off the critical
	// paths, active and standby alike.
	DualVthStatic
)

func (t Technique) String() string {
	switch t {
	case MTCMOSGating:
		return "MTCMOS sleep transistor"
	case ReverseBodyBias:
		return "reverse body bias"
	case NegativeGateDrive:
		return "negative gate drive"
	case InputVectorControl:
		return "input-vector (stack) control"
	case DualVthStatic:
		return "dual-Vth assignment"
	}
	return fmt.Sprintf("Technique(%d)", int(t))
}

// Techniques lists all modeled approaches.
func Techniques() []Technique {
	return []Technique{MTCMOSGating, ReverseBodyBias, NegativeGateDrive, InputVectorControl, DualVthStatic}
}

// Result scores one technique at one node.
type Result struct {
	Technique Technique
	NodeNM    int
	// StandbyReduction is 1 − standby/baseline leakage.
	StandbyReduction float64
	// ActiveReduction is the leakage reduction while operating (most
	// standby techniques give none).
	ActiveReduction float64
	// DelayPenalty is the active-mode slowdown.
	DelayPenalty float64
	// AreaOverhead is the relative device-area cost.
	AreaOverhead float64
	// Scalable reports whether the mechanism retains its usefulness with
	// scaling: the standby reduction at this node is at least 60 % of what
	// the same technique delivered at 180 nm. Reverse body bias fails this
	// at the nanometer nodes — the paper's "body bias is less effective at
	// controlling Vth in scaled devices".
	Scalable bool
	// Notes carries the mechanism summary.
	Notes string
}

// bodyEffectMV returns the Vth shift (V) a 1 V reverse body bias buys at a
// node. The body factor γ ∝ √(Na)·Tox falls as oxides thin and channels
// become heavily engineered; these values track the literature's decline
// from ≈180 mV/V at 180 nm to ≈35 mV/V at 35 nm — the quantitative form of
// "body bias is less effective at controlling Vth in scaled devices".
func bodyEffectMV(nodeNM int) float64 {
	v := map[int]float64{180: 0.18, 130: 0.14, 100: 0.10, 70: 0.07, 50: 0.05, 35: 0.035}
	if b, ok := v[nodeNM]; ok {
		return b
	}
	return 0.05
}

// Evaluate scores a technique for a logic block at a node. The block is
// characterized by its total NMOS width (m); the scalability flag compares
// the benefit against the same technique at the 180 nm reference node.
func Evaluate(t Technique, nodeNM int, logicWidthM float64) (Result, error) {
	return EvaluateIn(device.BaseLab(), t, nodeNM, logicWidthM)
}

// EvaluateIn is Evaluate against an explicit laboratory. The scalability
// reference stays the 180 nm node of the same laboratory.
func EvaluateIn(lab *device.Lab, t Technique, nodeNM int, logicWidthM float64) (Result, error) {
	res, err := rawEvaluate(lab, t, nodeNM, logicWidthM)
	if err != nil {
		return Result{}, err
	}
	if nodeNM == 180 {
		res.Scalable = true
		return res, nil
	}
	ref, err := rawEvaluate(lab, t, 180, logicWidthM)
	if err != nil {
		return Result{}, err
	}
	res.Scalable = res.StandbyReduction >= 0.6*ref.StandbyReduction
	return res, nil
}

func rawEvaluate(lab *device.Lab, t Technique, nodeNM int, logicWidthM float64) (Result, error) {
	node, err := lab.Node(nodeNM)
	if err != nil {
		return Result{}, err
	}
	d, err := lab.ForNode(nodeNM)
	if err != nil {
		return Result{}, err
	}
	T := units.CelsiusToKelvin(85)
	baseline := d.IoffPerWidth(node.Vdd, T) * logicWidthM

	res := Result{Technique: t, NodeNM: nodeNM}
	switch t {
	case MTCMOSGating:
		blk, err := mtcmos.NewBlockIn(lab, nodeNM, logicWidthM, 0.08, 50*logicWidthM)
		if err != nil {
			return Result{}, err
		}
		res.StandbyReduction = blk.StandbySavings()
		res.DelayPenalty = blk.DelayPenalty()
		res.AreaOverhead = blk.AreaOverhead()
		res.Notes = "high-Vth footer; leakage path gated off in sleep; no active-mode help"
	case ReverseBodyBias:
		// 1 V of reverse bias in standby raises Vth by the body factor.
		shift := bodyEffectMV(nodeNM)
		biased := d.WithVth(d.Vth0 + shift)
		res.StandbyReduction = 1 - biased.IoffPerWidth(node.Vdd, T)*logicWidthM/baseline
		res.DelayPenalty = 0 // bias released when active
		res.AreaOverhead = 0.04
		res.Notes = fmt.Sprintf("1 V reverse bias buys ΔVth = %.0f mV at this node (body effect shrinks with scaling)", shift*1e3)
	case NegativeGateDrive:
		// Driving idle NMOS gates to −0.15 V pushes them below threshold
		// by the underdrive directly.
		const under = 0.15
		sw := d.SubthresholdSwing(T)
		res.StandbyReduction = 1 - math.Pow(10, -under/sw)
		res.DelayPenalty = 0
		res.AreaOverhead = 0.06 // negative-rail generation and drivers
		res.Notes = "gate underdrive acts directly on the exponential; needs an extra rail"
	case InputVectorControl:
		// Park a representative 2-stack in its best state vs the average.
		st, err := stackvth.NewStackIn(lab, nodeNM, 2, 4*d.LeffM, []float64{d.Vth0, d.Vth0})
		if err != nil {
			return Result{}, err
		}
		avg, err := st.AverageLeakage()
		if err != nil {
			return Result{}, err
		}
		_, best, err := st.MinLeakageVector()
		if err != nil {
			return Result{}, err
		}
		if avg > 0 {
			res.StandbyReduction = 1 - best/avg
		}
		res.DelayPenalty = 0
		res.AreaOverhead = 0.02 // parking latches
		res.Notes = "drives idle logic into its maximum-stack-effect state; single threshold"
	case DualVthStatic:
		// The 40–80 % band of §3.2.2, active and standby alike; use a
		// 70 % representative with the 100 mV offset on ~85 % of width.
		high := d.WithVth(d.Vth0 + 0.1)
		mix := 0.85*high.IoffPerWidth(node.Vdd, T) + 0.15*d.IoffPerWidth(node.Vdd, T)
		res.StandbyReduction = 1 - mix/d.IoffPerWidth(node.Vdd, T)
		res.ActiveReduction = res.StandbyReduction
		res.DelayPenalty = 0.01
		res.AreaOverhead = 0
		res.Notes = "the only technique used in current high-end MPUs; helps active mode too"
	default:
		return Result{}, fmt.Errorf("standby: unknown technique %v", t)
	}
	return res, nil
}

// Compare evaluates all techniques at a node.
func Compare(nodeNM int, logicWidthM float64) ([]Result, error) {
	return CompareIn(device.BaseLab(), nodeNM, logicWidthM)
}

// CompareIn is Compare against an explicit laboratory.
func CompareIn(lab *device.Lab, nodeNM int, logicWidthM float64) ([]Result, error) {
	out := make([]Result, 0, len(Techniques()))
	for _, t := range Techniques() {
		r, err := EvaluateIn(lab, t, nodeNM, logicWidthM)
		if err != nil {
			return nil, fmt.Errorf("standby: %v at %d nm: %w", t, nodeNM, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// ScalingTrend evaluates one technique across the roadmap, exposing how its
// benefit holds up (body bias decays; the others hold).
func ScalingTrend(t Technique, logicWidthM float64) ([]Result, error) {
	return ScalingTrendIn(device.BaseLab(), t, logicWidthM)
}

// ScalingTrendIn is ScalingTrend against an explicit laboratory.
func ScalingTrendIn(lab *device.Lab, t Technique, logicWidthM float64) ([]Result, error) {
	var out []Result
	for _, nm := range lab.NodesNM() {
		r, err := EvaluateIn(lab, t, nm, logicWidthM)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
