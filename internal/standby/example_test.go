package standby_test

import (
	"fmt"

	"nanometer/internal/standby"
)

// The §3.2.1 scalability verdict: reverse body bias loses its lever in
// scaled devices while the sleep transistor holds.
func ExampleEvaluate() {
	body35, err := standby.Evaluate(standby.ReverseBodyBias, 35, 1e-3)
	if err != nil {
		panic(err)
	}
	mtcmos35, err := standby.Evaluate(standby.MTCMOSGating, 35, 1e-3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("body bias scales: %v; MTCMOS scales: %v\n", body35.Scalable, mtcmos35.Scalable)
	// Output:
	// body bias scales: false; MTCMOS scales: true
}
