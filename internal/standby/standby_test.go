package standby

import (
	"testing"

	"nanometer/internal/itrs"
)

const blockWidth = 1e-3 // 1 mm of gated NMOS width

func TestCompareAllTechniques(t *testing.T) {
	rows, err := Compare(35, blockWidth)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Techniques()) {
		t.Fatalf("got %d rows, want %d", len(rows), len(Techniques()))
	}
	for _, r := range rows {
		if r.StandbyReduction <= 0 || r.StandbyReduction >= 1 {
			t.Errorf("%v: standby reduction %g out of (0,1)", r.Technique, r.StandbyReduction)
		}
		if r.Notes == "" {
			t.Errorf("%v: missing mechanism note", r.Technique)
		}
	}
}

func TestMTCMOSEliminatesStandbyLeakage(t *testing.T) {
	r, err := Evaluate(MTCMOSGating, 35, blockWidth)
	if err != nil {
		t.Fatal(err)
	}
	if r.StandbyReduction < 0.95 {
		t.Fatalf("MTCMOS standby reduction = %g, the paper says it virtually eliminates leakage", r.StandbyReduction)
	}
	if r.DelayPenalty <= 0 || r.AreaOverhead <= 0 {
		t.Fatalf("MTCMOS must pay delay and area: %+v", r)
	}
	if r.ActiveReduction != 0 {
		t.Fatalf("MTCMOS gives no active-mode reduction")
	}
	if !r.Scalable {
		t.Fatalf("sleep transistors remain effective with scaling")
	}
}

func TestBodyBiasLosesEffectivenessWithScaling(t *testing.T) {
	// The paper: "body bias is less effective at controlling Vth in scaled
	// devices".
	trend, err := ScalingTrend(ReverseBodyBias, blockWidth)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(trend); i++ {
		if trend[i].StandbyReduction >= trend[i-1].StandbyReduction {
			t.Fatalf("body-bias benefit must decay with scaling: %d nm %g vs %d nm %g",
				trend[i].NodeNM, trend[i].StandbyReduction,
				trend[i-1].NodeNM, trend[i-1].StandbyReduction)
		}
	}
	first, last := trend[0], trend[len(trend)-1]
	if first.StandbyReduction < 0.9 {
		t.Fatalf("body bias should work well at 180 nm (%g)", first.StandbyReduction)
	}
	if last.Scalable {
		t.Fatalf("body bias must be flagged non-scalable at 35 nm (reduction %g)", last.StandbyReduction)
	}
}

func TestOtherTechniquesRemainScalable(t *testing.T) {
	for _, tech := range []Technique{MTCMOSGating, NegativeGateDrive, InputVectorControl, DualVthStatic} {
		r, err := Evaluate(tech, 35, blockWidth)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Scalable {
			t.Errorf("%v should remain scalable at 35 nm (reduction %g)", tech, r.StandbyReduction)
		}
	}
}

func TestDualVthIsTheOnlyActiveModeTechnique(t *testing.T) {
	rows, err := Compare(35, blockWidth)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Technique == DualVthStatic {
			if r.ActiveReduction <= 0 {
				t.Fatalf("dual-Vth must reduce active leakage too")
			}
			continue
		}
		if r.ActiveReduction != 0 {
			t.Errorf("%v should only help in standby (the paper's criticism)", r.Technique)
		}
	}
}

func TestNegativeGateDriveIsSwingExact(t *testing.T) {
	// 150 mV of underdrive on a 101 mV/decade swing (85 °C) cuts leakage
	// by 10^(−0.15/S).
	r, err := Evaluate(NegativeGateDrive, 50, blockWidth)
	if err != nil {
		t.Fatal(err)
	}
	if r.StandbyReduction < 0.95 || r.StandbyReduction > 0.98 {
		t.Fatalf("negative gate drive reduction = %g, want ≈0.967", r.StandbyReduction)
	}
}

func TestEvaluateUnknowns(t *testing.T) {
	if _, err := Evaluate(Technique(99), 35, blockWidth); err == nil {
		t.Fatalf("unknown technique must error")
	}
	if _, err := Evaluate(MTCMOSGating, 65, blockWidth); err == nil {
		t.Fatalf("unknown node must error")
	}
}

func TestScalingTrendCoversRoadmap(t *testing.T) {
	trend, err := ScalingTrend(MTCMOSGating, blockWidth)
	if err != nil {
		t.Fatal(err)
	}
	if len(trend) != len(itrs.Nodes()) {
		t.Fatalf("trend covers %d nodes, want %d", len(trend), len(itrs.Nodes()))
	}
}
