package busplan_test

import (
	"fmt"

	"nanometer/internal/busplan"
	"nanometer/internal/itrs"
)

// The conclusion-#2 EDA tool: a latency-critical hop keeps repeaters, a
// relaxed bus adopts a differential low-swing primitive, and the plan
// undercuts the all-repeated baseline.
func ExamplePlanner_Assign() {
	node := itrs.MustNode(50)
	period := 1 / node.ClockHz
	p, err := busplan.NewPlanner(50)
	if err != nil {
		panic(err)
	}
	plan, err := p.Assign([]busplan.Route{
		{Name: "hot-hop", LengthM: 4e-3, LatencyBudgetS: 1.5 * period, ToggleHz: 0.3 * node.ClockHz},
		{Name: "lazy-bus", LengthM: 10e-3, LatencyBudgetS: 25 * period, ToggleHz: 0.1 * node.ClockHz},
	})
	if err != nil {
		panic(err)
	}
	for _, c := range plan.Choices {
		fmt.Printf("%s → %v\n", c.Route.Name, c.Scheme)
	}
	fmt.Printf("saves power: %v\n", plan.Saving > 0)
	// Output:
	// hot-hop → full-swing repeated CMOS
	// lazy-bus → differential low-swing
	// saves power: true
}
