package busplan

import (
	"fmt"
	"testing"

	"nanometer/internal/itrs"
	"nanometer/internal/signaling"
)

// testRoutes builds a realistic mix: latency-critical short hops, relaxed
// cross-chip buses, and a high-activity datapath bus.
func testRoutes(nodeNM int) []Route {
	node := itrs.MustNode(nodeNM)
	period := 1 / node.ClockHz
	var out []Route
	for i := 0; i < 8; i++ {
		// Latency-critical: 4 mm in 1.5 cycles — only repeaters make it.
		out = append(out, Route{
			Name: fmt.Sprintf("hop%d", i), LengthM: 4e-3,
			LatencyBudgetS: 1.5 * period, ToggleHz: 0.15 * node.ClockHz,
		})
	}
	for i := 0; i < 16; i++ {
		out = append(out, Route{
			Name: fmt.Sprintf("bus%d", i), LengthM: 8e-3,
			LatencyBudgetS: 20 * period, ToggleHz: 0.15 * node.ClockHz,
		})
	}
	for i := 0; i < 8; i++ {
		out = append(out, Route{
			Name: fmt.Sprintf("dp%d", i), LengthM: 5e-3,
			LatencyBudgetS: 8 * period, ToggleHz: 0.4 * node.ClockHz,
		})
	}
	return out
}

func TestAssignMixesPrimitives(t *testing.T) {
	p, err := NewPlanner(50)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Assign(testRoutes(50))
	if err != nil {
		t.Fatal(err)
	}
	counts := plan.SchemeCounts()
	// Tight-latency hops need repeaters; relaxed buses go low-swing.
	if counts[signaling.FullSwingRepeated] == 0 {
		t.Fatalf("latency-critical hops must use repeated CMOS: %v", counts)
	}
	if counts[signaling.LowSwing]+counts[signaling.DifferentialLowSwing] == 0 {
		t.Fatalf("relaxed buses must adopt low-swing primitives: %v", counts)
	}
	// Every choice meets its budget.
	for _, c := range plan.Choices {
		if c.DelayS > c.Route.LatencyBudgetS {
			t.Fatalf("route %s misses its budget", c.Route.Name)
		}
		if c.PowerW <= 0 {
			t.Fatalf("route %s has non-positive power", c.Route.Name)
		}
	}
	// The mixed plan saves power over all-repeated-CMOS.
	if plan.Saving <= 0.2 {
		t.Fatalf("plan saving = %.0f%%, expected a substantial win", plan.Saving*100)
	}
}

func TestAssignLatencyForcesRepeaters(t *testing.T) {
	p, err := NewPlanner(50)
	if err != nil {
		t.Fatal(err)
	}
	node := itrs.MustNode(50)
	tight := []Route{{
		Name: "critical", LengthM: 10e-3,
		LatencyBudgetS: 8 / node.ClockHz, ToggleHz: 0.15 * node.ClockHz,
	}}
	plan, err := p.Assign(tight)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Choices[0].Scheme != signaling.FullSwingRepeated {
		t.Fatalf("a tight budget on a long route must force repeaters, got %v", plan.Choices[0].Scheme)
	}
	if plan.Choices[0].Repeaters == 0 {
		t.Fatalf("repeated choice must count its repeaters")
	}
}

func TestAssignInfeasibleRoute(t *testing.T) {
	p, err := NewPlanner(50)
	if err != nil {
		t.Fatal(err)
	}
	node := itrs.MustNode(50)
	impossible := []Route{{
		Name: "warp", LengthM: 18e-3,
		LatencyBudgetS: 0.5 / node.ClockHz, // half a cycle across the die
		ToggleHz:       0.15 * node.ClockHz,
	}}
	if _, err := p.Assign(impossible); err == nil {
		t.Fatalf("an impossible budget must be reported, not silently violated")
	}
	bad := []Route{{Name: "zero", LengthM: 0, LatencyBudgetS: 1e-9}}
	if _, err := p.Assign(bad); err == nil {
		t.Fatalf("zero-length route must error")
	}
}

func TestTrackBudgetRepair(t *testing.T) {
	free, err := NewPlanner(50)
	if err != nil {
		t.Fatal(err)
	}
	routes := testRoutes(50)
	unbounded, err := free.Assign(routes)
	if err != nil {
		t.Fatal(err)
	}
	// Now constrain tracks below the unbounded plan's usage.
	tight, err := NewPlanner(50)
	if err != nil {
		t.Fatal(err)
	}
	tight.TrackBudget = unbounded.TotalTracks - 2
	constrained, err := tight.Assign(routes)
	if err != nil {
		t.Fatal(err)
	}
	if constrained.TotalTracks > tight.TrackBudget+1e-9 {
		t.Fatalf("budget violated: %.2f > %.2f", constrained.TotalTracks, tight.TrackBudget)
	}
	if constrained.TotalPowerW < unbounded.TotalPowerW {
		t.Fatalf("constraining tracks cannot reduce power")
	}
	// Impossible budget errors.
	hopeless, _ := NewPlanner(50)
	hopeless.TrackBudget = float64(len(routes)) * 0.5
	if _, err := hopeless.Assign(routes); err == nil {
		t.Fatalf("unreachable track budget must error")
	}
}

func TestSwingSelectionIncludesMargin(t *testing.T) {
	p, err := NewPlanner(50)
	if err != nil {
		t.Fatal(err)
	}
	node := itrs.MustNode(50)
	relaxed := []Route{{
		Name: "lazy", LengthM: 8e-3,
		LatencyBudgetS: 30 / node.ClockHz, ToggleHz: 0.1 * node.ClockHz,
	}}
	plan, err := p.Assign(relaxed)
	if err != nil {
		t.Fatal(err)
	}
	c := plan.Choices[0]
	if c.Scheme == signaling.FullSwingRepeated {
		t.Fatalf("a relaxed route should adopt a low-swing primitive")
	}
	min, err := signaling.MinTolerableSwing(p.line, node.Vdd, c.Scheme, true, p.RequiredSNR)
	if err != nil {
		t.Fatal(err)
	}
	if c.SwingFrac < min {
		t.Fatalf("selected swing %.3f below the noise-limited minimum %.3f", c.SwingFrac, min)
	}
	if c.SwingFrac > min*p.SwingMargin+1e-9 {
		t.Fatalf("selected swing %.3f exceeds minimum+margin", c.SwingFrac)
	}
}

func TestNewPlannerErrors(t *testing.T) {
	if _, err := NewPlanner(65); err == nil {
		t.Fatalf("unknown node must error")
	}
}
