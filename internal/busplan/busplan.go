// Package busplan implements the EDA tool the paper's conclusion #2 calls
// for: "alternative techniques to CMOS repeaters for global signaling need
// to be investigated and mated with EDA tools (similar to buffer insertion
// tools today but using different primitive components)". Given a set of
// global routes with latency budgets and activities, the planner picks a
// signaling primitive per route — optimally repeated CMOS, single-ended
// low-swing, or shielded differential low-swing — minimizing total power
// subject to latency, noise closure, and a routing-track budget.
package busplan

import (
	"fmt"
	"math"
	"sort"

	"nanometer/internal/device"
	"nanometer/internal/itrs"
	"nanometer/internal/repeater"
	"nanometer/internal/signaling"
	"nanometer/internal/units"
	"nanometer/internal/wire"
)

// Route is one global net (or bus bit) to plan.
type Route struct {
	Name string
	// LengthM is the route length.
	LengthM float64
	// LatencyBudgetS is the allowed propagation delay.
	LatencyBudgetS float64
	// ToggleHz is the signal's transition rate (activity × clock).
	ToggleHz float64
}

// Choice is the planner's decision for one route.
type Choice struct {
	Route  Route
	Scheme signaling.Scheme
	// SwingFrac is the selected swing for reduced-swing schemes (the
	// noise-limited minimum plus margin).
	SwingFrac float64
	// DelayS and PowerW are the achieved figures.
	DelayS, PowerW float64
	// Tracks is the routing-track cost (shield-amortized).
	Tracks float64
	// Repeaters counts inserted repeaters (repeated CMOS only).
	Repeaters int
}

// Plan is the full assignment.
type Plan struct {
	Choices []Choice
	// TotalPowerW, TotalTracks aggregate the assignment.
	TotalPowerW, TotalTracks float64
	// BaselinePowerW is the all-repeated-CMOS power for comparison.
	BaselinePowerW float64
	// Saving is 1 − total/baseline.
	Saving float64
}

// Planner holds the per-node context.
type Planner struct {
	NodeNM int
	// RequiredSNR is the noise-closure target (default 2).
	RequiredSNR float64
	// SwingMargin multiplies the noise-limited minimum swing (default 1.3).
	SwingMargin float64
	// TrackBudget bounds the total routing tracks (0 = unbounded).
	TrackBudget float64

	node   itrs.Node
	line   wire.Line
	driver repeater.Driver
}

// NewPlanner builds a planner for a node's global tier at 85 °C.
func NewPlanner(nodeNM int) (*Planner, error) {
	return NewPlannerIn(device.BaseLab(), nodeNM)
}

// NewPlannerIn is NewPlanner against an explicit laboratory.
func NewPlannerIn(lab *device.Lab, nodeNM int) (*Planner, error) {
	node, err := lab.Node(nodeNM)
	if err != nil {
		return nil, err
	}
	line, err := wire.ForNodeIn(lab.Table(), nodeNM, wire.Global)
	if err != nil {
		return nil, err
	}
	drv, err := repeater.UnitDriverIn(lab, nodeNM, units.CelsiusToKelvin(85))
	if err != nil {
		return nil, err
	}
	return &Planner{
		NodeNM:      nodeNM,
		RequiredSNR: 2,
		SwingMargin: 1.3,
		node:        node,
		line:        line,
		driver:      drv,
	}, nil
}

// candidates evaluates every primitive on a route; infeasible options are
// omitted.
func (p *Planner) candidates(r Route) []Choice {
	var out []Choice
	// 1. Optimally repeated full-swing CMOS: the baseline. Always closes
	// noise; feasible if the latency budget holds.
	ins := repeater.Optimize(p.driver, p.line, r.LengthM)
	if ins.Delay <= r.LatencyBudgetS {
		out = append(out, Choice{
			Route: r, Scheme: signaling.FullSwingRepeated,
			SwingFrac: 1,
			DelayS:    ins.Delay,
			PowerW:    ins.EnergyPerTransition * r.ToggleHz,
			Tracks:    1,
			Repeaters: ins.Count,
		})
	}
	// 2/3. Reduced-swing schemes at the noise-limited swing plus margin.
	for _, scheme := range []signaling.Scheme{signaling.LowSwing, signaling.DifferentialLowSwing} {
		minSwing, err := signaling.MinTolerableSwing(p.line, p.node.Vdd, scheme, true, p.RequiredSNR)
		if err != nil {
			continue // cannot close noise even shielded
		}
		swing := math.Min(1, minSwing*p.SwingMargin)
		link := signaling.Link{
			Scheme:  scheme,
			Line:    p.line,
			LengthM: r.LengthM,
			Vdd:     p.node.Vdd,
			SwingV:  swing * p.node.Vdd,
		}
		if err := link.Validate(); err != nil {
			continue
		}
		if link.Delay() > r.LatencyBudgetS {
			continue
		}
		out = append(out, Choice{
			Route: r, Scheme: scheme,
			SwingFrac: swing,
			DelayS:    link.Delay(),
			PowerW:    link.Power(r.ToggleHz),
			Tracks:    link.RoutingTracks(true),
		})
	}
	return out
}

// Assign plans every route: per route the minimum-power feasible primitive,
// then, if a track budget is set and exceeded, routes are migrated back to
// cheaper-track options in order of least power regret.
func (p *Planner) Assign(routes []Route) (*Plan, error) {
	plan := &Plan{}
	type alt struct {
		idx     int
		options []Choice // sorted by power ascending
	}
	var alts []alt
	for i, r := range routes {
		if r.LengthM <= 0 || r.LatencyBudgetS <= 0 {
			return nil, fmt.Errorf("busplan: route %q has non-positive length or budget", r.Name)
		}
		cands := p.candidates(r)
		if len(cands) == 0 {
			return nil, fmt.Errorf("busplan: route %q (%.1f mm in %.0f ps) has no feasible primitive",
				r.Name, r.LengthM*1e3, r.LatencyBudgetS*1e12)
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].PowerW < cands[b].PowerW })
		alts = append(alts, alt{idx: i, options: cands})
		plan.Choices = append(plan.Choices, cands[0])

		// Baseline: repeated CMOS when feasible; otherwise the cheapest
		// feasible option stands in.
		base := cands[0]
		for _, c := range cands {
			if c.Scheme == signaling.FullSwingRepeated {
				base = c
				break
			}
		}
		plan.BaselinePowerW += base.PowerW
	}
	for _, c := range plan.Choices {
		plan.TotalPowerW += c.PowerW
		plan.TotalTracks += c.Tracks
	}
	// Track-budget repair: while over budget, move the route whose
	// next-cheaper-track option costs the least extra power.
	if p.TrackBudget > 0 {
		for plan.TotalTracks > p.TrackBudget {
			bestIdx, bestOpt := -1, Choice{}
			bestRegret := math.Inf(1)
			for ai, a := range alts {
				cur := plan.Choices[a.idx]
				for _, o := range a.options {
					if o.Tracks < cur.Tracks {
						regret := o.PowerW - cur.PowerW
						if regret < bestRegret {
							bestRegret = regret
							bestIdx, bestOpt = ai, o
						}
					}
				}
			}
			if bestIdx < 0 {
				return nil, fmt.Errorf("busplan: track budget %.1f unreachable (need %.1f)",
					p.TrackBudget, plan.TotalTracks)
			}
			i := alts[bestIdx].idx
			plan.TotalPowerW += bestOpt.PowerW - plan.Choices[i].PowerW
			plan.TotalTracks += bestOpt.Tracks - plan.Choices[i].Tracks
			plan.Choices[i] = bestOpt
		}
	}
	if plan.BaselinePowerW > 0 {
		plan.Saving = 1 - plan.TotalPowerW/plan.BaselinePowerW
	}
	return plan, nil
}

// SchemeCounts tallies the plan's primitive mix.
func (pl *Plan) SchemeCounts() map[signaling.Scheme]int {
	out := map[signaling.Scheme]int{}
	for _, c := range pl.Choices {
		out[c.Scheme]++
	}
	return out
}
