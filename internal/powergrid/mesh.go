package powergrid

import (
	"fmt"
	"math"

	"nanometer/internal/mathx"
)

// Mesh is a 2-D resistive power-grid model of one bump cell: an n×n node
// mesh spanning the bump pitch, rails of the sized width in both routing
// directions, uniform (hot-spot) current draw per node, and the bump as the
// voltage source in the center. It validates the 1-D analytic strip model
// (which should be conservative, since it ignores 2-D current spreading).
type Mesh struct {
	// N is the mesh dimension (nodes per side, odd so a center node
	// exists).
	N int
	// PitchM is the cell span (the bump pitch).
	PitchM float64
	// EdgeOhms is the resistance of one mesh edge.
	EdgeOhms float64
	// NodeCurrentA is the draw per mesh node.
	NodeCurrentA float64
}

// Mesh dimension limits, enforced here (not just at the CLI/HTTP
// boundaries) because the serving layer exposes the dimension to untrusted
// query strings: MinMeshN is the smallest grid that still has an interior
// ring around the pinned center bump, and MaxMeshN caps the unknown count
// (n²−1 ≈ 10⁶ at 1023) so one request cannot allocate unbounded solver and
// multigrid state.
const (
	MinMeshN = 5
	MaxMeshN = 1023
)

// NewMesh discretizes a grid spec with rails of width railWidthM at rail
// pitch railPitchM into an n×n mesh (n forced odd so a center bump node
// exists; n outside [MinMeshN, MaxMeshN] is rejected rather than clamped,
// so nonsense like a negative dimension fails loudly at the model layer
// even if a caller skipped boundary validation).
func NewMesh(s GridSpec, railWidthM, railPitchM float64, n int) (*Mesh, error) {
	if n < MinMeshN {
		return nil, fmt.Errorf("powergrid: mesh dimension %d too small (min %d)", n, MinMeshN)
	}
	if n%2 == 0 {
		n++
	}
	if n > MaxMeshN {
		return nil, fmt.Errorf("powergrid: mesh dimension %d too large (max %d)", n, MaxMeshN)
	}
	if railWidthM <= 0 || railPitchM <= 0 {
		return nil, fmt.Errorf("powergrid: non-positive rail geometry (w=%g, p=%g)", railWidthM, railPitchM)
	}
	seg := s.BumpPitchM / float64(n-1)
	// Equivalent sheet: rails of width W at pitch p give an effective
	// sheet resistance of ρs·p/W; a mesh edge spans one square of it.
	rEdge := s.Node.TopMetalSheetOhms() * railPitchM / railWidthM
	j := s.currentDensity()
	return &Mesh{
		N:            n,
		PitchM:       s.BumpPitchM,
		EdgeOhms:     rEdge,
		NodeCurrentA: j * seg * seg,
	}, nil
}

// Solve computes the node drops with the center node pinned at 0 V and
// reflective (Neumann) cell boundaries, returning the maximum IR drop on
// the net. The same drop occurs on the ground net, so the supply-loop drop
// is twice the returned value.
func (m *Mesh) Solve() (maxDropV float64, err error) {
	// A sweep may have batch-solved this exact system already
	// (PrimeSolves); the parked drop is bit-identical to what the solve
	// below would produce, and its telemetry was recorded at prime time.
	if d, ok := consumePrimed(m); ok {
		return d, nil
	}
	// The sparsity pattern depends only on the grid dimension; the cached
	// assembly is refilled for this mesh's conductance and wrapped as a
	// frozen CSR without copying (assemblyFor documents the bit-identity
	// contract with the original in-line assembly).
	asm := assemblyFor(m.N)
	sv, err := asm.solver()
	if err != nil {
		return 0, err
	}
	defer asm.pool.Put(sv)
	g := 1 / m.EdgeOhms
	sv.refill(asm, g, m.NodeCurrentA)
	mat, err := mathx.NewFrozenCSR(asm.cnt, asm.rowPtr, asm.cols, sv.vals, sv.diag)
	if err != nil {
		return 0, fmt.Errorf("powergrid: mesh assembly: %w", err)
	}
	if err := sv.mg.SetConductance(g); err != nil {
		return 0, fmt.Errorf("powergrid: mesh solve: %w", err)
	}
	// Multigrid-preconditioned CG: plain CG needs O(n) iterations on the
	// mesh Laplacian (and Jacobi buys nothing — the diagonal is
	// near-constant), while one geometric V-cycle per iteration holds the
	// count near-constant as the grid refines (BenchmarkMeshSolve; the
	// mathx iteration-count test pins ≤ 25 through n = 255). The solution
	// aliases the pooled workspace, so the max-drop reduction below must
	// happen before the solver is pooled.
	// Cancellation granularity is deliberately per-artifact: the runner and
	// jobs layers check ctx between computes, and a single mesh solve is
	// bounded (≤ 25 MG-CG iterations by the mathx pin), so threading ctx
	// into the kernel would buy nothing but signature churn.
	//lint:allow ctxflow solver kernel; cancellation is per-artifact upstream
	sol, iters, err := mat.SolveMGW(&sv.ws, sv.mg, sv.rhs, 1e-10, 20*asm.cnt)
	if err != nil {
		return 0, fmt.Errorf("powergrid: mesh solve: %w", err)
	}
	recordSolve(iters)
	for _, v := range sol {
		// Drops are positive (current flows into the pinned bump).
		if d := math.Abs(v); d > maxDropV {
			maxDropV = d
		}
	}
	return maxDropV, nil
}

// PessimisticRatio solves the 2-D smeared mesh for a sized grid and returns
// mesh-loop-drop / top-metal-budget. The mesh routes *all* current —
// including the share the designer's lower grid would normally carry
// sideways — through the top-level sheet, so ratios well above 1 quantify
// how much the analytic model leans on a healthy lower grid.
func PessimisticRatio(s GridSpec, n int) (ratio float64, err error) {
	mesh, err := PessimisticMesh(s, n)
	if err != nil {
		return 0, err
	}
	drop, err := mesh.Solve()
	if err != nil {
		return 0, err
	}
	return 2 * drop / s.topBudgetV(), nil
}

// PessimisticMesh builds (without solving) the mesh PessimisticRatio
// solves: the sized grid's top-level sheet carrying all current. Split out
// so sweep batching can collect the meshes of many scenario variants and
// solve them together before each variant's PessimisticRatio consumes its
// primed result.
func PessimisticMesh(s GridSpec, n int) (*Mesh, error) {
	sz, err := s.SizeRails()
	if err != nil {
		return nil, err
	}
	return NewMesh(s, sz.RailWidthM, s.BumpPitchM, n)
}

// Ladder is the 1-D discretization of one rail span between two bumps: n
// segments with the strip current tapped uniformly along the span and both
// ends pinned — the exact structure the analytic sizing integrates.
type Ladder struct {
	// N is the number of segments.
	N int
	// SegOhms is the per-segment rail resistance; TapCurrentA the draw per
	// interior node.
	SegOhms, TapCurrentA float64
}

// NewLadder discretizes a sized rail span.
func NewLadder(s GridSpec, railWidthM float64, n int) (*Ladder, error) {
	if n < 4 {
		n = 4
	}
	if railWidthM <= 0 {
		return nil, fmt.Errorf("powergrid: non-positive rail width %g", railWidthM)
	}
	seg := s.BumpPitchM / float64(n)
	return &Ladder{
		N:           n,
		SegOhms:     s.Node.TopMetalSheetOhms() * seg / railWidthM,
		TapCurrentA: s.currentDensity() * s.BumpPitchM * seg,
	}, nil
}

// Solve returns the peak drop along the span (both ends grounded).
func (l *Ladder) Solve() (float64, error) {
	// Interior nodes 1..N-1; tridiagonal system solved directly.
	n := l.N - 1
	if n < 1 {
		return 0, fmt.Errorf("powergrid: ladder too short")
	}
	g := 1 / l.SegOhms
	a := make([][]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
		a[i][i] = 2 * g
		if i > 0 {
			a[i][i-1] = -g
		}
		if i < n-1 {
			a[i][i+1] = -g
		}
		b[i] = l.TapCurrentA
	}
	// Tridiagonal n≤1024 system solved in microseconds; see Mesh.Solve for
	// the per-artifact cancellation-granularity decision.
	//lint:allow ctxflow bounded analytic ladder solve; cancel is upstream
	v, err := mathx.SolveDense(a, b)
	if err != nil {
		return 0, err
	}
	peak := 0.0
	for _, x := range v {
		if x > peak {
			peak = x
		}
	}
	return peak, nil
}

// ValidateAnalytic solves the 1-D ladder for a sized grid and returns the
// ratio ladder-loop-drop / top-metal-budget. Values ≈ 1 (from below as the
// discretization refines) confirm the closed-form sizing.
func ValidateAnalytic(s GridSpec, n int) (ratio float64, err error) {
	sz, err := s.SizeRails()
	if err != nil {
		return 0, err
	}
	lad, err := NewLadder(s, sz.RailWidthM, n)
	if err != nil {
		return 0, err
	}
	drop, err := lad.Solve()
	if err != nil {
		return 0, err
	}
	return 2 * drop / s.topBudgetV(), nil
}
