package powergrid

import (
	"fmt"
	"math"

	"nanometer/internal/itrs"
)

// TransientSpec models the L·di/dt supply noise of a load-current step — the
// §4 concern that waking a sleep-gated block slams the distribution network.
// The die-side decoupling capacitance and the package inductance form an LC
// tank; a current step of ΔI ramped over t droops the rail by roughly
//
//	ΔV ≈ ΔI · min( √(L/C),  L/t )
//
// — the characteristic impedance bounds fast steps, the inductor voltage
// bounds slow ramps.
type TransientSpec struct {
	// Node supplies bump counts and Vdd.
	Node itrs.Node
	// BumpInductanceH is the effective package inductance per power bump
	// (bump + trace share), typically ~0.1–0.5 nH.
	BumpInductanceH float64
	// PowerBumps overrides the node's bump plan when non-zero (to compare
	// ITRS counts against the minimum-pitch plan).
	PowerBumps int
	// OnDieDecapF is the on-die decoupling capacitance.
	OnDieDecapF float64
}

// DefaultTransientSpec returns a conventional configuration: 0.25 nH per
// bump and on-die decap from thin-oxide fill on ~10 % of the die
// (≈50 nF/cm² class).
func DefaultTransientSpec(node itrs.Node) TransientSpec {
	return TransientSpec{
		Node:            node,
		BumpInductanceH: 0.25e-9,
		OnDieDecapF:     0.10 * node.DieAreaM2 * 50e-9 / 1e-4,
	}
}

// EffectiveInductance returns the parallel package inductance seen by the
// die through all power bumps.
func (t TransientSpec) EffectiveInductance() float64 {
	bumps := t.PowerBumps
	if bumps == 0 {
		bumps = t.Node.PowerBumps()
	}
	if bumps <= 0 {
		return math.Inf(1)
	}
	return t.BumpInductanceH / float64(bumps)
}

// CharacteristicImpedance returns √(L/C) of the package-decap tank.
func (t TransientSpec) CharacteristicImpedance() float64 {
	if t.OnDieDecapF <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(t.EffectiveInductance() / t.OnDieDecapF)
}

// TransientResult quantifies a current-step event.
type TransientResult struct {
	// DIDTAmpsPerS is the current ramp rate.
	DIDTAmpsPerS float64
	// InductiveNoiseV is the slow-ramp bound L·ΔI/t; ImpedanceNoiseV the
	// fast-step bound ΔI·√(L/C).
	InductiveNoiseV, ImpedanceNoiseV float64
	// NoiseV is the governing (smaller) droop; NoiseFraction over Vdd.
	NoiseV        float64
	NoiseFraction float64
	// OK reports whether the droop stays within 10 % of Vdd.
	OK bool
}

// Step evaluates a load step of deltaI amps ramped over rampS seconds.
func (t TransientSpec) Step(deltaI, rampS float64) (TransientResult, error) {
	if deltaI <= 0 || rampS <= 0 {
		return TransientResult{}, fmt.Errorf("powergrid: non-positive transient (ΔI=%g, t=%g)", deltaI, rampS)
	}
	l := t.EffectiveInductance()
	res := TransientResult{
		DIDTAmpsPerS:    deltaI / rampS,
		InductiveNoiseV: l * deltaI / rampS,
		ImpedanceNoiseV: deltaI * t.CharacteristicImpedance(),
	}
	res.NoiseV = math.Min(res.InductiveNoiseV, res.ImpedanceNoiseV)
	res.NoiseFraction = res.NoiseV / t.Node.Vdd
	res.OK = res.NoiseFraction <= 0.10
	return res, nil
}

// WakeupTransient is a legacy alias of Step.
func (t TransientSpec) WakeupTransient(deltaI, rampS float64) (TransientResult, error) {
	return t.Step(deltaI, rampS)
}

// MinSafeRampS returns the slowest ramp time at which a deltaI step stays
// within the budget fraction of Vdd: zero when the decap absorbs even an
// instant step (ΔI·√(L/C) ≤ budget), otherwise L·ΔI/budget — the point at
// which the inductive bound meets the budget. Wakeup controllers stage the
// block's turn-on over at least this time.
func (t TransientSpec) MinSafeRampS(deltaI, budgetFraction float64) (float64, error) {
	if deltaI <= 0 || budgetFraction <= 0 {
		return 0, fmt.Errorf("powergrid: non-positive inputs (ΔI=%g, budget=%g)", deltaI, budgetFraction)
	}
	budget := budgetFraction * t.Node.Vdd
	if deltaI*t.CharacteristicImpedance() <= budget {
		return 0, nil
	}
	return t.EffectiveInductance() * deltaI / budget, nil
}

// MaxStepA returns the largest instantaneous load step the plan tolerates
// within the budget fraction of Vdd.
func (t TransientSpec) MaxStepA(budgetFraction float64) float64 {
	z := t.CharacteristicImpedance()
	if z == 0 {
		return math.Inf(1)
	}
	return budgetFraction * t.Node.Vdd / z
}
