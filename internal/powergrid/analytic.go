// Package powergrid models the power-distribution analysis of the paper's
// §4: a BACPAC-style analytic model for sizing top-level Vdd/GND rails
// against a hot-spot IR-drop budget as a function of bump pitch, a routing-
// resource accounting, a from-scratch resistive-mesh solver used to validate
// the analytic model, and the L·di/dt supply-transient model for sleep-mode
// wakeup.
package powergrid

import (
	"fmt"
	"math"

	"nanometer/internal/itrs"
)

// GridSpec describes a top-level power-grid sizing problem.
type GridSpec struct {
	// Node supplies the technology parameters.
	Node itrs.Node
	// BumpPitchM is the power-bump pitch (Vdd and GND bumps interleaved on
	// this pitch).
	BumpPitchM float64
	// HotspotFactor multiplies the uniform power density (the paper uses
	// 4×: half the die is memory at ~1/10 logic density, and some logic
	// runs at twice the average).
	HotspotFactor float64
	// IRBudgetFraction is the allowed IR drop as a fraction of Vdd across
	// the full supply loop (the paper's constraint is < 10 %).
	IRBudgetFraction float64
	// TopMetalShare is the slice of the IR budget allocated to the
	// top-level rails; the rest is reserved for the package and the
	// designer-controlled lower grid. Default 0.5.
	TopMetalShare float64
	// LandingPadFraction is the constant top-level routing share consumed
	// by bump landing pads (the paper uses 16 %).
	LandingPadFraction float64
}

// DefaultSpec returns the paper's Figure 5 configuration for a node with
// the given bump pitch.
func DefaultSpec(node itrs.Node, bumpPitchM float64) GridSpec {
	return GridSpec{
		Node:               node,
		BumpPitchM:         bumpPitchM,
		HotspotFactor:      4,
		IRBudgetFraction:   0.10,
		TopMetalShare:      0.5,
		LandingPadFraction: 0.16,
	}
}

// RailSizing is the outcome of the analytic model.
type RailSizing struct {
	// RailWidthM is the required Vdd (and GND) rail width.
	RailWidthM float64
	// WidthOverMin is the rail width normalized to the minimum top-level
	// metal width — Figure 5's left axis.
	WidthOverMin float64
	// RailRoutingFraction is the share of top-level routing consumed by
	// the rails alone; TotalRoutingFraction adds the landing pads —
	// Figure 5's right axis.
	RailRoutingFraction  float64
	TotalRoutingFraction float64
	// CellCurrentA is the supply current drawn within one bump cell at the
	// hot-spot density.
	CellCurrentA float64
	// DropV is the worst-case IR drop the sizing admits (at budget).
	DropV float64
}

// hot-spot current density (A/m²) drawn from the grid.
func (s GridSpec) currentDensity() float64 {
	return s.HotspotFactor * s.Node.PowerDensityWPerM2() / s.Node.Vdd
}

// topBudgetV is the voltage budget allocated to the top-level rails.
func (s GridSpec) topBudgetV() float64 {
	share := s.TopMetalShare
	if share == 0 {
		share = 0.5
	}
	return share * s.IRBudgetFraction * s.Node.Vdd
}

// SizeRails returns the minimum rail width meeting the IR budget under a
// distributed-load rail model: rails run at the bump pitch P with a bump at
// every rail crossing, so each rail span of length P between bumps carries
// the uniformly distributed current of a P-wide strip and is fed from both
// ends. The peak drop of such a span is (j·P)·P²·(ρs/W)/8; Vdd and GND
// rails in series double it:
//
//	drop = 2 · (ρs/W) · j·P³ / 8 = ρs·j·P³ / (4·W)
//
// Setting drop = share·budget·Vdd gives W.
func (s GridSpec) SizeRails() (RailSizing, error) {
	if s.BumpPitchM <= 0 {
		return RailSizing{}, fmt.Errorf("powergrid: non-positive bump pitch %g", s.BumpPitchM)
	}
	if s.IRBudgetFraction <= 0 || s.IRBudgetFraction >= 1 {
		return RailSizing{}, fmt.Errorf("powergrid: IR budget %g outside (0,1)", s.IRBudgetFraction)
	}
	share := s.TopMetalShare
	if share == 0 {
		share = 0.5
	}
	j := s.currentDensity()
	rhoS := s.Node.TopMetalSheetOhms()
	p := s.BumpPitchM
	budget := share * s.IRBudgetFraction * s.Node.Vdd
	w := rhoS * j * p * p * p / (4 * budget)
	sz := RailSizing{
		RailWidthM:   w,
		WidthOverMin: w / s.Node.TopMetalMinWidthM,
		CellCurrentA: j * p * p,
		DropV:        budget,
	}
	// A Vdd rail and a GND rail per bump pitch.
	sz.RailRoutingFraction = 2 * w / p
	sz.TotalRoutingFraction = sz.RailRoutingFraction + s.LandingPadFraction
	return sz, nil
}

// FeasibleRails reports whether the sizing fits the die at all: the two
// rails cannot exceed the bump pitch minus the landing pads.
func (s GridSpec) FeasibleRails() (RailSizing, bool, error) {
	sz, err := s.SizeRails()
	if err != nil {
		return RailSizing{}, false, err
	}
	return sz, sz.RailRoutingFraction <= 1-s.LandingPadFraction, nil
}

// BumpCurrentCheck compares the worst-case chip supply current against the
// ITRS per-bump capability — the paper's observation that 1500 Vdd bumps at
// 35 nm cannot carry a 300 A draw.
type BumpCurrentCheck struct {
	// SupplyCurrentA is the chip's worst-case draw.
	SupplyCurrentA float64
	// VddBumps is the number of Vdd bumps.
	VddBumps int
	// PerBumpA is the resulting per-bump current; CapabilityA the ITRS
	// projection; Compatible whether the plan closes.
	PerBumpA, CapabilityA float64
	Compatible            bool
	// RequiredBumps is the Vdd bump count that would close the plan.
	RequiredBumps int
}

// CheckBumpCurrent evaluates the node's ITRS bump plan.
func CheckBumpCurrent(node itrs.Node) BumpCurrentCheck {
	c := BumpCurrentCheck{
		SupplyCurrentA: node.SupplyCurrentA(),
		VddBumps:       node.VddBumps(),
		CapabilityA:    node.BumpMaxCurrentA,
	}
	if c.VddBumps > 0 {
		c.PerBumpA = c.SupplyCurrentA / float64(c.VddBumps)
	}
	c.Compatible = c.PerBumpA <= c.CapabilityA
	if node.BumpMaxCurrentA > 0 {
		c.RequiredBumps = int(math.Ceil(c.SupplyCurrentA / node.BumpMaxCurrentA))
	}
	return c
}
