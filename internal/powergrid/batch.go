package powergrid

import (
	"fmt"
	"math"
	"sync"

	"nanometer/internal/mathx"
)

// SolveMeshBatch solves k same-dimension meshes through the lockstep
// multi-RHS kernel (mathx.SolveMGBatchW): one shared CSR pattern traversal
// per Krylov iteration instead of k. This is the scenario-sweep fast path —
// sweep variants perturb conductance and current draw but never the grid,
// so their systems share the cached assembly pattern by construction. Each
// returned drop is bit-identical to what meshes[i].Solve() would produce
// (the batch kernel guarantees per-variant float sequences match solo),
// which is what lets sweep priming feed caches solo solves must later match
// byte for byte. Any variant failing fails the whole batch — callers fall
// back to solo solves, where the same error will surface attributably.
func SolveMeshBatch(meshes []*Mesh) ([]float64, error) {
	k := len(meshes)
	if k == 0 {
		return nil, nil
	}
	n := meshes[0].N
	for _, m := range meshes[1:] {
		if m.N != n {
			return nil, fmt.Errorf("powergrid: batch mixes mesh dimensions %d and %d", n, m.N)
		}
	}
	drops := make([]float64, k)
	// Chunk so a wide sweep cannot hold unbounded solver state at once:
	// each variant pins ~22 n²-sized float arrays (CSR values, RHS, Krylov
	// workspace, multigrid hierarchy) ≈ 176·n² bytes, and the pool only
	// amortizes what a chunk acquires. 256 MB covers a 33-variant sweep in
	// one chunk at n = 255 and degrades to smaller chunks at larger grids.
	const maxBatchBytes = 48 << 20
	chunk := maxBatchBytes / (176 * n * n)
	if chunk < 1 {
		chunk = 1
	}
	for lo := 0; lo < k; lo += chunk {
		hi := lo + chunk
		if hi > k {
			hi = k
		}
		if err := solveMeshChunk(meshes[lo:hi], drops[lo:hi]); err != nil {
			return nil, err
		}
	}
	return drops, nil
}

// solveMeshChunk runs one pooled lockstep solve over meshes, writing the
// max IR drop per variant into drops (same length).
func solveMeshChunk(meshes []*Mesh, drops []float64) (err error) {
	k := len(meshes)
	asm := assemblyFor(meshes[0].N)
	svs := make([]*meshSolver, 0, k)
	defer func() {
		for _, sv := range svs {
			asm.pool.Put(sv)
		}
	}()
	wss := make([]*mathx.Workspace, k)
	pres := make([]mathx.Preconditioner, k)
	mats := make([]*mathx.SparseMatrix, k)
	bs := make([][]float64, k)
	for v, m := range meshes {
		sv, err := asm.solver()
		if err != nil {
			return err
		}
		svs = append(svs, sv)
		g := 1 / m.EdgeOhms
		sv.refill(asm, g, m.NodeCurrentA)
		mat, err := mathx.NewFrozenCSR(asm.cnt, asm.rowPtr, asm.cols, sv.vals, sv.diag)
		if err != nil {
			return fmt.Errorf("powergrid: mesh assembly: %w", err)
		}
		if err := sv.mg.SetConductance(g); err != nil {
			return fmt.Errorf("powergrid: mesh solve: %w", err)
		}
		wss[v], pres[v], mats[v], bs[v] = &sv.ws, sv.mg, mat, sv.rhs
	}
	// Same per-artifact cancellation-granularity decision as Mesh.Solve:
	// one batch is bounded work, ctx checks live upstream.
	//lint:allow ctxflow solver kernel; cancellation is per-artifact upstream
	sols, iters, errs := mathx.SolveMGBatchW(wss, pres, mats, bs, 1e-10, 20*asm.cnt)
	for v, e := range errs {
		if e != nil {
			return fmt.Errorf("powergrid: mesh solve: %w", e)
		}
		recordBatchedSolve(iters[v])
		maxDrop := 0.0
		for _, x := range sols[v] {
			if d := math.Abs(x); d > maxDrop {
				maxDrop = d
			}
		}
		drops[v] = maxDrop
	}
	return nil
}

// primeKey identifies a mesh solve by the exact float bits that determine
// its result. Meshes built from the same spec through the same deterministic
// pipeline reproduce these bits exactly, so a primed entry parked by a sweep
// is found by the later per-variant Mesh.Solve with no tolerance games.
type primeKey struct {
	n                      int
	edgeOhms, nodeCurrentA float64
}

// primedEntry is one parked result with the number of consumers it still
// owes. A sweep whose swept parameter doesn't touch the 35 nm grid (the
// common case) builds the SAME mesh for every variant; one batch solve
// then feeds all of them, so entries carry a count instead of
// delete-on-first-read.
type primedEntry struct {
	drop  float64
	count int
}

// primedDrops parks batch-computed results for counted consumption.
// maxPrimedDrops bounds the key count (a sweep primes at most its variant
// count, but the map must not grow without bound if a caller primes and
// never consumes); counts drain to zero and delete their entry, so stale
// values cannot shadow a future model change indefinitely.
var primedDrops struct {
	mu sync.Mutex
	m  map[primeKey]*primedEntry // guarded by mu
}

const maxPrimedDrops = 1024

// PrimeSolves batch-solves the given meshes and parks each drop for the
// next len(meshes) Mesh.Solve calls with matching parameters to consume.
// Duplicate parameter sets solve once and park a consumption count — they
// would produce identical bits anyway. Priming is strictly best-effort: on
// any solver error it parks nothing and returns, and per-variant solo
// solves re-hit the error where it can be attributed.
//
// Solve telemetry is recorded here per REQUESTED mesh (duplicates
// included), not at consumption: the pre-batch world ran one real solve
// per variant, so counting one solve (with its iteration cost) per primed
// variant keeps solves_total, iterations_total, and the iters/solve health
// ratio exactly what dashboards saw before batching existed.
func PrimeSolves(meshes []*Mesh) {
	if len(meshes) < 2 {
		return // a lone solve has nobody to share with — leave it solo
	}
	uniq := make([]*Mesh, 0, len(meshes))
	counts := make(map[primeKey]int, len(meshes))
	for _, m := range meshes {
		key := primeKey{m.N, m.EdgeOhms, m.NodeCurrentA}
		if counts[key] == 0 {
			uniq = append(uniq, m)
		}
		counts[key]++
	}
	drops, err := SolveMeshBatch(uniq)
	if err != nil {
		return
	}
	primedDrops.mu.Lock()
	defer primedDrops.mu.Unlock()
	if primedDrops.m == nil {
		primedDrops.m = make(map[primeKey]*primedEntry, len(uniq))
	}
	for i, m := range uniq {
		key := primeKey{m.N, m.EdgeOhms, m.NodeCurrentA}
		if e, ok := primedDrops.m[key]; ok {
			e.drop, e.count = drops[i], e.count+counts[key]
		} else {
			if len(primedDrops.m) >= maxPrimedDrops {
				continue
			}
			primedDrops.m[key] = &primedEntry{drop: drops[i], count: counts[key]}
		}
		// The batch recorded the one real solve of this system; account
		// the remaining consumers so counters match the solo world where
		// each variant would have solved.
		for extra := counts[key] - 1; extra > 0; extra-- {
			recordBatchedSolve(0)
		}
	}
}

// consumePrimed returns (and counts down) a parked drop for this mesh's
// exact parameters, if a prior PrimeSolves batch computed one.
func consumePrimed(m *Mesh) (float64, bool) {
	primedDrops.mu.Lock()
	defer primedDrops.mu.Unlock()
	key := primeKey{m.N, m.EdgeOhms, m.NodeCurrentA}
	e, ok := primedDrops.m[key]
	if !ok {
		return 0, false
	}
	if e.count--; e.count <= 0 {
		delete(primedDrops.m, key)
	}
	return e.drop, true
}
