package powergrid

import "sync/atomic"

// Cumulative mesh-solve telemetry. The solvecheck analyzer forbids
// dropping the iteration count a solver reports, and for good reason: the
// MG-PCG path is fast precisely because its iteration count stays flat
// (≤ 25 through n = 255), and a regression there — a broken prolongation,
// a bad smoother weight — shows up as iteration creep long before results
// go wrong. Every Mesh.Solve accounts its count here; the daemon exports
// both counters on /metrics so that creep is visible on a dashboard, not
// just in benchmarks.
var meshSolves, meshSolveIters, meshBatchedSolves atomic.Uint64

// SolveStats is a point-in-time snapshot of the mesh-solve counters.
type SolveStats struct {
	// Solves is the number of completed mesh solves (solo Mesh.Solve calls
	// plus every variant a batch solved); Iterations is the total MG-PCG
	// iterations they spent. Iterations/Solves is the health number:
	// near-constant per mesh size by construction.
	Solves, Iterations uint64
	// Batched counts the subset of Solves that ran through the lockstep
	// multi-RHS kernel (SolveMeshBatch). Sweeps should push it toward
	// Solves; a sweep-heavy deployment with Batched ≈ 0 means the priming
	// wiring regressed and every variant pays a full pattern traversal.
	Batched uint64
}

// ReadSolveStats snapshots the counters for /metrics.
func ReadSolveStats() SolveStats {
	return SolveStats{
		Solves:     meshSolves.Load(),
		Iterations: meshSolveIters.Load(),
		Batched:    meshBatchedSolves.Load(),
	}
}

func recordSolve(iters int) {
	meshSolves.Add(1)
	meshSolveIters.Add(uint64(iters))
}

// recordBatchedSolve accounts one variant of a lockstep batch: a mesh
// solve like any other (the Solves/Iterations contract is per system
// solved, not per kernel invocation) plus the batched-path counter.
func recordBatchedSolve(iters int) {
	recordSolve(iters)
	meshBatchedSolves.Add(1)
}
