package powergrid

import "sync/atomic"

// Cumulative mesh-solve telemetry. The solvecheck analyzer forbids
// dropping the iteration count a solver reports, and for good reason: the
// MG-PCG path is fast precisely because its iteration count stays flat
// (≤ 25 through n = 255), and a regression there — a broken prolongation,
// a bad smoother weight — shows up as iteration creep long before results
// go wrong. Every Mesh.Solve accounts its count here; the daemon exports
// both counters on /metrics so that creep is visible on a dashboard, not
// just in benchmarks.
var meshSolves, meshSolveIters atomic.Uint64

// SolveStats is a point-in-time snapshot of the mesh-solve counters.
type SolveStats struct {
	// Solves is the number of completed Mesh.Solve calls; Iterations is
	// the total MG-PCG iterations they spent. Iterations/Solves is the
	// health number: near-constant per mesh size by construction.
	Solves, Iterations uint64
}

// ReadSolveStats snapshots the counters for /metrics.
func ReadSolveStats() SolveStats {
	return SolveStats{Solves: meshSolves.Load(), Iterations: meshSolveIters.Load()}
}

func recordSolve(iters int) {
	meshSolves.Add(1)
	meshSolveIters.Add(uint64(iters))
}
