package powergrid

import (
	"fmt"
	"sync"

	"nanometer/internal/mathx"
)

// meshAssembly is the conductance-independent part of the n×n pinned mesh
// system: the frozen CSR sparsity pattern (fixed by grid geometry alone)
// and the per-row edge counts needed to refill values for any edge
// conductance. One assembly per mesh dimension lives in meshAssemblies for
// the life of the process, so repeated SizeRails / PessimisticRatio sweeps
// stop re-deriving the pattern from scratch; concurrent solves share it
// read-only and draw their mutable state (values, RHS, multigrid
// hierarchy, Krylov workspace) from the per-assembly pool.
type meshAssembly struct {
	n      int
	cnt    int       // unknowns: n²−1 (center node eliminated)
	rowPtr []int32   // CSR row offsets into cols (read-only once built)
	cols   []int32   // off-diagonal columns, original assembly insertion order
	deg    []uint8   // in-range edge count per unknown row (diagonal refill)
	pool   sync.Pool // *meshSolver
}

// meshSolver is one solve's worth of mutable state bound to an assembly:
// value arrays the refill writes, the multigrid hierarchy (stateful level
// storage, so it cannot be shared across concurrent solves), and the
// Krylov workspace. Pooled so the steady state allocates nothing.
type meshSolver struct {
	vals []float64
	diag []float64
	rhs  []float64
	ws   mathx.Workspace
	mg   *mathx.MeshMG
}

var meshAssemblies sync.Map // int (grid side n) → *meshAssembly

// maxCachedAssemblies bounds the pattern cache: a pattern for side n holds
// O(n²) index data (~80 MB at the n=1023 cap), and the serving layer lets
// untrusted clients pick n, so a scan across distinct sizes must recycle
// slots instead of accumulating them. Eight slots cover the report default
// plus a realistic refinement sweep; eviction only costs the next solve at
// the evicted size a re-derivation.
const maxCachedAssemblies = 8

var assemblyEvict struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// assemblyFor returns the cached pattern for an n×n mesh, deriving it on
// first use. The derivation walks nodes exactly as the original in-line
// assembly did — neighbours in {up, down, left, right} order, out-of-range
// and pinned-center columns skipped — so the frozen rows preserve the
// historical insertion order and MulVec sums in the same order to the bit.
func assemblyFor(n int) *meshAssembly {
	if v, ok := meshAssemblies.Load(n); ok {
		return v.(*meshAssembly)
	}
	total := n * n
	center := (n/2)*n + n/2
	idx := make([]int, total) // full-grid index → unknown row (−1 at pin)
	cnt := 0
	for i := 0; i < total; i++ {
		if i == center {
			idx[i] = -1
			continue
		}
		idx[i] = cnt
		cnt++
	}
	asm := &meshAssembly{
		n:      n,
		cnt:    cnt,
		rowPtr: make([]int32, cnt+1),
		cols:   make([]int32, 0, 4*cnt),
		deg:    make([]uint8, cnt),
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			u := r*n + c
			if idx[u] < 0 {
				continue
			}
			row := idx[u]
			for _, nb := range [][2]int{{r - 1, c}, {r + 1, c}, {r, c - 1}, {r, c + 1}} {
				if nb[0] < 0 || nb[0] >= n || nb[1] < 0 || nb[1] >= n {
					continue // reflective boundary: no conductance out
				}
				asm.deg[row]++
				if v := idx[nb[0]*n+nb[1]]; v >= 0 {
					asm.cols = append(asm.cols, int32(v))
				}
				// Pinned neighbour: counts toward the diagonal, no column.
			}
			asm.rowPtr[row+1] = int32(len(asm.cols))
		}
	}
	v, loaded := meshAssemblies.LoadOrStore(n, asm) // racing builders: first in wins
	if !loaded {
		capAssemblies(n)
	}
	return v.(*meshAssembly)
}

// capAssemblies evicts arbitrary other entries until at most
// maxCachedAssemblies remain, keeping the just-inserted size. In-flight
// solves hold direct *meshAssembly references, so eviction never breaks
// them — the entry just becomes collectable once they finish.
func capAssemblies(keep int) {
	assemblyEvict.mu.Lock()
	defer assemblyEvict.mu.Unlock()
	assemblyEvict.n++
	if assemblyEvict.n <= maxCachedAssemblies {
		return
	}
	meshAssemblies.Range(func(k, _ any) bool {
		if k.(int) == keep {
			return true
		}
		meshAssemblies.Delete(k)
		assemblyEvict.n--
		return assemblyEvict.n > maxCachedAssemblies
	})
}

// solver draws pooled per-solve state, building the multigrid hierarchy on
// a pool miss. This is an acquire-helper: ownership of the pooled solver
// transfers to the caller, and Mesh.Solve defers the a.pool.Put.
func (a *meshAssembly) solver() (*meshSolver, error) {
	//lint:allow poolescape acquire-helper; Mesh.Solve defers asm.pool.Put(sv)
	if v := a.pool.Get(); v != nil {
		return v.(*meshSolver), nil
	}
	mg, err := mathx.NewMeshMG(a.n, (a.n/2)*a.n+a.n/2)
	if err != nil {
		return nil, fmt.Errorf("powergrid: mesh multigrid: %w", err)
	}
	return &meshSolver{
		vals: make([]float64, len(a.cols)),
		diag: make([]float64, a.cnt),
		rhs:  make([]float64, a.cnt),
		mg:   mg,
	}, nil
}

// refill writes the conductance-dependent values for edge conductance g
// and per-node current draw: off-diagonals are −g, and each diagonal is
// rebuilt by the same repeated `+= g` accumulation the original assembly
// used (k ∈ {2,3,4} additions), reproducing its floating-point results
// bit for bit.
func (sv *meshSolver) refill(a *meshAssembly, g, nodeCurrentA float64) {
	for i := range sv.vals {
		sv.vals[i] = -g
	}
	for row, k := range a.deg {
		deg := 0.0
		for j := uint8(0); j < k; j++ {
			deg += g
		}
		sv.diag[row] = deg
		sv.rhs[row] = nodeCurrentA
	}
}
