package powergrid

import (
	"math"
	"testing"
	"testing/quick"

	"nanometer/internal/itrs"
	"nanometer/internal/units"
)

func spec35(pitch float64) GridSpec {
	return DefaultSpec(itrs.MustNode(35), pitch)
}

func TestSizeRailsCubicInPitch(t *testing.T) {
	// The analytic model: W ∝ P³ at fixed everything else.
	f := func(seed uint8) bool {
		p := 50e-6 * (1 + float64(seed)/32)
		a, err1 := spec35(p).SizeRails()
		b, err2 := spec35(2 * p).SizeRails()
		if err1 != nil || err2 != nil {
			return false
		}
		return units.ApproxEqual(b.RailWidthM, 8*a.RailWidthM, 1e-9, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSizeRailsPaperAnchors(t *testing.T) {
	node := itrs.MustNode(35)
	sz, err := spec35(node.BumpPitchMinM).SizeRails()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 16× the minimum width, rails < 4 % of routing, ≈20 % total.
	if sz.WidthOverMin < 10 || sz.WidthOverMin > 22 {
		t.Fatalf("35 nm min-pitch rail width = %.1f × Wmin, paper says 16×", sz.WidthOverMin)
	}
	if sz.RailRoutingFraction > 0.05 {
		t.Fatalf("rail routing share = %.3f, paper says <4%%", sz.RailRoutingFraction)
	}
	if sz.TotalRoutingFraction < 0.17 || sz.TotalRoutingFraction > 0.22 {
		t.Fatalf("total routing share = %.3f, paper says 17-20%%", sz.TotalRoutingFraction)
	}
	// ITRS-plan pitch blows the width up by ~(356/80)³ ≈ 88×.
	szITRS, err := spec35(node.EffectiveBumpPitchM()).SizeRails()
	if err != nil {
		t.Fatal(err)
	}
	ratio := szITRS.WidthOverMin / sz.WidthOverMin
	if ratio < 60 || ratio > 120 {
		t.Fatalf("ITRS/min width ratio = %.0f, want ≈88 (cubic in pitch)", ratio)
	}
	if szITRS.WidthOverMin < 500 {
		t.Fatalf("ITRS-plan rail width = %.0f × Wmin, paper says >2000× (order of magnitude)", szITRS.WidthOverMin)
	}
}

func TestSizeRailsErrors(t *testing.T) {
	if _, err := spec35(0).SizeRails(); err == nil {
		t.Fatalf("zero pitch must error")
	}
	s := spec35(80e-6)
	s.IRBudgetFraction = 0
	if _, err := s.SizeRails(); err == nil {
		t.Fatalf("zero budget must error")
	}
	s.IRBudgetFraction = 1.5
	if _, err := s.SizeRails(); err == nil {
		t.Fatalf("budget ≥ 1 must error")
	}
}

func TestTighterBudgetWidensRails(t *testing.T) {
	a := spec35(80e-6)
	b := spec35(80e-6)
	b.IRBudgetFraction = 0.05
	sa, _ := a.SizeRails()
	sb, _ := b.SizeRails()
	if sb.RailWidthM <= sa.RailWidthM {
		t.Fatalf("halving the budget must widen the rails")
	}
	if !units.ApproxEqual(sb.RailWidthM, 2*sa.RailWidthM, 1e-9, 0) {
		t.Fatalf("width must be inverse in budget")
	}
}

func TestHotspotScalesWidth(t *testing.T) {
	uniform := spec35(80e-6)
	uniform.HotspotFactor = 1
	hot := spec35(80e-6)
	su, _ := uniform.SizeRails()
	sh, _ := hot.SizeRails()
	if !units.ApproxEqual(sh.RailWidthM, 4*su.RailWidthM, 1e-9, 0) {
		t.Fatalf("4× hot spot must need 4× rails")
	}
}

func TestFeasibleRails(t *testing.T) {
	node := itrs.MustNode(35)
	_, okMin, err := spec35(node.BumpPitchMinM).FeasibleRails()
	if err != nil || !okMin {
		t.Fatalf("min-pitch plan must be feasible (%v)", err)
	}
	// An extreme pitch makes the rails outgrow the pitch itself.
	_, okHuge, err := spec35(1.5e-3).FeasibleRails()
	if err != nil {
		t.Fatal(err)
	}
	if okHuge {
		t.Fatalf("a 1.5 mm bump pitch cannot fit its rails")
	}
}

func TestLadderValidatesAnalytic(t *testing.T) {
	// The 1-D ladder solve must converge to the closed form from below.
	s := spec35(80e-6)
	ratio, err := ValidateAnalytic(s, 512)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ratio-1) > 0.02 {
		t.Fatalf("ladder/analytic = %g, want ≈1", ratio)
	}
	coarse, err := ValidateAnalytic(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	if coarse > 1.0+1e-9 {
		t.Fatalf("discretized ladder must not exceed the continuum bound, got %g", coarse)
	}
}

func TestMeshPessimisticBound(t *testing.T) {
	// Forcing the lower-grid current through the top-level sheet must show
	// substantially more drop than the rail budget.
	ratio, err := PessimisticRatio(spec35(80e-6), 31)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 2 || ratio > 20 {
		t.Fatalf("pessimistic mesh ratio = %g, expected several × the budget", ratio)
	}
}

func TestMeshErrors(t *testing.T) {
	if _, err := NewMesh(spec35(80e-6), 0, 80e-6, 11); err == nil {
		t.Fatalf("zero rail width must error")
	}
	if _, err := NewLadder(spec35(80e-6), 0, 16); err == nil {
		t.Fatalf("zero rail width must error")
	}
}

// TestAssemblyCacheBounded: solving at many distinct mesh sizes (the shape
// of a hostile mesh-n scan through the daemon) must not accumulate one
// O(n²) pattern per size forever.
func TestAssemblyCacheBounded(t *testing.T) {
	sz, err := spec35(80e-6).SizeRails()
	if err != nil {
		t.Fatal(err)
	}
	for n := 5; n <= 5+2*(3*maxCachedAssemblies); n += 2 {
		m, err := NewMesh(spec35(80e-6), sz.RailWidthM, 80e-6, n)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Solve(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
	count := 0
	meshAssemblies.Range(func(_, _ any) bool { count++; return true })
	// Transient over-admission by racing inserts is tolerated; unbounded
	// growth is not.
	if count > maxCachedAssemblies+1 {
		t.Fatalf("%d assemblies cached, bound is %d", count, maxCachedAssemblies)
	}
}

// TestMeshDimensionLimits: nonsense dimensions are rejected in the model
// layer itself, not only at the CLI/HTTP boundaries — the serving layer
// passes untrusted values down here.
func TestMeshDimensionLimits(t *testing.T) {
	sz, err := spec35(80e-6).SizeRails()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{-5, -1, 0, 1, 2, 4} {
		if _, err := NewMesh(spec35(80e-6), sz.RailWidthM, 80e-6, n); err == nil {
			t.Errorf("NewMesh(n=%d) must error", n)
		}
	}
	for _, n := range []int{MaxMeshN + 1, 1 << 20} {
		if _, err := NewMesh(spec35(80e-6), sz.RailWidthM, 80e-6, n); err == nil {
			t.Errorf("NewMesh(n=%d) must error", n)
		}
	}
	// Even dimensions stay accepted (bumped to odd) and in-range odd ones
	// solve.
	m, err := NewMesh(spec35(80e-6), sz.RailWidthM, 80e-6, 10)
	if err != nil {
		t.Fatalf("NewMesh(n=10): %v", err)
	}
	if m.N != 11 {
		t.Errorf("even dimension should round up to 11, got %d", m.N)
	}
	if _, err := m.Solve(); err != nil {
		t.Errorf("solve at n=11: %v", err)
	}
}

func TestCheckBumpCurrentAt35(t *testing.T) {
	chk := CheckBumpCurrent(itrs.MustNode(35))
	if chk.Compatible {
		t.Fatalf("the paper's point: 1500 Vdd bumps cannot carry ~300 A")
	}
	if chk.PerBumpA <= chk.CapabilityA {
		t.Fatalf("per-bump current %g should exceed capability %g", chk.PerBumpA, chk.CapabilityA)
	}
	if chk.RequiredBumps <= chk.VddBumps {
		t.Fatalf("more bumps must be required")
	}
	// At 180 nm the plan closes.
	chk180 := CheckBumpCurrent(itrs.MustNode(180))
	if !chk180.Compatible {
		t.Fatalf("the 180 nm bump plan should be adequate")
	}
}

func TestTransientBounds(t *testing.T) {
	spec := DefaultTransientSpec(itrs.MustNode(35))
	// A very slow ramp is governed by the inductive bound, a fast step by
	// the impedance bound.
	slow, err := spec.Step(30, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if slow.NoiseV != slow.InductiveNoiseV {
		t.Fatalf("slow ramp must be inductor-limited")
	}
	fast, err := spec.Step(30, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if fast.NoiseV != fast.ImpedanceNoiseV {
		t.Fatalf("fast step must be impedance-limited")
	}
	if fast.NoiseV <= slow.NoiseV {
		t.Fatalf("faster steps must droop more")
	}
}

func TestTransientMoreBumpsLessNoise(t *testing.T) {
	node := itrs.MustNode(35)
	few := DefaultTransientSpec(node)
	many := DefaultTransientSpec(node)
	many.PowerBumps = node.PowerBumps() * 20
	nFew, _ := few.Step(30, 1e-12)
	nMany, _ := many.Step(30, 1e-12)
	if nMany.NoiseV >= nFew.NoiseV {
		t.Fatalf("more bumps must reduce droop: %g vs %g", nMany.NoiseV, nFew.NoiseV)
	}
}

func TestMinSafeRampConsistent(t *testing.T) {
	spec := DefaultTransientSpec(itrs.MustNode(35))
	deltaI := 2 * spec.MaxStepA(0.10) // needs staging
	ramp, err := spec.MinSafeRampS(deltaI, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if ramp <= 0 {
		t.Fatalf("an over-budget step needs a positive ramp")
	}
	res, err := spec.Step(deltaI, ramp)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(res.NoiseFraction, 0.10, 1e-6, 0) {
		t.Fatalf("at the safe ramp the droop = %g, want exactly the budget", res.NoiseFraction)
	}
	// A step inside the impedance bound needs no staging.
	small := spec.MaxStepA(0.10) / 2
	ramp, err = spec.MinSafeRampS(small, 0.10)
	if err != nil || ramp != 0 {
		t.Fatalf("in-budget step should need no staging (%g, %v)", ramp, err)
	}
}

func TestTransientErrors(t *testing.T) {
	spec := DefaultTransientSpec(itrs.MustNode(35))
	if _, err := spec.Step(0, 1e-9); err == nil {
		t.Fatalf("zero step must error")
	}
	if _, err := spec.Step(10, 0); err == nil {
		t.Fatalf("zero ramp must error")
	}
	if _, err := spec.MinSafeRampS(0, 0.1); err == nil {
		t.Fatalf("zero step must error")
	}
}
