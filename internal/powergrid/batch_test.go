package powergrid

import (
	"math"
	"testing"
)

// sweepMeshes builds k same-grid meshes with conductance and draw varied
// the way a scenario sweep varies them (±10% around nominal).
func sweepMeshes(k, n int) []*Mesh {
	meshes := make([]*Mesh, k)
	for i := range meshes {
		f := 0.9 + 0.2*float64(i)/float64(max(k-1, 1))
		meshes[i] = &Mesh{
			N:            n,
			PitchM:       80e-6,
			EdgeOhms:     0.04 * f,
			NodeCurrentA: 1.2e-4 / f,
		}
	}
	return meshes
}

// TestSolveMeshBatchMatchesSolo pins the sweep fast path's whole value
// proposition: batched drops carry the exact float bits of solo solves, so
// routing a sweep through the batch can never change what any variant
// reports.
func TestSolveMeshBatchMatchesSolo(t *testing.T) {
	meshes := sweepMeshes(5, 41)
	before := ReadSolveStats()
	drops, err := SolveMeshBatch(meshes)
	if err != nil {
		t.Fatal(err)
	}
	after := ReadSolveStats()
	if got := after.Batched - before.Batched; got != 5 {
		t.Errorf("batched counter moved by %d, want 5", got)
	}
	if got := after.Solves - before.Solves; got != 5 {
		t.Errorf("solves counter moved by %d, want 5 (batch variants are solves)", got)
	}
	for i, m := range meshes {
		solo, err := m.Solve()
		if err != nil {
			t.Fatalf("solo %d: %v", i, err)
		}
		if math.Float64bits(solo) != math.Float64bits(drops[i]) {
			t.Fatalf("variant %d: batch drop %x, solo drop %x — bit-identity broken",
				i, math.Float64bits(drops[i]), math.Float64bits(solo))
		}
	}
}

// TestSolveMeshBatchRejectsMixedGrids: mixed dimensions cannot share a
// pattern traversal and must fail loudly (callers fall back to solo).
func TestSolveMeshBatchRejectsMixedGrids(t *testing.T) {
	meshes := sweepMeshes(2, 41)
	meshes[1].N = 21
	if _, err := SolveMeshBatch(meshes); err == nil {
		t.Fatal("mixed-dimension batch did not fail")
	}
	if drops, err := SolveMeshBatch(nil); err != nil || drops != nil {
		t.Fatalf("empty batch: drops=%v err=%v", drops, err)
	}
}

// TestPrimeSolvesFeedsSolve checks the park-and-consume contract: a primed
// mesh's Solve returns the parked (bit-identical) drop without recording a
// second solve, duplicate parameter sets solve once but feed (and count)
// one consumer each, and drained entries fall back to solo solving.
func TestPrimeSolvesFeedsSolve(t *testing.T) {
	meshes := sweepMeshes(3, 41)
	// Reference drops from plain solo solves on copies.
	refs := make([]float64, len(meshes))
	for i, m := range meshes {
		cp := *m
		d, err := cp.Solve()
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = d
	}
	withDup := append(append([]*Mesh{}, meshes...), meshes[1]) // duplicate params
	before := ReadSolveStats()
	PrimeSolves(withDup)
	primed := ReadSolveStats()
	if got := primed.Solves - before.Solves; got != 4 {
		t.Errorf("priming recorded %d solves, want 4 (one per requested variant, duplicates included)", got)
	}
	for i, m := range meshes {
		d, err := m.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(d) != math.Float64bits(refs[i]) {
			t.Fatalf("variant %d: primed drop differs from solo bits", i)
		}
	}
	// The duplicated parameter set owes one more consumer.
	if _, err := meshes[1].Solve(); err != nil {
		t.Fatal(err)
	}
	consumed := ReadSolveStats()
	if got := consumed.Solves - primed.Solves; got != 0 {
		t.Errorf("consuming primed drops recorded %d extra solves, want 0", got)
	}
	// Entries are drained: the same meshes now solve solo again.
	if _, err := meshes[0].Solve(); err != nil {
		t.Fatal(err)
	}
	reSolved := ReadSolveStats()
	if got := reSolved.Solves - consumed.Solves; got != 1 {
		t.Errorf("re-solve after drain recorded %d solves, want 1", got)
	}
}

// TestPrimeSolvesSingleRequestNoop: one requested solve has nobody to
// share with, so priming must not run (the solo path's singleflight and
// telemetry own that solve). Two requests of the SAME parameters, by
// contrast, do share: one real solve feeds both consumers while the
// counters still see one solve per request.
func TestPrimeSolvesSingleRequestNoop(t *testing.T) {
	meshes := sweepMeshes(1, 41)
	before := ReadSolveStats()
	PrimeSolves(meshes[:1])
	after := ReadSolveStats()
	if got := after.Solves - before.Solves; got != 0 {
		t.Errorf("single-request priming recorded %d solves, want 0", got)
	}
	PrimeSolves([]*Mesh{meshes[0], meshes[0]})
	shared := ReadSolveStats()
	if got := shared.Solves - after.Solves; got != 2 {
		t.Errorf("identical-pair priming recorded %d solves, want 2", got)
	}
	if got := shared.Batched - after.Batched; got != 2 {
		t.Errorf("identical-pair priming batched %d, want 2", got)
	}
	for i := 0; i < 2; i++ {
		if _, err := meshes[0].Solve(); err != nil {
			t.Fatal(err)
		}
	}
	drained := ReadSolveStats()
	if got := drained.Solves - shared.Solves; got != 0 {
		t.Errorf("consuming the shared pair recorded %d extra solves, want 0", got)
	}
}
