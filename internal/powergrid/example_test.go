package powergrid_test

import (
	"fmt"

	"nanometer/internal/itrs"
	"nanometer/internal/powergrid"
)

// Figure 5's 35 nm anchor: at the minimum attainable bump pitch the rails
// need ≈16× the minimum top-metal width and stay under 4 % of routing.
func ExampleGridSpec_SizeRails() {
	node := itrs.MustNode(35)
	spec := powergrid.DefaultSpec(node, node.BumpPitchMinM)
	sz, err := spec.SizeRails()
	if err != nil {
		panic(err)
	}
	fmt.Printf("rail width %.0f× Wmin, rails %.1f%% of routing\n",
		sz.WidthOverMin, sz.RailRoutingFraction*100)
	// Output:
	// rail width 15× Wmin, rails 3.8% of routing
}

// The §4 bump-current check: 1500 Vdd bumps cannot carry the 35 nm chip's
// ~300 A draw at the ITRS per-bump capability.
func ExampleCheckBumpCurrent() {
	chk := powergrid.CheckBumpCurrent(itrs.MustNode(35))
	fmt.Printf("compatible: %v (%.2f A/bump vs %.2f A capability)\n",
		chk.Compatible, chk.PerBumpA, chk.CapabilityA)
	// Output:
	// compatible: false (0.20 A/bump vs 0.13 A capability)
}

// Wakeup staging: how slowly must a 38 A sleep-gated block re-awaken to
// keep the supply droop within 10 % of Vdd under the ITRS bump plan?
func ExampleTransientSpec_MinSafeRampS() {
	spec := powergrid.DefaultTransientSpec(itrs.MustNode(35))
	ramp, err := spec.MinSafeRampS(38, 0.10)
	if err != nil {
		panic(err)
	}
	fmt.Printf("staging required: %v\n", ramp > 0)
	// Output:
	// staging required: true
}
