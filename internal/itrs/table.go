package itrs

import (
	"fmt"
	"sort"
)

// Table is a roadmap as a value: a named, ordered set of nodes the models
// compute against. The package-level Roadmap()/ByNode()/Nodes() helpers all
// delegate to Base(); scenario-modified tables are built with NewTable and
// threaded explicitly through the model constructors instead of mutating any
// global state.
type Table struct {
	name  string
	nodes []Node // descending DrawnNM, validated, deduplicated
}

// Base returns the transcribed ITRS-2000 table the paper spans. The Table is
// freshly built on each call (the nodes slice is private to it), so callers
// can hold it without aliasing concerns.
func Base() *Table {
	t, err := NewTable("", Roadmap())
	if err != nil {
		panic(err) // the transcribed table is validated by tests
	}
	return t
}

// NewTable builds a validated roadmap from the given nodes. Nodes are copied
// and sorted by descending drawn feature size; duplicate or invalid nodes are
// rejected.
func NewTable(name string, nodes []Node) (*Table, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("itrs: table %q has no nodes", name)
	}
	cp := make([]Node, len(nodes))
	copy(cp, nodes)
	sort.Slice(cp, func(i, j int) bool { return cp[i].DrawnNM > cp[j].DrawnNM })
	for i, n := range cp {
		if err := n.Validate(); err != nil {
			return nil, fmt.Errorf("itrs: table %q: %w", name, err)
		}
		if i > 0 && cp[i-1].DrawnNM == n.DrawnNM {
			return nil, fmt.Errorf("itrs: table %q lists %d nm twice", name, n.DrawnNM)
		}
	}
	return &Table{name: name, nodes: cp}, nil
}

// Name returns the table's label ("" for the base roadmap).
func (t *Table) Name() string { return t.name }

// Len returns the number of nodes.
func (t *Table) Len() int { return len(t.nodes) }

// All returns the nodes ordered from the largest feature size down. The
// slice is freshly allocated; the caller may mutate it.
func (t *Table) All() []Node {
	out := make([]Node, len(t.nodes))
	copy(out, t.nodes)
	return out
}

// NodesNM returns the drawn feature sizes in descending order.
func (t *Table) NodesNM() []int {
	out := make([]int, len(t.nodes))
	for i, n := range t.nodes {
		out[i] = n.DrawnNM
	}
	return out
}

// ByNode returns the entry for the given drawn feature size.
func (t *Table) ByNode(drawnNM int) (Node, error) {
	for _, n := range t.nodes {
		if n.DrawnNM == drawnNM {
			return n, nil
		}
	}
	return Node{}, fmt.Errorf("itrs: table %q has no entry for %d nm", t.name, drawnNM)
}

// MustNode is ByNode for known-good literals; it panics on unknown nodes.
func (t *Table) MustNode(drawnNM int) Node {
	n, err := t.ByNode(drawnNM)
	if err != nil {
		panic(err)
	}
	return n
}

// Nearest returns the tabulated node whose drawn feature size is closest to
// the given one (ties go to the larger node). Scenario resolution uses it to
// seed extension nodes from their closest transcribed neighbour.
func (t *Table) Nearest(drawnNM int) Node {
	best := t.nodes[0]
	for _, n := range t.nodes[1:] {
		if abs(n.DrawnNM-drawnNM) < abs(best.DrawnNM-drawnNM) {
			best = n
		}
	}
	return best
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Validate applies physical sanity bounds to one node. The bounds are wide —
// they admit any plausible CMOS roadmap entry, including aggressive what-if
// corners — but reject values that would push the device and solver stacks
// outside their validated regimes (negative geometry, kV supplies, …).
func (n Node) Validate() error {
	type bound struct {
		name     string
		v        float64
		lo, hi   float64
		required bool
	}
	checks := []bound{
		{"drawn feature size (nm)", float64(n.DrawnNM), 10, 1000, true},
		{"year", float64(n.Year), 1990, 2100, true},
		{"Vdd (V)", n.Vdd, 0.2, 5, true},
		{"alternate Vdd (V)", n.VddAlt, 0.2, 5, false},
		{"physical Tox (m)", n.ToxPhysicalM, 0.2e-9, 20e-9, true},
		{"Leff (m)", n.LeffM, 3e-9, 500e-9, true},
		{"Rs (Ω·m)", n.RsOhmM, 0, 2e-3, false},
		{"Ion target (A/m)", n.IonTargetAPerM, 50, 5000, true},
		{"ITRS Ioff (A/m)", n.IoffITRSAPerM, 0, 100, false},
		{"junction temperature (°C)", n.JunctionTempC, 25, 250, true},
		{"ambient temperature (°C)", n.AmbientTempC, -60, n.JunctionTempC, true},
		{"θja (°C/W)", n.ThetaJA, 0.01, 100, true},
		{"max power (W)", n.MaxPowerW, 0.001, 10e3, true},
		{"die area (m²)", n.DieAreaM2, 1e-7, 1e-2, true},
		{"global clock (Hz)", n.ClockHz, 1e6, 1e12, true},
		{"local clock (Hz)", n.LocalClockHz, 1e6, 1e12, true},
		{"total pads", float64(n.TotalPads), 4, 1e6, true},
		{"power-bump fraction", n.PowerBumpFraction, 0.01, 1, true},
		{"min bump pitch (m)", n.BumpPitchMinM, 1e-6, 10e-3, true},
		{"max bump current (A)", n.BumpMaxCurrentA, 1e-4, 100, true},
		{"top-metal min width (m)", n.TopMetalMinWidthM, 5e-9, 100e-6, true},
		{"top-metal thickness (m)", n.TopMetalThicknessM, 5e-9, 100e-6, true},
		{"global wire pitch (m)", n.WirePitchGlobalM, 10e-9, 100e-6, true},
		{"local wire pitch (m)", n.WirePitchLocalM, 5e-9, 100e-6, true},
		{"logic transistors (millions)", n.LogicTransistorsM, 0.01, 1e6, true},
	}
	for _, c := range checks {
		if !c.required && c.v == 0 {
			continue
		}
		if c.v < c.lo || c.v > c.hi || c.v != c.v {
			return fmt.Errorf("node %d nm: %s = %g outside [%g, %g]", n.DrawnNM, c.name, c.v, c.lo, c.hi)
		}
	}
	if n.LocalClockHz < n.ClockHz {
		return fmt.Errorf("node %d nm: local clock %g Hz below global clock %g Hz", n.DrawnNM, n.LocalClockHz, n.ClockHz)
	}
	return nil
}
