package itrs_test

import (
	"fmt"

	"nanometer/internal/itrs"
)

// The paper's §4 arithmetic: the 35 nm ITRS pad plan implies a 356 µm
// effective power-bump pitch against an attainable 80 µm, and its standby
// allowance reaches 30 A.
func ExampleNode() {
	n := itrs.MustNode(35)
	fmt.Printf("effective pitch %.0f µm (attainable %.0f µm); standby allowance %.1f A\n",
		n.EffectiveBumpPitchM()*1e6, n.BumpPitchMinM*1e6, n.StandbyCurrentAllowanceA())
	// Output:
	// effective pitch 356 µm (attainable 80 µm); standby allowance 30.5 A
}

// Synthesize a between-nodes design point from the roadmap.
func ExampleInterpolatedNode() {
	n, err := itrs.InterpolatedNode(2003)
	if err != nil {
		panic(err)
	}
	fmt.Printf("between 130 and 100 nm: %v; Vdd between 1.5 and 1.2 V: %v\n",
		n.DrawnNM < 130 && n.DrawnNM > 100, n.Vdd < 1.5 && n.Vdd > 1.2)
	// Output:
	// between 130 and 100 nm: true; Vdd between 1.5 and 1.2 V: true
}
