package itrs

import (
	"math"
	"testing"
)

func TestRoadmapCoverage(t *testing.T) {
	rm := Roadmap()
	if len(rm) != 6 {
		t.Fatalf("roadmap has %d nodes, want 6 (180→35 nm)", len(rm))
	}
	want := []int{180, 130, 100, 70, 50, 35}
	for i, n := range rm {
		if n.DrawnNM != want[i] {
			t.Fatalf("node %d is %d nm, want %d", i, n.DrawnNM, want[i])
		}
	}
}

func TestRoadmapMonotoneTrends(t *testing.T) {
	rm := Roadmap()
	for i := 1; i < len(rm); i++ {
		prev, cur := rm[i-1], rm[i]
		if cur.Vdd > prev.Vdd {
			t.Errorf("%d nm: Vdd must not rise with scaling (%g > %g)", cur.DrawnNM, cur.Vdd, prev.Vdd)
		}
		if cur.ToxPhysicalM >= prev.ToxPhysicalM {
			t.Errorf("%d nm: Tox must shrink", cur.DrawnNM)
		}
		if cur.LeffM >= prev.LeffM {
			t.Errorf("%d nm: Leff must shrink", cur.DrawnNM)
		}
		if cur.ClockHz <= prev.ClockHz {
			t.Errorf("%d nm: clock must rise", cur.DrawnNM)
		}
		if cur.IoffITRSAPerM <= prev.IoffITRSAPerM {
			t.Errorf("%d nm: ITRS Ioff projection must rise", cur.DrawnNM)
		}
		if cur.TotalPads <= prev.TotalPads {
			t.Errorf("%d nm: pad count must rise", cur.DrawnNM)
		}
		if cur.BumpPitchMinM >= prev.BumpPitchMinM {
			t.Errorf("%d nm: minimum bump pitch must shrink", cur.DrawnNM)
		}
		if cur.ThetaJA >= prev.ThetaJA {
			t.Errorf("%d nm: required θja must shrink", cur.DrawnNM)
		}
	}
}

func TestRoadmapPaperAnchors(t *testing.T) {
	// Values the paper quotes directly.
	n35 := MustNode(35)
	if n35.BumpPitchMinM != 80e-6 {
		t.Errorf("35 nm min bump pitch = %g, paper says 80 µm", n35.BumpPitchMinM)
	}
	if n35.TotalPads != 4416 {
		t.Errorf("35 nm pads = %d, paper says 4416", n35.TotalPads)
	}
	if got := n35.VddBumps(); got < 1400 || got > 1600 {
		t.Errorf("35 nm Vdd bumps = %d, paper says ~1500", got)
	}
	// Effective power-bump pitch ≈ 356 µm.
	if got := n35.EffectiveBumpPitchM(); math.Abs(got-356e-6) > 15e-6 {
		t.Errorf("35 nm effective bump pitch = %.0f µm, paper says 356 µm", got*1e6)
	}
	// Worst-case supply current ≈ 300 A.
	if got := n35.SupplyCurrentA(); got < 280 || got < 0 || got > 330 {
		t.Errorf("35 nm supply current = %g A, paper says ~300 A", got)
	}
	// Standby allowance ≈ 30 A.
	if got := n35.StandbyCurrentAllowanceA(); got < 25 || got > 35 {
		t.Errorf("35 nm standby allowance = %g A, paper says 30 A", got)
	}
	// ITRS Ioff projections of Table 2: 7, 10, 16, 40, 80, 160 nA/µm.
	wantIoff := map[int]float64{180: 7e-3, 130: 10e-3, 100: 16e-3, 70: 40e-3, 50: 80e-3, 35: 160e-3}
	for nm, want := range wantIoff {
		if got := MustNode(nm).IoffITRSAPerM; math.Abs(got-want) > 1e-9 {
			t.Errorf("%d nm ITRS Ioff = %g, want %g A/m", nm, got, want)
		}
	}
	// Junction temperature drops from 100 °C (1999) to 85 °C.
	if MustNode(180).JunctionTempC != 100 || MustNode(130).JunctionTempC != 85 {
		t.Errorf("junction temperature roadmap does not match the ITRS reduction")
	}
	// θja reaches 0.25 °C/W "in 3 years" (the 50 nm column carries it).
	if MustNode(50).ThetaJA != 0.25 {
		t.Errorf("50 nm θja = %g, want 0.25", MustNode(50).ThetaJA)
	}
}

func TestPowerDensityDipAt35(t *testing.T) {
	// The paper: "35 nm is less restricted than 50 nm due to a reduction in
	// power density" — area jumps ~15 % while power is nearly flat.
	d50 := MustNode(50).PowerDensityWPerM2()
	d35 := MustNode(35).PowerDensityWPerM2()
	if d35 >= d50 {
		t.Fatalf("power density must dip at 35 nm: %g ≥ %g", d35, d50)
	}
	areaRatio := MustNode(35).DieAreaM2 / MustNode(50).DieAreaM2
	if areaRatio < 1.10 || areaRatio > 1.20 {
		t.Fatalf("35 nm area jump = %.0f%%, paper says ~15%%", (areaRatio-1)*100)
	}
}

func TestByNode(t *testing.T) {
	if _, err := ByNode(90); err == nil {
		t.Fatalf("unknown node must error")
	}
	n, err := ByNode(70)
	if err != nil || n.DrawnNM != 70 {
		t.Fatalf("ByNode(70) = %+v, %v", n, err)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("MustNode must panic on unknown nodes")
		}
	}()
	MustNode(65)
}

func TestNodesOrder(t *testing.T) {
	ns := Nodes()
	for i := 1; i < len(ns); i++ {
		if ns[i] >= ns[i-1] {
			t.Fatalf("Nodes() must be descending: %v", ns)
		}
	}
}

func TestVddAltOnlyAt50(t *testing.T) {
	for _, n := range Roadmap() {
		if n.DrawnNM == 50 {
			if n.VddAlt != 0.7 {
				t.Fatalf("50 nm VddAlt = %g, want 0.7 (the paper's realistic supply)", n.VddAlt)
			}
			continue
		}
		if n.VddAlt != 0 {
			t.Fatalf("%d nm has unexpected VddAlt %g", n.DrawnNM, n.VddAlt)
		}
	}
}

func TestTopMetalSheetResistance(t *testing.T) {
	for _, n := range Roadmap() {
		rs := n.TopMetalSheetOhms()
		if rs <= 0 || rs > 1 {
			t.Fatalf("%d nm sheet resistance %g Ω/sq out of range", n.DrawnNM, rs)
		}
	}
	// Thinner top metal at finer nodes → higher sheet resistance.
	if MustNode(35).TopMetalSheetOhms() <= MustNode(180).TopMetalSheetOhms() {
		t.Fatalf("sheet resistance must rise with scaling")
	}
}

func TestTable1Dataset(t *testing.T) {
	pub := Table1Published()
	if len(pub) != 6 {
		t.Fatalf("Table 1 has %d published rows, want 6", len(pub))
	}
	for _, d := range pub {
		if d.MeetsITRSSub1V() {
			t.Errorf("%s claims sub-1V + Ion target — the paper's point is that none do", d.Ref)
		}
		if d.Vdd <= 0 || d.IonUAPerUM <= 0 {
			t.Errorf("%s has invalid data", d.Ref)
		}
	}
	its := Table1ITRS()
	if len(its) != 3 {
		t.Fatalf("Table 1 has %d ITRS rows, want 3", len(its))
	}
	for _, r := range its {
		if r.IonUAPerUM != 750 {
			t.Errorf("ITRS %d nm Ion target = %g, want 750", r.NodeNM, r.IonUAPerUM)
		}
	}
}

func TestDynamicPowerPenalty(t *testing.T) {
	// 1.2 V vs 0.9 V → (1.2/0.9)² − 1 = 77.8 %.
	d := PublishedDevice{Vdd: 1.2}
	if got := d.DynamicPowerPenalty(0.9); math.Abs(got-0.778) > 0.001 {
		t.Fatalf("penalty = %g, want ≈0.778 (the paper's 78%%)", got)
	}
}
