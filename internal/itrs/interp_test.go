package itrs

import (
	"math"
	"testing"
	"testing/quick"
)

func TestInterpolatedNodeHitsTabulatedYears(t *testing.T) {
	for _, n := range Roadmap() {
		got, err := InterpolatedNode(float64(n.Year))
		if err != nil {
			t.Fatalf("year %d: %v", n.Year, err)
		}
		if got.DrawnNM != n.DrawnNM {
			t.Errorf("year %d: drawn %d, want %d", n.Year, got.DrawnNM, n.DrawnNM)
		}
		if math.Abs(got.Vdd-n.Vdd) > 1e-9 {
			t.Errorf("year %d: Vdd %g, want %g", n.Year, got.Vdd, n.Vdd)
		}
		if math.Abs(got.LeffM-n.LeffM)/n.LeffM > 1e-9 {
			t.Errorf("year %d: Leff %g, want %g", n.Year, got.LeffM, n.LeffM)
		}
		if math.Abs(got.ClockHz-n.ClockHz)/n.ClockHz > 1e-9 {
			t.Errorf("year %d: clock %g, want %g", n.Year, got.ClockHz, n.ClockHz)
		}
	}
}

func TestInterpolatedNodeMidpoints(t *testing.T) {
	// The 2003 synthetic node lies strictly between 130 nm (2002) and
	// 100 nm (2005) on every monotone axis.
	mid, err := InterpolatedNode(2003)
	if err != nil {
		t.Fatal(err)
	}
	n130, n100 := MustNode(130), MustNode(100)
	if !(mid.DrawnNM < n130.DrawnNM && mid.DrawnNM > n100.DrawnNM) {
		t.Errorf("drawn %d not between %d and %d", mid.DrawnNM, n130.DrawnNM, n100.DrawnNM)
	}
	if !(mid.Vdd <= n130.Vdd && mid.Vdd >= n100.Vdd) {
		t.Errorf("Vdd %g out of band", mid.Vdd)
	}
	if !(mid.ClockHz > n130.ClockHz && mid.ClockHz < n100.ClockHz) {
		t.Errorf("clock %g out of band", mid.ClockHz)
	}
	if !(mid.IoffITRSAPerM > n130.IoffITRSAPerM && mid.IoffITRSAPerM < n100.IoffITRSAPerM) {
		t.Errorf("Ioff projection %g out of band", mid.IoffITRSAPerM)
	}
}

func TestInterpolatedNodeBounds(t *testing.T) {
	if _, err := InterpolatedNode(1995); err == nil {
		t.Fatalf("pre-roadmap year must error")
	}
	if _, err := InterpolatedNode(2020); err == nil {
		t.Fatalf("post-roadmap year must error")
	}
}

// Property: every interpolated year yields physically sane parameters.
func TestInterpolatedNodeSanity(t *testing.T) {
	f := func(seed uint8) bool {
		year := 1999 + float64(seed)/255*15 // [1999, 2014]
		n, err := InterpolatedNode(year)
		if err != nil {
			return false
		}
		const eps = 1e-9 // log/exp round-trips wobble at the last ulp
		return n.Vdd > 0 && n.Vdd <= 1.8*(1+eps) &&
			n.LeffM > 0 && n.LeffM <= 100e-9*(1+eps) &&
			n.ToxPhysicalM > 0 &&
			n.ClockHz >= 1.2e9*(1-eps) && n.ClockHz <= 13.5e9*(1+eps) &&
			n.MaxPowerW >= 90*(1-eps) && n.MaxPowerW <= 183*(1+eps) &&
			n.PowerDensityWPerM2() > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
