package itrs

// PublishedDevice is one row of the paper's Table 1: a recent (as of 2001)
// advanced-CMOS NMOS result from the device literature, compared against the
// ITRS projections for the nearest node.
type PublishedDevice struct {
	// Ref is the paper's bracketed reference number.
	Ref string
	// Source is a short citation.
	Source string
	// ITRSNodeNM is the ITRS node the result is closest to; 0 when the paper
	// lists a range (see NodeRangeNM).
	ITRSNodeNM int
	// NodeRangeNM covers entries like "50-70".
	NodeRangeNM [2]int
	// ToxAngstrom is the reported oxide thickness in Å; Electrical reports
	// whether the value is the electrical (inversion) thickness rather than
	// the physical one.
	ToxAngstrom float64
	Electrical  bool
	// Vdd is the supply the currents were reported at (V).
	Vdd float64
	// IonUAPerUM is the NMOS drive current in µA/µm.
	IonUAPerUM float64
	// IoffNAPerUM is the NMOS off current in nA/µm.
	IoffNAPerUM float64
}

// Table1Published returns the published-device rows of Table 1.
func Table1Published() []PublishedDevice {
	return []PublishedDevice{
		{Ref: "[24]", Source: "Chau et al., IEDM 2000 (30 nm gate)", NodeRangeNM: [2]int{50, 70}, ToxAngstrom: 18, Electrical: false, Vdd: 0.85, IonUAPerUM: 514, IoffNAPerUM: 100},
		{Ref: "[25]", Source: "Song et al., IEDM 2000", ITRSNodeNM: 100, ToxAngstrom: 21, Electrical: false, Vdd: 1.2, IonUAPerUM: 860, IoffNAPerUM: 10},
		{Ref: "[26]", Source: "Wakabayashi et al., IEDM 2000 (45 nm gate)", ITRSNodeNM: 70, ToxAngstrom: 25, Electrical: false, Vdd: 1.2, IonUAPerUM: 697, IoffNAPerUM: 10},
		{Ref: "[27]", Source: "Mehrotra et al., IEDM 1999", ITRSNodeNM: 100, ToxAngstrom: 27, Electrical: false, Vdd: 1.2, IonUAPerUM: 800, IoffNAPerUM: 10},
		{Ref: "[28]", Source: "Yang et al., IEDM 1999 (sub-60 nm SOI)", ITRSNodeNM: 70, ToxAngstrom: 32, Electrical: false, Vdd: 1.2, IonUAPerUM: 650, IoffNAPerUM: 3},
		{Ref: "[29]", Source: "Ono et al., VLSI 2000 (70 nm gate, 1.0 V)", ITRSNodeNM: 100, ToxAngstrom: 13, Electrical: false, Vdd: 1.0, IonUAPerUM: 723, IoffNAPerUM: 16},
	}
}

// ITRSTable1Row is an ITRS-projection row of Table 1.
type ITRSTable1Row struct {
	NodeNM        int
	ToxAngstromLo float64
	ToxAngstromHi float64
	Vdd           float64
	IonUAPerUM    float64
	IoffNAPerUM   float64
}

// Table1ITRS returns the ITRS comparison rows of Table 1.
func Table1ITRS() []ITRSTable1Row {
	return []ITRSTable1Row{
		{NodeNM: 100, ToxAngstromLo: 12, ToxAngstromHi: 15, Vdd: 1.2, IonUAPerUM: 750, IoffNAPerUM: 13},
		{NodeNM: 70, ToxAngstromLo: 8, ToxAngstromHi: 12, Vdd: 0.9, IonUAPerUM: 750, IoffNAPerUM: 40},
		{NodeNM: 50, ToxAngstromLo: 6, ToxAngstromHi: 8, Vdd: 0.6, IonUAPerUM: 750, IoffNAPerUM: 80},
	}
}

// MeetsITRSSub1V reports whether a published device demonstrates the ITRS
// targets at a sub-1 V supply — the paper's Table 1 take-away is that none
// do: every published device needing ≥ 750 µA/µm runs at 1.2 V.
func (d PublishedDevice) MeetsITRSSub1V() bool {
	return d.Vdd < 1.0 && d.IonUAPerUM >= 750
}

// DynamicPowerPenalty returns the relative dynamic-power increase of running
// at the published Vdd instead of the ITRS supply for the node (Vdd² ratio
// minus 1). For the 70 nm devices reported at 1.2 V instead of 0.9 V this is
// the paper's 78 % figure.
func (d PublishedDevice) DynamicPowerPenalty(itrsVdd float64) float64 {
	r := d.Vdd / itrsVdd
	return r*r - 1
}
