package itrs

import (
	"fmt"
	"math"

	"nanometer/internal/mathx"
)

// InterpolatedNode synthesizes roadmap parameters for an arbitrary year
// between the tabulated nodes, interpolating geometric quantities on a log
// scale (feature sizes shrink exponentially with time) and electrical ones
// linearly. The DrawnNM of the result is the rounded interpolated feature
// size; it is not guaranteed to match a tabulated node.
func InterpolatedNode(year float64) (Node, error) {
	rm := Roadmap()
	first, last := rm[0], rm[len(rm)-1]
	if year < float64(first.Year) || year > float64(last.Year) {
		return Node{}, fmt.Errorf("itrs: year %.0f outside the roadmap [%d, %d]", year, first.Year, last.Year)
	}
	years := make([]float64, len(rm))
	for i, n := range rm {
		years[i] = float64(n.Year)
	}
	logInterp := func(get func(Node) float64) float64 {
		ys := make([]float64, len(rm))
		for i, n := range rm {
			ys[i] = math.Log(get(n))
		}
		in, err := mathx.NewInterpolator(years, ys)
		if err != nil {
			panic(err) // years are strictly increasing by construction
		}
		return math.Exp(in.At(year))
	}
	linInterp := func(get func(Node) float64) float64 {
		ys := make([]float64, len(rm))
		for i, n := range rm {
			ys[i] = get(n)
		}
		in, err := mathx.NewInterpolator(years, ys)
		if err != nil {
			panic(err)
		}
		return in.At(year)
	}
	n := Node{
		DrawnNM: int(math.Round(logInterp(func(n Node) float64 { return float64(n.DrawnNM) }))),
		Year:    int(math.Round(year)),

		Vdd:          linInterp(func(n Node) float64 { return n.Vdd }),
		ToxPhysicalM: logInterp(func(n Node) float64 { return n.ToxPhysicalM }),
		LeffM:        logInterp(func(n Node) float64 { return n.LeffM }),
		RsOhmM:       linInterp(func(n Node) float64 { return n.RsOhmM }),

		IonTargetAPerM: linInterp(func(n Node) float64 { return n.IonTargetAPerM }),
		IoffITRSAPerM:  logInterp(func(n Node) float64 { return n.IoffITRSAPerM }),

		JunctionTempC: linInterp(func(n Node) float64 { return n.JunctionTempC }),
		AmbientTempC:  linInterp(func(n Node) float64 { return n.AmbientTempC }),
		ThetaJA:       linInterp(func(n Node) float64 { return n.ThetaJA }),

		MaxPowerW:    linInterp(func(n Node) float64 { return n.MaxPowerW }),
		DieAreaM2:    linInterp(func(n Node) float64 { return n.DieAreaM2 }),
		ClockHz:      logInterp(func(n Node) float64 { return n.ClockHz }),
		LocalClockHz: logInterp(func(n Node) float64 { return n.LocalClockHz }),

		TotalPads:         int(math.Round(linInterp(func(n Node) float64 { return float64(n.TotalPads) }))),
		PowerBumpFraction: linInterp(func(n Node) float64 { return n.PowerBumpFraction }),
		BumpPitchMinM:     logInterp(func(n Node) float64 { return n.BumpPitchMinM }),
		BumpMaxCurrentA:   linInterp(func(n Node) float64 { return n.BumpMaxCurrentA }),

		TopMetalMinWidthM:  logInterp(func(n Node) float64 { return n.TopMetalMinWidthM }),
		TopMetalThicknessM: logInterp(func(n Node) float64 { return n.TopMetalThicknessM }),
		WirePitchGlobalM:   logInterp(func(n Node) float64 { return n.WirePitchGlobalM }),
		WirePitchLocalM:    logInterp(func(n Node) float64 { return n.WirePitchLocalM }),

		LogicTransistorsM: logInterp(func(n Node) float64 { return n.LogicTransistorsM }),
	}
	return n, nil
}
