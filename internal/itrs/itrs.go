// Package itrs carries the ITRS-2000-update roadmap parameters the paper
// drives its models with, plus the published-device dataset of Table 1.
//
// The original roadmap (http://public.itrs.net, 2000 update) is no longer
// hosted; the values here are transcribed from the numbers the paper itself
// quotes wherever it quotes them (Vdd, Tox ranges, Ion/Ioff targets, junction
// temperatures, θja, bump pitch and counts, standby-current allowance) and
// filled with contemporaneous ITRS-1999/2000 values elsewhere (die area,
// clock rate, top-metal geometry). DESIGN.md §2 records this substitution.
package itrs

import (
	"fmt"
	"math"
	"sort"
)

// Node describes one technology node of the roadmap. Geometric quantities
// are in SI units (meters); currents per width in A/m (numerically equal to
// µA/µm); temperatures in °C where suffixed C.
type Node struct {
	// DrawnNM is the node name: drawn feature size in nanometers.
	DrawnNM int
	// Year is the ITRS production year for the node.
	Year int

	// Vdd is the nominal supply voltage in volts. VddAlt, when non-zero, is
	// the alternative supply the paper analyzes (0.7 V at the 50 nm node,
	// where it argues 0.6 V is unrealistic).
	Vdd    float64
	VddAlt float64

	// ToxPhysicalM is the physical gate-oxide thickness in meters (midpoint
	// of the ITRS range the paper quotes in Table 1).
	ToxPhysicalM float64
	// LeffM is the effective (final, as-etched) channel length in meters.
	LeffM float64
	// RsOhmM is the parasitic source resistance normalized to width (Ω·m);
	// the paper sets this "according to [1]" (the ITRS).
	RsOhmM float64

	// IonTargetAPerM is the ITRS NMOS saturation drive-current target
	// (750 µA/µm throughout the roadmap) in A/m.
	IonTargetAPerM float64
	// IoffITRSAPerM is the ITRS off-current projection in A/m (Table 2,
	// "ITRS Ioff projections" row).
	IoffITRSAPerM float64

	// JunctionTempC is the maximum junction temperature the roadmap allows.
	JunctionTempC float64
	// AmbientTempC is the assumed ambient (outside-package) temperature.
	AmbientTempC float64
	// ThetaJA is the required junction-to-ambient thermal resistance, °C/W.
	ThetaJA float64

	// MaxPowerW is the maximum MPU power dissipation (heat-sunk, high-
	// performance desktop class).
	MaxPowerW float64
	// DieAreaM2 is the MPU die area in m².
	DieAreaM2 float64
	// ClockHz is the across-chip (global) clock frequency target.
	ClockHz float64
	// LocalClockHz is the peak local (datapath) clock frequency target.
	LocalClockHz float64

	// TotalPads is the ITRS total pad/bump count projection for the node;
	// PowerBumpFraction of them carry Vdd or GND (split evenly).
	TotalPads         int
	PowerBumpFraction float64
	// BumpPitchMinM is the minimum attainable area-array bump pitch.
	BumpPitchMinM float64
	// BumpMaxCurrentA is the ITRS per-bump sustainable current projection.
	BumpMaxCurrentA float64

	// Top-level (global) metal geometry.
	TopMetalMinWidthM  float64
	TopMetalThicknessM float64
	// WirePitchGlobalM is the minimum global-tier wire pitch.
	WirePitchGlobalM float64
	// WirePitchLocalM is the minimum local-tier wire pitch.
	WirePitchLocalM float64

	// LogicTransistorsM is the logic transistor count in millions,
	// used by the repeater-census and power-extrapolation models.
	LogicTransistorsM float64
}

// Roadmap returns the six-node roadmap the paper spans, ordered from the
// 180 nm node down to 35 nm. The returned slice is freshly allocated; the
// caller may mutate it.
func Roadmap() []Node {
	return []Node{
		{
			DrawnNM: 180, Year: 1999,
			Vdd: 1.8, ToxPhysicalM: 3.0e-9, LeffM: 100e-9, RsOhmM: 190e-6,
			IonTargetAPerM: 750, IoffITRSAPerM: 7e-3,
			JunctionTempC: 100, AmbientTempC: 45, ThetaJA: 0.80,
			MaxPowerW: 90, DieAreaM2: 3.00e-4, ClockHz: 1.2e9, LocalClockHz: 1.25e9,
			TotalPads: 1900, PowerBumpFraction: 0.68, BumpPitchMinM: 160e-6, BumpMaxCurrentA: 0.18,
			TopMetalMinWidthM: 0.50e-6, TopMetalThicknessM: 1.00e-6,
			WirePitchGlobalM: 1.00e-6, WirePitchLocalM: 0.46e-6,
			LogicTransistorsM: 24,
		},
		{
			DrawnNM: 130, Year: 2002,
			Vdd: 1.5, ToxPhysicalM: 1.9e-9, LeffM: 70e-9, RsOhmM: 180e-6,
			IonTargetAPerM: 750, IoffITRSAPerM: 10e-3,
			JunctionTempC: 85, AmbientTempC: 45, ThetaJA: 0.50,
			MaxPowerW: 130, DieAreaM2: 3.10e-4, ClockHz: 2.1e9, LocalClockHz: 2.3e9,
			TotalPads: 2300, PowerBumpFraction: 0.68, BumpPitchMinM: 140e-6, BumpMaxCurrentA: 0.17,
			TopMetalMinWidthM: 0.40e-6, TopMetalThicknessM: 0.85e-6,
			WirePitchGlobalM: 0.80e-6, WirePitchLocalM: 0.34e-6,
			LogicTransistorsM: 48,
		},
		{
			DrawnNM: 100, Year: 2005,
			Vdd: 1.2, ToxPhysicalM: 1.35e-9, LeffM: 50e-9, RsOhmM: 170e-6,
			IonTargetAPerM: 750, IoffITRSAPerM: 16e-3,
			JunctionTempC: 85, AmbientTempC: 45, ThetaJA: 0.35,
			MaxPowerW: 160, DieAreaM2: 3.20e-4, ClockHz: 3.5e9, LocalClockHz: 4.0e9,
			TotalPads: 2700, PowerBumpFraction: 0.68, BumpPitchMinM: 120e-6, BumpMaxCurrentA: 0.16,
			TopMetalMinWidthM: 0.32e-6, TopMetalThicknessM: 0.70e-6,
			WirePitchGlobalM: 0.60e-6, WirePitchLocalM: 0.24e-6,
			LogicTransistorsM: 95,
		},
		{
			DrawnNM: 70, Year: 2008,
			Vdd: 0.9, ToxPhysicalM: 1.0e-9, LeffM: 36e-9, RsOhmM: 160e-6,
			IonTargetAPerM: 750, IoffITRSAPerM: 40e-3,
			JunctionTempC: 85, AmbientTempC: 45, ThetaJA: 0.30,
			MaxPowerW: 170, DieAreaM2: 3.20e-4, ClockHz: 6.0e9, LocalClockHz: 7.0e9,
			TotalPads: 3200, PowerBumpFraction: 0.68, BumpPitchMinM: 100e-6, BumpMaxCurrentA: 0.15,
			TopMetalMinWidthM: 0.25e-6, TopMetalThicknessM: 0.55e-6,
			WirePitchGlobalM: 0.45e-6, WirePitchLocalM: 0.17e-6,
			LogicTransistorsM: 190,
		},
		{
			DrawnNM: 50, Year: 2011,
			Vdd: 0.6, VddAlt: 0.7, ToxPhysicalM: 0.7e-9, LeffM: 25e-9, RsOhmM: 150e-6,
			IonTargetAPerM: 750, IoffITRSAPerM: 80e-3,
			JunctionTempC: 85, AmbientTempC: 45, ThetaJA: 0.25,
			MaxPowerW: 174, DieAreaM2: 3.30e-4, ClockHz: 10.0e9, LocalClockHz: 12.0e9,
			TotalPads: 3900, PowerBumpFraction: 0.68, BumpPitchMinM: 90e-6, BumpMaxCurrentA: 0.14,
			TopMetalMinWidthM: 0.12e-6, TopMetalThicknessM: 0.24e-6,
			WirePitchGlobalM: 0.32e-6, WirePitchLocalM: 0.12e-6,
			LogicTransistorsM: 380,
		},
		{
			DrawnNM: 35, Year: 2014,
			Vdd: 0.6, ToxPhysicalM: 0.6e-9, LeffM: 18e-9, RsOhmM: 140e-6,
			IonTargetAPerM: 750, IoffITRSAPerM: 160e-3,
			JunctionTempC: 85, AmbientTempC: 45, ThetaJA: 0.20,
			MaxPowerW: 183, DieAreaM2: 3.80e-4, ClockHz: 13.5e9, LocalClockHz: 16.0e9,
			TotalPads: 4416, PowerBumpFraction: 0.68, BumpPitchMinM: 80e-6, BumpMaxCurrentA: 0.13,
			TopMetalMinWidthM: 0.10e-6, TopMetalThicknessM: 0.20e-6,
			WirePitchGlobalM: 0.24e-6, WirePitchLocalM: 0.08e-6,
			LogicTransistorsM: 770,
		},
	}
}

// ByNode returns the roadmap entry for the given drawn feature size.
func ByNode(drawnNM int) (Node, error) {
	for _, n := range Roadmap() {
		if n.DrawnNM == drawnNM {
			return n, nil
		}
	}
	return Node{}, fmt.Errorf("itrs: no roadmap entry for %d nm", drawnNM)
}

// MustNode is ByNode for known-good literals; it panics on unknown nodes.
func MustNode(drawnNM int) Node {
	n, err := ByNode(drawnNM)
	if err != nil {
		panic(err)
	}
	return n
}

// Nodes returns the drawn feature sizes of the roadmap in descending order
// (180 → 35).
func Nodes() []int {
	rm := Roadmap()
	out := make([]int, len(rm))
	for i, n := range rm {
		out[i] = n.DrawnNM
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// PowerDensityWPerM2 returns the uniform-assumption power density of the
// node's MPU (max power over die area).
func (n Node) PowerDensityWPerM2() float64 { return n.MaxPowerW / n.DieAreaM2 }

// SupplyCurrentA returns the worst-case supply current P/Vdd.
func (n Node) SupplyCurrentA() float64 { return n.MaxPowerW / n.Vdd }

// PowerBumps returns the number of bumps carrying Vdd or GND.
func (n Node) PowerBumps() int {
	return int(float64(n.TotalPads) * n.PowerBumpFraction)
}

// VddBumps returns the number of Vdd bumps (half the power bumps).
func (n Node) VddBumps() int { return n.PowerBumps() / 2 }

// EffectiveBumpPitchM returns the power-bump pitch implied by the ITRS pad
// counts: the pitch of a uniform array of PowerBumps() bumps over the die.
// The paper contrasts this (≈356 µm at 35 nm) with the minimum attainable
// pitch (80 µm).
func (n Node) EffectiveBumpPitchM() float64 {
	p := n.PowerBumps()
	if p <= 0 {
		return 0
	}
	return sqrt(n.DieAreaM2 / float64(p))
}

// TopMetalSheetOhms returns the sheet resistance (Ω/square) of the top-level
// metal, assuming copper.
func (n Node) TopMetalSheetOhms() float64 {
	return copperResistivity / n.TopMetalThicknessM
}

// StandbyCurrentAllowanceA returns the standby current the ITRS static-power
// constraint (Pstatic ≤ 10 % of max power) permits: 0.1·P/Vdd. The paper
// notes this reaches 30 A at 35 nm.
func (n Node) StandbyCurrentAllowanceA() float64 {
	return 0.1 * n.MaxPowerW / n.Vdd
}

const copperResistivity = 2.2e-8 // Ω·m; see units.CopperResistivity

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
