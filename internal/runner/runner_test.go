package runner

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"testing"
)

// spinJobs builds n jobs whose completion order is scrambled by busy work so
// ordered emission is actually exercised (job i does more work than job i+1).
func spinJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job{
			ID: fmt.Sprintf("j%d", i),
			Run: func(w io.Writer) error {
				s := 0.0
				for k := 0; k < (n-i)*20000; k++ {
					s += float64(k)
				}
				_, err := fmt.Fprintf(w, "job %d (%.0f)\n", i, s)
				return err
			},
		}
	}
	return jobs
}

func TestRunToPreservesOrder(t *testing.T) {
	jobs := spinJobs(16)
	var serial, parallel bytes.Buffer
	if _, err := (Pool{Workers: 1}).RunTo(&serial, jobs); err != nil {
		t.Fatal(err)
	}
	if _, err := (Pool{Workers: 8}).RunTo(&parallel, jobs); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Fatalf("parallel output differs from serial:\n%q\nvs\n%q", parallel.String(), serial.String())
	}
	for i := 0; i < 16; i++ {
		want := fmt.Sprintf("job %d ", i)
		line := strings.Split(serial.String(), "\n")[i]
		if !strings.HasPrefix(line, want) {
			t.Fatalf("line %d = %q, want prefix %q", i, line, want)
		}
	}
}

func TestBoundedConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	jobs := make([]Job, 24)
	for i := range jobs {
		jobs[i] = Job{ID: fmt.Sprintf("j%d", i), Run: func(io.Writer) error {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			s := 0.0
			for k := 0; k < 50000; k++ {
				s += float64(k)
			}
			_ = s
			inFlight.Add(-1)
			return nil
		}}
	}
	Pool{Workers: workers}.Run(jobs)
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs, pool bound is %d", p, workers)
	}
}

func TestErrorsDoNotAbortOtherJobs(t *testing.T) {
	boom := errors.New("boom")
	jobs := []Job{
		{ID: "ok1", Run: func(w io.Writer) error { fmt.Fprintln(w, "one"); return nil }},
		{ID: "bad", Run: func(w io.Writer) error { fmt.Fprintln(w, "partial"); return boom }},
		{ID: "panics", Run: func(io.Writer) error { panic("kaboom") }},
		{ID: "ok2", Run: func(w io.Writer) error { fmt.Fprintln(w, "two"); return nil }},
	}
	var out bytes.Buffer
	results, err := Pool{Workers: 4}.RunTo(&out, jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Every job ran; partial output of the failed job is kept.
	if got := out.String(); got != "one\npartial\ntwo\n" {
		t.Fatalf("output = %q", got)
	}
	agg := Errs(results)
	if agg == nil {
		t.Fatal("expected aggregated errors")
	}
	if !errors.Is(agg, boom) {
		t.Fatalf("aggregate %v does not wrap the job error", agg)
	}
	for _, frag := range []string{"bad:", "panics:", "kaboom"} {
		if !strings.Contains(agg.Error(), frag) {
			t.Fatalf("aggregate %q missing %q", agg.Error(), frag)
		}
	}
	if results[0].Err != nil || results[3].Err != nil {
		t.Fatalf("healthy jobs must not inherit errors: %v, %v", results[0].Err, results[3].Err)
	}
}

func TestDefaultWorkerCount(t *testing.T) {
	if w := (Pool{}).workers(); w < 1 {
		t.Fatalf("default worker count %d", w)
	}
	if w := (Pool{Workers: -3}).workers(); w < 1 {
		t.Fatalf("negative Workers must fall back to NumCPU, got %d", w)
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, errors.New("sink closed")
	}
	f.after--
	return len(p), nil
}

func TestSinkErrorReported(t *testing.T) {
	jobs := spinJobs(4)
	_, err := Pool{Workers: 2}.RunTo(&failWriter{after: 1}, jobs)
	if err == nil || !strings.Contains(err.Error(), "sink closed") {
		t.Fatalf("sink failure not reported: %v", err)
	}
}
