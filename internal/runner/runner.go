// Package runner is the parallel execution engine of the reproduction
// harness. It runs independent jobs — tables, figures, claim groups — on a
// bounded worker pool while preserving the deterministic output order of a
// serial run: every job writes to its own buffer, and buffers are released
// to the sink strictly in submission order. One failed job does not abort
// the others; per-job errors are collected and reported together.
package runner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
)

// Job is one independent unit of work. Run writes the job's complete output
// to w (a private buffer, never shared between jobs) and returns an error on
// failure. Partial output written before the failure is still emitted, so a
// job that dies mid-figure shows exactly how far it got.
type Job struct {
	ID  string
	Run func(w io.Writer) error
}

// Result pairs a job with its captured output and outcome, in submission
// order.
type Result struct {
	ID     string
	Output []byte
	Err    error
}

// Pool executes jobs with at most Workers goroutines. Workers ≤ 0 selects
// runtime.NumCPU(). The zero value is ready to use.
type Pool struct {
	Workers int
}

func (p Pool) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.NumCPU()
}

// Run executes every job and returns the results in submission order. Job
// panics are recovered into errors so a crashing artifact cannot take down
// the remaining jobs.
func (p Pool) Run(jobs []Job) []Result {
	results, _ := p.RunTo(nil, jobs)
	return results
}

// RunTo is Run with streaming emission: each job's output is copied to sink
// as soon as the job and all jobs before it have finished, so the sink sees
// the exact byte sequence of a serial run regardless of worker count or
// completion order. A nil sink skips emission (output stays in the results).
// The returned error reports sink write failures only; per-job errors are in
// the results (aggregate them with Errs).
func (p Pool) RunTo(sink io.Writer, jobs []Job) ([]Result, error) {
	// Compat wrapper for the CLI path, which runs to completion by design;
	// cancelable callers use RunToContext.
	//lint:allow ctxflow uncancelable CLI compat shim over RunToContext
	return p.RunToContext(context.Background(), sink, jobs)
}

// RunToContext is RunTo with cancellation: jobs that have not started when
// ctx is canceled are skipped and record ctx's error instead of running.
// Jobs already executing run to completion (they hold gate/pool resources
// that must wind down normally), so a canceled run still returns one Result
// per job in submission order.
func (p Pool) RunToContext(ctx context.Context, sink io.Writer, jobs []Job) ([]Result, error) {
	n := len(jobs)
	results := make([]Result, n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}

	sem := make(chan struct{}, p.workers())
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer close(done[i])
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				results[i] = Result{ID: jobs[i].ID, Err: ctx.Err()}
				return
			}
			defer func() { <-sem }()
			// A cancel that lands between acquiring the slot and starting
			// the job also skips it: the slot was free, but the work is
			// unwanted.
			if err := ctx.Err(); err != nil {
				results[i] = Result{ID: jobs[i].ID, Err: err}
				return
			}
			var buf bytes.Buffer
			err := runJob(jobs[i], &buf)
			results[i] = Result{ID: jobs[i].ID, Output: buf.Bytes(), Err: err}
		}(i)
	}

	var sinkErr error
	for i := 0; i < n; i++ {
		<-done[i]
		if sink == nil || sinkErr != nil {
			continue
		}
		if _, err := sink.Write(results[i].Output); err != nil {
			// Keep draining the remaining jobs (they are already running)
			// but stop writing to a broken sink.
			sinkErr = fmt.Errorf("runner: writing output of %s: %w", results[i].ID, err)
		}
	}
	wg.Wait()
	return results, sinkErr
}

// runJob invokes the job with panic recovery.
func runJob(j Job, w io.Writer) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return j.Run(w)
}

// Errs aggregates the per-job failures of a run into a single error (nil if
// every job succeeded). Each failure keeps its job ID so the operator can
// re-run just the broken artifacts.
func Errs(results []Result) error {
	var errs []error
	for _, r := range results {
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", r.ID, r.Err))
		}
	}
	return errors.Join(errs...)
}
