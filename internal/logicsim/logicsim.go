// Package logicsim is a cycle-based two-value logic simulator for the
// netlist substrate. It exists to validate the probabilistic
// activity-propagation model in internal/power against measured toggle
// counts: random vectors drive the primary inputs, gates evaluate in
// topological order, and per-gate signal probabilities and toggle rates are
// accumulated.
package logicsim

import (
	"fmt"
	"math/rand"

	"nanometer/internal/gate"
	"nanometer/internal/netlist"
	"nanometer/internal/power"
)

// Result holds measured statistics per gate.
type Result struct {
	// Prob is the measured 1-probability of each gate output.
	Prob []float64
	// Activity is the measured toggle rate per cycle of each gate output.
	Activity []float64
	// Cycles is the number of simulated cycles.
	Cycles int
}

// Options tunes the simulation.
type Options struct {
	// Cycles is the vector count (default 4096).
	Cycles int
	// Seed fixes the stimulus.
	Seed int64
	// PIToggleProb is the per-cycle toggle probability of each primary
	// input; zero derives it from the circuit's PIActivity (toggle rate =
	// activity).
	PIToggleProb float64
}

// Simulate runs random stimulus through the circuit.
func Simulate(c *netlist.Circuit, opts Options) (*Result, error) {
	if opts.Cycles <= 0 {
		opts.Cycles = 4096
	}
	toggleP := opts.PIToggleProb
	if toggleP == 0 {
		toggleP = c.PIActivity
	}
	if toggleP <= 0 || toggleP > 1 {
		return nil, fmt.Errorf("logicsim: PI toggle probability %g outside (0,1]", toggleP)
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	n := len(c.Gates)
	pis := make([]bool, c.NumPIs)
	for i := range pis {
		pis[i] = rng.Float64() < 0.5
	}
	vals := make([]bool, n)
	prev := make([]bool, n)
	ones := make([]int, n)
	toggles := make([]int, n)

	eval := func() {
		for i := range c.Gates {
			g := &c.Gates[i]
			switch g.Kind {
			case gate.Inv:
				vals[i] = !input(c, g, 0, pis, vals)
			case gate.Nand:
				all := true
				for k := range g.Inputs {
					if !input(c, g, k, pis, vals) {
						all = false
						break
					}
				}
				vals[i] = !all
			case gate.Nor:
				any := false
				for k := range g.Inputs {
					if input(c, g, k, pis, vals) {
						any = true
						break
					}
				}
				vals[i] = !any
			}
		}
	}

	eval()
	copy(prev, vals)
	for cyc := 0; cyc < opts.Cycles; cyc++ {
		// Each PI toggles with probability toggleP — the random-telegraph
		// stimulus the analytical model assumes.
		for i := range pis {
			if rng.Float64() < toggleP {
				pis[i] = !pis[i]
			}
		}
		eval()
		for i := range vals {
			if vals[i] {
				ones[i]++
			}
			if vals[i] != prev[i] {
				toggles[i]++
			}
		}
		copy(prev, vals)
	}

	res := &Result{
		Prob:     make([]float64, n),
		Activity: make([]float64, n),
		Cycles:   opts.Cycles,
	}
	for i := 0; i < n; i++ {
		res.Prob[i] = float64(ones[i]) / float64(opts.Cycles)
		res.Activity[i] = float64(toggles[i]) / float64(opts.Cycles)
	}
	return res, nil
}

func input(c *netlist.Circuit, g *netlist.Gate, k int, pis, vals []bool) bool {
	ref := g.Inputs[k]
	if pi, ok := netlist.IsPI(ref); ok {
		return pis[pi]
	}
	return vals[ref]
}

// CompareWithModel runs the simulator and the analytical propagation and
// returns the mean absolute errors of probability and activity — the
// validation figure for the power model.
func CompareWithModel(c *netlist.Circuit, opts Options) (probMAE, actMAE float64, err error) {
	res, err := Simulate(c, opts)
	if err != nil {
		return 0, 0, err
	}
	// Fresh propagation on a clone so the caller's circuit is untouched.
	cp := c.Clone()
	power.PropagateActivity(cp)
	n := float64(len(c.Gates))
	for i := range c.Gates {
		probMAE += abs(res.Prob[i] - cp.Gates[i].Prob)
		actMAE += abs(res.Activity[i] - cp.Gates[i].Activity)
	}
	return probMAE / n, actMAE / n, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
