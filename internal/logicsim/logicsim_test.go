package logicsim

import (
	"math"
	"testing"

	"nanometer/internal/gate"
	"nanometer/internal/netlist"
)

func genCircuit(t *testing.T, gates int, seed int64) *netlist.Circuit {
	t.Helper()
	tech := netlist.MustNewTech(100, 0.65)
	p := netlist.DefaultGenParams()
	p.Gates = gates
	p.Seed = seed
	c, err := netlist.Generate(tech, p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestInverterChainExact(t *testing.T) {
	// An inverter chain propagates the PI toggle stream unchanged: every
	// gate's measured activity equals the PI toggle probability and the
	// probability sits at 0.5.
	tech := netlist.MustNewTech(100, 0.65)
	c := &netlist.Circuit{Tech: tech, NumPIs: 1, PIActivity: 0.2}
	for i := 0; i < 6; i++ {
		in := netlist.PI(0)
		if i > 0 {
			in = i - 1
		}
		c.Gates = append(c.Gates, netlist.Gate{ID: i, Kind: gate.Inv, Inputs: []int{in}, Size: 2})
	}
	c.Rebuild()
	res, err := Simulate(c, Options{Cycles: 20000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Gates {
		if math.Abs(res.Prob[i]-0.5) > 0.02 {
			t.Fatalf("gate %d probability = %g, want 0.5", i, res.Prob[i])
		}
		if math.Abs(res.Activity[i]-0.2) > 0.02 {
			t.Fatalf("gate %d activity = %g, want the PI toggle rate 0.2", i, res.Activity[i])
		}
	}
}

func TestNandTruthTable(t *testing.T) {
	// A NAND of two independent PIs spends 3/4 of the time at 1.
	tech := netlist.MustNewTech(100, 0.65)
	c := &netlist.Circuit{Tech: tech, NumPIs: 2, PIActivity: 0.5}
	c.Gates = []netlist.Gate{
		{ID: 0, Kind: gate.Nand, Inputs: []int{netlist.PI(0), netlist.PI(1)}, Size: 2},
		{ID: 1, Kind: gate.Nor, Inputs: []int{netlist.PI(0), netlist.PI(1)}, Size: 2},
	}
	c.Rebuild()
	res, err := Simulate(c, Options{Cycles: 40000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Prob[0]-0.75) > 0.02 {
		t.Fatalf("NAND probability = %g, want 0.75", res.Prob[0])
	}
	if math.Abs(res.Prob[1]-0.25) > 0.02 {
		t.Fatalf("NOR probability = %g, want 0.25", res.Prob[1])
	}
}

func TestModelValidation(t *testing.T) {
	// The headline: the analytical activity propagation tracks measured
	// simulation closely (reconvergent fanout correlation bounds it).
	c := genCircuit(t, 800, 3)
	probMAE, actMAE, err := CompareWithModel(c, Options{Cycles: 8192, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if probMAE > 0.04 {
		t.Fatalf("probability MAE = %g, model diverges from simulation", probMAE)
	}
	if actMAE > 0.06 {
		t.Fatalf("activity MAE = %g, model diverges from simulation", actMAE)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	c := genCircuit(t, 200, 4)
	a, err := Simulate(c, Options{Cycles: 1000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(c, Options{Cycles: 1000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Prob {
		if a.Prob[i] != b.Prob[i] || a.Activity[i] != b.Activity[i] {
			t.Fatalf("simulation must be deterministic per seed")
		}
	}
	other, err := Simulate(c, Options{Cycles: 1000, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Prob {
		if a.Prob[i] != other.Prob[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("different seeds should differ")
	}
}

func TestActivityScalesWithStimulus(t *testing.T) {
	c := genCircuit(t, 400, 5)
	slow, err := Simulate(c, Options{Cycles: 8000, Seed: 1, PIToggleProb: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Simulate(c, Options{Cycles: 8000, Seed: 1, PIToggleProb: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	var slowSum, fastSum float64
	for i := range slow.Activity {
		slowSum += slow.Activity[i]
		fastSum += fast.Activity[i]
	}
	if fastSum <= 2*slowSum {
		t.Fatalf("8× the stimulus must raise total activity substantially: %g vs %g", fastSum, slowSum)
	}
}

func TestSimulateErrors(t *testing.T) {
	c := genCircuit(t, 100, 6)
	if _, err := Simulate(c, Options{PIToggleProb: 1.5}); err == nil {
		t.Fatalf("bad toggle probability must error")
	}
	c.PIActivity = 0
	if _, err := Simulate(c, Options{}); err == nil {
		t.Fatalf("unset stimulus must error")
	}
}
