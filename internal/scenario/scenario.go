// Package scenario turns the fixed ITRS-2000 roadmap into a parameter: a
// Scenario is a named, validated set of overrides and extensions over the
// base itrs table — supply, oxide, threshold anchors, thermal budget, wire
// geometry, whole new nodes — loadable from JSON, optionally expanded into a
// generated sweep ("Vdd ±20 % in 9 steps at every node"). Resolving a
// Scenario yields a device.Lab the model stack computes against; the nil
// Scenario means the base roadmap and reproduces today's bytes exactly.
//
// Scenarios cross a trust boundary (files on disk, POST bodies), so Parse
// is strict: unknown fields are rejected, every override is bounds-checked,
// sizes are capped, and a parsed scenario round-trips through encode/decode
// byte-identically (FuzzScenarioParse pins all of this).
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"regexp"
	"sync"

	"nanometer/internal/device"
	"nanometer/internal/itrs"
)

// MaxFileBytes bounds a scenario document; anything larger is hostile.
const MaxFileBytes = 1 << 20

// MaxNodes bounds the override/extension list of one scenario.
const MaxNodes = 32

// MaxSweepSteps bounds a generated sweep.
const MaxSweepSteps = 33

// MaxExpectations bounds the scenario-supplied claim checks.
const MaxExpectations = 64

// nameRE admits DNS-label-ish scenario names: bounded, metrics-safe,
// filename-safe. Sweep variants append "/<param>=<factor>" internally.
var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9._-]{0,47}$`)

// Scenario is a named roadmap variation. The zero field set (no node specs,
// no sweep) is valid and resolves to the base table under the scenario's
// name; a nil *Scenario everywhere in the repo means "base roadmap,
// unlabeled" and is the byte-identity case.
type Scenario struct {
	// Name identifies the scenario in cache keys, metrics labels, and
	// output; lowercase [a-z0-9._-], ≤ 48 chars.
	Name string `json:"name"`
	// Title is an optional human headline.
	Title string `json:"title,omitempty"`
	// Notes records provenance (papers, assumptions).
	Notes []string `json:"notes,omitempty"`
	// Nodes lists per-node overrides (for drawn sizes present in the base
	// table) and extensions (new drawn sizes, seeded from the nearest base
	// node and requiring vdd_v, tox_nm, and leff_nm at minimum).
	Nodes []NodeSpec `json:"nodes,omitempty"`
	// Sweep, when set, expands the scenario into a grid of variants.
	Sweep *Sweep `json:"sweep,omitempty"`
	// Expect carries scenario-appropriate claim checks: under a non-base
	// roadmap the paper's quoted numbers no longer apply, so artifacts drop
	// their paper checks and apply these instead.
	Expect []Expectation `json:"expect,omitempty"`

	resolveOnce sync.Once
	resolveLab  *device.Lab
	resolveErr  error
}

// NodeSpec overrides or extends one technology node. All fields except
// NodeNM are optional pointers — nil keeps the base (or seeded) value.
// Units are the human-friendly ones of the paper's tables, converted to SI
// during resolution.
type NodeSpec struct {
	// NodeNM names the node: drawn feature size in nanometers.
	NodeNM int `json:"node_nm"`
	// Year is the production year (extensions should set it).
	Year *int `json:"year,omitempty"`

	VddV    *float64 `json:"vdd_v,omitempty"`
	VddAltV *float64 `json:"vdd_alt_v,omitempty"`
	ToxNM   *float64 `json:"tox_nm,omitempty"`
	LeffNM  *float64 `json:"leff_nm,omitempty"`
	// RsOhmUM is the parasitic source resistance in Ω·µm.
	RsOhmUM *float64 `json:"rs_ohm_um,omitempty"`

	IonTargetUAPerUM *float64 `json:"ion_target_ua_per_um,omitempty"`
	IoffNAPerUM      *float64 `json:"ioff_na_per_um,omitempty"`

	JunctionTempC *float64 `json:"junction_temp_c,omitempty"`
	AmbientTempC  *float64 `json:"ambient_temp_c,omitempty"`
	ThetaJA       *float64 `json:"theta_ja_c_per_w,omitempty"`

	MaxPowerW     *float64 `json:"max_power_w,omitempty"`
	DieAreaMM2    *float64 `json:"die_area_mm2,omitempty"`
	ClockGHz      *float64 `json:"clock_ghz,omitempty"`
	LocalClockGHz *float64 `json:"local_clock_ghz,omitempty"`

	TotalPads         *int     `json:"total_pads,omitempty"`
	PowerBumpFraction *float64 `json:"power_bump_fraction,omitempty"`
	BumpPitchMinUM    *float64 `json:"bump_pitch_min_um,omitempty"`
	BumpMaxCurrentA   *float64 `json:"bump_max_current_a,omitempty"`

	TopMetalMinWidthUM  *float64 `json:"top_metal_min_width_um,omitempty"`
	TopMetalThicknessUM *float64 `json:"top_metal_thickness_um,omitempty"`
	WirePitchGlobalUM   *float64 `json:"wire_pitch_global_um,omitempty"`
	WirePitchLocalUM    *float64 `json:"wire_pitch_local_um,omitempty"`

	LogicTransistorsM *float64 `json:"logic_transistors_m,omitempty"`

	// VthAnchorV and DIBL are the device-model parameters outside the
	// roadmap table (paper Table 2 anchors). Extensions inherit the nearest
	// base node's values unless set.
	VthAnchorV *float64 `json:"vth_anchor_v,omitempty"`
	DIBL       *float64 `json:"dibl_v_per_v,omitempty"`
}

// Sweep generates a one-parameter grid: Steps multipliers spaced evenly
// over [1−SpanPct/100, 1+SpanPct/100] applied to Param at every node (or
// just Nodes when non-empty).
type Sweep struct {
	// Param is one of "vdd", "tox", "theta_ja", "clock", "max_power".
	Param string `json:"param"`
	// Steps is the grid size (1–33); 9 gives the paper-style ±20 % in 9.
	Steps int `json:"steps"`
	// SpanPct is the half-width of the multiplier range in percent.
	SpanPct float64 `json:"span_pct"`
	// Nodes restricts the sweep to the listed drawn sizes (empty = all).
	Nodes []int `json:"nodes,omitempty"`
}

// sweepParams maps a sweep parameter to the node fields it scales.
var sweepParams = map[string]func(n *itrs.Node, factor float64){
	"vdd": func(n *itrs.Node, f float64) {
		n.Vdd *= f
		n.VddAlt *= f
	},
	"tox":      func(n *itrs.Node, f float64) { n.ToxPhysicalM *= f },
	"theta_ja": func(n *itrs.Node, f float64) { n.ThetaJA *= f },
	"clock": func(n *itrs.Node, f float64) {
		n.ClockHz *= f
		n.LocalClockHz *= f
	},
	"max_power": func(n *itrs.Node, f float64) { n.MaxPowerW *= f },
}

// SweepParamNames lists the valid sweep parameters, sorted.
func SweepParamNames() []string {
	return []string{"clock", "max_power", "theta_ja", "tox", "vdd"}
}

// Expectation is one scenario-appropriate claim check: artifact's claim
// finding Check must land within RelTol of Value.
type Expectation struct {
	// Artifact is the artifact ID the check applies to (e.g. "c7").
	Artifact string `json:"artifact"`
	// Check is the finding key within the artifact's claims.
	Check string `json:"check"`
	// Value is the expected value in the finding's unit; RelTol the allowed
	// relative deviation.
	Value  float64 `json:"value"`
	RelTol float64 `json:"rel_tol"`
}

// Parse decodes and validates one scenario document. It is strict: unknown
// fields, oversized documents, out-of-range values, and duplicate nodes are
// all errors. Hostile input must error, never panic (FuzzScenarioParse).
func Parse(data []byte) (*Scenario, error) {
	if len(data) > MaxFileBytes {
		return nil, fmt.Errorf("scenario: document is %d bytes, limit %d", len(data), MaxFileBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	// A second document in the same stream is malformed input, not data.
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a scenario file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return s, nil
}

// MustParse is Parse for known-good literals (tests, guards).
func MustParse(data string) *Scenario {
	s, err := Parse([]byte(data))
	if err != nil {
		panic(err)
	}
	return s
}

// Validate checks structure and ranges. Resolution errors (a node set the
// device calibration cannot hit, say) surface later from Resolve; Validate
// rejects everything that can be rejected without building the table.
func (s *Scenario) Validate() error {
	if !nameRE.MatchString(s.Name) {
		return fmt.Errorf("scenario: name %q must match %s", s.Name, nameRE)
	}
	if len(s.Nodes) > MaxNodes {
		return fmt.Errorf("scenario %s: %d node specs, limit %d", s.Name, len(s.Nodes), MaxNodes)
	}
	base := itrs.Base()
	seen := make(map[int]bool, len(s.Nodes))
	for i := range s.Nodes {
		spec := &s.Nodes[i]
		if spec.NodeNM < 10 || spec.NodeNM > 1000 {
			return fmt.Errorf("scenario %s: node %d nm outside [10, 1000]", s.Name, spec.NodeNM)
		}
		if seen[spec.NodeNM] {
			return fmt.Errorf("scenario %s: node %d nm listed twice", s.Name, spec.NodeNM)
		}
		seen[spec.NodeNM] = true
		if err := spec.validateRanges(); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		if _, err := base.ByNode(spec.NodeNM); err != nil {
			// Extension node: needs enough substance to mean something.
			if spec.VddV == nil || spec.ToxNM == nil || spec.LeffNM == nil {
				return fmt.Errorf("scenario %s: extension node %d nm must set vdd_v, tox_nm, and leff_nm", s.Name, spec.NodeNM)
			}
		}
	}
	if s.Sweep != nil {
		if err := s.Sweep.validate(seen); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	if len(s.Expect) > MaxExpectations {
		return fmt.Errorf("scenario %s: %d expectations, limit %d", s.Name, len(s.Expect), MaxExpectations)
	}
	for _, e := range s.Expect {
		if e.Artifact == "" || e.Check == "" {
			return fmt.Errorf("scenario %s: expectation needs artifact and check keys", s.Name)
		}
		if !(e.RelTol > 0) || e.RelTol > 10 || math.IsInf(e.RelTol, 0) {
			return fmt.Errorf("scenario %s: expectation %s/%s rel_tol %g outside (0, 10]", s.Name, e.Artifact, e.Check, e.RelTol)
		}
		if math.IsNaN(e.Value) || math.IsInf(e.Value, 0) {
			return fmt.Errorf("scenario %s: expectation %s/%s value must be finite", s.Name, e.Artifact, e.Check)
		}
	}
	return nil
}

// validateRanges bounds every override. The bounds mirror itrs.Node.Validate
// in the spec's human units; resolution re-validates the assembled node, so
// these exist to produce pointed errors naming the JSON field.
func (spec *NodeSpec) validateRanges() error {
	type rng struct {
		field string
		v     *float64
		lo    float64
		hi    float64
	}
	checks := []rng{
		{"vdd_v", spec.VddV, 0.2, 5},
		{"vdd_alt_v", spec.VddAltV, 0.2, 5},
		{"tox_nm", spec.ToxNM, 0.2, 20},
		{"leff_nm", spec.LeffNM, 3, 500},
		{"rs_ohm_um", spec.RsOhmUM, 0, 2000},
		{"ion_target_ua_per_um", spec.IonTargetUAPerUM, 50, 5000},
		{"ioff_na_per_um", spec.IoffNAPerUM, 0, 1e5},
		{"junction_temp_c", spec.JunctionTempC, 25, 250},
		{"ambient_temp_c", spec.AmbientTempC, -60, 250},
		{"theta_ja_c_per_w", spec.ThetaJA, 0.01, 100},
		{"max_power_w", spec.MaxPowerW, 0.001, 10e3},
		{"die_area_mm2", spec.DieAreaMM2, 0.1, 10e3},
		{"clock_ghz", spec.ClockGHz, 0.001, 1000},
		{"local_clock_ghz", spec.LocalClockGHz, 0.001, 1000},
		{"power_bump_fraction", spec.PowerBumpFraction, 0.01, 1},
		{"bump_pitch_min_um", spec.BumpPitchMinUM, 1, 10e3},
		{"bump_max_current_a", spec.BumpMaxCurrentA, 1e-4, 100},
		{"top_metal_min_width_um", spec.TopMetalMinWidthUM, 0.005, 100},
		{"top_metal_thickness_um", spec.TopMetalThicknessUM, 0.005, 100},
		{"wire_pitch_global_um", spec.WirePitchGlobalUM, 0.01, 100},
		{"wire_pitch_local_um", spec.WirePitchLocalUM, 0.005, 100},
		{"logic_transistors_m", spec.LogicTransistorsM, 0.01, 1e6},
		{"vth_anchor_v", spec.VthAnchorV, -0.2, 1.5},
		{"dibl_v_per_v", spec.DIBL, 0, 0.5},
	}
	for _, c := range checks {
		if c.v == nil {
			continue
		}
		v := *c.v
		if math.IsNaN(v) || v < c.lo || v > c.hi {
			return fmt.Errorf("node %d nm: %s = %g outside [%g, %g]", spec.NodeNM, c.field, v, c.lo, c.hi)
		}
	}
	if spec.Year != nil && (*spec.Year < 1990 || *spec.Year > 2100) {
		return fmt.Errorf("node %d nm: year = %d outside [1990, 2100]", spec.NodeNM, *spec.Year)
	}
	if spec.TotalPads != nil && (*spec.TotalPads < 4 || *spec.TotalPads > 1e6) {
		return fmt.Errorf("node %d nm: total_pads = %d outside [4, 1000000]", spec.NodeNM, *spec.TotalPads)
	}
	return nil
}

func (sw *Sweep) validate(specNodes map[int]bool) error {
	if _, ok := sweepParams[sw.Param]; !ok {
		return fmt.Errorf("sweep param %q not one of %v", sw.Param, SweepParamNames())
	}
	if sw.Steps < 1 || sw.Steps > MaxSweepSteps {
		return fmt.Errorf("sweep steps %d outside [1, %d]", sw.Steps, MaxSweepSteps)
	}
	if !(sw.SpanPct > 0) || sw.SpanPct > 50 {
		return fmt.Errorf("sweep span_pct %g outside (0, 50]", sw.SpanPct)
	}
	base := itrs.Base()
	for _, nm := range sw.Nodes {
		if _, err := base.ByNode(nm); err != nil && !specNodes[nm] {
			return fmt.Errorf("sweep node %d nm is neither a base node nor defined by the scenario", nm)
		}
	}
	return nil
}

// Canonical returns the scenario's canonical encoding: the compact JSON of
// the validated struct. Parse(Canonical(s)) reproduces the same canonical
// bytes, which is the round-trip property the fuzzer pins.
func (s *Scenario) Canonical() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// Scenario has no unmarshalable fields; this is unreachable on a
		// validated value.
		panic(err)
	}
	return b
}

// Key returns a short stable digest of the scenario's full content, used to
// thread scenario identity through the compute-cache key (and with it the
// disk store, singleflight, ETags, and peer ownership).
func (s *Scenario) Key() string {
	h := fnv.New64a()
	h.Write(s.Canonical())
	return fmt.Sprintf("%016x", h.Sum64())
}

// Variants expands the sweep into concrete scenarios, one per multiplier
// step: each variant carries the swept parameter as explicit node overrides
// (resolved value × factor), a derived name ("<name>/vdd=0.80"), and no
// sweep of its own. Without a sweep the scenario itself is the only
// variant. Expectations do not propagate to swept variants — they describe
// the unswept operating point.
func (s *Scenario) Variants() ([]*Scenario, error) {
	if s.Sweep == nil {
		return []*Scenario{s}, nil
	}
	apply, ok := sweepParams[s.Sweep.Param]
	if !ok {
		return nil, fmt.Errorf("scenario %s: unknown sweep param %q", s.Name, s.Sweep.Param)
	}
	lab, err := s.Resolve()
	if err != nil {
		return nil, err
	}
	targets := s.Sweep.Nodes
	if len(targets) == 0 {
		targets = lab.NodesNM()
	}
	span := s.Sweep.SpanPct / 100
	out := make([]*Scenario, 0, s.Sweep.Steps)
	for i := 0; i < s.Sweep.Steps; i++ {
		factor := 1.0
		if s.Sweep.Steps > 1 {
			factor = 1 - span + 2*span*float64(i)/float64(s.Sweep.Steps-1)
		}
		v := &Scenario{
			Name:  fmt.Sprintf("%s/%s=%.3f", s.Name, s.Sweep.Param, factor),
			Title: s.Title,
			Notes: s.Notes,
		}
		// Start from the parent's explicit specs so non-swept overrides and
		// extension nodes survive into every variant.
		v.Nodes = append(v.Nodes, s.Nodes...)
		for _, nm := range targets {
			node, err := lab.Node(nm)
			if err != nil {
				return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
			}
			scaled := node
			apply(&scaled, factor)
			v.Nodes = mergeSpec(v.Nodes, overrideFor(s.Sweep.Param, scaled))
		}
		out = append(out, v)
	}
	return out, nil
}

// overrideFor captures the swept parameter's scaled value as a NodeSpec
// override in spec units.
func overrideFor(param string, n itrs.Node) NodeSpec {
	spec := NodeSpec{NodeNM: n.DrawnNM}
	switch param {
	case "vdd":
		spec.VddV = ptr(n.Vdd)
		if n.VddAlt != 0 {
			spec.VddAltV = ptr(n.VddAlt)
		}
	case "tox":
		spec.ToxNM = ptr(n.ToxPhysicalM * 1e9)
	case "theta_ja":
		spec.ThetaJA = ptr(n.ThetaJA)
	case "clock":
		spec.ClockGHz = ptr(n.ClockHz * 1e-9)
		spec.LocalClockGHz = ptr(n.LocalClockHz * 1e-9)
	case "max_power":
		spec.MaxPowerW = ptr(n.MaxPowerW)
	}
	return spec
}

// mergeSpec folds the override into an existing spec for the same node, or
// appends a new one.
func mergeSpec(specs []NodeSpec, add NodeSpec) []NodeSpec {
	for i := range specs {
		if specs[i].NodeNM != add.NodeNM {
			continue
		}
		merged := specs[i]
		if add.VddV != nil {
			merged.VddV = add.VddV
		}
		if add.VddAltV != nil {
			merged.VddAltV = add.VddAltV
		}
		if add.ToxNM != nil {
			merged.ToxNM = add.ToxNM
		}
		if add.ThetaJA != nil {
			merged.ThetaJA = add.ThetaJA
		}
		if add.ClockGHz != nil {
			merged.ClockGHz = add.ClockGHz
		}
		if add.LocalClockGHz != nil {
			merged.LocalClockGHz = add.LocalClockGHz
		}
		if add.MaxPowerW != nil {
			merged.MaxPowerW = add.MaxPowerW
		}
		specs[i] = merged
		return specs
	}
	return append(specs, add)
}

func ptr(v float64) *float64 { return &v }

// ExpectFor returns the scenario's expectations for one artifact, in
// declaration order. A nil receiver has none.
func (s *Scenario) ExpectFor(artifactID string) []Expectation {
	if s == nil {
		return nil
	}
	var out []Expectation
	for _, e := range s.Expect {
		if e.Artifact == artifactID {
			out = append(out, e)
		}
	}
	return out
}

// Resolve builds (once; memoized) the device laboratory for the scenario:
// base table + overrides + extensions, revalidated, with device anchors
// carried over or supplied by the specs. A nil receiver resolves to the
// base laboratory.
func (s *Scenario) Resolve() (*device.Lab, error) {
	if s == nil {
		return device.BaseLab(), nil
	}
	s.resolveOnce.Do(func() { s.resolveLab, s.resolveErr = s.build() })
	return s.resolveLab, s.resolveErr
}

func (s *Scenario) build() (*device.Lab, error) {
	base := itrs.Base()
	nodes := base.All()
	index := make(map[int]int, len(nodes))
	for i, n := range nodes {
		index[n.DrawnNM] = i
	}
	params := make(map[int]device.Params)
	for i := range s.Nodes {
		spec := &s.Nodes[i]
		var n *itrs.Node
		if j, ok := index[spec.NodeNM]; ok {
			n = &nodes[j]
		} else {
			// Extension: seed from the nearest transcribed node, then
			// override. Device anchors seed the same way.
			seed := base.Nearest(spec.NodeNM)
			if p, ok := device.BaseParams(seed.DrawnNM); ok {
				params[spec.NodeNM] = p
			}
			seed.DrawnNM = spec.NodeNM
			nodes = append(nodes, seed)
			index[spec.NodeNM] = len(nodes) - 1
			n = &nodes[len(nodes)-1]
		}
		spec.apply(n)
		if spec.VthAnchorV != nil || spec.DIBL != nil {
			p, ok := params[spec.NodeNM]
			if !ok {
				if bp, has := device.BaseParams(spec.NodeNM); has {
					p = bp
				}
			}
			if spec.VthAnchorV != nil {
				p.VthAnchor = *spec.VthAnchorV
			}
			if spec.DIBL != nil {
				p.DIBL = *spec.DIBL
			}
			params[spec.NodeNM] = p
		}
	}
	table, err := itrs.NewTable(s.Name, nodes)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	lab, err := device.NewLab(table, params)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return lab, nil
}

// apply folds the spec's overrides into the node, converting units.
func (spec *NodeSpec) apply(n *itrs.Node) {
	if spec.Year != nil {
		n.Year = *spec.Year
	}
	setF := func(dst *float64, src *float64, scale float64) {
		if src != nil {
			*dst = *src * scale
		}
	}
	setF(&n.Vdd, spec.VddV, 1)
	setF(&n.VddAlt, spec.VddAltV, 1)
	setF(&n.ToxPhysicalM, spec.ToxNM, 1e-9)
	setF(&n.LeffM, spec.LeffNM, 1e-9)
	setF(&n.RsOhmM, spec.RsOhmUM, 1e-6)
	// µA/µm is numerically A/m; nA/µm is 1e-3 A/m.
	setF(&n.IonTargetAPerM, spec.IonTargetUAPerUM, 1)
	setF(&n.IoffITRSAPerM, spec.IoffNAPerUM, 1e-3)
	setF(&n.JunctionTempC, spec.JunctionTempC, 1)
	setF(&n.AmbientTempC, spec.AmbientTempC, 1)
	setF(&n.ThetaJA, spec.ThetaJA, 1)
	setF(&n.MaxPowerW, spec.MaxPowerW, 1)
	setF(&n.DieAreaM2, spec.DieAreaMM2, 1e-6)
	setF(&n.ClockHz, spec.ClockGHz, 1e9)
	setF(&n.LocalClockHz, spec.LocalClockGHz, 1e9)
	if spec.TotalPads != nil {
		n.TotalPads = *spec.TotalPads
	}
	setF(&n.PowerBumpFraction, spec.PowerBumpFraction, 1)
	setF(&n.BumpPitchMinM, spec.BumpPitchMinUM, 1e-6)
	setF(&n.BumpMaxCurrentA, spec.BumpMaxCurrentA, 1)
	setF(&n.TopMetalMinWidthM, spec.TopMetalMinWidthUM, 1e-6)
	setF(&n.TopMetalThicknessM, spec.TopMetalThicknessUM, 1e-6)
	setF(&n.WirePitchGlobalM, spec.WirePitchGlobalUM, 1e-6)
	setF(&n.WirePitchLocalM, spec.WirePitchLocalUM, 1e-6)
	setF(&n.LogicTransistorsM, spec.LogicTransistorsM, 1)
}
