package scenario

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"nanometer/internal/device"
	"nanometer/internal/itrs"
)

const ext65Doc = `{
  "name": "ext65-test",
  "nodes": [
    {"node_nm": 65, "year": 2007, "vdd_v": 0.85, "tox_nm": 0.95, "leff_nm": 32}
  ]
}`

func TestParseOverrideScenario(t *testing.T) {
	s := MustParse(`{"name":"hot","nodes":[{"node_nm":70,"vdd_v":1.0,"junction_temp_c":110}]}`)
	lab, err := s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	n, err := lab.Node(70)
	if err != nil {
		t.Fatal(err)
	}
	if n.Vdd != 1.0 || n.JunctionTempC != 110 {
		t.Fatalf("override not applied: Vdd=%g Tj=%g", n.Vdd, n.JunctionTempC)
	}
	// Untouched fields keep base values; untouched nodes are untouched.
	base := itrs.MustNode(70)
	if n.ToxPhysicalM != base.ToxPhysicalM {
		t.Fatalf("Tox drifted: %g vs %g", n.ToxPhysicalM, base.ToxPhysicalM)
	}
	if got := lab.MustNode(50); got != itrs.MustNode(50) {
		t.Fatalf("node 50 drifted under an override of node 70")
	}
	// The base laboratory must never be mutated by a scenario resolve.
	if device.BaseLab().MustNode(70) != base {
		t.Fatal("scenario resolve mutated the base laboratory")
	}
}

func TestResolveExtensionNode(t *testing.T) {
	s := MustParse(ext65Doc)
	lab, err := s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(lab.NodesNM()), 7; got != want {
		t.Fatalf("node count = %d, want %d", got, want)
	}
	n, err := lab.Node(65)
	if err != nil {
		t.Fatal(err)
	}
	if n.Vdd != 0.85 || n.ToxPhysicalM != 0.95e-9 || n.LeffM != 32e-9 || n.Year != 2007 {
		t.Fatalf("extension overrides not applied: %+v", n)
	}
	// Unset fields seed from the nearest base node (70 nm).
	if n.ThetaJA != itrs.MustNode(70).ThetaJA {
		t.Fatalf("ThetaJA = %g, want seeded %g", n.ThetaJA, itrs.MustNode(70).ThetaJA)
	}
	// The extension node's devices calibrate, with model anchors seeded
	// from the nearest base node.
	d, err := lab.ForNode(65)
	if err != nil {
		t.Fatal(err)
	}
	seed, ok := device.BaseParams(70)
	if !ok {
		t.Fatal("no base params at 70 nm")
	}
	if d.Vth0 != seed.VthAnchor {
		t.Fatalf("Vth anchor = %g, want %g seeded from 70 nm", d.Vth0, seed.VthAnchor)
	}
}

func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"empty name":          `{"name":""}`,
		"bad name chars":      `{"name":"No Spaces!"}`,
		"unknown field":       `{"name":"x","wat":1}`,
		"trailing data":       `{"name":"x"} {"name":"y"}`,
		"dup node":            `{"name":"x","nodes":[{"node_nm":70},{"node_nm":70}]}`,
		"node out of range":   `{"name":"x","nodes":[{"node_nm":5}]}`,
		"vdd out of range":    `{"name":"x","nodes":[{"node_nm":70,"vdd_v":9.9}]}`,
		"vdd NaN":             `{"name":"x","nodes":[{"node_nm":70,"vdd_v":"nan"}]}`,
		"bare extension":      `{"name":"x","nodes":[{"node_nm":65}]}`,
		"bad sweep param":     `{"name":"x","sweep":{"param":"frobnicate","steps":3,"span_pct":10}}`,
		"sweep steps zero":    `{"name":"x","sweep":{"param":"vdd","steps":0,"span_pct":10}}`,
		"sweep steps huge":    `{"name":"x","sweep":{"param":"vdd","steps":1000,"span_pct":10}}`,
		"sweep span zero":     `{"name":"x","sweep":{"param":"vdd","steps":3,"span_pct":0}}`,
		"sweep unknown node":  `{"name":"x","sweep":{"param":"vdd","steps":3,"span_pct":10,"nodes":[42]}}`,
		"expect no artifact":  `{"name":"x","expect":[{"artifact":"","check":"v","value":1,"rel_tol":0.1}]}`,
		"expect bad rel_tol":  `{"name":"x","expect":[{"artifact":"c7","check":"v","value":1,"rel_tol":0}]}`,
		"expect huge rel_tol": `{"name":"x","expect":[{"artifact":"c7","check":"v","value":1,"rel_tol":99}]}`,
		"not json":            `hello`,
		"year out of range":   `{"name":"x","nodes":[{"node_nm":70,"year":1776}]}`,
	}
	for label, doc := range cases {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("%s: Parse accepted %q", label, doc)
		}
	}
	if _, err := Parse(bytes.Repeat([]byte(" "), MaxFileBytes+1)); err == nil {
		t.Error("Parse accepted an oversized document")
	}
	if _, err := Parse([]byte(fmt.Sprintf(`{"name":"x","nodes":[%s{"node_nm":180}]}`,
		strings.Repeat(`{"node_nm":180},`, MaxNodes)))); err == nil {
		t.Error("Parse accepted more than MaxNodes specs")
	}
}

func TestVariantsExpandSweep(t *testing.T) {
	s := MustParse(`{
	  "name": "vddsweep",
	  "nodes": [{"node_nm": 70, "junction_temp_c": 110}],
	  "sweep": {"param": "vdd", "steps": 9, "span_pct": 20, "nodes": [70]},
	  "expect": [{"artifact": "c1", "check": "node_nm", "value": 50, "rel_tol": 0.1}]
	}`)
	vs, err := s.Variants()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 9 {
		t.Fatalf("got %d variants, want 9", len(vs))
	}
	baseVdd := itrs.MustNode(70).Vdd
	for i, v := range vs {
		factor := 0.8 + 0.4*float64(i)/8
		wantName := fmt.Sprintf("vddsweep/vdd=%.3f", factor)
		if v.Name != wantName {
			t.Fatalf("variant %d name = %q, want %q", i, v.Name, wantName)
		}
		if v.Sweep != nil {
			t.Fatalf("variant %d kept its sweep", i)
		}
		if len(v.Expect) != 0 {
			t.Fatalf("variant %d inherited expectations", i)
		}
		lab, err := v.Resolve()
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		n := lab.MustNode(70)
		if diff := n.Vdd - baseVdd*factor; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("variant %d Vdd = %g, want %g", i, n.Vdd, baseVdd*factor)
		}
		// The non-swept override survives into every variant.
		if n.JunctionTempC != 110 {
			t.Fatalf("variant %d lost the junction-temp override", i)
		}
		// The unswept node is untouched.
		if lab.MustNode(180).Vdd != itrs.MustNode(180).Vdd {
			t.Fatalf("variant %d scaled node 180, which is outside the sweep", i)
		}
	}
}

func TestVariantsWithoutSweep(t *testing.T) {
	s := MustParse(`{"name":"plain"}`)
	vs, err := s.Variants()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0] != s {
		t.Fatalf("sweepless scenario must be its own only variant")
	}
}

func TestKeyDistinguishesContent(t *testing.T) {
	a := MustParse(`{"name":"a","nodes":[{"node_nm":70,"vdd_v":1.0}]}`)
	b := MustParse(`{"name":"a","nodes":[{"node_nm":70,"vdd_v":1.1}]}`)
	c := MustParse(`{"name":"b","nodes":[{"node_nm":70,"vdd_v":1.0}]}`)
	same := MustParse(`{"name":"a","nodes":[{"node_nm":70,"vdd_v":1.0}]}`)
	if a.Key() == b.Key() {
		t.Error("key ignores override values")
	}
	if a.Key() == c.Key() {
		t.Error("key ignores the name")
	}
	if a.Key() != same.Key() {
		t.Error("identical documents produced different keys")
	}
}

func TestCanonicalRoundTrip(t *testing.T) {
	s := MustParse(ext65Doc)
	canon := s.Canonical()
	s2, err := Parse(canon)
	if err != nil {
		t.Fatalf("canonical form failed to re-parse: %v", err)
	}
	if !bytes.Equal(canon, s2.Canonical()) {
		t.Fatalf("canonical encoding is not a fixed point:\n%s\nvs\n%s", canon, s2.Canonical())
	}
}

func TestExpectFor(t *testing.T) {
	s := MustParse(`{"name":"x","expect":[
	  {"artifact":"c7","check":"vdd_floor","value":0.5,"rel_tol":0.2},
	  {"artifact":"c1","check":"node_nm","value":50,"rel_tol":0.01},
	  {"artifact":"c7","check":"dynamic_saving","value":0.4,"rel_tol":0.3}
	]}`)
	if got := len(s.ExpectFor("c7")); got != 2 {
		t.Fatalf("ExpectFor(c7) = %d entries, want 2", got)
	}
	if got := len(s.ExpectFor("t1")); got != 0 {
		t.Fatalf("ExpectFor(t1) = %d entries, want 0", got)
	}
	var nilS *Scenario
	if nilS.ExpectFor("c7") != nil {
		t.Fatal("nil scenario must have no expectations")
	}
}

func TestNilScenarioResolvesToBase(t *testing.T) {
	var s *Scenario
	lab, err := s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if lab != device.BaseLab() {
		t.Fatal("nil scenario must resolve to the shared base laboratory")
	}
}
