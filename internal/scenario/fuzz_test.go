package scenario

import (
	"bytes"
	"testing"
)

// FuzzScenarioParse fuzzes the scenario trust boundary (files on disk, POST
// bodies). Properties: hostile input errors, never panics; any accepted
// scenario is internally valid (Validate agrees), and its canonical encoding
// is a fixed point — Parse(Canonical(s)) succeeds and re-encodes to the same
// bytes, so cache keys derived from Canonical are stable across a store/load
// round trip.
func FuzzScenarioParse(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`hello`,
		`{"name":"base"}`,
		`{"name":"x","nodes":[{"node_nm":70,"vdd_v":1.0}]}`,
		`{"name":"ext","nodes":[{"node_nm":65,"year":2007,"vdd_v":0.85,"tox_nm":0.95,"leff_nm":32}]}`,
		`{"name":"s","sweep":{"param":"vdd","steps":9,"span_pct":20}}`,
		`{"name":"s","sweep":{"param":"vdd","steps":9,"span_pct":20,"nodes":[70]}}`,
		`{"name":"e","expect":[{"artifact":"c7","check":"vdd_floor","value":0.5,"rel_tol":0.2}]}`,
		`{"name":"x","nodes":[{"node_nm":70,"vdd_v":1e308}]}`,
		`{"name":"x","nodes":[{"node_nm":70,"vdd_v":null}]}`,
		`{"name":"x","title":"t","notes":["a","b"]}`,
		`{"name":"x"} trailing`,
		`{"name":"x","wat":1}`,
		`{"name":"x","nodes":[{"node_nm":-70}]}`,
		`[{"name":"x"}]`,
		`{"name":"x","nodes":[{"node_nm":70,"dibl_v_per_v":0.6}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data) // must never panic
		if err != nil {
			if err.Error() == "" {
				t.Fatal("Parse rejected input with an empty message")
			}
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("Parse accepted a scenario its own Validate rejects: %v", err)
		}
		canon := s.Canonical()
		s2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical encoding of an accepted scenario fails to re-parse: %v\ncanonical: %s", err, canon)
		}
		if !bytes.Equal(canon, s2.Canonical()) {
			t.Fatalf("canonical encoding is not a fixed point:\n first: %s\nsecond: %s", canon, s2.Canonical())
		}
		if s.Key() != s2.Key() {
			t.Fatal("round-tripped scenario changed its cache key")
		}
	})
}
