package wire

import "fmt"

// Crosstalk modeling: neighbor switching modulates the effective coupling
// capacitance (the Miller effect) and injects noise — the §2.2 concern that
// drives shielding and differential signaling on long lines.

// AggressorActivity describes what the neighbors of a victim line do during
// its transition.
type AggressorActivity int

const (
	// AggressorsQuiet holds neighbors static: coupling at its nominal value.
	AggressorsQuiet AggressorActivity = iota
	// AggressorsSameDirection switches neighbors with the victim: the
	// coupling capacitance is Miller-cancelled.
	AggressorsSameDirection
	// AggressorsOpposite switches neighbors against the victim: coupling
	// doubles.
	AggressorsOpposite
)

func (a AggressorActivity) String() string {
	switch a {
	case AggressorsQuiet:
		return "quiet"
	case AggressorsSameDirection:
		return "same-direction"
	case AggressorsOpposite:
		return "opposite"
	}
	return fmt.Sprintf("AggressorActivity(%d)", int(a))
}

// millerFactor maps activity to the coupling multiplier.
func millerFactor(a AggressorActivity) float64 {
	switch a {
	case AggressorsSameDirection:
		return 0
	case AggressorsOpposite:
		return 2
	default:
		return 1
	}
}

// CEffectivePerM returns the switching-effective capacitance per meter under
// the given aggressor activity: ground component plus Miller-scaled
// coupling. Shielded lines replace neighbor coupling with static shield
// capacitance (Miller factor pinned at 1).
func (l Line) CEffectivePerM(a AggressorActivity, shielded bool) float64 {
	ground := l.CTotalFPerM * (1 - l.CouplingFraction)
	coupling := l.CTotalFPerM * l.CouplingFraction
	if shielded {
		return ground + coupling
	}
	return ground + coupling*millerFactor(a)
}

// DynamicDelayRange returns the best- and worst-case driven delays of the
// line across aggressor activity — the crosstalk-induced timing uncertainty
// that shielding eliminates.
func (l Line) DynamicDelayRange(lengthM, rdrv, cload float64, shielded bool) (best, worst float64) {
	delayWith := func(a AggressorActivity) float64 {
		eff := l
		eff.CTotalFPerM = l.CEffectivePerM(a, shielded)
		eff.CouplingFraction = 0
		return eff.DrivenDelay(lengthM, rdrv, cload)
	}
	if shielded {
		d := delayWith(AggressorsQuiet)
		return d, d
	}
	return delayWith(AggressorsSameDirection), delayWith(AggressorsOpposite)
}

// DelayUncertainty returns (worst − best)/nominal — the fraction of the
// nominal delay that aggressor alignment can move a long unshielded line.
func (l Line) DelayUncertainty(lengthM, rdrv, cload float64) float64 {
	nominal := l.DrivenDelay(lengthM, rdrv, cload)
	if nominal <= 0 {
		return 0
	}
	best, worst := l.DynamicDelayRange(lengthM, rdrv, cload, false)
	return (worst - best) / nominal
}
