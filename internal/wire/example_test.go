package wire_test

import (
	"fmt"

	"nanometer/internal/wire"
)

// The §2.2 premise in one number: a cross-chip wire's unrepeated RC
// diffusion at the 50 nm node dwarfs the clock period.
func ExampleLine_ElmoreDelay() {
	l := wire.MustForNode(50, wire.Global)
	length, err := wire.CrossChipLength(50)
	if err != nil {
		panic(err)
	}
	d := l.ElmoreDelay(length)
	fmt.Printf("unrepeated cross-chip delay is tens of ns: %v\n", d > 10e-9 && d < 100e-9)
	// Output:
	// unrepeated cross-chip delay is tens of ns: true
}

// Crosstalk: aggressor alignment swings a long unshielded line's delay by a
// large fraction; shielding collapses the range.
func ExampleLine_DynamicDelayRange() {
	l := wire.MustForNode(35, wire.Global)
	best, worst := l.DynamicDelayRange(5e-3, 500, 10e-15, false)
	sBest, sWorst := l.DynamicDelayRange(5e-3, 500, 10e-15, true)
	fmt.Printf("unshielded spread exists: %v; shielded spread collapses: %v\n",
		worst > best, sWorst == sBest)
	// Output:
	// unshielded spread exists: true; shielded spread collapses: true
}
