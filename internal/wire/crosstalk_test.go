package wire

import (
	"testing"

	"nanometer/internal/units"
)

func TestMillerEffectiveCapacitance(t *testing.T) {
	l := MustForNode(50, Global)
	quiet := l.CEffectivePerM(AggressorsQuiet, false)
	same := l.CEffectivePerM(AggressorsSameDirection, false)
	opp := l.CEffectivePerM(AggressorsOpposite, false)
	if !(same < quiet && quiet < opp) {
		t.Fatalf("Miller ordering broken: %g, %g, %g", same, quiet, opp)
	}
	// Quiet equals the nominal total.
	if !units.ApproxEqual(quiet, l.CPerM(), 1e-12, 0) {
		t.Fatalf("quiet-aggressor capacitance must equal nominal")
	}
	// Opposite − quiet equals the coupling component (one extra Miller
	// count).
	if !units.ApproxEqual(opp-quiet, l.CCouplingPerM(), 1e-9, 0) {
		t.Fatalf("opposite-switching surplus must equal the coupling capacitance")
	}
	// Shielding pins the capacitance regardless of activity.
	for _, a := range []AggressorActivity{AggressorsQuiet, AggressorsSameDirection, AggressorsOpposite} {
		if got := l.CEffectivePerM(a, true); !units.ApproxEqual(got, l.CPerM(), 1e-12, 0) {
			t.Fatalf("shielded capacitance must be activity-independent, got %g for %v", got, a)
		}
	}
}

func TestDynamicDelayRange(t *testing.T) {
	l := MustForNode(50, Global)
	const length, rdrv, cload = 5e-3, 500.0, 10e-15
	best, worst := l.DynamicDelayRange(length, rdrv, cload, false)
	if best >= worst {
		t.Fatalf("aggressor alignment must spread the delay: %g vs %g", best, worst)
	}
	nominal := l.DrivenDelay(length, rdrv, cload)
	if !(best < nominal && nominal < worst) {
		t.Fatalf("nominal delay must sit inside the range")
	}
	sBest, sWorst := l.DynamicDelayRange(length, rdrv, cload, true)
	if sBest != sWorst {
		t.Fatalf("shielding must collapse the range")
	}
}

func TestDelayUncertaintySubstantialOnDenseTiers(t *testing.T) {
	// Coupling dominates on dense tiers, so alignment moves the delay by a
	// large fraction — the §2.2 signal-integrity concern.
	global := MustForNode(35, Global)
	u := global.DelayUncertainty(5e-3, 500, 10e-15)
	if u < 0.3 {
		t.Fatalf("global-tier delay uncertainty = %g, expected substantial", u)
	}
	// More coupling → more uncertainty.
	local := MustForNode(35, Local)
	if local.CouplingFraction <= global.CouplingFraction {
		t.Skip("tier coupling ordering changed")
	}
	if local.DelayUncertainty(5e-4, 500, 1e-15) <= u*0.8 {
		t.Fatalf("denser coupling should not reduce uncertainty materially")
	}
}

func TestAggressorActivityString(t *testing.T) {
	for _, a := range []AggressorActivity{AggressorsQuiet, AggressorsSameDirection, AggressorsOpposite} {
		if a.String() == "" {
			t.Fatalf("missing name")
		}
	}
}
