// Package wire models on-chip interconnect parasitics per roadmap node:
// per-length resistance and capacitance for the local, intermediate, and
// global tiers, coupling fractions, and distributed-RC (Elmore) delay. The
// global tier can be evaluated "scaled" (pitch tracks the node) or
// "unscaled" (fat top-level wiring held at 180 nm-class geometry), the
// distinction at the heart of the paper's §2.2 global-signaling discussion.
package wire

import (
	"fmt"
	"math"

	"nanometer/internal/itrs"
	"nanometer/internal/units"
)

// Tier identifies an interconnect layer class.
type Tier int

const (
	Local Tier = iota
	Intermediate
	Global
)

func (t Tier) String() string {
	switch t {
	case Local:
		return "local"
	case Intermediate:
		return "intermediate"
	case Global:
		return "global"
	}
	return fmt.Sprintf("Tier(%d)", int(t))
}

// Line is a uniform wire segment: geometry plus derived parasitics.
type Line struct {
	Tier Tier
	// WidthM, SpacingM, ThicknessM describe the conductor geometry.
	WidthM, SpacingM, ThicknessM float64
	// ResistivityOhmM is the conductor resistivity.
	ResistivityOhmM float64
	// CTotalFPerM is the total capacitance per length (ground + coupling).
	CTotalFPerM float64
	// CouplingFraction is the share of CTotalFPerM contributed by
	// neighbor coupling (relevant to crosstalk and shielding analyses).
	CouplingFraction float64
}

// DefaultCapacitancePerM is the canonical ~0.2 fF/µm total wire capacitance
// that holds remarkably flat across scaling (aspect ratios rise as pitches
// shrink, trading ground for coupling capacitance).
const DefaultCapacitancePerM = 2.0e-10

// defaultCouplingFraction rises for denser tiers where neighbor coupling
// dominates.
func defaultCouplingFraction(t Tier) float64 {
	switch t {
	case Local:
		return 0.65
	case Intermediate:
		return 0.55
	default:
		return 0.45
	}
}

// ForNode returns the wire model for a tier of a base-roadmap node.
func ForNode(nodeNM int, tier Tier) (Line, error) {
	return ForNodeIn(itrs.Base(), nodeNM, tier)
}

// ForNodeIn is ForNode against an explicit roadmap table (scenario wire
// geometry threads through here).
func ForNodeIn(t *itrs.Table, nodeNM int, tier Tier) (Line, error) {
	n, err := t.ByNode(nodeNM)
	if err != nil {
		return Line{}, err
	}
	var pitch, thickness float64
	switch tier {
	case Local:
		pitch = n.WirePitchLocalM
		thickness = pitch // aspect ratio ~2 on half-pitch width
	case Intermediate:
		pitch = (n.WirePitchLocalM + n.WirePitchGlobalM) / 2
		thickness = pitch * 1.1
	case Global:
		pitch = n.WirePitchGlobalM
		thickness = n.TopMetalThicknessM
	default:
		return Line{}, fmt.Errorf("wire: unknown tier %v", tier)
	}
	w := pitch / 2
	return Line{
		Tier:             tier,
		WidthM:           w,
		SpacingM:         pitch - w,
		ThicknessM:       thickness,
		ResistivityOhmM:  units.CopperResistivity,
		CTotalFPerM:      DefaultCapacitancePerM,
		CouplingFraction: defaultCouplingFraction(tier),
	}, nil
}

// UnscaledGlobal returns the "unscaled top-level wiring" global tier the
// paper cites from [9]: 180 nm-class fat wiring (1 µm pitch, 1 µm thick)
// retained at every node so that ITRS global clock targets remain reachable.
func UnscaledGlobal() Line {
	return Line{
		Tier:             Global,
		WidthM:           0.5e-6,
		SpacingM:         0.5e-6,
		ThicknessM:       1.0e-6,
		ResistivityOhmM:  units.CopperResistivity,
		CTotalFPerM:      DefaultCapacitancePerM,
		CouplingFraction: defaultCouplingFraction(Global),
	}
}

// MustForNode is ForNode for known-good literals.
func MustForNode(nodeNM int, tier Tier) Line {
	l, err := ForNode(nodeNM, tier)
	if err != nil {
		panic(err)
	}
	return l
}

// RPerM returns the wire resistance per meter.
func (l Line) RPerM() float64 {
	return l.ResistivityOhmM / (l.WidthM * l.ThicknessM)
}

// CPerM returns the total capacitance per meter.
func (l Line) CPerM() float64 { return l.CTotalFPerM }

// CCouplingPerM returns the neighbor-coupling component per meter.
func (l Line) CCouplingPerM() float64 { return l.CTotalFPerM * l.CouplingFraction }

// RCPerM2 returns the distributed RC product per meter² (s/m²).
func (l Line) RCPerM2() float64 { return l.RPerM() * l.CPerM() }

// ElmoreDelay returns the 50 % delay of an unbuffered distributed RC line of
// the given length: 0.38·r·c·L².
func (l Line) ElmoreDelay(lengthM float64) float64 {
	return 0.38 * l.RCPerM2() * lengthM * lengthM
}

// DrivenDelay returns the 50 % delay of the line driven by a source of
// resistance rdrv ohms into a far-end load of cload farads:
// 0.69·(Rd·(Cw+Cl) + Rw·Cl) + 0.38·Rw·Cw.
func (l Line) DrivenDelay(lengthM, rdrv, cload float64) float64 {
	rw := l.RPerM() * lengthM
	cw := l.CPerM() * lengthM
	return 0.69*(rdrv*(cw+cload)+rw*cload) + 0.38*rw*cw
}

// Energy returns the switching energy of the line per rail-to-rail
// transition at supply vdd: Cw·Vdd².
func (l Line) Energy(lengthM, vdd float64) float64 {
	return l.CPerM() * lengthM * vdd * vdd
}

// TimeOfFlightBound returns a loose lower bound on propagation delay from
// the RC diffusion: the delay of the same line with an ideal driver.
func (l Line) TimeOfFlightBound(lengthM float64) float64 {
	return l.ElmoreDelay(lengthM)
}

// CrossChipLength returns the die-edge length (m) for a node — the canonical
// "corner-to-corner-ish" global wire the paper's cross-chip communication
// concerns: the die is modeled square.
func CrossChipLength(nodeNM int) (float64, error) {
	return CrossChipLengthIn(itrs.Base(), nodeNM)
}

// CrossChipLengthIn is CrossChipLength against an explicit roadmap table.
func CrossChipLengthIn(t *itrs.Table, nodeNM int) (float64, error) {
	n, err := t.ByNode(nodeNM)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(n.DieAreaM2), nil
}
