package wire

import (
	"math"
	"testing"
	"testing/quick"

	"nanometer/internal/itrs"
	"nanometer/internal/units"
)

func TestForNodeTiers(t *testing.T) {
	for _, nm := range itrs.Nodes() {
		local := MustForNode(nm, Local)
		global := MustForNode(nm, Global)
		if local.RPerM() <= global.RPerM() {
			t.Errorf("%d nm: local wire must be more resistive than global", nm)
		}
		if local.WidthM <= 0 || global.ThicknessM <= 0 {
			t.Errorf("%d nm: non-positive geometry", nm)
		}
		inter := MustForNode(nm, Intermediate)
		if inter.RPerM() >= local.RPerM() || inter.RPerM() <= global.RPerM() {
			t.Errorf("%d nm: intermediate tier must fall between local and global", nm)
		}
	}
}

func TestForNodeErrors(t *testing.T) {
	if _, err := ForNode(65, Global); err == nil {
		t.Fatalf("unknown node must error")
	}
	if _, err := ForNode(100, Tier(9)); err == nil {
		t.Fatalf("unknown tier must error")
	}
}

func TestGlobalResistanceRisesWithScaling(t *testing.T) {
	prev := 0.0
	for _, nm := range itrs.Nodes() {
		r := MustForNode(nm, Global).RPerM()
		if r <= prev {
			t.Fatalf("%d nm: scaled global wire resistance must rise with scaling", nm)
		}
		prev = r
	}
}

func TestUnscaledGlobal(t *testing.T) {
	u := UnscaledGlobal()
	// The unscaled top-level wire is the escape hatch of [9]: much less
	// resistive than the scaled 50 nm global tier.
	scaled := MustForNode(50, Global)
	if u.RPerM() >= scaled.RPerM()/3 {
		t.Fatalf("unscaled global wire must be far less resistive (%g vs %g)", u.RPerM(), scaled.RPerM())
	}
	// ~44 Ω/mm for 0.5×1.0 µm copper.
	if got := u.RPerM() / 1e3; got < 30 || got > 60 {
		t.Fatalf("unscaled global R = %g Ω/mm, want ≈44", got)
	}
}

func TestCapacitancePerLength(t *testing.T) {
	// The ~0.2 fF/µm invariant.
	l := MustForNode(100, Global)
	if !units.ApproxEqual(l.CPerM(), 2e-10, 1e-12, 0) {
		t.Fatalf("C = %g F/m, want 2e-10", l.CPerM())
	}
	if l.CCouplingPerM() >= l.CPerM() {
		t.Fatalf("coupling component must be a fraction of the total")
	}
}

func TestElmoreQuadratic(t *testing.T) {
	l := MustForNode(70, Global)
	f := func(seed uint8) bool {
		x := 1e-4 * (1 + float64(seed)) // 0.1–25.6 mm
		return units.ApproxEqual(l.ElmoreDelay(2*x), 4*l.ElmoreDelay(x), 1e-9, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDrivenDelayLimits(t *testing.T) {
	l := MustForNode(70, Global)
	const length = 1e-3
	// With an ideal driver and no load the driven delay reduces to the
	// distributed Elmore term.
	if got, want := l.DrivenDelay(length, 0, 0), l.ElmoreDelay(length); !units.ApproxEqual(got, want, 1e-9, 0) {
		t.Fatalf("ideal-driver delay = %g, want Elmore %g", got, want)
	}
	// Adding drive resistance or load can only slow it.
	if l.DrivenDelay(length, 1e3, 0) <= l.ElmoreDelay(length) {
		t.Fatalf("driver resistance must add delay")
	}
	if l.DrivenDelay(length, 1e3, 1e-14) <= l.DrivenDelay(length, 1e3, 0) {
		t.Fatalf("load must add delay")
	}
}

func TestEnergy(t *testing.T) {
	l := MustForNode(50, Global)
	// 1 mm at 0.6 V: C = 0.2 pF → E = CV² = 72 fJ.
	if got := l.Energy(1e-3, 0.6); !units.ApproxEqual(got, 72e-15, 1e-9, 0) {
		t.Fatalf("wire energy = %g, want 72 fJ", got)
	}
}

func TestCrossChipLength(t *testing.T) {
	got, err := CrossChipLength(35)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(itrs.MustNode(35).DieAreaM2)
	if !units.ApproxEqual(got, want, 1e-12, 0) {
		t.Fatalf("cross-chip length = %g, want %g", got, want)
	}
	if _, err := CrossChipLength(65); err == nil {
		t.Fatalf("unknown node must error")
	}
}

func TestTierString(t *testing.T) {
	if Local.String() != "local" || Intermediate.String() != "intermediate" || Global.String() != "global" {
		t.Fatalf("tier strings broken")
	}
}
