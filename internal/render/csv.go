package render

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"nanometer/internal/result"
)

// CSV streams every item of a result as a comma-separated block headed by a
// "# <artifact> <kind> ..." comment line and separated by blank lines.
// Figure blocks carry exactly the bytes the legacy -csv directory dump
// wrote per file, so existing figure-CSV consumers keep parsing; tables and
// claim findings — previously locked inside the text report — become CSV
// here too.
type CSV struct{}

// Encode writes the result's items in order. A scenario-labeled result
// leads with a "# scenario:" comment; the empty label emits nothing extra,
// preserving byte identity with the pre-scenario output.
func (CSV) Encode(w io.Writer, res *result.Result) error {
	if res.Scenario != "" {
		fmt.Fprintf(w, "# scenario: %s\n", res.Scenario)
	}
	for _, it := range res.Items {
		var err error
		switch {
		case it.Table != nil:
			err = encodeTableCSV(w, res.ID, it.Table)
		case it.Figure != nil:
			err = encodeFigureCSV(w, res.ID, it.Figure)
		case it.Claim != nil:
			err = encodeClaimCSV(w, res.ID, it.Claim)
		default:
			err = fmt.Errorf("render: %s: empty item", res.ID)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func encodeTableCSV(w io.Writer, id string, t *result.Table) error {
	fmt.Fprintf(w, "# %s table: %s\n", id, t.Title)
	writeRecord(w, t.Headers)
	for _, row := range t.Rows {
		writeRecord(w, row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# note: %s\n", n)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteFigureCSV emits one figure's data, byte-identical to the legacy
// per-figure CSV files (wide format when the series share an x grid, long
// format otherwise).
func WriteFigureCSV(w io.Writer, f *result.Figure) error {
	return toReportFigure(f).WriteCSV(w)
}

func encodeFigureCSV(w io.Writer, id string, f *result.Figure) error {
	fmt.Fprintf(w, "# %s figure %s: %s\n", id, f.Name, f.Title)
	if err := WriteFigureCSV(w, f); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

func encodeClaimCSV(w io.Writer, id string, c *result.Claim) error {
	fmt.Fprintf(w, "# %s claim findings\n", id)
	writeRecord(w, []string{"key", "value", "unit", "text", "paper", "pass"})
	for _, f := range c.Findings {
		rec := []string{f.Key, formatFloat(f.Value), f.Unit, f.Text, "", ""}
		if f.Check != nil {
			rec[4] = formatFloat(f.Check.Paper)
			rec[5] = strconv.FormatBool(f.Check.Pass)
		}
		writeRecord(w, rec)
	}
	_, err := fmt.Fprintln(w)
	return err
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func writeRecord(w io.Writer, cells []string) {
	for i, c := range cells {
		if i > 0 {
			io.WriteString(w, ",")
		}
		io.WriteString(w, csvEscape(c))
	}
	io.WriteString(w, "\n")
}

// csvEscape quotes a cell when it contains a separator, quote, or newline
// (same dialect as the figure writer in internal/report).
func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
