package render

import (
	"encoding/json"
	"io"

	"nanometer/internal/result"
)

// JSON encodes results as data. The output unmarshals back into the
// internal/result types without loss, so downstream sweeps, dashboards, and
// regression gates consume the same schema the compute layer produces.
type JSON struct {
	// Indent, when non-empty, pretty-prints with that indent string.
	Indent string
}

// Encode writes one artifact result as a single JSON document followed by a
// newline.
func (j JSON) Encode(w io.Writer, res *result.Result) error {
	return j.encode(w, res)
}

// EncodeReport writes a full run — {"artifacts": [...]} — as one document.
func (j JSON) EncodeReport(w io.Writer, rep *result.Report) error {
	return j.encode(w, rep)
}

func (j JSON) encode(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	if j.Indent != "" {
		enc.SetIndent("", j.Indent)
	}
	return enc.Encode(v)
}
