// Package render is the encode layer of the reproduction pipeline: it turns
// the typed results of the compute layer (internal/result) into consumable
// output. Three encoders share one input schema — Text reproduces the
// classic terminal report byte for byte, JSON emits the results as data,
// and CSV streams tables, figures, and claim findings as comma-separated
// blocks. internal/report supplies the low-level table/figure writers; it
// is an implementation detail of this package, not an artifact API.
package render

import (
	"nanometer/internal/report"
	"nanometer/internal/result"
)

// toReportTable adapts a typed table to the terminal table writer.
func toReportTable(t *result.Table) *report.Table {
	return &report.Table{Title: t.Title, Headers: t.Headers, Rows: t.Rows, Notes: t.Notes}
}

// toReportFigure adapts a typed figure to the plot/CSV writers.
func toReportFigure(f *result.Figure) *report.Figure {
	rf := &report.Figure{Title: f.Title, XLabel: f.XLabel, YLabel: f.YLabel, LogX: f.LogX, LogY: f.LogY}
	for i := range f.Series {
		s := &f.Series[i]
		rf.Series = append(rf.Series, &report.Series{Name: s.Name, X: s.X, Y: s.Y})
	}
	return rf
}
