package render_test

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"nanometer/internal/render"
	"nanometer/internal/repro"
	"nanometer/internal/result"
	"nanometer/internal/runner"
)

func computeOne(t *testing.T, id string) *result.Result {
	t.Helper()
	arts, err := repro.Select([]string{id})
	if err != nil {
		t.Fatal(err)
	}
	res, err := arts[0].ComputeCached(repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestJSONRoundTripsThroughResultTypes: the JSON encoding of real computed
// artifacts — one of each shape: plain table, table+figure, prose claim —
// unmarshals back into the result types with nothing lost.
func TestJSONRoundTripsThroughResultTypes(t *testing.T) {
	for _, id := range []string{"t1", "f2", "c7"} {
		res := computeOne(t, id)
		var buf bytes.Buffer
		if err := (render.JSON{}).Encode(&buf, res); err != nil {
			t.Fatal(err)
		}
		var back result.Result
		if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
			t.Fatalf("%s: invalid JSON: %v", id, err)
		}
		if !reflect.DeepEqual(res, &back) {
			t.Fatalf("%s: JSON round trip lost data", id)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("%s: decoded result invalid: %v", id, err)
		}
	}
}

// TestJSONReportCoversAllArtifacts is the acceptance gate: the full-run
// JSON document is valid, covers all 22 artifacts, and round-trips.
func TestJSONReportCoversAllArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("computes the full registry")
	}
	arts := repro.Artifacts()
	results, err := repro.ComputeAll(runner.Pool{}, arts, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := &result.Report{Artifacts: results}
	var buf bytes.Buffer
	if err := (render.JSON{Indent: "  "}).EncodeReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back result.Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("full report is not valid JSON: %v", err)
	}
	if len(back.Artifacts) != len(arts) {
		t.Fatalf("JSON report has %d artifacts, want %d", len(back.Artifacts), len(arts))
	}
	for i, r := range back.Artifacts {
		if r.ID != arts[i].ID {
			t.Fatalf("artifact %d: ID %q, want %q", i, r.ID, arts[i].ID)
		}
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(results[i], r) {
			t.Fatalf("artifact %s changed across the round trip", r.ID)
		}
	}
}

// TestCSVMatchesLegacyFigureDump: the figure block of the CSV encoder must
// carry exactly the bytes the text encoder's -csv directory dump writes —
// the format downstream plotting already parses.
func TestCSVMatchesLegacyFigureDump(t *testing.T) {
	res := computeOne(t, "f2")
	dir := t.TempDir()
	var txt bytes.Buffer
	if err := (render.Text{CSVDir: dir}).Encode(&txt, res); err != nil {
		t.Fatal(err)
	}
	legacy, err := os.ReadFile(filepath.Join(dir, "figure2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	if err := (render.CSV{}).Encode(&stream, res); err != nil {
		t.Fatal(err)
	}
	// Extract the figure block: from its comment header to the blank line.
	out := stream.String()
	marker := "# f2 figure figure2:"
	i := strings.Index(out, marker)
	if i < 0 {
		t.Fatalf("CSV stream missing figure block header:\n%s", out)
	}
	block := out[i:]
	block = block[strings.Index(block, "\n")+1:] // drop the comment line
	if j := strings.Index(block, "\n\n"); j >= 0 {
		block = block[:j+1]
	}
	if block != string(legacy) {
		t.Fatalf("CSV figure block differs from legacy file:\n got:\n%s\nwant:\n%s", block, legacy)
	}
}

// TestCSVCoversEveryItemKind: tables and claims, previously locked inside
// the text report, must appear in the CSV stream too.
func TestCSVCoversEveryItemKind(t *testing.T) {
	var buf bytes.Buffer
	for _, id := range []string{"t1", "c7"} {
		if err := (render.CSV{}).Encode(&buf, computeOne(t, id)); err != nil {
			t.Fatal(err)
		}
	}
	out := buf.String()
	for _, want := range []string{"# t1 table:", "# c7 claim findings", "key,value,unit,text,paper,pass", "vdd_floor,"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV stream missing %q:\n%s", want, out)
		}
	}
}

// TestVerboseAppendsChecks: Options.Verbose (the CLI's -v) appends the
// paper-check lines to claims and only to claims.
func TestVerboseAppendsChecks(t *testing.T) {
	res := computeOne(t, "c7")
	var quiet, loud bytes.Buffer
	if err := (render.Text{}).Encode(&quiet, res); err != nil {
		t.Fatal(err)
	}
	if err := (render.Text{Verbose: true}).Encode(&loud, res); err != nil {
		t.Fatal(err)
	}
	if quiet.String() == loud.String() {
		t.Fatal("verbose output must differ")
	}
	if !strings.HasPrefix(loud.String(), quiet.String()[:len(quiet.String())-1]) {
		t.Fatal("verbose must only append to the claim body")
	}
	if !strings.Contains(loud.String(), "check vdd_floor") || !strings.Contains(loud.String(), "PASS") {
		t.Fatalf("verbose output missing check lines:\n%s", loud.String())
	}
	if strings.Contains(quiet.String(), "check vdd_floor") {
		t.Fatal("quiet output must not carry check lines")
	}
}

// TestClaimTemplateMissingFinding: a template asking for a finding the
// compute layer didn't produce must fail loudly, not print zeros.
func TestClaimTemplateMissingFinding(t *testing.T) {
	res := &result.Result{ID: "c7", Title: "broken", Items: nil}
	res.AddClaim(&result.Claim{}) // no findings at all
	var buf bytes.Buffer
	err := (render.Text{}).Encode(&buf, res)
	if err == nil || !strings.Contains(err.Error(), "missing finding") {
		t.Fatalf("want missing-finding error, got %v", err)
	}
}

// TestTextUnknownClaim: results for claims without a registered template
// must error instead of silently vanishing.
func TestTextUnknownClaim(t *testing.T) {
	res := &result.Result{ID: "c99", Title: "unknown"}
	res.AddClaim(&result.Claim{})
	if err := (render.Text{}).Encode(io.Discard, res); err == nil {
		t.Fatal("unknown claim ID must error")
	}
}
