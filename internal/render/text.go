package render

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"nanometer/internal/result"
)

// Text encodes results as the classic terminal report. For any result the
// compute layer produces today, the output is byte-identical to the
// pre-split renderers (the golden test in internal/repro enforces this).
type Text struct {
	// CSVDir, when non-empty, is the directory figure CSVs are written to
	// as a side effect, announced with a "wrote <path>" line.
	CSVDir string
	// Plot renders terminal plots instead of compact figure summaries.
	Plot bool
	// Verbose appends the paper checks of each claim finding.
	Verbose bool
}

// Encode writes the result's items in order. A scenario-labeled result is
// announced first; the empty label (the base roadmap) emits nothing extra,
// preserving byte identity with the pre-scenario output.
func (t Text) Encode(w io.Writer, res *result.Result) error {
	if res.Scenario != "" {
		fmt.Fprintf(w, "[scenario %s]\n", res.Scenario)
	}
	for _, it := range res.Items {
		var err error
		switch {
		case it.Table != nil:
			_, err = toReportTable(it.Table).WriteTo(w)
		case it.Figure != nil:
			err = t.encodeFigure(w, it.Figure)
		case it.Claim != nil:
			err = t.encodeClaim(w, res.ID, it.Claim)
		default:
			err = fmt.Errorf("render: %s: empty item", res.ID)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// encodeFigure writes the figure (plot or compact endpoint summary) and,
// when requested, its CSV. A CSV failure is returned after the textual
// output so the artifact still shows its data; the caller's error
// aggregation reports the broken file.
func (t Text) encodeFigure(w io.Writer, f *result.Figure) error {
	if t.Plot {
		toReportFigure(f).RenderASCII(w, 72, 18)
		fmt.Fprintln(w)
	} else {
		// Compact textual dump: endpoint summary per series.
		fmt.Fprintf(w, "%s\n", f.Title)
		for i := range f.Series {
			s := &f.Series[i]
			if len(s.X) == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-40s (%.3g, %.3g) → (%.3g, %.3g), %d pts\n",
				s.Name, s.X[0], s.Y[0], s.X[len(s.X)-1], s.Y[len(s.Y)-1], len(s.X))
		}
		fmt.Fprintln(w)
	}
	if t.CSVDir == "" {
		return nil
	}
	path := filepath.Join(t.CSVDir, f.Name+".csv")
	file, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if err := toReportFigure(f).WriteCSV(file); err != nil {
		file.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if err := file.Close(); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	fmt.Fprintf(w, "  wrote %s\n\n", path)
	return nil
}

// encodeClaim runs the claim's prose template, then the optional verbose
// check block, then the separating blank line the legacy renderers ended
// every claim with.
func (t Text) encodeClaim(w io.Writer, id string, c *result.Claim) error {
	tpl, ok := claimText[id]
	if !ok {
		// Trace-simulation claims are user-authored, one per trace name,
		// so they share one generic template instead of per-ID prose.
		if !strings.HasPrefix(id, "trace:") {
			return fmt.Errorf("render: no text template for claim %s", id)
		}
		tpl = textTrace
	}
	v := &claimView{id: id, c: c}
	tpl(w, v)
	if v.err != nil {
		return v.err
	}
	if t.Verbose {
		for _, f := range c.Findings {
			if f.Check == nil {
				continue
			}
			status := "PASS"
			if !f.Check.Pass {
				status = "FAIL"
			}
			unit := f.Unit
			if unit != "" {
				unit = " " + unit
			}
			fmt.Fprintf(w, "  check %-26s %.4g%s vs paper %.4g (±%.0f%%) → %s\n",
				f.Key, f.Value, unit, f.Check.Paper, f.Check.RelTol*100, status)
		}
	}
	fmt.Fprintln(w)
	return nil
}

// claimView gives the templates typed access to findings by key. A missing
// key records an error instead of panicking mid-report; the encoder
// surfaces it after the template runs.
type claimView struct {
	id  string
	c   *result.Claim
	err error
}

func (v *claimView) find(key string) result.Finding {
	f, ok := v.c.Find(key)
	if !ok && v.err == nil {
		v.err = fmt.Errorf("render: claim %s: missing finding %q", v.id, key)
	}
	return f
}

// n returns the numeric value of a finding.
func (v *claimView) n(key string) float64 { return v.find(key).Value }

// i returns the numeric value as an int (counts in the prose).
func (v *claimView) i(key string) int { return int(v.find(key).Value) }

// s returns the textual value of a finding.
func (v *claimView) s(key string) string { return v.find(key).Text }

// b returns a boolean finding.
func (v *claimView) b(key string) bool { return v.find(key).Text == "true" }

// claimText holds the per-claim prose templates. Each template writes the
// claim's content lines ("\n"-terminated, no trailing blank line — the
// encoder owns the separator) from the findings alone, preserving the
// pre-split renderers' exact formats.
var claimText = map[string]func(io.Writer, *claimView){
	"c1":  textC1,
	"c3":  textC3,
	"c4":  textC4,
	"c5":  textC5,
	"c6":  textC6,
	"c7":  textC7,
	"c8":  textC8,
	"c9":  textC9,
	"c10": textC10,
	"c12": textC12,
	"c13": textC13,
}

func textTrace(w io.Writer, v *claimView) {
	fmt.Fprintf(w, "Trace %s: %d intervals × %.3g s at the %d nm node (DTM: %s)\n",
		strings.TrimPrefix(v.id, "trace:"), v.i("intervals"), v.n("dt_seconds"), v.i("node_nm"), v.s("controller"))
	fmt.Fprintf(w, "  junction peak %.1f °C; power peak %.1f W, mean %.1f W (theoretical max %.0f W)\n",
		v.n("peak_temp_c"), v.n("peak_power_w"), v.n("mean_power_w"), v.n("theoretical_max_w"))
	fmt.Fprintf(w, "  throttled %.1f%% of intervals, throughput %.1f%%, backlog %.3g intervals of work\n",
		v.n("throttled_fraction")*100, v.n("throughput")*100, v.n("backlog_intervals"))
	fmt.Fprintf(w, "  DVFS vs full-voltage gating energy: %.2f×\n", v.n("dvfs_energy_ratio"))
}

func textC1(w io.Writer, v *claimView) {
	fmt.Fprintf(w, "C1. Dynamic thermal management (%d nm node)\n", v.i("node_nm"))
	fmt.Fprintf(w, "  theoretical worst case: %.0f W; effective worst case under DTM: %.0f W (%.0f%% — paper ≈75%%)\n",
		v.n("theoretical_worst_w"), v.n("effective_worst_w"), v.n("effective_fraction")*100)
	fmt.Fprintf(w, "  allowable θja relief: +%.0f%% (paper: +33%%)\n", v.n("theta_ja_headroom")*100)
	fmt.Fprintf(w, "  cooling: %s ($%.0f) vs %s ($%.0f) — %.1f× cheaper\n",
		v.s("cooling_theoretical_class"), v.n("cooling_theoretical_cost_usd"),
		v.s("cooling_effective_class"), v.n("cooling_effective_cost_usd"), v.n("cooling_cost_ratio"))
	fmt.Fprintf(w, "  power virus on the DTM-sized package: peak %.1f °C (limit held), throughput %.0f%%\n",
		v.n("virus_peak_temp_c"), v.n("virus_throughput")*100)
	fmt.Fprintf(w, "  65→75 W cooling-cost step at the 1999 point: %.1f× (paper: ~3×)\n", v.n("intel_65_to_75"))
}

func textC3(w io.Writer, v *claimView) {
	fmt.Fprintf(w, "C3. Library optimization at fixed timing (%d gates, %d nm)\n", v.i("gates"), v.i("node_nm"))
	for i := 0; i < v.i("n_libraries"); i++ {
		k := fmt.Sprintf("lib%d_", i)
		fmt.Fprintf(w, "  %-32s power %.3f mW  size %.0f  met=%s\n",
			v.s(k+"name"), v.n(k+"power_w")*1e3, v.n(k+"size"), v.s(k+"timing_met"))
	}
	fmt.Fprintf(w, "  on-the-fly vs coarse library: %.0f%% power saving (paper: 15-22%%); vs rich: %.0f%%\n",
		v.n("continuous_vs_coarse")*100, v.n("continuous_vs_rich")*100)
}

func textC4(w io.Writer, v *claimView) {
	fmt.Fprintf(w, "C4. Clustered voltage scaling (Vdd,l = %.2f·Vdd,h)\n", v.n("low_vdd_ratio"))
	fmt.Fprintf(w, "  path utilization: %.0f%% of paths below half the cycle (paper: >50%%)\n", v.n("path_utilization")*100)
	fmt.Fprintf(w, "  clustered:   %.0f%% of gates at Vdd,l (paper ~75%%), dynamic saving %.0f%% (paper 45-50%%),\n"+
		"               LC overhead %.1f%% (paper 8-10%%), area +%.0f%% (paper ~15%%), %d LCs, met=%s\n",
		v.n("clustered_assigned_fraction")*100, v.n("clustered_dynamic_saving")*100,
		v.n("clustered_lc_overhead")*100, v.n("clustered_area_overhead")*100,
		v.i("clustered_level_converters"), v.s("clustered_timing_met"))
	fmt.Fprintf(w, "  unclustered: %.0f%% assigned, saving %.0f%%, LC overhead %.1f%%, %d LCs (clustering ablation)\n",
		v.n("unclustered_assigned_fraction")*100, v.n("unclustered_dynamic_saving")*100,
		v.n("unclustered_lc_overhead")*100, v.i("unclustered_level_converters"))
}

func textC5(w io.Writer, v *claimView) {
	fmt.Fprintf(w, "C5. Dual-Vth assignment\n")
	fmt.Fprintf(w, "  sensitivity-ordered: %.0f%% high-Vth, leakage -%.0f%% (paper 40-80%%), delay +%.1f%%, met=%s\n",
		v.n("sensitivity_high_vth_fraction")*100, v.n("sensitivity_leakage_saving")*100,
		v.n("sensitivity_delay_penalty")*100, v.s("sensitivity_timing_met"))
	fmt.Fprintf(w, "  slack-ordered (ablation): %.0f%% high-Vth, leakage -%.0f%%\n",
		v.n("slack_high_vth_fraction")*100, v.n("slack_leakage_saving")*100)
}

func textC6(w io.Writer, v *claimView) {
	fmt.Fprintf(w, "C6. Re-sizing vs multi-Vdd (same start netlist)\n")
	fmt.Fprintf(w, "  resize: size -%.0f%% → dynamic -%.0f%% (sublinearity %.2f — wire cap persists)\n",
		v.n("resize_size_reduction")*100, v.n("resize_dynamic_saving")*100, v.n("resize_sublinearity"))
	fmt.Fprintf(w, "  CVS:    %.0f%% assigned → dynamic -%.0f%% (quadratic Vdd leverage)\n",
		v.n("cvs_assigned_fraction")*100, v.n("cvs_dynamic_saving")*100)
	fmt.Fprintf(w, "  combined flow: total -%.0f%% (dyn -%.0f%%, leak -%.0f%%), met=%s\n",
		v.n("combined_total_saving")*100, v.n("combined_dynamic_saving")*100,
		v.n("combined_leakage_saving")*100, v.s("combined_timing_met"))
	fmt.Fprintf(w, "  resize-then-CVS: only %.0f%% of gates still tolerate Vdd,l (paper's ordering warning)\n",
		v.n("assigned_after_resize")*100)
}

func textC7(w io.Writer, v *claimView) {
	fmt.Fprintf(w, "C7. Vdd floor under Pdyn ≥ 10×Pstatic (35 nm, constant-Pstatic policy)\n")
	fmt.Fprintf(w, "  floor: Vdd = %.2f V (paper ≈0.44 V), dynamic saving %.0f%% (paper 46%%)\n",
		v.n("vdd_floor"), v.n("dynamic_saving")*100)
	fmt.Fprintf(w, "  at 0.2 V: delay ×%.2f (paper <1.3×), Pdyn -%.0f%% (paper 89%%), Vth = %.0f mV\n",
		v.n("at02_delay_norm"), (1-v.n("at02_pdyn_norm"))*100, v.n("at02_vth")*1e3)
}

func textC8(w io.Writer, v *claimView) {
	fmt.Fprintf(w, "C8. ITRS bump plan at 35 nm\n")
	fmt.Fprintf(w, "  effective power-bump pitch: %.0f µm (paper: 356 µm); attainable: %.0f µm\n",
		v.n("effective_pitch_m")*1e6, v.n("min_pitch_m")*1e6)
	fmt.Fprintf(w, "  required rail width: %.0f× Wmin under ITRS counts (paper >2000×, rails %s), %.0f× at min pitch (paper 16×)\n",
		v.n("itrs_width_over_min"), feasStr(v.b("itrs_feasible")), v.n("min_width_over_min"))
	fmt.Fprintf(w, "  bump current: %.0f A over %d Vdd bumps = %.2f A/bump vs %.2f A capability → need %d bumps\n",
		v.n("supply_current_a"), v.i("vdd_bumps"), v.n("per_bump_a"), v.n("capability_a"), v.i("required_bumps"))
	fmt.Fprintf(w, "  solver check: 1-D ladder/analytic = %.3f (≈1); 2-D all-top-metal bound = %.1f×\n",
		v.n("ladder_ratio"), v.n("pessimistic_ratio"))
}

func textC9(w io.Writer, v *claimView) {
	fmt.Fprintf(w, "C9. Sleep-mode wakeup transients and MCML (%d nm)\n", v.i("node_nm"))
	fmt.Fprintf(w, "  MTCMOS block: standby leakage -%.1f%%, active delay +%.1f%%\n",
		v.n("block_standby_savings")*100, v.n("block_delay_penalty")*100)
	fmt.Fprintf(w, "  unstaged wakeup of a %.0f A block: droop %.1f%% Vdd at min bump pitch vs %.1f%% under ITRS counts\n",
		v.n("block_step_a"), v.n("noise_min_pitch_fraction")*100, v.n("noise_itrs_fraction")*100)
	fmt.Fprintf(w, "  staging required for <10%% droop: %.1f ns (min pitch) vs %.1f ns (ITRS); max instant step %.0f A vs %.0f A\n",
		v.n("safe_ramp_min_pitch_s")*1e9, v.n("safe_ramp_itrs_s")*1e9,
		v.n("max_instant_step_min_a"), v.n("max_instant_step_itrs_a"))
	fmt.Fprintf(w, "  MCML vs CMOS datapath gate (α=0.5): %.2f µW vs %.2f µW, crossover α*=%.2f, di/dt ratio %.3f\n",
		v.n("mcml_power_w")*1e6, v.n("cmos_power_w")*1e6, v.n("crossover_activity"), v.n("current_ripple_ratio"))
}

func textC10(w io.Writer, v *claimView) {
	fmt.Fprintf(w, "C10. Intra-cell multi-Vth stacks (§3.3, %d nm 2-high NAND pull-down)\n", v.i("node_nm"))
	labels := []string{"all low Vth", "bottom high", "top high", "all high"}
	n := v.i("n_assignments")
	if n > len(labels) {
		n = len(labels)
	}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("a%d_", i)
		fmt.Fprintf(w, "  %-12s leakage -%5.1f%%  delay +%5.1f%%\n",
			labels[i], v.n(k+"leakage_saving")*100, v.n(k+"delay_penalty")*100)
	}
	fmt.Fprintf(w, "  best within 10%% delay: %d high-Vth device(s), leakage -%.0f%%\n",
		v.i("best_high_count"), v.n("best_leakage_saving")*100)
	fmt.Fprintf(w, "  stack effect: both-off leaks %.2f× a single off device; parking the idle state saves %.0f%%\n",
		v.n("stack_factor"), v.n("parked_saving")*100)
}

func textC12(w io.Writer, v *claimView) {
	fmt.Fprintf(w, "C12. Tolerable-swing study (the §2.2 \"further study\" — %d nm global route, SNR ≥ 2)\n", v.i("node_nm"))
	study := func(name, k string) {
		if !v.b(k + "feasible") {
			fmt.Fprintf(w, "  %-28s no swing closes (shielding insufficient — the paper's caveat)\n", name)
			return
		}
		alpha := "fails"
		if v.b(k + "alpha_swing_ok") {
			alpha = "closes"
		}
		fmt.Fprintf(w, "  %-28s min swing %.1f%% of Vdd (energy ×%.2f); Alpha's 10%% swing %s\n",
			name, v.n(k+"min_swing_frac")*100, v.n(k+"energy_ratio_at_min"), alpha)
	}
	study("differential, shielded", "diff_shielded_")
	study("differential, unshielded", "diff_bare_")
	study("single-ended, shielded", "se_shielded_")
	study("single-ended, unshielded", "se_bare_")
}

func textC13(w io.Writer, v *claimView) {
	fmt.Fprintf(w, "C13. Signaling-primitive planner (conclusion #2's EDA tool, %d nm, %d global routes)\n",
		v.i("node_nm"), v.i("routes"))
	fmt.Fprintf(w, "  primitive mix: %d repeated CMOS, %d low-swing, %d differential low-swing\n",
		v.i("repeated"), v.i("low_swing"), v.i("differential"))
	fmt.Fprintf(w, "  power: %.2f mW vs %.2f mW all-repeated baseline (-%.0f%%), %.0f routing tracks\n",
		v.n("total_power_w")*1e3, v.n("baseline_power_w")*1e3, v.n("saving")*100, v.n("total_tracks"))
}

func feasStr(ok bool) string {
	if ok {
		return "feasible"
	}
	return "INFEASIBLE on-die"
}
