package mathx

import (
	"fmt"
	"sort"
)

// Interpolator performs piecewise-linear interpolation over a strictly
// increasing set of x samples. Queries outside the sample range extrapolate
// linearly from the nearest segment (the roadmap tables are smooth enough
// that clamping would hide trends).
type Interpolator struct {
	xs, ys []float64
}

// NewInterpolator builds an interpolator from parallel slices. The xs must
// be strictly increasing and len(xs) == len(ys) >= 2.
func NewInterpolator(xs, ys []float64) (*Interpolator, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("mathx: mismatched lengths %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return nil, fmt.Errorf("mathx: need at least 2 points, got %d", len(xs))
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return nil, fmt.Errorf("mathx: xs not strictly increasing at index %d (%g <= %g)", i, xs[i], xs[i-1])
		}
	}
	in := &Interpolator{xs: append([]float64(nil), xs...), ys: append([]float64(nil), ys...)}
	return in, nil
}

// At returns the interpolated value at x.
func (in *Interpolator) At(x float64) float64 {
	n := len(in.xs)
	// sort.SearchFloat64s returns the insertion point.
	i := sort.SearchFloat64s(in.xs, x)
	switch {
	case i == 0:
		i = 1
	case i >= n:
		i = n - 1
	}
	x0, x1 := in.xs[i-1], in.xs[i]
	y0, y1 := in.ys[i-1], in.ys[i]
	t := (x - x0) / (x1 - x0)
	return y0 + t*(y1-y0)
}

// Linspace returns n evenly spaced values from a to b inclusive.
func Linspace(a, b float64, n int) []float64 {
	if n < 2 {
		return []float64{a}
	}
	out := make([]float64, n)
	step := (b - a) / float64(n-1)
	for i := range out {
		out[i] = a + float64(i)*step
	}
	out[n-1] = b
	return out
}

// Logspace returns n logarithmically spaced values from a to b inclusive
// (a, b > 0).
func Logspace(a, b float64, n int) []float64 {
	if a <= 0 || b <= 0 {
		panic("mathx: Logspace requires positive endpoints")
	}
	if n < 2 {
		return []float64{a}
	}
	out := make([]float64, n)
	la, lb := log(a), log(b)
	step := (lb - la) / float64(n-1)
	for i := range out {
		out[i] = exp(la + float64(i)*step)
	}
	out[n-1] = b
	return out
}
