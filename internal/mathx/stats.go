package mathx

import (
	"math"
	"sort"
)

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N            int
	Min, Max     float64
	Mean, Stddev float64
	Median       float64
	P10, P90     float64
}

// Summarize computes descriptive statistics for xs. An empty input returns
// the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	sum, sumSq := 0.0, 0.0
	for _, x := range sorted {
		sum += x
		sumSq += x * x
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   mean,
		Stddev: math.Sqrt(variance),
		Median: Quantile(sorted, 0.5),
		P10:    Quantile(sorted, 0.10),
		P90:    Quantile(sorted, 0.90),
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an ascending-sorted sample
// using linear interpolation between order statistics.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// GeometricMean returns the geometric mean of positive samples.
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Lerp linearly interpolates between a and b by t.
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }
