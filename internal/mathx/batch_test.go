package mathx

import (
	"math"
	"testing"
)

// batchFixture builds k same-pattern mesh systems (one grid size, varied
// conductance) with per-variant RHS, plus the per-variant preconditioners
// and workspaces both the solo and batch paths need.
func batchFixture(t testing.TB, n, k int) ([]*Workspace, []Preconditioner, []*SparseMatrix, [][]float64) {
	t.Helper()
	wss := make([]*Workspace, k)
	pres := make([]Preconditioner, k)
	mats := make([]*SparseMatrix, k)
	bs := make([][]float64, k)
	for v := 0; v < k; v++ {
		g := 1.0 + 0.15*float64(v)
		m, mg, b := buildMesh(t, n, g, int64(1000+7*v))
		if err := mg.SetConductance(g); err != nil {
			t.Fatal(err)
		}
		wss[v], pres[v], mats[v], bs[v] = new(Workspace), mg, m, b
	}
	return wss, pres, mats, bs
}

// TestBatchMatchesSoloBitwise is the contract the sweep fast path stands
// on: every variant of a lockstep batch produces the EXACT float bits of a
// solo SolveMGW on the same system — same solution, same iteration count —
// regardless of who shares the batch. (These matrices are built
// independently, so this also exercises samePattern's content-comparison
// fallback rather than the shared-backing fast path.)
func TestBatchMatchesSoloBitwise(t *testing.T) {
	for _, n := range []int{15, 31, 63} {
		const k = 3
		cnt := n*n - 1
		solo := make([][]float64, k)
		soloIters := make([]int, k)
		wss, pres, mats, bs := batchFixture(t, n, k)
		for v := 0; v < k; v++ {
			x, iters, err := mats[v].SolveMGW(wss[v], pres[v], bs[v], 1e-10, 20*cnt)
			if err != nil {
				t.Fatalf("n=%d solo %d: %v", n, v, err)
			}
			solo[v] = append([]float64(nil), x...)
			soloIters[v] = iters
		}
		// Fresh state for the batch: MeshMG and workspaces are stateful.
		wss, pres, mats, bs = batchFixture(t, n, k)
		xs, iters, errs := SolveMGBatchW(wss, pres, mats, bs, 1e-10, 20*cnt)
		for v := 0; v < k; v++ {
			if errs[v] != nil {
				t.Fatalf("n=%d batch %d: %v", n, v, errs[v])
			}
			if iters[v] != soloIters[v] {
				t.Errorf("n=%d variant %d: batch %d iterations, solo %d", n, v, iters[v], soloIters[v])
			}
			for i := range xs[v] {
				if math.Float64bits(xs[v][i]) != math.Float64bits(solo[v][i]) {
					t.Fatalf("n=%d variant %d: batch diverges from solo at %d: %x vs %x",
						n, v, i, math.Float64bits(xs[v][i]), math.Float64bits(solo[v][i]))
				}
			}
		}
		// A singleton batch must match too — batch composition (k=1 vs
		// k=3) must never leak into any variant's bits.
		wss, pres, mats, bs = batchFixture(t, n, k)
		xs1, it1, errs1 := SolveMGBatchW(wss[:1], pres[:1], mats[:1], bs[:1], 1e-10, 20*cnt)
		if errs1[0] != nil {
			t.Fatalf("n=%d singleton batch: %v", n, errs1[0])
		}
		if it1[0] != soloIters[0] {
			t.Errorf("n=%d singleton batch: %d iterations, solo %d", n, it1[0], soloIters[0])
		}
		for i := range xs1[0] {
			if math.Float64bits(xs1[0][i]) != math.Float64bits(solo[0][i]) {
				t.Fatalf("n=%d singleton batch diverges from solo at %d", n, i)
			}
		}
	}
}

// TestBatchValidation pins the fail-the-whole-batch semantics for shape
// violations, which is what lets callers treat any batch error as "fall
// back to solo solves".
func TestBatchValidation(t *testing.T) {
	wss, pres, mats, bs := batchFixture(t, 15, 2)
	_, _, errs := SolveMGBatchW(wss[:1], pres, mats, bs, 1e-10, 100)
	for v, e := range errs {
		if e == nil {
			t.Errorf("length mismatch: variant %d did not fail", v)
		}
	}
	// Different grid sizes → different N → every variant fails.
	wss2, pres2, mats2, bs2 := batchFixture(t, 17, 1)
	_, _, errs = SolveMGBatchW(
		[]*Workspace{wss[0], wss2[0]},
		[]Preconditioner{pres[0], pres2[0]},
		[]*SparseMatrix{mats[0], mats2[0]},
		[][]float64{bs[0], bs2[0]}, 1e-10, 100)
	for v, e := range errs {
		if e == nil {
			t.Errorf("size mismatch: variant %d did not fail", v)
		}
	}
	// Unfrozen matrix rejected.
	un := NewSparseMatrix(mats[0].N)
	for r := 0; r < un.N; r++ {
		un.Add(r, r, 4)
	}
	_, _, errs = SolveMGBatchW(wss[:1], pres[:1], []*SparseMatrix{un}, bs[:1], 1e-10, 100)
	if errs[0] == nil {
		t.Error("unfrozen matrix was not rejected")
	}
	// Empty batch is a no-op, not an error.
	xs, iters, errs := SolveMGBatchW(nil, nil, nil, nil, 1e-10, 100)
	if len(xs) != 0 || len(iters) != 0 || len(errs) != 0 {
		t.Error("empty batch returned non-empty results")
	}
}

// TestBatchZeroRHS: a zero right-hand side converges in zero iterations
// with a zero solution, exactly like solo.
func TestBatchZeroRHS(t *testing.T) {
	wss, pres, mats, bs := batchFixture(t, 15, 2)
	bs[1] = make([]float64, mats[1].N)
	xs, iters, errs := SolveMGBatchW(wss, pres, mats, bs, 1e-10, 100)
	if errs[1] != nil || iters[1] != 0 {
		t.Fatalf("zero-RHS variant: iters=%d err=%v", iters[1], errs[1])
	}
	for i, v := range xs[1] {
		if v != 0 {
			t.Fatalf("zero-RHS variant has nonzero solution at %d: %g", i, v)
		}
	}
	if errs[0] != nil || iters[0] == 0 {
		t.Fatalf("live variant beside a zero-RHS one: iters=%d err=%v", iters[0], errs[0])
	}
}
