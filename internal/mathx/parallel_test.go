package mathx

import (
	"math"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

// withProcs runs f under a forced GOMAXPROCS, restoring the ambient value.
// Combined with the -cpu 1,2,8 matrix CI runs, this lets one process
// compare the serial and parallel executions of every gated kernel
// directly: parallelOK flips on GOMAXPROCS, so procs=1 forces the serial
// path and procs=8 the split one even on a single-core machine.
func withProcs(procs int, f func()) {
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)
	f()
}

// randSparse builds a deterministic frozen sparse matrix of size n with a
// mesh-like profile (dominant diagonal, ≤ 4 off-diagonals per row).
func randSparse(n int, seed int64) (*SparseMatrix, []float64) {
	rng := rand.New(rand.NewSource(seed))
	m := NewSparseMatrix(n)
	x := make([]float64, n)
	for r := 0; r < n; r++ {
		x[r] = rng.NormFloat64()
		m.Add(r, r, 4+rng.Float64())
		for j := 0; j < 4; j++ {
			c := rng.Intn(n)
			if c != r {
				m.Add(r, c, -rng.Float64())
			}
		}
	}
	m.Freeze()
	return m, x
}

// TestMulVecParallelBitIdentical sweeps the SpMV size across the parallel
// cutoff (below, at, and above, plus a 255-grid-sized system) and checks
// the split execution returns the exact bits of the serial one. The block
// boundaries depend only on n and GOMAXPROCS and rows never reduce across
// blocks, so any difference is a real contract break, not float noise.
func TestMulVecParallelBitIdentical(t *testing.T) {
	for _, n := range []int{64, parCutoff - 1, parCutoff, parCutoff + 1, 255*255 - 1} {
		m, x := randSparse(n, int64(n))
		serial := make([]float64, n)
		par := make([]float64, n)
		withProcs(1, func() { m.MulVec(x, serial) })
		withProcs(8, func() { m.MulVec(x, par) })
		for i := range serial {
			if math.Float64bits(serial[i]) != math.Float64bits(par[i]) {
				t.Fatalf("n=%d: MulVec parallel diverges at %d: %x vs %x",
					n, i, math.Float64bits(par[i]), math.Float64bits(serial[i]))
			}
		}
	}
}

// TestSolveParallelBitIdentical runs the full MG-PCG solve — FMG start,
// V-cycle smoothers, transfers, axpy sweeps, batched SpMV — at GOMAXPROCS
// 1 vs 8 and demands bit-identical solutions and iteration counts, for
// every smoother and for grid sizes spanning the parallel cutoff (129² is
// the first grid whose kernels split; 255² is the production heavy size).
func TestSolveParallelBitIdentical(t *testing.T) {
	for _, n := range []int{63, 129, 255} {
		for _, sm := range allSmoothers {
			cnt := n*n - 1
			var serial, par []float64
			var serialIters, parIters int
			withProcs(1, func() {
				m, mg, b := buildMeshSmoother(t, n, 2.0, int64(n), sm)
				var ws Workspace
				x, iters, err := m.SolveMGW(&ws, mg, b, 1e-10, 20*cnt)
				if err != nil {
					t.Fatalf("n=%d %v serial: %v", n, sm, err)
				}
				serial = append([]float64(nil), x...)
				serialIters = iters
			})
			withProcs(8, func() {
				m, mg, b := buildMeshSmoother(t, n, 2.0, int64(n), sm)
				var ws Workspace
				x, iters, err := m.SolveMGW(&ws, mg, b, 1e-10, 20*cnt)
				if err != nil {
					t.Fatalf("n=%d %v parallel: %v", n, sm, err)
				}
				par = append([]float64(nil), x...)
				parIters = iters
			})
			if serialIters != parIters {
				t.Errorf("n=%d %v: %d iterations serial, %d parallel", n, sm, serialIters, parIters)
			}
			for i := range serial {
				if math.Float64bits(serial[i]) != math.Float64bits(par[i]) {
					t.Fatalf("n=%d %v: solve diverges at %d under GOMAXPROCS", n, sm, i)
				}
			}
		}
	}
}

// TestBatchParallelBitIdentical extends the GOMAXPROCS bit-identity
// contract to the lockstep batch kernel.
func TestBatchParallelBitIdentical(t *testing.T) {
	const n, k = 129, 3
	cnt := n*n - 1
	run := func(procs int) ([][]float64, []int) {
		var xs [][]float64
		var iters []int
		withProcs(procs, func() {
			wss, pres, mats, bs := batchFixture(t, n, k)
			sols, its, errs := SolveMGBatchW(wss, pres, mats, bs, 1e-10, 20*cnt)
			for v, e := range errs {
				if e != nil {
					t.Fatalf("procs=%d variant %d: %v", procs, v, e)
				}
				xs = append(xs, append([]float64(nil), sols[v]...))
			}
			iters = its
		})
		return xs, iters
	}
	serial, serialIters := run(1)
	par, parIters := run(8)
	for v := range serial {
		if serialIters[v] != parIters[v] {
			t.Errorf("variant %d: %d iterations serial, %d parallel", v, serialIters[v], parIters[v])
		}
		for i := range serial[v] {
			if math.Float64bits(serial[v][i]) != math.Float64bits(par[v][i]) {
				t.Fatalf("variant %d diverges at %d under GOMAXPROCS", v, i)
			}
		}
	}
}

// TestParForBlocksCoversRange checks the unconditionally-splitting variant
// visits every index exactly once for sizes around the P boundary —
// including n < P, where chunks degenerate to single elements.
func TestParForBlocksCoversRange(t *testing.T) {
	for _, procs := range []int{1, 3, 8} {
		for _, n := range []int{0, 1, 2, 7, 8, 9, 100} {
			withProcs(procs, func() {
				marks := make([]int32, n)
				parForBlocks(n, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&marks[i], 1)
					}
				})
				for i, c := range marks {
					if c != 1 {
						t.Fatalf("procs=%d n=%d: index %d visited %d times", procs, n, i, c)
					}
				}
			})
		}
	}
}
