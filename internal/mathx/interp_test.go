package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestInterpolatorBasics(t *testing.T) {
	in, err := NewInterpolator([]float64{0, 1, 2}, []float64{0, 10, 40})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 10}, {2, 40},
		{0.5, 5}, {1.5, 25},
		{-1, -10}, // linear extrapolation from the first segment
		{3, 70},   // and from the last
	}
	for _, c := range cases {
		if got := in.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestInterpolatorErrors(t *testing.T) {
	if _, err := NewInterpolator([]float64{0, 1}, []float64{0}); err == nil {
		t.Fatalf("length mismatch must error")
	}
	if _, err := NewInterpolator([]float64{0}, []float64{0}); err == nil {
		t.Fatalf("single point must error")
	}
	if _, err := NewInterpolator([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Fatalf("non-increasing xs must error")
	}
}

// Property: interpolation of a linear function is exact everywhere.
func TestInterpolatorLinearExact(t *testing.T) {
	in, err := NewInterpolator([]float64{-2, 0, 1, 5, 9}, []float64{-5, 1, 4, 16, 28})
	if err != nil {
		t.Fatal(err)
	}
	f := func(x float64) bool {
		if math.IsNaN(x) || math.Abs(x) > 1e6 {
			return true
		}
		return math.Abs(in.At(x)-(3*x+1)) < 1e-6*math.Max(1, math.Abs(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinspace(t *testing.T) {
	got := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if got := Linspace(3, 7, 1); len(got) != 1 || got[0] != 3 {
		t.Fatalf("degenerate linspace: %v", got)
	}
}

func TestLogspace(t *testing.T) {
	got := Logspace(0.01, 1, 3)
	want := []float64{0.01, 0.1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("non-positive endpoint must panic")
		}
	}()
	Logspace(0, 1, 3)
}

func TestStats(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || math.Abs(s.Mean-3) > 1e-12 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("stddev = %g, want √2", s.Stddev)
	}
	if got := Summarize(nil); got.N != 0 {
		t.Fatalf("empty summary = %+v", got)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatalf("empty quantile must be NaN")
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Fatalf("single-element quantile = %g", got)
	}
}

func TestGeometricMean(t *testing.T) {
	if got := GeometricMean([]float64{1, 4, 16}); math.Abs(got-4) > 1e-9 {
		t.Fatalf("geomean = %g, want 4", got)
	}
	if !math.IsNaN(GeometricMean([]float64{1, -1})) {
		t.Fatalf("negative input must be NaN")
	}
	if !math.IsNaN(GeometricMean(nil)) {
		t.Fatalf("empty input must be NaN")
	}
}

func TestClampLerp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatalf("clamp broken")
	}
	if Lerp(0, 10, 0.3) != 3 {
		t.Fatalf("lerp broken")
	}
}
