package mathx

import (
	"fmt"
	"testing"
)

// BenchmarkParCutoff pins the measurement behind parCutoff: a bare axpy
// sweep (the cheapest gated kernel — if splitting pays here it pays
// everywhere) run serially vs through parForBlocks, at sizes bracketing
// the cutoff. Run with `-cpu 1,4`: at GOMAXPROCS=1 parForBlocks
// degenerates to the serial loop (the rows must coincide), and at
// GOMAXPROCS>1 the gap between blocks and serial is the fork-join price a
// split must buy back. On the single-vCPU reference container that price
// measures ~2 µs per fork-join at n=4096 (and GOMAXPROCS>1 never wins —
// there is no second core to buy with it); parCutoff = 1<<14 is the
// smallest size where a genuine 4-way split's saving (~3/4 of the ~10 µs
// serial sweep) clearly exceeds that fork cost with margin for scheduling
// jitter, so on real multicore hosts the gate opens exactly where
// splitting starts to pay and a 1-vCPU host only ever sees the serial
// path for sub-cutoff work.
func BenchmarkParCutoff(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 13, 1 << 14, 1 << 15, 1 << 17} {
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(i%17) * 0.25
			y[i] = 1
		}
		b.Run(fmt.Sprintf("n=%d/serial", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for j := 0; j < n; j++ {
					y[j] += 1e-9 * x[j]
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/blocks", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				parForBlocks(n, func(lo, hi int) {
					for j := lo; j < hi; j++ {
						y[j] += 1e-9 * x[j]
					}
				})
			}
		})
	}
}
