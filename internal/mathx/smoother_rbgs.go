//go:build mg_rbgs

package mathx

// DefaultSmoother under the mg_rbgs build tag: red-black Gauss-Seidel
// replaces the Chebyshev polynomial as the V-cycle smoother NewMeshMG
// builds with. Both satisfy the same determinism and symmetry contracts;
// the tag exists so the alternative stays compiled, tested, and one build
// flag away rather than rotting behind a runtime option nobody exercises.
const DefaultSmoother = SmootherRBGS
