package mathx

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestBisectKnownRoots(t *testing.T) {
	cases := []struct {
		name string
		f    func(float64) float64
		a, b float64
		want float64
	}{
		{"linear", func(x float64) float64 { return 2*x - 3 }, 0, 5, 1.5},
		{"quadratic", func(x float64) float64 { return x*x - 2 }, 0, 2, math.Sqrt2},
		{"cosine", math.Cos, 0, 3, math.Pi / 2},
		{"cubic", func(x float64) float64 { return x*x*x - x - 2 }, 1, 2, 1.5213797},
	}
	for _, c := range cases {
		got, err := Bisect(c.f, c.a, c.b, 1e-10)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if math.Abs(got-c.want) > 1e-7 {
			t.Errorf("%s: root %g, want %g", c.name, got, c.want)
		}
	}
}

func TestBisectEndpointsAreRoots(t *testing.T) {
	f := func(x float64) float64 { return x }
	if got, err := Bisect(f, 0, 1, 1e-12); err != nil || got != 0 {
		t.Fatalf("f(a)=0 should return a: got %g, %v", got, err)
	}
	if got, err := Bisect(f, -1, 0, 1e-12); err != nil || got != 0 {
		t.Fatalf("f(b)=0 should return b: got %g, %v", got, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	_, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-10)
	if !errors.Is(err, ErrNoBracket) {
		t.Fatalf("want ErrNoBracket, got %v", err)
	}
}

func TestBrentKnownRoots(t *testing.T) {
	cases := []struct {
		name string
		f    func(float64) float64
		a, b float64
		want float64
	}{
		{"linear", func(x float64) float64 { return 2*x - 3 }, 0, 5, 1.5},
		{"quadratic", func(x float64) float64 { return x*x - 2 }, 0, 2, math.Sqrt2},
		{"exp", func(x float64) float64 { return math.Exp(x) - 5 }, 0, 3, math.Log(5)},
		{"steep", func(x float64) float64 { return math.Pow(10, -x/0.085) - 0.01 }, 0, 1, 0.17},
	}
	for _, c := range cases {
		got, err := Brent(c.f, c.a, c.b, 1e-12)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if math.Abs(got-c.want) > 1e-6 {
			t.Errorf("%s: root %g, want %g", c.name, got, c.want)
		}
	}
}

func TestBrentNoBracket(t *testing.T) {
	_, err := Brent(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-10)
	if !errors.Is(err, ErrNoBracket) {
		t.Fatalf("want ErrNoBracket, got %v", err)
	}
}

// Property: for random monotone cubics with a root in range, Brent and
// Bisect agree.
func TestBrentMatchesBisect(t *testing.T) {
	f := func(seedA, seedB uint8) bool {
		a := 0.1 + float64(seedA)/64 // slope
		r := -2 + float64(seedB)/32  // root location in [-2, 6)
		fn := func(x float64) float64 { return a * (x - r) * (1 + 0.1*(x-r)*(x-r)) }
		b1, err1 := Brent(fn, r-3, r+3, 1e-12)
		b2, err2 := Bisect(fn, r-3, r+3, 1e-12)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(b1-b2) < 1e-8 && math.Abs(b1-r) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFindBracket(t *testing.T) {
	f := func(x float64) float64 { return x - 100 }
	lo, hi, err := FindBracket(f, 0, 1, 60)
	if err != nil {
		t.Fatal(err)
	}
	if f(lo) > 0 || f(hi) < 0 {
		t.Fatalf("bracket [%g, %g] does not straddle the root", lo, hi)
	}
	if _, _, err := FindBracket(func(float64) float64 { return 1 }, 0, 1, 10); !errors.Is(err, ErrNoBracket) {
		t.Fatalf("constant function must fail to bracket")
	}
	// Degenerate interval is widened.
	if _, _, err := FindBracket(f, 50, 50, 60); err != nil {
		t.Fatalf("degenerate interval: %v", err)
	}
}

func TestGoldenSection(t *testing.T) {
	x, fx := GoldenSection(func(x float64) float64 { return (x - 3) * (x - 3) }, -10, 10, 1e-10)
	if math.Abs(x-3) > 1e-6 || fx > 1e-10 {
		t.Fatalf("minimum at %g (f=%g), want 3", x, fx)
	}
	// Reversed bounds are tolerated.
	x, _ = GoldenSection(func(x float64) float64 { return math.Abs(x - 1) }, 5, -5, 1e-10)
	if math.Abs(x-1) > 1e-6 {
		t.Fatalf("minimum at %g, want 1", x)
	}
}

func TestMinimizeGridNonUnimodal(t *testing.T) {
	// Two minima; the global one is at x = 4 (depth -2) vs x = -3 (-1).
	f := func(x float64) float64 {
		return math.Min((x+3)*(x+3)-1, (x-4)*(x-4)-2)
	}
	x, fx := MinimizeGrid(f, -10, 10, 100)
	if math.Abs(x-4) > 1e-3 || fx > -1.999 {
		t.Fatalf("global minimum at %g (f=%g), want 4 (-2)", x, fx)
	}
}

func TestMinimizeIntGrid(t *testing.T) {
	k, fk := MinimizeIntGrid(func(k int) float64 { return float64((k - 7) * (k - 7)) }, 1, 20)
	if k != 7 || fk != 0 {
		t.Fatalf("minimum at %d (f=%g), want 7 (0)", k, fk)
	}
	// Reversed bounds.
	k, _ = MinimizeIntGrid(func(k int) float64 { return float64(k) }, 9, 3)
	if k != 3 {
		t.Fatalf("minimum at %d, want 3", k)
	}
}
