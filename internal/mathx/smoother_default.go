//go:build !mg_rbgs

package mathx

// DefaultSmoother is the V-cycle smoother NewMeshMG builds with. The
// Chebyshev polynomial smoother wins the DESIGN.md §5 ablation (best
// damping per FLOP, SpMV + axpy only); build with `-tags mg_rbgs` to make
// red-black Gauss-Seidel the default instead.
const DefaultSmoother = SmootherChebyshev
