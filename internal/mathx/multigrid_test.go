package mathx

import (
	"math"
	"math/rand"
	"testing"
)

// buildMesh assembles the pinned-center n×n 5-point mesh system (reflective
// boundaries, uniform edge conductance g) exactly as powergrid.Mesh does,
// with a deterministic randomized RHS, and the matching MeshMG hierarchy.
func buildMesh(t testing.TB, n int, g float64, seed int64) (*SparseMatrix, *MeshMG, []float64) {
	t.Helper()
	center := (n/2)*n + n/2
	idx := make([]int, n*n)
	cnt := 0
	for i := range idx {
		if i == center {
			idx[i] = -1
			continue
		}
		idx[i] = cnt
		cnt++
	}
	m := NewSparseMatrix(cnt)
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, cnt)
	at := func(r, c int) int { return r*n + c }
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			u := at(r, c)
			if idx[u] < 0 {
				continue
			}
			row := idx[u]
			b[row] = (0.5 + rng.Float64()) * 1e-4
			deg := 0.0
			for _, nb := range [][2]int{{r - 1, c}, {r + 1, c}, {r, c - 1}, {r, c + 1}} {
				if nb[0] < 0 || nb[0] >= n || nb[1] < 0 || nb[1] >= n {
					continue
				}
				deg += g
				if v := idx[at(nb[0], nb[1])]; v >= 0 {
					m.Add(row, v, -g)
				}
			}
			m.Add(row, row, deg)
		}
	}
	m.Freeze()
	mg, err := NewMeshMG(n, center)
	if err != nil {
		t.Fatalf("NewMeshMG(%d): %v", n, err)
	}
	if err := mg.SetConductance(g); err != nil {
		t.Fatal(err)
	}
	return m, mg, b
}

func maxRelDiff(a, b []float64) float64 {
	scale := 0.0
	for _, v := range b {
		if m := math.Abs(v); m > scale {
			scale = m
		}
	}
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst / scale
}

// TestMGAgreesWithCGAndDense cross-checks the three solver families on
// randomized SPD mesh systems: MG-PCG and standalone MG must agree with CG
// to 1e-9 at every size, and with dense Gaussian elimination where the
// dense solve is affordable.
func TestMGAgreesWithCGAndDense(t *testing.T) {
	for _, n := range []int{15, 31, 63, 127} {
		if n == 127 && testing.Short() {
			continue
		}
		m, mg, b := buildMesh(t, n, 0.7+float64(n)/100, int64(n))
		xcg, _, err := m.SolveCG(b, 1e-12, 40*m.N)
		if err != nil {
			t.Fatalf("n=%d: CG: %v", n, err)
		}
		var ws Workspace
		xmg, _, err := m.SolveMGW(&ws, mg, b, 1e-12, 200)
		if err != nil {
			t.Fatalf("n=%d: MG-PCG: %v", n, err)
		}
		if d := maxRelDiff(xmg, xcg); d > 1e-9 {
			t.Errorf("n=%d: MG-PCG vs CG max relative diff %.3g > 1e-9", n, d)
		}
		// Stationary iteration bottoms out near 1e-12 relative residual in
		// double precision; 1e-10 keeps it clear of that floor while still
		// an order below the 1e-9 agreement threshold.
		xsa, _, err := m.SolveMG(mg, b, 1e-10, 200)
		if err != nil {
			t.Fatalf("n=%d: standalone MG: %v", n, err)
		}
		if d := maxRelDiff(xsa, xcg); d > 1e-9 {
			t.Errorf("n=%d: standalone MG vs CG max relative diff %.3g > 1e-9", n, d)
		}
		if n <= 31 {
			dense := make([][]float64, m.N)
			for r := 0; r < m.N; r++ {
				dense[r] = make([]float64, m.N)
				dense[r][r] = m.diag[r]
				cols, vals := m.row(r)
				for i, c := range cols {
					dense[r][c] = vals[i]
				}
			}
			xd, err := SolveDense(dense, b)
			if err != nil {
				t.Fatalf("n=%d: dense: %v", n, err)
			}
			if d := maxRelDiff(xmg, xd); d > 1e-9 {
				t.Errorf("n=%d: MG-PCG vs dense max relative diff %.3g > 1e-9", n, d)
			}
		}
	}
}

// TestMGIterationCountsStayFlat is the point of the multigrid layer: the
// MG-preconditioned iteration count must stay below a small constant as the
// mesh doubles, while plain CG's grows roughly linearly with n.
func TestMGIterationCountsStayFlat(t *testing.T) {
	sizes := []int{31, 63, 127}
	if !testing.Short() {
		sizes = append(sizes, 255)
	}
	var ws Workspace
	prevCG := 0
	for _, n := range sizes {
		m, mg, b := buildMesh(t, n, 1.0, 42)
		_, itMG, err := m.SolveMGW(&ws, mg, b, 1e-10, 200)
		if err != nil {
			t.Fatalf("n=%d: MG-PCG: %v", n, err)
		}
		if itMG > 25 {
			t.Errorf("n=%d: MG-PCG took %d iterations, want ≤ 25", n, itMG)
		}
		if n <= 127 {
			_, itCG, err := m.SolveCGW(&ws, b, 1e-10, 40*m.N)
			if err != nil {
				t.Fatalf("n=%d: CG: %v", n, err)
			}
			if itCG <= prevCG {
				t.Errorf("n=%d: CG iterations %d did not grow past %d — the MG comparison is vacuous", n, itCG, prevCG)
			}
			prevCG = itCG
			t.Logf("n=%3d: MG-PCG %d iters, CG %d iters", n, itMG, itCG)
		} else {
			t.Logf("n=%3d: MG-PCG %d iters", n, itMG)
		}
	}
}

// TestAddAfterFreezePanics pins the loud-failure contract: Add on a frozen
// matrix must panic instead of silently corrupting the CSR arrays.
func TestAddAfterFreezePanics(t *testing.T) {
	m := NewSparseMatrix(4)
	m.Add(0, 1, -1)
	m.Add(1, 0, -1)
	m.Add(0, 0, 2)
	m.Add(1, 1, 2)
	m.Freeze()
	m.Freeze() // idempotent
	defer func() {
		if recover() == nil {
			t.Fatal("Add after Freeze did not panic")
		}
	}()
	m.Add(2, 3, -1)
}

// TestFrozenMulVecBitIdentical: Freeze must not change MulVec output by a
// single bit (same per-row summation order), which is what lets the frozen
// path substitute into the golden-pinned report.
func TestFrozenMulVecBitIdentical(t *testing.T) {
	n := 31
	m, _, b := buildMesh(t, n, 1.3, 7)
	// Rebuild an unfrozen copy with identical assembly.
	m2, _, _ := buildMesh(t, n, 1.3, 7)
	_ = m2
	unfrozen := NewSparseMatrix(m.N)
	for r := 0; r < m.N; r++ {
		cols, vals := m.row(r)
		for i, c := range cols {
			unfrozen.Add(r, int(c), vals[i])
		}
		unfrozen.Add(r, r, m.diag[r])
	}
	y1 := make([]float64, m.N)
	y2 := make([]float64, m.N)
	m.MulVec(b, y1)
	unfrozen.MulVec(b, y2)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("frozen MulVec differs at %d: %v vs %v", i, y1[i], y2[i])
		}
	}
}

// TestNewFrozenCSRValidates rejects inconsistent CSR shapes.
func TestNewFrozenCSRValidates(t *testing.T) {
	if _, err := NewFrozenCSR(2, []int32{0, 1}, []int32{1}, []float64{-1}, []float64{1, 1}); err == nil {
		t.Error("short rowPtr accepted")
	}
	if _, err := NewFrozenCSR(2, []int32{0, 1, 2}, []int32{1}, []float64{-1}, []float64{1, 1}); err == nil {
		t.Error("nnz mismatch accepted")
	}
	m, err := NewFrozenCSR(2, []int32{0, 1, 2}, []int32{1, 0}, []float64{-1, -1}, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Frozen() {
		t.Error("NewFrozenCSR matrix not frozen")
	}
	y := make([]float64, 2)
	m.MulVec([]float64{1, 2}, y)
	if y[0] != 0 || y[1] != 3 {
		t.Errorf("frozen CSR MulVec wrong: %v", y)
	}
}
