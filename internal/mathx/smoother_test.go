package mathx

import (
	"math"
	"math/rand"
	"testing"
)

// buildMeshSmoother is buildMesh with an explicit smoother selection.
func buildMeshSmoother(t testing.TB, n int, g float64, seed int64, sm Smoother) (*SparseMatrix, *MeshMG, []float64) {
	t.Helper()
	m, _, b := buildMesh(t, n, g, seed)
	mg, err := NewMeshMGSmoother(n, (n/2)*n+n/2, sm)
	if err != nil {
		t.Fatalf("NewMeshMGSmoother(%d, %v): %v", n, sm, err)
	}
	if err := mg.SetConductance(g); err != nil {
		t.Fatal(err)
	}
	return m, mg, b
}

var allSmoothers = []Smoother{SmootherChebyshev, SmootherRBGS, SmootherJacobi}

// TestSmoothersAgreeWithCG checks every smoother variant drives MG-PCG to
// the CG answer, and that the stationary V-cycle iteration converges on its
// own (a diverging smoother shows up here long before it corrupts MG-PCG,
// which can limp through a weak preconditioner).
func TestSmoothersAgreeWithCG(t *testing.T) {
	for _, n := range []int{15, 31, 63} {
		m, _, b := buildMesh(t, n, 2.5, int64(100+n))
		cnt := m.N
		ref, _, err := m.SolveCG(b, 1e-12, 20*cnt)
		if err != nil {
			t.Fatalf("n=%d: CG: %v", n, err)
		}
		for _, sm := range allSmoothers {
			_, mg, _ := buildMeshSmoother(t, n, 2.5, int64(100+n), sm)
			var ws Workspace
			x, iters, err := m.SolveMGW(&ws, mg, b, 1e-11, 20*cnt)
			if err != nil {
				t.Fatalf("n=%d %v: MG-PCG: %v", n, sm, err)
			}
			if iters <= 0 || iters > 30 {
				t.Errorf("n=%d %v: MG-PCG took %d iterations", n, sm, iters)
			}
			assertClose(t, x, ref, 1e-9)
			// Stationary tolerance stays off the double-precision floor
			// (the weaker smoothers limp once the residual nears it).
			xs, sIters, err := m.SolveMG(mg, b, 1e-9, 300)
			if err != nil {
				t.Fatalf("n=%d %v: stationary MG: %v", n, sm, err)
			}
			if sIters > 150 {
				t.Errorf("n=%d %v: stationary MG took %d iterations", n, sm, sIters)
			}
			assertClose(t, xs, ref, 1e-7)
		}
	}
}

func assertClose(t *testing.T, got, want []float64, tol float64) {
	t.Helper()
	scale := 0.0
	for _, v := range want {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	for i := range got {
		if d := math.Abs(got[i] - want[i]); d > tol*scale {
			t.Fatalf("solution diverges at %d: got %g want %g (|Δ|=%g, tol %g)", i, got[i], want[i], d, tol*scale)
		}
	}
}

// TestVCycleIsSymmetric verifies ⟨u, M·v⟩ = ⟨v, M·u⟩ for every smoother's
// V-cycle — the A-adjoint pre/post pairing that makes the preconditioner
// CG-safe. A broken pairing (e.g. red-then-black on both sides of the
// coarse correction) fails this long before it visibly stalls MG-PCG.
func TestVCycleIsSymmetric(t *testing.T) {
	const n = 31
	for _, sm := range allSmoothers {
		_, mg, _ := buildMeshSmoother(t, n, 1.75, 7, sm)
		cnt := n*n - 1
		rng := rand.New(rand.NewSource(11))
		u := make([]float64, cnt)
		v := make([]float64, cnt)
		for i := range u {
			u[i] = rng.NormFloat64()
			v[i] = rng.NormFloat64()
		}
		mu := make([]float64, cnt)
		mv := make([]float64, cnt)
		mg.Apply(u, mu)
		mg.Apply(v, mv)
		uMv, vMu, norm := 0.0, 0.0, 0.0
		for i := range u {
			uMv += u[i] * mv[i]
			vMu += v[i] * mu[i]
			norm += math.Abs(u[i]*mv[i]) + math.Abs(v[i]*mu[i])
		}
		if d := math.Abs(uMv - vMu); d > 1e-12*norm {
			t.Errorf("%v: V-cycle not symmetric: ⟨u,Mv⟩=%g ⟨v,Mu⟩=%g (|Δ|=%g)", sm, uMv, vMu, d)
		}
	}
}

// TestFMGStartSavesIterations pins the point of the full-multigrid start:
// the same system converges to the same answer in strictly fewer MG-PCG
// iterations from the interpolated guess than from zero.
func TestFMGStartSavesIterations(t *testing.T) {
	for _, n := range []int{63, 127} {
		m, mg, b := buildMesh(t, n, 3.0, int64(200+n))
		cnt := m.N
		var ws, wsRef Workspace
		x, withFMG, err := m.SolveMGW(&ws, mg, b, 1e-10, 20*cnt)
		if err != nil {
			t.Fatalf("n=%d FMG: %v", n, err)
		}
		got := append([]float64(nil), x...)
		mg.SetFMG(false)
		ref, without, err := m.SolveMGW(&wsRef, mg, b, 1e-10, 20*cnt)
		if err != nil {
			t.Fatalf("n=%d no-FMG: %v", n, err)
		}
		if withFMG >= without {
			t.Errorf("n=%d: FMG start saved nothing (%d iterations with, %d without)", n, withFMG, without)
		}
		assertClose(t, got, ref, 1e-8)
	}
}

// TestFMGStartQuality checks the interpolated guess is genuinely close in
// SOLUTION norm — the norm CG progress is paid in. (Its ℓ2 residual can
// exceed ‖b‖ for a white-noise RHS like this one: the leftover error is
// high-frequency-rich and A amplifies exactly those modes, so asserting on
// the residual would reject a perfectly good start.)
func TestFMGStartQuality(t *testing.T) {
	const n = 63
	m, mg, b := buildMesh(t, n, 1.0, 5)
	x := make([]float64, m.N)
	if !mg.FMGStart(b, x) {
		t.Fatal("FMGStart reported disabled on a default MeshMG")
	}
	var ws Workspace
	ref, _, err := m.SolveMGW(&ws, mg, b, 1e-12, 20*m.N)
	if err != nil {
		t.Fatal(err)
	}
	ee, xx := 0.0, 0.0
	for i := range ref {
		d := x[i] - ref[i]
		ee += d * d
		xx += ref[i] * ref[i]
	}
	if rel := math.Sqrt(ee / xx); rel > 0.35 {
		t.Errorf("FMG start is %.3g of the solution away from it — interpolated guess is not close", rel)
	}
	mg.SetFMG(false)
	if mg.FMGStart(b, x) {
		t.Error("FMGStart ignored SetFMG(false)")
	}
}
