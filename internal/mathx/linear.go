package mathx

import (
	"fmt"
	"math"
)

func log(x float64) float64 { return math.Log(x) }
func exp(x float64) float64 { return math.Exp(x) }

// ErrNotSPD is returned by the conjugate-gradient solvers when the Krylov
// iteration encounters non-positive curvature (pᵀ·A·p ≤ 0), which means the
// matrix is not symmetric positive definite (or round-off has destroyed
// definiteness). The previous behaviour was a silent divide-by-zero that
// propagated NaN/Inf into the solution.
var ErrNotSPD = fmt.Errorf("mathx: matrix is not positive definite")

// SolveDense solves the n×n linear system A·x = b by Gaussian elimination
// with partial pivoting. A is row-major and is not modified.
func SolveDense(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("mathx: bad system dimensions (%d rows, %d rhs)", n, len(b))
	}
	// Working copies.
	m := make([][]float64, n)
	for i := range m {
		if len(a[i]) != n {
			return nil, fmt.Errorf("mathx: row %d has %d columns, want %d", i, len(a[i]), n)
		}
		m[i] = append([]float64(nil), a[i]...)
	}
	x := append([]float64(nil), b...)

	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		best := math.Abs(m[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m[r][col]); v > best {
				piv, best = r, v
			}
		}
		if best == 0 {
			return nil, fmt.Errorf("mathx: singular matrix at column %d", col)
		}
		m[col], m[piv] = m[piv], m[col]
		x[col], x[piv] = x[piv], x[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for c := i + 1; c < n; c++ {
			s -= m[i][c] * x[c]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}

// SparseMatrix is a simple row-compressed symmetric-positive-definite-ish
// sparse matrix for the resistive-mesh solvers. It has two phases:
// assembly, where Add accumulates entries into per-row slices (linear scan —
// mesh rows carry ≤ 4 off-diagonals), and frozen, after Freeze flattens the
// rows into a single CSR backing array for cache-friendly MulVec. Add on a
// frozen matrix panics: appending into the flattened arrays would silently
// corrupt neighbouring rows.
type SparseMatrix struct {
	N    int
	cols [][]int32
	vals [][]float64
	diag []float64

	// Frozen CSR layout: row r occupies fcols/fvals[rowPtr[r]:rowPtr[r+1]]
	// in the row's original insertion order (so frozen MulVec sums in the
	// exact same order as assembly MulVec — bit-identical results). The
	// diagonal stays in diag.
	frozen bool
	rowPtr []int32
	fcols  []int32
	fvals  []float64
}

// NewSparseMatrix creates an empty n×n sparse matrix.
func NewSparseMatrix(n int) *SparseMatrix {
	return &SparseMatrix{
		N:    n,
		cols: make([][]int32, n),
		vals: make([][]float64, n),
		diag: make([]float64, n),
	}
}

// NewFrozenCSR wraps pre-built CSR arrays as an already-frozen matrix
// without copying: rowPtr has length n+1, cols/vals length rowPtr[n] hold
// the off-diagonals, diag length n the diagonal. Callers that cache a
// sparsity pattern (the power-grid mesh) share rowPtr/cols across instances
// and refill only vals/diag.
func NewFrozenCSR(n int, rowPtr, cols []int32, vals, diag []float64) (*SparseMatrix, error) {
	switch {
	case n < 0 || len(rowPtr) != n+1 || len(diag) != n:
		return nil, fmt.Errorf("mathx: bad CSR shape (n=%d, rowPtr=%d, diag=%d)", n, len(rowPtr), len(diag))
	case len(cols) != int(rowPtr[n]) || len(vals) != int(rowPtr[n]):
		return nil, fmt.Errorf("mathx: CSR nnz mismatch (rowPtr[n]=%d, cols=%d, vals=%d)", rowPtr[n], len(cols), len(vals))
	}
	return &SparseMatrix{N: n, diag: diag, frozen: true, rowPtr: rowPtr, fcols: cols, fvals: vals}, nil
}

// Freeze seals assembly and flattens the per-row slices into one contiguous
// CSR backing array. MulVec afterwards streams rowPtr/fcols/fvals linearly
// (and in parallel row blocks on large systems) instead of chasing n row
// headers; results are bit-identical because each row keeps its insertion
// order. Freeze is idempotent; Add after Freeze panics.
func (s *SparseMatrix) Freeze() {
	if s.frozen {
		return
	}
	nnz := 0
	for _, c := range s.cols {
		nnz += len(c)
	}
	s.rowPtr = make([]int32, s.N+1)
	s.fcols = make([]int32, 0, nnz)
	s.fvals = make([]float64, 0, nnz)
	for r := 0; r < s.N; r++ {
		s.rowPtr[r] = int32(len(s.fcols))
		s.fcols = append(s.fcols, s.cols[r]...)
		s.fvals = append(s.fvals, s.vals[r]...)
	}
	s.rowPtr[s.N] = int32(len(s.fcols))
	s.cols, s.vals = nil, nil // assembly storage is dead; release it
	s.frozen = true
}

// Frozen reports whether the matrix has been sealed by Freeze.
func (s *SparseMatrix) Frozen() bool { return s.frozen }

// Add accumulates v into entry (r, c). Diagonal entries are kept separately.
// Panics if the matrix has been frozen — the CSR arrays cannot grow.
func (s *SparseMatrix) Add(r, c int, v float64) {
	if s.frozen {
		panic("mathx: Add on frozen SparseMatrix (assembly is sealed after Freeze)")
	}
	if r == c {
		s.diag[r] += v
		return
	}
	// Linear scan: rows in mesh problems have ≤ 4 off-diagonals.
	for i, cc := range s.cols[r] {
		if int(cc) == c {
			s.vals[r][i] += v
			return
		}
	}
	s.cols[r] = append(s.cols[r], int32(c))
	s.vals[r] = append(s.vals[r], v)
}

// row returns the off-diagonal columns and values of row r in either phase.
func (s *SparseMatrix) row(r int) ([]int32, []float64) {
	if s.frozen {
		lo, hi := s.rowPtr[r], s.rowPtr[r+1]
		return s.fcols[lo:hi], s.fvals[lo:hi]
	}
	return s.cols[r], s.vals[r]
}

// MulVec computes y = A·x. On a frozen matrix the rows stream from the flat
// CSR arrays and split across row blocks when the system is large and
// GOMAXPROCS > 1 (each y[r] is computed independently, so the parallel
// split is bit-deterministic).
func (s *SparseMatrix) MulVec(x, y []float64) {
	if s.frozen {
		if parallelOK(s.N) {
			parFor(s.N, func(lo, hi int) { s.mulVecRows(x, y, lo, hi) })
		} else {
			s.mulVecRows(x, y, 0, s.N)
		}
		return
	}
	for r := 0; r < s.N; r++ {
		sum := s.diag[r] * x[r]
		cols, vals := s.cols[r], s.vals[r]
		for i := range cols {
			sum += vals[i] * x[cols[i]]
		}
		y[r] = sum
	}
}

// mulVecRows is the frozen CSR kernel for rows [lo, hi).
func (s *SparseMatrix) mulVecRows(x, y []float64, lo, hi int) {
	rp, cols, vals, diag := s.rowPtr, s.fcols, s.fvals, s.diag
	for r := lo; r < hi; r++ {
		sum := diag[r] * x[r]
		for i := rp[r]; i < rp[r+1]; i++ {
			sum += vals[i] * x[cols[i]]
		}
		y[r] = sum
	}
}

// residualNorm returns ‖b − A·x‖₂ using scratch (length N) for A·x.
func (s *SparseMatrix) residualNorm(b, x, scratch []float64) float64 {
	s.MulVec(x, scratch)
	sum := 0.0
	for i := range b {
		d := b[i] - scratch[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Workspace holds the scratch vectors of the iterative solvers so repeated
// solves of same-sized systems allocate nothing. A zero Workspace is ready
// to use; it grows on demand and is NOT safe for concurrent use — each
// goroutine needs its own (or take one from a sync.Pool).
//
// The solution slice returned by the *W solver variants aliases the
// workspace and is only valid until the next solve that reuses it.
type Workspace struct {
	x, r, p, z, ap, invDiag []float64
}

// grow resizes every scratch vector to length n and zeroes x.
func (w *Workspace) grow(n int) {
	if cap(w.x) < n {
		w.x = make([]float64, n)
		w.r = make([]float64, n)
		w.p = make([]float64, n)
		w.z = make([]float64, n)
		w.ap = make([]float64, n)
		w.invDiag = make([]float64, n)
	}
	w.x, w.r, w.p, w.z, w.ap, w.invDiag = w.x[:n], w.r[:n], w.p[:n], w.z[:n], w.ap[:n], w.invDiag[:n]
	for i := range w.x {
		w.x[i] = 0
	}
}

// Convergence semantics shared by SolveSOR, SolveCG, and SolvePCG: every
// solver returns (x, iters, err) where iters is the number of sweeps or
// Krylov iterations performed, and convergence means the residual satisfies
// ‖b − A·x‖₂ ≤ tol·‖b‖₂ (SOR checks the true residual each sweep; CG/PCG
// use the recursively-updated residual, which tracks the true one to
// round-off). On iteration exhaustion the best iterate is returned together
// with an error wrapping ErrNoConverge that records the final relative
// residual.

// noConverge builds the shared non-convergence error.
func noConverge(method string, iters int, relRes float64) error {
	return fmt.Errorf("mathx: %s: %w after %d iterations (relative residual %.3g)",
		method, ErrNoConverge, iters, relRes)
}

// SolveSOR solves A·x = b by successive over-relaxation with factor omega,
// starting from x0 (may be nil). It sweeps until the true residual norm
// satisfies ‖b − A·x‖₂ ≤ tol·‖b‖₂ or maxIter sweeps complete. (An earlier
// version stopped on the max per-sweep update instead, which declares
// convergence prematurely on slowly-converging grids where successive
// iterates move little while the residual is still large.) Returns the
// solution and the number of sweeps used.
func (s *SparseMatrix) SolveSOR(b []float64, x0 []float64, omega, tol float64, maxIter int) ([]float64, int, error) {
	if len(b) != s.N {
		return nil, 0, fmt.Errorf("mathx: rhs length %d, want %d", len(b), s.N)
	}
	if omega <= 0 || omega >= 2 {
		return nil, 0, fmt.Errorf("mathx: SOR omega %g outside (0,2)", omega)
	}
	x := make([]float64, s.N)
	if x0 != nil {
		copy(x, x0)
	}
	for r := 0; r < s.N; r++ {
		if s.diag[r] == 0 {
			return nil, 0, fmt.Errorf("mathx: zero diagonal at row %d", r)
		}
	}
	bNorm := math.Sqrt(dot(b, b))
	scratch := make([]float64, s.N)
	if bNorm == 0 {
		bNorm = 1 // converge on absolute residual for a zero RHS
	}
	relRes := math.Inf(1)
	for iter := 1; iter <= maxIter; iter++ {
		for r := 0; r < s.N; r++ {
			sum := b[r]
			cols, vals := s.row(r)
			for i := range cols {
				sum -= vals[i] * x[cols[i]]
			}
			xNew := sum / s.diag[r]
			x[r] += omega * (xNew - x[r])
		}
		relRes = s.residualNorm(b, x, scratch) / bNorm
		if relRes <= tol {
			return x, iter, nil
		}
	}
	return x, maxIter, noConverge("SOR", maxIter, relRes)
}

// SolveCG solves A·x = b by (unpreconditioned) conjugate gradients; A must
// be symmetric positive definite. Returns the solution and iterations used.
// Non-positive curvature (a non-SPD matrix, or round-off on tiny meshes)
// returns an error wrapping ErrNotSPD instead of silently producing
// NaN/Inf solutions.
func (s *SparseMatrix) SolveCG(b []float64, tol float64, maxIter int) ([]float64, int, error) {
	var ws Workspace
	x, iters, err := s.solvePCG(&ws, b, tol, maxIter, false)
	if x != nil {
		x = append([]float64(nil), x...)
	}
	return x, iters, err
}

// SolvePCG solves A·x = b by Jacobi (diagonal) preconditioned conjugate
// gradients; A must be symmetric positive definite with a strictly positive
// diagonal. The preconditioner costs one multiply per unknown per iteration;
// it leaves uniform-conductance meshes (near-constant diagonal) on par with
// plain CG but sharply cuts iterations on badly scaled systems — non-uniform
// rail widths, mixed-pitch grids — and rejects non-positive diagonals before
// iterating. Returns the solution and iterations used.
func (s *SparseMatrix) SolvePCG(b []float64, tol float64, maxIter int) ([]float64, int, error) {
	var ws Workspace
	x, iters, err := s.solvePCG(&ws, b, tol, maxIter, true)
	if x != nil {
		x = append([]float64(nil), x...)
	}
	return x, iters, err
}

// SolvePCGW is SolvePCG reusing ws for every vector, including the returned
// solution, which aliases ws and is only valid until ws is reused. It exists
// so hot callers (the power-grid mesh solves) can run allocation-free.
func (s *SparseMatrix) SolvePCGW(ws *Workspace, b []float64, tol float64, maxIter int) ([]float64, int, error) {
	return s.solvePCG(ws, b, tol, maxIter, true)
}

// SolveCGW is SolveCG on a reused workspace (see SolvePCGW for the aliasing
// contract). On uniform-conductance meshes — a near-constant diagonal, where
// Jacobi preconditioning buys no iterations but still pays two extra vector
// sweeps per iteration (measured ≈25% wall clock, BenchmarkMeshSolve) — this
// is the fastest solver in the package.
func (s *SparseMatrix) SolveCGW(ws *Workspace, b []float64, tol float64, maxIter int) ([]float64, int, error) {
	return s.solvePCG(ws, b, tol, maxIter, false)
}

// solvePCG is the shared CG core. With precond it applies the Jacobi
// preconditioner M = diag(A); without it M = I and it reduces to plain CG.
func (s *SparseMatrix) solvePCG(ws *Workspace, b []float64, tol float64, maxIter int, precond bool) ([]float64, int, error) {
	n := s.N
	if len(b) != n {
		return nil, 0, fmt.Errorf("mathx: rhs length %d, want %d", len(b), n)
	}
	ws.grow(n)
	x, r, p, z, ap, invDiag := ws.x, ws.r, ws.p, ws.z, ws.ap, ws.invDiag
	if precond {
		// Rows of mesh systems always carry a positive diagonal (diagonal
		// dominance of the Laplacian); reject anything else before iterating.
		for i, d := range s.diag {
			if d <= 0 {
				return nil, 0, fmt.Errorf("mathx: PCG: non-positive diagonal %g at row %d: %w", d, i, ErrNotSPD)
			}
			invDiag[i] = 1 / d
		}
	}
	copy(r, b)
	rr := dot(r, r)
	bNorm := math.Sqrt(rr)
	if bNorm == 0 {
		return x, 0, nil
	}
	var rz float64
	if precond {
		for i := range z {
			z[i] = invDiag[i] * r[i]
		}
		copy(p, z)
		rz = dot(r, z)
	} else {
		copy(p, r)
		rz = rr
	}
	rNorm := bNorm
	for iter := 1; iter <= maxIter; iter++ {
		s.MulVec(p, ap)
		pAp := dot(p, ap)
		// Curvature guard: pᵀAp must be strictly positive for an SPD matrix.
		// NaN also fails this comparison, so poisoned inputs are caught too.
		if !(pAp > 0) {
			return nil, iter, fmt.Errorf("mathx: CG: curvature pᵀAp = %g at iteration %d: %w", pAp, iter, ErrNotSPD)
		}
		alpha := rz / pAp
		// Gated like MulVec: build the parallel closure only on systems
		// large enough to amortize it (parallelOK), so small/serial solves
		// stay allocation-free. Element-wise updates are bit-deterministic
		// under any block split.
		if parallelOK(n) {
			parFor(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					x[i] += alpha * p[i]
					r[i] -= alpha * ap[i]
				}
			})
		} else {
			for i := range x {
				x[i] += alpha * p[i]
				r[i] -= alpha * ap[i]
			}
		}
		rr = dot(r, r)
		rNorm = math.Sqrt(rr)
		if rNorm <= tol*bNorm {
			return x, iter, nil
		}
		var rzNew float64
		if precond {
			for i := range z {
				z[i] = invDiag[i] * r[i]
			}
			rzNew = dot(r, z)
		} else {
			rzNew = rr
		}
		beta := rzNew / rz
		dir := r
		if precond {
			dir = z
		}
		if parallelOK(n) {
			parFor(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					p[i] = dir[i] + beta*p[i]
				}
			})
		} else {
			for i := range p {
				p[i] = dir[i] + beta*p[i]
			}
		}
		rz = rzNew
	}
	method := "CG"
	if precond {
		method = "PCG"
	}
	return x, maxIter, noConverge(method, maxIter, rNorm/bNorm)
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
