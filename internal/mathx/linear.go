package mathx

import (
	"fmt"
	"math"
)

func log(x float64) float64 { return math.Log(x) }
func exp(x float64) float64 { return math.Exp(x) }

// SolveDense solves the n×n linear system A·x = b by Gaussian elimination
// with partial pivoting. A is row-major and is not modified.
func SolveDense(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("mathx: bad system dimensions (%d rows, %d rhs)", n, len(b))
	}
	// Working copies.
	m := make([][]float64, n)
	for i := range m {
		if len(a[i]) != n {
			return nil, fmt.Errorf("mathx: row %d has %d columns, want %d", i, len(a[i]), n)
		}
		m[i] = append([]float64(nil), a[i]...)
	}
	x := append([]float64(nil), b...)

	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		best := math.Abs(m[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m[r][col]); v > best {
				piv, best = r, v
			}
		}
		if best == 0 {
			return nil, fmt.Errorf("mathx: singular matrix at column %d", col)
		}
		m[col], m[piv] = m[piv], m[col]
		x[col], x[piv] = x[piv], x[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for c := i + 1; c < n; c++ {
			s -= m[i][c] * x[c]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}

// SparseMatrix is a simple row-compressed symmetric-positive-definite-ish
// sparse matrix for the resistive-mesh solvers. Entries are stored per row.
type SparseMatrix struct {
	N    int
	cols [][]int32
	vals [][]float64
	diag []float64
}

// NewSparseMatrix creates an empty n×n sparse matrix.
func NewSparseMatrix(n int) *SparseMatrix {
	return &SparseMatrix{
		N:    n,
		cols: make([][]int32, n),
		vals: make([][]float64, n),
		diag: make([]float64, n),
	}
}

// Add accumulates v into entry (r, c). Diagonal entries are kept separately.
func (s *SparseMatrix) Add(r, c int, v float64) {
	if r == c {
		s.diag[r] += v
		return
	}
	// Linear scan: rows in mesh problems have ≤ 4 off-diagonals.
	for i, cc := range s.cols[r] {
		if int(cc) == c {
			s.vals[r][i] += v
			return
		}
	}
	s.cols[r] = append(s.cols[r], int32(c))
	s.vals[r] = append(s.vals[r], v)
}

// MulVec computes y = A·x.
func (s *SparseMatrix) MulVec(x, y []float64) {
	for r := 0; r < s.N; r++ {
		sum := s.diag[r] * x[r]
		cols, vals := s.cols[r], s.vals[r]
		for i := range cols {
			sum += vals[i] * x[cols[i]]
		}
		y[r] = sum
	}
}

// SolveSOR solves A·x = b by successive over-relaxation with factor omega,
// starting from x0 (may be nil). It iterates until the max residual change
// per sweep is below tol or maxIter sweeps complete. Returns the solution
// and the number of sweeps used.
func (s *SparseMatrix) SolveSOR(b []float64, x0 []float64, omega, tol float64, maxIter int) ([]float64, int, error) {
	if len(b) != s.N {
		return nil, 0, fmt.Errorf("mathx: rhs length %d, want %d", len(b), s.N)
	}
	if omega <= 0 || omega >= 2 {
		return nil, 0, fmt.Errorf("mathx: SOR omega %g outside (0,2)", omega)
	}
	x := make([]float64, s.N)
	if x0 != nil {
		copy(x, x0)
	}
	for r := 0; r < s.N; r++ {
		if s.diag[r] == 0 {
			return nil, 0, fmt.Errorf("mathx: zero diagonal at row %d", r)
		}
	}
	for iter := 1; iter <= maxIter; iter++ {
		maxDelta := 0.0
		for r := 0; r < s.N; r++ {
			sum := b[r]
			cols, vals := s.cols[r], s.vals[r]
			for i := range cols {
				sum -= vals[i] * x[cols[i]]
			}
			xNew := sum / s.diag[r]
			delta := omega * (xNew - x[r])
			x[r] += delta
			if d := math.Abs(delta); d > maxDelta {
				maxDelta = d
			}
		}
		if maxDelta < tol {
			return x, iter, nil
		}
	}
	return x, maxIter, ErrNoConverge
}

// SolveCG solves A·x = b by (unpreconditioned) conjugate gradients; A must
// be symmetric positive definite. Returns the solution and iterations used.
func (s *SparseMatrix) SolveCG(b []float64, tol float64, maxIter int) ([]float64, int, error) {
	n := s.N
	if len(b) != n {
		return nil, 0, fmt.Errorf("mathx: rhs length %d, want %d", len(b), n)
	}
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	p := append([]float64(nil), b...)
	ap := make([]float64, n)
	rs := dot(r, r)
	bNorm := math.Sqrt(rs)
	if bNorm == 0 {
		return x, 0, nil
	}
	for iter := 1; iter <= maxIter; iter++ {
		s.MulVec(p, ap)
		alpha := rs / dot(p, ap)
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rsNew := dot(r, r)
		if math.Sqrt(rsNew) < tol*bNorm {
			return x, iter, nil
		}
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rs = rsNew
	}
	return x, maxIter, ErrNoConverge
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
