package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveDenseKnown(t *testing.T) {
	a := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	b := []float64{8, -11, -3}
	x, err := SolveDense(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestSolveDensePivoting(t *testing.T) {
	// Zero leading pivot requires a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	x, err := SolveDense(a, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 4 || x[1] != 3 {
		t.Fatalf("got %v, want [4 3]", x)
	}
}

func TestSolveDenseErrors(t *testing.T) {
	if _, err := SolveDense(nil, nil); err == nil {
		t.Fatalf("empty system must error")
	}
	if _, err := SolveDense([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatalf("non-square system must error")
	}
	if _, err := SolveDense([][]float64{{1, 2}, {2, 4}}, []float64{1, 2}); err == nil {
		t.Fatalf("singular system must error")
	}
	if _, err := SolveDense([][]float64{{1, 2}, {3, 4}}, []float64{1}); err == nil {
		t.Fatalf("rhs length mismatch must error")
	}
}

// Property: residual of SolveDense is tiny for random diagonally dominant
// systems.
func TestSolveDenseResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := make([][]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			sum := 0.0
			for j := range a[i] {
				a[i][j] = rng.NormFloat64()
				sum += math.Abs(a[i][j])
			}
			a[i][i] = sum + 1 // diagonal dominance
			b[i] = rng.NormFloat64()
		}
		x, err := SolveDense(a, b)
		if err != nil {
			return false
		}
		for i := range a {
			r := -b[i]
			for j := range a[i] {
				r += a[i][j] * x[j]
			}
			if math.Abs(r) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func buildLaplacian(n int) (*SparseMatrix, []float64) {
	// 1-D Laplacian with Dirichlet ends: SPD.
	m := NewSparseMatrix(n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		m.Add(i, i, 2)
		if i > 0 {
			m.Add(i, i-1, -1)
		}
		if i < n-1 {
			m.Add(i, i+1, -1)
		}
		b[i] = 1
	}
	return m, b
}

func TestSparseSolversAgreeWithDense(t *testing.T) {
	const n = 30
	m, b := buildLaplacian(n)

	dense := make([][]float64, n)
	for i := range dense {
		dense[i] = make([]float64, n)
		dense[i][i] = 2
		if i > 0 {
			dense[i][i-1] = -1
		}
		if i < n-1 {
			dense[i][i+1] = -1
		}
	}
	want, err := SolveDense(dense, b)
	if err != nil {
		t.Fatal(err)
	}

	sor, _, err := m.SolveSOR(b, nil, 1.8, 1e-12, 100000)
	if err != nil {
		t.Fatalf("SOR: %v", err)
	}
	cg, _, err := m.SolveCG(b, 1e-12, 10000)
	if err != nil {
		t.Fatalf("CG: %v", err)
	}
	for i := 0; i < n; i++ {
		if math.Abs(sor[i]-want[i]) > 1e-6 {
			t.Fatalf("SOR[%d] = %g, want %g", i, sor[i], want[i])
		}
		if math.Abs(cg[i]-want[i]) > 1e-6 {
			t.Fatalf("CG[%d] = %g, want %g", i, cg[i], want[i])
		}
	}
}

func TestSparseMulVec(t *testing.T) {
	m, _ := buildLaplacian(4)
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)
	m.MulVec(x, y)
	want := []float64{0, 0, 0, 5} // tridiagonal [2,-1] stencil
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-12 {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

func TestSparseAccumulates(t *testing.T) {
	m := NewSparseMatrix(2)
	m.Add(0, 1, -1)
	m.Add(0, 1, -1) // accumulate into the same entry
	m.Add(0, 0, 3)
	y := make([]float64, 2)
	m.MulVec([]float64{1, 1}, y)
	if y[0] != 1 {
		t.Fatalf("accumulated entry wrong: y[0] = %g, want 1", y[0])
	}
}

func TestSORParameterValidation(t *testing.T) {
	m, b := buildLaplacian(4)
	if _, _, err := m.SolveSOR(b, nil, 2.5, 1e-9, 100); err == nil {
		t.Fatalf("omega ≥ 2 must error")
	}
	if _, _, err := m.SolveSOR(b[:2], nil, 1.5, 1e-9, 100); err == nil {
		t.Fatalf("rhs mismatch must error")
	}
	bad := NewSparseMatrix(2)
	bad.Add(0, 1, 1)
	if _, _, err := bad.SolveSOR([]float64{1, 1}, nil, 1.5, 1e-9, 100); err == nil {
		t.Fatalf("zero diagonal must error")
	}
}

func TestCGZeroRHS(t *testing.T) {
	m, _ := buildLaplacian(5)
	x, iters, err := m.SolveCG(make([]float64, 5), 1e-12, 100)
	if err != nil || iters != 0 {
		t.Fatalf("zero rhs should solve instantly: %v (%d iters)", err, iters)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatalf("zero rhs must give zero solution")
		}
	}
}
