package mathx

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveDenseKnown(t *testing.T) {
	a := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	b := []float64{8, -11, -3}
	x, err := SolveDense(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestSolveDensePivoting(t *testing.T) {
	// Zero leading pivot requires a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	x, err := SolveDense(a, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 4 || x[1] != 3 {
		t.Fatalf("got %v, want [4 3]", x)
	}
}

func TestSolveDenseErrors(t *testing.T) {
	if _, err := SolveDense(nil, nil); err == nil {
		t.Fatalf("empty system must error")
	}
	if _, err := SolveDense([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatalf("non-square system must error")
	}
	if _, err := SolveDense([][]float64{{1, 2}, {2, 4}}, []float64{1, 2}); err == nil {
		t.Fatalf("singular system must error")
	}
	if _, err := SolveDense([][]float64{{1, 2}, {3, 4}}, []float64{1}); err == nil {
		t.Fatalf("rhs length mismatch must error")
	}
}

// Property: residual of SolveDense is tiny for random diagonally dominant
// systems.
func TestSolveDenseResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := make([][]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			sum := 0.0
			for j := range a[i] {
				a[i][j] = rng.NormFloat64()
				sum += math.Abs(a[i][j])
			}
			a[i][i] = sum + 1 // diagonal dominance
			b[i] = rng.NormFloat64()
		}
		x, err := SolveDense(a, b)
		if err != nil {
			return false
		}
		for i := range a {
			r := -b[i]
			for j := range a[i] {
				r += a[i][j] * x[j]
			}
			if math.Abs(r) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func buildLaplacian(n int) (*SparseMatrix, []float64) {
	// 1-D Laplacian with Dirichlet ends: SPD.
	m := NewSparseMatrix(n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		m.Add(i, i, 2)
		if i > 0 {
			m.Add(i, i-1, -1)
		}
		if i < n-1 {
			m.Add(i, i+1, -1)
		}
		b[i] = 1
	}
	return m, b
}

func TestSparseSolversAgreeWithDense(t *testing.T) {
	const n = 30
	m, b := buildLaplacian(n)

	dense := make([][]float64, n)
	for i := range dense {
		dense[i] = make([]float64, n)
		dense[i][i] = 2
		if i > 0 {
			dense[i][i-1] = -1
		}
		if i < n-1 {
			dense[i][i+1] = -1
		}
	}
	want, err := SolveDense(dense, b)
	if err != nil {
		t.Fatal(err)
	}

	sor, _, err := m.SolveSOR(b, nil, 1.8, 1e-12, 100000)
	if err != nil {
		t.Fatalf("SOR: %v", err)
	}
	cg, _, err := m.SolveCG(b, 1e-12, 10000)
	if err != nil {
		t.Fatalf("CG: %v", err)
	}
	for i := 0; i < n; i++ {
		if math.Abs(sor[i]-want[i]) > 1e-6 {
			t.Fatalf("SOR[%d] = %g, want %g", i, sor[i], want[i])
		}
		if math.Abs(cg[i]-want[i]) > 1e-6 {
			t.Fatalf("CG[%d] = %g, want %g", i, cg[i], want[i])
		}
	}
}

func TestSparseMulVec(t *testing.T) {
	m, _ := buildLaplacian(4)
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)
	m.MulVec(x, y)
	want := []float64{0, 0, 0, 5} // tridiagonal [2,-1] stencil
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-12 {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

func TestSparseAccumulates(t *testing.T) {
	m := NewSparseMatrix(2)
	m.Add(0, 1, -1)
	m.Add(0, 1, -1) // accumulate into the same entry
	m.Add(0, 0, 3)
	y := make([]float64, 2)
	m.MulVec([]float64{1, 1}, y)
	if y[0] != 1 {
		t.Fatalf("accumulated entry wrong: y[0] = %g, want 1", y[0])
	}
}

func TestSORParameterValidation(t *testing.T) {
	m, b := buildLaplacian(4)
	if _, _, err := m.SolveSOR(b, nil, 2.5, 1e-9, 100); err == nil {
		t.Fatalf("omega ≥ 2 must error")
	}
	if _, _, err := m.SolveSOR(b[:2], nil, 1.5, 1e-9, 100); err == nil {
		t.Fatalf("rhs mismatch must error")
	}
	bad := NewSparseMatrix(2)
	bad.Add(0, 1, 1)
	if _, _, err := bad.SolveSOR([]float64{1, 1}, nil, 1.5, 1e-9, 100); err == nil {
		t.Fatalf("zero diagonal must error")
	}
}

// buildMesh2D builds the n×n 5-point mesh Laplacian with Dirichlet boundary
// (the structure of the power-grid IR-drop systems) and a uniform RHS.
func buildMesh2D(n int) (*SparseMatrix, []float64) {
	m := NewSparseMatrix(n * n)
	b := make([]float64, n*n)
	at := func(r, c int) int { return r*n + c }
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			m.Add(at(r, c), at(r, c), 4)
			if r > 0 {
				m.Add(at(r, c), at(r-1, c), -1)
			}
			if r < n-1 {
				m.Add(at(r, c), at(r+1, c), -1)
			}
			if c > 0 {
				m.Add(at(r, c), at(r, c-1), -1)
			}
			if c < n-1 {
				m.Add(at(r, c), at(r, c+1), -1)
			}
			b[at(r, c)] = 1
		}
	}
	return m, b
}

// TestSolversAgreeOnSPDSystems is the table-driven agreement check: on small
// SPD systems PCG, CG, and dense elimination must produce the same solution.
func TestSolversAgreeOnSPDSystems(t *testing.T) {
	cases := []struct {
		name   string
		sparse *SparseMatrix
		b      []float64
	}{
		{"laplacian1d-1", nil, nil},
		{"laplacian1d-2", nil, nil},
		{"laplacian1d-13", nil, nil},
		{"mesh2d-5", nil, nil},
		{"diag-only", nil, nil},
	}
	cases[0].sparse, cases[0].b = buildLaplacian(1)
	cases[1].sparse, cases[1].b = buildLaplacian(2)
	cases[2].sparse, cases[2].b = buildLaplacian(13)
	cases[3].sparse, cases[3].b = buildMesh2D(5)
	d := NewSparseMatrix(4)
	for i := 0; i < 4; i++ {
		d.Add(i, i, float64(i+1))
	}
	cases[4].sparse, cases[4].b = d, []float64{4, 3, 2, 1}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.sparse.N
			dense := make([][]float64, n)
			for i := range dense {
				dense[i] = make([]float64, n)
				unit := make([]float64, n)
				unit[i] = 1
				tc.sparse.MulVec(unit, dense[i]) // column i of A = row i (symmetric)
			}
			want, err := SolveDense(dense, tc.b)
			if err != nil {
				t.Fatal(err)
			}
			cg, cgIters, err := tc.sparse.SolveCG(tc.b, 1e-12, 10000)
			if err != nil {
				t.Fatalf("CG: %v", err)
			}
			pcg, pcgIters, err := tc.sparse.SolvePCG(tc.b, 1e-12, 10000)
			if err != nil {
				t.Fatalf("PCG: %v", err)
			}
			if cgIters <= 0 || pcgIters <= 0 {
				t.Fatalf("iteration counts must be positive: cg %d, pcg %d", cgIters, pcgIters)
			}
			for i := 0; i < n; i++ {
				if math.Abs(cg[i]-want[i]) > 1e-6 {
					t.Fatalf("CG[%d] = %g, want %g", i, cg[i], want[i])
				}
				if math.Abs(pcg[i]-want[i]) > 1e-6 {
					t.Fatalf("PCG[%d] = %g, want %g", i, pcg[i], want[i])
				}
			}
		})
	}
}

// TestPCGPreconditionerHelps pins the reason SolvePCG exists: on a
// badly-scaled SPD system Jacobi preconditioning must cut the iteration
// count.
func TestPCGPreconditionerHelps(t *testing.T) {
	const n = 64
	m := NewSparseMatrix(n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		scale := math.Pow(10, float64(i%4)) // wildly varying diagonal
		m.Add(i, i, 2*scale)
		if i > 0 {
			m.Add(i, i-1, -0.5)
			m.Add(i-1, i, -0.5)
		}
		b[i] = 1
	}
	_, cgIters, err := m.SolveCG(b, 1e-10, 10*n)
	if err != nil {
		t.Fatalf("CG: %v", err)
	}
	_, pcgIters, err := m.SolvePCG(b, 1e-10, 10*n)
	if err != nil {
		t.Fatalf("PCG: %v", err)
	}
	if pcgIters >= cgIters {
		t.Fatalf("Jacobi preconditioning did not help: PCG %d iters vs CG %d", pcgIters, cgIters)
	}
}

// TestNonSPDReturnsError: the old solver divided by pᵀAp unguarded and
// silently emitted NaN/Inf; now an indefinite matrix must produce ErrNotSPD
// and never a poisoned solution.
func TestNonSPDReturnsError(t *testing.T) {
	// Symmetric indefinite: eigenvalues 3 and -1.
	ind := NewSparseMatrix(2)
	ind.Add(0, 0, 1)
	ind.Add(1, 1, 1)
	ind.Add(0, 1, 2)
	ind.Add(1, 0, 2)
	// RHS aligned with the negative-eigenvalue direction so the very first
	// search direction has negative curvature.
	b := []float64{1, -1}
	x, _, err := ind.SolveCG(b, 1e-10, 100)
	if err == nil {
		t.Fatal("indefinite matrix must error")
	}
	if !errors.Is(err, ErrNotSPD) {
		t.Fatalf("error %v does not wrap ErrNotSPD", err)
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("NaN/Inf leaked into the solution: %v", x)
		}
	}
	// Negative diagonal: PCG rejects before iterating.
	neg := NewSparseMatrix(2)
	neg.Add(0, 0, -1)
	neg.Add(1, 1, 1)
	if _, _, err := neg.SolvePCG([]float64{1, 1}, 1e-10, 100); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("negative diagonal must yield ErrNotSPD, got %v", err)
	}
	// Zero matrix row → zero curvature, also non-SPD.
	zero := NewSparseMatrix(2)
	zero.Add(1, 1, 1)
	if _, _, err := zero.SolveCG([]float64{1, 1}, 1e-10, 100); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("singular matrix must yield ErrNotSPD, got %v", err)
	}
}

// TestSORStopsOnTrueResidual: when SolveSOR reports convergence the *actual*
// residual must satisfy the tolerance (the old delta-based test could stop
// while the residual was still large), and iteration exhaustion must report
// ErrNoConverge with the best iterate.
func TestSORStopsOnTrueResidual(t *testing.T) {
	// Slowly converging: a long 1-D chain with under-relaxation.
	m, b := buildLaplacian(60)
	x, iters, err := m.SolveSOR(b, nil, 0.8, 1e-8, 1000000)
	if err != nil {
		t.Fatal(err)
	}
	if iters <= 0 {
		t.Fatalf("iteration count %d", iters)
	}
	scratch := make([]float64, m.N)
	bNorm := math.Sqrt(dot(b, b))
	if rel := m.residualNorm(b, x, scratch) / bNorm; rel > 1e-8 {
		t.Fatalf("declared converged at relative residual %g > tol", rel)
	}
	// Exhaustion: too few sweeps must error (not silently claim success) and
	// still return the running iterate.
	x, iters, err = m.SolveSOR(b, nil, 0.8, 1e-8, 3)
	if !errors.Is(err, ErrNoConverge) {
		t.Fatalf("want ErrNoConverge, got %v", err)
	}
	if iters != 3 || x == nil {
		t.Fatalf("exhaustion must report maxIter and the best iterate (%d, %v)", iters, x)
	}
}

// TestWorkspaceSolverReuse: repeated workspace solves stay correct (no state
// leaks between solves, across solver variants and different system sizes)
// and allocate nothing once warm.
func TestWorkspaceSolverReuse(t *testing.T) {
	var ws Workspace
	big, bigB := buildMesh2D(7)
	small, smallB := buildLaplacian(5)
	solvers := []func(m *SparseMatrix, b []float64) ([]float64, int, error){
		func(m *SparseMatrix, b []float64) ([]float64, int, error) { return m.SolvePCGW(&ws, b, 1e-12, 10000) },
		func(m *SparseMatrix, b []float64) ([]float64, int, error) { return m.SolveCGW(&ws, b, 1e-12, 10000) },
	}
	for round := 0; round < 3; round++ {
		for si, solve := range solvers {
			for _, sys := range []struct {
				m *SparseMatrix
				b []float64
			}{{big, bigB}, {small, smallB}} {
				x, _, err := solve(sys.m, sys.b)
				if err != nil {
					t.Fatal(err)
				}
				scratch := make([]float64, sys.m.N)
				if rel := sys.m.residualNorm(sys.b, x, scratch) / math.Sqrt(dot(sys.b, sys.b)); rel > 1e-10 {
					t.Fatalf("round %d solver %d: residual %g", round, si, rel)
				}
			}
		}
	}
	for si, solve := range solvers {
		allocs := testing.AllocsPerRun(20, func() {
			if _, _, err := solve(big, bigB); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 0 {
			t.Fatalf("warm workspace solve (solver %d) allocates %.0f objects, want 0", si, allocs)
		}
	}
}

func TestCGZeroRHS(t *testing.T) {
	m, _ := buildLaplacian(5)
	x, iters, err := m.SolveCG(make([]float64, 5), 1e-12, 100)
	if err != nil || iters != 0 {
		t.Fatalf("zero rhs should solve instantly: %v (%d iters)", err, iters)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatalf("zero rhs must give zero solution")
		}
	}
}
