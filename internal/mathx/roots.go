// Package mathx provides the small numerical toolbox the model stack needs:
// bracketing root finders, 1-D minimizers, interpolation, dense and sparse
// linear solvers, and summary statistics. Everything is implemented from
// scratch on the standard library so the module stays dependency-free.
package mathx

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoBracket is returned when a root finder is given an interval whose
// endpoints do not bracket a sign change.
var ErrNoBracket = errors.New("mathx: interval does not bracket a root")

// ErrNoConverge is returned when an iterative method exhausts its iteration
// budget without reaching the requested tolerance.
var ErrNoConverge = errors.New("mathx: iteration did not converge")

// Bisect finds a root of f in [a, b] by bisection. f(a) and f(b) must have
// opposite signs. The result is within tol of a true root (in x).
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	if tol <= 0 {
		tol = 1e-12
	}
	for i := 0; i < 200; i++ {
		m := 0.5 * (a + b)
		fm := f(m)
		if fm == 0 || (b-a)/2 < tol {
			return m, nil
		}
		if math.Signbit(fm) == math.Signbit(fa) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return 0.5 * (a + b), nil
}

// Brent finds a root of f in [a, b] using Brent's method (inverse quadratic
// interpolation with bisection fallback). f(a) and f(b) must bracket a root.
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	if tol <= 0 {
		tol = 1e-13
	}
	if math.Abs(fa) < math.Abs(fb) {
		a, b = b, a
		fa, fb = fb, fa
	}
	c, fc := a, fa
	var d, s float64
	mflag := true
	for i := 0; i < 200; i++ {
		if fb == 0 || math.Abs(b-a) < tol {
			return b, nil
		}
		if fa != fc && fb != fc {
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant.
			s = b - fb*(b-a)/(fb-fa)
		}
		lo, hi := (3*a+b)/4, b
		if lo > hi {
			lo, hi = hi, lo
		}
		cond := s < lo || s > hi ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < tol) ||
			(!mflag && math.Abs(c-d) < tol)
		if cond {
			s = 0.5 * (a + b)
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		d, c, fc = c, b, fb
		if math.Signbit(fa) != math.Signbit(fs) {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b = b, a
			fa, fb = fb, fa
		}
	}
	return b, ErrNoConverge
}

// FindBracket expands outward from [a, b] (geometrically, up to maxGrow
// doublings) until f changes sign across the interval, returning the
// bracketing endpoints. It is a convenience for callers with a good initial
// guess but an uncertain range.
func FindBracket(f func(float64) float64, a, b float64, maxGrow int) (lo, hi float64, err error) {
	if a == b {
		b = a + 1e-6
	}
	if a > b {
		a, b = b, a
	}
	fa, fb := f(a), f(b)
	for i := 0; i < maxGrow; i++ {
		if math.Signbit(fa) != math.Signbit(fb) || fa == 0 || fb == 0 {
			return a, b, nil
		}
		w := b - a
		if math.Abs(fa) < math.Abs(fb) {
			a -= w
			fa = f(a)
		} else {
			b += w
			fb = f(b)
		}
	}
	return 0, 0, ErrNoBracket
}
