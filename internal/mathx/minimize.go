package mathx

import "math"

// GoldenSection minimizes a unimodal function f over [a, b] to within xtol,
// returning the minimizing x and f(x).
func GoldenSection(f func(float64) float64, a, b, xtol float64) (xmin, fmin float64) {
	if a > b {
		a, b = b, a
	}
	if xtol <= 0 {
		xtol = 1e-10
	}
	const invPhi = 0.6180339887498949 // (sqrt(5)-1)/2
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for b-a > xtol {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	x := 0.5 * (a + b)
	return x, f(x)
}

// MinimizeGrid evaluates f at n+1 evenly spaced points across [a, b] and
// returns the best point, then polishes it with a golden-section search in
// the surrounding cell. Useful when f may not be unimodal across [a, b].
func MinimizeGrid(f func(float64) float64, a, b float64, n int) (xmin, fmin float64) {
	if n < 2 {
		n = 2
	}
	if a > b {
		a, b = b, a
	}
	best, fbest := a, f(a)
	step := (b - a) / float64(n)
	for i := 1; i <= n; i++ {
		x := a + float64(i)*step
		if fx := f(x); fx < fbest {
			best, fbest = x, fx
		}
	}
	lo := math.Max(a, best-step)
	hi := math.Min(b, best+step)
	x, fx := GoldenSection(f, lo, hi, (hi-lo)*1e-7)
	if fx < fbest {
		return x, fx
	}
	return best, fbest
}

// MinimizeIntGrid returns the integer k in [lo, hi] minimizing f(k).
func MinimizeIntGrid(f func(int) float64, lo, hi int) (kmin int, fmin float64) {
	if lo > hi {
		lo, hi = hi, lo
	}
	kmin, fmin = lo, f(lo)
	for k := lo + 1; k <= hi; k++ {
		if fk := f(k); fk < fmin {
			kmin, fmin = k, fk
		}
	}
	return kmin, fmin
}
