package mathx

import (
	"fmt"
	"math"
)

// SolveMGBatchW solves k same-pattern systems mats[v]·x = bs[v] in
// lockstep, sharing one CSR pattern traversal per Krylov iteration. It is
// the sweep-solve kernel: a scenario sweep assembles k structurally
// identical meshes (same grid size, different conductances and currents),
// and solving them together loads rowPtr/fcols once per row for all k
// variants instead of once per variant — the pattern indices are ~27% of
// the SpMV traffic, plus the loop overhead amortizes k ways.
//
// Per-variant semantics are EXACTLY SolveMGW's: each variant executes the
// same operation sequence on its own vectors (same FMG start, same
// convergence test, same error conditions, same float accumulation order —
// the batched SpMV keeps one running sum per variant, added in the same
// insertion order as mulVecRows), and a variant leaves the batch the
// moment it converges or errors, exactly when a solo solve would return.
// Results are therefore bit-identical to k independent SolveMGW calls
// regardless of batch composition — the property that lets sweep priming
// populate caches that solo solves must later match byte for byte
// (TestBatchMatchesSoloBitwise pins it).
//
// Every slice argument has length k; wss/pres follow the same reuse and
// aliasing contracts as SolveMGW (xs[v] aliases wss[v].x). The V-cycle
// preconditioner itself is deliberately NOT batched: its stencil levels
// share no arrays between variants, and interleaving k working sets
// through the level hierarchy would evict cache it currently fits in.
// errs[v] reports each variant's outcome; a batch-shape violation
// (mismatched lengths, unfrozen or different-pattern matrices) fails every
// variant with the same error so callers can fall back to solo solves.
func SolveMGBatchW(wss []*Workspace, pres []Preconditioner, mats []*SparseMatrix, bs [][]float64, tol float64, maxIter int) ([][]float64, []int, []error) {
	k := len(bs)
	xs := make([][]float64, k)
	iters := make([]int, k)
	errs := make([]error, k)
	if k == 0 {
		return xs, iters, errs
	}
	failAll := func(err error) ([][]float64, []int, []error) {
		for v := range errs {
			errs[v] = err
		}
		return xs, iters, errs
	}
	if len(wss) != k || len(pres) != k || len(mats) != k {
		return failAll(fmt.Errorf("mathx: batch solve length mismatch (ws=%d pre=%d mat=%d b=%d)", len(wss), len(pres), len(mats), k))
	}
	m0 := mats[0]
	n := m0.N
	for v, m := range mats {
		switch {
		case !m.frozen:
			return failAll(fmt.Errorf("mathx: batch solve needs frozen matrices (variant %d is not)", v))
		case m.N != n:
			return failAll(fmt.Errorf("mathx: batch solve size mismatch (variant %d has N=%d, want %d)", v, m.N, n))
		case !samePattern(m, m0):
			return failAll(fmt.Errorf("mathx: batch solve pattern mismatch at variant %d", v))
		case len(bs[v]) != n:
			return failAll(fmt.Errorf("mathx: rhs length %d, want %d", len(bs[v]), n))
		}
	}

	// Per-variant init — the same sequence SolveMGW runs solo.
	type state struct {
		x, r, p, z, ap []float64
		rz, bNorm      float64
		rNorm          float64
	}
	sts := make([]state, k)
	active := make([]int, 0, k)
	fmgIdx := make([]int, 0, k)
	for v := 0; v < k; v++ {
		ws := wss[v]
		ws.grow(n)
		st := &sts[v]
		st.x, st.r, st.p, st.z, st.ap = ws.x, ws.r, ws.p, ws.z, ws.ap
		copy(st.r, bs[v])
		st.bNorm = math.Sqrt(dot(st.r, st.r))
		if st.bNorm == 0 {
			xs[v] = st.x
			continue
		}
		if fs, ok := pres[v].(fmgStarter); ok && fs.FMGStart(bs[v], st.x) {
			fmgIdx = append(fmgIdx, v)
		}
		active = append(active, v)
	}
	// FMG residuals r = b − A·x₀, the A·x₀ products batched across the
	// variants that started from an interpolated guess.
	if len(fmgIdx) > 0 {
		amats := make([]*SparseMatrix, len(fmgIdx))
		axs := make([][]float64, len(fmgIdx))
		ays := make([][]float64, len(fmgIdx))
		for j, v := range fmgIdx {
			amats[j], axs[j], ays[j] = mats[v], sts[v].x, sts[v].ap
		}
		mulVecBatch(amats, axs, ays)
		for _, v := range fmgIdx {
			st := &sts[v]
			r, b, ap := st.r, bs[v], st.ap
			if parallelOK(n) {
				parFor(n, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						r[i] = b[i] - ap[i]
					}
				})
			} else {
				for i := range r {
					r[i] = b[i] - ap[i]
				}
			}
		}
	}
	live := active[:0]
	for _, v := range active {
		st := &sts[v]
		pres[v].Apply(st.r, st.z)
		copy(st.p, st.z)
		st.rz = dot(st.r, st.z)
		if !(st.rz > 0) {
			errs[v] = fmt.Errorf("mathx: MG-PCG: preconditioner not positive definite (rᵀz = %g): %w", st.rz, ErrNotSPD)
			continue
		}
		st.rNorm = math.Sqrt(dot(st.r, st.r))
		live = append(live, v)
	}
	active = live

	// Lockstep iterations: one batched SpMV over the active set, then the
	// per-variant scalar work, each variant oblivious to the others. On
	// the serial path the two Krylov reductions fuse into the passes that
	// produce their operands — pᵀAp into the SpMV, rᵀr into the axpy pair
	// — accumulating the same values in the same ascending-index order as
	// the separate dots (bit-neutral), while saving three full vector
	// re-streams per variant per iteration. The solo SolveMGW keeps the
	// textbook structure; this fusion is the batch's own restructuring
	// win on top of the shared pattern traversal.
	amats := make([]*SparseMatrix, 0, k)
	axs := make([][]float64, 0, k)
	ays := make([][]float64, 0, k)
	pAps := make([]float64, k)
	for iter := 1; iter <= maxIter && len(active) > 0; iter++ {
		amats, axs, ays = amats[:0], axs[:0], ays[:0]
		for _, v := range active {
			amats = append(amats, mats[v])
			axs = append(axs, sts[v].p)
			ays = append(ays, sts[v].ap)
		}
		serial := !parallelOK(n)
		if serial {
			mulVecBatchDot(amats, axs, ays, pAps)
		} else {
			mulVecBatch(amats, axs, ays)
			for j, v := range active {
				pAps[j] = dot(sts[v].p, sts[v].ap)
			}
		}
		live := active[:0]
		for j, v := range active {
			st := &sts[v]
			pAp := pAps[j]
			if !(pAp > 0) {
				errs[v] = fmt.Errorf("mathx: MG-PCG: curvature pᵀAp = %g at iteration %d: %w", pAp, iter, ErrNotSPD)
				iters[v] = iter
				continue
			}
			alpha := st.rz / pAp
			x, r, p, z, ap := st.x, st.r, st.p, st.z, st.ap
			rr := 0.0
			if serial {
				for i := range x {
					x[i] += alpha * p[i]
					ri := r[i] - alpha*ap[i]
					r[i] = ri
					rr += ri * ri
				}
			} else {
				parFor(n, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						x[i] += alpha * p[i]
						r[i] -= alpha * ap[i]
					}
				})
				rr = dot(r, r)
			}
			st.rNorm = math.Sqrt(rr)
			if st.rNorm <= tol*st.bNorm {
				xs[v] = x
				iters[v] = iter
				continue
			}
			pres[v].Apply(r, z)
			rzNew := dot(r, z)
			if !(rzNew > 0) {
				errs[v] = fmt.Errorf("mathx: MG-PCG: preconditioner not positive definite (rᵀz = %g): %w", rzNew, ErrNotSPD)
				iters[v] = iter
				continue
			}
			beta := rzNew / st.rz
			if parallelOK(n) {
				parFor(n, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						p[i] = z[i] + beta*p[i]
					}
				})
			} else {
				for i := range p {
					p[i] = z[i] + beta*p[i]
				}
			}
			st.rz = rzNew
			live = append(live, v)
		}
		active = live
	}
	for _, v := range active {
		st := &sts[v]
		xs[v] = st.x
		iters[v] = maxIter
		errs[v] = noConverge("MG-PCG", maxIter, st.rNorm/st.bNorm)
	}
	return xs, iters, errs
}

// samePattern reports whether two frozen matrices share a sparsity
// pattern. The fast path is identity of the backing arrays — the mesh
// assembly cache hands every same-size variant the same rowPtr/fcols
// slices — with a content comparison fallback for independently built but
// structurally equal matrices.
func samePattern(a, b *SparseMatrix) bool {
	if len(a.rowPtr) > 0 && len(b.rowPtr) == len(a.rowPtr) && &a.rowPtr[0] == &b.rowPtr[0] &&
		len(a.fcols) == len(b.fcols) && (len(a.fcols) == 0 || &a.fcols[0] == &b.fcols[0]) {
		return true
	}
	if len(a.rowPtr) != len(b.rowPtr) || len(a.fcols) != len(b.fcols) {
		return false
	}
	for i := range a.rowPtr {
		if a.rowPtr[i] != b.rowPtr[i] {
			return false
		}
	}
	for i := range a.fcols {
		if a.fcols[i] != b.fcols[i] {
			return false
		}
	}
	return true
}

// mulVecBatch computes ys[v] = mats[v]·xs[v] for same-pattern frozen
// matrices, sharing the pattern traversal across variants in
// register-blocked groups of four. The slice headers (values, diagonal,
// vectors) are hoisted out of the per-matrix structs once per call — a
// naive per-element mats[v].fvals[i] indirection costs ~3× the solo
// kernel and erases the sharing win.
func mulVecBatch(mats []*SparseMatrix, xs, ys [][]float64) {
	n := mats[0].N
	k := len(mats)
	fvs := make([][]float64, k)
	dgs := make([][]float64, k)
	for v, m := range mats {
		fvs[v], dgs[v] = m.fvals, m.diag
	}
	rp, cols := mats[0].rowPtr, mats[0].fcols
	if parallelOK(n) {
		parFor(n, func(lo, hi int) {
			mulVecBatchRows(rp, cols, fvs, dgs, xs, ys, lo, hi)
		})
	} else {
		mulVecBatchRows(rp, cols, fvs, dgs, xs, ys, 0, n)
	}
}

// mulVecBatchDot is the serial fused form of mulVecBatch: alongside each
// ys[v] = mats[v]·xs[v] it accumulates pAps[v] = xs[v]ᵀ·ys[v] in ascending
// row order — the exact accumulation sequence dot(xs[v], ys[v]) would run
// after the product, so the fusion changes no bits, only skips re-reading
// two n-vectors per variant from memory. Serial-path only: under a
// parallel row split the single running sum per variant would have to
// become per-block partials, which is a different float ordering.
func mulVecBatchDot(mats []*SparseMatrix, xs, ys [][]float64, pAps []float64) {
	k := len(mats)
	fvs := make([][]float64, k)
	dgs := make([][]float64, k)
	for v, m := range mats {
		fvs[v], dgs[v] = m.fvals, m.diag
	}
	rp, cols := mats[0].rowPtr, mats[0].fcols
	n := mats[0].N
	v := 0
	for ; v+4 <= k; v += 4 {
		f0, f1, f2, f3 := fvs[v], fvs[v+1], fvs[v+2], fvs[v+3]
		d0, d1, d2, d3 := dgs[v], dgs[v+1], dgs[v+2], dgs[v+3]
		x0, x1, x2, x3 := xs[v], xs[v+1], xs[v+2], xs[v+3]
		y0, y1, y2, y3 := ys[v], ys[v+1], ys[v+2], ys[v+3]
		p0, p1, p2, p3 := 0.0, 0.0, 0.0, 0.0
		for r := 0; r < n; r++ {
			s0 := d0[r] * x0[r]
			s1 := d1[r] * x1[r]
			s2 := d2[r] * x2[r]
			s3 := d3[r] * x3[r]
			for i := rp[r]; i < rp[r+1]; i++ {
				c := cols[i]
				s0 += f0[i] * x0[c]
				s1 += f1[i] * x1[c]
				s2 += f2[i] * x2[c]
				s3 += f3[i] * x3[c]
			}
			y0[r], y1[r], y2[r], y3[r] = s0, s1, s2, s3
			p0 += x0[r] * s0
			p1 += x1[r] * s1
			p2 += x2[r] * s2
			p3 += x3[r] * s3
		}
		pAps[v], pAps[v+1], pAps[v+2], pAps[v+3] = p0, p1, p2, p3
	}
	if v+2 <= k {
		f0, f1 := fvs[v], fvs[v+1]
		d0, d1 := dgs[v], dgs[v+1]
		x0, x1 := xs[v], xs[v+1]
		y0, y1 := ys[v], ys[v+1]
		p0, p1 := 0.0, 0.0
		for r := 0; r < n; r++ {
			s0 := d0[r] * x0[r]
			s1 := d1[r] * x1[r]
			for i := rp[r]; i < rp[r+1]; i++ {
				c := cols[i]
				s0 += f0[i] * x0[c]
				s1 += f1[i] * x1[c]
			}
			y0[r], y1[r] = s0, s1
			p0 += x0[r] * s0
			p1 += x1[r] * s1
		}
		pAps[v], pAps[v+1] = p0, p1
		v += 2
	}
	if v < k {
		f0, d0, x0, y0 := fvs[v], dgs[v], xs[v], ys[v]
		p0 := 0.0
		for r := 0; r < n; r++ {
			s0 := d0[r] * x0[r]
			for i := rp[r]; i < rp[r+1]; i++ {
				s0 += f0[i] * x0[cols[i]]
			}
			y0[r] = s0
			p0 += x0[r] * s0
		}
		pAps[v] = p0
	}
}

// mulVecBatchRows is the shared-pattern CSR kernel for rows [lo, hi):
// pattern indices load once per row per variant GROUP (4-wide, then the
// 2/1-wide remainder), with each group's array headers pinned in locals
// so the accumulators stay in registers. Each variant's sum accumulates
// diagonal first, then off-diagonals in insertion order — the exact order
// of the solo mulVecRows, so batched products are bit-identical to solo
// ones regardless of how variants land in groups.
func mulVecBatchRows(rp, cols []int32, fvs, dgs, xs, ys [][]float64, lo, hi int) {
	k := len(fvs)
	v := 0
	for ; v+4 <= k; v += 4 {
		f0, f1, f2, f3 := fvs[v], fvs[v+1], fvs[v+2], fvs[v+3]
		d0, d1, d2, d3 := dgs[v], dgs[v+1], dgs[v+2], dgs[v+3]
		x0, x1, x2, x3 := xs[v], xs[v+1], xs[v+2], xs[v+3]
		y0, y1, y2, y3 := ys[v], ys[v+1], ys[v+2], ys[v+3]
		for r := lo; r < hi; r++ {
			s0 := d0[r] * x0[r]
			s1 := d1[r] * x1[r]
			s2 := d2[r] * x2[r]
			s3 := d3[r] * x3[r]
			for i := rp[r]; i < rp[r+1]; i++ {
				c := cols[i]
				s0 += f0[i] * x0[c]
				s1 += f1[i] * x1[c]
				s2 += f2[i] * x2[c]
				s3 += f3[i] * x3[c]
			}
			y0[r], y1[r], y2[r], y3[r] = s0, s1, s2, s3
		}
	}
	if v+2 <= k {
		f0, f1 := fvs[v], fvs[v+1]
		d0, d1 := dgs[v], dgs[v+1]
		x0, x1 := xs[v], xs[v+1]
		y0, y1 := ys[v], ys[v+1]
		for r := lo; r < hi; r++ {
			s0 := d0[r] * x0[r]
			s1 := d1[r] * x1[r]
			for i := rp[r]; i < rp[r+1]; i++ {
				c := cols[i]
				s0 += f0[i] * x0[c]
				s1 += f1[i] * x1[c]
			}
			y0[r], y1[r] = s0, s1
		}
		v += 2
	}
	if v < k {
		f0, d0, x0, y0 := fvs[v], dgs[v], xs[v], ys[v]
		for r := lo; r < hi; r++ {
			s0 := d0[r] * x0[r]
			for i := rp[r]; i < rp[r+1]; i++ {
				s0 += f0[i] * x0[cols[i]]
			}
			y0[r] = s0
		}
	}
}
