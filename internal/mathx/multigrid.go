package mathx

import (
	"fmt"
	"math"
)

// Preconditioner supplies z ≈ M⁻¹·r for the preconditioned Krylov solvers.
// Apply must be linear, symmetric positive definite as an operator, and
// deterministic; r and z never alias. MeshMG is the package's production
// implementation.
type Preconditioner interface {
	Apply(r, z []float64)
}

// fmgStarter is the optional hook SolveMGW (and SolveMGBatchW) probe for: a
// preconditioner that can seed the Krylov iteration with a full-multigrid
// initial guess instead of x = 0. FMGStart writes the guess into x (same
// eliminated layout as Apply) and reports whether it did; false means the
// solver starts from zero as before. MeshMG implements it.
type fmgStarter interface {
	FMGStart(b, x []float64) bool
}

// Smoother selects the V-cycle smoothing kernel of a MeshMG. All variants
// preserve the pinned node (its inverse-diagonal entry is zero, so no sweep
// ever moves it), are applied in A-adjoint pre/post pairs so the V-cycle
// stays a symmetric (CG-safe) operator, and are bit-identical serial or
// parallel: row/element blocks are fixed by n and GOMAXPROCS alone and no
// kernel reduces across blocks.
type Smoother int

const (
	// SmootherChebyshev smooths with a degree-chebDegree Chebyshev
	// polynomial in the Jacobi-preconditioned operator D⁻¹L — SpMV + axpy
	// only, no data dependence inside a sweep, and the best measured
	// damping per FLOP of the three (DESIGN.md §5 ablation). The default.
	SmootherChebyshev Smoother = iota
	// SmootherRBGS is red-black Gauss-Seidel: red-then-black before
	// coarsening and black-then-red after, an A-adjoint pair. Stronger per
	// sweep than Jacobi at the same traffic; selectable at build time via
	// the mg_rbgs tag (see DefaultSmoother).
	SmootherRBGS
	// SmootherJacobi is the damped-Jacobi sweep (ω = 0.8, one pre and one
	// post sweep) the first multigrid round shipped, kept selectable so the
	// ablation benchmarks compare against it.
	SmootherJacobi
)

func (s Smoother) String() string {
	switch s {
	case SmootherChebyshev:
		return "chebyshev"
	case SmootherRBGS:
		return "rbgs"
	case SmootherJacobi:
		return "jacobi"
	}
	return fmt.Sprintf("Smoother(%d)", int(s))
}

// Chebyshev smoother parameters. Gershgorin puts the spectrum of the
// Jacobi-preconditioned mesh Laplacian D⁻¹L inside (0, 2] on every level
// (each row's off-diagonal magnitudes sum to its diagonal), so chebLMax = 2
// is a safe upper bound without estimating eigenvalues. The smoother
// targets the upper band [chebLMax/chebRatio, chebLMax] — the oscillatory
// modes the coarse grid cannot represent — where the degree-d shifted
// Chebyshev residual polynomial damps error by 1/T_d(σ) per application
// (≈ 0.22 for d = 2 at κ = 4); below the band |p(λ)| < 1 monotonically, so
// smooth modes are never amplified and the V-cycle stays positive definite.
const (
	chebLMax   = 2.0
	chebRatio  = 4.0
	chebDegree = 2

	chebLMin  = chebLMax / chebRatio
	chebTheta = (chebLMax + chebLMin) / 2
	chebDelta = (chebLMax - chebLMin) / 2
	chebSigma = chebTheta / chebDelta
)

// MeshMG is a geometric multigrid V-cycle preconditioner specialized to the
// system the resistive power-grid mesh assembles: an n×n node grid with a
// uniform conductance g on every edge, reflective (Neumann) cell
// boundaries, and exactly one node pinned to 0 V (the bump), whose row and
// column are eliminated from the unknown vector. Plain CG needs O(n)
// iterations on this system (the Laplacian condition number grows with the
// grid); wrapping one V-cycle as the CG preconditioner (SolveMGW) holds the
// iteration count near-constant as n doubles, which is what makes n = 255
// and n = 511 grids tractable.
//
// Internals work on full n_l×n_l grids per level with unit conductance —
// the operator scales linearly in g, so Apply rescales its output by 1/g
// (SetConductance) instead of rebuilding levels. Smoothing defaults to a
// Chebyshev polynomial (see Smoother for the alternatives), transfers are
// bilinear interpolation and its exact transpose, and the coarsest pinned
// system is solved by a Cholesky factorization computed once at
// construction. MeshMG also implements the full-multigrid start SolveMGW
// seeds its iteration with (FMGStart; SetFMG disables it for ablation).
// All level storage is preallocated: Apply performs no allocations, so a
// pooled MeshMG keeps the whole solve on the zero-alloc warm path.
type MeshMG struct {
	n      int
	levels []*mgLevel
	invG   float64
	sm     Smoother
	fmg    bool
	omega  float64
	nu     int // Jacobi pre- and post-smoothing sweeps per level

	// Coarsest-level direct solve: Cholesky factor of the pinned
	// unit-conductance system, plus gather/scatter scratch.
	chol   []float64 // lower triangle, row-major m×m
	cb, cx []float64 // length m = nc²−1
}

// mgLevel is one grid of the hierarchy. x/b/r span the full n×n grid; the
// pinned node is held at 0 by a zero entry in the inverse diagonals (no
// smoother moves it) and by explicit zeroing after prolongation. off is the
// sublattice offset used to coarsen THIS level: coarse node k sits at fine
// index 2k+off per axis. The offset is chosen to match the pin's parity, so
// the pinned node is a coarse point on every level — without that, the
// long-range mode anchored only by the pin is mis-modelled on coarse grids
// and the V-cycle's effectiveness decays as levels are added (measured:
// iteration counts grew 22→61 from n=31 to n=255 with even-only
// coarsening; they stay ≤ ~15 with parity-matched coarsening).
type mgLevel struct {
	n        int
	pin      int
	off      int
	x, b, r  []float64
	d        []float64 // Chebyshev direction scratch (nil for other smoothers)
	wInvDiag []float64 // ω / degree, 0 at the pin (Jacobi)
	invDiag  []float64 // 1 / degree, 0 at the pin (Chebyshev, RBGS)
}

// mgCoarsest is the grid size at which the hierarchy bottoms out into the
// dense direct solve (≤ 63 unknowns — negligible either way).
const mgCoarsest = 8

// NewMeshMG builds the hierarchy for an n×n mesh with the node at flat
// index pin (row·n + col) held at 0 V, smoothing with DefaultSmoother.
// Unit edge conductance; call SetConductance to match the assembled system
// before Apply.
func NewMeshMG(n, pin int) (*MeshMG, error) {
	return NewMeshMGSmoother(n, pin, DefaultSmoother)
}

// NewMeshMGSmoother is NewMeshMG with an explicit smoother selection; the
// ablation benchmarks use it to compare kernels on one hierarchy shape.
func NewMeshMGSmoother(n, pin int, sm Smoother) (*MeshMG, error) {
	if n < 3 {
		return nil, fmt.Errorf("mathx: mesh multigrid needs n ≥ 3, got %d", n)
	}
	if pin < 0 || pin >= n*n {
		return nil, fmt.Errorf("mathx: pinned node %d outside %d×%d grid", pin, n, n)
	}
	switch sm {
	case SmootherChebyshev, SmootherRBGS, SmootherJacobi:
	default:
		return nil, fmt.Errorf("mathx: unknown multigrid smoother %d", int(sm))
	}
	pr, pc := pin/n, pin%n
	mg := &MeshMG{n: n, invG: 1, sm: sm, fmg: true, omega: 0.8, nu: 1}
	for ln := n; ; {
		lev := &mgLevel{n: ln, pin: pr*ln + pc}
		lev.x = make([]float64, ln*ln)
		lev.b = make([]float64, ln*ln)
		lev.r = make([]float64, ln*ln)
		lev.wInvDiag = make([]float64, ln*ln)
		lev.invDiag = make([]float64, ln*ln)
		if sm == SmootherChebyshev {
			lev.d = make([]float64, ln*ln)
		}
		for r := 0; r < ln; r++ {
			for c := 0; c < ln; c++ {
				deg := 0.0
				if r > 0 {
					deg++
				}
				if r < ln-1 {
					deg++
				}
				if c > 0 {
					deg++
				}
				if c < ln-1 {
					deg++
				}
				lev.wInvDiag[r*ln+c] = mg.omega / deg
				lev.invDiag[r*ln+c] = 1 / deg
			}
		}
		lev.wInvDiag[lev.pin] = 0
		lev.invDiag[lev.pin] = 0
		mg.levels = append(mg.levels, lev)
		if ln <= mgCoarsest {
			break
		}
		// Coarsen onto the sublattice containing the pin (coarse node k at
		// fine index 2k+off), so the Dirichlet anchor survives on every
		// level. A centered pin has pr == pc, so one offset serves both
		// axes; if an off-diagonal pin ever breaks the parity match, fall
		// back to the even sublattice and let the pin drift to its nearest
		// coarse node (the V-cycle only preconditions — CG absorbs the
		// mismatch at some iteration cost).
		off := 0
		if pr%2 == pc%2 {
			off = pr % 2
		}
		lev.off = off
		ln = (ln - off + 1) / 2
		pr, pc = (pr-off+1)/2, (pc-off+1)/2
		if pr > ln-1 {
			pr = ln - 1
		}
		if pc > ln-1 {
			pc = ln - 1
		}
	}
	if err := mg.factorCoarsest(); err != nil {
		return nil, err
	}
	return mg, nil
}

// SetConductance declares the edge conductance of the system being
// preconditioned; Apply divides its output by g (the mesh operator is g
// times the unit-conductance one, so its inverse scales by 1/g).
func (mg *MeshMG) SetConductance(g float64) error {
	if !(g > 0) {
		return fmt.Errorf("mathx: non-positive mesh conductance %g", g)
	}
	mg.invG = 1 / g
	return nil
}

// SetFMG toggles the full-multigrid start SolveMGW seeds its iteration with
// when this preconditioner is attached (on by default). Off exists for the
// ablation benchmarks that isolate the smoother's contribution; production
// solves keep it on.
func (mg *MeshMG) SetFMG(on bool) { mg.fmg = on }

// N returns the fine-grid dimension (nodes per side).
func (mg *MeshMG) N() int { return mg.n }

// Unknowns returns the eliminated-system size n²−1 Apply expects.
func (mg *MeshMG) Unknowns() int { return mg.n*mg.n - 1 }

// Apply runs one V-cycle: z ≈ A⁻¹·r for the pinned mesh system, both
// vectors in the eliminated layout (length n²−1, the pinned node skipped).
// Allocation-free and deterministic.
func (mg *MeshMG) Apply(r, z []float64) {
	f := mg.levels[0]
	pin := f.pin
	copy(f.b[:pin], r[:pin])
	f.b[pin] = 0
	copy(f.b[pin+1:], r[pin:])
	mg.vcycle(0, true)
	invG := mg.invG
	for j := 0; j < pin; j++ {
		z[j] = f.x[j] * invG
	}
	for j := pin; j < len(z); j++ {
		z[j] = f.x[j+1] * invG
	}
}

// FMGStart seeds x with one full-multigrid pass over b (both in the
// eliminated layout): b is restricted down every level, the coarsest is
// solved exactly, and the solution is interpolated upward with one V-cycle
// of polishing per level. The result approximates A⁻¹b to roughly V-cycle
// accuracy for about 4/3 of one fine V-cycle's work, so MG-PCG started here
// saves several Krylov iterations against a zero guess. Reports false (and
// writes nothing) when the start is disabled via SetFMG.
func (mg *MeshMG) FMGStart(b, x []float64) bool {
	if !mg.fmg {
		return false
	}
	f := mg.levels[0]
	pin := f.pin
	copy(f.b[:pin], b[:pin])
	f.b[pin] = 0
	copy(f.b[pin+1:], b[pin:])
	for k := 0; k+1 < len(mg.levels); k++ {
		fine, coarse := mg.levels[k], mg.levels[k+1]
		restrict(fine, coarse, fine.b)
		coarse.b[coarse.pin] = 0
	}
	last := len(mg.levels) - 1
	mg.coarseSolve(mg.levels[last])
	for k := last - 1; k >= 0; k-- {
		lev := mg.levels[k]
		// Interpolate the coarser solution up as the starting iterate, then
		// polish with one V-cycle at this level. The recursion below only
		// touches the levels beneath k, whose FMG right-hand sides have
		// already been consumed.
		for i := range lev.x {
			lev.x[i] = 0
		}
		prolongAdd(mg.levels[k+1], lev)
		lev.x[lev.pin] = 0
		mg.vcycle(k, false)
	}
	invG := mg.invG
	for j := 0; j < pin; j++ {
		x[j] = f.x[j] * invG
	}
	for j := pin; j < len(x); j++ {
		x[j] = f.x[j+1] * invG
	}
	return true
}

// vcycle runs the cycle from level k downward, solving lev.b into lev.x.
// zeroStart declares lev.x is to be treated as 0 (its storage may hold
// stale data), which lets the first smoothing sweep skip one operator
// application; the FMG upward leg passes false to polish a prolonged
// iterate instead.
func (mg *MeshMG) vcycle(k int, zeroStart bool) {
	lev := mg.levels[k]
	if k == len(mg.levels)-1 {
		mg.coarseSolve(lev)
		return
	}
	mg.presmooth(lev, zeroStart)
	// Residual of the smoothed iterate, restricted to the coarse RHS.
	lev.applyRes(lev.x, lev.b, lev.r)
	lev.r[lev.pin] = 0
	next := mg.levels[k+1]
	restrict(lev, next, lev.r)
	next.b[next.pin] = 0
	mg.vcycle(k+1, true)
	prolongAdd(next, lev)
	lev.x[lev.pin] = 0
	mg.postsmooth(lev)
}

// presmooth applies the selected smoother before coarsening. The pre/post
// pair is arranged A-adjoint (Chebyshev and Jacobi polynomials are
// A-self-adjoint; RBGS reverses its color order), keeping the V-cycle a
// symmetric operator — the property SolveMGW's CG wrapper requires.
func (mg *MeshMG) presmooth(lev *mgLevel, zeroStart bool) {
	switch mg.sm {
	case SmootherChebyshev:
		mg.chebSmooth(lev, zeroStart)
	case SmootherRBGS:
		if zeroStart {
			x := lev.x
			for i := range x {
				x[i] = 0
			}
		}
		lev.rbSweep(0)
		lev.rbSweep(1)
	default: // SmootherJacobi
		s := 0
		if zeroStart {
			// From x = 0 the first damped-Jacobi sweep collapses to a
			// diagonal scaling of b.
			x, b, wd := lev.x, lev.b, lev.wInvDiag
			if parallelOK(len(x)) {
				parFor(len(x), func(lo, hi int) {
					for i := lo; i < hi; i++ {
						x[i] = wd[i] * b[i]
					}
				})
			} else {
				for i := range x {
					x[i] = wd[i] * b[i]
				}
			}
			s = 1
		}
		for ; s < mg.nu; s++ {
			lev.smooth()
		}
	}
}

// postsmooth applies the A-adjoint of presmooth after prolongation.
func (mg *MeshMG) postsmooth(lev *mgLevel) {
	switch mg.sm {
	case SmootherChebyshev:
		mg.chebSmooth(lev, false)
	case SmootherRBGS:
		// Black-then-red: the adjoint of the pre-smoother's red-then-black.
		lev.rbSweep(1)
		lev.rbSweep(0)
	default:
		for s := 0; s < mg.nu; s++ {
			lev.smooth()
		}
	}
}

// smooth performs one damped-Jacobi sweep x += ω·D⁻¹·(b − A·x).
func (l *mgLevel) smooth() {
	l.applyRes(l.x, l.b, l.r)
	x, r, wd := l.x, l.r, l.wInvDiag
	if parallelOK(len(x)) {
		parFor(len(x), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				x[i] += wd[i] * r[i]
			}
		})
	} else {
		for i := range x {
			x[i] += wd[i] * r[i]
		}
	}
}

// chebSmooth applies the degree-chebDegree Chebyshev polynomial smoother:
// the standard three-term recurrence on the interval [chebLMin, chebLMax]
// of the Jacobi-preconditioned operator, built from applyRes/applySub
// stencil applications and fused axpy sweeps only. The pin never moves
// because invDiag is zero there, so every direction d has d[pin] = 0.
func (mg *MeshMG) chebSmooth(l *mgLevel, zeroStart bool) {
	x, b, r, d, di := l.x, l.b, l.r, l.d, l.invDiag
	m := len(x)
	if zeroStart {
		// x = 0: the residual is b and the first correction needs no
		// operator application.
		if parallelOK(m) {
			parFor(m, func(lo, hi int) { chebFirstZero(x, b, r, d, di, lo, hi) })
		} else {
			chebFirstZero(x, b, r, d, di, 0, m)
		}
	} else {
		l.applyRes(x, b, r)
		if parallelOK(m) {
			parFor(m, func(lo, hi int) { chebFirst(x, r, d, di, lo, hi) })
		} else {
			chebFirst(x, r, d, di, 0, m)
		}
	}
	rho := 1 / chebSigma
	for k := 1; k < chebDegree; k++ {
		l.applySub(d, r)
		rhoNext := 1 / (2*chebSigma - rho)
		c1, c2 := rhoNext*rho, 2*rhoNext/chebDelta
		if parallelOK(m) {
			parFor(m, func(lo, hi int) { chebStep(x, r, d, di, c1, c2, lo, hi) })
		} else {
			chebStep(x, r, d, di, c1, c2, 0, m)
		}
		rho = rhoNext
	}
}

// chebFirstZero fuses the zero-start Chebyshev setup for [lo, hi):
// r = b, d = (1/θ)·D⁻¹·r, x = d.
func chebFirstZero(x, b, r, d, di []float64, lo, hi int) {
	const invTheta = 1 / chebTheta
	for i := lo; i < hi; i++ {
		ri := b[i]
		r[i] = ri
		v := invTheta * di[i] * ri
		d[i] = v
		x[i] = v
	}
}

// chebFirst fuses the warm-start Chebyshev setup for [lo, hi), with r
// already holding b − A·x: d = (1/θ)·D⁻¹·r, x += d.
func chebFirst(x, r, d, di []float64, lo, hi int) {
	const invTheta = 1 / chebTheta
	for i := lo; i < hi; i++ {
		v := invTheta * di[i] * r[i]
		d[i] = v
		x[i] += v
	}
}

// chebStep fuses one recurrence step for [lo, hi), with r already updated
// by applySub: d = c1·d + c2·D⁻¹·r, x += d.
func chebStep(x, r, d, di []float64, c1, c2 float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		v := c1*d[i] + c2*di[i]*r[i]
		d[i] = v
		x[i] += v
	}
}

// rbSweep performs one Gauss-Seidel half-sweep over the given color
// (0 = red, (row+col) even; 1 = black). Nodes of one color couple only to
// the other color, so the half-sweep solves its color's equations exactly
// and rows can run in parallel: each block writes its own color rows and
// reads only other-color values no block writes.
func (l *mgLevel) rbSweep(color int) {
	n := l.n
	if parallelOK(n * n) {
		parForBlocks(n, func(lo, hi int) { l.rbRows(color, lo, hi) })
	} else {
		l.rbRows(color, 0, n)
	}
}

// rbRows is the Gauss-Seidel color kernel for grid rows [rLo, rHi):
// x[i] = (b[i] + Σ x[neighbours]) / degree, skipping the pin via its zero
// inverse diagonal.
func (l *mgLevel) rbRows(color, rLo, rHi int) {
	n := l.n
	x, b, di := l.x, l.b, l.invDiag
	for r := rLo; r < rHi; r++ {
		i0 := r * n
		for c := (color + r) & 1; c < n; c += 2 {
			i := i0 + c
			s := b[i]
			if r > 0 {
				s += x[i-n]
			}
			if r < n-1 {
				s += x[i+n]
			}
			if c > 0 {
				s += x[i-1]
			}
			if c < n-1 {
				s += x[i+1]
			}
			x[i] = di[i] * s
		}
	}
}

// applyRes computes r = b − L·x for the unit-conductance 5-point Neumann
// Laplacian on the level grid (no pin handling — the pin is managed by the
// caller via the zeroed inverse diagonals and explicit zeroing). Fusing the
// subtraction into the stencil saves one full vector sweep against a
// separate y = L·x pass, and the interior columns run branch-free.
func (l *mgLevel) applyRes(x, b, r []float64) {
	n := l.n
	if parallelOK(n * n) {
		parForBlocks(n, func(lo, hi int) { l.applyResRows(x, b, r, lo, hi) })
	} else {
		l.applyResRows(x, b, r, 0, n)
	}
}

// applyResRows is the fused residual stencil for grid rows [rLo, rHi).
// Neighbour sums accumulate in up, down, left, right order (matching the
// historical branchy kernel bit for bit).
func (l *mgLevel) applyResRows(x, b, r []float64, rLo, rHi int) {
	n := l.n
	for row := rLo; row < rHi; row++ {
		i0 := r0w(row, n)
		switch {
		case row == 0:
			i := i0
			r[i] = b[i] - (2*x[i] - (x[i+n] + x[i+1]))
			for i = i0 + 1; i < i0+n-1; i++ {
				r[i] = b[i] - (3*x[i] - (x[i+n] + x[i-1] + x[i+1]))
			}
			r[i] = b[i] - (2*x[i] - (x[i+n] + x[i-1]))
		case row == n-1:
			i := i0
			r[i] = b[i] - (2*x[i] - (x[i-n] + x[i+1]))
			for i = i0 + 1; i < i0+n-1; i++ {
				r[i] = b[i] - (3*x[i] - (x[i-n] + x[i-1] + x[i+1]))
			}
			r[i] = b[i] - (2*x[i] - (x[i-n] + x[i-1]))
		default:
			i := i0
			r[i] = b[i] - (3*x[i] - (x[i-n] + x[i+n] + x[i+1]))
			for i = i0 + 1; i < i0+n-1; i++ {
				r[i] = b[i] - (4*x[i] - (x[i-n] + x[i+n] + x[i-1] + x[i+1]))
			}
			r[i] = b[i] - (3*x[i] - (x[i-n] + x[i+n] + x[i-1]))
		}
	}
}

// applySub computes y −= L·x (same stencil and gating as applyRes); the
// Chebyshev recurrence uses it to keep its residual current without a
// separate scratch vector.
func (l *mgLevel) applySub(x, y []float64) {
	n := l.n
	if parallelOK(n * n) {
		parForBlocks(n, func(lo, hi int) { l.applySubRows(x, y, lo, hi) })
	} else {
		l.applySubRows(x, y, 0, n)
	}
}

// applySubRows is the fused y −= L·x stencil for grid rows [rLo, rHi).
func (l *mgLevel) applySubRows(x, y []float64, rLo, rHi int) {
	n := l.n
	for row := rLo; row < rHi; row++ {
		i0 := r0w(row, n)
		switch {
		case row == 0:
			i := i0
			y[i] -= 2*x[i] - (x[i+n] + x[i+1])
			for i = i0 + 1; i < i0+n-1; i++ {
				y[i] -= 3*x[i] - (x[i+n] + x[i-1] + x[i+1])
			}
			y[i] -= 2*x[i] - (x[i+n] + x[i-1])
		case row == n-1:
			i := i0
			y[i] -= 2*x[i] - (x[i-n] + x[i+1])
			for i = i0 + 1; i < i0+n-1; i++ {
				y[i] -= 3*x[i] - (x[i-n] + x[i-1] + x[i+1])
			}
			y[i] -= 2*x[i] - (x[i-n] + x[i-1])
		default:
			i := i0
			y[i] -= 3*x[i] - (x[i-n] + x[i+n] + x[i+1])
			for i = i0 + 1; i < i0+n-1; i++ {
				y[i] -= 4*x[i] - (x[i-n] + x[i+n] + x[i-1] + x[i+1])
			}
			y[i] -= 3*x[i] - (x[i-n] + x[i+n] + x[i-1])
		}
	}
}

// r0w is row*n, named to keep the stencil kernels' index arithmetic
// visually distinct from their residual vector r.
func r0w(row, n int) int { return row * n }

// gatherWeights returns the weights with which the coarse node at fine
// index 2rc+off gathers its low (fr−1) and high (fr+1) fine neighbours
// along one axis — the exact transpose of axisWeights below. A weight of 0
// means that neighbour is off the grid. Interior off-lattice fine nodes
// split ½/½ between their two straddling coarse nodes; ORPHAN fine nodes
// (off=1 boundary nodes outside the coarse hull) belong wholly to their
// single coarse neighbour with weight 1 — see axisWeights for why.
func gatherWeights(rc, off, n, nc int) (wLo, wHi float64) {
	fr := 2*rc + off
	if fr > 0 {
		wLo = 0.5
		if fr-1 < off { // fine node off−1 sits below coarse node 0
			wLo = 1
		}
	}
	if fr < n-1 {
		wHi = 0.5
		if rc == nc-1 { // fine node 2nc−1+off sits above the last coarse node
			wHi = 1
		}
	}
	return
}

// restrict transfers the fine vector src (the smoothed residual on the
// V-cycle's downward leg, the right-hand side on the FMG one) to the coarse
// RHS with the exact transpose of the bilinear prolongation below: each
// coarse node (at fine index 2R+off, 2C+off) gathers itself with weight 1,
// edge neighbours with ½ (1 for boundary orphans), and corner neighbours
// with the product of the axis weights. Coarse rows are independent, so the
// sweep splits by rows when the fine grid is large.
func restrict(fine, coarse *mgLevel, src []float64) {
	n, nc := fine.n, coarse.n
	if parallelOK(n * n) {
		parForBlocks(nc, func(lo, hi int) { restrictRows(fine, coarse, src, lo, hi) })
	} else {
		restrictRows(fine, coarse, src, 0, nc)
	}
}

func restrictRows(fine, coarse *mgLevel, src []float64, rcLo, rcHi int) {
	n, nc, off := fine.n, coarse.n, fine.off
	r := src
	for rc := rcLo; rc < rcHi; rc++ {
		fr := 2*rc + off
		wU, wD := gatherWeights(rc, off, n, nc)
		for cc := 0; cc < nc; cc++ {
			fc := 2*cc + off
			wL, wR := gatherWeights(cc, off, n, nc)
			i := fr*n + fc
			s := r[i]
			if wU != 0 {
				s += wU * r[i-n]
			}
			if wD != 0 {
				s += wD * r[i+n]
			}
			if wL != 0 {
				s += wL * r[i-1]
			}
			if wR != 0 {
				s += wR * r[i+1]
			}
			if wU != 0 && wL != 0 {
				s += wU * wL * r[i-n-1]
			}
			if wU != 0 && wR != 0 {
				s += wU * wR * r[i-n+1]
			}
			if wD != 0 && wL != 0 {
				s += wD * wL * r[i+n-1]
			}
			if wD != 0 && wR != 0 {
				s += wD * wR * r[i+n+1]
			}
			coarse.b[rc*nc+cc] = s
		}
	}
}

// axisWeights maps a fine index to its straddling coarse indices and
// bilinear weights on the 2k+off sublattice. A fine node ON the sublattice
// maps to one coarse node with weight 1; interior off-lattice nodes average
// the two neighbours with weight ½. A boundary ORPHAN (an off=1 fine node
// outside the coarse hull, with only one in-range neighbour) takes FULL
// weight 1 from that neighbour, not ½: prolongation must reproduce
// constants exactly (P·1 = 1 everywhere), or the Galerkin energy PᵀAP of
// near-constant modes picks up a spurious boundary term the rediscretized
// coarse operator doesn't see — its coarse solve then over-corrects those
// lowest-energy modes without bound and the V-cycle diverges (measured:
// ~2× residual growth per cycle with ½-weight clamping). Restriction above
// is the exact transpose of these weights, which is what keeps the V-cycle
// a symmetric operator.
func axisWeights(f, off, nc int) (c0 int, w0 float64, c1 int, w1 float64) {
	d := f - off
	if d >= 0 && d%2 == 0 {
		return d / 2, 1, 0, 0
	}
	lo := (d - 1) / 2 // d = −1 (fine node below the sublattice) → lo = −1
	hi := lo + 1
	switch {
	case lo >= 0 && hi < nc:
		return lo, 0.5, hi, 0.5
	case lo >= 0:
		return lo, 1, 0, 0
	default:
		return hi, 1, 0, 0
	}
}

// prolongAdd adds the bilinear interpolation of the coarse correction into
// the fine solution. Fine rows are written independently, so the sweep
// splits by rows when the fine grid is large.
func prolongAdd(coarse, fine *mgLevel) {
	n := fine.n
	if parallelOK(n * n) {
		parForBlocks(n, func(lo, hi int) { prolongAddRows(coarse, fine, lo, hi) })
	} else {
		prolongAddRows(coarse, fine, 0, n)
	}
}

func prolongAddRows(coarse, fine *mgLevel, frLo, frHi int) {
	n, nc, off := fine.n, coarse.n, fine.off
	xc := coarse.x
	for fr := frLo; fr < frHi; fr++ {
		r0, wr0, r1, wr1 := axisWeights(fr, off, nc)
		base := fr * n
		for fc := 0; fc < n; fc++ {
			c0, wc0, c1, wc1 := axisWeights(fc, off, nc)
			v := wr0 * wc0 * xc[r0*nc+c0]
			if wc1 != 0 {
				v += wr0 * wc1 * xc[r0*nc+c1]
			}
			if wr1 != 0 {
				v += wr1 * wc0 * xc[r1*nc+c0]
				if wc1 != 0 {
					v += wr1 * wc1 * xc[r1*nc+c1]
				}
			}
			fine.x[base+fc] += v
		}
	}
}

// factorCoarsest builds and Cholesky-factors the coarsest pinned system
// (unit conductance, eliminated layout) once at construction.
func (mg *MeshMG) factorCoarsest() error {
	lev := mg.levels[len(mg.levels)-1]
	n, pin := lev.n, lev.pin
	m := n*n - 1
	full := func(j int) int { // eliminated index → full-grid index
		if j >= pin {
			return j + 1
		}
		return j
	}
	elim := make([]int, n*n) // full-grid index → eliminated index (−1 at pin)
	for i := range elim {
		switch {
		case i == pin:
			elim[i] = -1
		case i > pin:
			elim[i] = i - 1
		default:
			elim[i] = i
		}
	}
	a := make([]float64, m*m)
	for j := 0; j < m; j++ {
		i := full(j)
		r, c := i/n, i%n
		deg := 0.0
		link := func(nb int) {
			deg++
			if k := elim[nb]; k >= 0 {
				a[j*m+k] = -1
			}
		}
		if r > 0 {
			link(i - n)
		}
		if r < n-1 {
			link(i + n)
		}
		if c > 0 {
			link(i - 1)
		}
		if c < n-1 {
			link(i + 1)
		}
		a[j*m+j] = deg
	}
	// In-place dense Cholesky a = L·Lᵀ (lower triangle).
	for j := 0; j < m; j++ {
		d := a[j*m+j]
		for k := 0; k < j; k++ {
			d -= a[j*m+k] * a[j*m+k]
		}
		if d <= 0 {
			return fmt.Errorf("mathx: coarsest mesh system not SPD (pivot %g at %d): %w", d, j, ErrNotSPD)
		}
		d = math.Sqrt(d)
		a[j*m+j] = d
		inv := 1 / d
		for i := j + 1; i < m; i++ {
			s := a[i*m+j]
			for k := 0; k < j; k++ {
				s -= a[i*m+k] * a[j*m+k]
			}
			a[i*m+j] = s * inv
		}
	}
	mg.chol = a
	mg.cb = make([]float64, m)
	mg.cx = make([]float64, m)
	return nil
}

// coarseSolve solves the coarsest level exactly through the stored
// Cholesky factor.
func (mg *MeshMG) coarseSolve(lev *mgLevel) {
	n, pin := lev.n, lev.pin
	m := n*n - 1
	copy(mg.cb[:pin], lev.b[:pin])
	copy(mg.cb[pin:], lev.b[pin+1:])
	l := mg.chol
	// Forward L·y = b.
	for i := 0; i < m; i++ {
		s := mg.cb[i]
		for k := 0; k < i; k++ {
			s -= l[i*m+k] * mg.cx[k]
		}
		mg.cx[i] = s / l[i*m+i]
	}
	// Back Lᵀ·x = y.
	for i := m - 1; i >= 0; i-- {
		s := mg.cx[i]
		for k := i + 1; k < m; k++ {
			s -= l[k*m+i] * mg.cx[k]
		}
		mg.cx[i] = s / l[i*m+i]
	}
	copy(lev.x[:pin], mg.cx[:pin])
	lev.x[pin] = 0
	copy(lev.x[pin+1:], mg.cx[pin:])
}

// SolveMG solves A·x = b by stationary V-cycle iteration x += M⁻¹(b − A·x)
// — multigrid standalone, no Krylov wrapper. A must be the pinned mesh
// system the MeshMG was built for (same n, pin, and conductance declared
// via SetConductance). Convergence semantics match the other solvers:
// ‖b − A·x‖₂ ≤ tol·‖b‖₂, returning the iteration count.
func (s *SparseMatrix) SolveMG(mg *MeshMG, b []float64, tol float64, maxIter int) ([]float64, int, error) {
	n := s.N
	if len(b) != n {
		return nil, 0, fmt.Errorf("mathx: rhs length %d, want %d", len(b), n)
	}
	if mg.Unknowns() != n {
		return nil, 0, fmt.Errorf("mathx: multigrid built for %d unknowns, system has %d", mg.Unknowns(), n)
	}
	x := make([]float64, n)
	r := make([]float64, n)
	z := make([]float64, n)
	copy(r, b)
	bNorm := math.Sqrt(dot(b, b))
	if bNorm == 0 {
		return x, 0, nil
	}
	rNorm := bNorm
	for iter := 1; iter <= maxIter; iter++ {
		mg.Apply(r, z)
		for i := range x {
			x[i] += z[i]
		}
		s.MulVec(x, z)
		rr := 0.0
		for i := range r {
			r[i] = b[i] - z[i]
			rr += r[i] * r[i]
		}
		rNorm = math.Sqrt(rr)
		if rNorm <= tol*bNorm {
			return x, iter, nil
		}
	}
	return x, maxIter, noConverge("MG", maxIter, rNorm/bNorm)
}

// SolveMGW solves A·x = b by conjugate gradients preconditioned with pre
// (typically a *MeshMG V-cycle), reusing ws for every vector including the
// returned solution (same aliasing contract as SolvePCGW). When pre offers
// a full-multigrid start (MeshMG does unless SetFMG disabled it), the
// iteration begins from that interpolated guess instead of x = 0, which
// typically saves several Krylov iterations for ~4/3 of a V-cycle of extra
// work. This is the production power-grid path: near-constant iteration
// counts as the mesh refines, zero allocations on the warm path.
func (s *SparseMatrix) SolveMGW(ws *Workspace, pre Preconditioner, b []float64, tol float64, maxIter int) ([]float64, int, error) {
	n := s.N
	if len(b) != n {
		return nil, 0, fmt.Errorf("mathx: rhs length %d, want %d", len(b), n)
	}
	ws.grow(n)
	x, r, p, z, ap := ws.x, ws.r, ws.p, ws.z, ws.ap
	copy(r, b)
	bNorm := math.Sqrt(dot(r, r))
	if bNorm == 0 {
		return x, 0, nil
	}
	if fs, ok := pre.(fmgStarter); ok && fs.FMGStart(b, x) {
		// r = b − A·x₀ for the interpolated start. Convergence still tests
		// against ‖b‖, so the tolerance is unchanged — the start only moves
		// the iteration closer to it.
		s.MulVec(x, ap)
		if parallelOK(n) {
			parFor(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					r[i] = b[i] - ap[i]
				}
			})
		} else {
			for i := range r {
				r[i] = b[i] - ap[i]
			}
		}
	}
	pre.Apply(r, z)
	copy(p, z)
	rz := dot(r, z)
	if !(rz > 0) {
		return nil, 0, fmt.Errorf("mathx: MG-PCG: preconditioner not positive definite (rᵀz = %g): %w", rz, ErrNotSPD)
	}
	rNorm := math.Sqrt(dot(r, r))
	for iter := 1; iter <= maxIter; iter++ {
		s.MulVec(p, ap)
		pAp := dot(p, ap)
		if !(pAp > 0) {
			return nil, iter, fmt.Errorf("mathx: MG-PCG: curvature pᵀAp = %g at iteration %d: %w", pAp, iter, ErrNotSPD)
		}
		alpha := rz / pAp
		if parallelOK(n) {
			parFor(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					x[i] += alpha * p[i]
					r[i] -= alpha * ap[i]
				}
			})
		} else {
			for i := range x {
				x[i] += alpha * p[i]
				r[i] -= alpha * ap[i]
			}
		}
		rr := dot(r, r)
		rNorm = math.Sqrt(rr)
		if rNorm <= tol*bNorm {
			return x, iter, nil
		}
		pre.Apply(r, z)
		rzNew := dot(r, z)
		if !(rzNew > 0) {
			return nil, iter, fmt.Errorf("mathx: MG-PCG: preconditioner not positive definite (rᵀz = %g): %w", rzNew, ErrNotSPD)
		}
		beta := rzNew / rz
		if parallelOK(n) {
			parFor(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					p[i] = z[i] + beta*p[i]
				}
			})
		} else {
			for i := range p {
				p[i] = z[i] + beta*p[i]
			}
		}
		rz = rzNew
	}
	return x, maxIter, noConverge("MG-PCG", maxIter, rNorm/bNorm)
}
