package mathx

import (
	"runtime"
	"sync"
)

// parCutoff is the minimum element count before a vector kernel (SpMV row
// blocks, CG axpy sweeps) is split across goroutines. Below it the
// fork/join overhead exceeds the sweep itself. BenchmarkParCutoff
// (parallel_bench_test.go) measures the crossover directly on the axpy
// sweep: fork/join costs ~4–5 µs per invocation, a fused axpy pair streams
// ~1 element/ns serially, so splitting breaks even in the 8k–16k range and
// wins cleanly from 16k up (16384 unknowns ≈ a 127×127 mesh, the first
// production size that splits). Row-sweep kernels gate on the same
// constant via parallelOK(n²) so the whole solver flips to parallel at one
// grid size instead of kernel by kernel.
const parCutoff = 1 << 14

// parallelOK reports whether an n-element kernel is worth splitting. Hot
// callers test it BEFORE building the parFor closure: the closure escapes
// (parFor hands it to goroutines), so constructing it unconditionally would
// cost one heap allocation per call even on the serial path and break the
// zero-alloc contract of the workspace solvers.
func parallelOK(n int) bool {
	return n >= parCutoff && runtime.GOMAXPROCS(0) > 1
}

// parFor runs f over [0, n) — serially when the system is small or the
// process has a single P, otherwise split into one contiguous block per P.
// Block boundaries depend only on n and GOMAXPROCS, and every callee writes
// disjoint elements with no cross-block reduction, so parallel execution is
// bit-identical to serial (reductions — dot products — deliberately stay
// serial for that reason).
func parFor(n int, f func(lo, hi int)) {
	if runtime.GOMAXPROCS(0) <= 1 || n < parCutoff {
		f(0, n)
		return
	}
	parForBlocks(n, f)
}

// parForBlocks splits [0, n) into one contiguous block per P with no size
// gate — serial only when the process has a single P. Callers that iterate
// over UNITS coarser than elements (grid rows in the V-cycle stencils,
// where n is the row count but each unit touches n elements) use it behind
// their own parallelOK(total-work) check; parFor's element-count gate would
// wrongly serialize them. Block boundaries depend only on n and GOMAXPROCS,
// preserving the bit-identity contract.
func parForBlocks(n int, f func(lo, hi int)) {
	p := runtime.GOMAXPROCS(0)
	if p <= 1 {
		f(0, n)
		return
	}
	chunk := (n + p - 1) / p
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
