package mathx

import (
	"runtime"
	"sync"
)

// parCutoff is the minimum element count before a vector kernel (SpMV row
// blocks, CG axpy sweeps) is split across goroutines. Below it the
// fork/join overhead (~µs) exceeds the sweep itself; 16384 unknowns is a
// 127×127 mesh, the first size where splitting measurably wins. Tuned on
// the BenchmarkMeshSolve kernels.
const parCutoff = 1 << 14

// parallelOK reports whether an n-element kernel is worth splitting. Hot
// callers test it BEFORE building the parFor closure: the closure escapes
// (parFor hands it to goroutines), so constructing it unconditionally would
// cost one heap allocation per call even on the serial path and break the
// zero-alloc contract of the workspace solvers.
func parallelOK(n int) bool {
	return n >= parCutoff && runtime.GOMAXPROCS(0) > 1
}

// parFor runs f over [0, n) — serially when the system is small or the
// process has a single P, otherwise split into one contiguous block per P.
// Block boundaries depend only on n and GOMAXPROCS, and every callee writes
// disjoint elements with no cross-block reduction, so parallel execution is
// bit-identical to serial (reductions — dot products — deliberately stay
// serial for that reason).
func parFor(n int, f func(lo, hi int)) {
	p := runtime.GOMAXPROCS(0)
	if p <= 1 || n < parCutoff {
		f(0, n)
		return
	}
	chunk := (n + p - 1) / p
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
