// Package report renders the experiment outputs: fixed-width ASCII tables
// for terminals and CSV for downstream plotting.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	// Notes are printed under the table.
	Notes []string
}

// AddRow appends a row of formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row by applying each format to its value.
func (t *Table) AddRowf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case string:
			cells[i] = x
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		default:
			cells[i] = fmt.Sprint(x)
		}
	}
	t.Rows = append(t.Rows, cells)
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = displayWidth(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && displayWidth(c) > widths[i] {
				widths[i] = displayWidth(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for k := displayWidth(c); k < widths[i]; k++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", maxInt(total-2, 4)))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	b.WriteByte('\n')
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return err.Error()
	}
	return b.String()
}

// displayWidth approximates terminal width (runes, not bytes — the tables
// carry µ, θ, °).
func displayWidth(s string) int { return len([]rune(s)) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Series is a named (x, y) sequence for figure reproduction.
type Series struct {
	Name string
	X, Y []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Figure is a set of series sharing axes.
type Figure struct {
	Title, XLabel, YLabel string
	LogX, LogY            bool
	Series                []*Series
}

// WriteCSV emits the figure as wide-format CSV (x, one column per series).
// Series may have different x grids; rows are emitted per series block when
// grids differ.
func (f *Figure) WriteCSV(w io.Writer) error {
	aligned := true
	for _, s := range f.Series[1:] {
		if len(s.X) != len(f.Series[0].X) {
			aligned = false
			break
		}
		for i := range s.X {
			if s.X[i] != f.Series[0].X[i] {
				aligned = false
				break
			}
		}
	}
	if aligned && len(f.Series) > 0 {
		fmt.Fprintf(w, "%s", csvEscape(f.XLabel))
		for _, s := range f.Series {
			fmt.Fprintf(w, ",%s", csvEscape(s.Name))
		}
		fmt.Fprintln(w)
		for i := range f.Series[0].X {
			fmt.Fprintf(w, "%g", f.Series[0].X[i])
			for _, s := range f.Series {
				fmt.Fprintf(w, ",%g", s.Y[i])
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	// Long format.
	fmt.Fprintln(w, "series,x,y")
	for _, s := range f.Series {
		for i := range s.X {
			fmt.Fprintf(w, "%s,%g,%g\n", csvEscape(s.Name), s.X[i], s.Y[i])
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// RenderASCII draws a crude terminal plot of the figure (for the CLI tools'
// --plot mode): one character column per x bucket, letters per series.
func (f *Figure) RenderASCII(w io.Writer, width, height int) {
	if width < 20 {
		width = 60
	}
	if height < 8 {
		height = 16
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	xmin, xmax, ymin, ymax := f.bounds()
	tx := func(v float64) float64 { return v }
	ty := func(v float64) float64 { return v }
	if f.LogX && xmin > 0 {
		tx = math.Log10
	}
	if f.LogY && ymin > 0 {
		ty = math.Log10
	}
	xmin, xmax, ymin, ymax = tx(xmin), tx(xmax), ty(ymin), ty(ymax)
	if xmax == xmin || ymax == ymin {
		fmt.Fprintln(w, "(degenerate figure)")
		return
	}
	marks := "abcdefghijklmnopqrstuvwxyz"
	for si, s := range f.Series {
		m := marks[si%len(marks)]
		for i := range s.X {
			fx := (tx(s.X[i]) - xmin) / (xmax - xmin)
			fy := (ty(s.Y[i]) - ymin) / (ymax - ymin)
			col := int(fx * float64(width-1))
			row := height - 1 - int(fy*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = m
			}
		}
	}
	fmt.Fprintf(w, "%s\n", f.Title)
	for _, line := range grid {
		fmt.Fprintf(w, "|%s\n", string(line))
	}
	fmt.Fprintf(w, "+%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, " x: %s [%.3g, %.3g]   y: %s [%.3g, %.3g]\n", f.XLabel, xmin, xmax, f.YLabel, ymin, ymax)
	for si, s := range f.Series {
		fmt.Fprintf(w, "   %c = %s\n", marks[si%len(marks)], s.Name)
	}
}

func (f *Figure) bounds() (xmin, xmax, ymin, ymax float64) {
	first := true
	for _, s := range f.Series {
		for i := range s.X {
			if first {
				xmin, xmax, ymin, ymax = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	return
}

// WriteMarkdown renders the table as GitHub-flavored Markdown, for pasting
// experiment results into EXPERIMENTS.md-style documents.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	row := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteString("\n")
	}
	row(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	row(sep)
	for _, r := range t.Rows {
		row(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
