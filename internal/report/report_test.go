package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Headers: []string{"a", "bb"},
		Notes:   []string{"a note"},
	}
	tb.AddRow("1", "2")
	tb.AddRowf("xyz", 3.14159, 42)
	out := tb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "a note") {
		t.Fatalf("missing title or note:\n%s", out)
	}
	if !strings.Contains(out, "3.142") {
		t.Fatalf("AddRowf float formatting missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 5 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	// Header row then separator.
	if !strings.HasPrefix(lines[1], "a") || !strings.HasPrefix(lines[2], "--") {
		t.Fatalf("layout unexpected:\n%s", out)
	}
}

func TestTableUnicodeAlignment(t *testing.T) {
	tb := &Table{Headers: []string{"µA/µm", "x"}}
	tb.AddRow("123", "y")
	out := tb.String()
	lines := strings.Split(out, "\n")
	// The µ characters must count as one column each: the second column
	// starts at the same rune offset in the header and the data row.
	runeIndex := func(s string, c rune) int {
		for i, r := range []rune(s) {
			if r == c {
				return i
			}
		}
		return -1
	}
	if runeIndex(lines[0], 'x') != runeIndex(lines[2], 'y') {
		t.Fatalf("unicode misalignment:\n%s", out)
	}
}

func TestSeriesAdd(t *testing.T) {
	s := &Series{Name: "s"}
	s.Add(1, 2)
	s.Add(3, 4)
	if len(s.X) != 2 || s.Y[1] != 4 {
		t.Fatalf("series add broken: %+v", s)
	}
}

func TestFigureCSVAligned(t *testing.T) {
	f := &Figure{
		XLabel: "x",
		Series: []*Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Name: "b", X: []float64{1, 2}, Y: []float64{30, 40}},
		},
	}
	var b strings.Builder
	if err := f.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "x,a,b\n1,10,30\n2,20,40\n"
	if b.String() != want {
		t.Fatalf("csv = %q, want %q", b.String(), want)
	}
}

func TestFigureCSVLongFormat(t *testing.T) {
	f := &Figure{
		XLabel: "x",
		Series: []*Series{
			{Name: "a,1", X: []float64{1}, Y: []float64{10}},
			{Name: "b", X: []float64{1, 2}, Y: []float64{30, 40}},
		},
	}
	var b strings.Builder
	if err := f.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "series,x,y\n") {
		t.Fatalf("long format expected:\n%s", out)
	}
	if !strings.Contains(out, `"a,1"`) {
		t.Fatalf("csv escaping missing:\n%s", out)
	}
}

func TestRenderASCII(t *testing.T) {
	f := &Figure{
		Title: "plot", XLabel: "x", YLabel: "y",
		Series: []*Series{
			{Name: "up", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}},
			{Name: "down", X: []float64{0, 1, 2}, Y: []float64{2, 1, 0}},
		},
	}
	var b strings.Builder
	f.RenderASCII(&b, 40, 10)
	out := b.String()
	if !strings.Contains(out, "plot") || !strings.Contains(out, "a = up") || !strings.Contains(out, "b = down") {
		t.Fatalf("render missing elements:\n%s", out)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Fatalf("marks missing:\n%s", out)
	}
}

func TestRenderASCIIDegenerate(t *testing.T) {
	f := &Figure{Series: []*Series{{Name: "flat", X: []float64{1}, Y: []float64{1}}}}
	var b strings.Builder
	f.RenderASCII(&b, 40, 10)
	if !strings.Contains(b.String(), "degenerate") {
		t.Fatalf("degenerate figures must be reported:\n%s", b.String())
	}
}

func TestRenderASCIILogAxes(t *testing.T) {
	f := &Figure{
		Title: "log", LogY: true,
		Series: []*Series{{Name: "s", X: []float64{1, 2, 3}, Y: []float64{1, 10, 100}}},
	}
	var b strings.Builder
	f.RenderASCII(&b, 40, 10)
	if b.Len() == 0 {
		t.Fatalf("no output")
	}
}

func TestWriteMarkdown(t *testing.T) {
	tb := &Table{
		Title:   "md",
		Headers: []string{"a", "b"},
		Notes:   []string{"note"},
	}
	tb.AddRow("1", "x|y")
	var b strings.Builder
	if err := tb.WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"**md**", "| a | b |", "| --- | --- |", `x\|y`, "*note*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}
