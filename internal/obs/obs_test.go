package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestPrometheusRendering pins the exposition format: HELP/TYPE headers,
// label escaping, sorted vector children, cumulative histogram buckets with
// _sum/_count.
func TestPrometheusRendering(t *testing.T) {
	r := &Registry{}
	c := r.Counter("req_total", "requests served")
	c.Add(3)
	v := r.CounterVec("art_total", "per-artifact", "artifact")
	v.With("t2").Add(2)
	v.With("c8").Inc()
	g := r.Gauge("in_flight", "in-flight requests")
	g.Set(5)
	g.Dec()
	r.GaugeFunc("entries", "cache entries", func() float64 { return 7 })
	h := r.Histogram("latency_seconds", "request latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP req_total requests served
# TYPE req_total counter
req_total 3
# HELP art_total per-artifact
# TYPE art_total counter
art_total{artifact="c8"} 1
art_total{artifact="t2"} 2
# HELP in_flight in-flight requests
# TYPE in_flight gauge
in_flight 4
# HELP entries cache entries
# TYPE entries gauge
entries 7
# HELP latency_seconds request latency
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 1
latency_seconds_bucket{le="1"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 3.55
latency_seconds_count 3
`
	if got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestLabelEscaping: quotes, backslashes, and newlines in label values must
// not corrupt the exposition.
func TestLabelEscaping(t *testing.T) {
	r := &Registry{}
	v := r.CounterVec("x_total", "x", "k")
	v.With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `x_total{k="a\"b\\c\nd"} 1`) {
		t.Errorf("bad escaping:\n%s", sb.String())
	}
}

// TestDuplicateRegistrationPanics: two families with one name is a
// programming error and must fail loudly.
func TestDuplicateRegistrationPanics(t *testing.T) {
	r := &Registry{}
	r.Counter("dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "second")
}

// TestConcurrentUpdates exercises every instrument from many goroutines
// under -race, and checks the totals are exact (atomics, no lost updates).
func TestConcurrentUpdates(t *testing.T) {
	r := &Registry{}
	c := r.Counter("c_total", "c")
	v := r.CounterVec("v_total", "v", "k")
	g := r.Gauge("g", "g")
	h := r.Histogram("h_seconds", "h", DurationBuckets())
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				v.With([]string{"a", "b"}[w%2]).Inc()
				g.Add(1)
				h.Observe(0.001)
			}
		}(w)
	}
	// Scrape concurrently with the writers to surface races.
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Errorf("counter lost updates: got %g want %d", got, workers*each)
	}
	if got := v.With("a").Value() + v.With("b").Value(); got != workers*each {
		t.Errorf("vec lost updates: got %g want %d", got, workers*each)
	}
	if got := g.Value(); got != workers*each {
		t.Errorf("gauge lost updates: got %g want %d", got, workers*each)
	}
	if got := h.Count(); got != workers*each {
		t.Errorf("histogram lost updates: got %d want %d", got, workers*each)
	}
}
