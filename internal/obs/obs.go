// Package obs is the observability layer of the serving stack: a minimal,
// dependency-free metrics registry exporting the Prometheus text exposition
// format. It exists because the daemon (cmd/nanoreprod) must answer
// /metrics without pulling a client library into a stdlib-only module, and
// because the compute layer wants cheap atomic counters it can bump on hot
// paths (cache hits, solver runs) without knowing anything about HTTP.
//
// The registry supports the four instrument shapes the serving layer needs:
// monotonic counters (plain and single-label vectors), gauges (set/add and
// callback-backed), and fixed-bucket histograms. All instruments are safe
// for concurrent use and update via atomics; WritePrometheus takes a
// point-in-time snapshot with deterministic ordering (registration order,
// label-sorted children) so scrapes and golden tests are stable.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a set of metric families and renders them in the
// Prometheus text format. The zero value is ready to use.
type Registry struct {
	mu   sync.Mutex
	fams []*family // guarded by mu
}

// family is one named metric with HELP/TYPE headers and a snapshot
// function producing its samples.
type family struct {
	name, help, typ string
	collect         func() []sample
}

// sample is one exposition line: an optional pre-rendered label block
// (`{k="v"}`) and the value, plus an optional name suffix (_bucket, _sum,
// _count) for histograms.
type sample struct {
	suffix string
	labels string
	value  float64
}

func (r *Registry) register(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, existing := range r.fams {
		if existing.name == f.name {
			panic("obs: duplicate metric " + f.name)
		}
	}
	r.fams = append(r.fams, f)
}

// WritePrometheus renders every registered family in the text exposition
// format (version 0.0.4): HELP and TYPE headers followed by one line per
// sample.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.collect() {
			if _, err := fmt.Fprintf(w, "%s%s%s %s\n", f.name, s.suffix, s.labels, formatValue(s.value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatValue renders a float the way Prometheus expects: shortest exact
// decimal, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// atomicFloat is a float64 updated via CAS on its bit pattern, so counters
// can accumulate fractional quantities (seconds) locklessly.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value.
type Counter struct{ v atomicFloat }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds v, which must be non-negative (not enforced; counters are
// trusted internal instruments).
func (c *Counter) Add(v float64) { c.v.Add(v) }

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.Load() }

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, typ: "counter", collect: func() []sample {
		return []sample{{value: c.Value()}}
	}})
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for counters owned by other packages (e.g. the compute
// cache's hit/miss totals).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: "counter", collect: func() []sample {
		return []sample{{value: fn()}}
	}})
}

// CounterVec is a family of counters distinguished by one label.
type CounterVec struct {
	key      string
	mu       sync.Mutex
	children map[string]*Counter // guarded by mu
}

// With returns (creating on first use) the child counter for the label
// value.
func (v *CounterVec) With(labelValue string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[labelValue]
	if !ok {
		c = &Counter{}
		v.children[labelValue] = c
	}
	return c
}

func (v *CounterVec) snapshot() []sample {
	v.mu.Lock()
	defer v.mu.Unlock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]sample, 0, len(keys))
	for _, k := range keys {
		out = append(out, sample{
			labels: "{" + v.key + `="` + escapeLabel(k) + `"}`,
			value:  v.children[k].Value(),
		})
	}
	return out
}

// CounterVec registers and returns a new single-label counter family.
func (r *Registry) CounterVec(name, help, labelKey string) *CounterVec {
	v := &CounterVec{key: labelKey, children: map[string]*Counter{}}
	r.register(&family{name: name, help: help, typ: "counter", collect: v.snapshot})
	return v
}

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (may be negative).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Inc adds 1; Dec subtracts 1.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, typ: "gauge", collect: func() []sample {
		return []sample{{value: g.Value()}}
	}})
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: "gauge", collect: func() []sample {
		return []sample{{value: fn()}}
	}})
}

// Histogram counts observations into fixed cumulative buckets, Prometheus
// style: each bucket counts observations ≤ its bound, an implicit +Inf
// bucket counts everything, and _sum/_count accompany the buckets.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // one per bound; +Inf is total count
	count  atomic.Uint64
	sum    atomicFloat
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
		}
	}
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

func (h *Histogram) snapshot() []sample {
	out := make([]sample, 0, len(h.bounds)+3)
	for i, b := range h.bounds {
		out = append(out, sample{
			suffix: "_bucket",
			labels: fmt.Sprintf("{le=%q}", formatValue(b)),
			value:  float64(h.counts[i].Load()),
		})
	}
	out = append(out,
		sample{suffix: "_bucket", labels: `{le="+Inf"}`, value: float64(h.count.Load())},
		sample{suffix: "_sum", value: h.sum.Load()},
		sample{suffix: "_count", value: float64(h.count.Load())},
	)
	return out
}

// Histogram registers and returns a new histogram with the given strictly
// increasing bucket bounds (the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing: " + name)
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...), counts: make([]atomic.Uint64, len(bounds))}
	r.register(&family{name: name, help: help, typ: "histogram", collect: h.snapshot})
	return h
}

// DurationBuckets is a latency bucket ladder suited to this service: the
// warm-cache path answers in microseconds, a default c8 mesh solve in
// milliseconds, and a refined 255-node mesh in tens of milliseconds.
func DurationBuckets() []float64 {
	return []float64{1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}
