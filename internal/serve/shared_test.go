package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nanometer/internal/repro"
	"nanometer/internal/result"
	"nanometer/internal/store"
)

// TestSingleflightCollapse: K identical concurrent requests run exactly
// one compute; the other K−1 collapse onto the leader's flight without
// acquiring gate weight, and every request still gets 200.
func TestSingleflightCollapse(t *testing.T) {
	repro.ResetCache()
	defer repro.ResetCache()
	const k = 16
	var computes atomic.Int64
	blocker := make(chan struct{})
	arts := []repro.Artifact{counting("collapse", &computes, 0, blocker)}
	s := New(Config{Artifacts: arts, GateUnits: 100, Timeout: 30 * time.Second})
	h := s.Handler()

	var wg sync.WaitGroup
	codes := make([]int, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := get(t, h, "/api/v1/artifacts/collapse", nil)
			codes[i] = rec.Code
		}(i)
	}
	// One leader computes; the 15 followers register as shared before any
	// result exists.
	waitFor(t, func() bool { return computes.Load() == 1 })
	waitFor(t, func() bool { return s.met.singleflightShared.Value() == k-1 })
	// Only the leader holds gate weight: 16 in-flight requests, 1 unit.
	if got := s.gate.InFlight(); got != 1 {
		t.Errorf("gate in-flight = %d units during a collapsed burst, want 1 (the leader)", got)
	}
	close(blocker)
	wg.Wait()
	for i, c := range codes {
		if c != 200 {
			t.Errorf("request %d got %d", i, c)
		}
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("model ran %d times for %d identical requests, want 1", n, k)
	}
}

// TestSingleflightHeavyGateWeight: duplicates of a heavy request
// (mesh-n=255 ≈ 39 units) must not multiply its admission cost — the
// burst holds one leader's weight, not K×39.
func TestSingleflightHeavyGateWeight(t *testing.T) {
	repro.ResetCache()
	defer repro.ResetCache()
	var computes atomic.Int64
	blocker := make(chan struct{})
	arts := []repro.Artifact{counting("heavy", &computes, 0, blocker)}
	s := New(Config{Artifacts: arts, GateUnits: 1000, Timeout: 30 * time.Second})
	h := s.Handler()

	const k = 4
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			get(t, h, "/api/v1/artifacts/heavy?mesh-n=255", nil)
		}()
	}
	waitFor(t, func() bool { return computes.Load() == 1 })
	waitFor(t, func() bool { return s.met.singleflightShared.Value() == k-1 })
	want := weight(255)
	if got := s.gate.InFlight(); got != want {
		t.Errorf("gate in-flight = %d units for %d duplicate heavy requests, want %d (one leader)", got, k, want)
	}
	close(blocker)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("model ran %d times, want 1", n)
	}
}

// TestSingleflightErrorPropagates: a failing compute answers 500 to the
// leader and every collapsed follower alike — no follower hangs waiting
// for a result that will never come.
func TestSingleflightErrorPropagates(t *testing.T) {
	repro.ResetCache()
	defer repro.ResetCache()
	arts := []repro.Artifact{
		{ID: "failing", Title: "failing", Compute: func(repro.Options) (*result.Result, error) {
			return nil, errors.New("solver exploded")
		}},
	}
	h := New(Config{Artifacts: arts, GateUnits: 100, Timeout: 30 * time.Second}).Handler()
	const k = 5
	var wg sync.WaitGroup
	codes := make([]int, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = get(t, h, "/api/v1/artifacts/failing", nil).Code
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != 500 {
			t.Errorf("request %d got %d, want 500", i, c)
		}
	}
}

// TestErrorResponsesCarryNoValidators: 500 and 504 responses must not ship
// ETag or Cache-Control — a client revalidating a cached error body into a
// 304 would pin the failure forever (the bug this PR fixes).
func TestErrorResponsesCarryNoValidators(t *testing.T) {
	repro.ResetCache()
	defer repro.ResetCache()
	var computes atomic.Int64
	arts := []repro.Artifact{
		{ID: "alwaysfails", Title: "always fails", Compute: func(repro.Options) (*result.Result, error) {
			return nil, errors.New("boom")
		}},
		counting("tooSlow", &computes, 200*time.Millisecond, nil),
	}
	h := New(Config{Artifacts: arts, Timeout: 40 * time.Millisecond}).Handler()
	for _, tc := range []struct {
		target string
		want   int
	}{
		{"/api/v1/artifacts/alwaysfails", 500},
		{"/api/v1/artifacts/tooSlow", 504},
		{"/api/v1/artifacts/nope", 404},
		{"/api/v1/artifacts/alwaysfails?format=xml", 400},
	} {
		rec := get(t, h, tc.target, nil)
		if rec.Code != tc.want {
			t.Fatalf("%s = %d, want %d", tc.target, rec.Code, tc.want)
		}
		if et := rec.Header().Get("ETag"); et != "" {
			t.Errorf("%s (%d) carries ETag %q", tc.target, rec.Code, et)
		}
		if cc := rec.Header().Get("Cache-Control"); cc != "" {
			t.Errorf("%s (%d) carries Cache-Control %q", tc.target, rec.Code, cc)
		}
	}
}

// TestRetryAfterTimeoutHitsStore: a request that 504s still completes its
// compute into the shared store, so a cold replica (simulated by flushing
// the in-memory cache, as a restart would) serves the retry from the store
// without running a solver.
func TestRetryAfterTimeoutHitsStore(t *testing.T) {
	repro.ResetCache()
	defer repro.ResetCache()
	defer repro.SetResultStore(nil)
	st, err := store.Open(store.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	var computes atomic.Int64
	arts := []repro.Artifact{counting("slowstore", &computes, 150*time.Millisecond, nil)}
	h := New(Config{Artifacts: arts, Store: st, Timeout: 30 * time.Millisecond}).Handler()

	if rec := get(t, h, "/api/v1/artifacts/slowstore", nil); rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("slow compute = %d, want 504", rec.Code)
	}
	// The abandoned compute lands in memory AND on disk.
	waitFor(t, func() bool { return st.Stats().Puts == 1 })
	// Restart: memory gone, store persists.
	repro.ResetCache()
	rec := get(t, h, "/api/v1/artifacts/slowstore", nil)
	if rec.Code != 200 {
		t.Fatalf("retry on warm store = %d, want 200", rec.Code)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("model ran %d times, want 1 (retry must hit the store)", n)
	}
	if st.Stats().Hits == 0 {
		t.Fatal("retry did not read the store")
	}
}

// TestPeerFallThroughWhenPeerDown: a dead peer never fails a request — the
// fetch times out / refuses, the fall-through counter moves, and the local
// solve answers 200.
func TestPeerFallThroughWhenPeerDown(t *testing.T) {
	repro.ResetCache()
	defer repro.ResetCache()
	var computes atomic.Int64
	arts := []repro.Artifact{counting("peerless", &computes, 0, nil)}
	// 127.0.0.1:1 is essentially never listening; self is not in the member
	// list, so every key is remote-owned and the peer path always fires.
	s := New(Config{
		Artifacts:   arts,
		Peers:       []string{"127.0.0.1:1"},
		Self:        "self:0",
		PeerTimeout: 200 * time.Millisecond,
	})
	rec := get(t, s.Handler(), "/api/v1/artifacts/peerless", nil)
	if rec.Code != 200 {
		t.Fatalf("request with dead peer = %d, want 200", rec.Code)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("local solve ran %d times, want 1", n)
	}
	if got := s.met.peerFallthrough.Value(); got != 1 {
		t.Errorf("peer fall-through count = %v, want 1", got)
	}
	if got := s.met.peerHits.Value(); got != 0 {
		t.Errorf("peer hit count = %v, want 0", got)
	}
}

// TestPeerFetchServesRemoteResult: a key owned by a live peer is answered
// from that peer — the local solver never runs (it would fail loudly here).
func TestPeerFetchServesRemoteResult(t *testing.T) {
	repro.ResetCache()
	defer repro.ResetCache()
	remote := &result.Result{ID: "remoteonly", Title: "remote only"}
	remote.AddTable(&result.Table{Title: "from-peer", Headers: []string{"h"}, Rows: [][]string{{"v"}}})
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/api/v1/internal/result/remoteonly" {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(remote)
	}))
	defer peer.Close()
	peerAddr := strings.TrimPrefix(peer.URL, "http://")

	arts := []repro.Artifact{{ID: "remoteonly", Title: "remote only", Compute: func(repro.Options) (*result.Result, error) {
		return nil, errors.New("must not solve locally")
	}}}
	s := New(Config{Artifacts: arts, Peers: []string{peerAddr}, Self: "self:0"})
	rec := get(t, s.Handler(), "/api/v1/artifacts/remoteonly", nil)
	if rec.Code != 200 {
		t.Fatalf("peer-owned request = %d, want 200 (body: %s)", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "from-peer") {
		t.Fatal("response body is not the peer's result")
	}
	if got := s.met.peerHits.Value(); got != 1 {
		t.Errorf("peer hit count = %v, want 1", got)
	}
}

// TestPeerRejectsWrongResult: a peer answering with the wrong artifact's
// result (or garbage) is a fall-through, not a served lie.
func TestPeerRejectsWrongResult(t *testing.T) {
	repro.ResetCache()
	defer repro.ResetCache()
	wrong := &result.Result{ID: "somethingelse", Title: "wrong"}
	wrong.AddTable(&result.Table{Title: "x", Headers: []string{"h"}, Rows: [][]string{{"v"}}})
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(wrong)
	}))
	defer peer.Close()

	var computes atomic.Int64
	arts := []repro.Artifact{counting("verified", &computes, 0, nil)}
	s := New(Config{Artifacts: arts, Peers: []string{strings.TrimPrefix(peer.URL, "http://")}, Self: "self:0"})
	rec := get(t, s.Handler(), "/api/v1/artifacts/verified", nil)
	if rec.Code != 200 {
		t.Fatalf("request = %d, want 200", rec.Code)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("local solve ran %d times, want 1 (bad peer result must fall through)", n)
	}
	if got := s.met.peerFallthrough.Value(); got != 1 {
		t.Errorf("fall-through count = %v, want 1", got)
	}
}

// TestPeerRejectsSkewedResult: a peer answering with otherwise-valid JSON
// from a newer schema (an unknown field) or with trailing bytes is a
// fall-through, not a silent partial decode — peer exchange is strict in
// both directions so version skew across replicas surfaces loudly.
func TestPeerRejectsSkewedResult(t *testing.T) {
	for name, mangle := range map[string]func([]byte) []byte{
		"unknown-field": func(b []byte) []byte {
			return append([]byte(`{"future_field":1,`), b[1:]...)
		},
		"trailing-data": func(b []byte) []byte {
			return append(b, []byte("{}")...)
		},
	} {
		t.Run(name, func(t *testing.T) {
			repro.ResetCache()
			defer repro.ResetCache()
			var computes atomic.Int64
			arts := []repro.Artifact{counting("skewed", &computes, 0, nil)}
			good := &result.Result{ID: "skewed", Title: "count 1"}
			good.AddTable(&result.Table{Title: "x", Headers: []string{"h"}, Rows: [][]string{{"v"}}})
			body, err := json.Marshal(good)
			if err != nil {
				t.Fatal(err)
			}
			peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
				w.Write(mangle(body))
			}))
			defer peer.Close()

			s := New(Config{Artifacts: arts, Peers: []string{strings.TrimPrefix(peer.URL, "http://")}, Self: "self:0"})
			rec := get(t, s.Handler(), "/api/v1/artifacts/skewed", nil)
			if rec.Code != 200 {
				t.Fatalf("request = %d, want 200", rec.Code)
			}
			if n := computes.Load(); n != 1 {
				t.Fatalf("local solve ran %d times, want 1 (skewed peer result must fall through)", n)
			}
			if got := s.met.peerFallthrough.Value(); got != 1 {
				t.Errorf("fall-through count = %v, want 1", got)
			}
		})
	}
}

// TestInternalResultEndpoint: the replica-to-replica endpoint serves bare
// typed-result JSON that a sibling can validate, and rejects bad mesh-n.
func TestInternalResultEndpoint(t *testing.T) {
	repro.ResetCache()
	defer repro.ResetCache()
	h := New(Config{}).Handler()
	rec := get(t, h, "/api/v1/internal/result/t2", nil)
	if rec.Code != 200 {
		t.Fatalf("internal result = %d", rec.Code)
	}
	var res result.Result
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.ID != "t2" {
		t.Fatalf("internal result ID = %q", res.ID)
	}
	if rec := get(t, h, "/api/v1/internal/result/t2?mesh-n=4", nil); rec.Code != 400 {
		t.Fatalf("bad mesh-n = %d, want 400", rec.Code)
	}
	if rec := get(t, h, "/api/v1/internal/result/zz", nil); rec.Code != 404 {
		t.Fatalf("unknown artifact = %d, want 404", rec.Code)
	}
}

// TestRendezvousOwnerStability: the owner assignment is deterministic,
// spread across members, and only the removed member's keys remap when the
// member list shrinks.
func TestRendezvousOwnerStability(t *testing.T) {
	members := []string{"a:1", "b:1", "c:1"}
	p3 := newPeerSet("a:1", members, 0)
	owners := make(map[string]string)
	byOwner := make(map[string]int)
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("art%02d\x00cafe", i)
		addr, _ := p3.owner(key)
		owners[key] = addr
		byOwner[addr]++
	}
	if len(byOwner) != 3 {
		t.Fatalf("64 keys landed on %d of 3 members", len(byOwner))
	}
	// Drop c: keys owned by a or b must keep their owner.
	p2 := newPeerSet("a:1", members[:2], 0)
	for key, was := range owners {
		now, _ := p2.owner(key)
		if was != "c:1" && now != was {
			t.Fatalf("key %q remapped %s → %s though its owner survived", key, was, now)
		}
		if was == "c:1" && now != "a:1" && now != "b:1" {
			t.Fatalf("orphaned key %q mapped to %q", key, now)
		}
	}
	// Self-owned keys are not remote.
	for key, was := range owners {
		if _, remote := p3.owner(key); remote == (was == "a:1") {
			t.Fatalf("key %q owned by %s, remote=%v", key, was, remote)
		}
	}
}
