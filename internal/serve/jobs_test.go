package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nanometer/internal/jobs"
	"nanometer/internal/repro"
	"nanometer/internal/result"
	"nanometer/internal/store"
)

const shortTraceDoc = `{"name":"e2e","dt_seconds":0.01,"generator":{"kind":"workload","intervals":3000}}`

// longTraceDoc is big enough to run for seconds: the cancel tests need a
// job that is demonstrably mid-flight when the DELETE lands.
const longTraceDoc = `{"name":"e2e-long","dt_seconds":0.01,"generator":{"kind":"workload","intervals":80000000}}`

func postTrace(t *testing.T, base, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeSnapshot(t *testing.T, r io.Reader) jobs.Snapshot {
	t.Helper()
	var snap jobs.Snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		t.Fatalf("decoding job snapshot: %v", err)
	}
	return snap
}

func awaitJobState(t *testing.T, base, id string, want jobs.State) jobs.Snapshot {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/api/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		snap := decodeSnapshot(t, resp.Body)
		resp.Body.Close()
		if snap.State == want {
			return snap
		}
		if snap.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s is %s (error %q), want %s", id, snap.State, snap.Error, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJobsE2E drives the full lifecycle over real HTTP: submit, poll to
// done, fetch the typed result, and replay the finished chunk stream.
func TestJobsE2E(t *testing.T) {
	srv := New(Config{JobWorkers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postTrace(t, ts.URL, shortTraceDoc)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	snap := decodeSnapshot(t, resp.Body)
	resp.Body.Close()
	if loc != "/api/v1/jobs/"+snap.ID {
		t.Fatalf("Location %q vs job %q", loc, snap.ID)
	}

	// Result before done must be a 409, never a partial body.
	if early, err := http.Get(ts.URL + loc + "/result"); err != nil {
		t.Fatal(err)
	} else if early.Body.Close(); early.StatusCode != http.StatusConflict && early.StatusCode != http.StatusOK {
		t.Fatalf("early result fetch = %d", early.StatusCode)
	}

	awaitJobState(t, ts.URL, snap.ID, jobs.StateDone)

	resp, err := http.Get(ts.URL + loc + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result = %d", resp.StatusCode)
	}
	var res result.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	resp.Body.Close()
	if res.ID != "trace:e2e" {
		t.Fatalf("result ID %q", res.ID)
	}

	// The finished stream replays every chunk, then the terminal snapshot.
	resp, err = http.Get(ts.URL + loc + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var lines []json.RawMessage
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines = append(lines, json.RawMessage(strings.Clone(sc.Text())))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) < 2 {
		t.Fatalf("stream produced %d lines, want chunks + snapshot", len(lines))
	}
	final := decodeSnapshot(t, strings.NewReader(string(lines[len(lines)-1])))
	if final.State != jobs.StateDone {
		t.Fatalf("final stream line state %s", final.State)
	}
	var prev struct {
		Done int `json:"done"`
	}
	for _, ln := range lines[:len(lines)-1] {
		var p struct {
			Done int `json:"done"`
		}
		if err := json.Unmarshal(ln, &p); err != nil || p.Done <= prev.Done {
			t.Fatalf("chunk line %s not monotone (prev %d): %v", ln, prev.Done, err)
		}
		prev = p
	}

	// The index lists the job.
	resp, err = http.Get(ts.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var index struct {
		Jobs []jobs.Snapshot `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&index); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(index.Jobs) != 1 || index.Jobs[0].ID != snap.ID {
		t.Fatalf("index %+v", index.Jobs)
	}
}

// TestJobsCancelReleasesGate pins the acceptance contract: a running
// job's DELETE cancels it within one control interval and the job's gate
// units return to the pool.
func TestJobsCancelReleasesGate(t *testing.T) {
	srv := New(Config{JobWorkers: 1, GateUnits: 64})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postTrace(t, ts.URL, longTraceDoc)
	snap := decodeSnapshot(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	awaitJobState(t, ts.URL, snap.ID, jobs.StateRunning)
	if got := srv.gate.InFlight(); got < 17 {
		t.Fatalf("running 80M-interval job holds %d gate units, want its weight (17)", got)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/jobs/"+snap.ID, nil)
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	settled := decodeSnapshot(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || settled.State != jobs.StateCanceled {
		t.Fatalf("DELETE = %d, state %s", resp.StatusCode, settled.State)
	}
	if waited := time.Since(start); waited > cancelGrace {
		t.Fatalf("DELETE took %v, cancellation did not land within a control interval", waited)
	}
	if settled.Progress == nil || settled.Progress.Done >= settled.Progress.Total {
		t.Fatalf("canceled job progress %+v, want partial", settled.Progress)
	}
	// The release fires just after the terminal state publishes; poll
	// briefly rather than racing it.
	deadline := time.Now().Add(2 * time.Second)
	for srv.gate.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("gate still holds %d units after cancel", srv.gate.InFlight())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Result of a canceled job is 410.
	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + snap.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("canceled result fetch = %d, want 410", resp.StatusCode)
	}

	// DELETE on a terminal job is an idempotent no-op.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/jobs/"+snap.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	again := decodeSnapshot(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || again.State != jobs.StateCanceled {
		t.Fatalf("second DELETE = %d, state %s", resp.StatusCode, again.State)
	}
}

// TestJobsStreamFollowsThenCancel streams a running job, sees at least one
// partial chunk, cancels mid-stream, and reads the canceled snapshot as
// the stream's final line.
func TestJobsStreamFollowsThenCancel(t *testing.T) {
	srv := New(Config{JobWorkers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postTrace(t, ts.URL, longTraceDoc)
	snap := decodeSnapshot(t, resp.Body)
	resp.Body.Close()

	stream, err := http.Get(ts.URL + "/api/v1/jobs/" + snap.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	sc := bufio.NewScanner(stream.Body)
	if !sc.Scan() {
		t.Fatalf("no first chunk: %v", sc.Err())
	}
	var first struct {
		Done  int `json:"done"`
		Total int `json:"total"`
	}
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("first stream line %q: %v", sc.Text(), err)
	}
	if first.Done <= 0 || first.Done >= first.Total {
		t.Fatalf("first chunk %d/%d, want partial", first.Done, first.Total)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/jobs/"+snap.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()

	var last string
	for sc.Scan() {
		last = sc.Text()
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	final := decodeSnapshot(t, strings.NewReader(last))
	if final.State != jobs.StateCanceled {
		t.Fatalf("stream final line state %s, want canceled (line %q)", final.State, last)
	}
}

// TestJobsResubmitHitsStore pins the content-addressed path: with a result
// store installed, resubmitting an identical trace answers 200 from the
// store without re-simulating, and the cached-jobs counter moves.
func TestJobsResubmitHitsStore(t *testing.T) {
	repro.ResetCache()
	defer repro.ResetCache()
	defer repro.SetResultStore(nil)
	st, err := store.Open(store.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{JobWorkers: 1, Store: st})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postTrace(t, ts.URL, shortTraceDoc)
	snap := decodeSnapshot(t, resp.Body)
	resp.Body.Close()
	awaitJobState(t, ts.URL, snap.ID, jobs.StateDone)

	resp = postTrace(t, ts.URL, shortTraceDoc)
	cached := decodeSnapshot(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit = %d, want 200 from store", resp.StatusCode)
	}
	if cached.State != jobs.StateDone || !cached.Cached {
		t.Fatalf("resubmit snapshot %+v, want done-from-store", cached)
	}
	if cached.Key != snap.Key {
		t.Fatalf("content key changed across resubmit: %s vs %s", cached.Key, snap.Key)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"nanoreprod_jobs_cached_total 1",
		"nanoreprod_jobs_submitted_total 2",
		`nanoreprod_jobs_finished_total{state="done"} 2`,
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestJobsSubmitErrors covers the submit-side error contract, including
// the satellite 413-vs-400 split shared with the scenarios endpoint.
func TestJobsSubmitErrors(t *testing.T) {
	srv := New(Config{JobWorkers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"invalid JSON", "{nope", http.StatusBadRequest},
		{"schema violation", `{"name":"x","dt_seconds":0.01}`, http.StatusBadRequest},
		{"oversized body", `{"pad":"` + strings.Repeat("x", 1<<20) + `"}`, http.StatusRequestEntityTooLarge},
	} {
		resp := postTrace(t, ts.URL, tc.body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: submit = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	if resp, err := http.Get(ts.URL + "/api/v1/jobs/nosuch"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", resp.StatusCode)
	}
}

// TestJobsQueueFull pins the backpressure contract: past MaxQueued the
// endpoint answers 429 with a Retry-After hint.
func TestJobsQueueFull(t *testing.T) {
	srv := New(Config{JobWorkers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var ids []string
	full := false
	for i := 0; i < 40; i++ {
		body := fmt.Sprintf(`{"name":"fill%d","dt_seconds":0.01,"generator":{"kind":"workload","intervals":80000000}}`, i)
		resp := postTrace(t, ts.URL, body)
		switch resp.StatusCode {
		case http.StatusAccepted:
			ids = append(ids, decodeSnapshot(t, resp.Body).ID)
		case http.StatusTooManyRequests:
			full = true
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				t.Error("429 without Retry-After")
			}
		default:
			t.Fatalf("submit %d = %d", i, resp.StatusCode)
		}
		resp.Body.Close()
		if full {
			break
		}
	}
	if !full {
		t.Fatal("queue never filled")
	}
	for _, id := range ids {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/jobs/"+id, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}
}
