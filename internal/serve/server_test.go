package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nanometer/internal/render"
	"nanometer/internal/repro"
	"nanometer/internal/result"
	"nanometer/internal/runner"
)

func get(t *testing.T, h http.Handler, target string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", target, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestHandlerStatuses is the table-driven boundary check: unknown artifact,
// bad format, bad mesh-n, wrong method, misapplied encode flags.
func TestHandlerStatuses(t *testing.T) {
	h := New(Config{}).Handler()
	for _, tc := range []struct {
		method, target string
		want           int
	}{
		{"GET", "/healthz", 200},
		{"GET", "/api/v1/artifacts", 200},
		{"GET", "/api/v1/artifacts/t2", 200},
		{"GET", "/api/v1/artifacts/t2?format=json", 200},
		{"GET", "/api/v1/artifacts/t2?format=csv", 200},
		{"GET", "/api/v1/artifacts/t2?format=text&verbose=1&plot=1", 200},
		{"GET", "/api/v1/artifacts/zz", 404},
		{"GET", "/api/v1/artifacts/T2", 404}, // ids are exact, the index is the contract
		{"GET", "/api/v1/artifacts/t2?format=xml", 400},
		{"GET", "/api/v1/artifacts/t2?mesh-n=-5", 400},
		{"GET", "/api/v1/artifacts/t2?mesh-n=1", 400},
		{"GET", "/api/v1/artifacts/t2?mesh-n=2", 400},
		{"GET", "/api/v1/artifacts/t2?mesh-n=1048576", 400},
		{"GET", "/api/v1/artifacts/t2?mesh-n=abc", 400},
		{"GET", "/api/v1/artifacts/t2?format=json&verbose=1", 400},
		{"GET", "/api/v1/report?format=xml", 400},
		{"POST", "/api/v1/artifacts/t2", 405},
		{"GET", "/api/v1/cache/flush", 405},
		{"GET", "/metrics", 200},
		{"GET", "/nope", 404},
	} {
		req := httptest.NewRequest(tc.method, tc.target, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != tc.want {
			t.Errorf("%s %s = %d, want %d (body: %s)", tc.method, tc.target, rec.Code, tc.want, rec.Body.String())
		}
	}
}

// TestETagRoundTrip: a 200 carries a strong ETag; replaying it in
// If-None-Match yields 304 with no body and no recompute; different
// options or formats change the ETag.
func TestETagRoundTrip(t *testing.T) {
	h := New(Config{}).Handler()
	first := get(t, h, "/api/v1/artifacts/t2", nil)
	if first.Code != 200 {
		t.Fatalf("GET = %d", first.Code)
	}
	etag := first.Header().Get("ETag")
	if etag == "" || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("missing/weak ETag %q", etag)
	}
	second := get(t, h, "/api/v1/artifacts/t2", map[string]string{"If-None-Match": etag})
	if second.Code != 304 {
		t.Fatalf("conditional GET = %d, want 304", second.Code)
	}
	if second.Body.Len() != 0 {
		t.Fatalf("304 must have no body, got %d bytes", second.Body.Len())
	}
	if got := second.Header().Get("ETag"); got != etag {
		t.Fatalf("304 ETag %q != %q", got, etag)
	}
	// A multi-candidate header and the wildcard both match.
	if rec := get(t, h, "/api/v1/artifacts/t2", map[string]string{"If-None-Match": `"zzz", ` + etag}); rec.Code != 304 {
		t.Fatalf("multi-candidate If-None-Match = %d, want 304", rec.Code)
	}
	// Different representation or compute options ⇒ different ETag ⇒ 200.
	for _, target := range []string{
		"/api/v1/artifacts/t2?format=csv",
		"/api/v1/artifacts/t2?mesh-n=43",
		"/api/v1/artifacts/t2?verbose=1",
	} {
		rec := get(t, h, target, map[string]string{"If-None-Match": etag})
		if rec.Code != 200 {
			t.Errorf("%s with stale ETag = %d, want 200", target, rec.Code)
		}
		if rec.Header().Get("ETag") == etag {
			t.Errorf("%s reused the ETag of the default representation", target)
		}
	}
}

// TestCacheHitOnRepeat: the second GET of one artifact is served from the
// compute cache — the model stack runs once (the acceptance criterion the
// CI smoke also checks via /metrics).
func TestCacheHitOnRepeat(t *testing.T) {
	repro.ResetCache()
	var computes atomic.Int64
	arts := []repro.Artifact{counting("hit1", &computes, 0, nil)}
	h := New(Config{Artifacts: arts}).Handler()
	for i := 0; i < 3; i++ {
		if rec := get(t, h, "/api/v1/artifacts/hit1", nil); rec.Code != 200 {
			t.Fatalf("GET #%d = %d", i, rec.Code)
		}
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("3 requests ran the model stack %d times, want 1", n)
	}
	repro.ResetCache()
}

// TestServerMatchesCLI: for every artifact and every format, the HTTP body
// is byte-identical to what cmd/nanorepro emits for the same options (both
// funnel through repro.ComputeCached and internal/render, and this test
// pins that they stay funneled).
func TestServerMatchesCLI(t *testing.T) {
	h := New(Config{}).Handler()
	pool := runner.Pool{Workers: 1}
	for _, a := range repro.Artifacts() {
		sel := []repro.Artifact{a}
		for _, format := range []string{"text", "json", "csv"} {
			var want bytes.Buffer
			var err error
			switch format {
			case "text":
				_, err = pool.RunTo(&want, repro.Jobs(sel, repro.Options{}))
			case "csv":
				_, err = pool.RunTo(&want, repro.EncodeJobs(sel, repro.Options{}, render.CSV{}))
			case "json":
				var results []*result.Result
				results, err = repro.ComputeAll(pool, sel, repro.Options{})
				if err == nil {
					err = render.JSON{Indent: "  "}.EncodeReport(&want, &result.Report{Artifacts: results})
				}
			}
			if err != nil {
				t.Fatalf("%s %s: CLI-path encode: %v", a.ID, format, err)
			}
			rec := get(t, h, "/api/v1/artifacts/"+a.ID+"?format="+format, nil)
			if rec.Code != 200 {
				t.Fatalf("%s %s: HTTP %d", a.ID, format, rec.Code)
			}
			if !bytes.Equal(rec.Body.Bytes(), want.Bytes()) {
				t.Errorf("%s %s: HTTP body differs from CLI bytes (%d vs %d bytes)",
					a.ID, format, rec.Body.Len(), want.Len())
			}
		}
	}
}

// TestReportMatchesCLI: the full-report endpoint returns the CLI's exact
// report bytes.
func TestReportMatchesCLI(t *testing.T) {
	h := New(Config{}).Handler()
	var want bytes.Buffer
	if _, err := (runner.Pool{Workers: 1}).RunTo(&want, repro.Jobs(repro.Artifacts(), repro.Options{})); err != nil {
		t.Fatal(err)
	}
	rec := get(t, h, "/api/v1/report", nil)
	if rec.Code != 200 {
		t.Fatalf("report = %d", rec.Code)
	}
	if !bytes.Equal(rec.Body.Bytes(), want.Bytes()) {
		t.Error("report body differs from CLI full-report bytes")
	}
}

// counting builds a fake artifact whose compute bumps n, sleeps, and
// (optionally) blocks on gateCh — the instrument for concurrency tests.
func counting(id string, n *atomic.Int64, sleep time.Duration, gateCh chan struct{}) repro.Artifact {
	return repro.Artifact{ID: id, Title: "fake " + id, Compute: func(repro.Options) (*result.Result, error) {
		n.Add(1)
		if gateCh != nil {
			<-gateCh
		}
		time.Sleep(sleep)
		r := &result.Result{}
		r.AddTable(&result.Table{Title: id, Headers: []string{"h"}, Rows: [][]string{{"v"}}})
		return r, nil
	}}
}

// TestAdmissionGateCapsConcurrency: a 32-client burst against a gate of 2
// units never has more than 2 computes in flight, and every request still
// succeeds.
func TestAdmissionGateCapsConcurrency(t *testing.T) {
	repro.ResetCache()
	defer repro.ResetCache()
	const clients = 32
	var inFlight, peak, total atomic.Int64
	arts := make([]repro.Artifact, clients)
	for i := range arts {
		id := fmt.Sprintf("burst%02d", i)
		arts[i] = repro.Artifact{ID: id, Title: id, Compute: func(repro.Options) (*result.Result, error) {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(10 * time.Millisecond)
			inFlight.Add(-1)
			total.Add(1)
			r := &result.Result{}
			r.AddTable(&result.Table{Title: id, Headers: []string{"h"}, Rows: [][]string{{"v"}}})
			return r, nil
		}}
	}
	h := New(Config{Artifacts: arts, GateUnits: 2, Timeout: 30 * time.Second}).Handler()
	var wg sync.WaitGroup
	codes := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest("GET", fmt.Sprintf("/api/v1/artifacts/burst%02d", i), nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			codes[i] = rec.Code
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != 200 {
			t.Errorf("client %d got %d", i, c)
		}
	}
	if total.Load() != clients {
		t.Errorf("%d computes for %d clients", total.Load(), clients)
	}
	if p := peak.Load(); p > 2 {
		t.Errorf("concurrent computes peaked at %d, gate allows 2", p)
	}
}

// TestComputeTimeout: a compute slower than the request budget answers 504
// — and the abandoned compute still lands in the cache, so the retry is
// instant.
func TestComputeTimeout(t *testing.T) {
	repro.ResetCache()
	defer repro.ResetCache()
	var computes atomic.Int64
	arts := []repro.Artifact{counting("slowpoke", &computes, 150*time.Millisecond, nil)}
	h := New(Config{Artifacts: arts, Timeout: 30 * time.Millisecond}).Handler()
	if rec := get(t, h, "/api/v1/artifacts/slowpoke", nil); rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("slow compute = %d, want 504", rec.Code)
	}
	// The abandoned compute keeps running into the cache; once it lands,
	// retries are instant hits. Poll with retries (the once-cell blocks
	// retries until the original compute completes).
	deadline := time.Now().Add(5 * time.Second)
	for {
		rec := get(t, h, "/api/v1/artifacts/slowpoke", nil)
		if rec.Code == 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retry still failing (%d) after the abandoned compute should have landed", rec.Code)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("model stack ran %d times, want 1 (retry must hit the cache)", n)
	}
}

// TestShutdownDrains: an accepted request in mid-compute survives
// Shutdown — the listener closes, the response completes, Shutdown
// returns.
func TestShutdownDrains(t *testing.T) {
	repro.ResetCache()
	defer repro.ResetCache()
	var computes atomic.Int64
	blocker := make(chan struct{})
	arts := []repro.Artifact{counting("drainme", &computes, 0, blocker)}
	srv := &http.Server{Handler: New(Config{Artifacts: arts}).Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	type resp struct {
		code int
		body string
		err  error
	}
	got := make(chan resp, 1)
	go func() {
		r, err := http.Get("http://" + ln.Addr().String() + "/api/v1/artifacts/drainme")
		if err != nil {
			got <- resp{err: err}
			return
		}
		defer r.Body.Close()
		b, _ := io.ReadAll(r.Body)
		got <- resp{code: r.StatusCode, body: string(b)}
	}()
	// The request is in-flight once its compute has started.
	waitFor(t, func() bool { return computes.Load() == 1 })

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	// Shutdown must wait for the in-flight request, not race it.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a request was in flight", err)
	case <-time.After(30 * time.Millisecond):
	}
	close(blocker)
	r := <-got
	if r.err != nil || r.code != 200 {
		t.Fatalf("drained request: code=%d err=%v", r.code, r.err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// New connections are refused after drain.
	if _, err := http.Get("http://" + ln.Addr().String() + "/healthz"); err == nil {
		t.Fatal("server still accepting after Shutdown")
	}
}

// TestFlushEndpoint: POST /api/v1/cache/flush empties the compute cache.
func TestFlushEndpoint(t *testing.T) {
	repro.ResetCache()
	h := New(Config{}).Handler()
	if rec := get(t, h, "/api/v1/artifacts/t2", nil); rec.Code != 200 {
		t.Fatal("seed request failed")
	}
	if repro.ReadCacheStats().Entries == 0 {
		t.Fatal("expected a cache entry before flush")
	}
	req := httptest.NewRequest("POST", "/api/v1/cache/flush", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("flush = %d", rec.Code)
	}
	if got := repro.ReadCacheStats().Entries; got != 0 {
		t.Fatalf("entries after flush = %d", got)
	}
}

// TestMetricsExposition: the daemon's metric families show up on /metrics
// and move with traffic — in particular a repeated artifact GET registers
// as a cache hit.
func TestMetricsExposition(t *testing.T) {
	repro.ResetCache()
	h := New(Config{}).Handler()
	before := repro.ReadCacheStats()
	get(t, h, "/api/v1/artifacts/f2", nil)
	get(t, h, "/api/v1/artifacts/f2", nil)
	after := repro.ReadCacheStats()
	if after.Hits <= before.Hits {
		t.Error("second GET did not count as a cache hit")
	}
	body := get(t, h, "/metrics", nil).Body.String()
	for _, want := range []string{
		"nanoreprod_http_requests_total",
		"nanoreprod_http_request_duration_seconds_bucket",
		"nanoreprod_http_in_flight_requests",
		`nanoreprod_artifact_requests_total{artifact="f2"}`,
		`nanoreprod_artifact_compute_seconds_total{artifact="f2"}`,
		"nanoreprod_cache_hits_total",
		"nanoreprod_cache_misses_total",
		"nanoreprod_cache_entries",
		"nanoreprod_gate_capacity_units",
		"nanoreprod_gate_in_flight_units",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}
