package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"nanometer/internal/jobs"
	"nanometer/internal/trace"
)

// jobWeight prices a trace job in gate units: a simulation is cheap per
// interval but long, so weight grows with trace length — a maximal
// 2×10⁸-interval job drains a default gate and runs alone, exactly like a
// mesh-n=255 refinement does.
func jobWeight(tr *trace.Trace) int64 {
	return 1 + int64(tr.Intervals())/5_000_000
}

// cancelGrace bounds how long DELETE waits for the canceled job to reach
// its terminal state. The simulator observes cancellation within one
// control interval, so this is comfortably long; it exists so a DELETE
// response reports the settled state (and freed gate units) rather than a
// snapshot mid-teardown.
const cancelGrace = 5 * time.Second

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handleJobSubmit is POST /api/v1/jobs: the body is one trace document
// (same schema as the CLI's -trace files). A store hit answers 200 with
// the done-from-store job; otherwise the job queues and the response is
// 202 with its status URL.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r, trace.MaxFileBytes)
	if err != nil {
		apiError(w, bodyErrStatus(err), "reading trace body: %v", err)
		return
	}
	tr, err := trace.Parse(body)
	if err != nil {
		apiError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.met.jobsSubmitted.Inc()
	j, err := s.jobq.Submit(tr)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		apiError(w, http.StatusTooManyRequests, "%v", err)
		return
	case err != nil:
		apiError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	snap := j.Snapshot()
	w.Header().Set("Location", "/api/v1/jobs/"+j.ID)
	code := http.StatusAccepted
	if snap.State.Terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, snap)
}

// handleJobIndex is GET /api/v1/jobs: every retained job, oldest first.
func (s *Server) handleJobIndex(w http.ResponseWriter, _ *http.Request) {
	all := s.jobq.Jobs()
	index := struct {
		Jobs []jobs.Snapshot `json:"jobs"`
	}{Jobs: make([]jobs.Snapshot, 0, len(all))}
	for _, j := range all {
		index.Jobs = append(index.Jobs, j.Snapshot())
	}
	writeJSON(w, http.StatusOK, index)
}

// handleJobStatus is GET /api/v1/jobs/{id}: state + latest progress.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobq.Get(r.PathValue("id"))
	if !ok {
		apiError(w, http.StatusNotFound, "unknown job %q (GET /api/v1/jobs for the index)", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

// handleJobResult is GET /api/v1/jobs/{id}/result: the bare typed result
// of a done job. 409 while the job is still queued/running, 410 for a
// canceled job, 500 for a failed one.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobq.Get(r.PathValue("id"))
	if !ok {
		apiError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	res, jerr, done := j.Result()
	if done {
		writeJSON(w, http.StatusOK, res)
		return
	}
	switch j.State() {
	case jobs.StateCanceled:
		apiError(w, http.StatusGone, "job %s was canceled", j.ID)
	case jobs.StateFailed:
		apiError(w, http.StatusInternalServerError, "job %s failed: %v", j.ID, jerr)
	default:
		apiError(w, http.StatusConflict, "job %s is %s (poll status or stream)", j.ID, j.State())
	}
}

// handleJobStream is GET /api/v1/jobs/{id}/stream: NDJSON incremental
// progress. Every chunk emitted so far replays first, then chunks stream
// as the simulation produces them; the final line is the job's terminal
// snapshot (distinguishable by its "state" field). A canceled stream
// (client hangup) stops reading without touching the job.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobq.Get(r.PathValue("id"))
	if !ok {
		apiError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	since := 0
	for {
		chunks, more, terminal := j.Chunks(since)
		for i := range chunks {
			if err := enc.Encode(&chunks[i]); err != nil {
				return
			}
		}
		since += len(chunks)
		if len(chunks) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal {
			break
		}
		select {
		case <-more:
		case <-j.Done():
		case <-r.Context().Done():
			return
		}
	}
	enc.Encode(j.Snapshot())
	if flusher != nil {
		flusher.Flush()
	}
}

// handleJobCancel is DELETE /api/v1/jobs/{id}. Cancellation reaches a
// running simulation within one control interval; the handler waits (up
// to cancelGrace) for the terminal state so the response reports the
// settled job — gate units already released. Canceling a terminal job is
// an idempotent no-op answering its current snapshot.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobq.Get(id)
	if !ok {
		apiError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	s.jobq.Cancel(id)
	select {
	case <-j.Done():
	case <-r.Context().Done():
	case <-time.After(cancelGrace):
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}
