package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGateWeightsAndFIFO: grants respect capacity and strict arrival order
// — a heavy waiter at the head blocks lighter requests behind it (the
// anti-starvation property), and is admitted as soon as capacity frees.
func TestGateWeightsAndFIFO(t *testing.T) {
	g := newGate(4)
	rel3, err := g.Acquire(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.InFlight(); got != 3 {
		t.Fatalf("in-flight = %d, want 3", got)
	}

	order := make(chan int, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		rel, err := g.Acquire(context.Background(), 2)
		if err != nil {
			t.Error(err)
			return
		}
		order <- 2
		rel()
	}()
	// Let the weight-2 waiter enqueue first, then a weight-1 behind it.
	waitFor(t, func() bool { return g.Waiting() == 1 })
	go func() {
		defer wg.Done()
		rel, err := g.Acquire(context.Background(), 1)
		if err != nil {
			t.Error(err)
			return
		}
		order <- 1
		rel()
	}()
	waitFor(t, func() bool { return g.Waiting() == 2 })
	// Capacity 4 with 3 held: the weight-1 request would fit, but FIFO
	// keeps it behind the weight-2 head.
	select {
	case got := <-order:
		t.Fatalf("waiter %d admitted while the head should block", got)
	case <-time.After(20 * time.Millisecond):
	}
	rel3()
	wg.Wait()
	close(order)
	n := 0
	for range order {
		n++
	}
	if n != 2 {
		t.Fatalf("%d waiters admitted after release, want 2", n)
	}
}

// TestGateGrantOrder: when released capacity only covers the head, the
// head alone is admitted, and the tail follows the head's release —
// strict FIFO.
func TestGateGrantOrder(t *testing.T) {
	g := newGate(4)
	rel4, err := g.Acquire(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	headAdmitted := make(chan func(), 1)
	go func() {
		rel, err := g.Acquire(context.Background(), 3)
		if err != nil {
			t.Error(err)
			return
		}
		headAdmitted <- rel
	}()
	waitFor(t, func() bool { return g.Waiting() == 1 })
	tailAdmitted := make(chan struct{})
	go func() {
		rel, err := g.Acquire(context.Background(), 2)
		if err != nil {
			t.Error(err)
			return
		}
		close(tailAdmitted)
		rel()
	}()
	waitFor(t, func() bool { return g.Waiting() == 2 })
	rel4()
	// Head (3) fits; tail (2) would exceed 4 and must keep waiting.
	relHead := <-headAdmitted
	select {
	case <-tailAdmitted:
		t.Fatal("tail admitted alongside the head, exceeding capacity")
	case <-time.After(20 * time.Millisecond):
	}
	relHead()
	select {
	case <-tailAdmitted:
	case <-time.After(2 * time.Second):
		t.Fatal("tail never admitted after head release")
	}
}

// TestGateClampsOversizedWeight: a request dearer than the whole gate is
// clamped to capacity — it runs exclusively instead of deadlocking.
func TestGateClampsOversizedWeight(t *testing.T) {
	g := newGate(4)
	rel, err := g.Acquire(context.Background(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.InFlight(); got != 4 {
		t.Fatalf("in-flight = %d, want clamped 4", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := g.Acquire(ctx, 1); err == nil {
		t.Fatal("second acquire should block until the exclusive holder releases")
	}
	rel()
	rel2, err := g.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rel2()
}

// TestGateCancelUnblocksQueue: a canceled waiter at the head must not wedge
// the waiters behind it.
func TestGateCancelUnblocksQueue(t *testing.T) {
	g := newGate(2)
	relAll, err := g.Acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	headDone := make(chan error, 1)
	go func() {
		_, err := g.Acquire(ctx, 2)
		headDone <- err
	}()
	waitFor(t, func() bool { return g.Waiting() == 1 })
	tailDone := make(chan error, 1)
	go func() {
		rel, err := g.Acquire(context.Background(), 1)
		if err == nil {
			rel()
		}
		tailDone <- err
	}()
	waitFor(t, func() bool { return g.Waiting() == 2 })
	cancel()
	if err := <-headDone; err == nil {
		t.Fatal("canceled waiter should fail")
	}
	// With the head gone the tail still waits for units, then admits once
	// the holder releases.
	relAll()
	if err := <-tailDone; err != nil {
		t.Fatalf("tail waiter: %v", err)
	}
}

// TestGateNeverExceedsCapacity hammers the gate from many goroutines with
// mixed weights under -race and asserts held units never exceed capacity.
func TestGateNeverExceedsCapacity(t *testing.T) {
	const capacity = 5
	g := newGate(capacity)
	var held, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wt := int64(1 + i%3)
		wg.Add(1)
		go func(wt int64) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				rel, err := g.Acquire(context.Background(), wt)
				if err != nil {
					t.Error(err)
					return
				}
				h := held.Add(wt)
				for {
					p := peak.Load()
					if h <= p || peak.CompareAndSwap(p, h) {
						break
					}
				}
				held.Add(-wt)
				rel()
			}
		}(wt)
	}
	wg.Wait()
	if p := peak.Load(); p > capacity {
		t.Fatalf("held units peaked at %d, capacity %d", p, capacity)
	}
	if g.InFlight() != 0 || g.Waiting() != 0 {
		t.Fatalf("gate not drained: in-flight=%d waiting=%d", g.InFlight(), g.Waiting())
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
