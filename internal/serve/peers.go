package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"nanometer/internal/repro"
	"nanometer/internal/result"
)

// peerSet is the replica topology for shared-compute mode: a member list
// (every replica's advertised host:port, ideally identical on every
// replica) and this replica's own entry. Each compute key has one owner —
// chosen by rendezvous hashing, so membership changes only remap the keys
// of the changed member — and a replica that does not own a key asks the
// owner before solving locally. Every peer interaction is best-effort: a
// down, slow, or corrupt peer means falling through to the local solve,
// never a failed request.
type peerSet struct {
	self    string
	members []string
	timeout time.Duration
	client  *http.Client
}

// DefaultPeerTimeout bounds one peer fetch when Config.PeerTimeout is
// unset: long enough for a warm peer (µs) and a default-mesh solve (ms),
// short enough that a dead peer costs a fraction of the solve it saves.
const DefaultPeerTimeout = 2 * time.Second

func newPeerSet(self string, members []string, timeout time.Duration) *peerSet {
	if timeout <= 0 {
		timeout = DefaultPeerTimeout
	}
	ms := make([]string, 0, len(members))
	for _, m := range members {
		if m != "" {
			ms = append(ms, m)
		}
	}
	return &peerSet{
		self:    self,
		members: ms,
		timeout: timeout,
		client:  &http.Client{Timeout: timeout},
	}
}

// owner picks the key's owning member by rendezvous (highest-random-weight)
// hashing and reports whether that owner is a remote peer. With self absent
// from the member list every key is remote-owned — a legal degenerate
// topology that turns this replica into a pure forwarder with local
// fallback.
func (p *peerSet) owner(key string) (addr string, remote bool) {
	var best string
	var bestScore uint64
	for _, m := range p.members {
		h := fnv.New64a()
		io.WriteString(h, m)
		io.WriteString(h, "\x00")
		io.WriteString(h, key)
		if score := h.Sum64(); best == "" || score > bestScore || (score == bestScore && m < best) {
			best, bestScore = m, score
		}
	}
	return best, best != "" && best != p.self
}

// fetch asks the owner replica for the artifact's typed result via the
// internal result endpoint. The fetch is detached from the request's
// cancellation (an abandoned handler must still complete its flight into
// the caches) but bounded by the peer timeout, and the response is
// checksum-equivalent-validated: decoded into the result schema, Validate()d,
// and identity-checked before anyone trusts it.
func (p *peerSet) fetch(ctx context.Context, addr, id string, opts repro.Options) (*result.Result, error) {
	ctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), p.timeout)
	defer cancel()
	u := "http://" + addr + "/api/v1/internal/result/" + url.PathEscape(id)
	if opts.MeshN > 0 {
		u += "?mesh-n=" + strconv.Itoa(opts.MeshN)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("peer %s: status %d", addr, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerResponseBytes+1))
	if err != nil {
		return nil, err
	}
	if len(body) > maxPeerResponseBytes {
		return nil, fmt.Errorf("peer %s: response exceeds %d bytes", addr, maxPeerResponseBytes)
	}
	// Strict decode: a peer running a newer schema (unknown fields) or
	// sending trailing bytes is version skew to refuse loudly, then fall
	// through to a local solve — not data to half-trust.
	var res result.Result
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&res); err != nil {
		return nil, fmt.Errorf("peer %s: %w", addr, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("peer %s: trailing data after result", addr)
	}
	if err := res.Validate(); err != nil {
		return nil, fmt.Errorf("peer %s: %w", addr, err)
	}
	if res.ID != id {
		return nil, fmt.Errorf("peer %s: result ID %q, want %q", addr, res.ID, id)
	}
	return &res, nil
}

// maxPeerResponseBytes bounds a peer result body; the largest registry
// artifact encodes to well under a megabyte even at the mesh-n cap.
const maxPeerResponseBytes = 64 << 20
