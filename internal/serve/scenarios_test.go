package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"nanometer/internal/repro"
)

func postScenario(t *testing.T, s *Server, target, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", target, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// decodeLines parses an NDJSON scenarios response.
func decodeLines(t *testing.T, body *bytes.Buffer) []variantLine {
	t.Helper()
	var out []variantLine
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var line variantLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		out = append(out, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestScenariosSweepFansOut: a 9-step Vdd sweep posted to the endpoint
// yields 9 typed per-variant lines in grid order, each carrying every
// selected artifact, with distinct scenario keys, and the per-scenario
// compute counter advances under the base scenario name.
func TestScenariosSweepFansOut(t *testing.T) {
	repro.ResetCache()
	defer repro.ResetCache()
	var computes atomic.Int64
	arts := []repro.Artifact{counting("sw1", &computes, 0, nil), counting("sw2", &computes, 0, nil)}
	srv := New(Config{Artifacts: arts})
	body := `{"name":"mix","sweep":{"param":"vdd","steps":9,"span_pct":20,"nodes":[70]}}`
	rec := postScenario(t, srv, "/api/v1/scenarios", body)
	if rec.Code != 200 {
		t.Fatalf("POST = %d (body: %s)", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	lines := decodeLines(t, rec.Body)
	if len(lines) != 9 {
		t.Fatalf("got %d variant lines, want 9", len(lines))
	}
	keys := map[string]bool{}
	for i, line := range lines {
		want := fmt.Sprintf("mix/vdd=%.3f", 0.8+0.4*float64(i)/8)
		if line.Scenario != want {
			t.Errorf("line %d scenario = %q, want %q (grid order is part of the contract)", i, line.Scenario, want)
		}
		if line.Error != "" {
			t.Errorf("line %d: %s", i, line.Error)
		}
		if len(line.Artifacts) != 2 {
			t.Errorf("line %d carries %d artifacts, want 2", i, len(line.Artifacts))
		}
		for _, res := range line.Artifacts {
			if res.Scenario != line.Scenario {
				t.Errorf("line %d: result %s stamped %q", i, res.ID, res.Scenario)
			}
		}
		if keys[line.Key] {
			t.Errorf("line %d reuses scenario key %s", i, line.Key)
		}
		keys[line.Key] = true
	}
	if n := computes.Load(); n != 18 {
		t.Errorf("model stack ran %d times, want 18 (9 variants × 2 artifacts)", n)
	}
	var met bytes.Buffer
	srv.met.reg.WritePrometheus(&met)
	if !strings.Contains(met.String(), `nanoreprod_scenario_computes_total{scenario="mix"} 9`) {
		t.Errorf("scenario counter missing or wrong:\n%s", grepLines(met.String(), "scenario_computes"))
	}
}

// TestScenariosRepeatHitsCache: posting the same scenario twice computes
// once — scenario identity is inside the compute-cache key.
func TestScenariosRepeatHitsCache(t *testing.T) {
	repro.ResetCache()
	defer repro.ResetCache()
	var computes atomic.Int64
	arts := []repro.Artifact{counting("rc1", &computes, 0, nil)}
	srv := New(Config{Artifacts: arts})
	body := `{"name":"again","nodes":[{"node_nm":70,"vdd_v":1.0}]}`
	for i := 0; i < 3; i++ {
		if rec := postScenario(t, srv, "/api/v1/scenarios", body); rec.Code != 200 {
			t.Fatalf("POST #%d = %d", i, rec.Code)
		}
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("3 identical scenario posts ran the model stack %d times, want 1", n)
	}
	// A different override is a different key: it must compute again.
	if rec := postScenario(t, srv, "/api/v1/scenarios", `{"name":"again","nodes":[{"node_nm":70,"vdd_v":1.1}]}`); rec.Code != 200 {
		t.Fatalf("POST variant = %d", rec.Code)
	}
	if n := computes.Load(); n != 2 {
		t.Fatalf("changed scenario reused the cache (computes = %d, want 2)", n)
	}
}

// TestScenariosValidation: the endpoint rejects malformed documents, bad
// selections, and bad mesh sizes before any compute is admitted.
func TestScenariosValidation(t *testing.T) {
	var computes atomic.Int64
	srv := New(Config{Artifacts: []repro.Artifact{counting("v1", &computes, 0, nil)}})
	for _, tc := range []struct {
		target, body string
		want         int
	}{
		{"/api/v1/scenarios", `not json`, 400},
		{"/api/v1/scenarios", `{"name":""}`, 400},
		{"/api/v1/scenarios", `{"name":"x","wat":1}`, 400},
		{"/api/v1/scenarios", `{"name":"x","nodes":[{"node_nm":70,"vdd_v":99}]}`, 400},
		{"/api/v1/scenarios?only=zz", `{"name":"x"}`, 400},
		{"/api/v1/scenarios?mesh-n=abc", `{"name":"x"}`, 400},
		{"/api/v1/scenarios?mesh-n=3", `{"name":"x"}`, 400},
		{"/api/v1/scenarios?only=v1", `{"name":"x"}`, 200},
	} {
		rec := postScenario(t, srv, tc.target, tc.body)
		if rec.Code != tc.want {
			t.Errorf("POST %s body=%q = %d, want %d (%s)", tc.target, tc.body, rec.Code, tc.want, rec.Body.String())
		}
	}
	// Oversized bodies stop at the byte reader, not in the parser.
	big := `{"name":"x","notes":["` + strings.Repeat("a", 1<<20) + `"]}`
	if rec := postScenario(t, srv, "/api/v1/scenarios", big); rec.Code != 413 {
		t.Errorf("oversized POST = %d, want 413", rec.Code)
	}
	// The method gate holds: GET on the collection is not allowed.
	if rec := get(t, srv.Handler(), "/api/v1/scenarios", nil); rec.Code != 405 {
		t.Errorf("GET /api/v1/scenarios = %d, want 405", rec.Code)
	}
}

// brokenBody fails mid-read with an ordinary (non-byte-limit) error, the
// shape a client hangup or chunked-encoding fault takes.
type brokenBody struct{}

func (brokenBody) Read([]byte) (int, error) { return 0, errors.New("peer reset the stream") }

// TestScenariosBodyErrorMapping pins the bodyErrStatus split on both
// POST endpoints: only *http.MaxBytesError maps to 413; every other
// body-read failure is the client's 400, never a 413.
func TestScenariosBodyErrorMapping(t *testing.T) {
	srv := New(Config{Artifacts: []repro.Artifact{}, JobWorkers: 1})
	defer srv.Close()
	oversized := `{"name":"x","notes":["` + strings.Repeat("a", 1<<20) + `"]}`
	for _, tc := range []struct {
		name, target string
		body         io.Reader
		want         int
	}{
		{"scenarios oversized", "/api/v1/scenarios", strings.NewReader(oversized), 413},
		{"scenarios broken read", "/api/v1/scenarios", brokenBody{}, 400},
		{"jobs oversized", "/api/v1/jobs", strings.NewReader(oversized), 413},
		{"jobs broken read", "/api/v1/jobs", brokenBody{}, 400},
	} {
		req := httptest.NewRequest("POST", tc.target, tc.body)
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		if rec.Code != tc.want {
			t.Errorf("%s: POST = %d, want %d (%s)", tc.name, rec.Code, tc.want, rec.Body.String())
		}
	}
}

// TestScenarioLabelCardinality: the metrics label folds sweep suffixes into
// the base name and caps distinct names at maxScenarioLabels.
func TestScenarioLabelCardinality(t *testing.T) {
	srv := New(Config{Artifacts: []repro.Artifact{}})
	if got := srv.scenarioLabel("mix/vdd=0.800"); got != "mix" {
		t.Errorf("variant label = %q, want mix", got)
	}
	for i := 0; i < maxScenarioLabels+10; i++ {
		srv.scenarioLabel(fmt.Sprintf("hostile-%03d", i))
	}
	if got := srv.scenarioLabel("one-more"); got != "other" {
		t.Errorf("past the cap, label = %q, want other", got)
	}
	// Already-admitted names keep their own series.
	if got := srv.scenarioLabel("mix"); got != "mix" {
		t.Errorf("admitted name folded to %q", got)
	}
}

// TestScenariosCommittedFileOverHTTP is the end-to-end path of the CI
// smoke: the committed ext65.json posted against the real registry, one
// cheap artifact, typed results with the scenario stamped and the scenario's
// own checks applied.
func TestScenariosCommittedFileOverHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("computes a real artifact; run without -short")
	}
	body, err := os.ReadFile(filepath.Join("..", "..", "scenarios", "ext65.json"))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{})
	rec := postScenario(t, srv, "/api/v1/scenarios?only=c7", string(body))
	if rec.Code != 200 {
		t.Fatalf("POST = %d (%s)", rec.Code, rec.Body.String())
	}
	lines := decodeLines(t, rec.Body)
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1 (ext65 has no sweep)", len(lines))
	}
	if lines[0].Error != "" {
		t.Fatalf("variant error: %s", lines[0].Error)
	}
	if len(lines[0].Artifacts) != 1 || lines[0].Artifacts[0].ID != "c7" {
		t.Fatalf("unexpected artifacts in line: %+v", lines[0].Artifacts)
	}
	res := lines[0].Artifacts[0]
	if res.Scenario != "ext65" {
		t.Fatalf("result scenario = %q, want ext65", res.Scenario)
	}
	// The scenario's expectation replaced the paper checks and passed.
	checked := false
	for _, it := range res.Items {
		if it.Claim == nil {
			continue
		}
		for _, f := range it.Claim.Findings {
			if f.Check != nil {
				checked = true
				if !f.Check.Pass {
					t.Errorf("scenario check %s failed: %g vs %g", f.Key, f.Value, f.Check.Paper)
				}
			}
		}
	}
	if !checked {
		t.Error("no scenario checks present on c7 under ext65")
	}
}

// grepLines filters s to lines containing sub (test-failure readability).
func grepLines(s, sub string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, sub) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
