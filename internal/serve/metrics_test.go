package serve

import (
	"context"
	"strings"
	"testing"

	jobsvc "nanometer/internal/jobs"
	"nanometer/internal/repro"
	"nanometer/internal/result"
)

// TestLabelHelpersBound pins the cardinality guards metriclabel steers
// dynamic label values through: each helper maps its full input domain
// onto a bounded label set.
func TestLabelHelpersBound(t *testing.T) {
	// In-range status codes pass through; everything else — including
	// hostile or nonsense values — folds to "other".
	for code, want := range map[int]string{
		200: "200", 404: "404", 599: "599", 100: "100",
		99: "other", 600: "other", 0: "other", -7: "other", 1 << 30: "other",
	} {
		if got := codeLabel(code); got != want {
			t.Errorf("codeLabel(%d) = %q, want %q", code, got, want)
		}
	}
	// Job states are a closed five-value enum; the helper is the identity
	// over it.
	for _, s := range []jobsvc.State{
		jobsvc.StateQueued, jobsvc.StateRunning, jobsvc.StateDone,
		jobsvc.StateFailed, jobsvc.StateCanceled,
	} {
		if got := stateLabel(s); got != string(s) {
			t.Errorf("stateLabel(%q) = %q", s, got)
		}
	}
	// Artifact IDs come from the compile-time registry, identity again.
	if got := artifactLabel(repro.Artifact{ID: "t2"}); got != "t2" {
		t.Errorf("artifactLabel = %q, want t2", got)
	}
}

// TestEncodeReportHonorsCancel: a report request whose context is already
// canceled must not launch artifact computes — the fix that threaded ctx
// from the handler into the report encoder.
func TestEncodeReportHonorsCancel(t *testing.T) {
	repro.ResetCache()
	defer repro.ResetCache()
	computes := 0
	arts := []repro.Artifact{{ID: "a1", Title: "a1", Compute: func(repro.Options) (*result.Result, error) {
		computes++
		r := &result.Result{ID: "a1", Title: "a1"}
		r.AddTable(&result.Table{Title: "x", Headers: []string{"h"}, Rows: [][]string{{"v"}}})
		return r, nil
	}}}
	s := New(Config{Artifacts: arts, Jobs: 1})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, format := range []string{"json", "text", "csv"} {
		if _, err := s.encodeReport(ctx, repro.Options{}, format); err == nil {
			t.Errorf("encodeReport(%s) with canceled ctx succeeded, want error", format)
		} else if !strings.Contains(err.Error(), "context canceled") {
			t.Errorf("encodeReport(%s) error = %v, want context cancellation", format, err)
		}
	}
	if computes != 0 {
		t.Errorf("canceled report launched %d computes, want 0", computes)
	}
}
