package serve

import (
	"strconv"

	"nanometer/internal/jobs"
	"nanometer/internal/obs"
	"nanometer/internal/powergrid"
	"nanometer/internal/repro"
	"nanometer/internal/store"
)

// metrics is the daemon's instrument set, all registered on one obs
// registry that /metrics scrapes. Names are stable API — they appear in
// README, the CI smoke test, and any dashboards users build.
type metrics struct {
	reg *obs.Registry

	requests       *obs.CounterVec // nanoreprod_http_requests_total{code}
	duration       *obs.Histogram  // nanoreprod_http_request_duration_seconds
	inFlight       *obs.Gauge      // nanoreprod_http_in_flight_requests
	artifactTotal  *obs.CounterVec // nanoreprod_artifact_requests_total{artifact}
	computeSeconds *obs.CounterVec // nanoreprod_artifact_compute_seconds_total{artifact}
	notModified    *obs.Counter    // nanoreprod_etag_not_modified_total
	timeouts       *obs.Counter    // nanoreprod_request_timeouts_total
	rejected       *obs.Counter    // nanoreprod_gate_rejections_total

	singleflightShared *obs.Counter    // nanoreprod_singleflight_shared_total
	peerHits           *obs.Counter    // nanoreprod_peer_hits_total
	peerFallthrough    *obs.Counter    // nanoreprod_peer_fallthrough_total
	peerServes         *obs.Counter    // nanoreprod_peer_result_requests_total
	scenarioComputes   *obs.CounterVec // nanoreprod_scenario_computes_total{scenario}

	jobsSubmitted *obs.Counter    // nanoreprod_jobs_submitted_total
	jobsFinished  *obs.CounterVec // nanoreprod_jobs_finished_total{state}
	jobsCached    *obs.Counter    // nanoreprod_jobs_cached_total
}

func newMetrics(g *gate, st *store.Store, q *jobs.Queue) *metrics {
	reg := &obs.Registry{}
	m := &metrics{
		reg:      reg,
		requests: reg.CounterVec("nanoreprod_http_requests_total", "HTTP responses by status code.", "code"),
		duration: reg.Histogram("nanoreprod_http_request_duration_seconds",
			"End-to-end request latency (admission wait + compute + encode).", obs.DurationBuckets()),
		inFlight: reg.Gauge("nanoreprod_http_in_flight_requests", "Requests currently being handled."),
		artifactTotal: reg.CounterVec("nanoreprod_artifact_requests_total",
			"Artifact requests by artifact ID (304s included).", "artifact"),
		computeSeconds: reg.CounterVec("nanoreprod_artifact_compute_seconds_total",
			"Seconds spent in ComputeCached per artifact (cache hits cost ~0).", "artifact"),
		notModified: reg.Counter("nanoreprod_etag_not_modified_total",
			"Conditional requests answered 304 from the ETag alone."),
		timeouts: reg.Counter("nanoreprod_request_timeouts_total",
			"Requests that hit the per-request compute deadline."),
		rejected: reg.Counter("nanoreprod_gate_rejections_total",
			"Requests whose admission-gate wait was cut short (timeout or client gone)."),
		singleflightShared: reg.Counter("nanoreprod_singleflight_shared_total",
			"Requests collapsed onto another request's in-flight compute (no gate weight acquired)."),
		peerHits: reg.Counter("nanoreprod_peer_hits_total",
			"Requests answered with a result fetched from the owning peer replica."),
		peerFallthrough: reg.Counter("nanoreprod_peer_fallthrough_total",
			"Peer consultations that failed (down, slow, corrupt) and fell through to a local solve."),
		peerServes: reg.Counter("nanoreprod_peer_result_requests_total",
			"Internal result requests served to sibling replicas."),
		scenarioComputes: reg.CounterVec("nanoreprod_scenario_computes_total",
			"Scenario-variant computes by base scenario name (sweep suffixes folded into the parent; names past the cardinality cap land in \"other\").", "scenario"),
		jobsSubmitted: reg.Counter("nanoreprod_jobs_submitted_total",
			"Trace-simulation jobs accepted by POST /api/v1/jobs (store-answered submits included)."),
		jobsFinished: reg.CounterVec("nanoreprod_jobs_finished_total",
			"Trace-simulation jobs reaching a terminal state, by state (done, failed, canceled).", "state"),
		jobsCached: reg.Counter("nanoreprod_jobs_cached_total",
			"Trace-simulation jobs answered from the result store without simulating."),
	}
	// Job-queue occupancy: active covers queued+running (the backpressure
	// bound), retained counts every job the API can still address.
	reg.GaugeFunc("nanoreprod_jobs_active",
		"Trace-simulation jobs currently queued or running.",
		func() float64 { a, _ := q.Stats(); return float64(a) })
	reg.GaugeFunc("nanoreprod_jobs_retained",
		"Trace-simulation jobs retained for status/result queries.",
		func() float64 { _, r := q.Stats(); return float64(r) })
	// The compute cache instruments live in internal/repro (they are
	// bumped inside ComputeCached itself); exported here as scrape-time
	// reads so the cache stays ignorant of HTTP.
	reg.CounterFunc("nanoreprod_cache_hits_total",
		"ComputeCached calls served from a memoized result.",
		func() float64 { return float64(repro.ReadCacheStats().Hits) })
	reg.CounterFunc("nanoreprod_cache_misses_total",
		"ComputeCached calls that computed and stored a new entry.",
		func() float64 { return float64(repro.ReadCacheStats().Misses) })
	reg.CounterFunc("nanoreprod_cache_bypass_total",
		"ComputeCached calls that computed uncached (NoCache or entry bound).",
		func() float64 { return float64(repro.ReadCacheStats().Bypassed) })
	reg.GaugeFunc("nanoreprod_cache_entries",
		"Memoized results currently held by the compute cache.",
		func() float64 { return float64(repro.ReadCacheStats().Entries) })
	// The second-level result store: the hit/put counters live in the
	// compute cache (they move even when the store was installed outside
	// this server), the footprint gauges come from the store handle.
	reg.CounterFunc("nanoreprod_store_hits_total",
		"ComputeCached fills served from the result store instead of the solvers.",
		func() float64 { return float64(repro.ReadCacheStats().StoreHits) })
	reg.CounterFunc("nanoreprod_store_puts_total",
		"Successful results persisted into the result store.",
		func() float64 { return float64(repro.ReadCacheStats().StorePuts) })
	if st != nil {
		reg.GaugeFunc("nanoreprod_store_entries",
			"Result files currently in the store directory (shared across replicas).",
			func() float64 { return float64(st.Stats().Entries) })
		reg.GaugeFunc("nanoreprod_store_bytes",
			"Total bytes of result files in the store directory.",
			func() float64 { return float64(st.Stats().Bytes) })
		reg.CounterFunc("nanoreprod_store_evictions_total",
			"Store files evicted by the entry/byte bounds.",
			func() float64 { return float64(st.Stats().Evictions) })
		reg.CounterFunc("nanoreprod_store_corrupt_total",
			"Store files dropped on checksum or decode failure.",
			func() float64 { return float64(st.Stats().Corrupt) })
	}
	// Mesh-solver health: the MG-PCG iteration count is near-constant per
	// mesh size by construction, so iterations_total/solves_total drifting
	// upward flags a numerical regression (smoother, prolongation, coarse
	// solve) from a dashboard instead of a benchmark run.
	reg.CounterFunc("nanoreprod_mesh_solves_total",
		"Completed power-grid mesh solves.",
		func() float64 { return float64(powergrid.ReadSolveStats().Solves) })
	reg.CounterFunc("nanoreprod_mesh_solve_iterations_total",
		"Total MG-PCG iterations spent in mesh solves.",
		func() float64 { return float64(powergrid.ReadSolveStats().Iterations) })
	reg.CounterFunc("nanoreprod_mesh_solves_batched_total",
		"Subset of mesh solves that ran through the lockstep multi-RHS sweep kernel (scenario sweeps should push this toward solves_total).",
		func() float64 { return float64(powergrid.ReadSolveStats().Batched) })
	// Admission-gate visibility: how loaded the compute pool is and how
	// deep the queue behind it runs.
	reg.GaugeFunc("nanoreprod_gate_in_flight_units",
		"Weighted compute units currently admitted.",
		func() float64 { return float64(g.InFlight()) })
	reg.GaugeFunc("nanoreprod_gate_capacity_units",
		"Configured admission-gate capacity in compute units.",
		func() float64 { return float64(g.cap) })
	reg.GaugeFunc("nanoreprod_gate_waiting_requests",
		"Requests queued at the admission gate.",
		func() float64 { return float64(g.Waiting()) })
	return m
}

// The *Label helpers below are the cardinality guards metriclabel
// (nanolint) enforces: every dynamic value reaching a labeled vec flows
// through one of them, and each helper carries the argument for why the
// resulting label set is bounded.

// codeLabel folds an HTTP status code into the bounded label set the
// requests counter may grow. Codes in the standard 100–599 range keep
// their exact value (≤ 500 children); anything else — a buggy handler
// writing 0 or 999 — folds to "other" so one bad code path cannot mint
// unbounded registry children.
func codeLabel(code int) string {
	if code >= 100 && code <= 599 {
		return strconv.Itoa(code)
	}
	return "other"
}

// artifactLabel is the metric label for a registry artifact. Callers hold
// a repro.Artifact only after a registry lookup (byID or the order slice),
// and the registry is a fixed compile-time set, so the label population is
// bounded by construction.
func artifactLabel(a repro.Artifact) string { return a.ID }

// stateLabel is the metric label for a terminal job state. jobs.State is a
// closed enum (queued/running/done/failed/canceled), so the label set
// cannot exceed five values.
func stateLabel(s jobs.State) string { return string(s) }
